module beaconsec

go 1.22
