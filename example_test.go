package beaconsec_test

import (
	"fmt"

	"beaconsec"
)

// ExampleDetectorConfig_EvaluateDetector shows the §2 detecting-node
// pipeline classifying the four kinds of beacon exchange.
func ExampleDetectorConfig_EvaluateDetector() {
	cal := beaconsec.CalibrateRTT(2000, 1)
	det := beaconsec.DetectorConfig{
		MaxDistError: 10,
		MaxRTT:       cal.Threshold(),
		Range:        150,
	}
	me := beaconsec.Point{X: 0, Y: 0}
	rtt := cal.Quantile(0.5)

	benign := beaconsec.Observation{
		OwnLoc: me, OwnKnown: true,
		Claimed: beaconsec.Point{X: 100, Y: 0}, MeasuredDist: 104, RTT: rtt,
	}
	attack := benign
	attack.MeasuredDist = 145 // transmit-power manipulation
	replayed := benign
	replayed.RTT = rtt + 50000 // one packet of store-and-forward delay

	fmt.Println(det.EvaluateDetector(benign))
	fmt.Println(det.EvaluateDetector(attack))
	fmt.Println(det.EvaluateDetector(replayed))
	// Output:
	// benign
	// malicious
	// local-replay
}

// ExampleDetectionRate reproduces the paper's Figure 5 relationship: more
// detecting IDs force the attacker into a corner.
func ExampleDetectionRate() {
	for _, m := range []int{1, 8} {
		fmt.Printf("m=%d: P_r(0.2) = %.2f\n", m, beaconsec.DetectionRate(0.2, m))
	}
	// Output:
	// m=1: P_r(0.2) = 0.20
	// m=8: P_r(0.2) = 0.83
}

// ExampleMultilaterate localizes a node from three beacon references.
func ExampleMultilaterate() {
	truth := beaconsec.Point{X: 40, Y: 35}
	beacons := []beaconsec.Point{{X: 0, Y: 0}, {X: 100, Y: 0}, {X: 50, Y: 90}}
	refs := make([]beaconsec.Reference, len(beacons))
	for i, b := range beacons {
		refs[i] = beaconsec.Reference{Loc: b, Dist: truth.Dist(b)}
	}
	est, _ := beaconsec.Multilaterate(refs)
	fmt.Printf("(%.0f, %.0f)\n", est.X, est.Y)
	// Output:
	// (40, 35)
}

// ExampleRobustMultilaterate excludes a lying beacon from the fix.
func ExampleRobustMultilaterate() {
	truth := beaconsec.Point{X: 75, Y: 75}
	beacons := []beaconsec.Point{{X: 0, Y: 0}, {X: 150, Y: 0}, {X: 0, Y: 150}, {X: 150, Y: 150}, {X: 75, Y: 0}}
	refs := make([]beaconsec.Reference, len(beacons))
	for i, b := range beacons {
		refs[i] = beaconsec.Reference{Loc: b, Dist: truth.Dist(b)}
	}
	refs[1].Dist += 90 // compromised beacon enlarges its distance
	est, kept, _ := beaconsec.RobustMultilaterate(refs, 10)
	fmt.Printf("(%.0f, %.0f) using %d of %d references\n", est.X, est.Y, len(kept), len(refs))
	// Output:
	// (75, 75) using 4 of 5 references
}

// ExampleFalsePositiveBound evaluates the §3.2 collusion damage bound at
// the paper's recommended thresholds.
func ExampleFalsePositiveBound() {
	nf := beaconsec.FalsePositiveBound(10, 10, 10, 2, 0.9)
	fmt.Printf("N_f = %.1f benign beacons (worst case)\n", nf)
	// Output:
	// N_f = 37.0 benign beacons (worst case)
}
