// Command figures regenerates the paper's evaluation figures (4–14) and
// the extension experiments, printing ASCII plots and optionally writing
// CSV + text renderings to an output directory.
//
// Simulation-backed figures run their trials on the shared harness's
// worker pool, and independent figures run concurrently; -workers bounds
// both. Output is deterministic for any worker count: plots print in
// figure order and every trial seed derives from -seed alone.
//
// Usage:
//
//	figures [-fig all|fig04,fig12,...] [-quick] [-seed N] [-out DIR]
//	        [-workers N] [-progress]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"beaconsec/internal/experiment"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("figures", flag.ContinueOnError)
	figs := fs.String("fig", "all", "comma-separated figure IDs, or 'all'")
	quick := fs.Bool("quick", false, "reduced trials and network size")
	seed := fs.Uint64("seed", 1, "random seed")
	outDir := fs.String("out", "", "directory for CSV and text output (optional)")
	width := fs.Int("width", 72, "plot width in characters")
	height := fs.Int("height", 20, "plot height in characters")
	workers := fs.Int("workers", 0, "trial and figure concurrency (0 = all CPUs)")
	progress := fs.Bool("progress", true, "print per-figure trial progress to stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var runners []experiment.Runner
	if *figs == "all" {
		runners = experiment.All()
	} else {
		for _, id := range strings.Split(*figs, ",") {
			r, ok := experiment.ByID(strings.TrimSpace(id))
			if !ok {
				return fmt.Errorf("unknown figure %q (known: %s)", id, knownIDs())
			}
			runners = append(runners, r)
		}
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
	}

	opts := experiment.Options{Quick: *quick, Seed: *seed, Workers: *workers}
	results, err := runAll(runners, opts, *progress)
	if err != nil {
		return err
	}

	for i := range runners {
		res := results[i]
		plot := res.Plot()
		rendered := plot.Render(*width, *height)
		fmt.Fprintln(out, rendered)
		for _, n := range res.Notes {
			fmt.Fprintf(out, "  note: %s\n", n)
		}
		fmt.Fprintln(out)
		if *outDir != "" {
			if err := os.WriteFile(filepath.Join(*outDir, res.ID+".csv"), []byte(plot.CSV()), 0o644); err != nil {
				return err
			}
			txt := rendered + "\n" + strings.Join(res.Notes, "\n") + "\n"
			if err := os.WriteFile(filepath.Join(*outDir, res.ID+".txt"), []byte(txt), 0o644); err != nil {
				return err
			}
		}
	}
	return nil
}

// runAll executes the runners on a bounded pool (figure-level
// concurrency on top of each figure's own trial parallelism) and returns
// their results in input order. The first failure is returned after all
// in-flight figures finish.
func runAll(runners []experiment.Runner, opts experiment.Options, progress bool) ([]experiment.Result, error) {
	figWorkers := opts.Workers
	if figWorkers <= 0 {
		figWorkers = runtime.GOMAXPROCS(0)
	}
	if figWorkers > len(runners) {
		figWorkers = len(runners)
	}

	results := make([]experiment.Result, len(runners))
	errs := make([]error, len(runners))
	sem := make(chan struct{}, figWorkers)
	var wg sync.WaitGroup
	for i, r := range runners {
		wg.Add(1)
		go func(i int, r experiment.Runner) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			o := opts
			if progress {
				o.Progress = func(done, total int, elapsed time.Duration) {
					fmt.Fprintf(os.Stderr, "figures: %s %d/%d trials (%.1fs)\n",
						r.ID, done, total, elapsed.Seconds())
				}
			}
			results[i], errs[i] = r.Run(o)
		}(i, r)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("%s: %w", runners[i].ID, err)
		}
	}
	return results, nil
}

func knownIDs() string {
	var ids []string
	for _, r := range experiment.All() {
		ids = append(ids, r.ID)
	}
	return strings.Join(ids, ", ")
}
