// Command figures regenerates the paper's evaluation figures (4–14) and
// the extension experiments, printing ASCII plots and optionally writing
// CSV + text renderings to an output directory.
//
// Simulation-backed figures run their trials on the shared harness's
// worker pool, and independent figures run concurrently; -workers bounds
// both. Output is deterministic for any worker count: plots print in
// figure order and every trial seed derives from -seed alone.
//
// Usage:
//
//	figures [-fig all|fig04,fig12,...] [-quick] [-seed N] [-out DIR]
//	        [-workers N] [-progress] [-json FILE] [-queue auto|heap|wheel]
//	        [-metro-workers K]
//	        [-detectors paper,mahalanobis{threshold=2.5},ml]
//	        [-cache] [-cache-dir DIR] [-cache-clear]
//	        [-cpuprofile FILE] [-memprofile FILE]
//
// -json writes every figure result — series, notes, and the aggregate
// ScenarioMetrics (per-phase timings, packet/collision/filter counters)
// — as one machine-readable JSON document ("-" for stdout). -cpuprofile
// and -memprofile write pprof profiles of the whole regeneration.
//
// -cache memoizes simulation trials content-addressed under -cache-dir,
// so a re-run recomputes only trials whose config, seed, or code salt
// changed; figure output is byte-identical either way. -cache-clear
// deletes the cache directory first (a from-scratch cold run).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"beaconsec/internal/cache"
	"beaconsec/internal/core"
	"beaconsec/internal/experiment"
	"beaconsec/internal/metrics"
	"beaconsec/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("figures", flag.ContinueOnError)
	figs := fs.String("fig", "all", "comma-separated figure IDs, or 'all'")
	detectors := fs.String("detectors", "", "comma-separated detector specs for the bake-off runner, e.g. paper,mahalanobis{threshold=2.5} (default: all registered)")
	quick := fs.Bool("quick", false, "reduced trials and network size")
	seed := fs.Uint64("seed", 1, "random seed")
	outDir := fs.String("out", "", "directory for CSV and text output (optional)")
	width := fs.Int("width", 72, "plot width in characters")
	height := fs.Int("height", 20, "plot height in characters")
	workers := fs.Int("workers", 0, "trial and figure concurrency (0 = all CPUs)")
	progress := fs.Bool("progress", true, "print per-figure trial progress to stderr")
	jsonOut := fs.String("json", "", "write results as JSON to FILE ('-' for stdout)")
	queue := fs.String("queue", "auto", "simulation event queue: auto, heap, or wheel (results are byte-identical)")
	metroWorkers := fs.Int("metro-workers", 0, "shard count for extra-metro's parallel identity leg (0 = default; identity-pinned results are byte-identical at any value)")
	useCache := fs.Bool("cache", false, "memoize simulation trials on disk (see -cache-dir)")
	cacheDir := fs.String("cache-dir", filepath.Join("results", "cache"), "trial cache directory")
	cacheClear := fs.Bool("cache-clear", false, "delete the trial cache before running")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile to FILE")
	memProfile := fs.String("memprofile", "", "write a pprof heap profile to FILE")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Validate every destination directory up front: an unwritable -out
	// or -cache-dir must fail in milliseconds with a clear message, not
	// after minutes of simulation.
	if *outDir != "" {
		if err := ensureWritableDir(*outDir); err != nil {
			return fmt.Errorf("output dir: %w", err)
		}
	}
	if *cacheClear {
		if err := os.RemoveAll(*cacheDir); err != nil {
			return fmt.Errorf("cache dir: clear: %w", err)
		}
	}
	var trialCache *cache.Cache
	if *useCache {
		c, cerr := cache.New(cache.Config{Dir: *cacheDir})
		if cerr != nil {
			return fmt.Errorf("cache dir: %w", cerr)
		}
		trialCache = c
	}

	// Both profiles are flushed by deferred closers so they survive
	// error paths (a failing figure still yields a usable profile), and
	// flush failures surface as run's own error instead of a stderr
	// note with a zero exit status.
	if *cpuProfile != "" {
		f, ferr := os.Create(*cpuProfile)
		if ferr != nil {
			return ferr
		}
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = fmt.Errorf("cpuprofile: %w", cerr)
			}
		}()
		if perr := pprof.StartCPUProfile(f); perr != nil {
			return perr
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			if werr := writeHeapProfile(*memProfile); werr != nil && err == nil {
				err = fmt.Errorf("memprofile: %w", werr)
			}
		}()
	}

	var runners []experiment.Runner
	if *figs == "all" {
		runners = experiment.All()
	} else {
		for _, id := range strings.Split(*figs, ",") {
			r, ok := experiment.ByID(strings.TrimSpace(id))
			if !ok {
				return fmt.Errorf("unknown figure %q (known: %s)", id, knownIDs())
			}
			runners = append(runners, r)
		}
	}
	queueKind, err := sim.ParseQueueKind(*queue)
	if err != nil {
		return err
	}
	opts := experiment.Options{Quick: *quick, Seed: *seed, Workers: *workers, Cache: trialCache, Queue: queueKind, MetroWorkers: *metroWorkers}
	if *detectors != "" {
		specs, derr := parseDetectors(*detectors)
		if derr != nil {
			return derr
		}
		opts.Detectors = specs
	}
	results, err := runAll(runners, opts, *progress)
	if err != nil {
		return err
	}

	for i := range runners {
		res := results[i]
		plot := res.Plot()
		rendered := plot.Render(*width, *height)
		fmt.Fprintln(out, rendered)
		for _, n := range res.Notes {
			fmt.Fprintf(out, "  note: %s\n", n)
		}
		fmt.Fprintln(out)
		if *outDir != "" {
			if err := os.WriteFile(filepath.Join(*outDir, res.ID+".csv"), []byte(plot.CSV()), 0o644); err != nil {
				return err
			}
			txt := rendered + "\n" + strings.Join(res.Notes, "\n") + "\n"
			if err := os.WriteFile(filepath.Join(*outDir, res.ID+".txt"), []byte(txt), 0o644); err != nil {
				return err
			}
		}
	}

	var cacheStats *cache.StatsSnapshot
	if trialCache != nil {
		s := trialCache.Stats()
		cacheStats = &s
		fmt.Fprintf(out, "cache: %d hits, %d misses (%.1f%% hit rate), %d stored, %.1f MB read, %.1f MB written\n",
			s.Hits, s.Misses, 100*s.HitRate(), s.Stores,
			float64(s.BytesRead)/1e6, float64(s.BytesWritten)/1e6)
	}

	if *jsonOut != "" {
		doc := jsonDoc{Seed: *seed, Quick: *quick, Env: metrics.CaptureEnv(), Cache: cacheStats, Results: results}
		b, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		b = append(b, '\n')
		if *jsonOut == "-" {
			_, err = out.Write(b)
		} else {
			err = os.WriteFile(*jsonOut, b, 0o644)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// writeHeapProfile snapshots the heap to path, reporting create, write,
// and close errors alike (a heap profile that failed to flush is worse
// than none: it truncates silently and pprof misparses it).
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC() // settle allocations so the heap profile is stable
	werr := pprof.WriteHeapProfile(f)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

// jsonDoc is the -json export: the run parameters, the machine they ran
// on, the trial-cache tally (nil without -cache), plus every figure
// result, including each simulation-backed figure's aggregate metrics.
type jsonDoc struct {
	Seed    uint64               `json:"seed"`
	Quick   bool                 `json:"quick"`
	Env     metrics.Env          `json:"env"`
	Cache   *cache.StatsSnapshot `json:"cache,omitempty"`
	Results []experiment.Result  `json:"results"`
}

// ensureWritableDir creates dir if needed and proves it is writable by
// creating and removing a probe file; MkdirAll alone reports success on
// an existing read-only directory.
func ensureWritableDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.CreateTemp(dir, ".writable-*")
	if err != nil {
		return fmt.Errorf("%s is not writable: %w", dir, err)
	}
	name := f.Name()
	f.Close()
	return os.Remove(name)
}

// runAll executes the runners on a bounded pool (figure-level
// concurrency on top of each figure's own trial parallelism) and returns
// their results in input order. The first failure is returned after all
// in-flight figures finish.
func runAll(runners []experiment.Runner, opts experiment.Options, progress bool) ([]experiment.Result, error) {
	figWorkers := opts.Workers
	if figWorkers <= 0 {
		figWorkers = runtime.GOMAXPROCS(0)
	}
	if figWorkers > len(runners) {
		figWorkers = len(runners)
	}

	results := make([]experiment.Result, len(runners))
	errs := make([]error, len(runners))
	sem := make(chan struct{}, figWorkers)
	var wg sync.WaitGroup
	for i, r := range runners {
		wg.Add(1)
		go func(i int, r experiment.Runner) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			o := opts
			if progress {
				o.Progress = func(done, total int, elapsed time.Duration) {
					fmt.Fprintf(os.Stderr, "figures: %s %d/%d trials (%.1fs)\n",
						r.ID, done, total, elapsed.Seconds())
				}
			}
			results[i], errs[i] = r.Run(o)
		}(i, r)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("%s: %w", runners[i].ID, err)
		}
	}
	return results, nil
}

// parseDetectors parses the -detectors flag and fails fast on a name the
// registry does not know, listing what it does — like the destination-
// directory validation, a bad detector must fail in milliseconds with a
// clear message, not after minutes of simulation.
func parseDetectors(text string) ([]core.DetectorSpec, error) {
	specs, err := core.ParseDetectorList(text)
	if err != nil {
		return nil, err
	}
	for _, spec := range specs {
		if !core.DetectorRegistered(spec.Name) {
			return nil, fmt.Errorf("unknown detector %q (registered: %s)",
				spec.Name, strings.Join(core.DetectorNames(), ", "))
		}
	}
	return specs, nil
}

func knownIDs() string {
	var ids []string
	for _, r := range experiment.All() {
		ids = append(ids, r.ID)
	}
	return strings.Join(ids, ", ")
}
