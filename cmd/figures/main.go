// Command figures regenerates the paper's evaluation figures (4–14) and
// the two extension experiments, printing ASCII plots and optionally
// writing CSV + text renderings to an output directory.
//
// Usage:
//
//	figures [-fig all|fig04,fig12,...] [-quick] [-seed N] [-out DIR]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"beaconsec/internal/experiment"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("figures", flag.ContinueOnError)
	figs := fs.String("fig", "all", "comma-separated figure IDs, or 'all'")
	quick := fs.Bool("quick", false, "reduced trials and network size")
	seed := fs.Uint64("seed", 1, "random seed")
	outDir := fs.String("out", "", "directory for CSV and text output (optional)")
	width := fs.Int("width", 72, "plot width in characters")
	height := fs.Int("height", 20, "plot height in characters")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var runners []experiment.Runner
	if *figs == "all" {
		runners = experiment.All()
	} else {
		for _, id := range strings.Split(*figs, ",") {
			r, ok := experiment.ByID(strings.TrimSpace(id))
			if !ok {
				return fmt.Errorf("unknown figure %q (known: %s)", id, knownIDs())
			}
			runners = append(runners, r)
		}
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
	}

	opts := experiment.Options{Quick: *quick, Seed: *seed}
	for _, r := range runners {
		res := r.Run(opts)
		plot := res.Plot()
		rendered := plot.Render(*width, *height)
		fmt.Fprintln(out, rendered)
		for _, n := range res.Notes {
			fmt.Fprintf(out, "  note: %s\n", n)
		}
		fmt.Fprintln(out)
		if *outDir != "" {
			if err := os.WriteFile(filepath.Join(*outDir, res.ID+".csv"), []byte(plot.CSV()), 0o644); err != nil {
				return err
			}
			txt := rendered + "\n" + strings.Join(res.Notes, "\n") + "\n"
			if err := os.WriteFile(filepath.Join(*outDir, res.ID+".txt"), []byte(txt), 0o644); err != nil {
				return err
			}
		}
	}
	return nil
}

func knownIDs() string {
	var ids []string
	for _, r := range experiment.All() {
		ids = append(ids, r.ID)
	}
	return strings.Join(ids, ", ")
}
