package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"beaconsec/internal/harness"
)

// TestRunJSONExportParsesBack runs a simulation-backed figure with -json
// and parses the document back into the result structs: the export must
// carry the series plus the aggregate ScenarioMetrics (phase timings,
// packet/collision/filter counters).
func TestRunJSONExportParsesBack(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.json")
	var b strings.Builder
	if err := run([]string{"-fig", "fig12", "-quick", "-progress=false", "-json", path}, &b); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc jsonDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("exported JSON does not parse: %v", err)
	}
	if doc.Seed != 1 || !doc.Quick || len(doc.Results) != 1 {
		t.Fatalf("document header wrong: seed=%d quick=%v results=%d",
			doc.Seed, doc.Quick, len(doc.Results))
	}
	res := doc.Results[0]
	if res.ID != "fig12" || len(res.Series) != 2 {
		t.Fatalf("fig12 result incomplete: %+v", res)
	}
	if res.Metrics == nil {
		t.Fatal("fig12 export has no metrics")
	}
	m := res.Metrics.Scenario
	if m.Runs == 0 || m.Radio.Transmissions == 0 || m.Link.Delivered == 0 {
		t.Errorf("metrics counters empty after parse-back: %+v", m)
	}
	if len(m.Phases) == 0 || m.Phases[0].Name != "announce" {
		t.Errorf("phase spans missing after parse-back: %+v", m.Phases)
	}
	if res.Metrics.Timing.Jobs == 0 {
		t.Errorf("timing missing after parse-back: %+v", res.Metrics.Timing)
	}
}

// TestRunJSONToStdout checks '-json -' streams the document to the
// writer instead of a file.
func TestRunJSONToStdout(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-fig", "fig05", "-quick", "-progress=false", "-json", "-"}, &b); err != nil {
		t.Fatal(err)
	}
	idx := strings.Index(b.String(), "{")
	if idx < 0 {
		t.Fatalf("no JSON in output:\n%s", b.String())
	}
	var doc jsonDoc
	if err := json.Unmarshal([]byte(b.String()[idx:]), &doc); err != nil {
		t.Fatalf("stdout JSON does not parse: %v", err)
	}
	// fig05 is closed-form: no simulation, so no metrics.
	if doc.Results[0].Metrics != nil {
		t.Error("closed-form figure has metrics")
	}
}

// TestRunWritesProfiles checks -cpuprofile/-memprofile produce non-empty
// pprof files.
func TestRunWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var b strings.Builder
	if err := run([]string{"-fig", "fig05", "-quick", "-progress=false",
		"-cpuprofile", cpu, "-memprofile", mem}, &b); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("missing profile %s: %v", p, err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

// TestRunFlushesProfilesOnError checks the deferred flush: when the run
// itself fails (unknown figure), both profiles must still be written and
// valid — a long profiled run that dies at the end should not lose its
// profile.
func TestRunFlushesProfilesOnError(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var b strings.Builder
	err := run([]string{"-fig", "fig99",
		"-cpuprofile", cpu, "-memprofile", mem}, &b)
	if err == nil {
		t.Fatal("unknown figure accepted")
	}
	for _, p := range []string{cpu, mem} {
		st, serr := os.Stat(p)
		if serr != nil {
			t.Fatalf("profile %s not flushed on error path: %v", p, serr)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty after error-path flush", p)
		}
	}
}

// TestRunMemProfileErrorSurfaces checks a heap-profile flush failure is
// the command's error (nonzero exit), not a stderr whisper.
func TestRunMemProfileErrorSurfaces(t *testing.T) {
	mem := filepath.Join(t.TempDir(), "no-such-dir", "mem.pprof")
	var b strings.Builder
	err := run([]string{"-fig", "fig05", "-quick", "-progress=false",
		"-memprofile", mem}, &b)
	if err == nil {
		t.Fatal("unwritable memprofile path did not fail the run")
	}
	if !strings.Contains(err.Error(), "memprofile") {
		t.Errorf("error does not identify the memprofile: %v", err)
	}
}

func TestRunSingleFigure(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-fig", "fig05", "-quick"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "fig05") || !strings.Contains(out, "m=8") {
		t.Errorf("figure output incomplete:\n%s", out)
	}
}

func TestRunWritesOutputFiles(t *testing.T) {
	dir := t.TempDir()
	var b strings.Builder
	if err := run([]string{"-fig", "fig05,fig10", "-quick", "-out", dir}, &b); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig05.csv", "fig05.txt", "fig10.csv", "fig10.txt"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("missing %s: %v", name, err)
		}
		if len(data) == 0 {
			t.Errorf("%s is empty", name)
		}
	}
	csv, err := os.ReadFile(filepath.Join(dir, "fig05.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(csv), "series,x,y\n") {
		t.Errorf("CSV header wrong: %q", string(csv[:20]))
	}
}

func TestRunRejectsUnknownFigure(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-fig", "fig99"}, &b)
	if err == nil {
		t.Fatal("unknown figure accepted")
	}
	if !strings.Contains(err.Error(), "fig99") {
		t.Errorf("error does not name the bad figure: %v", err)
	}
}

func TestKnownIDsListsAll(t *testing.T) {
	ids := knownIDs()
	for _, want := range []string{"fig04", "fig14", "extra-localization", "extra-distributed"} {
		if !strings.Contains(ids, want) {
			t.Errorf("knownIDs missing %s: %s", want, ids)
		}
	}
}

// blockedDir returns a path that cannot be created: its parent is a
// regular file, which defeats MkdirAll for any privilege level (a
// read-only directory would not stop root).
func blockedDir(t *testing.T) string {
	t.Helper()
	parent := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(parent, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	return filepath.Join(parent, "dir")
}

// TestRunUnwritableOutFailsFast checks an unwritable -out dies with a
// clear error before any simulation runs (the error must name the dir).
func TestRunUnwritableOutFailsFast(t *testing.T) {
	dir := blockedDir(t)
	var b strings.Builder
	err := run([]string{"-fig", "fig12", "-quick", "-progress=false", "-out", dir}, &b)
	if err == nil {
		t.Fatal("unwritable -out accepted")
	}
	if !strings.Contains(err.Error(), "output dir") {
		t.Errorf("error does not identify the unwritable output dir: %v", err)
	}
	if b.Len() != 0 {
		t.Error("figures ran before the output dir was validated")
	}
}

// TestRunUnwritableCacheDirFailsFast: same contract for -cache-dir.
func TestRunUnwritableCacheDirFailsFast(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-fig", "fig12", "-quick", "-progress=false",
		"-cache", "-cache-dir", blockedDir(t)}, &b)
	if err == nil {
		t.Fatal("unwritable -cache-dir accepted")
	}
	if !strings.Contains(err.Error(), "cache dir") {
		t.Errorf("error does not identify the cache dir: %v", err)
	}
	if b.Len() != 0 {
		t.Error("figures ran before the cache dir was validated")
	}
}

// TestRunOutCreatesMissingDir checks -out creates nested directories.
func TestRunOutCreatesMissingDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "a", "b", "figs")
	var b strings.Builder
	if err := run([]string{"-fig", "fig05", "-quick", "-out", dir}, &b); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig05.csv")); err != nil {
		t.Fatalf("output not written into created dir: %v", err)
	}
}

// TestRunCacheWarmRun pins the end-to-end cache flow: a second -cache run
// hits every trial, reports the hit rate on stdout, exports the tally in
// -json, and produces byte-identical figure results.
func TestRunCacheWarmRun(t *testing.T) {
	cacheDir := filepath.Join(t.TempDir(), "cache")
	jsonPath := filepath.Join(t.TempDir(), "r.json")
	runOnce := func() (string, jsonDoc) {
		t.Helper()
		var b strings.Builder
		if err := run([]string{"-fig", "fig12", "-quick", "-progress=false",
			"-cache", "-cache-dir", cacheDir, "-json", jsonPath}, &b); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(jsonPath)
		if err != nil {
			t.Fatal(err)
		}
		var doc jsonDoc
		if err := json.Unmarshal(data, &doc); err != nil {
			t.Fatal(err)
		}
		return b.String(), doc
	}

	_, cold := runOnce()
	if cold.Cache == nil || cold.Cache.Misses == 0 {
		t.Fatalf("cold run cache tally wrong: %+v", cold.Cache)
	}
	if cold.Env.NumCPU == 0 || cold.Env.GoVersion == "" {
		t.Fatalf("env metadata missing: %+v", cold.Env)
	}

	out, warm := runOnce()
	if warm.Cache == nil || warm.Cache.Hits == 0 || warm.Cache.HitRate() != 1 {
		t.Fatalf("warm run should hit everything: %+v", warm.Cache)
	}
	if !strings.Contains(out, "hit rate") {
		t.Errorf("no hit-rate summary on stdout:\n%s", out)
	}

	// Byte identity: the exported results (wall-clock timing aside) match.
	stripJSON := func(doc jsonDoc) string {
		for i := range doc.Results {
			if doc.Results[i].Metrics != nil {
				doc.Results[i].Metrics.Timing = harness.Timing{}
			}
		}
		b, err := json.Marshal(doc.Results)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if c, w := stripJSON(cold), stripJSON(warm); c != w {
		t.Fatalf("warm results diverged from cold:\n%s\nvs\n%s", c, w)
	}
}

// TestRunCacheClear checks -cache-clear empties the store: the run after
// a clear is cold again.
func TestRunCacheClear(t *testing.T) {
	cacheDir := filepath.Join(t.TempDir(), "cache")
	jsonPath := filepath.Join(t.TempDir(), "r.json")
	runWith := func(extra ...string) jsonDoc {
		t.Helper()
		args := append([]string{"-fig", "fig12", "-quick", "-progress=false",
			"-cache", "-cache-dir", cacheDir, "-json", jsonPath}, extra...)
		var b strings.Builder
		if err := run(args, &b); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(jsonPath)
		if err != nil {
			t.Fatal(err)
		}
		var doc jsonDoc
		if err := json.Unmarshal(data, &doc); err != nil {
			t.Fatal(err)
		}
		return doc
	}

	runWith()
	cleared := runWith("-cache-clear")
	if cleared.Cache.Hits != 0 {
		t.Fatalf("-cache-clear did not empty the store: %+v", cleared.Cache)
	}
}
