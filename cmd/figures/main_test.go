package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleFigure(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-fig", "fig05", "-quick"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "fig05") || !strings.Contains(out, "m=8") {
		t.Errorf("figure output incomplete:\n%s", out)
	}
}

func TestRunWritesOutputFiles(t *testing.T) {
	dir := t.TempDir()
	var b strings.Builder
	if err := run([]string{"-fig", "fig05,fig10", "-quick", "-out", dir}, &b); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig05.csv", "fig05.txt", "fig10.csv", "fig10.txt"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("missing %s: %v", name, err)
		}
		if len(data) == 0 {
			t.Errorf("%s is empty", name)
		}
	}
	csv, err := os.ReadFile(filepath.Join(dir, "fig05.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(csv), "series,x,y\n") {
		t.Errorf("CSV header wrong: %q", string(csv[:20]))
	}
}

func TestRunRejectsUnknownFigure(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-fig", "fig99"}, &b)
	if err == nil {
		t.Fatal("unknown figure accepted")
	}
	if !strings.Contains(err.Error(), "fig99") {
		t.Errorf("error does not name the bad figure: %v", err)
	}
}

func TestKnownIDsListsAll(t *testing.T) {
	ids := knownIDs()
	for _, want := range []string{"fig04", "fig14", "extra-localization", "extra-distributed"} {
		if !strings.Contains(ids, want) {
			t.Errorf("knownIDs missing %s: %s", want, ids)
		}
	}
}
