package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"beaconsec/internal/textplot"
)

// goldenDoc is the stable projection of the -json export the golden file
// pins: run parameters plus every figure's series and notes, with the
// wall-clock metrics (and any fields added after the golden was cut)
// stripped. CI regenerates the same projection with jq.
type goldenDoc struct {
	Seed    uint64         `json:"seed"`
	Quick   bool           `json:"quick"`
	Results []goldenResult `json:"results"`
}

type goldenResult struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []textplot.Series
	Notes  []string
}

func goldenProject(t *testing.T, raw []byte) []byte {
	t.Helper()
	var doc goldenDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("projection does not parse: %v", err)
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestGoldenDefaultDetectorByteIdentity pins the refactor's headline
// contract: with the default (paper) detector, the quick seed-1
// detection figures are byte-identical to the output committed before
// the detector registry existed, at one worker and at a small pool.
func TestGoldenDefaultDetectorByteIdentity(t *testing.T) {
	golden, err := os.ReadFile(filepath.Join("..", "..", "results", "golden", "detect_quick_seed1.json"))
	if err != nil {
		t.Fatalf("golden file missing: %v", err)
	}
	want := goldenProject(t, golden)

	for _, workers := range []int{1, 2} {
		path := filepath.Join(t.TempDir(), "out.json")
		var b strings.Builder
		args := []string{"-fig", "fig12,fig13", "-quick", "-seed", "1",
			"-progress=false", "-workers", strconv.Itoa(workers), "-json", path}
		if err := run(args, &b); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if got := goldenProject(t, raw); !bytes.Equal(want, got) {
			t.Errorf("workers=%d: output diverged from the pre-refactor golden:\n--- want\n%s\n--- got\n%s",
				workers, want, got)
		}
	}
}

// TestRunRejectsUnknownDetector: a detector name the registry does not
// know must fail before any simulation, naming the registered options.
func TestRunRejectsUnknownDetector(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-fig", "fig05", "-quick", "-progress=false",
		"-detectors", "paper,bogus"}, &b)
	if err == nil {
		t.Fatal("unknown detector accepted")
	}
	for _, want := range []string{`unknown detector "bogus"`, "mahalanobis", "ml", "paper"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

// TestRunRejectsMalformedDetectorSpec: parameter-syntax errors fail fast
// too.
func TestRunRejectsMalformedDetectorSpec(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-fig", "fig05", "-quick", "-progress=false",
		"-detectors", "ml{bias="}, &b)
	if err == nil {
		t.Fatal("malformed detector spec accepted")
	}
}

// TestParseDetectorsAcceptsList covers the happy path, including braced
// parameters containing commas.
func TestParseDetectorsAcceptsList(t *testing.T) {
	specs, err := parseDetectors("paper,mahalanobis{threshold=2.5},ml{bias=20,lambda=0.5}")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 {
		t.Fatalf("got %d specs, want 3", len(specs))
	}
	if got := specs[1].Canonical(); got != "mahalanobis{threshold=2.5}" {
		t.Errorf("specs[1] = %q", got)
	}
}
