package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"beaconsec/internal/crypto"
	"beaconsec/internal/ident"
	"beaconsec/internal/revnet"
	"beaconsec/internal/revoke"
)

// syncBuffer lets the test read run's output while run is still writing.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// waitMatch polls out until re's first capture group appears.
func waitMatch(t *testing.T, out *syncBuffer, re *regexp.Regexp) string {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if m := re.FindStringSubmatch(out.String()); m != nil {
			return m[1]
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("output never matched %v; got:\n%s", re, out.String())
	return ""
}

func TestRunServesAlertsAndStatus(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	out := &syncBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-status", "127.0.0.1:0",
			"-master", "test-secret",
			"-tau", "5",
			"-tauprime", "1",
			"-json", "-",
		}, out)
	}()

	addr := waitMatch(t, out, regexp.MustCompile(`serving on ([0-9.:]+) `))
	statusURL := waitMatch(t, out, regexp.MustCompile(`status at (http://[0-9.:]+/status)`))

	master := crypto.NewMaster([]byte("test-secret"))
	send := func(self ident.NodeID) {
		t.Helper()
		c, err := revnet.NewClient(revnet.ClientConfig{
			Addr: addr,
			Self: self,
			Key:  master.BaseStationKey(self),
		})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if _, err := c.SendAlert(ctx, 99); err != nil {
			t.Fatal(err)
		}
	}
	// τ′=1: two distinct accusers revoke node 99.
	send(1)
	send(2)

	resp, err := http.Get(statusURL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var live revnet.StatusSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&live); err != nil {
		t.Fatal(err)
	}
	if len(live.Revoked) != 1 || live.Revoked[0] != 99 {
		t.Errorf("live status revoked = %v, want [99]", live.Revoked)
	}
	if live.Revoke != (revoke.Config{ReportCap: 5, AlertThreshold: 1}) {
		t.Errorf("live status thresholds = %+v", live.Revoke)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not stop after cancel")
	}

	// -json -: the shutdown snapshot follows the log lines on stdout.
	text := out.String()
	if !strings.Contains(text, "shutting down") {
		t.Errorf("no shutdown line in output:\n%s", text)
	}
	var final revnet.StatusSnapshot
	if err := json.Unmarshal([]byte(text[strings.Index(text, "{"):]), &final); err != nil {
		t.Fatalf("shutdown snapshot is not JSON: %v\noutput:\n%s", err, text)
	}
	if len(final.Revoked) != 1 || final.Revoked[0] != 99 {
		t.Errorf("final snapshot revoked = %v, want [99]", final.Revoked)
	}
	if final.Net.FramesIn != 2 {
		t.Errorf("final snapshot frames_in = %d, want 2", final.Net.FramesIn)
	}
}

func TestRunJSONFile(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	path := t.TempDir() + "/status.json"
	out := &syncBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-master", "test-secret",
			"-json", path,
		}, out)
	}()
	waitMatch(t, out, regexp.MustCompile(`serving on ([0-9.:]+) `))
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap revnet.StatusSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("snapshot file is not JSON: %v", err)
	}
	if snap.Revoke.ReportCap != 5 {
		t.Errorf("snapshot τ = %d, want default 5", snap.Revoke.ReportCap)
	}
}

func TestRunFlagErrors(t *testing.T) {
	ctx := context.Background()
	var out bytes.Buffer
	if err := run(ctx, nil, &out); err == nil {
		t.Error("missing -master accepted")
	}
	if err := run(ctx, []string{"-master", "x", "-tauprime", "-1"}, &out); err == nil {
		t.Error("negative τ′ accepted")
	}
	if err := run(ctx, []string{"-master", "x", "-addr", "not-an-address"}, &out); err == nil {
		t.Error("unlistenable address accepted")
	}
	if err := run(ctx, []string{"-bogus"}, &out); err == nil {
		t.Error("unknown flag accepted")
	}
}
