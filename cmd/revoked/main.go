// Command revoked runs the networked base station: a long-lived TCP
// service accepting authenticated alert uplinks from beacon nodes and
// answering revocation-status queries (paper §3, "revoking malicious
// beacon nodes"). It is the live counterpart of the in-simulation
// revoke.BaseStation.
//
// Usage:
//
//	revoked [-addr HOST:PORT] [-tau N] [-tauprime N] [-shards N]
//	        [-master SECRET] [-idle DUR] [-status HOST:PORT] [-json FILE]
//
// -master seeds key derivation; every node's base-station key derives
// from it exactly as in the simulation, so a simulated deployment and a
// live service provisioned from the same secret interoperate.
//
// -status serves the operational snapshot (revoked set, per-shard stats,
// wire counters) as JSON over HTTP at /status while the service runs.
// -json writes the same snapshot to a file at shutdown ("-" for stdout),
// mirroring 'figures -json'. The service stops on SIGINT/SIGTERM.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"beaconsec/internal/crypto"
	"beaconsec/internal/revnet"
	"beaconsec/internal/revoke"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "revoked:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("revoked", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7764", "TCP address to serve alerts and queries on")
	tau := fs.Int("tau", 5, "report cap τ: alerts accepted per reporter beyond the first")
	tauPrime := fs.Int("tauprime", 3, "alert threshold τ′: a node is revoked when its alert counter exceeds this")
	shards := fs.Int("shards", 16, "lock shards for the revocation counters (rounded up to a power of two)")
	master := fs.String("master", "", "master secret for key derivation (required)")
	idle := fs.Duration("idle", 2*time.Minute, "drop connections idle longer than this (0 = never)")
	status := fs.String("status", "", "optional HTTP address serving the status snapshot at /status")
	jsonOut := fs.String("json", "", "write the final status snapshot as JSON to FILE at shutdown ('-' for stdout)")
	fs.SetOutput(out)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *master == "" {
		return errors.New("-master is required: nodes authenticate under keys derived from it")
	}

	srv, err := revnet.NewServer(revnet.ServerConfig{
		Revoke:      revoke.Config{ReportCap: *tau, AlertThreshold: *tauPrime},
		Shards:      *shards,
		Master:      crypto.NewMaster([]byte(*master)),
		IdleTimeout: *idle,
	})
	if err != nil {
		return err
	}

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "revoked: serving on %s (τ=%d, τ′=%d, %d shards)\n",
		lis.Addr(), *tau, *tauPrime, srv.Station().NumShards())

	var statusSrv *http.Server
	statusErr := make(chan error, 1)
	if *status != "" {
		mux := http.NewServeMux()
		mux.Handle("/status", srv)
		statusLis, err := net.Listen("tcp", *status)
		if err != nil {
			lis.Close()
			return fmt.Errorf("status listener: %w", err)
		}
		fmt.Fprintf(out, "revoked: status at http://%s/status\n", statusLis.Addr())
		statusSrv = &http.Server{Handler: mux}
		go func() { statusErr <- statusSrv.Serve(statusLis) }()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(lis) }()

	select {
	case <-ctx.Done():
		fmt.Fprintln(out, "revoked: shutting down")
	case err := <-serveErr:
		if err != nil {
			return err
		}
	case err := <-statusErr:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			srv.Close()
			return fmt.Errorf("status server: %w", err)
		}
	}
	if statusSrv != nil {
		statusSrv.Close()
	}
	if err := srv.Close(); err != nil {
		return err
	}

	if *jsonOut != "" {
		w := out
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		if err := srv.WriteStatus(w); err != nil {
			return err
		}
	}
	return nil
}
