// Command beaconsim runs one end-to-end secure-location-discovery
// simulation and prints its metrics.
//
// Usage:
//
//	beaconsim [-n 1000] [-nb 110] [-na 10] [-p 0.2] [-tau 10] [-tauprime 2]
//	          [-pd 0.9] [-m 8] [-wormhole] [-collude] [-seed 1]
//	          [-queue auto|heap|wheel] [-cache] [-cache-dir DIR]
//	beaconsim -metro [-nodes 100000] [-queue auto|heap|wheel]
//	          [-metro-workers K] [-seed 1]
//
// -cache memoizes the run's result content-addressed by the full
// configuration (including -seed): repeating an identical invocation
// replays the stored result instead of simulating, and any flag change
// recomputes. The cache directory is shared with 'figures -cache'.
//
// -metro switches to the memory-bounded metro-scale scenario: -nodes
// sets the population (the deployment is streamed, per-node results are
// never retained), -queue selects the event queue — auto picks the
// timing wheel at metro populations — and -metro-workers runs the
// space-partitioned parallel kernel with K sharded schedulers. Results
// are byte-identical across queues, and every identity-pinned field is
// byte-identical across worker counts; the report ends with throughput
// and peak-memory lines (machine-dependent, never part of the identity
// contract). A metro run is interruptible: SIGINT/SIGTERM cancel it
// mid-stream or mid-run.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"time"

	"beaconsec/internal/analysis"
	"beaconsec/internal/cache"
	"beaconsec/internal/core"
	"beaconsec/internal/experiment"
	"beaconsec/internal/metrics"
	"beaconsec/internal/revoke"
	"beaconsec/internal/scenario"
	"beaconsec/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "beaconsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("beaconsim", flag.ContinueOnError)
	n := fs.Int("n", 1000, "total sensor nodes")
	nb := fs.Int("nb", 110, "beacon nodes")
	na := fs.Int("na", 10, "compromised beacon nodes")
	p := fs.Float64("p", 0.2, "attacker strategy P (undetected-attack probability)")
	tau := fs.Int("tau", 10, "report-counter cap τ")
	tauPrime := fs.Int("tauprime", 2, "alert threshold τ'")
	pd := fs.Float64("pd", 0.9, "wormhole detector rate p_d")
	m := fs.Int("m", 8, "detecting IDs per beacon node")
	wormhole := fs.Bool("wormhole", true, "install the paper's wormhole tunnel")
	collude := fs.Bool("collude", true, "malicious beacons flood coordinated alerts")
	detector := fs.String("detector", "", "detection pipeline, e.g. paper or mahalanobis{threshold=2.5} (default: the paper pipeline)")
	seed := fs.Uint64("seed", 1, "random seed")
	useCache := fs.Bool("cache", false, "memoize the run's result on disk (see -cache-dir)")
	cacheDir := fs.String("cache-dir", filepath.Join("results", "cache"), "result cache directory")
	metro := fs.Bool("metro", false, "run the memory-bounded metro-scale scenario instead")
	nodes := fs.Int64("nodes", 100_000, "metro population (with -metro)")
	metroWorkers := fs.Int("metro-workers", 1, "parallel shard count for -metro (identity-pinned results are byte-identical at any value)")
	queue := fs.String("queue", "auto", "simulation event queue: auto, heap, or wheel (results are byte-identical)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	queueKind, err := sim.ParseQueueKind(*queue)
	if err != nil {
		return err
	}

	if *metro {
		return runMetro(out, *nodes, queueKind, *metroWorkers, *seed)
	}

	cfg := scenario.Paper()
	cfg.Queue = queueKind
	cfg.Deploy.N = *n
	cfg.Deploy.Nb = *nb
	cfg.Deploy.Na = *na
	cfg.Deploy.DetectingIDs = *m
	cfg.Deploy.Seed = *seed
	cfg.Strategy = analysis.StrategyForP(*p)
	cfg.Revoke = revoke.Config{ReportCap: *tau, AlertThreshold: *tauPrime}
	cfg.WormholeRate = *pd
	cfg.Collude = *collude
	cfg.Seed = *seed
	if !*wormhole {
		cfg.Wormholes = nil
	}
	if *detector != "" {
		spec, err := core.ParseDetectorSpec(*detector)
		if err != nil {
			return err
		}
		if !core.DetectorRegistered(spec.Name) {
			return fmt.Errorf("unknown detector %q (registered: %s)",
				spec.Name, strings.Join(core.DetectorNames(), ", "))
		}
		cfg.Detector = spec
	}
	if err := cfg.Validate(); err != nil {
		return err
	}

	res, err := runMaybeCached(cfg, *useCache, *cacheDir, out)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "population           N=%d Nb=%d Na=%d (m=%d, range=%.0fft)\n",
		*n, *nb, *na, *m, cfg.Deploy.Range)
	fmt.Fprintf(out, "attacker strategy    P=%.2f  thresholds tau=%d tau'=%d  p_d=%.2f\n",
		*p, *tau, *tauPrime, *pd)
	fmt.Fprintf(out, "RTT replay threshold %.0f cycles\n", res.RTTThreshold)
	fmt.Fprintf(out, "detector             %s\n", res.Detector)
	fmt.Fprintln(out)
	fmt.Fprintf(out, "revoked malicious    %d / %d  (detection rate %.2f)\n",
		res.RevokedMalicious, *na, res.DetectionRate)
	fmt.Fprintf(out, "revoked benign       %d / %d  (false positive rate %.3f)\n",
		res.RevokedBenign, *nb-*na, res.FalsePositiveRate)
	fmt.Fprintf(out, "alerts               %d true, %d benign-vs-benign (wormhole-induced)\n",
		res.TrueAlerts, res.BenignAlerts)
	fmt.Fprintf(out, "affected sensors     %.2f per surviving malicious beacon (avg Nc %.1f)\n",
		res.AffectedPerMalicious, res.AvgNc)
	fmt.Fprintf(out, "localization         %d sensors localized, mean error %.1f ft (max %.1f)\n",
		res.Localized, res.LocErrMean, res.LocErrMax)
	fmt.Fprintf(out, "radio                %d transmissions, %d deliveries, %d collisions, %d request timeouts\n",
		res.Medium.Transmissions, res.Medium.Deliveries, res.Medium.Collisions, res.Timeouts)
	return nil
}

// runMetro executes one metro-scale run and prints its accounting. No
// caching: a metro run is a single pass, and its performance knobs (the
// queue and the worker count) deliberately never change identity-pinned
// results. The trailing queue/events/memory lines carry per-shard
// instrumentation and machine-dependent throughput — the CI identity
// legs strip them before diffing.
func runMetro(out io.Writer, nodes int64, queue sim.QueueKind, workers int, seed uint64) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	cfg := scenario.MetroPaper(nodes, seed)
	cfg.Queue = queue
	cfg.Workers = workers
	start := time.Now()
	res, err := scenario.RunMetro(ctx, cfg)
	if err != nil {
		return err
	}
	wall := time.Since(start)
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	env := metrics.CaptureEnv()
	fmt.Fprintf(out, "population           %d nodes, %d beacons (%d malicious), field %.0fx%.0f ft\n",
		res.Nodes, res.Beacons, res.Malicious,
		cfg.Deploy.Field.Width(), cfg.Deploy.Field.Height())
	fmt.Fprintf(out, "queue                %s x %d worker(s) (max pending %d, p99 depth %.0f)\n",
		queue, workers, res.Sim.MaxPending, res.QueueDepth.Quantile(0.99))
	fmt.Fprintf(out, "probes               %d sent: %d replied, %d timed out\n",
		res.Probes, res.Replies, res.Timeouts)
	fmt.Fprintf(out, "consistency check    %d malicious replies flagged (rate %.3f), %d benign flagged\n",
		res.FlaggedMalicious, res.FlagRate, res.FlaggedBenign)
	fmt.Fprintf(out, "events               %d fired in %.2fs wall clock (%.2fM events/s, GOMAXPROCS=%d of %d CPUs)\n",
		res.Sim.Events, wall.Seconds(), float64(res.Sim.Events)/wall.Seconds()/1e6,
		env.GOMAXPROCS, env.NumCPU)
	fmt.Fprintf(out, "memory               ~%.0f MB peak footprint (runtime.MemStats.Sys estimate; see results/BENCH_*_metro.json for getrusage RSS)\n",
		float64(ms.Sys)/1e6)
	return nil
}

// runMaybeCached executes the simulation, memoized on disk when asked.
// Both the hit and miss path decode the stored JSON, so cached and fresh
// invocations print identical numbers by construction. The cached form
// keeps only the exported result (the report's inputs); the node-level
// accessors are not retained, which this command never uses.
func runMaybeCached(cfg scenario.Config, useCache bool, dir string, out io.Writer) (*scenario.Result, error) {
	if !useCache {
		return scenario.Run(cfg)
	}
	c, err := cache.New(cache.Config{Dir: dir})
	if err != nil {
		return nil, fmt.Errorf("cache dir: %w", err)
	}
	// The full config — seeds included — addresses the entry: a single
	// run's identity is every flag that shaped it.
	key := cache.Fingerprint(cache.CodeSalt,
		experiment.EncodeKey("beaconsim", cfg.Detector.Canonical(), cfg))
	data, hit, err := c.GetOrCompute(key, func() ([]byte, error) {
		res, rerr := scenario.Run(cfg)
		if rerr != nil {
			return nil, rerr
		}
		return json.Marshal(res)
	})
	if err != nil {
		return nil, err
	}
	res := new(scenario.Result)
	if uerr := json.Unmarshal(data, res); uerr != nil {
		// A stale-schema entry (result shape changed without a salt
		// bump): recompute and overwrite rather than fail.
		fresh, rerr := scenario.Run(cfg)
		if rerr != nil {
			return nil, rerr
		}
		if data, rerr = json.Marshal(fresh); rerr != nil {
			return nil, rerr
		}
		c.Put(key, data)
		res = new(scenario.Result)
		if uerr = json.Unmarshal(data, res); uerr != nil {
			return nil, fmt.Errorf("cache: result does not round-trip: %w", uerr)
		}
		hit = false
	}
	if hit {
		fmt.Fprintf(out, "cache                hit (%s)\n", dir)
	} else {
		fmt.Fprintf(out, "cache                miss, stored (%s)\n", dir)
	}
	return res, nil
}
