package main

import (
	"strings"
	"testing"
)

func smallArgs(extra ...string) []string {
	base := []string{"-n", "300", "-nb", "33", "-na", "3", "-seed", "2"}
	return append(base, extra...)
}

func TestRunSmallNetwork(t *testing.T) {
	var b strings.Builder
	if err := run(smallArgs("-p", "0.5", "-wormhole=false", "-collude=false"), &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"population", "N=300 Nb=33 Na=3",
		"revoked malicious", "detection rate",
		"localization", "radio",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunRejectsInvalidPopulation(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-n", "10", "-nb", "20"}, &b); err == nil {
		t.Error("Nb > N accepted")
	}
}

func TestRunRejectsBadFlag(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-bogus"}, &b); err == nil {
		t.Error("unknown flag accepted")
	}
}
