package main

import (
	"strings"
	"testing"
)

func smallArgs(extra ...string) []string {
	base := []string{"-n", "300", "-nb", "33", "-na", "3", "-seed", "2"}
	return append(base, extra...)
}

func TestRunSmallNetwork(t *testing.T) {
	var b strings.Builder
	if err := run(smallArgs("-p", "0.5", "-wormhole=false", "-collude=false"), &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"population", "N=300 Nb=33 Na=3",
		"revoked malicious", "detection rate",
		"localization", "radio",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunRejectsInvalidPopulation(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-n", "10", "-nb", "20"}, &b); err == nil {
		t.Error("Nb > N accepted")
	}
}

func TestRunRejectsBadFlag(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-bogus"}, &b); err == nil {
		t.Error("unknown flag accepted")
	}
}

// TestRunCachedReplayMatches runs the same configuration cold and warm
// through -cache: the warm run must report a hit and print the same
// numbers (only the cache status line differs).
func TestRunCachedReplayMatches(t *testing.T) {
	dir := t.TempDir()
	runOnce := func() string {
		t.Helper()
		var b strings.Builder
		args := smallArgs("-p", "0.5", "-wormhole=false", "-collude=false",
			"-cache", "-cache-dir", dir)
		if err := run(args, &b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	stripStatus := func(out string) string {
		var kept []string
		for _, line := range strings.Split(out, "\n") {
			if !strings.HasPrefix(line, "cache ") {
				kept = append(kept, line)
			}
		}
		return strings.Join(kept, "\n")
	}

	cold := runOnce()
	if !strings.Contains(cold, "cache                miss, stored") {
		t.Fatalf("cold run did not report a miss:\n%s", cold)
	}
	warm := runOnce()
	if !strings.Contains(warm, "cache                hit") {
		t.Fatalf("warm run did not report a hit:\n%s", warm)
	}
	if stripStatus(cold) != stripStatus(warm) {
		t.Fatalf("cached replay changed the report:\n%s\nvs\n%s", cold, warm)
	}

	// Any flag change must miss: same population, different seed.
	var b strings.Builder
	args := []string{"-n", "300", "-nb", "33", "-na", "3", "-seed", "3",
		"-p", "0.5", "-wormhole=false", "-collude=false", "-cache", "-cache-dir", dir}
	if err := run(args, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "miss, stored") {
		t.Fatalf("seed change replayed a stale entry:\n%s", b.String())
	}
}

// TestRunDetectorFlag: -detector threads through to the run report, and
// an unregistered name fails fast naming the registered detectors.
func TestRunDetectorFlag(t *testing.T) {
	var b strings.Builder
	if err := run(smallArgs("-p", "0.5", "-wormhole=false", "-collude=false",
		"-detector", "ml{bias=20}"), &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "detector             ml{bias=20}") {
		t.Errorf("report does not name the detector:\n%s", b.String())
	}

	err := run(smallArgs("-detector", "bogus"), &strings.Builder{})
	if err == nil {
		t.Fatal("unknown detector accepted")
	}
	for _, want := range []string{`unknown detector "bogus"`, "paper"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

// TestRunMetroReport exercises the -metro path end to end: the report
// carries the throughput and peak-memory lines (satellite contract), and
// a parallel invocation is identical to the serial one once the
// machine-dependent queue/events/memory lines are stripped — the exact
// comparison the CI parallel-identity leg performs on the built binary.
func TestRunMetroReport(t *testing.T) {
	stripMachine := func(out string) string {
		var kept []string
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, "queue") ||
				strings.HasPrefix(line, "events") ||
				strings.HasPrefix(line, "memory") {
				continue
			}
			kept = append(kept, line)
		}
		return strings.Join(kept, "\n")
	}
	runMetroOnce := func(workers string) string {
		t.Helper()
		var b strings.Builder
		args := []string{"-metro", "-nodes", "3000", "-seed", "2", "-metro-workers", workers}
		if err := run(args, &b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}

	serial := runMetroOnce("1")
	for _, want := range []string{
		"population", "probes", "consistency check",
		"events/s", "GOMAXPROCS", "memory", "peak footprint",
		"x 1 worker(s)",
	} {
		if !strings.Contains(serial, want) {
			t.Errorf("metro report missing %q:\n%s", want, serial)
		}
	}

	parallel := runMetroOnce("4")
	if !strings.Contains(parallel, "x 4 worker(s)") {
		t.Errorf("parallel report does not name the worker count:\n%s", parallel)
	}
	if stripMachine(serial) != stripMachine(parallel) {
		t.Fatalf("parallel metro report diverged from serial:\n--- serial\n%s\n--- parallel\n%s",
			serial, parallel)
	}
}

func TestRunMetroRejectsNegativeWorkers(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-metro", "-nodes", "1000", "-metro-workers", "-1"}, &b); err == nil {
		t.Error("negative worker count accepted")
	}
}
