package main

import (
	"strings"
	"testing"
)

func TestRunOutput(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-trials", "500", "-seed", "3"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"x_min", "x_max", "spread", "replay detection threshold", "500 exchanges"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunRejectsBadTrials(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-trials", "0"}, &b); err == nil {
		t.Error("trials=0 accepted")
	}
}

func TestRunRejectsBadFlag(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-nonsense"}, &b); err == nil {
		t.Error("unknown flag accepted")
	}
}
