// Command rttcal runs the round-trip-time calibration of the paper's
// Figure 4: it measures RTT = (t4-t1) - (t3-t2) over many request/reply
// exchanges on the simulated MICA2-class radio stack and prints the
// empirical distribution, x_min, x_max, and the derived local-replay
// detection threshold.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"beaconsec/internal/core"
	"beaconsec/internal/phy"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rttcal:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rttcal", flag.ContinueOnError)
	trials := fs.Int("trials", 10000, "request/reply exchanges to measure")
	seed := fs.Uint64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *trials <= 0 {
		return fmt.Errorf("trials must be positive, got %d", *trials)
	}

	cal := core.CalibrateRTT(*trials, phy.DefaultJitter(), *seed)
	fmt.Fprintf(out, "RTT calibration over %d exchanges (CPU @ 7.3728 MHz, %d cycles/bit)\n\n",
		cal.Len(), phy.CyclesPerBit)
	fmt.Fprintln(out, "  quantile      RTT (cycles)")
	for _, q := range []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		fmt.Fprintf(out, "  %6.2f %17.0f\n", q, cal.Quantile(q))
	}
	fmt.Fprintln(out)
	fmt.Fprintf(out, "x_min  = %8.0f cycles (max x with F(x)=0)\n", cal.XMin())
	fmt.Fprintf(out, "x_max  = %8.0f cycles (min x with F(x)=1)\n", cal.XMax())
	fmt.Fprintf(out, "spread = %8.2f bit-times (paper reports ~4.5)\n", cal.SpreadBits())
	fmt.Fprintf(out, "replay detection threshold = %.0f cycles (x_max + %d guard band)\n",
		cal.Threshold(), int(core.GuardBand))
	fmt.Fprintf(out, "one replayed 16-byte packet adds >= %d cycles: always detected\n",
		phy.FrameAirTime(16))
	return nil
}
