package beaconsec_test

import (
	"errors"
	"math"
	"testing"

	"beaconsec"
)

func TestFacadeQuickScenario(t *testing.T) {
	cfg := beaconsec.PaperScenario()
	cfg.Deploy.N = 300
	cfg.Deploy.Nb = 33
	cfg.Deploy.Na = 3
	cfg.Deploy.Field = beaconsec.Square(550)
	cfg.Strategy = beaconsec.StrategyForP(0.5)
	cfg.Wormholes = nil
	cfg.Collude = false
	cfg.CalibrationTrials = 500
	res, err := beaconsec.RunScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.DetectionRate < 0.5 {
		t.Errorf("detection rate %v at P=0.5", res.DetectionRate)
	}
	if res.FalsePositiveRate != 0 {
		t.Errorf("false positives %v without wormholes/collusion", res.FalsePositiveRate)
	}
}

func TestFacadeAnalysis(t *testing.T) {
	if got := beaconsec.DetectionRate(0.5, 2); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("DetectionRate = %v", got)
	}
	pop := beaconsec.PaperPopulation()
	if pop.N != 1000 || pop.Nb != 110 || pop.Na != 10 {
		t.Errorf("PaperPopulation = %+v", pop)
	}
	if pd := beaconsec.RevocationRate(0.3, 8, 2, 100, pop); pd <= 0 || pd > 1 {
		t.Errorf("RevocationRate = %v", pd)
	}
	if n := beaconsec.AffectedNodes(0.3, 8, 2, 100, pop); n < 0 {
		t.Errorf("AffectedNodes = %v", n)
	}
	maxN, argP := beaconsec.MaxAffected(8, 2, 100, pop)
	if maxN <= 0 || argP <= 0 || argP > 1 {
		t.Errorf("MaxAffected = %v at %v", maxN, argP)
	}
	if nf := beaconsec.FalsePositiveBound(10, 10, 10, 2, 0.9); math.Abs(nf-(0.1*10+110)/3) > 1e-9 {
		t.Errorf("FalsePositiveBound = %v", nf)
	}
}

func TestFacadeCalibration(t *testing.T) {
	cal := beaconsec.CalibrateRTT(500, 1)
	if cal.Len() != 500 {
		t.Fatalf("Len = %d", cal.Len())
	}
	if cal.Threshold() <= cal.XMax() {
		t.Error("Threshold not above XMax")
	}
}

func TestFacadeDetector(t *testing.T) {
	cal := beaconsec.CalibrateRTT(500, 2)
	cfg := beaconsec.DetectorConfig{
		MaxDistError: 10,
		MaxRTT:       cal.Threshold(),
		Range:        150,
	}
	benign := beaconsec.Observation{
		OwnLoc:       beaconsec.Point{X: 0, Y: 0},
		OwnKnown:     true,
		Claimed:      beaconsec.Point{X: 100, Y: 0},
		MeasuredDist: 104,
		RTT:          cal.XMin(),
	}
	if v := cfg.EvaluateDetector(benign); v != beaconsec.VerdictBenign {
		t.Errorf("benign exchange verdict = %v", v)
	}
	attack := benign
	attack.MeasuredDist = 140
	if v := cfg.EvaluateDetector(attack); v != beaconsec.VerdictMalicious {
		t.Errorf("attack verdict = %v", v)
	}
}

func TestFacadeLocalization(t *testing.T) {
	truth := beaconsec.Point{X: 40, Y: 35}
	beacons := []beaconsec.Point{{X: 0, Y: 0}, {X: 100, Y: 0}, {X: 50, Y: 90}}
	refs := make([]beaconsec.Reference, len(beacons))
	for i, b := range beacons {
		refs[i] = beaconsec.Reference{Loc: b, Dist: truth.Dist(b)}
	}
	got, err := beaconsec.Multilaterate(refs)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dist(truth) > 1e-6 {
		t.Errorf("Multilaterate = %v, want %v", got, truth)
	}
	if _, err := beaconsec.MinMaxLocalize(refs); err != nil {
		t.Errorf("MinMax: %v", err)
	}
	if _, err := beaconsec.CentroidLocalize(refs); err != nil {
		t.Errorf("Centroid: %v", err)
	}
}

func TestFacadeFigures(t *testing.T) {
	ids := beaconsec.Figures()
	if len(ids) != 19 {
		t.Fatalf("Figures() = %v", ids)
	}
	r, err := beaconsec.RunFigure("fig05", beaconsec.ExperimentOptions{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) == 0 {
		t.Error("fig05 empty")
	}
	if _, err := beaconsec.RunFigure("bogus", beaconsec.ExperimentOptions{}); !errors.Is(err, beaconsec.ErrUnknownFigure) {
		t.Errorf("bogus figure: err = %v, want ErrUnknownFigure", err)
	}
}

func TestFacadeAoA(t *testing.T) {
	truth := beaconsec.Point{X: 40, Y: 30}
	beacons := []beaconsec.Point{{X: 0, Y: 0}, {X: 100, Y: 0}, {X: 50, Y: 90}}
	refs := make([]beaconsec.BearingReference, len(beacons))
	for i, b := range beacons {
		refs[i] = beaconsec.BearingReference{Loc: b, Bearing: bearing(truth, b)}
	}
	got, err := beaconsec.Triangulate(refs)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dist(truth) > 1e-6 {
		t.Errorf("Triangulate = %v, want %v", got, truth)
	}
	a := beaconsec.AoAConfig{MaxAngleError: 0.05}
	bad := beaconsec.AoAObservation{
		OwnLoc: truth, OwnKnown: true,
		Claimed:         beaconsec.Point{X: 0, Y: 0},
		MeasuredBearing: bearing(truth, beaconsec.Point{X: 100, Y: 0}),
	}
	if !a.SignalMaliciousAoA(bad) {
		t.Error("AoA mismatch not flagged")
	}
}

func bearing(p, q beaconsec.Point) float64 {
	return math.Atan2(q.Y-p.Y, q.X-p.X)
}

func TestFacadeDVHop(t *testing.T) {
	var truth []beaconsec.Point
	var isBeacon []bool
	for x := 0.0; x < 500; x += 55 {
		for y := 0.0; y < 500; y += 55 {
			truth = append(truth, beaconsec.Point{X: x, Y: y})
			isBeacon = append(isBeacon, int(x+y)%165 == 0)
		}
	}
	res := beaconsec.DVHop(truth, isBeacon, beaconsec.DVHopConfig{Range: 120})
	if res.HopDist <= 0 {
		t.Fatalf("HopDist = %v", res.HopDist)
	}
}

func TestFacadeTesla(t *testing.T) {
	chain := beaconsec.NewTeslaChain(10, beaconsec.Seconds(1), 2, 0, 1)
	recv := beaconsec.NewTeslaReceiver(chain.Anchor(), beaconsec.Seconds(1), 2, 0)
	msg := []byte("revoke n9")
	tag, interval := chain.Sign(msg, beaconsec.Seconds(3.5))
	recv.Receive(msg, tag, interval, beaconsec.Seconds(3.6))
	ix, key, ok := chain.Disclosable(beaconsec.Seconds(5.5))
	if !ok {
		t.Fatal("key not disclosable")
	}
	if err := recv.Disclose(key, ix); err != nil {
		t.Fatal(err)
	}
	if len(recv.Accepted) != 1 {
		t.Errorf("Accepted = %d", len(recv.Accepted))
	}
}
