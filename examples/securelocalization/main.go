// Securelocalization demonstrates the paper's motivating claim end to
// end: compromised beacon nodes corrupt location discovery, and the
// detect-and-revoke defense restores it. It runs the same network twice —
// once defenseless, once with the full paper defense — and compares
// sensor localization error, then shows the underlying mechanism on a
// single hand-built multilateration.
package main

import (
	"fmt"
	"log"

	"beaconsec"
)

func main() {
	// Part 1 — the micro view: one sensor, four references, one lie.
	fmt.Println("=== one corrupted reference skews multilateration ===")
	truth := beaconsec.Point{X: 75, Y: 75}
	beacons := []beaconsec.Point{{X: 0, Y: 0}, {X: 150, Y: 0}, {X: 0, Y: 150}, {X: 150, Y: 150}}
	refs := make([]beaconsec.Reference, len(beacons))
	for i, b := range beacons {
		refs[i] = beaconsec.Reference{Loc: b, Dist: truth.Dist(b)}
	}
	clean, err := beaconsec.Multilaterate(refs)
	if err != nil {
		log.Fatal(err)
	}
	refs[0].Dist += 50 // a compromised beacon enlarges its distance
	skewed, err := beaconsec.Multilaterate(refs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("true position %v; clean estimate error %.2f ft; with one malicious reference %.1f ft\n\n",
		truth, clean.Dist(truth), skewed.Dist(truth))

	// Part 2 — the macro view: a 1,000-node network at P = 0.5.
	run := func(defended bool) *beaconsec.ScenarioResult {
		cfg := beaconsec.PaperScenario()
		cfg.Strategy = beaconsec.StrategyForP(0.5)
		cfg.Collude = false // isolate the localization effect
		cfg.CalibrationTrials = 1000
		if !defended {
			cfg.DisableRTTFilter = true
			cfg.DisableWormholeFilter = true
			cfg.Revoke.AlertThreshold = 1 << 20 // never revoke
		}
		res, err := beaconsec.RunScenario(cfg)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	defended := run(true)
	undefended := run(false)

	fmt.Println("=== paper-scale network, attacker at P = 0.5 ===")
	fmt.Printf("%-12s %10s %12s %14s %10s\n", "", "localized", "mean err", "misled/beacon", "revoked")
	fmt.Printf("%-12s %10d %9.1f ft %14.2f %10d\n", "undefended",
		undefended.Localized, undefended.LocErrMean, undefended.AffectedPerMalicious,
		undefended.RevokedMalicious)
	fmt.Printf("%-12s %10d %9.1f ft %14.2f %10d\n", "defended",
		defended.Localized, defended.LocErrMean, defended.AffectedPerMalicious,
		defended.RevokedMalicious)
	fmt.Println("\nThe defense revokes the compromised beacons before most sensors ask")
	fmt.Println("them for references, pulling the mean localization error back toward")
	fmt.Println("the 10 ft ranging-noise floor.")
}
