// Revocation explores the paper's §3 threshold trade-off: the report cap
// τ bounds how much damage colluding malicious reporters can do, while
// the alert threshold τ′ sets how many independent accusations revoke a
// node. The example sweeps τ at fixed τ′ and prints the resulting
// operating points — the simulated version of the paper's Figure 14 ROC —
// then replays one revocation over the live TCP service (internal/revnet,
// the same machinery behind cmd/revoked).
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"beaconsec"
	"beaconsec/internal/crypto"
	"beaconsec/internal/ident"
	"beaconsec/internal/revnet"
	"beaconsec/internal/revoke"
)

func main() {
	// A reduced network keeps the sweep fast; densities match the paper.
	base := beaconsec.PaperScenario()
	base.Deploy.N = 500
	base.Deploy.Nb = 55
	base.Deploy.Na = 5
	base.Deploy.Field = beaconsec.Square(710)
	base.Collude = true // the colluders are the interesting part here

	// The attacker picks the P that maximizes misled sensors for these
	// thresholds (the paper's assumption for Figure 14).
	pop := beaconsec.Population{N: base.Deploy.N, Nb: base.Deploy.Nb, Na: base.Deploy.Na}

	fmt.Println("=== threshold trade-off at tau' = 2 (colluding reporters) ===")
	fmt.Println("tau   detection  false-pos  collusion-bound  comment")
	for _, tau := range []int{1, 2, 4, 10} {
		cfg := base
		cfg.Revoke.ReportCap = tau
		cfg.Revoke.AlertThreshold = 2
		_, pStar := beaconsec.MaxAffected(cfg.Deploy.DetectingIDs, 2, 60, pop)
		cfg.Strategy = beaconsec.StrategyForP(pStar)
		cfg.Seed = uint64(100 + tau)

		res, err := beaconsec.RunScenario(cfg)
		if err != nil {
			log.Fatal(err)
		}
		bound := beaconsec.FalsePositiveBound(1, cfg.Deploy.Na, tau, 2, cfg.WormholeRate)
		comment := ""
		switch {
		case res.FalsePositiveRate > 0.15:
			comment = "collusion expensive: lower tau"
		case res.DetectionRate < 0.7:
			comment = "detection suffering: raise tau"
		default:
			comment = "workable operating point"
		}
		fmt.Printf("%3d   %8.2f  %9.3f  %15.1f  %s\n",
			tau, res.DetectionRate, res.FalsePositiveRate, bound, comment)
	}

	fmt.Println("\nThe paper's recommended pair is (tau=10, tau'=2), chosen so the")
	fmt.Println("probability of a benign beacon exhausting its report budget is ~0")
	fmt.Println("(Figure 10) while collusion damage stays bounded by Na(tau+1)/(tau'+1).")

	liveService()
}

// liveService runs the recommended thresholds against the networked base
// station: a revnet.Server on loopback, with each accuser delivering its
// alert over TCP as an authenticated uplink — what cmd/revoked does as a
// standalone daemon.
func liveService() {
	fmt.Println("\n=== the same revocation, over the wire (tau=10, tau'=2) ===")

	master := crypto.NewMaster([]byte("example-deployment"))
	srv, err := revnet.NewServer(revnet.ServerConfig{
		Revoke: revoke.Config{ReportCap: 10, AlertThreshold: 2},
		Master: master,
	})
	if err != nil {
		log.Fatal(err)
	}
	go srv.ListenAndServe("127.0.0.1:0")
	defer srv.Close()
	for srv.Addr() == nil { // wait for the listener to come up
		time.Sleep(time.Millisecond)
	}
	addr := srv.Addr().String()

	// Three independent detecting nodes accuse beacon 42; τ′=2 means the
	// third accusation tips it over the threshold.
	ctx := context.Background()
	const accused = ident.NodeID(42)
	for _, reporter := range []ident.NodeID{7, 8, 9} {
		c, err := revnet.NewClient(revnet.ClientConfig{
			Addr: addr,
			Self: reporter,
			Key:  master.BaseStationKey(reporter),
		})
		if err != nil {
			log.Fatal(err)
		}
		out, err := c.SendAlert(ctx, accused)
		c.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("node %d accuses %d over TCP: %v\n", reporter, accused, out)
	}

	// Any provisioned node can now query the verdict.
	q, err := revnet.NewClient(revnet.ClientConfig{
		Addr: addr,
		Self: 3,
		Key:  master.BaseStationKey(3),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer q.Close()
	revoked, err := q.Query(ctx, accused)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("node 3 queries %d: revoked=%v\n", accused, revoked)
	fmt.Println("\nRun 'go run ./cmd/revoked -master SECRET' for the standalone daemon,")
	fmt.Println("with -status for a live JSON endpoint and -json for a shutdown snapshot.")
}
