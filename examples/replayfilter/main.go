// Replayfilter walks through the paper's §2 detector suite step by step:
// calibrate the round-trip-time distribution (Figure 4), then feed the
// detector the four kinds of beacon exchange it must tell apart —
// benign, distance-manipulated (attack), wormhole-replayed, and locally
// replayed — and show the verdict each one earns.
package main

import (
	"fmt"

	"beaconsec"
)

func main() {
	// Step 1 — calibrate: measure RTT = (t4-t1) - (t3-t2) over 10,000
	// benign exchanges on the simulated MICA2 radio stack.
	cal := beaconsec.CalibrateRTT(10000, 42)
	fmt.Println("=== RTT calibration (Figure 4) ===")
	fmt.Printf("x_min = %.0f cycles, x_max = %.0f cycles, spread = %.2f bit-times\n",
		cal.XMin(), cal.XMax(), cal.SpreadBits())
	fmt.Printf("local-replay threshold = %.0f cycles\n\n", cal.Threshold())

	// Step 2 — configure the detector: maximum ranging error 10 ft,
	// radio range 150 ft, and the calibrated threshold.
	det := beaconsec.DetectorConfig{
		MaxDistError: 10,
		MaxRTT:       cal.Threshold(),
		Range:        150,
	}

	// The detecting beacon node sits at the origin and knows it.
	me := beaconsec.Point{X: 0, Y: 0}
	typicalRTT := cal.Quantile(0.5)

	cases := []struct {
		name string
		obs  beaconsec.Observation
	}{
		{
			"benign neighbor at (100,0), honest signal",
			beaconsec.Observation{
				OwnLoc: me, OwnKnown: true,
				Claimed:      beaconsec.Point{X: 100, Y: 0},
				MeasuredDist: 103, // within the ±10 ft ranging error
				RTT:          typicalRTT,
			},
		},
		{
			"compromised beacon manipulating transmit power (+50 ft bias)",
			beaconsec.Observation{
				OwnLoc: me, OwnKnown: true,
				Claimed:      beaconsec.Point{X: 100, Y: 0},
				MeasuredDist: 150, // enlarged: would corrupt localization
				RTT:          typicalRTT,
			},
		},
		{
			"far beacon's signal replayed through a wormhole (detector fired)",
			beaconsec.Observation{
				OwnLoc: me, OwnKnown: true,
				Claimed:          beaconsec.Point{X: 700, Y: 600}, // beyond range
				MeasuredDist:     90,                              // distance to the tunnel exit
				RTT:              typicalRTT,                      // analog tunnel: no extra delay
				WormholeDetected: true,
			},
		},
		{
			"neighbor's signal recorded and replayed by a local attacker",
			beaconsec.Observation{
				OwnLoc: me, OwnKnown: true,
				Claimed:      beaconsec.Point{X: 100, Y: 0},
				MeasuredDist: 60,                 // distance to the attacker, not the beacon
				RTT:          typicalRTT + 49152, // one 16-byte packet of delay
			},
		},
	}

	fmt.Println("=== detecting-node pipeline (§2.1–2.2) ===")
	for _, c := range cases {
		v := det.EvaluateDetector(c.obs)
		fmt.Printf("%-62s -> %v", c.name, v)
		switch {
		case v.Alertable():
			fmt.Print("  [report to base station]")
		case !v.Accepted():
			fmt.Print("  [discard, no alert: avoids a false positive]")
		}
		fmt.Println()
	}

	// Step 3 — the same signals at a non-beacon sensor, which does not
	// know its own location and so cannot run the consistency check: it
	// still filters both replay classes.
	fmt.Println("\n=== sensor-node filter (no own location) ===")
	for _, c := range cases {
		obs := c.obs
		obs.OwnKnown = false
		v := det.EvaluateSensor(obs)
		use := "use as location reference"
		if !v.Accepted() {
			use = "discard"
		}
		fmt.Printf("%-62s -> %v (%s)\n", c.name, v, use)
	}
}
