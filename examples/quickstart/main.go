// Quickstart: run the paper's evaluation scenario — a 1,000-node network
// with 110 beacon nodes of which 10 are compromised — and print how the
// defense fared: how many malicious beacons were detected and revoked,
// what the attack cost the network, and how accurately sensors localized.
package main

import (
	"fmt"
	"log"

	"beaconsec"
)

func main() {
	cfg := beaconsec.PaperScenario()
	// The attacker sends misleading beacon signals to 20% of requesters
	// and behaves normally for the rest (the paper's P = 0.2 operating
	// point).
	cfg.Strategy = beaconsec.StrategyForP(0.2)

	res, err := beaconsec.RunScenario(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== secure location discovery: paper scenario ===")
	fmt.Printf("malicious beacons revoked: %d/%d (detection rate %.0f%%)\n",
		res.RevokedMalicious, cfg.Deploy.Na, 100*res.DetectionRate)
	fmt.Printf("benign beacons lost to collusion + wormhole: %d (FPR %.1f%%)\n",
		res.RevokedBenign, 100*res.FalsePositiveRate)
	fmt.Printf("sensors still misled per surviving malicious beacon: %.2f\n",
		res.AffectedPerMalicious)
	fmt.Printf("sensors localized: %d, mean error %.1f ft\n",
		res.Localized, res.LocErrMean)

	// The closed-form §3.2 prediction at the measured neighborhood size,
	// for comparison.
	pop := beaconsec.PaperPopulation()
	theory := beaconsec.RevocationRate(0.2, cfg.Deploy.DetectingIDs, cfg.Revoke.AlertThreshold, int(res.AvgNc), pop)
	fmt.Printf("theoretical detection rate at Nc=%.0f: %.0f%%\n", res.AvgNc, 100*theory)
}
