package revoke

import (
	"reflect"
	"runtime"
	"sync"
	"testing"

	"beaconsec/internal/ident"
	"beaconsec/internal/rng"
)

// TestShardedMatchesBaseStationSerial pins that for any serial alert
// stream the sharded station and the single-mutex BaseStation are
// indistinguishable: same per-alert outcomes, same counters, same revoked
// set, same stats.
func TestShardedMatchesBaseStationSerial(t *testing.T) {
	for _, shards := range []int{1, 4, 32} {
		cfg := cfg(3, 2)
		bs := NewBaseStation(cfg)
		sh := NewSharded(cfg, shards)
		src := rng.New(99)
		for i := 0; i < 5000; i++ {
			reporter := ident.NodeID(1 + src.Intn(40))
			target := ident.NodeID(1 + src.Intn(60)) // overlaps reporters: self-reports occur
			want := bs.HandleAlert(reporter, target)
			got := sh.HandleAlert(reporter, target)
			if got != want {
				t.Fatalf("shards=%d alert %d (%v->%v): sharded %v, base station %v",
					shards, i, reporter, target, got, want)
			}
		}
		if !reflect.DeepEqual(sh.RevokedSet(), bs.RevokedSet()) {
			t.Errorf("shards=%d revoked sets differ: %v vs %v", shards, sh.RevokedSet(), bs.RevokedSet())
		}
		if sh.Stats() != bs.Stats() {
			t.Errorf("shards=%d stats differ: %+v vs %+v", shards, sh.Stats(), bs.Stats())
		}
		for id := ident.NodeID(1); id <= 60; id++ {
			if sh.AlertCount(id) != bs.AlertCount(id) {
				t.Errorf("shards=%d AlertCount(%v) = %d, want %d", shards, id, sh.AlertCount(id), bs.AlertCount(id))
			}
			if sh.ReportCount(id) != bs.ReportCount(id) {
				t.Errorf("shards=%d ReportCount(%v) = %d, want %d", shards, id, sh.ReportCount(id), bs.ReportCount(id))
			}
		}
	}
}

// TestShardedConcurrentMatchesSerialBaseline hammers the sharded station
// from many goroutines with a workload in the order-insensitive regime
// (no reporter exceeds its τ budget, so every distinct non-self pair is
// accepted in any interleaving) and checks the final revocation state
// equals the serial baseline.
func TestShardedConcurrentMatchesSerialBaseline(t *testing.T) {
	const (
		workers      = 8
		perWorker    = 400
		tau          = 1 << 14 // never capped: order-insensitive regime
		tauPrime     = 2
		targetSpread = 50
	)
	cfg := cfg(tau, tauPrime)
	sh := NewSharded(cfg, 16)

	type alert struct{ reporter, target ident.NodeID }
	streams := make([][]alert, workers)
	for w := range streams {
		src := rng.New(uint64(1000 + w))
		for i := 0; i < perWorker; i++ {
			streams[w] = append(streams[w], alert{
				reporter: ident.NodeID(1 + w),
				target:   ident.NodeID(100 + src.Intn(targetSpread)),
			})
		}
	}

	var wg sync.WaitGroup
	for w := range streams {
		wg.Add(1)
		go func(stream []alert) {
			defer wg.Done()
			for _, a := range stream {
				sh.HandleAlert(a.reporter, a.target)
			}
		}(streams[w])
	}
	wg.Wait()

	base := NewBaseStation(cfg)
	for _, stream := range streams {
		for _, a := range stream {
			base.HandleAlert(a.reporter, a.target)
		}
	}
	if got, want := sh.RevokedSet(), base.RevokedSet(); !reflect.DeepEqual(got, want) {
		t.Errorf("concurrent revoked set %v != serial %v", got, want)
	}
	if got, want := sh.Handled(), base.Handled(); got != want {
		t.Errorf("handled %d != %d", got, want)
	}
	for id := ident.NodeID(100); id < 100+targetSpread; id++ {
		if got, want := sh.AlertCount(id), base.AlertCount(id); got != want {
			t.Errorf("AlertCount(%v) = %d, want %d", id, got, want)
		}
	}
}

func TestShardedOnRevokeFiresOncePerTarget(t *testing.T) {
	sh := NewSharded(cfg(100, 1), 8)
	var mu sync.Mutex
	fired := map[ident.NodeID]int{}
	sh.OnRevoke(func(id ident.NodeID) {
		mu.Lock()
		fired[id]++
		mu.Unlock()
	})
	var wg sync.WaitGroup
	for r := 1; r <= 8; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for tgt := 100; tgt < 120; tgt++ {
				sh.HandleAlert(ident.NodeID(r), ident.NodeID(tgt))
			}
		}(r)
	}
	wg.Wait()
	for tgt := 100; tgt < 120; tgt++ {
		if got := fired[ident.NodeID(tgt)]; got != 1 {
			t.Errorf("target %d revoked callback fired %d times, want 1", tgt, got)
		}
	}
}

func TestShardedShardStatsSumToStats(t *testing.T) {
	sh := NewSharded(cfg(10, 1), 4)
	src := rng.New(7)
	for i := 0; i < 300; i++ {
		sh.HandleAlert(ident.NodeID(1+src.Intn(10)), ident.NodeID(50+src.Intn(30)))
	}
	var sum Stats
	for _, st := range sh.ShardStats() {
		sum.Merge(st)
	}
	if sum != sh.Stats() {
		t.Errorf("shard stats sum %+v != Stats %+v", sum, sh.Stats())
	}
	if sum.Handled != 300 {
		t.Errorf("handled %d, want 300", sum.Handled)
	}
}

func TestShardedShardCountRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{{1, 1}, {2, 2}, {3, 4}, {16, 16}, {17, 32}} {
		if got := NewSharded(cfg(1, 1), tc.in).NumShards(); got != tc.want {
			t.Errorf("NumShards(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestShardedPanicsOnBadInput(t *testing.T) {
	for name, fn := range map[string]func(){
		"bad config": func() { NewSharded(cfg(-1, 0), 4) },
		"zero shard": func() { NewSharded(cfg(1, 1), 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

// benchAlerts pre-generates a pseudo-random alert workload: many
// reporters, many targets, τ′ high enough that nothing revokes (revoked
// targets would short-circuit the interesting lock path).
func benchAlerts(n int) []struct{ reporter, target ident.NodeID } {
	src := rng.New(123)
	out := make([]struct{ reporter, target ident.NodeID }, n)
	for i := range out {
		out[i].reporter = ident.NodeID(1 + src.Intn(512))
		out[i].target = ident.NodeID(1024 + src.Intn(512))
	}
	return out
}

type alertSink interface {
	HandleAlert(reporter, target ident.NodeID) Outcome
}

func benchParallelAlerts(b *testing.B, station alertSink) {
	alerts := benchAlerts(1 << 14)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		// Offset each goroutine into the workload so they don't all walk
		// the same shard sequence in lockstep.
		i := runtime.NumGoroutine() % len(alerts)
		for pb.Next() {
			a := alerts[i]
			station.HandleAlert(a.reporter, a.target)
			i++
			if i == len(alerts) {
				i = 0
			}
		}
	})
}

// BenchmarkHandleAlertParallelSingle vs ...Sharded is the contention
// benchmark recorded in EXPERIMENTS.md: the same parallel workload
// against one global mutex and against the sharded station.
func BenchmarkHandleAlertParallelSingle(b *testing.B) {
	benchParallelAlerts(b, NewBaseStation(Config{ReportCap: 1 << 20, AlertThreshold: 1 << 20}))
}

func BenchmarkHandleAlertParallelSharded(b *testing.B) {
	benchParallelAlerts(b, NewSharded(Config{ReportCap: 1 << 20, AlertThreshold: 1 << 20}, 32))
}
