package revoke

import (
	"testing"

	"beaconsec/internal/ident"
	"beaconsec/internal/rng"
	"beaconsec/internal/sim"
)

func cfg(tau, tauPrime int) Config {
	return Config{ReportCap: tau, AlertThreshold: tauPrime}
}

func TestConfigValidate(t *testing.T) {
	if err := cfg(10, 2).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if err := cfg(-1, 2).Validate(); err == nil {
		t.Error("negative ReportCap accepted")
	}
	if err := cfg(1, -1).Validate(); err == nil {
		t.Error("negative AlertThreshold accepted")
	}
}

func TestNewBaseStationPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	NewBaseStation(cfg(-1, 0))
}

func TestRevocationAtThresholdPlusOne(t *testing.T) {
	// τ′ = 2: revoked at the third accepted alert ("exceeds τ′").
	bs := NewBaseStation(cfg(10, 2))
	target := ident.NodeID(50)
	if got := bs.HandleAlert(1, target); got != OutcomeAccepted {
		t.Fatalf("alert 1: %v", got)
	}
	if got := bs.HandleAlert(2, target); got != OutcomeAccepted {
		t.Fatalf("alert 2: %v", got)
	}
	if bs.Revoked(target) {
		t.Fatal("revoked before exceeding τ′")
	}
	if got := bs.HandleAlert(3, target); got != OutcomeRevoked {
		t.Fatalf("alert 3: %v, want revoked", got)
	}
	if !bs.Revoked(target) {
		t.Fatal("not revoked after exceeding τ′")
	}
	if got := bs.AlertCount(target); got != 3 {
		t.Errorf("AlertCount = %d", got)
	}
}

func TestAlertsAgainstRevokedIgnored(t *testing.T) {
	bs := NewBaseStation(cfg(10, 0))
	bs.HandleAlert(1, 50)
	if got := bs.HandleAlert(2, 50); got != OutcomeAlreadyRevoked {
		t.Errorf("alert on revoked target: %v", got)
	}
	// The late reporter's budget must not be consumed.
	if got := bs.ReportCount(2); got != 0 {
		t.Errorf("ReportCount of ignored reporter = %d", got)
	}
}

func TestReportCapBoundsAcceptedAlerts(t *testing.T) {
	// τ = 2: a single reporter gets at most τ+1 = 3 alerts accepted —
	// the bound behind the paper's N_f formula.
	bs := NewBaseStation(cfg(2, 100))
	reporter := ident.NodeID(1)
	accepted := 0
	for i := 0; i < 10; i++ {
		target := ident.NodeID(50 + i)
		if out := bs.HandleAlert(reporter, target); out == OutcomeAccepted {
			accepted++
		} else if out != OutcomeReporterCapped {
			t.Fatalf("alert %d: %v", i, out)
		}
	}
	if accepted != 3 {
		t.Errorf("accepted %d alerts from one reporter with τ=2, want 3", accepted)
	}
}

func TestCollusionBound(t *testing.T) {
	// N_a colluders each spending their full budget against distinct
	// benign targets revoke at most N_a(τ+1)/(τ′+1) nodes (paper §4).
	const na, tau, tauPrime = 10, 10, 2
	bs := NewBaseStation(cfg(tau, tauPrime))
	src := rng.New(5)
	benign := 100
	for a := 0; a < na; a++ {
		reporter := ident.NodeID(1000 + a)
		for r := 0; r <= tau; r++ {
			target := ident.NodeID(1 + src.Intn(benign))
			bs.HandleAlert(reporter, target)
		}
	}
	bound := na * (tau + 1) / (tauPrime + 1)
	if got := len(bs.RevokedSet()); got > bound {
		t.Errorf("colluders revoked %d benign nodes, bound is %d", got, bound)
	}
}

func TestRevokedReporterStillAccepted(t *testing.T) {
	// Paper: "the alert from a revoked detecting node will still be
	// accepted ... to prevent malicious beacon nodes from ... having
	// these benign beacon nodes revoked before they can report".
	bs := NewBaseStation(cfg(10, 0))
	bs.HandleAlert(1, 2) // revokes node 2 (τ′ = 0)
	if !bs.Revoked(2) {
		t.Fatal("setup failed")
	}
	if got := bs.HandleAlert(2, 3); got != OutcomeRevoked {
		t.Errorf("revoked reporter's alert: %v, want accepted (and revoking with τ′=0)", got)
	}
}

func TestSelfReportIgnored(t *testing.T) {
	bs := NewBaseStation(cfg(10, 0))
	if got := bs.HandleAlert(5, 5); got != OutcomeSelfReport {
		t.Errorf("self report: %v", got)
	}
	if bs.Revoked(5) {
		t.Error("self report revoked the node")
	}
}

func TestOnRevokeCallback(t *testing.T) {
	bs := NewBaseStation(cfg(10, 2))
	var revoked []ident.NodeID
	bs.OnRevoke(func(id ident.NodeID) { revoked = append(revoked, id) })
	bs.HandleAlert(1, 50)
	bs.HandleAlert(2, 50)
	if len(revoked) != 0 {
		t.Fatalf("callback fired early: %v", revoked)
	}
	bs.HandleAlert(3, 50)
	if len(revoked) != 1 || revoked[0] != 50 {
		t.Errorf("callback got %v, want [50]", revoked)
	}
}

func TestRevokedSetSorted(t *testing.T) {
	bs := NewBaseStation(cfg(10, 0))
	bs.HandleAlert(1, 9)
	bs.HandleAlert(2, 3)
	bs.HandleAlert(3, 7)
	got := bs.RevokedSet()
	if len(got) != 3 || got[0] != 3 || got[1] != 7 || got[2] != 9 {
		t.Errorf("RevokedSet = %v", got)
	}
}

func TestHandledCounter(t *testing.T) {
	bs := NewBaseStation(cfg(0, 0))
	bs.HandleAlert(1, 2)
	bs.HandleAlert(1, 2)
	bs.HandleAlert(3, 3)
	if got := bs.Handled(); got != 3 {
		t.Errorf("Handled = %d", got)
	}
}

func TestReportCounterMonotoneBound(t *testing.T) {
	// Property: report counters never exceed τ+1 regardless of alert
	// pattern.
	const tau = 3
	bs := NewBaseStation(cfg(tau, 2))
	src := rng.New(11)
	for i := 0; i < 500; i++ {
		reporter := ident.NodeID(1 + src.Intn(10))
		target := ident.NodeID(100 + src.Intn(20))
		bs.HandleAlert(reporter, target)
	}
	for r := ident.NodeID(1); r <= 10; r++ {
		if got := bs.ReportCount(r); got > tau+1 {
			t.Errorf("reporter %v count %d exceeds τ+1", r, got)
		}
	}
}

func TestUplinkDeliversWithoutLoss(t *testing.T) {
	sched := sim.New()
	bs := NewBaseStation(cfg(10, 0))
	u := NewUplink(sched, bs, rng.New(1))
	var got Outcome
	u.SendAlert(1, 50, func(o Outcome) { got = o })
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if got != OutcomeRevoked {
		t.Errorf("outcome = %v", got)
	}
	if u.Delivered() != 1 || u.Lost() != 0 {
		t.Errorf("delivered %d lost %d", u.Delivered(), u.Lost())
	}
}

func TestUplinkRetransmitsThroughLoss(t *testing.T) {
	sched := sim.New()
	bs := NewBaseStation(cfg(10, 100))
	u := NewUplink(sched, bs, rng.New(2))
	u.LossRate = 0.5
	u.Retries = 20
	const n = 200
	for i := 0; i < n; i++ {
		u.SendAlert(ident.NodeID(1+i%5), ident.NodeID(100+i%7), nil)
	}
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	// With 21 attempts at 50% loss, losing all attempts is ~5e-7.
	if u.Delivered() != n {
		t.Errorf("delivered %d/%d through 50%% loss", u.Delivered(), n)
	}
}

func TestUplinkExhaustsRetries(t *testing.T) {
	sched := sim.New()
	bs := NewBaseStation(cfg(10, 100))
	u := NewUplink(sched, bs, rng.New(3))
	u.LossRate = 0.99
	u.Retries = 1
	for i := 0; i < 100; i++ {
		u.SendAlert(1, 50, nil)
	}
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if u.Lost() == 0 {
		t.Error("no alerts lost at 99% loss with 1 retry")
	}
	if u.Delivered()+u.Lost() != 100 {
		t.Errorf("delivered %d + lost %d != 100", u.Delivered(), u.Lost())
	}
}

func TestUplinkInvalidLossPanics(t *testing.T) {
	sched := sim.New()
	u := NewUplink(sched, NewBaseStation(cfg(1, 1)), rng.New(1))
	u.LossRate = 1
	defer func() {
		if recover() == nil {
			t.Error("loss rate 1 did not panic")
		}
	}()
	u.SendAlert(1, 2, nil)
}

func TestOutcomeStrings(t *testing.T) {
	tests := []struct {
		o    Outcome
		want string
	}{
		{OutcomeAccepted, "accepted"},
		{OutcomeRevoked, "revoked"},
		{OutcomeReporterCapped, "reporter-capped"},
		{OutcomeAlreadyRevoked, "already-revoked"},
		{OutcomeSelfReport, "self-report"},
		{OutcomeDuplicate, "duplicate"},
		{Outcome(0), "outcome(0)"}, // the invalid zero value
		{Outcome(99), "outcome(99)"},
		{Outcome(-3), "outcome(-3)"},
	}
	for _, tt := range tests {
		if got := tt.o.String(); got != tt.want {
			t.Errorf("Outcome(%d).String() = %q, want %q", int(tt.o), got, tt.want)
		}
	}
}

// TestEveryOutcomeReachableAndCounted drives one base station through a
// scripted alert sequence that produces every Outcome value, checking the
// returned outcome and the corresponding Stats counter at each step.
func TestEveryOutcomeReachableAndCounted(t *testing.T) {
	// τ = 0 (budget: one accepted alert per reporter), τ′ = 1 (revoked at
	// the second accepted alert).
	bs := NewBaseStation(cfg(0, 1))
	steps := []struct {
		name             string
		reporter, target ident.NodeID
		want             Outcome
		wantStats        Stats
	}{
		{"self-report", 5, 5, OutcomeSelfReport,
			Stats{Handled: 1, SelfReports: 1}},
		{"first accepted", 1, 50, OutcomeAccepted,
			Stats{Handled: 2, SelfReports: 1, Accepted: 1}},
		{"duplicate pair", 1, 50, OutcomeDuplicate,
			Stats{Handled: 3, SelfReports: 1, Accepted: 1, Duplicates: 1}},
		{"second accusation revokes", 2, 50, OutcomeRevoked,
			Stats{Handled: 4, SelfReports: 1, Accepted: 2, Duplicates: 1, Revocations: 1}},
		{"already revoked", 3, 50, OutcomeAlreadyRevoked,
			Stats{Handled: 5, SelfReports: 1, Accepted: 2, Duplicates: 1, Revocations: 1, AlreadyRevoked: 1}},
		{"reporter capped", 1, 60, OutcomeReporterCapped,
			Stats{Handled: 6, SelfReports: 1, Accepted: 2, Duplicates: 1, Revocations: 1, AlreadyRevoked: 1, ReporterCapped: 1}},
	}
	for _, tt := range steps {
		if got := bs.HandleAlert(tt.reporter, tt.target); got != tt.want {
			t.Fatalf("%s: HandleAlert(%v, %v) = %v, want %v", tt.name, tt.reporter, tt.target, got, tt.want)
		}
		if got := bs.Stats(); got != tt.wantStats {
			t.Fatalf("%s: Stats = %+v, want %+v", tt.name, got, tt.wantStats)
		}
	}
}

// lossySeed finds a seed whose first attempts+1 draws at rate p are all
// "lost", so an Uplink built on rng.New(seed) deterministically loses
// every transmission attempt of one alert.
func lossySeed(t *testing.T, p float64, attempts int) uint64 {
	t.Helper()
	for seed := uint64(1); seed < 10_000; seed++ {
		src := rng.New(seed)
		allLost := true
		for i := 0; i < attempts; i++ {
			if !src.Bool(p) {
				allLost = false
				break
			}
		}
		if allLost {
			return seed
		}
	}
	t.Fatal("no all-loss seed found")
	return 0
}

// TestUplinkAllAttemptsLostDropsAlert pins the retry-exhaustion edge
// case: when every attempt is lost the alert is dropped — the result
// callback never fires and the base station's counters stay untouched.
func TestUplinkAllAttemptsLostDropsAlert(t *testing.T) {
	const lossRate, retries = 0.9, 2
	seed := lossySeed(t, lossRate, retries+1)
	sched := sim.New()
	bs := NewBaseStation(cfg(10, 2))
	u := NewUplink(sched, bs, rng.New(seed))
	u.LossRate = lossRate
	u.Retries = retries
	fired := false
	u.SendAlert(1, 50, func(Outcome) { fired = true })
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("result callback fired for a dropped alert")
	}
	if got := u.Stats(); got.Delivered != 0 || got.Lost != 1 || got.Attempts != retries+1 {
		t.Errorf("uplink stats = %+v, want 0 delivered, 1 lost, %d attempts", got, retries+1)
	}
	if got := bs.Handled(); got != 0 {
		t.Errorf("base station handled %d alerts, want 0", got)
	}
	if got := bs.AlertCount(50); got != 0 {
		t.Errorf("AlertCount(50) = %d, want 0", got)
	}
	if got := bs.ReportCount(1); got != 0 {
		t.Errorf("ReportCount(1) = %d, want 0", got)
	}
}

func TestUplinkStatsMerge(t *testing.T) {
	a := UplinkStats{Attempts: 5, Delivered: 3, Lost: 2}
	a.Merge(UplinkStats{Attempts: 2, Delivered: 1, Lost: 1})
	if a != (UplinkStats{Attempts: 7, Delivered: 4, Lost: 3}) {
		t.Errorf("merged = %+v", a)
	}
}
