package revoke

import (
	"testing"

	"beaconsec/internal/ident"
	"beaconsec/internal/rng"
	"beaconsec/internal/sim"
)

func cfg(tau, tauPrime int) Config {
	return Config{ReportCap: tau, AlertThreshold: tauPrime}
}

func TestConfigValidate(t *testing.T) {
	if err := cfg(10, 2).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if err := cfg(-1, 2).Validate(); err == nil {
		t.Error("negative ReportCap accepted")
	}
	if err := cfg(1, -1).Validate(); err == nil {
		t.Error("negative AlertThreshold accepted")
	}
}

func TestNewBaseStationPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	NewBaseStation(cfg(-1, 0))
}

func TestRevocationAtThresholdPlusOne(t *testing.T) {
	// τ′ = 2: revoked at the third accepted alert ("exceeds τ′").
	bs := NewBaseStation(cfg(10, 2))
	target := ident.NodeID(50)
	if got := bs.HandleAlert(1, target); got != OutcomeAccepted {
		t.Fatalf("alert 1: %v", got)
	}
	if got := bs.HandleAlert(2, target); got != OutcomeAccepted {
		t.Fatalf("alert 2: %v", got)
	}
	if bs.Revoked(target) {
		t.Fatal("revoked before exceeding τ′")
	}
	if got := bs.HandleAlert(3, target); got != OutcomeRevoked {
		t.Fatalf("alert 3: %v, want revoked", got)
	}
	if !bs.Revoked(target) {
		t.Fatal("not revoked after exceeding τ′")
	}
	if got := bs.AlertCount(target); got != 3 {
		t.Errorf("AlertCount = %d", got)
	}
}

func TestAlertsAgainstRevokedIgnored(t *testing.T) {
	bs := NewBaseStation(cfg(10, 0))
	bs.HandleAlert(1, 50)
	if got := bs.HandleAlert(2, 50); got != OutcomeAlreadyRevoked {
		t.Errorf("alert on revoked target: %v", got)
	}
	// The late reporter's budget must not be consumed.
	if got := bs.ReportCount(2); got != 0 {
		t.Errorf("ReportCount of ignored reporter = %d", got)
	}
}

func TestReportCapBoundsAcceptedAlerts(t *testing.T) {
	// τ = 2: a single reporter gets at most τ+1 = 3 alerts accepted —
	// the bound behind the paper's N_f formula.
	bs := NewBaseStation(cfg(2, 100))
	reporter := ident.NodeID(1)
	accepted := 0
	for i := 0; i < 10; i++ {
		target := ident.NodeID(50 + i)
		if out := bs.HandleAlert(reporter, target); out == OutcomeAccepted {
			accepted++
		} else if out != OutcomeReporterCapped {
			t.Fatalf("alert %d: %v", i, out)
		}
	}
	if accepted != 3 {
		t.Errorf("accepted %d alerts from one reporter with τ=2, want 3", accepted)
	}
}

func TestCollusionBound(t *testing.T) {
	// N_a colluders each spending their full budget against distinct
	// benign targets revoke at most N_a(τ+1)/(τ′+1) nodes (paper §4).
	const na, tau, tauPrime = 10, 10, 2
	bs := NewBaseStation(cfg(tau, tauPrime))
	src := rng.New(5)
	benign := 100
	for a := 0; a < na; a++ {
		reporter := ident.NodeID(1000 + a)
		for r := 0; r <= tau; r++ {
			target := ident.NodeID(1 + src.Intn(benign))
			bs.HandleAlert(reporter, target)
		}
	}
	bound := na * (tau + 1) / (tauPrime + 1)
	if got := len(bs.RevokedSet()); got > bound {
		t.Errorf("colluders revoked %d benign nodes, bound is %d", got, bound)
	}
}

func TestRevokedReporterStillAccepted(t *testing.T) {
	// Paper: "the alert from a revoked detecting node will still be
	// accepted ... to prevent malicious beacon nodes from ... having
	// these benign beacon nodes revoked before they can report".
	bs := NewBaseStation(cfg(10, 0))
	bs.HandleAlert(1, 2) // revokes node 2 (τ′ = 0)
	if !bs.Revoked(2) {
		t.Fatal("setup failed")
	}
	if got := bs.HandleAlert(2, 3); got != OutcomeRevoked {
		t.Errorf("revoked reporter's alert: %v, want accepted (and revoking with τ′=0)", got)
	}
}

func TestSelfReportIgnored(t *testing.T) {
	bs := NewBaseStation(cfg(10, 0))
	if got := bs.HandleAlert(5, 5); got != OutcomeSelfReport {
		t.Errorf("self report: %v", got)
	}
	if bs.Revoked(5) {
		t.Error("self report revoked the node")
	}
}

func TestOnRevokeCallback(t *testing.T) {
	bs := NewBaseStation(cfg(10, 2))
	var revoked []ident.NodeID
	bs.OnRevoke(func(id ident.NodeID) { revoked = append(revoked, id) })
	bs.HandleAlert(1, 50)
	bs.HandleAlert(2, 50)
	if len(revoked) != 0 {
		t.Fatalf("callback fired early: %v", revoked)
	}
	bs.HandleAlert(3, 50)
	if len(revoked) != 1 || revoked[0] != 50 {
		t.Errorf("callback got %v, want [50]", revoked)
	}
}

func TestRevokedSetSorted(t *testing.T) {
	bs := NewBaseStation(cfg(10, 0))
	bs.HandleAlert(1, 9)
	bs.HandleAlert(2, 3)
	bs.HandleAlert(3, 7)
	got := bs.RevokedSet()
	if len(got) != 3 || got[0] != 3 || got[1] != 7 || got[2] != 9 {
		t.Errorf("RevokedSet = %v", got)
	}
}

func TestHandledCounter(t *testing.T) {
	bs := NewBaseStation(cfg(0, 0))
	bs.HandleAlert(1, 2)
	bs.HandleAlert(1, 2)
	bs.HandleAlert(3, 3)
	if got := bs.Handled(); got != 3 {
		t.Errorf("Handled = %d", got)
	}
}

func TestReportCounterMonotoneBound(t *testing.T) {
	// Property: report counters never exceed τ+1 regardless of alert
	// pattern.
	const tau = 3
	bs := NewBaseStation(cfg(tau, 2))
	src := rng.New(11)
	for i := 0; i < 500; i++ {
		reporter := ident.NodeID(1 + src.Intn(10))
		target := ident.NodeID(100 + src.Intn(20))
		bs.HandleAlert(reporter, target)
	}
	for r := ident.NodeID(1); r <= 10; r++ {
		if got := bs.ReportCount(r); got > tau+1 {
			t.Errorf("reporter %v count %d exceeds τ+1", r, got)
		}
	}
}

func TestUplinkDeliversWithoutLoss(t *testing.T) {
	sched := sim.New()
	bs := NewBaseStation(cfg(10, 0))
	u := NewUplink(sched, bs, rng.New(1))
	var got Outcome
	u.SendAlert(1, 50, func(o Outcome) { got = o })
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if got != OutcomeRevoked {
		t.Errorf("outcome = %v", got)
	}
	if u.Delivered() != 1 || u.Lost() != 0 {
		t.Errorf("delivered %d lost %d", u.Delivered(), u.Lost())
	}
}

func TestUplinkRetransmitsThroughLoss(t *testing.T) {
	sched := sim.New()
	bs := NewBaseStation(cfg(10, 100))
	u := NewUplink(sched, bs, rng.New(2))
	u.LossRate = 0.5
	u.Retries = 20
	const n = 200
	for i := 0; i < n; i++ {
		u.SendAlert(ident.NodeID(1+i%5), ident.NodeID(100+i%7), nil)
	}
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	// With 21 attempts at 50% loss, losing all attempts is ~5e-7.
	if u.Delivered() != n {
		t.Errorf("delivered %d/%d through 50%% loss", u.Delivered(), n)
	}
}

func TestUplinkExhaustsRetries(t *testing.T) {
	sched := sim.New()
	bs := NewBaseStation(cfg(10, 100))
	u := NewUplink(sched, bs, rng.New(3))
	u.LossRate = 0.99
	u.Retries = 1
	for i := 0; i < 100; i++ {
		u.SendAlert(1, 50, nil)
	}
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if u.Lost() == 0 {
		t.Error("no alerts lost at 99% loss with 1 retry")
	}
	if u.Delivered()+u.Lost() != 100 {
		t.Errorf("delivered %d + lost %d != 100", u.Delivered(), u.Lost())
	}
}

func TestUplinkInvalidLossPanics(t *testing.T) {
	sched := sim.New()
	u := NewUplink(sched, NewBaseStation(cfg(1, 1)), rng.New(1))
	u.LossRate = 1
	defer func() {
		if recover() == nil {
			t.Error("loss rate 1 did not panic")
		}
	}()
	u.SendAlert(1, 2, nil)
}

func TestOutcomeStrings(t *testing.T) {
	for _, o := range []Outcome{OutcomeAccepted, OutcomeRevoked, OutcomeReporterCapped, OutcomeAlreadyRevoked, OutcomeSelfReport} {
		if o.String() == "" {
			t.Errorf("empty string for outcome %d", o)
		}
	}
	if Outcome(0).String() != "outcome(0)" {
		t.Errorf("zero outcome = %q", Outcome(0).String())
	}
}
