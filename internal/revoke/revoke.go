// Package revoke implements the paper's §3 revocation scheme: the base
// station accumulates alerts from detecting beacon nodes, bounds how many
// alerts any single node may have accepted (the report counter, capped by
// τ), measures each beacon node's suspiciousness (the alert counter), and
// revokes nodes whose alert counter exceeds τ′.
//
// The report cap is the defense against colluding malicious beacons: a
// group of N_a colluders can have at most N_a·(τ+1) alerts accepted, so
// they can force at most N_a·(τ+1)/(τ′+1) benign revocations — the bound
// the paper's false-positive analysis (and Figure 14) is built on.
package revoke

import (
	"fmt"
	"sort"
	"sync"

	"beaconsec/internal/ident"
)

// Config holds the two thresholds.
type Config struct {
	// ReportCap is τ: an alert is accepted only while its reporter's
	// report counter has not exceeded τ (so each reporter contributes at
	// most τ+1 accepted alerts).
	ReportCap int
	// AlertThreshold is τ′: a node is revoked when its alert counter
	// exceeds τ′ (i.e. at the (τ′+1)-th accepted alert).
	AlertThreshold int
}

// Validate returns an error for unusable thresholds.
func (c Config) Validate() error {
	if c.ReportCap < 0 {
		return fmt.Errorf("revoke: ReportCap %d must be >= 0", c.ReportCap)
	}
	if c.AlertThreshold < 0 {
		return fmt.Errorf("revoke: AlertThreshold %d must be >= 0", c.AlertThreshold)
	}
	return nil
}

// Outcome describes how the base station handled one alert. Values start
// at one so the zero value is invalid.
type Outcome int

// Outcomes.
const (
	// OutcomeAccepted: counters incremented, target not (yet) revoked.
	OutcomeAccepted Outcome = iota + 1
	// OutcomeRevoked: accepted, and the target crossed τ′ and was
	// revoked.
	OutcomeRevoked
	// OutcomeReporterCapped: ignored, the reporter exhausted its τ
	// budget.
	OutcomeReporterCapped
	// OutcomeAlreadyRevoked: ignored, the target is already revoked.
	OutcomeAlreadyRevoked
	// OutcomeSelfReport: ignored, a node accused itself.
	OutcomeSelfReport
	// OutcomeDuplicate: ignored, this (reporter, target) pair was
	// already accepted — alerts are idempotent, so uplink
	// retransmission cannot inflate counters and a single malicious
	// reporter cannot multiply its alerts against one victim.
	OutcomeDuplicate
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case OutcomeAccepted:
		return "accepted"
	case OutcomeRevoked:
		return "revoked"
	case OutcomeReporterCapped:
		return "reporter-capped"
	case OutcomeAlreadyRevoked:
		return "already-revoked"
	case OutcomeSelfReport:
		return "self-report"
	case OutcomeDuplicate:
		return "duplicate"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// Stats breaks the base station's handled alerts down by outcome.
type Stats struct {
	Handled        uint64 `json:"handled"`
	Accepted       uint64 `json:"accepted"`
	Revocations    uint64 `json:"revocations"`
	ReporterCapped uint64 `json:"reporter_capped"`
	AlreadyRevoked uint64 `json:"already_revoked"`
	SelfReports    uint64 `json:"self_reports"`
	Duplicates     uint64 `json:"duplicates"`
}

// Merge adds another base station's counters field-wise.
func (s *Stats) Merge(o Stats) {
	s.Handled += o.Handled
	s.Accepted += o.Accepted
	s.Revocations += o.Revocations
	s.ReporterCapped += o.ReporterCapped
	s.AlreadyRevoked += o.AlreadyRevoked
	s.SelfReports += o.SelfReports
	s.Duplicates += o.Duplicates
}

func (s *Stats) record(o Outcome) {
	s.Handled++
	switch o {
	case OutcomeAccepted:
		s.Accepted++
	case OutcomeRevoked:
		s.Accepted++ // a revoking alert was also accepted
		s.Revocations++
	case OutcomeReporterCapped:
		s.ReporterCapped++
	case OutcomeAlreadyRevoked:
		s.AlreadyRevoked++
	case OutcomeSelfReport:
		s.SelfReports++
	case OutcomeDuplicate:
		s.Duplicates++
	}
}

// BaseStation runs the revocation algorithm. It is safe for concurrent
// use; within the single-threaded simulation the lock is uncontended.
type BaseStation struct {
	mu       sync.Mutex
	cfg      Config
	reports  map[ident.NodeID]int
	alerts   map[ident.NodeID]int
	revoked  map[ident.NodeID]bool
	seen     map[pair]bool
	onRevoke []func(ident.NodeID)
	stats    Stats
}

type pair struct {
	reporter, target ident.NodeID
}

// NewBaseStation constructs a base station; it panics on an invalid
// configuration (thresholds are deployment constants, never runtime
// input).
func NewBaseStation(cfg Config) *BaseStation {
	if err := cfg.Validate(); err != nil {
		panic(err.Error())
	}
	return &BaseStation{
		cfg:     cfg,
		reports: make(map[ident.NodeID]int),
		alerts:  make(map[ident.NodeID]int),
		revoked: make(map[ident.NodeID]bool),
		seen:    make(map[pair]bool),
	}
}

// OnRevoke registers a callback invoked (synchronously, in HandleAlert)
// whenever a node is revoked — the hook the scenario layer uses to
// distribute revocation messages.
func (bs *BaseStation) OnRevoke(fn func(ident.NodeID)) {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	bs.onRevoke = append(bs.onRevoke, fn)
}

// HandleAlert processes one authenticated alert (reporter accuses target)
// per the paper's algorithm and returns what happened.
func (bs *BaseStation) HandleAlert(reporter, target ident.NodeID) Outcome {
	bs.mu.Lock()
	if reporter == target {
		bs.stats.record(OutcomeSelfReport)
		bs.mu.Unlock()
		return OutcomeSelfReport
	}
	// "the alert from a revoked detecting node will still be accepted"
	// — revocation of the reporter is deliberately not checked.
	if bs.revoked[target] {
		bs.stats.record(OutcomeAlreadyRevoked)
		bs.mu.Unlock()
		return OutcomeAlreadyRevoked
	}
	if bs.seen[pair{reporter, target}] {
		bs.stats.record(OutcomeDuplicate)
		bs.mu.Unlock()
		return OutcomeDuplicate
	}
	if bs.reports[reporter] > bs.cfg.ReportCap {
		bs.stats.record(OutcomeReporterCapped)
		bs.mu.Unlock()
		return OutcomeReporterCapped
	}
	bs.seen[pair{reporter, target}] = true
	bs.reports[reporter]++
	bs.alerts[target]++
	if bs.alerts[target] <= bs.cfg.AlertThreshold {
		bs.stats.record(OutcomeAccepted)
		bs.mu.Unlock()
		return OutcomeAccepted
	}
	bs.revoked[target] = true
	bs.stats.record(OutcomeRevoked)
	callbacks := make([]func(ident.NodeID), len(bs.onRevoke))
	copy(callbacks, bs.onRevoke)
	bs.mu.Unlock()
	for _, fn := range callbacks {
		fn(target)
	}
	return OutcomeRevoked
}

// Revoked reports whether id has been revoked.
func (bs *BaseStation) Revoked(id ident.NodeID) bool {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	return bs.revoked[id]
}

// RevokedSet returns the sorted list of revoked node IDs.
func (bs *BaseStation) RevokedSet() []ident.NodeID {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	out := make([]ident.NodeID, 0, len(bs.revoked))
	for id := range bs.revoked {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AlertCount returns the current alert counter of id.
func (bs *BaseStation) AlertCount(id ident.NodeID) int {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	return bs.alerts[id]
}

// ReportCount returns the current report counter of id.
func (bs *BaseStation) ReportCount(id ident.NodeID) int {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	return bs.reports[id]
}

// Handled returns the total number of alerts processed (any outcome).
func (bs *BaseStation) Handled() uint64 {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	return bs.stats.Handled
}

// Stats returns a copy of the base station's outcome counters.
func (bs *BaseStation) Stats() Stats {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	return bs.stats
}
