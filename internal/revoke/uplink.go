package revoke

import (
	"fmt"

	"beaconsec/internal/ident"
	"beaconsec/internal/rng"
	"beaconsec/internal/sim"
)

// Uplink models the multi-hop path from a beacon node to the base
// station. The paper assumes "every alert from beacon nodes can be
// successfully delivered to the base station using some standard fault
// tolerant techniques (e.g., retransmission) when there are message
// losses"; Uplink makes that assumption explicit and testable: each
// transmission is lost with probability LossRate, retried up to Retries
// times, each attempt costing Delay of simulated time.
type Uplink struct {
	sched *sim.Scheduler
	bs    *BaseStation
	src   *rng.Source

	// LossRate is the per-attempt loss probability in [0, 1).
	LossRate float64
	// Retries bounds retransmissions per alert (total attempts =
	// Retries + 1).
	Retries int
	// Delay is the one-way latency per attempt.
	Delay sim.Time

	stats UplinkStats
}

// UplinkStats counts uplink traffic: attempts include retransmissions, so
// Attempts - Delivered - per-alert losses measures the retry cost the
// paper's "standard fault tolerant techniques" assumption hides.
type UplinkStats struct {
	Attempts  uint64 `json:"attempts"`
	Delivered uint64 `json:"delivered"`
	Lost      uint64 `json:"lost"`
}

// Merge adds another uplink's counters field-wise.
func (s *UplinkStats) Merge(o UplinkStats) {
	s.Attempts += o.Attempts
	s.Delivered += o.Delivered
	s.Lost += o.Lost
}

// NewUplink builds an uplink to bs over the given scheduler.
func NewUplink(sched *sim.Scheduler, bs *BaseStation, src *rng.Source) *Uplink {
	return &Uplink{
		sched:   sched,
		bs:      bs,
		src:     src,
		Retries: 8,
		Delay:   sim.Millis(20),
	}
}

// SendAlert queues one alert for delivery. The result callback (optional)
// receives the base-station outcome, or is not invoked if every attempt
// was lost.
func (u *Uplink) SendAlert(reporter, target ident.NodeID, result func(Outcome)) {
	if u.LossRate < 0 || u.LossRate >= 1 {
		panic(fmt.Sprintf("revoke: loss rate %v outside [0,1)", u.LossRate))
	}
	u.attempt(reporter, target, result, 0)
}

func (u *Uplink) attempt(reporter, target ident.NodeID, result func(Outcome), try int) {
	u.sched.After(u.Delay, func() {
		u.stats.Attempts++
		if u.src != nil && u.src.Bool(u.LossRate) {
			if try < u.Retries {
				u.attempt(reporter, target, result, try+1)
				return
			}
			u.stats.Lost++
			return
		}
		u.stats.Delivered++
		out := u.bs.HandleAlert(reporter, target)
		if result != nil {
			result(out)
		}
	})
}

// Delivered returns the number of alerts that reached the base station.
func (u *Uplink) Delivered() uint64 { return u.stats.Delivered }

// Lost returns the number of alerts dropped after exhausting retries.
func (u *Uplink) Lost() uint64 { return u.stats.Lost }

// Stats returns a copy of the uplink counters.
func (u *Uplink) Stats() UplinkStats { return u.stats }
