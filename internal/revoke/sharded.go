package revoke

import (
	"fmt"
	"sort"
	"sync"

	"beaconsec/internal/ident"
)

// Sharded is a concurrency-optimized base station for the networked
// revocation service. It implements exactly the BaseStation algorithm but
// splits its state across 2^k lock shards so concurrent HandleAlert calls
// for unrelated nodes never contend on one mutex:
//
//   - target-keyed state (alert counters, the revoked set, the
//     (reporter, target) dedup set, outcome stats) shards by target ID;
//   - reporter-keyed state (the τ report budget) shards by reporter ID in
//     a separate shard array, because one reporter's budget spans every
//     target shard.
//
// HandleAlert locks one reporter shard, then one target shard — always in
// that order, and never a second shard of either kind — so the lock graph
// is bipartite and deadlock-free, and the per-alert critical section is
// the same check sequence as BaseStation.HandleAlert. For any single
// serial stream of alerts the two produce identical outcomes (pinned by
// test); under concurrency, outcomes for racing alerts depend on arrival
// order exactly as they would for a single-mutex station.
type Sharded struct {
	cfg  Config
	mask uint16

	cbMu     sync.Mutex
	onRevoke []func(ident.NodeID)

	reporters []reporterShard
	targets   []targetShard
}

type reporterShard struct {
	mu      sync.Mutex
	reports map[ident.NodeID]int
	_       [40]byte // pad to a cache line so neighboring shards don't false-share
}

type targetShard struct {
	mu      sync.Mutex
	alerts  map[ident.NodeID]int
	revoked map[ident.NodeID]bool
	seen    map[pair]bool
	stats   Stats
}

// NewSharded constructs a sharded station with at least the given shard
// count (rounded up to a power of two; minimum 1). Like NewBaseStation it
// panics on an invalid configuration.
func NewSharded(cfg Config, shards int) *Sharded {
	if err := cfg.Validate(); err != nil {
		panic(err.Error())
	}
	if shards < 1 {
		panic(fmt.Sprintf("revoke: shard count %d must be >= 1", shards))
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	s := &Sharded{
		cfg:       cfg,
		mask:      uint16(n - 1),
		reporters: make([]reporterShard, n),
		targets:   make([]targetShard, n),
	}
	for i := range s.reporters {
		s.reporters[i].reports = make(map[ident.NodeID]int)
	}
	for i := range s.targets {
		s.targets[i].alerts = make(map[ident.NodeID]int)
		s.targets[i].revoked = make(map[ident.NodeID]bool)
		s.targets[i].seen = make(map[pair]bool)
	}
	return s
}

// NumShards returns the shard count (a power of two).
func (s *Sharded) NumShards() int { return len(s.targets) }

// OnRevoke registers a callback invoked (synchronously, in HandleAlert,
// outside the shard locks) whenever a node is revoked. Callbacks must be
// safe for concurrent invocation when HandleAlert is called concurrently.
func (s *Sharded) OnRevoke(fn func(ident.NodeID)) {
	s.cbMu.Lock()
	defer s.cbMu.Unlock()
	s.onRevoke = append(s.onRevoke, fn)
}

// HandleAlert processes one authenticated alert (reporter accuses target)
// per the paper's algorithm and returns what happened. It is safe for
// concurrent use from any number of goroutines.
func (s *Sharded) HandleAlert(reporter, target ident.NodeID) Outcome {
	rs := &s.reporters[uint16(reporter)&s.mask]
	ts := &s.targets[uint16(target)&s.mask]
	rs.mu.Lock()
	ts.mu.Lock()
	out := s.apply(rs, ts, reporter, target)
	ts.stats.record(out)
	ts.mu.Unlock()
	rs.mu.Unlock()
	if out != OutcomeRevoked {
		return out
	}
	s.cbMu.Lock()
	callbacks := make([]func(ident.NodeID), len(s.onRevoke))
	copy(callbacks, s.onRevoke)
	s.cbMu.Unlock()
	for _, fn := range callbacks {
		fn(target)
	}
	return out
}

// apply is BaseStation.HandleAlert's check sequence under the caller's
// shard locks.
func (s *Sharded) apply(rs *reporterShard, ts *targetShard, reporter, target ident.NodeID) Outcome {
	if reporter == target {
		return OutcomeSelfReport
	}
	// Reporter revocation is deliberately not checked (paper §3: a
	// revoked detecting node's alerts are still accepted).
	if ts.revoked[target] {
		return OutcomeAlreadyRevoked
	}
	if ts.seen[pair{reporter, target}] {
		return OutcomeDuplicate
	}
	if rs.reports[reporter] > s.cfg.ReportCap {
		return OutcomeReporterCapped
	}
	ts.seen[pair{reporter, target}] = true
	rs.reports[reporter]++
	ts.alerts[target]++
	if ts.alerts[target] <= s.cfg.AlertThreshold {
		return OutcomeAccepted
	}
	ts.revoked[target] = true
	return OutcomeRevoked
}

// Revoked reports whether id has been revoked.
func (s *Sharded) Revoked(id ident.NodeID) bool {
	ts := &s.targets[uint16(id)&s.mask]
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.revoked[id]
}

// RevokedSet returns the sorted list of revoked node IDs. Shards are
// visited one at a time, so under concurrent ingest the set is a
// per-shard-consistent sample, not a global atomic snapshot; after ingest
// quiesces it is exact.
func (s *Sharded) RevokedSet() []ident.NodeID {
	var out []ident.NodeID
	for i := range s.targets {
		ts := &s.targets[i]
		ts.mu.Lock()
		for id := range ts.revoked {
			out = append(out, id)
		}
		ts.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AlertCount returns the current alert counter of id.
func (s *Sharded) AlertCount(id ident.NodeID) int {
	ts := &s.targets[uint16(id)&s.mask]
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.alerts[id]
}

// ReportCount returns the current report counter of id.
func (s *Sharded) ReportCount(id ident.NodeID) int {
	rs := &s.reporters[uint16(id)&s.mask]
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.reports[id]
}

// Stats returns the outcome counters summed across shards (same sampling
// caveat as RevokedSet under concurrent ingest).
func (s *Sharded) Stats() Stats {
	var sum Stats
	for _, st := range s.ShardStats() {
		sum.Merge(st)
	}
	return sum
}

// Handled returns the total number of alerts processed (any outcome).
func (s *Sharded) Handled() uint64 { return s.Stats().Handled }

// ShardStats returns a copy of each target shard's outcome counters, in
// shard order — the per-shard load view the revnet status endpoint
// exposes so a skewed alert distribution is visible operationally.
func (s *Sharded) ShardStats() []Stats {
	out := make([]Stats, len(s.targets))
	for i := range s.targets {
		ts := &s.targets[i]
		ts.mu.Lock()
		out[i] = ts.stats
		ts.mu.Unlock()
	}
	return out
}
