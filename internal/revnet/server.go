package revnet

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"beaconsec/internal/crypto"
	"beaconsec/internal/ident"
	"beaconsec/internal/packet"
	"beaconsec/internal/revoke"
)

// ServerConfig configures a revocation server.
type ServerConfig struct {
	// Revoke holds the paper's τ/τ′ thresholds.
	Revoke revoke.Config
	// Shards is the lock-shard count for the alert/report counters
	// (rounded up to a power of two; default 16). More shards cost a few
	// hundred bytes each and reduce contention between concurrent
	// connections.
	Shards int
	// Master derives each node's base-station key; it stands in for the
	// predistribution ceremony exactly as in the simulation.
	Master *crypto.Master
	// IdleTimeout bounds how long a connection may sit between frames
	// before the server drops it. Zero means no limit.
	IdleTimeout time.Duration
	// Metrics, when non-nil, receives wire and outcome counters.
	Metrics *Metrics
}

// Server is the networked base station: a goroutine-per-connection TCP
// listener applying authenticated alert uplinks to a sharded revocation
// station and answering revocation-status queries.
type Server struct {
	cfg     ServerConfig
	station *revoke.Sharded
	m       *Metrics

	mu     sync.Mutex
	lis    net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer constructs a server. The configuration must carry a master
// secret and valid thresholds.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Master == nil {
		return nil, errors.New("revnet: ServerConfig.Master is required")
	}
	if err := cfg.Revoke.Validate(); err != nil {
		return nil, err
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 16
	}
	if cfg.Metrics == nil {
		cfg.Metrics = &Metrics{}
	}
	return &Server{
		cfg:     cfg,
		station: revoke.NewSharded(cfg.Revoke, cfg.Shards),
		m:       cfg.Metrics,
		conns:   make(map[net.Conn]struct{}),
	}, nil
}

// Station exposes the underlying sharded revocation state (for status
// snapshots and in-process inspection).
func (s *Server) Station() *revoke.Sharded { return s.station }

// Addr returns the listening address, or nil before Serve.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lis == nil {
		return nil
	}
	return s.lis.Addr()
}

// ListenAndServe listens on the TCP address addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(lis)
}

// Serve accepts connections on lis until Close (or a fatal listener
// error), spawning one goroutine per connection. It returns nil after
// Close.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		lis.Close()
		return errors.New("revnet: server is closed")
	}
	if s.lis != nil {
		s.mu.Unlock()
		lis.Close()
		return errors.New("revnet: server is already serving")
	}
	s.lis = lis
	s.mu.Unlock()

	for {
		conn, err := lis.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("revnet: accept: %w", err)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		s.m.ConnsAccepted.Inc()
		go s.handle(conn)
	}
}

// Close stops accepting, closes every live connection, and waits for the
// per-connection goroutines to drain. Safe to call more than once.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	lis := s.lis
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	var err error
	if lis != nil {
		err = lis.Close()
	}
	s.wg.Wait()
	return err
}

// forget removes a finished connection from the live set.
func (s *Server) forget(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// handle runs one connection's request loop: read frame, authenticate,
// apply, reply. Any framing, authentication, or protocol error drops the
// connection — the client's retry path owns recovery.
func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer s.forget(conn)
	defer conn.Close()

	br := bufio.NewReaderSize(conn, 4*packet.MaxSize)
	in := frameBuf()
	out := make([]byte, 0, packet.MaxSize)
	for {
		if s.cfg.IdleTimeout > 0 {
			if err := conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout)); err != nil {
				s.m.ConnsDropped.Inc()
				return
			}
		}
		frame, err := readFrame(br, in)
		if err != nil {
			if err == io.EOF {
				s.m.ConnsClosed.Inc()
			} else {
				if errors.Is(err, packet.ErrBadType) || errors.Is(err, packet.ErrBadLength) {
					// Malformed framing bytes, not an I/O failure.
					s.m.ProtocolErrors.Inc()
				}
				s.m.ConnsDropped.Inc()
			}
			return
		}
		s.m.FramesIn.Inc()
		s.m.BytesIn.Add(uint64(len(frame)))

		reply, ok := s.serveFrame(frame)
		if !ok {
			s.m.ConnsDropped.Inc()
			return
		}
		out, err = packet.EncodeTo(out[:0], ident.BaseStation, reply.dst, reply.seq, reply.status, reply.key)
		if err != nil {
			// Unreachable: RevocationStatus is always encodable.
			s.m.ConnsDropped.Inc()
			return
		}
		if _, err := conn.Write(out); err != nil {
			s.m.ConnsDropped.Inc()
			return
		}
		s.m.BytesOut.Add(uint64(len(out)))
	}
}

// frameReply is the response serveFrame instructs handle to send.
type frameReply struct {
	dst    ident.NodeID
	seq    uint16
	status packet.RevocationStatus
	key    crypto.Key
}

// serveFrame authenticates and applies one request frame. ok=false means
// the frame was hostile or malformed and the connection must drop.
func (s *Server) serveFrame(frame []byte) (frameReply, bool) {
	hdr, err := packet.PeekHeader(frame)
	if err != nil {
		s.m.ProtocolErrors.Inc()
		return frameReply{}, false
	}
	src := hdr.Src
	if src == ident.BaseStation || !src.IsUnicast() {
		// Only real nodes hold base-station keys; a frame claiming to be
		// from the base station (or broadcast/nobody) is hostile.
		s.m.ProtocolErrors.Inc()
		return frameReply{}, false
	}
	key := s.cfg.Master.BaseStationKey(src)
	pkt, err := packet.Decode(frame, key)
	if err != nil {
		if errors.Is(err, packet.ErrBadTag) {
			s.m.AuthFailures.Inc()
		} else {
			s.m.ProtocolErrors.Inc()
		}
		return frameReply{}, false
	}
	if pkt.Header.Dst != ident.BaseStation {
		s.m.ProtocolErrors.Inc()
		return frameReply{}, false
	}

	var status packet.RevocationStatus
	switch p := pkt.Payload.(type) {
	case packet.AlertUplink:
		out := s.station.HandleAlert(src, p.Target)
		s.m.recordOutcome(out)
		status = packet.RevocationStatus{
			Target:  p.Target,
			Outcome: uint8(out),
			Revoked: out == revoke.OutcomeRevoked || out == revoke.OutcomeAlreadyRevoked,
		}
	case packet.RevocationQuery:
		s.m.QueriesServed.Inc()
		status = packet.RevocationStatus{Target: p.Target, Revoked: s.station.Revoked(p.Target)}
	default:
		// A correctly signed frame of a type the service does not accept
		// (e.g. a reflected RevocationStatus or a sim-only type).
		s.m.ProtocolErrors.Inc()
		return frameReply{}, false
	}
	return frameReply{dst: src, seq: pkt.Header.Seq, status: status, key: key}, true
}

// StatusSnapshot is the server's exportable operational state: the
// configured thresholds, the revocation result, per-shard load, and the
// wire counters — the revnet analogue of 'figures -json' run metrics.
type StatusSnapshot struct {
	Addr    string         `json:"addr,omitempty"`
	Revoke  revoke.Config  `json:"revoke"`
	Shards  int            `json:"shards"`
	Revoked []ident.NodeID `json:"revoked"`
	Station revoke.Stats   `json:"station"`
	ByShard []revoke.Stats `json:"by_shard"`
	Net     Snapshot       `json:"net"`
}

// StatusSnapshot captures the server's current state. Safe during
// sustained ingest (per-shard sampling, see revoke.Sharded.RevokedSet).
func (s *Server) StatusSnapshot() StatusSnapshot {
	snap := StatusSnapshot{
		Revoke:  s.cfg.Revoke,
		Shards:  s.station.NumShards(),
		Revoked: s.station.RevokedSet(),
		Station: s.station.Stats(),
		ByShard: s.station.ShardStats(),
		Net:     s.m.Snapshot(),
	}
	if snap.Revoked == nil {
		snap.Revoked = []ident.NodeID{}
	}
	if addr := s.Addr(); addr != nil {
		snap.Addr = addr.String()
	}
	return snap
}

// WriteStatus writes the status snapshot as indented JSON.
func (s *Server) WriteStatus(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.StatusSnapshot())
}

// ServeHTTP serves the status snapshot as JSON, so cmd/revoked can mount
// the server directly on an HTTP status listener.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := s.WriteStatus(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
