package revnet

import (
	"beaconsec/internal/metrics"
	"beaconsec/internal/revoke"
)

// Metrics holds the revnet wire-level counters. Every counter is an
// atomic add (internal/metrics.Counter), so one Metrics may be shared by
// a server, its per-connection goroutines, and any number of clients.
// Server and client allocate their own when the config leaves Metrics
// nil, so recording sites never branch.
type Metrics struct {
	// Server-side connection lifecycle.
	ConnsAccepted metrics.Counter
	ConnsClosed   metrics.Counter // peer closed cleanly (EOF after a frame boundary)
	ConnsDropped  metrics.Counter // dropped by the server: I/O error, bad frame, bad tag, protocol violation

	// Traffic, both sides.
	FramesIn metrics.Counter
	BytesIn  metrics.Counter
	BytesOut metrics.Counter

	// Server-side request handling.
	AuthFailures   metrics.Counter // frames whose HMAC tag failed to verify
	ProtocolErrors metrics.Counter // well-signed frames of an unexpected type or addressing
	QueriesServed  metrics.Counter

	// Alerts by revoke.Outcome.
	AlertsAccepted       metrics.Counter
	AlertsRevoked        metrics.Counter
	AlertsReporterCapped metrics.Counter
	AlertsAlreadyRevoked metrics.Counter
	AlertsSelfReport     metrics.Counter
	AlertsDuplicate      metrics.Counter

	// Client-side retry accounting.
	Attempts  metrics.Counter // request attempts, including the first
	Retries   metrics.Counter // attempts after the first
	Exhausted metrics.Counter // requests that failed every attempt
}

// recordOutcome counts one handled alert under its outcome.
func (m *Metrics) recordOutcome(o revoke.Outcome) {
	switch o {
	case revoke.OutcomeAccepted:
		m.AlertsAccepted.Inc()
	case revoke.OutcomeRevoked:
		m.AlertsRevoked.Inc()
	case revoke.OutcomeReporterCapped:
		m.AlertsReporterCapped.Inc()
	case revoke.OutcomeAlreadyRevoked:
		m.AlertsAlreadyRevoked.Inc()
	case revoke.OutcomeSelfReport:
		m.AlertsSelfReport.Inc()
	case revoke.OutcomeDuplicate:
		m.AlertsDuplicate.Inc()
	}
}

// Snapshot is the JSON-exportable view of a Metrics at one instant.
type Snapshot struct {
	ConnsAccepted uint64 `json:"conns_accepted"`
	ConnsClosed   uint64 `json:"conns_closed"`
	ConnsDropped  uint64 `json:"conns_dropped"`

	FramesIn uint64 `json:"frames_in"`
	BytesIn  uint64 `json:"bytes_in"`
	BytesOut uint64 `json:"bytes_out"`

	AuthFailures   uint64 `json:"auth_failures"`
	ProtocolErrors uint64 `json:"protocol_errors"`
	QueriesServed  uint64 `json:"queries_served"`

	Alerts map[string]uint64 `json:"alerts"`

	Attempts  uint64 `json:"attempts"`
	Retries   uint64 `json:"retries"`
	Exhausted uint64 `json:"exhausted"`
}

// Snapshot captures the current counter values. Safe to call while both
// sides are recording.
func (m *Metrics) Snapshot() Snapshot {
	if m == nil {
		return Snapshot{Alerts: map[string]uint64{}}
	}
	return Snapshot{
		ConnsAccepted:  m.ConnsAccepted.Load(),
		ConnsClosed:    m.ConnsClosed.Load(),
		ConnsDropped:   m.ConnsDropped.Load(),
		FramesIn:       m.FramesIn.Load(),
		BytesIn:        m.BytesIn.Load(),
		BytesOut:       m.BytesOut.Load(),
		AuthFailures:   m.AuthFailures.Load(),
		ProtocolErrors: m.ProtocolErrors.Load(),
		QueriesServed:  m.QueriesServed.Load(),
		Alerts: map[string]uint64{
			revoke.OutcomeAccepted.String():       m.AlertsAccepted.Load(),
			revoke.OutcomeRevoked.String():        m.AlertsRevoked.Load(),
			revoke.OutcomeReporterCapped.String(): m.AlertsReporterCapped.Load(),
			revoke.OutcomeAlreadyRevoked.String(): m.AlertsAlreadyRevoked.Load(),
			revoke.OutcomeSelfReport.String():     m.AlertsSelfReport.Load(),
			revoke.OutcomeDuplicate.String():      m.AlertsDuplicate.Load(),
		},
		Attempts:  m.Attempts.Load(),
		Retries:   m.Retries.Load(),
		Exhausted: m.Exhausted.Load(),
	}
}
