// Package revnet is the networked analogue of the simulated revocation
// path: a long-running base-station service (Server) that accepts
// authenticated alert uplinks and answers revocation-status queries over
// TCP, and a retrying Client beacon nodes use to reach it.
//
// Wire protocol. Each direction carries a stream of internal/packet
// frames, self-delimiting because the fixed header encodes the payload
// length (packet.FrameLen). Requests are TypeAlertUplink or
// TypeRevocationQuery, addressed Src=node, Dst=ident.BaseStation, and
// signed under the node's base-station key (paper §3.1: "each beacon node
// shares a unique random key with the base station"); the server answers
// every request with a TypeRevocationStatus signed under the same key,
// echoing the request Seq. A frame that fails framing, authentication, or
// addressing drops the connection: past the HMAC there are no malformed
// messages, only hostile ones.
package revnet

import (
	"bufio"
	"fmt"
	"io"

	"beaconsec/internal/packet"
)

// readFrame reads one length-delimited packet frame from br into buf
// (which must have capacity ≥ packet.MaxSize) and returns the frame
// bytes. It returns io.EOF only on a clean close at a frame boundary;
// a connection cut mid-frame surfaces io.ErrUnexpectedEOF.
func readFrame(br *bufio.Reader, buf []byte) ([]byte, error) {
	buf = buf[:packet.HeaderSize]
	if _, err := io.ReadFull(br, buf); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("revnet: truncated frame header: %w", err)
		}
		return nil, err
	}
	total, err := packet.FrameLen(buf)
	if err != nil {
		return nil, err
	}
	buf = buf[:total]
	if _, err := io.ReadFull(br, buf[packet.HeaderSize:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("revnet: truncated frame body: %w", err)
	}
	return buf, nil
}

// frameBuf returns a frame read buffer of the maximum frame size.
func frameBuf() []byte { return make([]byte, packet.MaxSize) }
