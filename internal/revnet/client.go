package revnet

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"sync"
	"time"

	"beaconsec/internal/crypto"
	"beaconsec/internal/ident"
	"beaconsec/internal/packet"
	"beaconsec/internal/revoke"
)

// ClientConfig configures a revocation client — one node's connection to
// the networked base station.
type ClientConfig struct {
	// Addr is the server's TCP address.
	Addr string
	// Self is this node's identity; requests are sent as Src=Self.
	Self ident.NodeID
	// Key is the base-station key provisioned to Self
	// (crypto.Master.BaseStationKey(Self)).
	Key crypto.Key

	// AttemptTimeout bounds one attempt end to end: dial (when
	// reconnecting), write, and reply read. Default 2s.
	AttemptTimeout time.Duration
	// MaxAttempts bounds attempts per request, including the first.
	// Default 4.
	MaxAttempts int
	// BackoffBase is the pre-jitter backoff after the first failed
	// attempt; it doubles per attempt up to BackoffMax. Defaults 25ms and
	// 1s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Jitter returns a uniform value in [0, 1) used to spread retries
	// (full jitter: sleep = backoff * (0.5 + 0.5*Jitter())). Defaults to
	// math/rand/v2; tests inject a deterministic source.
	Jitter func() float64

	// Dial opens the transport connection; tests inject failures here.
	// Defaults to a net.Dialer respecting the attempt deadline.
	Dial func(ctx context.Context, network, addr string) (net.Conn, error)

	// Metrics, when non-nil, receives attempt/retry/traffic counters.
	Metrics *Metrics
}

// ExhaustedError is returned when a request failed every attempt. It
// wraps the last attempt's error.
type ExhaustedError struct {
	// Op names the failed request ("alert" or "query").
	Op string
	// Attempts is how many attempts were made.
	Attempts int
	// Last is the final attempt's error.
	Last error
}

// Error implements error.
func (e *ExhaustedError) Error() string {
	return fmt.Sprintf("revnet: %s failed after %d attempts: %v", e.Op, e.Attempts, e.Last)
}

// Unwrap exposes the last attempt's error to errors.Is/As chains.
func (e *ExhaustedError) Unwrap() error { return e.Last }

// Client is the networked analogue of the simulated revoke.Uplink: it
// delivers alerts to the base station over TCP with per-attempt timeouts
// and bounded, jittered retries, and additionally supports
// revocation-status queries. A Client is safe for concurrent use;
// requests on one client are serialized over its single connection.
type Client struct {
	cfg ClientConfig
	m   *Metrics

	sendMu sync.Mutex // serializes request/reply exchanges and guards the fields below
	conn   net.Conn
	br     *bufio.Reader
	in     []byte
	out    []byte
	seq    uint16
	closed bool
}

// NewClient builds a client. It does not dial; the first request
// connects (and any request transparently reconnects after a failure).
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.Addr == "" {
		return nil, errors.New("revnet: ClientConfig.Addr is required")
	}
	if cfg.Self == ident.BaseStation || !cfg.Self.IsUnicast() {
		return nil, fmt.Errorf("revnet: ClientConfig.Self %v is not a node identity", cfg.Self)
	}
	if cfg.AttemptTimeout <= 0 {
		cfg.AttemptTimeout = 2 * time.Second
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 4
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 25 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = time.Second
	}
	if cfg.Jitter == nil {
		cfg.Jitter = rand.Float64
	}
	if cfg.Dial == nil {
		var d net.Dialer
		cfg.Dial = d.DialContext
	}
	if cfg.Metrics == nil {
		cfg.Metrics = &Metrics{}
	}
	return &Client{
		cfg: cfg,
		m:   cfg.Metrics,
		in:  frameBuf(),
		out: make([]byte, 0, packet.MaxSize),
	}, nil
}

// Metrics returns the client's counters.
func (c *Client) Metrics() *Metrics { return c.m }

// Close closes the client's connection, if any. In-flight requests fail.
func (c *Client) Close() error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	c.closed = true
	return c.dropConnLocked()
}

// SendAlert delivers one alert accusing target and returns the base
// station's outcome. On total failure it returns a *ExhaustedError (or
// ctx's error if the context ended first).
func (c *Client) SendAlert(ctx context.Context, target ident.NodeID) (revoke.Outcome, error) {
	status, err := c.roundTrip(ctx, "alert", packet.AlertUplink{Target: target}, target)
	if err != nil {
		return 0, err
	}
	return revoke.Outcome(status.Outcome), nil
}

// Query asks whether target is revoked.
func (c *Client) Query(ctx context.Context, target ident.NodeID) (bool, error) {
	status, err := c.roundTrip(ctx, "query", packet.RevocationQuery{Target: target}, target)
	if err != nil {
		return false, err
	}
	return status.Revoked, nil
}

// roundTrip runs the retry loop for one request.
func (c *Client) roundTrip(ctx context.Context, op string, payload any, target ident.NodeID) (packet.RevocationStatus, error) {
	var last error
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			c.m.Retries.Inc()
			if err := c.sleepBackoff(ctx, attempt); err != nil {
				return packet.RevocationStatus{}, err
			}
		}
		if err := ctx.Err(); err != nil {
			return packet.RevocationStatus{}, err
		}
		c.m.Attempts.Inc()
		status, err := c.attempt(ctx, payload, target)
		if err == nil {
			return status, nil
		}
		last = err
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// The caller's context ended mid-attempt; don't burn the
			// remaining attempts against a dead deadline.
			if ctx.Err() != nil {
				return packet.RevocationStatus{}, ctx.Err()
			}
		}
	}
	c.m.Exhausted.Inc()
	return packet.RevocationStatus{}, &ExhaustedError{Op: op, Attempts: c.cfg.MaxAttempts, Last: last}
}

// sleepBackoff waits the jittered exponential backoff for the given
// attempt number (≥1), or returns early with ctx's error.
func (c *Client) sleepBackoff(ctx context.Context, attempt int) error {
	d := c.cfg.BackoffBase << (attempt - 1)
	if d > c.cfg.BackoffMax || d <= 0 {
		d = c.cfg.BackoffMax
	}
	d = time.Duration(float64(d) * (0.5 + 0.5*c.cfg.Jitter()))
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}

// attempt performs one connect-write-read exchange under the per-attempt
// deadline.
func (c *Client) attempt(ctx context.Context, payload any, target ident.NodeID) (packet.RevocationStatus, error) {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	if c.closed {
		return packet.RevocationStatus{}, net.ErrClosed
	}
	deadline := time.Now().Add(c.cfg.AttemptTimeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	if c.conn == nil {
		dialCtx, cancel := context.WithDeadline(ctx, deadline)
		conn, err := c.cfg.Dial(dialCtx, "tcp", c.cfg.Addr)
		cancel()
		if err != nil {
			return packet.RevocationStatus{}, fmt.Errorf("revnet: dial %s: %w", c.cfg.Addr, err)
		}
		c.conn = conn
		c.br = bufio.NewReaderSize(conn, 4*packet.MaxSize)
	}
	status, err := c.exchangeLocked(deadline, payload, target)
	if err != nil {
		// Any failure poisons the connection: the stream may hold a
		// half-written request or a stale reply, so reconnect.
		c.dropConnLocked()
		return packet.RevocationStatus{}, err
	}
	return status, nil
}

// exchangeLocked writes one request and reads its status reply on the
// live connection. Caller holds sendMu and owns a non-nil conn.
func (c *Client) exchangeLocked(deadline time.Time, payload any, target ident.NodeID) (packet.RevocationStatus, error) {
	if err := c.conn.SetDeadline(deadline); err != nil {
		return packet.RevocationStatus{}, err
	}
	c.seq++
	seq := c.seq
	var err error
	c.out, err = packet.EncodeTo(c.out[:0], c.cfg.Self, ident.BaseStation, seq, payload, c.cfg.Key)
	if err != nil {
		return packet.RevocationStatus{}, err
	}
	if _, err := c.conn.Write(c.out); err != nil {
		return packet.RevocationStatus{}, fmt.Errorf("revnet: write: %w", err)
	}
	c.m.BytesOut.Add(uint64(len(c.out)))

	frame, err := readFrame(c.br, c.in)
	if err != nil {
		return packet.RevocationStatus{}, fmt.Errorf("revnet: read reply: %w", err)
	}
	c.m.FramesIn.Inc()
	c.m.BytesIn.Add(uint64(len(frame)))
	pkt, err := packet.Decode(frame, c.cfg.Key)
	if err != nil {
		return packet.RevocationStatus{}, fmt.Errorf("revnet: reply: %w", err)
	}
	status, ok := pkt.Payload.(packet.RevocationStatus)
	if !ok {
		return packet.RevocationStatus{}, fmt.Errorf("revnet: reply type %v, want revocation-status", pkt.Header.Type)
	}
	if pkt.Header.Src != ident.BaseStation || pkt.Header.Dst != c.cfg.Self {
		return packet.RevocationStatus{}, fmt.Errorf("revnet: reply addressed %v->%v", pkt.Header.Src, pkt.Header.Dst)
	}
	if pkt.Header.Seq != seq {
		return packet.RevocationStatus{}, fmt.Errorf("revnet: reply seq %d, want %d", pkt.Header.Seq, seq)
	}
	if status.Target != target {
		return packet.RevocationStatus{}, fmt.Errorf("revnet: reply for target %v, want %v", status.Target, target)
	}
	return status, nil
}

// dropConnLocked closes and forgets the connection. Caller holds sendMu.
func (c *Client) dropConnLocked() error {
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	c.br = nil
	return err
}
