package revnet

// Loopback integration suite: a real Server on 127.0.0.1 driven by real
// Clients over TCP. The load test is the PR's acceptance gate: N
// concurrent clients firing interleaved alerts must leave the server in
// exactly the revocation state a serial in-process revoke.BaseStation
// reaches on the same alerts — the counter scheme is order-insensitive
// as long as no reporter exceeds its τ budget (every alert stream here
// stays under it, so any interleaving accepts the same pairs).

import (
	"context"
	"encoding/json"
	"net"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"beaconsec/internal/crypto"
	"beaconsec/internal/ident"
	"beaconsec/internal/revoke"
	"beaconsec/internal/rng"
)

func testMaster() *crypto.Master { return crypto.NewMaster([]byte("revnet-test")) }

// startServer runs srv on an ephemeral loopback listener and returns its
// address. Shutdown (and Serve's error) is checked in cleanup.
func startServer(tb testing.TB, cfg ServerConfig) (*Server, string) {
	tb.Helper()
	srv, err := NewServer(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(lis) }()
	// Wait for the Serve goroutine to register the listener so the
	// returned server is deterministically "serving" (Addr set, second
	// Serve rejected).
	for srv.Addr() == nil {
		time.Sleep(time.Millisecond)
	}
	tb.Cleanup(func() {
		if err := srv.Close(); err != nil {
			tb.Errorf("server close: %v", err)
		}
		if err := <-done; err != nil {
			tb.Errorf("serve: %v", err)
		}
	})
	return srv, lis.Addr().String()
}

func newTestClient(tb testing.TB, addr string, self ident.NodeID, master *crypto.Master) *Client {
	tb.Helper()
	c, err := NewClient(ClientConfig{
		Addr:           addr,
		Self:           self,
		Key:            master.BaseStationKey(self),
		AttemptTimeout: 5 * time.Second,
	})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { c.Close() })
	return c
}

type alertPair struct{ reporter, target ident.NodeID }

// makeStreams builds one alert stream per client, all in the
// order-insensitive regime (τ far above any reporter's distinct-target
// count).
func makeStreams(clients, perClient, targetSpread int) [][]alertPair {
	streams := make([][]alertPair, clients)
	for w := range streams {
		src := rng.New(uint64(7000 + w))
		for i := 0; i < perClient; i++ {
			streams[w] = append(streams[w], alertPair{
				reporter: ident.NodeID(1 + w),
				target:   ident.NodeID(500 + src.Intn(targetSpread)),
			})
		}
	}
	return streams
}

// serialBaseline replays every stream into a fresh single-mutex base
// station, in stream order.
func serialBaseline(cfg revoke.Config, streams [][]alertPair) *revoke.BaseStation {
	bs := revoke.NewBaseStation(cfg)
	for _, stream := range streams {
		for _, a := range stream {
			bs.HandleAlert(a.reporter, a.target)
		}
	}
	return bs
}

// TestLoopbackConcurrentClientsMatchSerialBaseline is the acceptance
// load test: ≥1000 alerts from ≥8 concurrent TCP clients, with status
// queries running throughout, must produce a revocation set
// byte-identical (canonically sorted, JSON-encoded) to the serial
// baseline.
func TestLoopbackConcurrentClientsMatchSerialBaseline(t *testing.T) {
	const (
		clients      = 8
		perClient    = 150 // 1200 alerts total
		targetSpread = 40
	)
	rcfg := revoke.Config{ReportCap: 1 << 14, AlertThreshold: 2}
	master := testMaster()
	m := &Metrics{}
	srv, addr := startServer(t, ServerConfig{Revoke: rcfg, Master: master, Shards: 16, Metrics: m})

	streams := makeStreams(clients, perClient, targetSpread)

	// Clients are built on the test goroutine (newTestClient may Fatal)
	// and handed to the workers.
	qc := newTestClient(t, addr, ident.NodeID(900), master)
	alertClients := make([]*Client, clients)
	for w := 0; w < clients; w++ {
		alertClients[w] = newTestClient(t, addr, streams[w][0].reporter, master)
	}

	// Status queries hammer the server for the whole ingest window: the
	// no-global-lock acceptance criterion, exercised functionally.
	stopQueries := make(chan struct{})
	queryDone := make(chan error, 1)
	go func() {
		defer close(queryDone)
		for i := 0; ; i++ {
			select {
			case <-stopQueries:
				return
			default:
			}
			if _, err := qc.Query(context.Background(), ident.NodeID(500+i%targetSpread)); err != nil {
				queryDone <- err
				return
			}
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(c *Client, stream []alertPair) {
			defer wg.Done()
			for _, a := range stream {
				if _, err := c.SendAlert(context.Background(), a.target); err != nil {
					errs <- err
					return
				}
			}
		}(alertClients[w], streams[w])
	}
	wg.Wait()
	close(stopQueries)
	if err, ok := <-queryDone; ok && err != nil {
		t.Fatalf("status query during ingest: %v", err)
	}
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	base := serialBaseline(rcfg, streams)
	gotJSON, err := json.Marshal(srv.Station().RevokedSet())
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(base.RevokedSet())
	if err != nil {
		t.Fatal(err)
	}
	if string(gotJSON) != string(wantJSON) {
		t.Errorf("revocation set over the wire differs from serial baseline:\n got %s\nwant %s", gotJSON, wantJSON)
	}
	if len(base.RevokedSet()) == 0 {
		t.Fatal("degenerate test: baseline revoked nothing")
	}
	if got, want := srv.Station().Handled(), uint64(clients*perClient); got != want {
		t.Errorf("server handled %d alerts, want %d", got, want)
	}
	for id := ident.NodeID(500); id < 500+targetSpread; id++ {
		if got, want := srv.Station().AlertCount(id), base.AlertCount(id); got != want {
			t.Errorf("AlertCount(%v) = %d, want %d", id, got, want)
		}
	}

	// Wire-level accounting: every alert and every query got exactly one
	// status reply, and the byte counters saw them.
	snap := m.Snapshot()
	if snap.ConnsAccepted != clients+1 {
		t.Errorf("conns accepted = %d, want %d", snap.ConnsAccepted, clients+1)
	}
	alerts := snap.Alerts["accepted"] + snap.Alerts["revoked"] + snap.Alerts["already-revoked"] +
		snap.Alerts["duplicate"] + snap.Alerts["reporter-capped"] + snap.Alerts["self-report"]
	if alerts != clients*perClient {
		t.Errorf("alert outcomes sum to %d, want %d", alerts, clients*perClient)
	}
	if snap.FramesIn != alerts+snap.QueriesServed {
		t.Errorf("frames in = %d, want alerts %d + queries %d", snap.FramesIn, alerts, snap.QueriesServed)
	}
	if snap.QueriesServed == 0 {
		t.Error("no status queries served during ingest")
	}
	if snap.BytesIn == 0 || snap.BytesOut == 0 {
		t.Errorf("byte counters empty: in %d out %d", snap.BytesIn, snap.BytesOut)
	}
	if snap.AuthFailures != 0 || snap.ProtocolErrors != 0 || snap.ConnsDropped != 0 {
		t.Errorf("clean run recorded failures: %+v", snap)
	}
}

// TestLoopbackAlertOutcomesOverWire walks one client through every
// client-reachable outcome and checks the wire round-trip preserves it.
func TestLoopbackAlertOutcomesOverWire(t *testing.T) {
	master := testMaster()
	_, addr := startServer(t, ServerConfig{
		Revoke: revoke.Config{ReportCap: 100, AlertThreshold: 1},
		Master: master,
	})
	ctx := context.Background()
	c1 := newTestClient(t, addr, 1, master)
	c2 := newTestClient(t, addr, 2, master)

	steps := []struct {
		name   string
		client *Client
		target ident.NodeID
		want   revoke.Outcome
	}{
		{"first accusation accepted", c1, 50, revoke.OutcomeAccepted},
		{"duplicate pair", c1, 50, revoke.OutcomeDuplicate},
		{"self report", c1, 1, revoke.OutcomeSelfReport},
		{"second accusation revokes", c2, 50, revoke.OutcomeRevoked},
		{"already revoked", c1, 50, revoke.OutcomeAlreadyRevoked},
	}
	for _, tt := range steps {
		out, err := tt.client.SendAlert(ctx, tt.target)
		if err != nil {
			t.Fatalf("%s: %v", tt.name, err)
		}
		if out != tt.want {
			t.Errorf("%s: outcome %v, want %v", tt.name, out, tt.want)
		}
	}

	revoked, err := c1.Query(ctx, 50)
	if err != nil {
		t.Fatal(err)
	}
	if !revoked {
		t.Error("query says 50 not revoked")
	}
	clear, err := c1.Query(ctx, 60)
	if err != nil {
		t.Fatal(err)
	}
	if clear {
		t.Error("query says 60 revoked")
	}
}

// TestLoopbackForgedClientKeyRejected pins the authentication boundary:
// a client signing with the wrong base-station key gets dropped, never
// applied.
func TestLoopbackForgedClientKeyRejected(t *testing.T) {
	master := testMaster()
	m := &Metrics{}
	srv, addr := startServer(t, ServerConfig{
		Revoke:  revoke.Config{ReportCap: 10, AlertThreshold: 0},
		Master:  master,
		Metrics: m,
	})
	// Node 3's key used under node 4's identity: the server derives node
	// 4's key from Src and the tag check fails.
	forger, err := NewClient(ClientConfig{
		Addr:        addr,
		Self:        4,
		Key:         master.BaseStationKey(3),
		MaxAttempts: 2,
		BackoffBase: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer forger.Close()
	if _, err := forger.SendAlert(context.Background(), 50); err == nil {
		t.Fatal("forged alert succeeded")
	}
	if srv.Station().Handled() != 0 {
		t.Error("forged alert reached the station")
	}
	if m.AuthFailures.Load() == 0 {
		t.Error("no auth failure recorded")
	}
}

func TestStatusSnapshotAndHTTPEndpoint(t *testing.T) {
	master := testMaster()
	srv, addr := startServer(t, ServerConfig{
		Revoke: revoke.Config{ReportCap: 10, AlertThreshold: 0},
		Master: master,
		Shards: 4,
	})
	c := newTestClient(t, addr, 1, master)
	if _, err := c.SendAlert(context.Background(), 50); err != nil {
		t.Fatal(err)
	}

	snap := srv.StatusSnapshot()
	if snap.Addr != addr {
		t.Errorf("snapshot addr %q, want %q", snap.Addr, addr)
	}
	if snap.Shards != 4 || len(snap.ByShard) != 4 {
		t.Errorf("shards = %d (%d stats), want 4", snap.Shards, len(snap.ByShard))
	}
	if !reflect.DeepEqual(snap.Revoked, []ident.NodeID{50}) {
		t.Errorf("revoked = %v, want [50]", snap.Revoked)
	}
	if snap.Station.Revocations != 1 {
		t.Errorf("station stats %+v, want 1 revocation", snap.Station)
	}

	// The same snapshot over the HTTP status endpoint.
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var decoded StatusSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&decoded); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(decoded.Revoked, snap.Revoked) || decoded.Station != snap.Station {
		t.Errorf("HTTP snapshot %+v differs from direct %+v", decoded, snap)
	}
}

func TestServerLifecycleErrors(t *testing.T) {
	if _, err := NewServer(ServerConfig{Revoke: revoke.Config{ReportCap: 1, AlertThreshold: 1}}); err == nil {
		t.Error("NewServer without master succeeded")
	}
	if _, err := NewServer(ServerConfig{Master: testMaster(), Revoke: revoke.Config{ReportCap: -1}}); err == nil {
		t.Error("NewServer with bad thresholds succeeded")
	}

	srv, _ := startServer(t, ServerConfig{Master: testMaster(), Revoke: revoke.Config{ReportCap: 1, AlertThreshold: 1}})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Serve(lis); err == nil {
		t.Error("second Serve succeeded")
	}
}
