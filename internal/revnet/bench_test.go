package revnet

// Loopback throughput benchmarks for the networked revocation path.
// BenchmarkLoopbackAlert measures single-client request/reply latency;
// BenchmarkLoopbackAlertClients measures aggregate alert throughput with
// concurrent clients, which is the number EXPERIMENTS.md reports.

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"beaconsec/internal/ident"
	"beaconsec/internal/revoke"
)

// benchServerConfig keeps thresholds high so no target ever revokes and
// every alert walks the accept path.
func benchServerConfig() ServerConfig {
	return ServerConfig{
		Revoke: revoke.Config{ReportCap: 1 << 20, AlertThreshold: 1 << 20},
		Master: testMaster(),
	}
}

func BenchmarkLoopbackAlert(b *testing.B) {
	_, addr := startServer(b, benchServerConfig())
	c := newTestClient(b, addr, 1, testMaster())
	ctx := context.Background()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Rotate targets so alerts are accepted, not duplicates.
		target := ident.NodeID(1000 + i%30000)
		if _, err := c.SendAlert(ctx, target); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLoopbackQuery(b *testing.B) {
	_, addr := startServer(b, benchServerConfig())
	c := newTestClient(b, addr, 1, testMaster())
	ctx := context.Background()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Query(ctx, 1000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLoopbackAlertClients(b *testing.B) {
	for _, clients := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			_, addr := startServer(b, benchServerConfig())
			master := testMaster()
			pool := make([]*Client, clients)
			for i := range pool {
				pool[i] = newTestClient(b, addr, ident.NodeID(1+i), master)
			}
			ctx := context.Background()

			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			var failed atomic.Value
			for w, c := range pool {
				// Split b.N across the clients; the remainder goes to the
				// first few so the total is exact.
				n := b.N / clients
				if w < b.N%clients {
					n++
				}
				wg.Add(1)
				go func(c *Client, base, n int) {
					defer wg.Done()
					for i := 0; i < n; i++ {
						// Per-client target stripe keeps alerts accepted
						// (no duplicates) and spreads shard load.
						target := ident.NodeID(1000 + (base+i)%30000)
						if _, err := c.SendAlert(ctx, target); err != nil {
							failed.Store(err)
							return
						}
					}
				}(c, w*4000, n)
			}
			wg.Wait()
			if err := failed.Load(); err != nil {
				b.Fatal(err)
			}
		})
	}
}
