package revnet

// Protocol hardening tests: the stream frame reader's boundary behavior,
// and the server's handling of hostile frames (garbage, forged tags,
// wrong addressing, reflected replies, impersonation). A hostile frame
// never produces a reply — the connection drops and a counter records
// why.

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"beaconsec/internal/crypto"
	"beaconsec/internal/ident"
	"beaconsec/internal/packet"
	"beaconsec/internal/revoke"
)

func mustEncode(t *testing.T, src, dst ident.NodeID, seq uint16, payload any, key crypto.Key) []byte {
	t.Helper()
	frame, err := packet.Encode(src, dst, seq, payload, key)
	if err != nil {
		t.Fatal(err)
	}
	return frame
}

func TestReadFrameCleanEOFAtBoundary(t *testing.T) {
	master := testMaster()
	frame := mustEncode(t, 3, ident.BaseStation, 1, packet.AlertUplink{Target: 9}, master.BaseStationKey(3))

	br := bufio.NewReader(bytes.NewReader(frame))
	got, err := readFrame(br, frameBuf())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, frame) {
		t.Error("frame bytes mangled in transit")
	}
	if _, err := readFrame(br, frameBuf()); err != io.EOF {
		t.Errorf("at frame boundary err = %v, want bare io.EOF", err)
	}
}

func TestReadFrameBackToBackFrames(t *testing.T) {
	master := testMaster()
	var stream []byte
	var want [][]byte
	for seq := uint16(1); seq <= 3; seq++ {
		f := mustEncode(t, 3, ident.BaseStation, seq, packet.RevocationQuery{Target: ident.NodeID(seq)}, master.BaseStationKey(3))
		stream = append(stream, f...)
		want = append(want, f)
	}
	br := bufio.NewReader(bytes.NewReader(stream))
	buf := frameBuf()
	for i, w := range want {
		got, err := readFrame(br, buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, w) {
			t.Fatalf("frame %d mangled", i)
		}
	}
	if _, err := readFrame(br, buf); err != io.EOF {
		t.Errorf("after last frame err = %v, want io.EOF", err)
	}
}

func TestReadFrameTruncation(t *testing.T) {
	master := testMaster()
	frame := mustEncode(t, 3, ident.BaseStation, 1, packet.AlertUplink{Target: 9}, master.BaseStationKey(3))

	// A cut anywhere strictly inside the frame is never EOF: mid-header
	// and mid-body cuts both surface io.ErrUnexpectedEOF.
	for cut := 1; cut < len(frame); cut++ {
		br := bufio.NewReader(bytes.NewReader(frame[:cut]))
		_, err := readFrame(br, frameBuf())
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut at %d: err = %v, want io.ErrUnexpectedEOF", cut, err)
		}
	}
}

func TestReadFrameRejectsBadHeader(t *testing.T) {
	tests := []struct {
		name  string
		frame []byte
		want  error
	}{
		{"unknown type", append([]byte{0xEE}, make([]byte, 7)...), packet.ErrBadType},
		{"oversize length byte", []byte{byte(packet.TypeAlertUplink), 0, 3, 0xFF, 0xFF, 0, 1, 0xFF}, packet.ErrBadLength},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			br := bufio.NewReader(bytes.NewReader(tc.frame))
			if _, err := readFrame(br, frameBuf()); !errors.Is(err, tc.want) {
				t.Errorf("err = %v, want %v", err, tc.want)
			}
		})
	}
}

// hostileExchange writes raw bytes to a fresh connection and reports
// whether the server replied before dropping it.
func hostileExchange(t *testing.T, addr string, raw []byte) (replied bool) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(raw); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	_, err = conn.Read(buf)
	return err == nil
}

func TestServerDropsHostileFrames(t *testing.T) {
	master := testMaster()
	node := ident.NodeID(3)
	key := master.BaseStationKey(node)

	srv, addr := startServer(t, ServerConfig{
		Revoke: revoke.Config{ReportCap: 10, AlertThreshold: 2},
		Master: master,
	})

	forged := mustEncode(t, node, ident.BaseStation, 1, packet.AlertUplink{Target: 9}, master.BaseStationKey(4))
	wrongDst := mustEncode(t, node, 7, 1, packet.AlertUplink{Target: 9}, key)
	reflected := mustEncode(t, node, ident.BaseStation, 1,
		packet.RevocationStatus{Target: 9, Outcome: uint8(revoke.OutcomeAccepted)}, key)
	simOnly := mustEncode(t, node, ident.BaseStation, 1, packet.Alert{Target: 9}, key)
	impersonation := mustEncode(t, ident.BaseStation, ident.BaseStation, 1,
		packet.AlertUplink{Target: 9}, master.BaseStationKey(ident.BaseStation))
	broadcastSrc := mustEncode(t, ident.Broadcast, ident.BaseStation, 1,
		packet.AlertUplink{Target: 9}, master.BaseStationKey(ident.Broadcast))

	tests := []struct {
		name string
		raw  []byte
		auth bool // counted as an auth failure rather than a protocol error
	}{
		{"garbage header", bytes.Repeat([]byte{0xEE}, 16), false},
		{"forged tag", forged, true},
		{"wrong dst", wrongDst, false},
		{"reflected status", reflected, false},
		{"sim-only type", simOnly, false},
		{"base-station impersonation", impersonation, false},
		{"broadcast src", broadcastSrc, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			authBefore := srv.m.AuthFailures.Load()
			protoBefore := srv.m.ProtocolErrors.Load()
			droppedBefore := srv.m.ConnsDropped.Load()
			if hostileExchange(t, addr, tc.raw) {
				t.Fatal("server replied to a hostile frame")
			}
			if tc.auth {
				if srv.m.AuthFailures.Load() != authBefore+1 {
					t.Error("auth failure not counted")
				}
			} else if srv.m.ProtocolErrors.Load() != protoBefore+1 {
				t.Error("protocol error not counted")
			}
			// The drop is counted when the connection goroutine exits;
			// poll briefly.
			deadline := time.Now().Add(2 * time.Second)
			for srv.m.ConnsDropped.Load() != droppedBefore+1 && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
			if srv.m.ConnsDropped.Load() != droppedBefore+1 {
				t.Error("dropped connection not counted")
			}
		})
	}
	if got := srv.Station().Handled(); got != 0 {
		t.Errorf("station handled %d alerts from hostile frames, want 0", got)
	}
}

func TestServerIdleTimeoutDropsConnection(t *testing.T) {
	master := testMaster()
	srv, addr := startServer(t, ServerConfig{
		Revoke:      revoke.Config{ReportCap: 10, AlertThreshold: 2},
		Master:      master,
		IdleTimeout: 50 * time.Millisecond,
	})

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Say nothing; the server must hang up on its own.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("server sent data on an idle connection")
	}
	deadline := time.Now().Add(2 * time.Second)
	for srv.m.ConnsDropped.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if srv.m.ConnsDropped.Load() != 1 {
		t.Error("idle drop not counted")
	}
}

func TestServerSurvivesMidFrameDisconnect(t *testing.T) {
	master := testMaster()
	node := ident.NodeID(3)
	srv, addr := startServer(t, ServerConfig{
		Revoke: revoke.Config{ReportCap: 10, AlertThreshold: 2},
		Master: master,
	})

	frame := mustEncode(t, node, ident.BaseStation, 1, packet.AlertUplink{Target: 9}, master.BaseStationKey(node))
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(frame[:packet.HeaderSize+1]); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	deadline := time.Now().Add(2 * time.Second)
	for srv.m.ConnsDropped.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if srv.m.ConnsDropped.Load() != 1 {
		t.Error("mid-frame disconnect not counted as a drop")
	}
	// The server must still serve new clients afterwards.
	c := newTestClient(t, addr, node, master)
	out, err := c.SendAlert(context.Background(), 9)
	if err != nil {
		t.Fatalf("alert after hostile disconnect: %v", err)
	}
	if out != revoke.OutcomeAccepted {
		t.Errorf("outcome = %v, want accepted", out)
	}
}
