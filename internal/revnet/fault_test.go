package revnet

// Fault-injection suite for the client's retry/backoff path: injected
// dial failures, connection resets, unresponsive servers (per-attempt
// timeout), and truncated replies (the receive side of a short write)
// must all walk the bounded-retry path and surface *ExhaustedError once
// attempts run out, with the retry accounting visible in Metrics.

import (
	"context"
	"errors"
	"io"
	"net"
	"os"
	"sync/atomic"
	"testing"
	"time"

	"beaconsec/internal/crypto"
	"beaconsec/internal/ident"
	"beaconsec/internal/packet"
	"beaconsec/internal/revoke"
)

// faultyClientConfig is a client config with fast, jitter-free retries
// for tests.
func faultyClientConfig(addr string, self ident.NodeID, master *crypto.Master, attempts int) ClientConfig {
	return ClientConfig{
		Addr:           addr,
		Self:           self,
		Key:            master.BaseStationKey(self),
		AttemptTimeout: 100 * time.Millisecond,
		MaxAttempts:    attempts,
		BackoffBase:    time.Millisecond,
		BackoffMax:     4 * time.Millisecond,
		Jitter:         func() float64 { return 1 }, // deterministic: full backoff, no randomness
	}
}

// fakeServer accepts loopback connections and hands each to handler on
// its own goroutine.
func fakeServer(t *testing.T, handler func(net.Conn)) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			go handler(conn)
		}
	}()
	t.Cleanup(func() { lis.Close() })
	return lis.Addr().String()
}

func assertExhausted(t *testing.T, err error, wantAttempts int) *ExhaustedError {
	t.Helper()
	if err == nil {
		t.Fatal("request succeeded, want exhaustion")
	}
	var ex *ExhaustedError
	if !errors.As(err, &ex) {
		t.Fatalf("error %v (%T), want *ExhaustedError", err, err)
	}
	if ex.Attempts != wantAttempts {
		t.Errorf("ExhaustedError.Attempts = %d, want %d", ex.Attempts, wantAttempts)
	}
	if ex.Last == nil {
		t.Error("ExhaustedError.Last is nil")
	}
	return ex
}

// assertRetryMetrics checks the attempt/retry/exhaustion counters after
// one fully failed request.
func assertRetryMetrics(t *testing.T, c *Client, attempts int) {
	t.Helper()
	snap := c.Metrics().Snapshot()
	if snap.Attempts != uint64(attempts) {
		t.Errorf("metrics attempts = %d, want %d", snap.Attempts, attempts)
	}
	if snap.Retries != uint64(attempts-1) {
		t.Errorf("metrics retries = %d, want %d", snap.Retries, attempts-1)
	}
	if snap.Exhausted != 1 {
		t.Errorf("metrics exhausted = %d, want 1", snap.Exhausted)
	}
}

func TestClientDialFailureExhausts(t *testing.T) {
	const attempts = 3
	cfg := faultyClientConfig("127.0.0.1:1", 5, testMaster(), attempts)
	var dials atomic.Int64
	dialErr := errors.New("injected dial failure")
	cfg.Dial = func(ctx context.Context, network, addr string) (net.Conn, error) {
		dials.Add(1)
		return nil, dialErr
	}
	c, err := NewClient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	_, err = c.SendAlert(context.Background(), 50)
	ex := assertExhausted(t, err, attempts)
	if !errors.Is(ex, dialErr) {
		t.Errorf("exhaustion does not wrap the dial error: %v", ex)
	}
	if got := dials.Load(); got != attempts {
		t.Errorf("dialed %d times, want %d", got, attempts)
	}
	assertRetryMetrics(t, c, attempts)
}

func TestClientConnectionResetExhausts(t *testing.T) {
	const attempts = 4
	// The server resets every connection as soon as it opens: each
	// attempt dials successfully, then fails on write or reply read.
	addr := fakeServer(t, func(conn net.Conn) {
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.SetLinger(0) // RST, not FIN: a genuine reset
		}
		conn.Close()
	})
	c, err := NewClient(faultyClientConfig(addr, 5, testMaster(), attempts))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	_, err = c.SendAlert(context.Background(), 50)
	assertExhausted(t, err, attempts)
	assertRetryMetrics(t, c, attempts)
}

func TestClientPerAttemptTimeoutExhausts(t *testing.T) {
	const attempts = 2
	// The server accepts and reads but never replies: each attempt must
	// end at its own deadline, not hang.
	addr := fakeServer(t, func(conn net.Conn) {
		defer conn.Close()
		io.Copy(io.Discard, conn)
	})
	c, err := NewClient(faultyClientConfig(addr, 5, testMaster(), attempts))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	start := time.Now()
	_, err = c.SendAlert(context.Background(), 50)
	elapsed := time.Since(start)
	ex := assertExhausted(t, err, attempts)
	if !errors.Is(ex, os.ErrDeadlineExceeded) {
		t.Errorf("exhaustion does not wrap the deadline error: %v", ex)
	}
	// Two attempts at 100ms each plus ~ms backoffs; generous upper bound
	// against slow CI.
	if elapsed < 200*time.Millisecond || elapsed > 5*time.Second {
		t.Errorf("exhaustion took %v, want ≈2 × 100ms attempt timeouts", elapsed)
	}
	assertRetryMetrics(t, c, attempts)
}

func TestClientTruncatedReplyExhausts(t *testing.T) {
	const attempts = 3
	master := testMaster()
	self := ident.NodeID(5)
	key := master.BaseStationKey(self)
	// The server reads the request and short-writes the reply: a valid
	// frame cut mid-body, then close.
	addr := fakeServer(t, func(conn net.Conn) {
		defer conn.Close()
		buf := make([]byte, packet.MaxSize)
		n, err := conn.Read(buf)
		if err != nil {
			return
		}
		hdr, err := packet.PeekHeader(buf[:n])
		if err != nil {
			return
		}
		reply, err := packet.Encode(ident.BaseStation, self, hdr.Seq,
			packet.RevocationStatus{Target: 50, Outcome: uint8(revoke.OutcomeAccepted)}, key)
		if err != nil {
			return
		}
		conn.Write(reply[:len(reply)/2])
	})
	c, err := NewClient(faultyClientConfig(addr, self, master, attempts))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	_, err = c.SendAlert(context.Background(), 50)
	ex := assertExhausted(t, err, attempts)
	if !errors.Is(ex, io.ErrUnexpectedEOF) {
		t.Errorf("exhaustion does not wrap the truncation error: %v", ex)
	}
	assertRetryMetrics(t, c, attempts)
}

func TestClientRecoversAfterTransientDialFailures(t *testing.T) {
	master := testMaster()
	_, addr := startServer(t, ServerConfig{
		Revoke: revoke.Config{ReportCap: 10, AlertThreshold: 0},
		Master: master,
	})
	cfg := faultyClientConfig(addr, 5, master, 4)
	var dials atomic.Int64
	var d net.Dialer
	cfg.Dial = func(ctx context.Context, network, a string) (net.Conn, error) {
		if dials.Add(1) <= 2 {
			return nil, errors.New("injected transient failure")
		}
		return d.DialContext(ctx, network, a)
	}
	c, err := NewClient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	out, err := c.SendAlert(context.Background(), 50)
	if err != nil {
		t.Fatalf("alert failed despite retry budget: %v", err)
	}
	if out != revoke.OutcomeRevoked {
		t.Errorf("outcome = %v, want revoked (τ′=0)", out)
	}
	snap := c.Metrics().Snapshot()
	if snap.Attempts != 3 || snap.Retries != 2 || snap.Exhausted != 0 {
		t.Errorf("metrics = %d attempts / %d retries / %d exhausted, want 3/2/0",
			snap.Attempts, snap.Retries, snap.Exhausted)
	}
}

func TestClientContextCancelDuringBackoff(t *testing.T) {
	cfg := faultyClientConfig("127.0.0.1:1", 5, testMaster(), 10)
	cfg.BackoffBase = 10 * time.Second // park the retry loop in backoff
	cfg.BackoffMax = 10 * time.Second
	cfg.Dial = func(ctx context.Context, network, addr string) (net.Conn, error) {
		return nil, errors.New("injected dial failure")
	}
	c, err := NewClient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = c.SendAlert(ctx, 50)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	var ex *ExhaustedError
	if errors.As(err, &ex) {
		t.Error("cancellation misreported as retry exhaustion")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation took %v, want prompt return from backoff", elapsed)
	}
}

func TestClientContextDeadlineBoundsRequest(t *testing.T) {
	// An unresponsive server plus a context deadline shorter than the
	// attempt timeout: the context governs.
	addr := fakeServer(t, func(conn net.Conn) {
		defer conn.Close()
		io.Copy(io.Discard, conn)
	})
	cfg := faultyClientConfig(addr, 5, testMaster(), 10)
	cfg.AttemptTimeout = 10 * time.Second
	c, err := NewClient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = c.Query(ctx, 50)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("deadline honored after %v, want ≈50ms", elapsed)
	}
}

func TestClientUseAfterCloseFails(t *testing.T) {
	master := testMaster()
	_, addr := startServer(t, ServerConfig{
		Revoke: revoke.Config{ReportCap: 10, AlertThreshold: 1},
		Master: master,
	})
	c, err := NewClient(faultyClientConfig(addr, 5, master, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.SendAlert(context.Background(), 50); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SendAlert(context.Background(), 51); err == nil {
		t.Fatal("alert on closed client succeeded")
	}
}

func TestClientConfigValidation(t *testing.T) {
	master := testMaster()
	if _, err := NewClient(ClientConfig{Self: 5, Key: master.BaseStationKey(5)}); err == nil {
		t.Error("empty addr accepted")
	}
	for _, self := range []ident.NodeID{ident.BaseStation, ident.Broadcast, ident.Nobody} {
		if _, err := NewClient(ClientConfig{Addr: "x:1", Self: self}); err == nil {
			t.Errorf("identity %v accepted", self)
		}
	}
}
