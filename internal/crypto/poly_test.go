package crypto

import (
	"testing"
	"testing/quick"

	"beaconsec/internal/ident"
	"beaconsec/internal/rng"
)

func TestPolyPairwiseSymmetry(t *testing.T) {
	pool := NewPolyPool(16, rng.New(1))
	f := func(a, b uint16) bool {
		u, v := ident.NodeID(a), ident.NodeID(b)
		su := pool.Share(u)
		sv := pool.Share(v)
		return su.PairwiseKey(v) == sv.PairwiseKey(u)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPolyPairwiseDistinct(t *testing.T) {
	pool := NewPolyPool(8, rng.New(2))
	seen := make(map[Key][2]ident.NodeID)
	for a := ident.NodeID(1); a <= 30; a++ {
		sa := pool.Share(a)
		for b := a + 1; b <= 30; b++ {
			k := sa.PairwiseKey(b)
			if prev, dup := seen[k]; dup {
				t.Fatalf("key collision: (%v,%v) and (%v,%v)", a, b, prev[0], prev[1])
			}
			seen[k] = [2]ident.NodeID{a, b}
		}
	}
}

func TestPolyPoolsIndependent(t *testing.T) {
	p1 := NewPolyPool(8, rng.New(3))
	p2 := NewPolyPool(8, rng.New(4))
	if p1.Share(1).PairwiseKey(2) == p2.Share(1).PairwiseKey(2) {
		t.Error("different pools produced the same pairwise key")
	}
}

func TestPolyShareMetadata(t *testing.T) {
	pool := NewPolyPool(5, rng.New(5))
	if pool.Degree() != 5 {
		t.Errorf("Degree = %d", pool.Degree())
	}
	if got := pool.Share(7).ID(); got != 7 {
		t.Errorf("share ID = %v", got)
	}
}

func TestPolyDegreePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("degree 0 did not panic")
		}
	}()
	NewPolyPool(0, rng.New(1))
}

func TestMulmodAgainstBigIntuition(t *testing.T) {
	// Sanity against straightforward cases where no reduction is needed.
	tests := []struct{ a, b, want uint64 }{
		{0, 12345, 0},
		{1, polyPrime - 1, polyPrime - 1},
		{2, 1 << 60, (1 << 61) % polyPrime}, // 2^61 ≡ 1
		{polyPrime, 7, 0},                   // p ≡ 0
	}
	for _, tt := range tests {
		if got := mulmod(tt.a, tt.b); got != tt.want {
			t.Errorf("mulmod(%d, %d) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestMulmodCommutativeAssociative(t *testing.T) {
	src := rng.New(6)
	for i := 0; i < 5000; i++ {
		a := src.Uint64() % polyPrime
		b := src.Uint64() % polyPrime
		c := src.Uint64() % polyPrime
		if mulmod(a, b) != mulmod(b, a) {
			t.Fatalf("mulmod not commutative for %d, %d", a, b)
		}
		if mulmod(mulmod(a, b), c) != mulmod(a, mulmod(b, c)) {
			t.Fatalf("mulmod not associative for %d, %d, %d", a, b, c)
		}
	}
}

func TestMulmodDistributes(t *testing.T) {
	src := rng.New(7)
	for i := 0; i < 5000; i++ {
		a := src.Uint64() % polyPrime
		b := src.Uint64() % polyPrime
		c := src.Uint64() % polyPrime
		left := mulmod(a, addmod(b, c))
		right := addmod(mulmod(a, b), mulmod(a, c))
		if left != right {
			t.Fatalf("distributivity fails for %d, %d, %d: %d != %d", a, b, c, left, right)
		}
	}
}

func TestMul64(t *testing.T) {
	tests := []struct {
		a, b   uint64
		hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{1 << 32, 1 << 32, 1, 0},
		{^uint64(0), ^uint64(0), ^uint64(0) - 1, 1},
		{^uint64(0), 2, 1, ^uint64(0) - 1},
	}
	for _, tt := range tests {
		hi, lo := mul64(tt.a, tt.b)
		if hi != tt.hi || lo != tt.lo {
			t.Errorf("mul64(%d, %d) = (%d, %d), want (%d, %d)", tt.a, tt.b, hi, lo, tt.hi, tt.lo)
		}
	}
}

func BenchmarkPolyShare(b *testing.B) {
	pool := NewPolyPool(32, rng.New(1))
	for i := 0; i < b.N; i++ {
		pool.Share(ident.NodeID(i))
	}
}

func BenchmarkPolyPairwiseKey(b *testing.B) {
	pool := NewPolyPool(32, rng.New(1))
	share := pool.Share(1)
	for i := 0; i < b.N; i++ {
		share.PairwiseKey(ident.NodeID(i))
	}
}
