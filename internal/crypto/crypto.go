// Package crypto implements the key-management substrate the paper assumes:
// "two communicating nodes share a unique pairwise key", discharged by
// implementing the cited mechanisms — the Eschenauer–Gligor random key-pool
// predistribution scheme (pool.go), the Chan–Perrig–Song q-composite
// variant, and a KDF-based master-key pairwise scheme — plus packet
// authentication with truncated HMAC-SHA256 tags (TinySec-style).
//
// The simulation's protocol stack uses the master-key pairwise scheme by
// default (every node pair shares a unique key, exactly the paper's
// assumption); the predistribution schemes are provided as validated
// substrates with their own connectivity analysis.
package crypto

import (
	"crypto/sha256"
	"crypto/subtle"
	"encoding"
	"encoding/binary"
	"hash"
	"sync"

	"beaconsec/internal/ident"
)

// KeySize is the size of symmetric keys, in bytes.
const KeySize = 32

// TagSize is the size of packet authentication tags. Truncated to 8 bytes
// following TinySec/µTESLA practice for mote-class packets; forgery
// probability 2^-64 per attempt is far below the replay/detection rates
// the paper analyzes.
const TagSize = 8

// Key is a symmetric key.
type Key [KeySize]byte

// Tag is a packet authentication tag.
type Tag [TagSize]byte

// HMAC-SHA256 fast path. crypto/hmac allocates two fresh digests per
// New, which made every packet sign and every receiver-side verify heap
// traffic on the simulator's hottest path. The implementation below is
// the textbook HMAC construction (key ≤ block size, which KeySize
// guarantees) over reusable sha256 states, with a per-state cache of
// marshaled pad midstates so repeated keys skip the two pad block
// compressions too. Steady-state Sign/Verify/KDF do zero heap
// allocations. Outputs are bit-identical to crypto/hmac (pinned by
// test), so nothing downstream — golden figures, regression bands —
// moves.

const (
	// hmacBlockSize is sha256's block size; KeySize (32) must stay ≤ it
	// or the pad construction below would need the key-hashing step.
	hmacBlockSize = 64
	// macCacheMax bounds each pooled state's key-midstate cache; on
	// overflow the whole cache is dropped (keys cluster in time, so the
	// refill cost amortizes away).
	macCacheMax = 8192
)

// Compile-time guard for the no-key-hashing assumption.
var _ [hmacBlockSize - KeySize]struct{}

// macEntry is the sha256 state pair for one key after absorbing the
// inner (0x36) and outer (0x5c) pads.
type macEntry struct {
	inner, outer []byte
}

// macState is one reusable HMAC computation context. States live in a
// sync.Pool: the simulation itself is single-threaded, but experiment
// harnesses run many simulations concurrently through these package
// functions.
type macState struct {
	inner, outer   hash.Hash
	innerM, outerM encoding.BinaryMarshaler
	innerU, outerU encoding.BinaryUnmarshaler
	cache          map[Key]*macEntry
	isum, osum     [sha256.Size]byte
	// lenBuf is KDF's length-prefix scratch. It lives here rather than
	// on KDF's stack because writing a stack array through the
	// hash.Hash interface would force it to escape (one heap
	// allocation per call).
	lenBuf [4]byte
}

var statePool = sync.Pool{New: func() any {
	s := &macState{
		inner: sha256.New(),
		outer: sha256.New(),
		cache: make(map[Key]*macEntry, 64),
	}
	s.innerM = s.inner.(encoding.BinaryMarshaler)
	s.outerM = s.outer.(encoding.BinaryMarshaler)
	s.innerU = s.inner.(encoding.BinaryUnmarshaler)
	s.outerU = s.outer.(encoding.BinaryUnmarshaler)
	return s
}}

func (s *macState) entry(k Key) *macEntry {
	if e, ok := s.cache[k]; ok {
		return e
	}
	var pad [hmacBlockSize]byte
	for i := range pad {
		var b byte
		if i < KeySize {
			b = k[i]
		}
		pad[i] = b ^ 0x36
	}
	s.inner.Reset()
	s.inner.Write(pad[:])
	innerState, err := s.innerM.MarshalBinary()
	if err != nil {
		panic("crypto: sha256 state marshal: " + err.Error())
	}
	for i := range pad {
		pad[i] ^= 0x36 ^ 0x5c
	}
	s.outer.Reset()
	s.outer.Write(pad[:])
	outerState, err := s.outerM.MarshalBinary()
	if err != nil {
		panic("crypto: sha256 state marshal: " + err.Error())
	}
	if len(s.cache) >= macCacheMax {
		clear(s.cache)
	}
	e := &macEntry{inner: innerState, outer: outerState}
	s.cache[k] = e
	return e
}

// begin restores the inner digest to "pads absorbed" for k; the caller
// then Writes the message into s.inner and calls finish.
func (s *macState) begin(k Key) *macEntry {
	e := s.entry(k)
	if err := s.innerU.UnmarshalBinary(e.inner); err != nil {
		panic("crypto: sha256 state unmarshal: " + err.Error())
	}
	return e
}

// finish completes the outer hash and returns the 32-byte MAC, valid
// until the state's next use.
func (s *macState) finish(e *macEntry) []byte {
	isum := s.inner.Sum(s.isum[:0])
	if err := s.outerU.UnmarshalBinary(e.outer); err != nil {
		panic("crypto: sha256 state unmarshal: " + err.Error())
	}
	s.outer.Write(isum)
	return s.outer.Sum(s.osum[:0])
}

// KDF derives a subkey from k bound to the given context labels.
func KDF(k Key, context ...[]byte) Key {
	s := statePool.Get().(*macState)
	e := s.begin(k)
	for _, c := range context {
		// Length-prefix each context element so concatenation is
		// unambiguous (("ab","c") must not collide with ("a","bc")).
		binary.BigEndian.PutUint32(s.lenBuf[:], uint32(len(c)))
		s.inner.Write(s.lenBuf[:])
		s.inner.Write(c)
	}
	var out Key
	copy(out[:], s.finish(e))
	statePool.Put(s)
	return out
}

// Sign computes the authentication tag of msg under k.
func Sign(k Key, msg []byte) Tag {
	s := statePool.Get().(*macState)
	e := s.begin(k)
	s.inner.Write(msg)
	var t Tag
	copy(t[:], s.finish(e))
	statePool.Put(s)
	return t
}

// Verify reports whether tag authenticates msg under k, in constant time.
func Verify(k Key, msg []byte, tag Tag) bool {
	want := Sign(k, msg)
	return subtle.ConstantTimeCompare(want[:], tag[:]) == 1
}

// Master is a network master secret from which the master-key pairwise
// scheme derives all pairwise and base-station keys. In a real deployment
// the master is destroyed after predistribution; here it stands in for the
// predistribution ceremony.
type Master struct {
	secret Key
}

// NewMaster creates a master secret from seed material.
func NewMaster(seed []byte) *Master {
	return &Master{secret: KDF(Key{}, []byte("beaconsec/master"), seed)}
}

// Pairwise returns the unique key shared by nodes a and b. It is
// symmetric: Pairwise(a,b) == Pairwise(b,a).
func (m *Master) Pairwise(a, b ident.NodeID) Key {
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	var buf [4]byte
	binary.BigEndian.PutUint16(buf[0:], uint16(lo))
	binary.BigEndian.PutUint16(buf[2:], uint16(hi))
	return KDF(m.secret, []byte("pairwise"), buf[:])
}

// BroadcastKey returns the network-wide key used only for unauthenticated-
// in-spirit discovery broadcasts (hello packets). It provides integrity
// against bit errors, not authenticity: every provisioned node holds it,
// so a compromised node can forge hellos. Nothing security-relevant rides
// on hellos — a forged hello only creates a neighbor-table entry whose
// subsequent unicast exchanges are authenticated pairwise.
func (m *Master) BroadcastKey() Key {
	return KDF(m.secret, []byte("broadcast"))
}

// BaseStationKey returns the unique key node id shares with the base
// station (paper §3.1: "each beacon node shares a unique random key with
// the base station").
func (m *Master) BaseStationKey(id ident.NodeID) Key {
	var buf [2]byte
	binary.BigEndian.PutUint16(buf[:], uint16(id))
	return KDF(m.secret, []byte("base-station"), buf[:])
}

// Store holds the keying material provisioned to one physical node: the
// pairwise keys for each of its identities (its real ID plus any detecting
// pseudonyms) and its base-station key.
//
// The zero value is unusable; construct with NewStore. Store derives
// pairwise keys lazily from the master reference — equivalent, in the
// simulation, to having predistributed them.
type Store struct {
	master *Master
	ids    []ident.NodeID
	bsKeys map[ident.NodeID]Key
}

// NewStore provisions a node that owns the given identities (first ID is
// the node's real identity).
func NewStore(master *Master, ids ...ident.NodeID) *Store {
	s := &Store{
		master: master,
		ids:    append([]ident.NodeID(nil), ids...),
		bsKeys: make(map[ident.NodeID]Key, len(ids)),
	}
	for _, id := range ids {
		s.bsKeys[id] = master.BaseStationKey(id)
	}
	return s
}

// Owns reports whether this node holds keying material for identity id.
func (s *Store) Owns(id ident.NodeID) bool {
	for _, own := range s.ids {
		if own == id {
			return true
		}
	}
	return false
}

// Identities returns a copy of the identities this store holds material
// for.
func (s *Store) Identities() []ident.NodeID {
	return append([]ident.NodeID(nil), s.ids...)
}

// PairwiseKey returns the key shared between local identity self and peer.
// It panics if the store does not own self: using an identity without its
// keying material is always a programming error in the protocol stack.
func (s *Store) PairwiseKey(self, peer ident.NodeID) Key {
	if !s.Owns(self) {
		panic("crypto: store does not own identity " + self.String())
	}
	return s.master.Pairwise(self, peer)
}

// BroadcastKey returns the network-wide discovery key.
func (s *Store) BroadcastKey() Key {
	return s.master.BroadcastKey()
}

// BaseStationKey returns the key identity self shares with the base
// station.
func (s *Store) BaseStationKey(self ident.NodeID) Key {
	k, ok := s.bsKeys[self]
	if !ok {
		panic("crypto: store does not own identity " + self.String())
	}
	return k
}
