package crypto

import (
	"encoding/binary"
	"fmt"

	"beaconsec/internal/ident"
	"beaconsec/internal/rng"
)

// PolyPool implements polynomial-based key predistribution (Blundo et
// al., as used by the paper's citation [7], Liu & Ning's "Establishing
// pairwise keys in distributed sensor networks"): a trusted setup draws a
// random symmetric bivariate polynomial
//
//	f(x, y) = Σ a_ij x^i y^j  over GF(p),  a_ij = a_ji
//
// and provisions node u with the univariate share f(u, ·). Any two nodes
// then compute the same pairwise key f(u, v) = f(v, u) with no further
// communication, and the scheme is unconditionally secure against
// coalitions of at most Degree compromised nodes.
type PolyPool struct {
	degree int
	// coeff[i][j] with i <= j stores a_ij; symmetry supplies the rest.
	coeff [][]uint64
}

// polyPrime is a 61-bit Mersenne prime (2^61 - 1): field arithmetic fits
// comfortably in uint64 with 128-bit intermediate products.
const polyPrime = (1 << 61) - 1

// NewPolyPool draws a random symmetric bivariate polynomial of the given
// degree (the collusion-resistance threshold t).
func NewPolyPool(degree int, src *rng.Source) *PolyPool {
	if degree < 1 {
		panic(fmt.Sprintf("crypto: polynomial degree %d must be >= 1", degree))
	}
	p := &PolyPool{degree: degree, coeff: make([][]uint64, degree+1)}
	for i := 0; i <= degree; i++ {
		p.coeff[i] = make([]uint64, degree+1)
	}
	for i := 0; i <= degree; i++ {
		for j := i; j <= degree; j++ {
			v := src.Uint64() % polyPrime
			p.coeff[i][j] = v
			p.coeff[j][i] = v
		}
	}
	return p
}

// Degree returns the collusion-resistance threshold.
func (p *PolyPool) Degree() int { return p.degree }

func mulmod(a, b uint64) uint64 {
	hi, lo := mul64(a, b)
	// Reduction mod 2^61 - 1: x = hi·2^64 + lo ≡ hi·8 + lo (mod p) after
	// folding 2^64 = 2^3·2^61 ≡ 8.
	r := (lo & polyPrime) + (lo >> 61) + (hi << 3 & polyPrime) + (hi >> 58)
	for r >= polyPrime {
		r -= polyPrime
	}
	return r
}

// mul64 returns the 128-bit product of a and b.
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xFFFFFFFF
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo * bLo
	lo = t & mask
	c := t >> 32
	t = aHi*bLo + c
	c = t >> 32
	mid := t & mask
	t = aLo*bHi + mid
	lo |= (t & mask) << 32
	hi = aHi*bHi + c + (t >> 32)
	return hi, lo
}

func addmod(a, b uint64) uint64 {
	s := a + b
	if s >= polyPrime || s < a {
		s -= polyPrime
	}
	return s
}

// PolyShare is node u's univariate share g(y) = f(u, y): Degree+1
// coefficients.
type PolyShare struct {
	id    ident.NodeID
	coeff []uint64
}

// Share provisions node u's polynomial share.
func (p *PolyPool) Share(u ident.NodeID) PolyShare {
	x := uint64(u) + 1 // avoid evaluating at 0, where f(0,y) leaks a row
	powers := make([]uint64, p.degree+1)
	powers[0] = 1
	for i := 1; i <= p.degree; i++ {
		powers[i] = mulmod(powers[i-1], x)
	}
	share := PolyShare{id: u, coeff: make([]uint64, p.degree+1)}
	for j := 0; j <= p.degree; j++ {
		var acc uint64
		for i := 0; i <= p.degree; i++ {
			acc = addmod(acc, mulmod(p.coeff[i][j], powers[i]))
		}
		share.coeff[j] = acc
	}
	return share
}

// ID returns the share owner's identity.
func (s PolyShare) ID() ident.NodeID { return s.id }

// PairwiseKey evaluates the share at peer and expands the field element
// into a symmetric key. PairwiseKey is symmetric across the two shares of
// one pool: shareU.PairwiseKey(v) == shareV.PairwiseKey(u).
func (s PolyShare) PairwiseKey(peer ident.NodeID) Key {
	y := uint64(peer) + 1
	// Horner evaluation of g at y.
	var acc uint64
	for j := len(s.coeff) - 1; j >= 0; j-- {
		acc = addmod(mulmod(acc, y), s.coeff[j])
	}
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], acc)
	return KDF(Key{}, []byte("poly-pairwise"), buf[:])
}
