package crypto

import (
	"math"
	"testing"

	"beaconsec/internal/rng"
)

func TestNewPoolDistinctKeys(t *testing.T) {
	p := NewPool(100, rng.New(1))
	if p.Size() != 100 {
		t.Fatalf("Size = %d", p.Size())
	}
	seen := make(map[Key]bool, 100)
	for _, k := range p.keys {
		if seen[k] {
			t.Fatal("pool contains duplicate keys")
		}
		seen[k] = true
	}
}

func TestNewPoolInvalidSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewPool(0) did not panic")
		}
	}()
	NewPool(0, rng.New(1))
}

func TestDrawRingSortedDistinct(t *testing.T) {
	p := NewPool(1000, rng.New(2))
	src := rng.New(3)
	for trial := 0; trial < 20; trial++ {
		r := p.DrawRing(50, src)
		if r.Size() != 50 {
			t.Fatalf("ring size %d", r.Size())
		}
		idx := r.Indices()
		for i := 1; i < len(idx); i++ {
			if idx[i] <= idx[i-1] {
				t.Fatalf("ring indices not sorted-distinct: %v", idx)
			}
		}
		for _, i := range idx {
			if i < 0 || i >= p.Size() {
				t.Fatalf("ring index %d out of pool range", i)
			}
		}
	}
}

func TestDrawRingOutOfRangePanics(t *testing.T) {
	p := NewPool(10, rng.New(1))
	for _, size := range []int{0, 11} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("DrawRing(%d) did not panic", size)
				}
			}()
			p.DrawRing(size, rng.New(1))
		}()
	}
}

func TestSharedIndices(t *testing.T) {
	a := Ring{indices: []int{1, 3, 5, 9}}
	b := Ring{indices: []int{2, 3, 9, 10}}
	got := SharedIndices(a, b)
	if len(got) != 2 || got[0] != 3 || got[1] != 9 {
		t.Errorf("SharedIndices = %v, want [3 9]", got)
	}
	if got := SharedIndices(a, Ring{indices: []int{0, 2}}); len(got) != 0 {
		t.Errorf("disjoint rings shared %v", got)
	}
}

func TestLinkKeyAgreement(t *testing.T) {
	p := NewPool(200, rng.New(4))
	src := rng.New(5)
	agreed := 0
	for trial := 0; trial < 50; trial++ {
		a := p.DrawRing(30, src)
		b := p.DrawRing(30, src)
		ka, oka := LinkKey(a, b)
		kb, okb := LinkKey(b, a)
		if oka != okb {
			t.Fatal("link key establishment asymmetric")
		}
		if oka {
			agreed++
			if ka != kb {
				t.Fatal("link keys disagree")
			}
			if ka == (Key{}) {
				t.Fatal("link key is zero")
			}
		}
	}
	// Rings of 30 from a pool of 200 share a key with probability ~0.99+.
	if agreed < 40 {
		t.Errorf("only %d/50 ring pairs agreed on a key", agreed)
	}
}

func TestLinkKeyNoShare(t *testing.T) {
	a := Ring{indices: []int{1}, keys: make([]Key, 1)}
	b := Ring{indices: []int{2}, keys: make([]Key, 1)}
	if _, ok := LinkKey(a, b); ok {
		t.Error("LinkKey succeeded with disjoint rings")
	}
}

func TestQCompositeRequiresQ(t *testing.T) {
	p := NewPool(50, rng.New(6))
	src := rng.New(7)
	a := p.DrawRing(20, src)
	b := p.DrawRing(20, src)
	shared := SharedIndices(a, b)
	if len(shared) == 0 {
		t.Skip("rings happened to be disjoint")
	}
	if _, ok := QCompositeLinkKey(a, b, len(shared)); !ok {
		t.Error("q = |shared| rejected")
	}
	if _, ok := QCompositeLinkKey(a, b, len(shared)+1); ok {
		t.Error("q = |shared|+1 accepted")
	}
	ka, _ := QCompositeLinkKey(a, b, 1)
	kb, _ := QCompositeLinkKey(b, a, 1)
	if ka != kb {
		t.Error("q-composite keys disagree")
	}
}

func TestQCompositeStrongerThanEG(t *testing.T) {
	p := NewPool(50, rng.New(8))
	src := rng.New(9)
	a := p.DrawRing(20, src)
	b := p.DrawRing(20, src)
	shared := SharedIndices(a, b)
	if len(shared) < 2 {
		t.Skip("need >= 2 shared keys for this comparison")
	}
	eg, _ := LinkKey(a, b)
	qc, _ := QCompositeLinkKey(a, b, 2)
	if eg == qc {
		t.Error("q-composite key equals single-key EG key; compromise of one pool key would break both")
	}
}

func TestQCompositeInvalidQPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("q=0 did not panic")
		}
	}()
	QCompositeLinkKey(Ring{}, Ring{}, 0)
}

func TestConnectivityProbabilityAnalytic(t *testing.T) {
	tests := []struct {
		pool, ring int
		want       float64
		tol        float64
	}{
		{1, 1, 1, 0},               // ring exhausts pool
		{100, 60, 1, 0},            // 2k > P forces overlap
		{10000, 100, 0.6383, 0.01}, // classic EG figure: P=10000, k=100 -> ~0.63
	}
	for _, tt := range tests {
		got := ConnectivityProbability(tt.pool, tt.ring)
		if math.Abs(got-tt.want) > tt.tol {
			t.Errorf("ConnectivityProbability(%d,%d) = %v, want %v±%v",
				tt.pool, tt.ring, got, tt.want, tt.tol)
		}
	}
	if got := ConnectivityProbability(0, 5); got != 0 {
		t.Errorf("zero pool: %v", got)
	}
	if got := ConnectivityProbability(100, 0); got != 0 {
		t.Errorf("zero ring: %v", got)
	}
}

func TestConnectivityProbabilityMatchesSimulation(t *testing.T) {
	const poolSize, ringSize, trials = 500, 30, 2000
	p := NewPool(poolSize, rng.New(10))
	src := rng.New(11)
	hits := 0
	for i := 0; i < trials; i++ {
		a := p.DrawRing(ringSize, src)
		b := p.DrawRing(ringSize, src)
		if _, ok := LinkKey(a, b); ok {
			hits++
		}
	}
	got := float64(hits) / trials
	want := ConnectivityProbability(poolSize, ringSize)
	if math.Abs(got-want) > 0.03 {
		t.Errorf("simulated connectivity %v vs analytic %v", got, want)
	}
}

func TestConnectivityMonotoneInRingSize(t *testing.T) {
	prev := 0.0
	for k := 1; k <= 100; k += 7 {
		p := ConnectivityProbability(2000, k)
		if p < prev-1e-12 {
			t.Fatalf("connectivity not monotone at k=%d: %v < %v", k, p, prev)
		}
		if p < 0 || p > 1 {
			t.Fatalf("connectivity out of [0,1] at k=%d: %v", k, p)
		}
		prev = p
	}
}

func BenchmarkDrawRing(b *testing.B) {
	p := NewPool(10000, rng.New(1))
	src := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.DrawRing(100, src)
	}
}

func BenchmarkLinkKey(b *testing.B) {
	p := NewPool(10000, rng.New(1))
	src := rng.New(2)
	r1 := p.DrawRing(100, src)
	r2 := p.DrawRing(100, src)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LinkKey(r1, r2)
	}
}
