package crypto

import (
	"encoding/binary"
	"fmt"

	"beaconsec/internal/rng"
	"beaconsec/internal/sim"
)

// This file implements µTESLA (Perrig et al., SPINS), the broadcast
// authentication scheme the paper cites for base-station-to-network
// messages — the mechanism behind "we assume that the base station has
// mechanisms to revoke malicious beacon nodes": a revocation broadcast
// must be authenticated to every sensor without per-receiver signatures.
//
// The base station owns a one-way hash chain K_n -> K_{n-1} -> ... -> K_0
// (K_{i-1} = H(K_i)) and divides time into intervals; messages in
// interval i are MACed with K_i, which is disclosed only d intervals
// later. Receivers hold the chain anchor K_0 and verify disclosed keys by
// hashing back to the newest authenticated chain element.

// ChainLink applies the µTESLA one-way function.
func ChainLink(k Key) Key { return KDF(k, []byte("mutesla-chain")) }

// TeslaChain is the base station's key chain plus its disclosure
// schedule.
type TeslaChain struct {
	keys     []Key // keys[i] is K_i; keys[0] is the anchor
	interval sim.Time
	delay    int // disclosure lag d, in intervals
	start    sim.Time
}

// NewTeslaChain generates a chain of n keys with the given interval
// duration and disclosure delay, anchored at time start.
func NewTeslaChain(n int, interval sim.Time, delay int, start sim.Time, src *rng.Source) *TeslaChain {
	if n < 2 {
		panic(fmt.Sprintf("crypto: tesla chain length %d must be >= 2", n))
	}
	if interval == 0 {
		panic("crypto: tesla interval must be positive")
	}
	if delay < 1 {
		panic(fmt.Sprintf("crypto: tesla disclosure delay %d must be >= 1", delay))
	}
	keys := make([]Key, n)
	var seed Key
	for w := 0; w < KeySize/8; w++ {
		binary.BigEndian.PutUint64(seed[w*8:], src.Uint64())
	}
	keys[n-1] = seed
	for i := n - 2; i >= 0; i-- {
		keys[i] = ChainLink(keys[i+1])
	}
	return &TeslaChain{keys: keys, interval: interval, delay: delay, start: start}
}

// Anchor returns K_0, the commitment predistributed to every node.
func (c *TeslaChain) Anchor() Key { return c.keys[0] }

// IntervalAt maps a time to its interval index (0-based); times before
// the chain start map to 0.
func (c *TeslaChain) IntervalAt(t sim.Time) int {
	if t < c.start {
		return 0
	}
	i := int((t - c.start) / c.interval)
	if i >= len(c.keys) {
		i = len(c.keys) - 1
	}
	return i
}

// Sign MACs msg with the current interval's (still undisclosed) key and
// returns the tag plus the interval index the receiver must buffer
// against.
func (c *TeslaChain) Sign(msg []byte, now sim.Time) (Tag, int) {
	i := c.IntervalAt(now)
	return Sign(c.keys[i], msg), i
}

// Disclosable returns the newest key the station may disclose at time
// now (interval index and key); ok is false while nothing beyond the
// anchor is disclosable.
func (c *TeslaChain) Disclosable(now sim.Time) (int, Key, bool) {
	i := c.IntervalAt(now) - c.delay
	if i < 1 {
		return 0, Key{}, false
	}
	return i, c.keys[i], true
}

// TeslaReceiver verifies broadcast messages with delayed key disclosure.
// It buffers (msg, tag, interval) triples and releases them once the
// interval's key arrives and authenticates.
type TeslaReceiver struct {
	anchor   Key // newest authenticated chain key
	anchorIx int
	interval sim.Time
	delay    int
	start    sim.Time

	pending []teslaPending
	// Accepted receives authenticated messages.
	Accepted [][]byte
	// Rejected counts messages whose tag failed under the disclosed key.
	Rejected int
	// Unsafe counts messages discarded by the security condition (they
	// arrived after their key could already have been disclosed, so a
	// forger might have known it).
	Unsafe int
}

type teslaPending struct {
	msg      []byte
	tag      Tag
	interval int
}

// NewTeslaReceiver builds a receiver from the predistributed anchor and
// the chain's public schedule.
func NewTeslaReceiver(anchor Key, interval sim.Time, delay int, start sim.Time) *TeslaReceiver {
	return &TeslaReceiver{anchor: anchor, interval: interval, delay: delay, start: start}
}

func (r *TeslaReceiver) intervalAt(t sim.Time) int {
	if t < r.start {
		return 0
	}
	return int((t - r.start) / r.interval)
}

// Receive buffers a broadcast message heard at time now, tagged for the
// given interval. Messages violating the security condition (the claimed
// interval's key may already be public) are dropped as unsafe.
func (r *TeslaReceiver) Receive(msg []byte, tag Tag, interval int, now sim.Time) {
	if r.intervalAt(now) >= interval+r.delay {
		// Key could already be disclosed: a forger may know it.
		r.Unsafe++
		return
	}
	buf := make([]byte, len(msg))
	copy(buf, msg)
	r.pending = append(r.pending, teslaPending{msg: buf, tag: tag, interval: interval})
}

// Disclose ingests a disclosed key for the given interval: the receiver
// authenticates the key against its chain anchor, then verifies and
// releases buffered messages from that interval.
func (r *TeslaReceiver) Disclose(key Key, interval int) error {
	if interval <= r.anchorIx {
		return fmt.Errorf("crypto: stale tesla key for interval %d (anchor %d)", interval, r.anchorIx)
	}
	// Hash the candidate back to the newest authenticated key.
	k := key
	for i := interval; i > r.anchorIx; i-- {
		k = ChainLink(k)
	}
	if k != r.anchor {
		return fmt.Errorf("crypto: tesla key for interval %d fails chain verification", interval)
	}
	r.anchor = key
	r.anchorIx = interval

	kept := r.pending[:0]
	for _, p := range r.pending {
		if p.interval != interval {
			kept = append(kept, p)
			continue
		}
		if Verify(key, p.msg, p.tag) {
			r.Accepted = append(r.Accepted, p.msg)
		} else {
			r.Rejected++
		}
	}
	r.pending = kept
	return nil
}
