package crypto

import (
	"encoding/binary"
	"fmt"
	"math"

	"beaconsec/internal/rng"
)

// Pool is an Eschenauer–Gligor random key pool: a large set of symmetric
// keys from which each node is predistributed a random ring. Two nodes
// that share at least one pool key can establish a link key; with the
// q-composite variant (Chan, Perrig & Song) they must share at least q.
//
// The paper cites these schemes ([3,6,7]) as the source of its "unique
// pairwise key" assumption; Pool implements them so the assumption is
// discharged rather than hand-waved.
type Pool struct {
	keys []Key
}

// NewPool generates a pool of size keys from the given seed stream.
func NewPool(size int, src *rng.Source) *Pool {
	if size <= 0 {
		panic(fmt.Sprintf("crypto: pool size %d must be positive", size))
	}
	p := &Pool{keys: make([]Key, size)}
	for i := range p.keys {
		for w := 0; w < KeySize/8; w++ {
			binary.BigEndian.PutUint64(p.keys[i][w*8:], src.Uint64())
		}
	}
	return p
}

// Size returns the number of keys in the pool.
func (p *Pool) Size() int { return len(p.keys) }

// Ring is one node's predistributed subset of the pool: sorted key
// indices plus the key material.
type Ring struct {
	indices []int
	keys    []Key
}

// DrawRing samples a ring of ringSize distinct pool keys for one node.
func (p *Pool) DrawRing(ringSize int, src *rng.Source) Ring {
	if ringSize <= 0 || ringSize > len(p.keys) {
		panic(fmt.Sprintf("crypto: ring size %d out of range (pool %d)", ringSize, len(p.keys)))
	}
	// Partial Fisher–Yates over index space: O(pool) memory is fine at
	// simulation scale and keeps the draw obviously uniform.
	perm := src.Perm(len(p.keys))[:ringSize]
	sortIdx(perm)
	r := Ring{indices: perm, keys: make([]Key, ringSize)}
	for i, idx := range perm {
		r.keys[i] = p.keys[idx]
	}
	return r
}

// Indices returns a copy of the ring's sorted pool indices. Shared-key
// discovery broadcasts these in the clear (the scheme's standard
// challenge-free variant).
func (r Ring) Indices() []int {
	return append([]int(nil), r.indices...)
}

// Size returns the ring size.
func (r Ring) Size() int { return len(r.indices) }

// SharedIndices returns the sorted pool indices present in both rings.
func SharedIndices(a, b Ring) []int {
	var out []int
	i, j := 0, 0
	for i < len(a.indices) && j < len(b.indices) {
		switch {
		case a.indices[i] < b.indices[j]:
			i++
		case a.indices[i] > b.indices[j]:
			j++
		default:
			out = append(out, a.indices[i])
			i++
			j++
		}
	}
	return out
}

// LinkKey establishes the Eschenauer–Gligor link key between two rings:
// the key at the smallest shared index, bound to the index by a KDF so
// distinct shared indices give distinct link keys. The second return is
// false if the rings share no key.
func LinkKey(a, b Ring) (Key, bool) {
	shared := SharedIndices(a, b)
	if len(shared) == 0 {
		return Key{}, false
	}
	return deriveLink(a, shared[:1]), true
}

// QCompositeLinkKey establishes a q-composite link key: it requires at
// least q shared pool keys and hashes all of them together, so an
// adversary must compromise every shared key to break the link. The
// second return is false if fewer than q keys are shared.
func QCompositeLinkKey(a, b Ring, q int) (Key, bool) {
	if q < 1 {
		panic(fmt.Sprintf("crypto: q-composite q = %d must be >= 1", q))
	}
	shared := SharedIndices(a, b)
	if len(shared) < q {
		return Key{}, false
	}
	return deriveLink(a, shared), true
}

// deriveLink hashes the shared key material (with indices) into a link
// key. Both sides compute the same value because shared is sorted and the
// key material at a shared index is identical in both rings.
func deriveLink(a Ring, shared []int) Key {
	ctx := make([][]byte, 0, 2*len(shared)+1)
	ctx = append(ctx, []byte("eg-link"))
	var acc Key
	for _, idx := range shared {
		var buf [4]byte
		binary.BigEndian.PutUint32(buf[:], uint32(idx))
		k := a.keyAt(idx)
		ctx = append(ctx, buf[:], k[:])
	}
	return KDF(acc, ctx...)
}

func (r Ring) keyAt(poolIndex int) Key {
	for i, idx := range r.indices {
		if idx == poolIndex {
			return r.keys[i]
		}
	}
	panic(fmt.Sprintf("crypto: ring does not hold pool index %d", poolIndex))
}

// ConnectivityProbability returns the analytical probability that two
// rings of size ringSize drawn from a pool of poolSize share at least one
// key (Eschenauer–Gligor eq. 1):
//
//	p = 1 - ((P-k)! )^2 / (P! (P-2k)!)
//
// computed in log space to avoid overflow.
func ConnectivityProbability(poolSize, ringSize int) float64 {
	if ringSize <= 0 || poolSize <= 0 {
		return 0
	}
	if 2*ringSize > poolSize {
		return 1
	}
	// log p_miss = 2*lgamma(P-k+1) - lgamma(P+1) - lgamma(P-2k+1)
	lg := func(n int) float64 {
		v, _ := math.Lgamma(float64(n + 1))
		return v
	}
	logMiss := 2*lg(poolSize-ringSize) - lg(poolSize) - lg(poolSize-2*ringSize)
	return 1 - math.Exp(logMiss)
}

func sortIdx(a []int) {
	// Rings are small (tens to low hundreds); insertion sort avoids
	// pulling in sort for a hot predistribution loop.
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j-1] > a[j]; j-- {
			a[j-1], a[j] = a[j], a[j-1]
		}
	}
}
