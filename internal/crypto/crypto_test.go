package crypto

import (
	"testing"
	"testing/quick"

	"beaconsec/internal/ident"
)

func TestKDFDeterministicAndContextBound(t *testing.T) {
	var k Key
	k[0] = 1
	a := KDF(k, []byte("ctx1"))
	b := KDF(k, []byte("ctx1"))
	c := KDF(k, []byte("ctx2"))
	if a != b {
		t.Error("KDF not deterministic")
	}
	if a == c {
		t.Error("KDF ignores context")
	}
}

func TestKDFLengthPrefixing(t *testing.T) {
	var k Key
	a := KDF(k, []byte("ab"), []byte("c"))
	b := KDF(k, []byte("a"), []byte("bc"))
	if a == b {
		t.Error("KDF context concatenation is ambiguous")
	}
}

func TestSignVerify(t *testing.T) {
	var k Key
	k[3] = 9
	msg := []byte("beacon packet")
	tag := Sign(k, msg)
	if !Verify(k, msg, tag) {
		t.Fatal("Verify rejects valid tag")
	}
	if Verify(k, []byte("beacon packeT"), tag) {
		t.Error("Verify accepts modified message")
	}
	var k2 Key
	k2[3] = 10
	if Verify(k2, msg, tag) {
		t.Error("Verify accepts tag under wrong key")
	}
	tag[0] ^= 1
	if Verify(k, msg, tag) {
		t.Error("Verify accepts modified tag")
	}
}

func TestSignVerifyProperty(t *testing.T) {
	var k Key
	k[7] = 0x42
	f := func(msg []byte) bool {
		return Verify(k, msg, Sign(k, msg))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPairwiseSymmetry(t *testing.T) {
	m := NewMaster([]byte("seed"))
	f := func(a, b uint16) bool {
		ka := m.Pairwise(ident.NodeID(a), ident.NodeID(b))
		kb := m.Pairwise(ident.NodeID(b), ident.NodeID(a))
		return ka == kb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPairwiseUnique(t *testing.T) {
	m := NewMaster([]byte("seed"))
	seen := make(map[Key][2]ident.NodeID)
	for a := ident.NodeID(1); a <= 40; a++ {
		for b := a + 1; b <= 40; b++ {
			k := m.Pairwise(a, b)
			if prev, dup := seen[k]; dup {
				t.Fatalf("pairwise collision: (%v,%v) and (%v,%v)", a, b, prev[0], prev[1])
			}
			seen[k] = [2]ident.NodeID{a, b}
		}
	}
}

func TestDistinctMastersDistinctKeys(t *testing.T) {
	m1 := NewMaster([]byte("seed-1"))
	m2 := NewMaster([]byte("seed-2"))
	if m1.Pairwise(1, 2) == m2.Pairwise(1, 2) {
		t.Error("different masters produced the same pairwise key")
	}
}

func TestBaseStationKeysUnique(t *testing.T) {
	m := NewMaster([]byte("seed"))
	if m.BaseStationKey(1) == m.BaseStationKey(2) {
		t.Error("base-station keys collide across nodes")
	}
	if m.BaseStationKey(1) == m.Pairwise(1, 2) {
		t.Error("base-station key collides with a pairwise key")
	}
}

func TestStoreIdentities(t *testing.T) {
	m := NewMaster([]byte("seed"))
	s := NewStore(m, 5, 900, 901)
	if !s.Owns(5) || !s.Owns(900) || !s.Owns(901) {
		t.Error("store does not own provisioned identities")
	}
	if s.Owns(6) {
		t.Error("store owns unprovisioned identity")
	}
	ids := s.Identities()
	if len(ids) != 3 || ids[0] != 5 {
		t.Errorf("Identities() = %v", ids)
	}
	ids[0] = 99 // callers must not be able to mutate internal state
	if !s.Owns(5) {
		t.Error("Identities() leaked internal slice")
	}
}

func TestStorePairwiseMatchesPeer(t *testing.T) {
	m := NewMaster([]byte("seed"))
	alice := NewStore(m, 5)
	bob := NewStore(m, 9)
	if alice.PairwiseKey(5, 9) != bob.PairwiseKey(9, 5) {
		t.Error("pairwise keys disagree between stores")
	}
}

func TestStorePairwiseDetectingIdentity(t *testing.T) {
	m := NewMaster([]byte("seed"))
	// Beacon node 5 also holds detecting pseudonym 900.
	beacon := NewStore(m, 5, 900)
	target := NewStore(m, 9)
	// Probing under the pseudonym must produce the key the target derives
	// for "node 900" — the pseudonym is cryptographically a real node.
	if beacon.PairwiseKey(900, 9) != target.PairwiseKey(9, 900) {
		t.Error("detecting pseudonym key mismatch")
	}
}

func TestStoreUnownedIdentityPanics(t *testing.T) {
	m := NewMaster([]byte("seed"))
	s := NewStore(m, 5)
	defer func() {
		if recover() == nil {
			t.Error("PairwiseKey under unowned identity did not panic")
		}
	}()
	s.PairwiseKey(6, 9)
}

func TestStoreBaseStationKey(t *testing.T) {
	m := NewMaster([]byte("seed"))
	s := NewStore(m, 5)
	if s.BaseStationKey(5) != m.BaseStationKey(5) {
		t.Error("store base-station key mismatch")
	}
	defer func() {
		if recover() == nil {
			t.Error("BaseStationKey for unowned identity did not panic")
		}
	}()
	s.BaseStationKey(6)
}

func BenchmarkSign(b *testing.B) {
	var k Key
	msg := make([]byte, 32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Sign(k, msg)
	}
}

func BenchmarkPairwise(b *testing.B) {
	m := NewMaster([]byte("seed"))
	for i := 0; i < b.N; i++ {
		m.Pairwise(ident.NodeID(i&0xff), ident.NodeID(i>>8&0xff))
	}
}
