package crypto

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"math/rand"
	"sync"
	"testing"
)

// refMAC is the stdlib HMAC-SHA256 the zero-alloc path must match
// bit-for-bit.
func refMAC(k Key, msg []byte) []byte {
	h := hmac.New(sha256.New, k[:])
	h.Write(msg)
	return h.Sum(nil)
}

func TestSignMatchesStdlibHMAC(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	keys := make([]Key, 8)
	for i := range keys {
		rnd.Read(keys[i][:])
	}
	for trial := 0; trial < 500; trial++ {
		// Reusing keys across trials exercises the midstate-cache hit
		// path; fresh keys exercise the miss path.
		var k Key
		if trial%3 == 0 {
			rnd.Read(k[:])
		} else {
			k = keys[rnd.Intn(len(keys))]
		}
		msg := make([]byte, rnd.Intn(200))
		rnd.Read(msg)
		got := Sign(k, msg)
		want := refMAC(k, msg)
		if !bytes.Equal(got[:], want[:TagSize]) {
			t.Fatalf("trial %d: Sign = %x, stdlib hmac = %x", trial, got, want[:TagSize])
		}
		if !Verify(k, msg, got) {
			t.Fatalf("trial %d: Verify rejected own tag", trial)
		}
	}
}

func TestKDFMatchesStdlibHMAC(t *testing.T) {
	rnd := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		var k Key
		rnd.Read(k[:])
		context := make([][]byte, rnd.Intn(4))
		for i := range context {
			context[i] = make([]byte, rnd.Intn(40))
			rnd.Read(context[i])
		}
		// Reference: HMAC over the length-prefixed concatenation.
		h := hmac.New(sha256.New, k[:])
		var lenBuf [4]byte
		for _, c := range context {
			binary.BigEndian.PutUint32(lenBuf[:], uint32(len(c)))
			h.Write(lenBuf[:])
			h.Write(c)
		}
		var want Key
		copy(want[:], h.Sum(nil))
		if got := KDF(k, context...); got != want {
			t.Fatalf("trial %d: KDF = %x, reference = %x", trial, got, want)
		}
	}
}

// TestMACCacheEviction drives one state's key cache past macCacheMax
// and checks both the bound and post-eviction correctness.
func TestMACCacheEviction(t *testing.T) {
	s := statePool.Get().(*macState)
	defer statePool.Put(s)
	var k Key
	for i := 0; i < macCacheMax+100; i++ {
		binary.BigEndian.PutUint32(k[:4], uint32(i))
		s.entry(k)
		if len(s.cache) > macCacheMax {
			t.Fatalf("cache grew to %d entries, bound is %d", len(s.cache), macCacheMax)
		}
	}
	// A key inserted before the eviction must still produce correct
	// output when rebuilt.
	binary.BigEndian.PutUint32(k[:4], 0)
	msg := []byte("after eviction")
	got := Sign(k, msg)
	if want := refMAC(k, msg); !bytes.Equal(got[:], want[:TagSize]) {
		t.Fatalf("post-eviction Sign = %x, want %x", got, want[:TagSize])
	}
}

// TestSignVerifyConcurrent exercises the state pool under the race
// detector, mirroring the experiment harness running many scenarios in
// parallel through these package functions.
func TestSignVerifyConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(int64(g)))
			var k Key
			msg := make([]byte, 64)
			for i := 0; i < 200; i++ {
				rnd.Read(k[:16]) // shared key space across goroutines
				rnd.Read(msg)
				tag := Sign(k, msg)
				if !Verify(k, msg, tag) {
					t.Errorf("goroutine %d: Verify rejected own tag", g)
					return
				}
				if want := refMAC(k, msg); !bytes.Equal(tag[:], want[:TagSize]) {
					t.Errorf("goroutine %d: Sign diverged from stdlib", g)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// raceEnabled is set by race_test.go under -race builds.
var raceEnabled bool

// TestSignVerifyKDFZeroAlloc pins the point of the rewrite: on a warm
// state, signing, verifying, and deriving keys do zero heap
// allocations.
func TestSignVerifyKDFZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector drops sync.Pool puts; allocation pin not meaningful")
	}
	var k Key
	k[0] = 7
	msg := []byte("zero-alloc hot path")
	// The context slice is hoisted: a literal `KDF(k, msg)` call site
	// allocates the variadic [][]byte itself, which is the caller's
	// allocation, not KDF's.
	ctx := [][]byte{msg}
	tag := Sign(k, msg) // warm the pool and the key's midstate cache
	KDF(k, ctx...)
	if avg := testing.AllocsPerRun(100, func() { Sign(k, msg) }); avg != 0 {
		t.Errorf("Sign allocates %.1f times per op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() { Verify(k, msg, tag) }); avg != 0 {
		t.Errorf("Verify allocates %.1f times per op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() { KDF(k, ctx...) }); avg != 0 {
		t.Errorf("KDF allocates %.1f times per op, want 0", avg)
	}
}

func BenchmarkVerify(b *testing.B) {
	var k Key
	msg := make([]byte, 32)
	tag := Sign(k, msg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !Verify(k, msg, tag) {
			b.Fatal("verify failed")
		}
	}
}

func BenchmarkKDF(b *testing.B) {
	var k Key
	ctx := []byte("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		KDF(k, ctx)
	}
}

// BenchmarkSignColdKeys measures the cache-miss path: every op pays the
// two pad-block compressions.
func BenchmarkSignColdKeys(b *testing.B) {
	msg := make([]byte, 32)
	var k Key
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		binary.BigEndian.PutUint64(k[:8], uint64(i))
		Sign(k, msg)
	}
}
