package crypto

import (
	"strings"
	"testing"

	"beaconsec/internal/rng"
	"beaconsec/internal/sim"
)

func newChain(t *testing.T) *TeslaChain {
	t.Helper()
	return NewTeslaChain(20, sim.Seconds(1), 2, 0, rng.New(7))
}

func TestTeslaChainStructure(t *testing.T) {
	c := newChain(t)
	// Anchor is reachable from every later key by hashing.
	k := c.keys[len(c.keys)-1]
	for i := len(c.keys) - 1; i > 0; i-- {
		k = ChainLink(k)
		if k != c.keys[i-1] {
			t.Fatalf("chain broken at %d", i)
		}
	}
	if k != c.Anchor() {
		t.Fatal("chain does not terminate at the anchor")
	}
}

func TestTeslaIntervalMapping(t *testing.T) {
	c := newChain(t)
	if c.IntervalAt(0) != 0 {
		t.Errorf("IntervalAt(0) = %d", c.IntervalAt(0))
	}
	if got := c.IntervalAt(sim.Seconds(3.5)); got != 3 {
		t.Errorf("IntervalAt(3.5s) = %d", got)
	}
	if got := c.IntervalAt(sim.Seconds(1e6)); got != 19 {
		t.Errorf("IntervalAt(huge) = %d, want clamp to last", got)
	}
}

func TestTeslaEndToEnd(t *testing.T) {
	c := newChain(t)
	r := NewTeslaReceiver(c.Anchor(), sim.Seconds(1), 2, 0)

	msg := []byte("revoke n42")
	now := sim.Seconds(3.2) // interval 3
	tag, interval := c.Sign(msg, now)
	r.Receive(msg, tag, interval, now+sim.Millis(30))

	// Key for interval 3 becomes disclosable at interval 5.
	discloseAt := sim.Seconds(5.1)
	ix, key, ok := c.Disclosable(discloseAt)
	if !ok || ix != 3 {
		t.Fatalf("Disclosable at 5.1s = (%d, ok=%v), want interval 3", ix, ok)
	}
	if err := r.Disclose(key, ix); err != nil {
		t.Fatal(err)
	}
	if len(r.Accepted) != 1 || string(r.Accepted[0]) != "revoke n42" {
		t.Errorf("Accepted = %q", r.Accepted)
	}
	if r.Rejected != 0 || r.Unsafe != 0 {
		t.Errorf("Rejected=%d Unsafe=%d", r.Rejected, r.Unsafe)
	}
}

func TestTeslaRejectsForgedMessage(t *testing.T) {
	c := newChain(t)
	r := NewTeslaReceiver(c.Anchor(), sim.Seconds(1), 2, 0)

	var forgedTag Tag
	forgedTag[0] = 0xAA
	r.Receive([]byte("revoke n1 (forged)"), forgedTag, 3, sim.Seconds(3.1))
	ix, key, _ := c.Disclosable(sim.Seconds(5.5))
	if err := r.Disclose(key, ix); err != nil {
		t.Fatal(err)
	}
	if len(r.Accepted) != 0 {
		t.Errorf("forged message accepted: %q", r.Accepted)
	}
	if r.Rejected != 1 {
		t.Errorf("Rejected = %d", r.Rejected)
	}
}

func TestTeslaSecurityCondition(t *testing.T) {
	// A message claiming interval 1 but arriving in interval 4 is unsafe
	// (its key may already be public) and must be dropped unverified.
	c := newChain(t)
	r := NewTeslaReceiver(c.Anchor(), sim.Seconds(1), 2, 0)
	msg := []byte("late")
	tag, _ := c.Sign(msg, sim.Seconds(1.5))
	r.Receive(msg, tag, 1, sim.Seconds(4.5))
	if r.Unsafe != 1 {
		t.Errorf("Unsafe = %d, want 1", r.Unsafe)
	}
	if len(r.pending) != 0 {
		t.Error("unsafe message buffered")
	}
}

func TestTeslaRejectsWrongChainKey(t *testing.T) {
	c := newChain(t)
	r := NewTeslaReceiver(c.Anchor(), sim.Seconds(1), 2, 0)
	var bogus Key
	bogus[3] = 0x55
	err := r.Disclose(bogus, 3)
	if err == nil || !strings.Contains(err.Error(), "chain verification") {
		t.Errorf("bogus key disclosure: %v", err)
	}
}

func TestTeslaRejectsStaleKey(t *testing.T) {
	c := newChain(t)
	r := NewTeslaReceiver(c.Anchor(), sim.Seconds(1), 2, 0)
	if err := r.Disclose(c.keys[3], 3); err != nil {
		t.Fatal(err)
	}
	if err := r.Disclose(c.keys[2], 2); err == nil {
		t.Error("stale key accepted")
	}
}

func TestTeslaSkippedIntervalsStillVerify(t *testing.T) {
	// Receiver misses several disclosures; a later key must still verify
	// against the old anchor by hashing across the gap.
	c := newChain(t)
	r := NewTeslaReceiver(c.Anchor(), sim.Seconds(1), 2, 0)
	msg := []byte("gap")
	tag, interval := c.Sign(msg, sim.Seconds(7.5))
	r.Receive(msg, tag, interval, sim.Seconds(7.6))
	if err := r.Disclose(c.keys[7], 7); err != nil {
		t.Fatalf("disclosure across gap: %v", err)
	}
	if len(r.Accepted) != 1 {
		t.Errorf("Accepted = %d", len(r.Accepted))
	}
}

func TestTeslaDisclosableBeforeDelay(t *testing.T) {
	c := newChain(t)
	if _, _, ok := c.Disclosable(sim.Seconds(1.5)); ok {
		t.Error("key disclosable before the delay elapsed")
	}
}

func TestTeslaConstructorPanics(t *testing.T) {
	cases := []func(){
		func() { NewTeslaChain(1, sim.Seconds(1), 2, 0, rng.New(1)) },
		func() { NewTeslaChain(10, 0, 2, 0, rng.New(1)) },
		func() { NewTeslaChain(10, sim.Seconds(1), 0, 0, rng.New(1)) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestTeslaReceiverIsolatesBufferedMessage(t *testing.T) {
	// Receive must copy the message: callers may reuse their buffer.
	c := newChain(t)
	r := NewTeslaReceiver(c.Anchor(), sim.Seconds(1), 2, 0)
	buf := []byte("original")
	tag, interval := c.Sign(buf, sim.Seconds(3.5))
	r.Receive(buf, tag, interval, sim.Seconds(3.6))
	copy(buf, "clobberd")
	ix, key, _ := c.Disclosable(sim.Seconds(5.5))
	if err := r.Disclose(key, ix); err != nil {
		t.Fatal(err)
	}
	if len(r.Accepted) != 1 || string(r.Accepted[0]) != "original" {
		t.Errorf("buffered message not isolated: %q", r.Accepted)
	}
}
