// Package metrics provides the cheap, allocation-free instrumentation
// primitives the simulation stack records into: atomic counters,
// fixed-bucket histograms, and per-phase span accounting.
//
// Design rules, in priority order:
//
//   - The hot path costs nothing when disabled. Every pointer-receiver
//     method is a no-op on a nil receiver, so a layer holds an optional
//     *Histogram (or *Timing) and calls it unconditionally; the disabled
//     default is one nil check, no branch misprediction, no allocation.
//   - Recording never allocates. Counters are a single atomic add;
//     histograms index a pre-sized bucket slice.
//   - Snapshots are plain exported data. Every type marshals through
//     encoding/json as-is and round-trips losslessly, because the
//     experiment layer exports merged metrics machine-readably.
//   - Merging is deterministic. Merge is a field-wise sum executed by the
//     caller in a deterministic order (the trial harness merges in grid
//     order), so aggregate metrics are identical for any worker count.
package metrics

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Counter is a monotone event count. Increments are atomic, so a counter
// shared across goroutines (e.g. harness-level aggregates) stays exact;
// within the single-threaded simulation the atomic costs ~1ns. The zero
// value is ready to use and marshals as a plain JSON number.
type Counter uint64

// Inc adds one.
func (c *Counter) Inc() { atomic.AddUint64((*uint64)(c), 1) }

// Add adds n.
func (c *Counter) Add(n uint64) { atomic.AddUint64((*uint64)(c), n) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return atomic.LoadUint64((*uint64)(c)) }

// Merge adds another counter's value.
func (c *Counter) Merge(o Counter) { c.Add(uint64(o)) }

// Histogram is a fixed-bucket histogram with summary statistics. Bounds
// are ascending bucket upper limits; an implicit final bucket catches
// everything above the last bound, so Counts has len(Bounds)+1 entries.
// Observe on a nil *Histogram is a no-op — the disabled default.
//
// Histogram is NOT safe for concurrent Observe; each recording site owns
// its histogram and merges are explicit (like the rest of the simulation,
// which parallelizes across independent runs, not within one).
type Histogram struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
	Min    float64   `json:"min"`
	Max    float64   `json:"max"`
}

// NewHistogram builds a histogram over the given ascending bucket bounds.
// It panics on unsorted bounds: bucket layout is a compile-time decision,
// never runtime input.
func NewHistogram(bounds ...float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram bounds not ascending at %d: %v", i, bounds))
		}
	}
	return &Histogram{Bounds: bounds, Counts: make([]uint64, len(bounds)+1)}
}

// ExpBounds returns n bounds growing geometrically from start by factor:
// the standard latency-histogram layout.
func ExpBounds(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n <= 0 {
		panic(fmt.Sprintf("metrics: bad exponential bounds (%v, %v, %d)", start, factor, n))
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Observe records one value. A nil receiver is a no-op.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if h.Count == 0 || v < h.Min {
		h.Min = v
	}
	if h.Count == 0 || v > h.Max {
		h.Max = v
	}
	h.Count++
	h.Sum += v
	h.Counts[h.bucket(v)]++
}

// bucket returns the index of the bucket v falls into (binary search over
// the bounds; values above the last bound land in the overflow bucket).
func (h *Histogram) bucket(v float64) int {
	lo, hi := 0, len(h.Bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.Bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Mean returns the mean of all observations (0 when empty).
func (h *Histogram) Mean() float64 {
	if h == nil || h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Quantile returns an upper bound for the q-quantile (q in [0, 1]) from
// the bucket counts: the bound of the bucket the quantile falls in, or
// Max for the overflow bucket. Zero when empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || h.Count == 0 {
		return 0
	}
	if math.IsNaN(q) || q < 0 || q > 1 {
		panic(fmt.Sprintf("metrics: quantile %v outside [0,1]", q))
	}
	rank := uint64(math.Ceil(q * float64(h.Count)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.Counts {
		seen += c
		if seen >= rank {
			if i < len(h.Bounds) {
				return h.Bounds[i]
			}
			return h.Max
		}
	}
	return h.Max
}

// Merge folds another histogram into h. The two must share a bucket
// layout (same bounds); merging mismatched layouts panics. Merging into a
// nil receiver is a no-op; merging a nil or empty other is a no-op.
func (h *Histogram) Merge(o *Histogram) {
	if h == nil || o == nil || o.Count == 0 {
		return
	}
	if len(h.Counts) != len(o.Counts) {
		panic(fmt.Sprintf("metrics: merging histograms with %d vs %d buckets", len(h.Counts), len(o.Counts)))
	}
	if h.Count == 0 || o.Min < h.Min {
		h.Min = o.Min
	}
	if h.Count == 0 || o.Max > h.Max {
		h.Max = o.Max
	}
	h.Count += o.Count
	h.Sum += o.Sum
	for i := range h.Counts {
		h.Counts[i] += o.Counts[i]
	}
}

// Clone returns a deep copy of h (nil for a nil receiver), for merge
// targets that start from an existing snapshot: Merge into a nil
// destination is a deliberate no-op, so accumulators adopt the first
// non-nil histogram by cloning it.
func (h *Histogram) Clone() *Histogram {
	if h == nil {
		return nil
	}
	c := *h
	c.Bounds = append([]float64(nil), h.Bounds...)
	c.Counts = append([]uint64(nil), h.Counts...)
	return &c
}

// Span is one named phase of a run: a window of virtual time plus the
// event and transmission counts that fell inside it. Spans are recorded by
// the scenario layer at phase boundaries, so they are exact, deterministic
// accounting — not sampled profiles.
type Span struct {
	// Name identifies the phase ("announce", "detect", ...).
	Name string `json:"name"`
	// StartCycles / EndCycles bound the phase in virtual CPU cycles.
	StartCycles uint64 `json:"start_cycles"`
	EndCycles   uint64 `json:"end_cycles"`
	// Events is the number of simulator events fired during the phase.
	Events uint64 `json:"events"`
	// Transmissions is the number of radio transmissions launched during
	// the phase.
	Transmissions uint64 `json:"transmissions"`
}

// Cycles returns the span's virtual-time width.
func (s Span) Cycles() uint64 { return s.EndCycles - s.StartCycles }

// MergeSpans folds another run's spans into dst, matching by position and
// name: counters add, boundaries must agree (phase boundaries are
// deployment constants, identical across trials). An empty dst copies src.
func MergeSpans(dst, src []Span) []Span {
	if len(src) == 0 {
		return dst
	}
	if len(dst) == 0 {
		out := make([]Span, len(src))
		copy(out, src)
		return out
	}
	if len(dst) != len(src) {
		panic(fmt.Sprintf("metrics: merging %d spans into %d", len(src), len(dst)))
	}
	for i := range dst {
		if dst[i].Name != src[i].Name {
			panic(fmt.Sprintf("metrics: span %d name mismatch %q vs %q", i, dst[i].Name, src[i].Name))
		}
		dst[i].Events += src[i].Events
		dst[i].Transmissions += src[i].Transmissions
		if src[i].EndCycles > dst[i].EndCycles {
			// Trials can drain stragglers to different quiescence times;
			// keep the widest observed window.
			dst[i].EndCycles = src[i].EndCycles
		}
	}
	return dst
}
