package metrics

import (
	"encoding/json"
	"reflect"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Errorf("Load() = %d, want 42", got)
	}
	var d Counter = 8
	c.Merge(d)
	if got := c.Load(); got != 50 {
		t.Errorf("after Merge: %d, want 50", got)
	}
}

func TestCounterConcurrentIncrements(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != 8000 {
		t.Errorf("concurrent increments lost: %d / 8000", got)
	}
}

func TestCounterMarshalsAsNumber(t *testing.T) {
	var c Counter = 7
	b, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "7" {
		t.Errorf("Counter marshals as %s", b)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(1, 10, 100)
	for _, v := range []float64{0.5, 1, 5, 10, 99, 100.5} {
		h.Observe(v)
	}
	want := []uint64{2, 2, 1, 1} // (-inf,1], (1,10], (10,100], (100,inf)
	if !reflect.DeepEqual(h.Counts, want) {
		t.Errorf("Counts = %v, want %v", h.Counts, want)
	}
	if h.Count != 6 || h.Min != 0.5 || h.Max != 100.5 {
		t.Errorf("summary wrong: %+v", h)
	}
	if got := h.Mean(); got != (0.5+1+5+10+99+100.5)/6 {
		t.Errorf("Mean() = %v", got)
	}
}

func TestHistogramNilNoOps(t *testing.T) {
	var h *Histogram
	h.Observe(3)             // must not panic
	h.Merge(NewHistogram(1)) // must not panic
	if h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Error("nil histogram reports nonzero stats")
	}
	if h.Clone() != nil {
		t.Error("nil Clone() != nil")
	}
}

func TestHistogramClone(t *testing.T) {
	h := NewHistogram(1, 10)
	h.Observe(0.5)
	h.Observe(5)
	c := h.Clone()
	if !reflect.DeepEqual(c, h) {
		t.Fatalf("Clone = %+v, want %+v", c, h)
	}
	c.Observe(100) // must not alias the original's buckets
	if reflect.DeepEqual(c.Counts, h.Counts) || h.Count != 2 {
		t.Errorf("Clone shares state with original: %+v vs %+v", c, h)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(1, 2, 4, 8)
	for v := 1; v <= 8; v++ {
		h.Observe(float64(v))
	}
	if got := h.Quantile(0.5); got != 4 {
		t.Errorf("p50 = %v, want bucket bound 4", got)
	}
	if got := h.Quantile(1); got != 8 {
		t.Errorf("p100 = %v, want 8", got)
	}
	h.Observe(1000) // overflow bucket
	if got := h.Quantile(1); got != 1000 {
		t.Errorf("p100 with overflow = %v, want Max 1000", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(1, 10)
	b := NewHistogram(1, 10)
	a.Observe(0.5)
	a.Observe(5)
	b.Observe(50)
	a.Merge(b)
	if a.Count != 3 || a.Min != 0.5 || a.Max != 50 {
		t.Errorf("merged summary: %+v", a)
	}
	if !reflect.DeepEqual(a.Counts, []uint64{1, 1, 1}) {
		t.Errorf("merged counts: %v", a.Counts)
	}
	// Merging an empty histogram changes nothing.
	before := *a
	a.Merge(NewHistogram(1, 10))
	if !reflect.DeepEqual(before.Counts, a.Counts) || before.Min != a.Min {
		t.Error("merging empty histogram changed state")
	}
}

func TestHistogramMergeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched merge did not panic")
		}
	}()
	a, b := NewHistogram(1), NewHistogram(1, 2)
	b.Observe(1)
	a.Merge(b)
}

func TestNewHistogramRejectsUnsortedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unsorted bounds accepted")
		}
	}()
	NewHistogram(10, 1)
}

func TestExpBounds(t *testing.T) {
	got := ExpBounds(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ExpBounds = %v, want %v", got, want)
	}
}

func TestHistogramJSONRoundTrip(t *testing.T) {
	h := NewHistogram(ExpBounds(1, 4, 6)...)
	for _, v := range []float64{0.1, 3, 700, 1e6} {
		h.Observe(v)
	}
	b, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var back Histogram
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*h, back) {
		t.Errorf("round trip changed histogram:\n%+v\n%+v", *h, back)
	}
}

func TestEmptyHistogramMarshals(t *testing.T) {
	// An empty histogram must not contain Inf/NaN sentinels: those do not
	// survive encoding/json, and metrics are exported machine-readably.
	h := NewHistogram(1, 2)
	if _, err := json.Marshal(h); err != nil {
		t.Fatalf("empty histogram unmarshalable: %v", err)
	}
	if h.Min != 0 || h.Max != 0 {
		t.Errorf("empty histogram has sentinel min/max: %+v", h)
	}
}

func TestSpanMerge(t *testing.T) {
	a := []Span{{Name: "x", StartCycles: 0, EndCycles: 10, Events: 3, Transmissions: 1}}
	b := []Span{{Name: "x", StartCycles: 0, EndCycles: 12, Events: 5, Transmissions: 2}}
	out := MergeSpans(nil, a)
	out = MergeSpans(out, b)
	if out[0].Events != 8 || out[0].Transmissions != 3 {
		t.Errorf("merged span counters: %+v", out[0])
	}
	if out[0].EndCycles != 12 {
		t.Errorf("merged span kept narrow window: %+v", out[0])
	}
	if got := out[0].Cycles(); got != 12 {
		t.Errorf("Cycles() = %d", got)
	}
	// Merging must not alias the source.
	b[0].Events = 999
	if out[0].Events != 8 {
		t.Error("MergeSpans aliased its source slice")
	}
}

func TestSpanMergeNameMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("name mismatch did not panic")
		}
	}()
	MergeSpans([]Span{{Name: "a"}}, []Span{{Name: "b"}})
}
