package metrics

import "testing"

// BenchmarkCounterInc is the enabled-path cost of the cheapest primitive:
// one atomic add.
func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
	if c.Load() == 0 {
		b.Fatal("counter did not count")
	}
}

// BenchmarkHistogramObserve is the enabled-path cost of a histogram
// recording: a binary search over bounds plus summary updates, zero
// allocations.
func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(ExpBounds(1, 2, 20)...)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i & 0xFFFF))
	}
	if h.Count == 0 {
		b.Fatal("histogram did not record")
	}
}

// BenchmarkHistogramObserveDisabled is the disabled path every hot loop
// pays when instrumentation is off: a nil check.
func BenchmarkHistogramObserveDisabled(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i))
	}
}
