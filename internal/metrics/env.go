package metrics

import "runtime"

// Env records the execution environment a measurement ran in. Timing
// numbers are meaningless without it: a serial-equals-parallel sweep
// table reads as a parallelism regression until the 1-vCPU container it
// ran on is in the record. CaptureEnv stamps it into harness.Timing and
// every exported benchmark document.
type Env struct {
	// GoVersion is runtime.Version() of the measuring binary.
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// NumCPU is the machine's logical CPU count.
	NumCPU int `json:"num_cpu"`
	// GOMAXPROCS is the scheduler's parallelism bound at capture time —
	// the number a "parallel" measurement actually had available.
	GOMAXPROCS int `json:"gomaxprocs"`
}

// CaptureEnv snapshots the current process's environment.
func CaptureEnv() Env {
	return Env{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}
