// Package localization implements the location-discovery substrate the
// paper protects: distance-based multilateration (linear least squares
// with Gauss–Newton refinement), plus the min-max and centroid baselines
// from the literature the paper cites (Savvides et al.; Bulusu, Heidemann
// & Estrin).
//
// A non-beacon node collects location references — (beacon location,
// measured distance) pairs — and estimates its own position as the point
// best satisfying the distance constraints. Malicious references corrupt
// the estimate, which is the attack the rest of this repository detects
// and removes.
package localization

import (
	"errors"
	"fmt"
	"math"

	"beaconsec/internal/geo"
)

// Reference is one location reference: the location a beacon declared and
// the distance measured from its beacon signal.
type Reference struct {
	Loc  geo.Point
	Dist float64
}

// Estimation errors.
var (
	// ErrTooFew is returned when fewer than three references are
	// available; two distances leave a two-point ambiguity.
	ErrTooFew = errors.New("localization: need at least 3 references")
	// ErrDegenerate is returned when the reference geometry is singular
	// (e.g. all beacons collinear).
	ErrDegenerate = errors.New("localization: degenerate reference geometry")
)

const (
	gaussNewtonIters = 25
	convergedStep    = 1e-6
)

// Multilaterate estimates a position from distance references: a linear
// least-squares seed (difference-of-circles linearization) refined by
// Gauss–Newton on the nonlinear residuals. This is the "mathematical
// solution that satisfies these constraints with minimum estimation
// error" of the paper's stage 2.
func Multilaterate(refs []Reference) (geo.Point, error) {
	if len(refs) < 3 {
		return geo.Point{}, fmt.Errorf("%w: have %d", ErrTooFew, len(refs))
	}
	seed, err := linearSeed(refs)
	if err != nil {
		return geo.Point{}, err
	}
	return refine(seed, refs), nil
}

// linearSeed subtracts the last circle equation from the others, yielding
// the linear system A [x y]^T = b, solved via 2x2 normal equations.
func linearSeed(refs []Reference) (geo.Point, error) {
	n := len(refs)
	last := refs[n-1]
	var a11, a12, a22, b1, b2 float64
	for _, r := range refs[:n-1] {
		ax := 2 * (last.Loc.X - r.Loc.X)
		ay := 2 * (last.Loc.Y - r.Loc.Y)
		rhs := r.Dist*r.Dist - last.Dist*last.Dist -
			r.Loc.X*r.Loc.X + last.Loc.X*last.Loc.X -
			r.Loc.Y*r.Loc.Y + last.Loc.Y*last.Loc.Y
		a11 += ax * ax
		a12 += ax * ay
		a22 += ay * ay
		b1 += ax * rhs
		b2 += ay * rhs
	}
	det := a11*a22 - a12*a12
	scale := a11 + a22
	if scale == 0 || math.Abs(det) < 1e-9*scale*scale {
		return geo.Point{}, ErrDegenerate
	}
	return geo.Point{
		X: (a22*b1 - a12*b2) / det,
		Y: (a11*b2 - a12*b1) / det,
	}, nil
}

// refine runs Gauss–Newton on f_i(p) = |p - loc_i| - dist_i.
func refine(p geo.Point, refs []Reference) geo.Point {
	for iter := 0; iter < gaussNewtonIters; iter++ {
		var jtj11, jtj12, jtj22, jtr1, jtr2 float64
		for _, r := range refs {
			dx := p.X - r.Loc.X
			dy := p.Y - r.Loc.Y
			d := math.Hypot(dx, dy)
			if d < 1e-9 {
				// At a beacon location the residual gradient is
				// undefined; nudge off it.
				dx, dy, d = 1e-6, 1e-6, math.Sqrt2*1e-6
			}
			jx := dx / d
			jy := dy / d
			res := d - r.Dist
			jtj11 += jx * jx
			jtj12 += jx * jy
			jtj22 += jy * jy
			jtr1 += jx * res
			jtr2 += jy * res
		}
		det := jtj11*jtj22 - jtj12*jtj12
		if math.Abs(det) < 1e-12 {
			return p
		}
		stepX := (jtj22*jtr1 - jtj12*jtr2) / det
		stepY := (jtj11*jtr2 - jtj12*jtr1) / det
		p.X -= stepX
		p.Y -= stepY
		if math.Abs(stepX)+math.Abs(stepY) < convergedStep {
			break
		}
	}
	return p
}

// RobustMultilaterate estimates a position while discarding inconsistent
// references, tolerating even *coordinated* malicious minorities: a
// least-median-of-squares search over reference triples picks the
// candidate position whose median residual is smallest, references whose
// residual against that candidate exceeds maxResidual are discarded, and
// the survivors are refit. It returns the estimate and the indices of the
// references kept.
//
// This is the §2.3 "constraints between estimated measurements and
// calculated measurements" applied at the solver: a promoted or
// compromised beacon whose declared position disagrees with the geometry
// of the honest majority is excluded from the fix. Correctness requires
// an honest majority; LMS's breakdown point is just under 50%.
func RobustMultilaterate(refs []Reference, maxResidual float64) (geo.Point, []int, error) {
	if maxResidual <= 0 {
		return geo.Point{}, nil, fmt.Errorf("localization: maxResidual %v must be positive", maxResidual)
	}
	if len(refs) < 3 {
		return geo.Point{}, nil, fmt.Errorf("%w: have %d", ErrTooFew, len(refs))
	}
	n := len(refs)
	best, err := Multilaterate(refs)
	if err != nil && n == 3 {
		return geo.Point{}, nil, err
	}
	bestMed := math.Inf(1)
	if err == nil {
		bestMed = medianResidual(best, refs)
	}
	// Exhaustive triples for the reference counts this system sees
	// (node neighborhoods, ≤ a few dozen); C(n,3) stays tractable.
	tri := make([]Reference, 3)
	for i := 0; i < n-2; i++ {
		for j := i + 1; j < n-1; j++ {
			for k := j + 1; k < n; k++ {
				tri[0], tri[1], tri[2] = refs[i], refs[j], refs[k]
				cand, err := Multilaterate(tri)
				if err != nil {
					continue
				}
				if med := medianResidual(cand, refs); med < bestMed {
					bestMed, best = med, cand
				}
			}
		}
	}
	if math.IsInf(bestMed, 1) {
		return geo.Point{}, nil, ErrDegenerate
	}
	// Keep the references consistent with the LMS candidate, refit.
	var kept []int
	var keptRefs []Reference
	for i, r := range refs {
		if math.Abs(best.Dist(r.Loc)-r.Dist) <= maxResidual {
			kept = append(kept, i)
			keptRefs = append(keptRefs, r)
		}
	}
	if len(keptRefs) < 3 {
		// Too few consistent references to refit; the LMS candidate is
		// the best available answer, with everything it agrees with.
		return best, kept, nil
	}
	refit, err := Multilaterate(keptRefs)
	if err != nil {
		return best, kept, nil
	}
	return refit, kept, nil
}

func medianResidual(p geo.Point, refs []Reference) float64 {
	res := make([]float64, len(refs))
	for i, r := range refs {
		res[i] = math.Abs(p.Dist(r.Loc) - r.Dist)
	}
	// Insertion sort: reference sets are small.
	for i := 1; i < len(res); i++ {
		for j := i; j > 0 && res[j-1] > res[j]; j-- {
			res[j-1], res[j] = res[j], res[j-1]
		}
	}
	return res[len(res)/2]
}

// MinMax estimates a position with the bounding-box method (Savvides et
// al. n-hop multilateration primitive): intersect the axis-aligned boxes
// [loc_i - d_i, loc_i + d_i] and return the intersection's center. Cheap
// and robust, less accurate than Multilaterate.
func MinMax(refs []Reference) (geo.Point, error) {
	if len(refs) < 3 {
		return geo.Point{}, fmt.Errorf("%w: have %d", ErrTooFew, len(refs))
	}
	xmin, ymin := math.Inf(-1), math.Inf(-1)
	xmax, ymax := math.Inf(1), math.Inf(1)
	for _, r := range refs {
		xmin = math.Max(xmin, r.Loc.X-r.Dist)
		ymin = math.Max(ymin, r.Loc.Y-r.Dist)
		xmax = math.Min(xmax, r.Loc.X+r.Dist)
		ymax = math.Min(ymax, r.Loc.Y+r.Dist)
	}
	return geo.Point{X: (xmin + xmax) / 2, Y: (ymin + ymax) / 2}, nil
}

// Centroid estimates a position as the mean of the beacon locations,
// ignoring distances (Bulusu, Heidemann & Estrin's GPS-less coarse
// localization). The range-free baseline.
func Centroid(refs []Reference) (geo.Point, error) {
	if len(refs) == 0 {
		return geo.Point{}, fmt.Errorf("%w: have 0", ErrTooFew)
	}
	var sum geo.Point
	for _, r := range refs {
		sum = sum.Add(r.Loc)
	}
	return sum.Scale(1 / float64(len(refs))), nil
}

// Residual returns the mean absolute distance residual of position p
// against the references: a consistency measure a node can compute
// without knowing its true location.
func Residual(p geo.Point, refs []Reference) float64 {
	if len(refs) == 0 {
		return 0
	}
	var sum float64
	for _, r := range refs {
		sum += math.Abs(p.Dist(r.Loc) - r.Dist)
	}
	return sum / float64(len(refs))
}
