package localization

import (
	"fmt"

	"beaconsec/internal/geo"
	"beaconsec/internal/rng"
)

// This file implements iterative (multi-tier) localization — the paper's
// §2.3 extension scenario: "a non-beacon node may become a beacon node to
// supply location references once it discovers its own location.
// Localization error may accumulate ... however, there are still
// constraints between estimated measurements and calculated measurements
// ... we can still apply the proposed detector."
//
// Nodes outside direct beacon coverage localize from already-localized
// neighbors (Savvides et al.'s n-hop multilateration), and the
// distance-consistency check runs tier by tier with a slack that grows
// with the reference's accumulated uncertainty.

// IterativeConfig parameterizes multi-tier localization.
type IterativeConfig struct {
	// Range is the radio range: only neighbors within it supply
	// references.
	Range float64
	// MaxDistError is the per-measurement ranging error bound ε.
	MaxDistError float64
	// MaxRounds bounds promotion rounds; zero selects 8.
	MaxRounds int
	// MinReferences per estimate; zero selects 3.
	MinReferences int
	// MaxReferences caps how many references a node uses (the nearest
	// by measured distance); zero selects 12. Bounds the robust
	// solver's subset search and matches real nodes, which stop
	// collecting once they have enough references.
	MaxReferences int
	// DetectMalicious runs the consistency check against promoted
	// references: a reference whose measured distance disagrees with
	// the requester's running estimate by more than ε plus both sides'
	// accumulated uncertainty is discarded.
	DetectMalicious bool
	// Field, when non-empty, clamps estimates to the deployment region
	// (nodes know they are inside the field); it bounds the damage of
	// mirror-ambiguous fixes from one-sided reference geometry.
	Field geo.Rect
}

// IterativeResult reports a multi-tier localization pass.
type IterativeResult struct {
	// Estimate / Localized / Tier are indexed by node; Tier is 0 for
	// seed beacons, k for nodes localized in round k, -1 for never.
	Estimate  []geo.Point
	Localized []bool
	Tier      []int
	// Uncertainty is each node's accumulated error bound.
	Uncertainty []float64
	// Discarded counts references rejected by the consistency check.
	Discarded int
}

// MeanErrorByTier returns the mean true-position error per tier (tier 0
// is exact by construction).
func (r IterativeResult) MeanErrorByTier(truth []geo.Point) []float64 {
	maxTier := 0
	for _, tr := range r.Tier {
		if tr > maxTier {
			maxTier = tr
		}
	}
	sums := make([]float64, maxTier+1)
	counts := make([]int, maxTier+1)
	for i, tr := range r.Tier {
		if tr < 0 || !r.Localized[i] {
			continue
		}
		sums[tr] += r.Estimate[i].Dist(truth[i])
		counts[tr]++
	}
	out := make([]float64, maxTier+1)
	for t := range out {
		if counts[t] > 0 {
			out[t] = sums[t] / float64(counts[t])
		}
	}
	return out
}

// LocalizedCount returns how many non-seed nodes localized.
func (r IterativeResult) LocalizedCount() int {
	n := 0
	for i, ok := range r.Localized {
		if ok && r.Tier[i] > 0 {
			n++
		}
	}
	return n
}

// IterativeLocalize runs multi-tier localization over true node positions
// truth, where isBeacon marks tier-0 seed beacons (which know their exact
// locations) and liars marks nodes that, once promoted, declare positions
// offset by lieOffset. Distance measurements carry uniform error within
// ±cfg.MaxDistError, drawn from src.
func IterativeLocalize(truth []geo.Point, isBeacon []bool, liars []bool,
	lieOffset geo.Point, cfg IterativeConfig, src *rng.Source) IterativeResult {
	n := len(truth)
	if len(isBeacon) != n || len(liars) != n {
		panic(fmt.Sprintf("localization: length mismatch truth=%d beacons=%d liars=%d",
			n, len(isBeacon), len(liars)))
	}
	if cfg.MaxRounds == 0 {
		cfg.MaxRounds = 8
	}
	if cfg.MinReferences == 0 {
		cfg.MinReferences = 3
	}
	if cfg.MaxReferences == 0 {
		cfg.MaxReferences = 12
	}
	res := IterativeResult{
		Estimate:    make([]geo.Point, n),
		Localized:   make([]bool, n),
		Tier:        make([]int, n),
		Uncertainty: make([]float64, n),
	}
	for i := range truth {
		res.Tier[i] = -1
		if isBeacon[i] {
			res.Estimate[i] = truth[i]
			res.Localized[i] = true
			res.Tier[i] = 0
		}
	}

	declared := func(j int) geo.Point {
		if liars[j] {
			return res.Estimate[j].Add(lieOffset)
		}
		return res.Estimate[j]
	}

	for round := 1; round <= cfg.MaxRounds; round++ {
		progressed := false
		// Collect this round's promotions after scanning, so a round
		// uses only previous tiers (deterministic, order-independent).
		type pending struct {
			idx int
			est geo.Point
			unc float64
		}
		var newly []pending
		for i := range truth {
			if res.Localized[i] {
				continue
			}
			var refs []Reference
			var uncs []float64
			for j := range truth {
				if j == i || !res.Localized[j] {
					continue
				}
				d := truth[i].Dist(truth[j])
				if d > cfg.Range {
					continue
				}
				measured := d + src.Uniform(-cfg.MaxDistError, cfg.MaxDistError)
				refs = append(refs, Reference{Loc: declared(j), Dist: measured})
				uncs = append(uncs, res.Uncertainty[j])
			}
			if len(refs) < cfg.MinReferences {
				continue
			}
			if len(refs) > cfg.MaxReferences {
				// Keep the nearest references by measured distance
				// (selection sort prefix: reference counts are small).
				for a := 0; a < cfg.MaxReferences; a++ {
					minIdx := a
					for b := a + 1; b < len(refs); b++ {
						if refs[b].Dist < refs[minIdx].Dist {
							minIdx = b
						}
					}
					refs[a], refs[minIdx] = refs[minIdx], refs[a]
					uncs[a], uncs[minIdx] = uncs[minIdx], uncs[a]
				}
				refs = refs[:cfg.MaxReferences]
				uncs = uncs[:cfg.MaxReferences]
			}
			var est geo.Point
			var err error
			worstUnc := 0.0
			if cfg.DetectMalicious {
				// §2.3: the consistency constraints still hold between
				// estimated measurements and calculated measurements;
				// trim references whose residual exceeds the ranging
				// error plus the tier's accumulated uncertainty.
				maxUnc := 0.0
				for _, u := range uncs {
					if u > maxUnc {
						maxUnc = u
					}
				}
				slack := 3*cfg.MaxDistError + 2*maxUnc
				var kept []int
				est, kept, err = RobustMultilaterate(refs, slack)
				if err == nil {
					res.Discarded += len(refs) - len(kept)
					for _, k := range kept {
						if uncs[k] > worstUnc {
							worstUnc = uncs[k]
						}
					}
				}
			} else {
				est, err = Multilaterate(refs)
				for _, u := range uncs {
					if u > worstUnc {
						worstUnc = u
					}
				}
			}
			if err != nil {
				continue
			}
			if cfg.Field.Width() > 0 && cfg.Field.Height() > 0 {
				est = cfg.Field.Clamp(est)
			}
			newly = append(newly, pending{
				idx: i,
				est: est,
				unc: worstUnc + cfg.MaxDistError,
			})
			progressed = true
		}
		for _, p := range newly {
			res.Estimate[p.idx] = p.est
			res.Localized[p.idx] = true
			res.Tier[p.idx] = round
			res.Uncertainty[p.idx] = p.unc
		}
		if !progressed {
			break
		}
	}
	return res
}
