package localization

import (
	"errors"
	"math"
	"testing"

	"beaconsec/internal/geo"
	"beaconsec/internal/rng"
)

func bearingRefs(truth geo.Point, beacons []geo.Point, noise func(i int) float64) []BearingReference {
	refs := make([]BearingReference, len(beacons))
	for i, b := range beacons {
		refs[i] = BearingReference{Loc: b, Bearing: NormalizeAngle(BearingTo(truth, b) + noise(i))}
	}
	return refs
}

func TestTriangulateExactRecovery(t *testing.T) {
	tests := []struct {
		name    string
		truth   geo.Point
		beacons []geo.Point
	}{
		{"two beacons", geo.Point{X: 40, Y: 30}, []geo.Point{{X: 0, Y: 0}, {X: 100, Y: 0}}},
		{"triangle", geo.Point{X: 50, Y: 30}, triangle()},
		{"outside hull", geo.Point{X: 200, Y: 150}, triangle()},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Triangulate(bearingRefs(tt.truth, tt.beacons, func(int) float64 { return 0 }))
			if err != nil {
				t.Fatal(err)
			}
			if d := got.Dist(tt.truth); d > 1e-6 {
				t.Errorf("estimate %v off truth %v by %v", got, tt.truth, d)
			}
		})
	}
}

func TestTriangulateExactRecoveryProperty(t *testing.T) {
	src := rng.New(51)
	for trial := 0; trial < 500; trial++ {
		nb := 2 + src.Intn(6)
		beacons := make([]geo.Point, nb)
		for i := range beacons {
			beacons[i] = geo.Point{X: src.Uniform(0, 500), Y: src.Uniform(0, 500)}
		}
		truth := geo.Point{X: src.Uniform(0, 500), Y: src.Uniform(0, 500)}
		got, err := Triangulate(bearingRefs(truth, beacons, func(int) float64 { return 0 }))
		if errors.Is(err, ErrDegenerate) {
			continue // parallel bearings; legitimately rejected
		}
		if err != nil {
			t.Fatal(err)
		}
		if d := got.Dist(truth); d > 1e-3 {
			t.Fatalf("trial %d: estimate %v off truth %v by %v", trial, got, truth, d)
		}
	}
}

func TestTriangulateNoisyBearings(t *testing.T) {
	src := rng.New(52)
	beacons := []geo.Point{{X: 0, Y: 0}, {X: 150, Y: 0}, {X: 0, Y: 150}, {X: 150, Y: 150}}
	const maxAngle = 0.05 // ~3 degrees
	worst := 0.0
	for trial := 0; trial < 200; trial++ {
		truth := geo.Point{X: src.Uniform(30, 120), Y: src.Uniform(30, 120)}
		refs := bearingRefs(truth, beacons, func(int) float64 { return src.Uniform(-maxAngle, maxAngle) })
		got, err := Triangulate(refs)
		if err != nil {
			t.Fatal(err)
		}
		worst = math.Max(worst, got.Dist(truth))
	}
	// Error scale ≈ range × angle error; at ~100 ft baselines and 0.05
	// rad, a handful of feet.
	if worst > 20 {
		t.Errorf("worst AoA estimate error %v ft at ±%v rad", worst, maxAngle)
	}
}

func TestTriangulateDegenerate(t *testing.T) {
	// Two beacons seen along the same bearing: parallel lines.
	refs := []BearingReference{
		{Loc: geo.Point{X: 100, Y: 0}, Bearing: 0},
		{Loc: geo.Point{X: 200, Y: 0}, Bearing: 0},
	}
	if _, err := Triangulate(refs); !errors.Is(err, ErrDegenerate) {
		t.Errorf("parallel bearings: %v, want ErrDegenerate", err)
	}
}

func TestTriangulateTooFew(t *testing.T) {
	refs := []BearingReference{{Loc: geo.Point{X: 1, Y: 1}, Bearing: 0.5}}
	if _, err := Triangulate(refs); !errors.Is(err, ErrTooFew) {
		t.Errorf("1 bearing: %v, want ErrTooFew", err)
	}
}

func TestNormalizeAngle(t *testing.T) {
	tests := []struct{ in, want float64 }{
		{0, 0},
		{math.Pi, math.Pi},
		{-math.Pi, math.Pi},
		{3 * math.Pi, math.Pi},
		{-math.Pi / 2, -math.Pi / 2},
		{2 * math.Pi, 0},
	}
	for _, tt := range tests {
		if got := NormalizeAngle(tt.in); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("NormalizeAngle(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestAngleDiffWrapAround(t *testing.T) {
	if d := AngleDiff(math.Pi-0.01, -math.Pi+0.01); math.Abs(d-0.02) > 1e-9 {
		t.Errorf("wrap-around diff = %v, want 0.02", d)
	}
	if d := AngleDiff(0.3, 0.1); math.Abs(d-0.2) > 1e-12 {
		t.Errorf("plain diff = %v", d)
	}
}

func TestBearingTo(t *testing.T) {
	p := geo.Point{X: 0, Y: 0}
	tests := []struct {
		q    geo.Point
		want float64
	}{
		{geo.Point{X: 1, Y: 0}, 0},
		{geo.Point{X: 0, Y: 1}, math.Pi / 2},
		{geo.Point{X: -1, Y: 0}, math.Pi},
		{geo.Point{X: 1, Y: 1}, math.Pi / 4},
	}
	for _, tt := range tests {
		if got := BearingTo(p, tt.q); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("BearingTo(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
}
