package localization

import (
	"errors"
	"math"
	"testing"

	"beaconsec/internal/geo"
	"beaconsec/internal/rng"
)

func refsFor(truth geo.Point, beacons []geo.Point, noise func(i int) float64) []Reference {
	refs := make([]Reference, len(beacons))
	for i, b := range beacons {
		refs[i] = Reference{Loc: b, Dist: truth.Dist(b) + noise(i)}
	}
	return refs
}

func noNoise(int) float64 { return 0 }

func triangle() []geo.Point {
	return []geo.Point{{X: 0, Y: 0}, {X: 100, Y: 0}, {X: 50, Y: 90}}
}

func TestMultilaterateExactRecovery(t *testing.T) {
	tests := []struct {
		name    string
		truth   geo.Point
		beacons []geo.Point
	}{
		{"inside triangle", geo.Point{X: 50, Y: 30}, triangle()},
		{"outside hull", geo.Point{X: 200, Y: 200}, triangle()},
		{"at a beacon", geo.Point{X: 0, Y: 0}, triangle()},
		{"four beacons", geo.Point{X: 42, Y: 17}, append(triangle(), geo.Point{X: 0, Y: 100})},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Multilaterate(refsFor(tt.truth, tt.beacons, noNoise))
			if err != nil {
				t.Fatal(err)
			}
			if d := got.Dist(tt.truth); d > 1e-6 {
				t.Errorf("estimate %v off truth %v by %v", got, tt.truth, d)
			}
		})
	}
}

func TestMultilaterateExactRecoveryProperty(t *testing.T) {
	src := rng.New(17)
	for trial := 0; trial < 500; trial++ {
		nb := 3 + src.Intn(8)
		beacons := make([]geo.Point, nb)
		for i := range beacons {
			beacons[i] = geo.Point{X: src.Uniform(0, 1000), Y: src.Uniform(0, 1000)}
		}
		truth := geo.Point{X: src.Uniform(0, 1000), Y: src.Uniform(0, 1000)}
		got, err := Multilaterate(refsFor(truth, beacons, noNoise))
		if errors.Is(err, ErrDegenerate) {
			continue // random collinear triple; legitimately rejected
		}
		if err != nil {
			t.Fatal(err)
		}
		if d := got.Dist(truth); d > 1e-3 {
			t.Fatalf("trial %d: estimate %v off truth %v by %v (beacons %v)",
				trial, got, truth, d, beacons)
		}
	}
}

func TestMultilaterateBoundedNoise(t *testing.T) {
	// With ranging error bounded by ±10 ft and well-spread beacons, the
	// estimate must stay within a small multiple of the error bound.
	src := rng.New(23)
	const maxErr = 10.0
	beacons := []geo.Point{{X: 0, Y: 0}, {X: 150, Y: 0}, {X: 0, Y: 150}, {X: 150, Y: 150}, {X: 75, Y: 75}}
	worst := 0.0
	for trial := 0; trial < 300; trial++ {
		truth := geo.Point{X: src.Uniform(20, 130), Y: src.Uniform(20, 130)}
		refs := refsFor(truth, beacons, func(int) float64 { return src.Uniform(-maxErr, maxErr) })
		got, err := Multilaterate(refs)
		if err != nil {
			t.Fatal(err)
		}
		worst = math.Max(worst, got.Dist(truth))
	}
	if worst > 2.5*maxErr {
		t.Errorf("worst-case estimate error %v with ±%v ranging error", worst, maxErr)
	}
}

func TestMultilaterateMaliciousReferenceSkews(t *testing.T) {
	// The attack the paper defends against: one malicious reference with
	// a large distance bias must pull the estimate away from the truth —
	// otherwise detecting malicious beacons would be pointless.
	truth := geo.Point{X: 75, Y: 75}
	beacons := []geo.Point{{X: 0, Y: 0}, {X: 150, Y: 0}, {X: 0, Y: 150}, {X: 150, Y: 150}}
	refs := refsFor(truth, beacons, noNoise)
	clean, err := Multilaterate(refs)
	if err != nil {
		t.Fatal(err)
	}
	refs[0].Dist += 80 // malicious enlargement
	skewed, err := Multilaterate(refs)
	if err != nil {
		t.Fatal(err)
	}
	if d := skewed.Dist(clean); d < 10 {
		t.Errorf("malicious reference moved estimate only %v ft", d)
	}
}

func TestMultilaterateTooFew(t *testing.T) {
	refs := refsFor(geo.Point{X: 1, Y: 1}, triangle()[:2], noNoise)
	if _, err := Multilaterate(refs); !errors.Is(err, ErrTooFew) {
		t.Errorf("2 refs: err = %v, want ErrTooFew", err)
	}
}

func TestMultilaterateCollinear(t *testing.T) {
	beacons := []geo.Point{{X: 0, Y: 0}, {X: 50, Y: 0}, {X: 100, Y: 0}}
	refs := refsFor(geo.Point{X: 30, Y: 40}, beacons, noNoise)
	if _, err := Multilaterate(refs); !errors.Is(err, ErrDegenerate) {
		t.Errorf("collinear beacons: err = %v, want ErrDegenerate", err)
	}
}

func TestMinMax(t *testing.T) {
	truth := geo.Point{X: 60, Y: 55}
	beacons := []geo.Point{{X: 0, Y: 0}, {X: 120, Y: 0}, {X: 0, Y: 120}, {X: 120, Y: 120}}
	got, err := MinMax(refsFor(truth, beacons, noNoise))
	if err != nil {
		t.Fatal(err)
	}
	if d := got.Dist(truth); d > 25 {
		t.Errorf("MinMax estimate %v off truth %v by %v", got, truth, d)
	}
	if _, err := MinMax(nil); !errors.Is(err, ErrTooFew) {
		t.Errorf("MinMax(nil) err = %v", err)
	}
}

func TestCentroid(t *testing.T) {
	refs := []Reference{
		{Loc: geo.Point{X: 0, Y: 0}},
		{Loc: geo.Point{X: 90, Y: 0}},
		{Loc: geo.Point{X: 0, Y: 90}},
	}
	got, err := Centroid(refs)
	if err != nil {
		t.Fatal(err)
	}
	if want := (geo.Point{X: 30, Y: 30}); got.Dist(want) > 1e-9 {
		t.Errorf("Centroid = %v, want %v", got, want)
	}
	if _, err := Centroid(nil); !errors.Is(err, ErrTooFew) {
		t.Errorf("Centroid(nil) err = %v", err)
	}
}

func TestCentroidIgnoresDistances(t *testing.T) {
	refs := []Reference{
		{Loc: geo.Point{X: 0, Y: 0}, Dist: 1},
		{Loc: geo.Point{X: 90, Y: 0}, Dist: 1e9},
		{Loc: geo.Point{X: 0, Y: 90}, Dist: -5},
	}
	got, err := Centroid(refs)
	if err != nil {
		t.Fatal(err)
	}
	if want := (geo.Point{X: 30, Y: 30}); got.Dist(want) > 1e-9 {
		t.Errorf("Centroid = %v, want %v (range-free)", got, want)
	}
}

func TestResidual(t *testing.T) {
	truth := geo.Point{X: 40, Y: 40}
	refs := refsFor(truth, triangle(), noNoise)
	if r := Residual(truth, refs); r > 1e-9 {
		t.Errorf("Residual at truth = %v, want 0", r)
	}
	if r := Residual(geo.Point{X: 400, Y: 400}, refs); r < 100 {
		t.Errorf("Residual far from truth = %v, want large", r)
	}
	if r := Residual(truth, nil); r != 0 {
		t.Errorf("Residual with no refs = %v", r)
	}
}

func TestSolverComparison(t *testing.T) {
	// Multilateration should beat the min-max and centroid baselines on
	// average under bounded noise — the reason the paper's schemes use
	// distance-based estimation at all.
	src := rng.New(31)
	beacons := []geo.Point{{X: 0, Y: 0}, {X: 150, Y: 0}, {X: 0, Y: 150}, {X: 150, Y: 150}, {X: 75, Y: 0}}
	var errML, errMM, errC float64
	const trials = 200
	for i := 0; i < trials; i++ {
		truth := geo.Point{X: src.Uniform(30, 120), Y: src.Uniform(30, 120)}
		refs := refsFor(truth, beacons, func(int) float64 { return src.Uniform(-10, 10) })
		ml, err := Multilaterate(refs)
		if err != nil {
			t.Fatal(err)
		}
		mm, err := MinMax(refs)
		if err != nil {
			t.Fatal(err)
		}
		c, err := Centroid(refs)
		if err != nil {
			t.Fatal(err)
		}
		errML += ml.Dist(truth)
		errMM += mm.Dist(truth)
		errC += c.Dist(truth)
	}
	if errML >= errMM {
		t.Errorf("multilateration (%v) not better than min-max (%v)", errML/trials, errMM/trials)
	}
	if errML >= errC {
		t.Errorf("multilateration (%v) not better than centroid (%v)", errML/trials, errC/trials)
	}
}

func BenchmarkMultilaterate(b *testing.B) {
	truth := geo.Point{X: 60, Y: 45}
	beacons := []geo.Point{{X: 0, Y: 0}, {X: 150, Y: 0}, {X: 0, Y: 150}, {X: 150, Y: 150}, {X: 75, Y: 75}, {X: 30, Y: 120}}
	refs := refsFor(truth, beacons, func(i int) float64 { return float64(i%3) - 1 })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Multilaterate(refs); err != nil {
			b.Fatal(err)
		}
	}
}

func TestRobustMultilaterateDropsOutlier(t *testing.T) {
	truth := geo.Point{X: 75, Y: 75}
	beacons := []geo.Point{{X: 0, Y: 0}, {X: 150, Y: 0}, {X: 0, Y: 150}, {X: 150, Y: 150}, {X: 75, Y: 0}}
	refs := refsFor(truth, beacons, noNoise)
	refs[2].Dist += 100 // one malicious enlargement
	est, kept, err := RobustMultilaterate(refs, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != 4 {
		t.Fatalf("kept %v, want the 4 honest references", kept)
	}
	for _, k := range kept {
		if k == 2 {
			t.Fatal("malicious reference index 2 survived trimming")
		}
	}
	if d := est.Dist(truth); d > 1 {
		t.Errorf("robust estimate off by %v", d)
	}
}

func TestRobustMultilaterateKeepsCleanSet(t *testing.T) {
	truth := geo.Point{X: 40, Y: 60}
	refs := refsFor(truth, triangle(), noNoise)
	est, kept, err := RobustMultilaterate(refs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != 3 {
		t.Errorf("kept %v from a clean set", kept)
	}
	if est.Dist(truth) > 1e-6 {
		t.Errorf("clean robust estimate off by %v", est.Dist(truth))
	}
}

func TestRobustMultilaterateThreeRefsOneLiar(t *testing.T) {
	// With only three references nothing can be cross-checked reliably;
	// the solver still returns its best candidate rather than failing,
	// and reports which references agree with it.
	truth := geo.Point{X: 40, Y: 60}
	refs := refsFor(truth, triangle(), noNoise)
	refs[0].Dist += 500
	est, kept, err := RobustMultilaterate(refs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) > 3 {
		t.Errorf("kept %d of 3 references", len(kept))
	}
	_ = est // no accuracy guarantee is possible here
}

func TestRobustMultilaterateTooFew(t *testing.T) {
	refs := refsFor(geo.Point{X: 1, Y: 1}, triangle()[:2], noNoise)
	if _, _, err := RobustMultilaterate(refs, 10); !errors.Is(err, ErrTooFew) {
		t.Errorf("2 refs: err = %v, want ErrTooFew", err)
	}
}

func TestRobustMultilaterateInvalidResidual(t *testing.T) {
	refs := refsFor(geo.Point{X: 1, Y: 1}, triangle(), noNoise)
	if _, _, err := RobustMultilaterate(refs, 0); err == nil {
		t.Error("maxResidual 0 accepted")
	}
}

func TestRobustMultilaterateMajorityAttack(t *testing.T) {
	// With 2 liars out of 6 agreeing with each other, the honest
	// majority still wins.
	truth := geo.Point{X: 75, Y: 75}
	beacons := []geo.Point{{X: 0, Y: 0}, {X: 150, Y: 0}, {X: 0, Y: 150}, {X: 150, Y: 150}, {X: 75, Y: 0}, {X: 0, Y: 75}}
	refs := refsFor(truth, beacons, noNoise)
	refs[0].Dist += 80
	refs[1].Dist += 80
	est, kept, err := RobustMultilaterate(refs, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != 4 {
		t.Errorf("kept %d, want 4 honest", len(kept))
	}
	if d := est.Dist(truth); d > 1 {
		t.Errorf("estimate off by %v under 2-liar attack", d)
	}
}
