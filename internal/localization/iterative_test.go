package localization

import (
	"testing"

	"beaconsec/internal/geo"
	"beaconsec/internal/rng"
)

// chainTopology builds a field where only the left strip has seed
// beacons, so the right side must localize through promoted tiers.
func chainTopology(seed uint64, n int) (truth []geo.Point, isBeacon, liars []bool) {
	src := rng.New(seed)
	truth = make([]geo.Point, n)
	isBeacon = make([]bool, n)
	liars = make([]bool, n)
	for i := range truth {
		truth[i] = geo.Point{X: src.Uniform(0, 800), Y: src.Uniform(0, 300)}
		// Seed beacons in the leftmost strip only.
		if truth[i].X < 150 && i%2 == 0 {
			isBeacon[i] = true
		}
	}
	return truth, isBeacon, liars
}

func defaultIterCfg() IterativeConfig {
	return IterativeConfig{Range: 160, MaxDistError: 5}
}

func TestIterativeReachesBeyondBeaconCoverage(t *testing.T) {
	truth, isBeacon, liars := chainTopology(1, 150)
	res := IterativeLocalize(truth, isBeacon, liars, geo.Point{}, defaultIterCfg(), rng.New(2))
	if res.LocalizedCount() == 0 {
		t.Fatal("no node localized beyond the seeds")
	}
	// Some node far from all seed beacons (X > 400) must have localized
	// through intermediate tiers.
	farLocalized := 0
	for i, ok := range res.Localized {
		if ok && res.Tier[i] > 1 && truth[i].X > 400 {
			farLocalized++
		}
	}
	if farLocalized == 0 {
		t.Error("no far node localized through promotion (multi-tier broken)")
	}
}

func TestIterativeErrorAccumulatesWithTier(t *testing.T) {
	// The paper's §2.3 observation: "localization error may accumulate
	// when more and more non-beacon nodes turn into beacon nodes".
	truth, isBeacon, liars := chainTopology(3, 200)
	res := IterativeLocalize(truth, isBeacon, liars, geo.Point{}, defaultIterCfg(), rng.New(4))
	errs := res.MeanErrorByTier(truth)
	if len(errs) < 3 {
		t.Skipf("topology produced only %d tiers", len(errs))
	}
	if errs[0] != 0 {
		t.Errorf("tier-0 error %v, want 0", errs[0])
	}
	last := errs[len(errs)-1]
	if last <= errs[1] {
		t.Errorf("no accumulation: tier-1 %v vs last tier %v", errs[1], last)
	}
}

func TestIterativeTierZeroOnlyBeacons(t *testing.T) {
	truth, isBeacon, liars := chainTopology(5, 100)
	res := IterativeLocalize(truth, isBeacon, liars, geo.Point{}, defaultIterCfg(), rng.New(6))
	for i := range truth {
		if isBeacon[i] {
			if res.Tier[i] != 0 || res.Estimate[i] != truth[i] {
				t.Fatalf("seed beacon %d: tier %d estimate %v", i, res.Tier[i], res.Estimate[i])
			}
		} else if res.Tier[i] == 0 {
			t.Fatalf("non-beacon %d assigned tier 0", i)
		}
	}
}

func TestIterativeDetectorDiscardsLyingPromotedNodes(t *testing.T) {
	truth, isBeacon, liars := chainTopology(7, 200)
	// A fraction of non-beacon nodes lie about their position once
	// promoted.
	src := rng.New(8)
	for i := range liars {
		if !isBeacon[i] && src.Bool(0.15) {
			liars[i] = true
		}
	}
	lie := geo.Point{X: 120, Y: -90}

	cfgOff := defaultIterCfg()
	resOff := IterativeLocalize(truth, isBeacon, liars, lie, cfgOff, rng.New(9))

	cfgOn := cfgOff
	cfgOn.DetectMalicious = true
	resOn := IterativeLocalize(truth, isBeacon, liars, lie, cfgOn, rng.New(9))

	if resOn.Discarded == 0 {
		t.Fatal("detector discarded nothing despite lying references")
	}
	meanAll := func(r IterativeResult) float64 {
		var sum float64
		n := 0
		for i, ok := range r.Localized {
			if ok && r.Tier[i] > 0 {
				sum += r.Estimate[i].Dist(truth[i])
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}
	errOff, errOn := meanAll(resOff), meanAll(resOn)
	if errOn >= errOff {
		t.Errorf("consistency filtering did not reduce error: %v (on) vs %v (off)", errOn, errOff)
	}
}

func TestIterativeNoBeaconsLocalizesNothing(t *testing.T) {
	truth := []geo.Point{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 0, Y: 10}, {X: 10, Y: 10}}
	res := IterativeLocalize(truth, make([]bool, 4), make([]bool, 4), geo.Point{},
		defaultIterCfg(), rng.New(1))
	if res.LocalizedCount() != 0 {
		t.Errorf("localized %d nodes with no seeds", res.LocalizedCount())
	}
}

func TestIterativeMismatchedLengthsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	IterativeLocalize(make([]geo.Point, 3), make([]bool, 2), make([]bool, 3),
		geo.Point{}, defaultIterCfg(), rng.New(1))
}

func TestIterativeDeterministic(t *testing.T) {
	truth, isBeacon, liars := chainTopology(11, 120)
	a := IterativeLocalize(truth, isBeacon, liars, geo.Point{}, defaultIterCfg(), rng.New(12))
	b := IterativeLocalize(truth, isBeacon, liars, geo.Point{}, defaultIterCfg(), rng.New(12))
	for i := range a.Estimate {
		if a.Estimate[i] != b.Estimate[i] || a.Tier[i] != b.Tier[i] {
			t.Fatalf("node %d diverged between identical runs", i)
		}
	}
}
