package localization

import (
	"math"
	"testing"

	"beaconsec/internal/geo"
	"beaconsec/internal/rng"
)

func dvTopology(seed uint64, n int, beaconFrac float64) ([]geo.Point, []bool) {
	src := rng.New(seed)
	truth := make([]geo.Point, n)
	isBeacon := make([]bool, n)
	for i := range truth {
		truth[i] = geo.Point{X: src.Uniform(0, 600), Y: src.Uniform(0, 600)}
		isBeacon[i] = src.Bool(beaconFrac)
	}
	return truth, isBeacon
}

func TestDVHopLocalizesMostNodes(t *testing.T) {
	truth, isBeacon := dvTopology(1, 300, 0.1)
	res := DVHop(truth, isBeacon, DVHopConfig{Range: 120})
	localized := 0
	total := 0
	for i := range truth {
		if isBeacon[i] {
			continue
		}
		total++
		if res.Localized[i] {
			localized++
		}
	}
	if localized < total*8/10 {
		t.Errorf("DV-hop localized %d/%d non-beacons", localized, total)
	}
	if res.HopDist <= 0 || res.HopDist > 120 {
		t.Errorf("HopDist = %v, want within (0, range]", res.HopDist)
	}
}

func TestDVHopAccuracyScale(t *testing.T) {
	// Range-free accuracy is coarse: mean error should land within a
	// couple of hop distances, far above ranging-based multilateration
	// but far below random guessing.
	truth, isBeacon := dvTopology(2, 300, 0.12)
	res := DVHop(truth, isBeacon, DVHopConfig{Range: 120})
	mean := res.MeanError(truth, isBeacon)
	if math.IsNaN(mean) {
		t.Fatal("nothing localized")
	}
	if mean > 2.5*res.HopDist {
		t.Errorf("mean error %v vs hop distance %v", mean, res.HopDist)
	}
	if mean < 1 {
		t.Errorf("mean error %v suspiciously exact for a range-free scheme", mean)
	}
}

func TestDVHopRangeBasedBeatsIt(t *testing.T) {
	// The motivation for range-based localization: with the same
	// beacons, RSSI multilateration (±10 ft error) must beat DV-hop.
	truth, isBeacon := dvTopology(3, 300, 0.12)
	dv := DVHop(truth, isBeacon, DVHopConfig{Range: 120})
	dvErr := dv.MeanError(truth, isBeacon)

	src := rng.New(4)
	var rbSum float64
	rbCount := 0
	for i := range truth {
		if isBeacon[i] {
			continue
		}
		var refs []Reference
		for j := range truth {
			if !isBeacon[j] || truth[i].Dist(truth[j]) > 120 {
				continue
			}
			refs = append(refs, Reference{Loc: truth[j], Dist: truth[i].Dist(truth[j]) + src.Uniform(-10, 10)})
		}
		if len(refs) < 3 {
			continue
		}
		est, err := Multilaterate(refs)
		if err != nil {
			continue
		}
		// Nodes know the field: clamp the rare mirror-ambiguous fix
		// (few references, one-sided geometry) like deployed nodes do.
		est = geo.Square(600).Clamp(est)
		rbSum += est.Dist(truth[i])
		rbCount++
	}
	if rbCount == 0 {
		t.Skip("no range-based fixes possible this seed")
	}
	rbErr := rbSum / float64(rbCount)
	if rbErr >= dvErr {
		t.Errorf("range-based (%v ft) not better than DV-hop (%v ft)", rbErr, dvErr)
	}
}

func TestDVHopDisconnectedBeacons(t *testing.T) {
	// Two beacons out of radio contact: no hop-distance estimate, no
	// localization.
	truth := []geo.Point{{X: 0, Y: 0}, {X: 500, Y: 500}, {X: 50, Y: 50}}
	isBeacon := []bool{true, true, false}
	res := DVHop(truth, isBeacon, DVHopConfig{Range: 100})
	if res.Localized[2] {
		t.Error("node localized with disconnected beacon set")
	}
	if !math.IsNaN(res.MeanError(truth, isBeacon)) {
		t.Error("MeanError not NaN with nothing localized")
	}
}

func TestDVHopMaxHopsBoundsFlood(t *testing.T) {
	// A line of nodes: with MaxHops 1 only direct neighbors hear the
	// beacons, so the far node cannot collect 3 references.
	truth := []geo.Point{
		{X: 0, Y: 0}, {X: 90, Y: 0}, {X: 180, Y: 0}, {X: 270, Y: 0},
		{X: 0, Y: 90}, {X: 90, Y: 90},
	}
	isBeacon := []bool{true, true, false, false, true, false}
	bounded := DVHop(truth, isBeacon, DVHopConfig{Range: 100, MaxHops: 1})
	if bounded.Localized[3] {
		t.Error("far node localized despite MaxHops=1")
	}
}

func TestDVHopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for zero range")
		}
	}()
	DVHop([]geo.Point{{}}, []bool{false}, DVHopConfig{})
}

func TestBFSHops(t *testing.T) {
	// 0-1-2 path plus isolated 3.
	adj := [][]int{{1}, {0, 2}, {1}, nil}
	hops := bfsHops(adj, 0, 0)
	want := []int{0, 1, 2, -1}
	for i := range want {
		if hops[i] != want[i] {
			t.Errorf("hops[%d] = %d, want %d", i, hops[i], want[i])
		}
	}
	capped := bfsHops(adj, 0, 1)
	if capped[2] != -1 {
		t.Errorf("maxHops=1 reached node 2: %d", capped[2])
	}
}

func BenchmarkDVHop(b *testing.B) {
	truth, isBeacon := dvTopology(5, 300, 0.1)
	cfg := DVHopConfig{Range: 120}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DVHop(truth, isBeacon, cfg)
	}
}
