package localization

import (
	"fmt"
	"math"

	"beaconsec/internal/geo"
)

// This file implements DV-hop (Niculescu & Nath's Ad hoc Positioning
// System, cited by the paper): a range-free localization scheme where
// nodes count hops to each beacon, beacons estimate an average
// hop distance from the hop counts between themselves, and nodes
// multilaterate on hop-count × hop-distance pseudo-ranges. It needs no
// ranging hardware, at the cost of accuracy — the trade-off that
// motivates the paper's focus on range-based schemes.

// DVHopConfig parameterizes the scheme.
type DVHopConfig struct {
	// Range is the single-hop radio range.
	Range float64
	// MaxHops bounds flood propagation; zero means unbounded.
	MaxHops int
}

// DVHopResult reports one DV-hop pass.
type DVHopResult struct {
	// Estimate / Localized are indexed by node.
	Estimate  []geo.Point
	Localized []bool
	// HopDist is the network-wide average distance per hop the beacons
	// derived.
	HopDist float64
}

// DVHop runs the scheme over true node positions, with isBeacon marking
// anchor nodes. Connectivity is geometric: nodes within cfg.Range are
// neighbors. The hop-count flood is simulated exactly (BFS), which is
// what the protocol converges to.
func DVHop(truth []geo.Point, isBeacon []bool, cfg DVHopConfig) DVHopResult {
	n := len(truth)
	if len(isBeacon) != n {
		panic(fmt.Sprintf("localization: dvhop length mismatch %d vs %d", n, len(isBeacon)))
	}
	if cfg.Range <= 0 {
		panic(fmt.Sprintf("localization: dvhop range %v must be positive", cfg.Range))
	}
	res := DVHopResult{
		Estimate:  make([]geo.Point, n),
		Localized: make([]bool, n),
	}

	// Adjacency by geometry.
	adj := make([][]int, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if truth[i].Dist(truth[j]) <= cfg.Range {
				adj[i] = append(adj[i], j)
				adj[j] = append(adj[j], i)
			}
		}
	}

	// BFS hop counts from every beacon.
	var beacons []int
	for i, b := range isBeacon {
		if b {
			beacons = append(beacons, i)
		}
	}
	hops := make([][]int, len(beacons))
	for bi, b := range beacons {
		hops[bi] = bfsHops(adj, b, cfg.MaxHops)
	}

	// Average hop distance: for each beacon pair with a known hop count,
	// true distance / hops (DV-hop's correction factor, averaged
	// network-wide).
	var distSum float64
	var hopSum int
	for ai := 0; ai < len(beacons); ai++ {
		for bi := ai + 1; bi < len(beacons); bi++ {
			h := hops[ai][beacons[bi]]
			if h <= 0 {
				continue
			}
			distSum += truth[beacons[ai]].Dist(truth[beacons[bi]])
			hopSum += h
		}
	}
	if hopSum == 0 {
		return res // disconnected beacon set: nothing localizes
	}
	res.HopDist = distSum / float64(hopSum)

	// Each non-beacon node multilaterates on hop-count pseudo-ranges.
	for i := 0; i < n; i++ {
		if isBeacon[i] {
			res.Estimate[i] = truth[i]
			res.Localized[i] = true
			continue
		}
		var refs []Reference
		for bi, b := range beacons {
			h := hops[bi][i]
			if h <= 0 {
				continue
			}
			refs = append(refs, Reference{
				Loc:  truth[b],
				Dist: float64(h) * res.HopDist,
			})
		}
		if len(refs) < 3 {
			continue
		}
		est, err := Multilaterate(refs)
		if err != nil {
			continue
		}
		res.Estimate[i] = est
		res.Localized[i] = true
	}
	return res
}

// MeanError returns the mean estimate error over localized non-beacon
// nodes; NaN if none localized.
func (r DVHopResult) MeanError(truth []geo.Point, isBeacon []bool) float64 {
	var sum float64
	n := 0
	for i := range truth {
		if isBeacon[i] || !r.Localized[i] {
			continue
		}
		sum += r.Estimate[i].Dist(truth[i])
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// bfsHops returns hop counts from src to every node (-1 if unreachable or
// beyond maxHops; 0 for src itself).
func bfsHops(adj [][]int, src, maxHops int) []int {
	hops := make([]int, len(adj))
	for i := range hops {
		hops[i] = -1
	}
	hops[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if maxHops > 0 && hops[u] >= maxHops {
			continue
		}
		for _, v := range adj[u] {
			if hops[v] < 0 {
				hops[v] = hops[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return hops
}
