package localization

import (
	"fmt"
	"math"

	"beaconsec/internal/geo"
)

// This file implements angle-of-arrival (AoA) localization (Niculescu &
// Nath's APS using AoA, cited by the paper): a node with a directional
// antenna array measures the bearing toward each beacon and triangulates.
// The paper's §2.3 notes its detector "can be easily revised to deal with
// location estimation based on other measurements" — the AoA variant of
// the consistency check lives in package core; this file provides the
// estimation substrate.

// BearingReference is one AoA reference: the location a beacon declared
// and the bearing (radians, from +x axis, in (-π, π]) the node measured
// toward it.
type BearingReference struct {
	Loc     geo.Point
	Bearing float64
}

// NormalizeAngle maps an angle to (-π, π].
func NormalizeAngle(a float64) float64 {
	for a > math.Pi {
		a -= 2 * math.Pi
	}
	for a <= -math.Pi {
		a += 2 * math.Pi
	}
	return a
}

// AngleDiff returns the absolute smallest difference between two angles.
func AngleDiff(a, b float64) float64 {
	return math.Abs(NormalizeAngle(a - b))
}

// Triangulate estimates a position from bearing references: each bearing
// constrains the node to the line through the beacon with the measured
// direction, giving the linear system
//
//	sin(θ_i)·(x_i - x) - cos(θ_i)·(y_i - y) = 0
//
// solved by least squares. At least two non-parallel bearings are
// required; three or more average out measurement error.
func Triangulate(refs []BearingReference) (geo.Point, error) {
	if len(refs) < 2 {
		return geo.Point{}, fmt.Errorf("%w: AoA needs >= 2 bearings, have %d", ErrTooFew, len(refs))
	}
	// Row i: [sinθ, -cosθ] · p = sinθ·x_i - cosθ·y_i
	var a11, a12, a22, b1, b2 float64
	for _, r := range refs {
		s, c := math.Sin(r.Bearing), math.Cos(r.Bearing)
		rhs := s*r.Loc.X - c*r.Loc.Y
		a11 += s * s
		a12 += s * -c
		a22 += c * c
		b1 += s * rhs
		b2 += -c * rhs
	}
	det := a11*a22 - a12*a12
	scale := a11 + a22
	if scale == 0 || math.Abs(det) < 1e-9*scale*scale {
		return geo.Point{}, fmt.Errorf("%w: parallel bearings", ErrDegenerate)
	}
	return geo.Point{
		X: (a22*b1 - a12*b2) / det,
		Y: (a11*b2 - a12*b1) / det,
	}, nil
}

// BearingTo returns the true bearing from p toward q.
func BearingTo(p, q geo.Point) float64 {
	return math.Atan2(q.Y-p.Y, q.X-p.X)
}
