package mac

import (
	"testing"

	"beaconsec/internal/crypto"
	"beaconsec/internal/geo"
	"beaconsec/internal/ident"
	"beaconsec/internal/packet"
	"beaconsec/internal/phy"
	"beaconsec/internal/rng"
	"beaconsec/internal/sim"
)

type fixture struct {
	sched  *sim.Scheduler
	medium *phy.Medium
	master *crypto.Master
	src    *rng.Source
}

func newFixture(rangeFt float64) *fixture {
	sched := sim.New()
	src := rng.New(42)
	return &fixture{
		sched:  sched,
		medium: phy.NewMedium(sched, src.Split("medium"), phy.Config{Range: rangeFt}),
		master: crypto.NewMaster([]byte("test")),
		src:    src,
	}
}

func (f *fixture) endpoint(pos geo.Point, ids ...ident.NodeID) *Endpoint {
	store := crypto.NewStore(f.master, ids...)
	radio := f.medium.NewRadio(pos)
	return NewEndpoint(f.sched, radio, store, f.src.SplitIndex(uint64(ids[0])))
}

func TestUnicastDelivery(t *testing.T) {
	f := newFixture(150)
	a := f.endpoint(geo.Point{X: 0, Y: 0}, 1)
	b := f.endpoint(geo.Point{X: 100, Y: 0}, 2)
	var got []Delivery
	b.SetHandler(func(d Delivery) { got = append(got, d) })
	seq := a.Send(2, packet.BeaconRequest{}, SendOptions{})
	if err := f.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(got))
	}
	d := got[0]
	if d.Pkt.Header.Src != 1 || d.Pkt.Header.Dst != 2 || d.Pkt.Header.Seq != seq {
		t.Errorf("header = %+v", d.Pkt.Header)
	}
	if d.Local != 2 {
		t.Errorf("Local = %v, want 2", d.Local)
	}
	if _, ok := d.Pkt.Payload.(packet.BeaconRequest); !ok {
		t.Errorf("payload = %T", d.Pkt.Payload)
	}
	if d.MeasuredDist != 100 {
		t.Errorf("MeasuredDist = %v (perfect ranging), want 100", d.MeasuredDist)
	}
}

func TestUnicastNotDeliveredToThirdParty(t *testing.T) {
	f := newFixture(150)
	a := f.endpoint(geo.Point{X: 0, Y: 0}, 1)
	_ = f.endpoint(geo.Point{X: 100, Y: 0}, 2)
	c := f.endpoint(geo.Point{X: 50, Y: 0}, 3)
	got := 0
	c.SetHandler(func(Delivery) { got++ })
	a.Send(2, packet.BeaconRequest{}, SendOptions{})
	if err := f.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("third party received %d packets", got)
	}
	if c.Stats().NotForUs != 1 {
		t.Errorf("NotForUs = %d, want 1", c.Stats().NotForUs)
	}
}

func TestBroadcastDelivery(t *testing.T) {
	f := newFixture(150)
	a := f.endpoint(geo.Point{X: 0, Y: 0}, 1)
	b := f.endpoint(geo.Point{X: 100, Y: 0}, 2)
	c := f.endpoint(geo.Point{X: 0, Y: 100}, 3)
	bGot, cGot := 0, 0
	b.SetHandler(func(d Delivery) {
		if d.Local != ident.Broadcast {
			t.Errorf("broadcast Local = %v", d.Local)
		}
		bGot++
	})
	c.SetHandler(func(Delivery) { cGot++ })
	a.Send(ident.Broadcast, packet.Hello{}, SendOptions{})
	if err := f.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if bGot != 1 || cGot != 1 {
		t.Errorf("broadcast delivered b=%d c=%d, want 1,1", bGot, cGot)
	}
}

func TestDetectingIdentitySend(t *testing.T) {
	// A beacon node (ID 1) probing under detecting pseudonym 900 must be
	// received and authenticated by the target exactly as if node 900
	// sent it — and the target cannot see it came from a beacon node.
	f := newFixture(150)
	a := f.endpoint(geo.Point{X: 0, Y: 0}, 1, 900)
	b := f.endpoint(geo.Point{X: 100, Y: 0}, 2)
	var got []Delivery
	b.SetHandler(func(d Delivery) { got = append(got, d) })
	a.Send(2, packet.BeaconRequest{}, SendOptions{Identity: 900})
	if err := f.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("delivered %d, want 1", len(got))
	}
	if got[0].Pkt.Header.Src != 900 {
		t.Errorf("Src = %v, want 900", got[0].Pkt.Header.Src)
	}
}

func TestReplyReachesDetectingIdentity(t *testing.T) {
	f := newFixture(150)
	a := f.endpoint(geo.Point{X: 0, Y: 0}, 1, 900)
	b := f.endpoint(geo.Point{X: 100, Y: 0}, 2)
	var aGot []Delivery
	a.SetHandler(func(d Delivery) { aGot = append(aGot, d) })
	b.SetHandler(func(d Delivery) {
		b.Send(d.Pkt.Header.Src, packet.BeaconReply{Loc: geo.Point{X: 100}, Echo: d.Pkt.Header.Seq}, SendOptions{})
	})
	a.Send(2, packet.BeaconRequest{}, SendOptions{Identity: 900})
	if err := f.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if len(aGot) != 1 {
		t.Fatalf("probe reply count = %d, want 1", len(aGot))
	}
	if aGot[0].Local != 900 {
		t.Errorf("reply Local = %v, want 900", aGot[0].Local)
	}
}

func TestSendUnderUnownedIdentityPanics(t *testing.T) {
	f := newFixture(150)
	a := f.endpoint(geo.Point{X: 0, Y: 0}, 1)
	defer func() {
		if recover() == nil {
			t.Error("no panic for unowned identity")
		}
	}()
	a.Send(2, packet.BeaconRequest{}, SendOptions{Identity: 99})
}

func TestForgedPacketRejected(t *testing.T) {
	// An external attacker without the pairwise key injects a forged
	// beacon reply; the MAC must reject it (paper: "beacon packets
	// forged by external attackers that do not have the right keys can
	// be easily filtered out").
	f := newFixture(150)
	b := f.endpoint(geo.Point{X: 100, Y: 0}, 2)
	got := 0
	b.SetHandler(func(Delivery) { got++ })
	var wrongKey crypto.Key
	wrongKey[5] = 0x66
	data, err := packet.Encode(1, 2, 7, packet.BeaconReply{Loc: geo.Point{X: 5}}, wrongKey)
	if err != nil {
		t.Fatal(err)
	}
	f.medium.Inject(geo.Point{X: 0, Y: 0}, phy.Frame{Data: data})
	if err := f.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("forged packet delivered %d times", got)
	}
	if b.Stats().AuthFail != 1 {
		t.Errorf("AuthFail = %d, want 1", b.Stats().AuthFail)
	}
}

func TestComposeReceivesT3(t *testing.T) {
	f := newFixture(150)
	a := f.endpoint(geo.Point{X: 0, Y: 0}, 1)
	b := f.endpoint(geo.Point{X: 100, Y: 0}, 2)
	var got packet.BeaconReply
	n := 0
	b.SetHandler(func(d Delivery) {
		got = d.Pkt.Payload.(packet.BeaconReply)
		n++
	})
	var sentAt sim.Time
	f.sched.At(1000, func() {
		a.Send(2, packet.BeaconReply{}, SendOptions{
			Compose: func(t3 sim.Time) any {
				sentAt = t3
				return packet.BeaconReply{Loc: geo.Point{X: 1}, Turnaround: uint32(t3), Echo: 9}
			},
		})
	})
	if err := f.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("delivered %d", n)
	}
	if sentAt == 0 {
		t.Fatal("Compose not called")
	}
	if got.Turnaround != uint32(sentAt) || got.Echo != 9 {
		t.Errorf("composed payload not transmitted: %+v (t3=%v)", got, sentAt)
	}
}

func TestCSMADefersUntilIdle(t *testing.T) {
	f := newFixture(1000)
	// A long foreign transmission occupies the channel; an endpoint that
	// wants to send must defer and still succeed afterwards.
	a := f.endpoint(geo.Point{X: 0, Y: 0}, 1)
	b := f.endpoint(geo.Point{X: 100, Y: 0}, 2)
	got := 0
	b.SetHandler(func(d Delivery) {
		if _, isReq := d.Pkt.Payload.(packet.BeaconRequest); isReq {
			got++
		}
	})

	bk := f.master.BroadcastKey()
	data, err := packet.Encode(5, ident.Broadcast, 1, packet.Hello{}, bk)
	if err != nil {
		t.Fatal(err)
	}
	f.sched.At(0, func() {
		f.medium.Inject(geo.Point{X: 50, Y: 0}, phy.Frame{Data: data})
	})
	var sentOK bool
	var sentInfo phy.TxInfo
	f.sched.At(100, func() {
		a.Send(2, packet.BeaconRequest{}, SendOptions{OnSent: func(info phy.TxInfo, ok bool) {
			sentOK = ok
			sentInfo = info
		}})
	})
	if err := f.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if !sentOK {
		t.Fatal("CSMA dropped the frame")
	}
	blockEnd := phy.FrameAirTime(len(data))
	if sentInfo.AirStart < blockEnd {
		t.Errorf("transmission started at %v during foreign frame (ends %v)", sentInfo.AirStart, blockEnd)
	}
	if got != 1 {
		t.Errorf("delivered %d, want 1", got)
	}
}

func TestOnSentReportsTiming(t *testing.T) {
	f := newFixture(150)
	a := f.endpoint(geo.Point{X: 0, Y: 0}, 1)
	_ = f.endpoint(geo.Point{X: 100, Y: 0}, 2)
	var info phy.TxInfo
	ok := false
	a.Send(2, packet.BeaconRequest{}, SendOptions{OnSent: func(i phy.TxInfo, o bool) { info, ok = i, o }})
	if err := f.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("OnSent not called with success")
	}
	if info.AirEnd <= info.AirStart {
		t.Errorf("TxInfo = %+v", info)
	}
	// t1 may precede AirStart by up to the jitter (register preload) but
	// never exceeds the first byte's air-finish time.
	if info.FirstByteSPDR > info.AirStart+phy.CyclesPerByte {
		t.Errorf("FirstByteSPDR %v after first byte air time (start %v)", info.FirstByteSPDR, info.AirStart)
	}
}

func TestSeqIncrements(t *testing.T) {
	f := newFixture(150)
	a := f.endpoint(geo.Point{X: 0, Y: 0}, 1)
	s1 := a.NextSeq()
	s2 := a.NextSeq()
	if s2 != s1+1 {
		t.Errorf("NextSeq: %d then %d", s1, s2)
	}
}

func TestStatsCounters(t *testing.T) {
	f := newFixture(150)
	a := f.endpoint(geo.Point{X: 0, Y: 0}, 1)
	b := f.endpoint(geo.Point{X: 100, Y: 0}, 2)
	b.SetHandler(func(Delivery) {})
	a.Send(2, packet.BeaconRequest{}, SendOptions{})
	if err := f.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if a.Stats().Sent != 1 {
		t.Errorf("Sent = %d", a.Stats().Sent)
	}
	if b.Stats().Delivered != 1 {
		t.Errorf("Delivered = %d", b.Stats().Delivered)
	}
	if a.Primary() != 1 {
		t.Errorf("Primary = %v", a.Primary())
	}
}

func TestTruthPropagation(t *testing.T) {
	f := newFixture(150)
	b := f.endpoint(geo.Point{X: 100, Y: 0}, 2)
	var truth Truth
	n := 0
	b.SetHandler(func(d Delivery) { truth = d.Truth; n++ })
	key := f.master.Pairwise(1, 2)
	data, err := packet.Encode(1, 2, 3, packet.BeaconRequest{}, key)
	if err != nil {
		t.Fatal(err)
	}
	f.medium.Inject(geo.Point{X: 0, Y: 0}, phy.Frame{Data: data, Replayed: true, WormholeMark: true})
	if err := f.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("delivered %d", n)
	}
	if !truth.Replayed || !truth.WormholeMark {
		t.Errorf("Truth = %+v, want both flags", truth)
	}
}

func TestCSMAExhaustionDropsFrame(t *testing.T) {
	// A channel jammed for longer than the full backoff schedule forces
	// the MAC to drop and report failure.
	f := newFixture(1000)
	a := f.endpoint(geo.Point{X: 0, Y: 0}, 1)
	_ = f.endpoint(geo.Point{X: 100, Y: 0}, 2)

	// Jam: back-to-back foreign frames for a long time.
	bk := f.master.BroadcastKey()
	data, err := packet.Encode(5, ident.Broadcast, 1, packet.Hello{}, bk)
	if err != nil {
		t.Fatal(err)
	}
	frameTime := phy.FrameAirTime(len(data))
	for i := 0; i < 200; i++ {
		at := sim.Time(i) * frameTime
		f.sched.At(at, func() {
			f.medium.Inject(geo.Point{X: 50, Y: 0}, phy.Frame{Data: data})
		})
	}
	dropped := false
	f.sched.At(10, func() {
		a.Send(2, packet.BeaconRequest{}, SendOptions{OnSent: func(_ phy.TxInfo, ok bool) {
			dropped = !ok
		}})
	})
	if err := f.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if !dropped {
		t.Error("MAC never gave up on a jammed channel")
	}
	if a.Stats().CSMADrops != 1 {
		t.Errorf("CSMADrops = %d", a.Stats().CSMADrops)
	}
}

func TestSendSeqMatchesCallerSequence(t *testing.T) {
	f := newFixture(150)
	a := f.endpoint(geo.Point{X: 0, Y: 0}, 1)
	b := f.endpoint(geo.Point{X: 100, Y: 0}, 2)
	var got uint16
	b.SetHandler(func(d Delivery) { got = d.Pkt.Header.Seq })
	seq := a.NextSeq()
	a.SendSeq(2, seq, packet.BeaconRequest{}, SendOptions{})
	if err := f.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if got != seq {
		t.Errorf("delivered seq %d, want %d", got, seq)
	}
}
