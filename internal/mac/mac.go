// Package mac implements the link layer on top of phy: CSMA with random
// backoff, packet framing and authentication under pairwise keys, unicast
// addressing across multiple local identities (a beacon node receives both
// as itself and as each of its detecting pseudonyms), and the send-time
// payload composition the paper's RTT protocol needs (the turnaround value
// t3 - t2 is written into the reply while it is being transmitted, because
// t3 is the reply's own first-byte register timestamp).
package mac

import (
	"beaconsec/internal/crypto"
	"beaconsec/internal/ident"
	"beaconsec/internal/packet"
	"beaconsec/internal/phy"
	"beaconsec/internal/rng"
	"beaconsec/internal/sim"
)

// CSMA parameters. Backoff is uniform in [1, backoffSlots] byte-times;
// after maxAttempts busy attempts the frame is dropped and OnSent reports
// failure.
const (
	backoffSlots = 32
	maxAttempts  = 16
)

// Truth carries physical-layer ground truth and attacker-manipulated
// signal features through to the instruments that are defined in terms of
// them (the wormhole detector). Protocol decision logic must not read
// Replayed: no mote can observe "this frame is a replay" directly.
type Truth struct {
	// WormholeMark is the attacker-manipulated signal feature.
	WormholeMark bool
	// Replayed is ground truth: the frame was re-injected by a tunnel or
	// replay attacker.
	Replayed bool
}

// Delivery is an authenticated packet handed to the upper layer.
type Delivery struct {
	Pkt packet.Packet
	// Local is the local identity the packet was addressed to (one of
	// the node's IDs, or ident.Broadcast).
	Local ident.NodeID
	// MeasuredDist is the RSSI-derived distance to the transmit origin.
	MeasuredDist float64
	// FirstByteSPDR is the receiver-side register timestamp (t2 for a
	// request, t4 for a reply).
	FirstByteSPDR sim.Time
	// End is when the frame finished arriving.
	End sim.Time
	// Truth is physical-layer ground truth for instruments.
	Truth Truth
}

// Handler consumes deliveries.
type Handler func(Delivery)

// SendOptions control one transmission.
type SendOptions struct {
	// Identity is the sending identity; ident.Nobody selects the node's
	// primary identity. The identity's pairwise key with dst
	// authenticates the packet.
	Identity ident.NodeID
	// Compose, if non-nil, builds the payload at actual transmit time,
	// receiving the transmission's own first-byte register timestamp
	// (t3). The payload passed to Send is then only used for sizing and
	// must have the same encoded size.
	Compose func(t3 sim.Time) any
	// RangeBias / WormholeMark are attacker signal manipulations; benign
	// nodes leave them zero.
	RangeBias    float64
	WormholeMark bool
	// OnSent reports the transmission's timing (ok) or a CSMA drop
	// (!ok).
	OnSent func(info phy.TxInfo, ok bool)
}

// Stats counts link-layer events.
type Stats struct {
	Sent        uint64
	Backoffs    uint64
	CSMADrops   uint64
	AuthFail    uint64
	NotForUs    uint64
	DecodeError uint64
	Delivered   uint64
}

// Merge adds another endpoint's counters field-wise (used by the scenario
// layer to aggregate link stats across a deployment's nodes).
func (s *Stats) Merge(o Stats) {
	s.Sent += o.Sent
	s.Backoffs += o.Backoffs
	s.CSMADrops += o.CSMADrops
	s.AuthFail += o.AuthFail
	s.NotForUs += o.NotForUs
	s.DecodeError += o.DecodeError
	s.Delivered += o.Delivered
}

// Endpoint is one node's link-layer interface.
type Endpoint struct {
	sched   *sim.Scheduler
	radio   *phy.Radio
	store   *crypto.Store
	src     *rng.Source
	handler Handler
	primary ident.NodeID
	seq     uint16
	stats   Stats
}

// NewEndpoint binds a link layer to a radio. The store's first identity is
// the primary. src must be a dedicated stream.
func NewEndpoint(sched *sim.Scheduler, radio *phy.Radio, store *crypto.Store, src *rng.Source) *Endpoint {
	ids := store.Identities()
	if len(ids) == 0 {
		panic("mac: store holds no identities")
	}
	e := &Endpoint{
		sched:   sched,
		radio:   radio,
		store:   store,
		src:     src,
		primary: ids[0],
	}
	radio.SetHandler(e.onReception)
	return e
}

// SetHandler installs the upper-layer packet handler.
func (e *Endpoint) SetHandler(h Handler) { e.handler = h }

// Primary returns the node's primary identity.
func (e *Endpoint) Primary() ident.NodeID { return e.primary }

// Stats returns a copy of the endpoint counters.
func (e *Endpoint) Stats() Stats { return e.stats }

// Radio returns the underlying radio.
func (e *Endpoint) Radio() *phy.Radio { return e.radio }

// NextSeq allocates a fresh sequence number.
func (e *Endpoint) NextSeq() uint16 {
	e.seq++
	return e.seq
}

func (e *Endpoint) keyFor(local, peer ident.NodeID) (crypto.Key, bool) {
	if peer == ident.Broadcast || local == ident.Broadcast {
		return e.store.BroadcastKey(), true
	}
	if !e.store.Owns(local) {
		return crypto.Key{}, false
	}
	return e.store.PairwiseKey(local, peer), true
}

// Send queues payload for dst with CSMA. The sequence number used is
// returned so callers can match replies (packet.BeaconReply.Echo).
func (e *Endpoint) Send(dst ident.NodeID, payload any, opts SendOptions) uint16 {
	seq := e.NextSeq()
	e.SendSeq(dst, seq, payload, opts)
	return seq
}

// SendSeq is Send with a caller-allocated sequence number (from NextSeq),
// for callers that must register reply-matching state before the first
// transmission attempt.
func (e *Endpoint) SendSeq(dst ident.NodeID, seq uint16, payload any, opts SendOptions) {
	srcID := opts.Identity
	if srcID == ident.Nobody {
		srcID = e.primary
	}
	e.attempt(srcID, dst, seq, payload, opts, 1)
}

func (e *Endpoint) attempt(srcID, dst ident.NodeID, seq uint16, payload any, opts SendOptions, try int) {
	if e.radio == nil {
		return
	}
	medium := e.radio.Medium()
	if medium.Busy(e.radio) {
		if try >= maxAttempts {
			e.stats.CSMADrops++
			if opts.OnSent != nil {
				opts.OnSent(phy.TxInfo{}, false)
			}
			return
		}
		e.stats.Backoffs++
		backoff := sim.Time(1+e.src.Intn(backoffSlots)) * phy.CyclesPerByte
		e.sched.After(backoff, func() {
			e.attempt(srcID, dst, seq, payload, opts, try+1)
		})
		return
	}

	key, ok := e.keyFor(srcID, dst)
	if !ok {
		panic("mac: sending under unowned identity " + srcID.String())
	}
	sizing, err := packet.Encode(srcID, dst, seq, payload, key)
	if err != nil {
		panic("mac: unencodable payload: " + err.Error())
	}
	frame := phy.Frame{
		Data:         sizing,
		RangeBias:    opts.RangeBias,
		WormholeMark: opts.WormholeMark,
	}
	if opts.Compose != nil {
		want := len(sizing)
		frame.Finalize = func(t3 sim.Time) []byte {
			// Re-encode in place over the sizing buffer: the frame owns
			// it, Finalize runs before any receiver sees the bytes, and
			// the encoded size is pinned, so rebuilding costs no
			// allocation.
			final, err := packet.EncodeTo(sizing[:0], srcID, dst, seq, opts.Compose(t3), key)
			if err != nil {
				panic("mac: unencodable composed payload: " + err.Error())
			}
			if len(final) != want {
				panic("mac: composed payload changed frame size")
			}
			return final
		}
	}
	info := medium.Transmit(e.radio, frame)
	e.stats.Sent++
	if opts.OnSent != nil {
		opts.OnSent(info, true)
	}
}

func (e *Endpoint) onReception(rec phy.Reception) {
	h, err := packet.PeekHeader(rec.Frame.Data)
	if err != nil {
		e.stats.DecodeError++
		return
	}
	var local ident.NodeID
	switch {
	case h.Dst == ident.Broadcast:
		local = ident.Broadcast
	case e.store.Owns(h.Dst):
		local = h.Dst
	default:
		e.stats.NotForUs++
		return
	}
	key, _ := e.keyFor(local, h.Src)
	pkt, err := packet.Decode(rec.Frame.Data, key)
	if err != nil {
		e.stats.AuthFail++
		return
	}
	e.stats.Delivered++
	if e.handler == nil {
		return
	}
	e.handler(Delivery{
		Pkt:           pkt,
		Local:         local,
		MeasuredDist:  rec.MeasuredDist,
		FirstByteSPDR: rec.FirstByteSPDR,
		End:           rec.End,
		Truth: Truth{
			WormholeMark: rec.Frame.WormholeMark,
			Replayed:     rec.Frame.Replayed,
		},
	})
}
