// Package scenario wires the full system — deployment, radio medium,
// crypto, node state machines, wormhole tunnels, base station — into one
// reproducible end-to-end simulation run, and extracts the metrics the
// paper's §4 evaluation reports: revocation detection rate, false-positive
// rate, affected non-beacon nodes, and localization error.
//
// A run's phases mirror the paper's protocol lifecycle:
//
//	announce    beacon nodes broadcast hellos (twice, for loss robustness)
//	collude     malicious beacons flood alerts against benign ones
//	detect      beacon nodes probe neighbor beacons under detecting IDs;
//	            alerts stream to the base station, revocations propagate
//	localize    sensors request references through the replay filters,
//	            then estimate their positions
package scenario

import (
	"fmt"
	"math"

	"beaconsec/internal/analysis"
	"beaconsec/internal/core"
	"beaconsec/internal/crypto"
	"beaconsec/internal/deploy"
	"beaconsec/internal/geo"
	"beaconsec/internal/ident"
	"beaconsec/internal/metrics"
	"beaconsec/internal/node"
	"beaconsec/internal/phy"
	"beaconsec/internal/revoke"
	"beaconsec/internal/rng"
	"beaconsec/internal/sim"
	"beaconsec/internal/wormhole"
)

// WormholeSpec places one tunnel.
type WormholeSpec struct {
	A, B geo.Point
	// Latency is the tunnel's one-way relay delay; keep it under a few
	// bit-times for the analog wormholes of the paper's analysis.
	Latency sim.Time
}

// PaperWormhole is the reconstructed tunnel of the paper's §4 simulation:
// "a wormhole between location A (100,100) and location B (800,700),
// which forwards every message received at one side immediately to the
// other side".
func PaperWormhole() WormholeSpec {
	return WormholeSpec{A: geo.Point{X: 100, Y: 100}, B: geo.Point{X: 800, Y: 700}, Latency: 2}
}

// Config parameterizes one run. Start from Paper() and adjust.
type Config struct {
	Deploy deploy.Config
	Revoke revoke.Config
	// Strategy is every malicious beacon's (p_n, p_w, p_l) triple.
	Strategy analysis.Strategy
	// Detector selects the detection pipeline every node runs, by
	// registry name plus parameters (core.DetectorNames lists the
	// implementations). The zero value is the paper's §2.1–2.2
	// consistency/replay pipeline.
	Detector core.DetectorSpec
	// AttackBias is the distance enlargement of malicious attack
	// signals, in feet; zero selects the node-layer default (5·ε_max, an
	// unmistakable attack). Smaller biases model subtle attackers the
	// detector bake-off separates on.
	AttackBias float64
	// RTTStats pins the no-attack RTT calibration statistics detectors
	// calibrate against (e.g. the Mahalanobis detector's mean/σ); nil
	// derives them from a fresh calibration if — and only if — the
	// selected detector asks.
	RTTStats *core.RTTStats
	// MaxDistError is ε_max in feet (also the ranging error bound).
	MaxDistError float64
	// WormholeRate is the per-node wormhole detector's p_d.
	WormholeRate float64
	// Wormholes places tunnels in the field.
	Wormholes []WormholeSpec
	// Collude makes malicious beacons spend their full report budget on
	// alerts against random benign beacons (the paper's §4 assumption).
	Collude bool
	// ReplayAttackers places store-and-forward local replay attackers
	// that re-inject every beacon reply heard within range of their
	// position (§2.2.2's threat).
	ReplayAttackers []geo.Point
	// UplinkLoss is the per-attempt alert loss rate (retransmission
	// recovers; the paper assumes eventual delivery).
	UplinkLoss float64
	// RTTThreshold overrides the local-replay threshold; zero runs a
	// fresh calibration (CalibrationTrials exchanges).
	RTTThreshold      float64
	CalibrationTrials int
	// DisableRTTFilter / DisableWormholeFilter are ablation switches.
	DisableRTTFilter      bool
	DisableWormholeFilter bool
	// RobustLocalization makes sensors trim majority-inconsistent
	// references (LMS) before solving — defense in depth against
	// wormhole references that slip past the detector.
	RobustLocalization bool
	// UseGeoLeash swaps beacons' probabilistic wormhole detector for
	// the concrete geographic-leash implementation.
	UseGeoLeash bool
	// Distributed switches to the base-station-free revocation variant
	// the paper lists as future work: beacons gossip alerts to their
	// beacon neighbors and each runs the §3 counting algorithm on a
	// local ledger. Malicious colluders gossip fabricated alerts too.
	// Result.LocalCoverage / Result.LocalFalseRevocations measure what
	// losing the global view costs.
	Distributed bool
	// Seed drives everything except deployment placement (Deploy.Seed).
	Seed uint64

	// Queue selects the scheduler's event-queue implementation
	// (sim.QueueAuto picks by population). The wheel and the heap are
	// pinned byte-identical — same event order, same results — so the
	// choice is a pure performance knob and is excluded from cache keys
	// (json:"-"): trials cached under one queue satisfy runs under the
	// other.
	Queue sim.QueueKind `json:"-"`

	// bruteForceMedium is a test hook: it forces the radio medium's
	// historical O(N) receiver scan instead of the spatial grid (see
	// phy.Config.BruteForce). The two paths are pinned byte-identical
	// by TestGridVsBruteForceByteIdentical.
	bruteForceMedium bool
}

// Paper returns the reconstructed configuration of the paper's §4
// simulation run: paper deployment, (τ=10, τ′=2), p_d = 0.9, ε = 10 ft,
// one analog wormhole, colluding malicious reporters.
func Paper() Config {
	return Config{
		Deploy:            deploy.Paper(),
		Revoke:            revoke.Config{ReportCap: 10, AlertThreshold: 2},
		Strategy:          analysis.StrategyForP(0.2),
		MaxDistError:      10,
		WormholeRate:      0.9,
		Wormholes:         []WormholeSpec{PaperWormhole()},
		Collude:           true,
		CalibrationTrials: 2000,
		Seed:              1,
	}
}

// Validate returns an error for inconsistent configurations.
func (c Config) Validate() error {
	if err := c.Deploy.Validate(); err != nil {
		return err
	}
	if err := c.Revoke.Validate(); err != nil {
		return err
	}
	if err := c.Strategy.Validate(); err != nil {
		return err
	}
	if err := c.Detector.Validate(); err != nil {
		return err
	}
	if !core.DetectorRegistered(c.Detector.Name) {
		return fmt.Errorf("scenario: unknown detector %q (registered: %v)",
			c.Detector.Name, core.DetectorNames())
	}
	if c.AttackBias < 0 {
		return fmt.Errorf("scenario: AttackBias %v must be non-negative", c.AttackBias)
	}
	if c.MaxDistError <= 0 {
		return fmt.Errorf("scenario: MaxDistError %v must be positive", c.MaxDistError)
	}
	if c.WormholeRate < 0 || c.WormholeRate > 1 {
		return fmt.Errorf("scenario: WormholeRate %v outside [0,1]", c.WormholeRate)
	}
	if c.UplinkLoss < 0 || c.UplinkLoss >= 1 {
		return fmt.Errorf("scenario: UplinkLoss %v outside [0,1)", c.UplinkLoss)
	}
	return nil
}

// Result carries everything a run measured.
type Result struct {
	// Population actually deployed.
	Population analysis.Population

	// RevokedMalicious / RevokedBenign count revocations by ground
	// truth.
	RevokedMalicious int
	RevokedBenign    int
	// DetectionRate = RevokedMalicious / Na.
	DetectionRate float64
	// FalsePositiveRate = RevokedBenign / (Nb - Na).
	FalsePositiveRate float64

	// AffectedPerMalicious is the paper's N′: sensors that accepted an
	// attack signal from a malicious beacon that survived revocation,
	// averaged over malicious beacons.
	AffectedPerMalicious float64
	// AvgNc is the measured mean number of distinct physical requesters
	// per malicious beacon.
	AvgNc float64

	// BenignAlerts counts alerts sent by benign beacons against benign
	// beacons (wormhole-induced false alerts).
	BenignAlerts int
	// TrueAlerts counts alerts by benign beacons against malicious ones.
	TrueAlerts int

	// Localized counts sensors that produced an estimate; LocErrMean and
	// LocErrMax summarize their error in feet.
	Localized  int
	LocErrMean float64
	LocErrMax  float64

	// RTTThreshold actually used (cycles).
	RTTThreshold float64
	// Detector is the canonical identity of the detection pipeline the
	// run used (e.g. "paper", "mahalanobis{threshold=3}").
	Detector string

	// Distributed-variant metrics (zero unless Config.Distributed):
	// LocalCoverage is the mean, over malicious beacons, of the fraction
	// of their benign beacon neighbors whose local ledger revoked them;
	// LocalFalseRevocations is the mean number of benign beacons each
	// benign beacon's ledger wrongly revoked.
	LocalCoverage         float64
	LocalFalseRevocations float64

	// Timeouts counts unanswered requests across all requesters.
	Timeouts int
	// Medium is the radio channel's counter snapshot.
	Medium phy.Stats
	// Metrics is the run's full deterministic instrumentation snapshot:
	// scheduler, radio, link, probe, filter, and revocation counters plus
	// the per-phase breakdown.
	Metrics Metrics

	// Sensors retains per-sensor outcomes for downstream analysis (nil
	// unless Config kept it — populated always; callers may drop it).
	beacons   []*node.Beacon
	malicious []*node.Malicious
	sensors   []*node.Sensor
	bs        *revoke.BaseStation
}

// BaseStation exposes the run's base station for inspection.
func (r *Result) BaseStation() *revoke.BaseStation { return r.bs }

// Sensors exposes the run's sensor nodes.
func (r *Result) Sensors() []*node.Sensor { return r.sensors }

// Beacons exposes the run's benign beacon nodes.
func (r *Result) Beacons() []*node.Beacon { return r.beacons }

// MaliciousNodes exposes the run's malicious beacons.
func (r *Result) MaliciousNodes() []*node.Malicious { return r.malicious }

// Phase timing (cycles). The windows are generous enough that CSMA and
// retries settle well before the next phase.
var (
	helloAt1   = sim.Seconds(0)
	helloAt2   = sim.Seconds(2)
	colludeAt  = sim.Seconds(4.5)
	detectFrom = sim.Seconds(5)
	detectLen  = sim.Seconds(60)
	requestAt  = sim.Seconds(70)
	requestLen = sim.Seconds(60)
	endAt      = sim.Seconds(140)
)

// Run executes one simulation.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	dep := deploy.New(cfg.Deploy)
	src := rng.New(cfg.Seed)
	// Queue depth is always observed: the histogram is pure accounting
	// (identical for wheel and heap since both fire the same event
	// sequence), so keeping it on preserves result identity across queues.
	depth := sim.DepthHistogram()
	sched := sim.NewWithConfig(sim.Config{
		Queue:       cfg.Queue,
		PendingHint: int64(cfg.Deploy.N),
		Depth:       depth,
	})
	medium := phy.NewMedium(sched, src.Split("medium"), phy.Config{
		Range:      cfg.Deploy.Range,
		Ranging:    phy.BoundedUniform{MaxError: cfg.MaxDistError},
		BruteForce: cfg.bruteForceMedium,
	})
	master := crypto.NewMaster([]byte(fmt.Sprintf("scenario-%d", cfg.Seed)))

	// The no-attack RTT calibration is memoized so the threshold and any
	// detector that asks for distribution moments share one measurement.
	var calMemo *core.Calibration
	calibration := func() core.Calibration {
		if calMemo == nil {
			trials := cfg.CalibrationTrials
			if trials == 0 {
				trials = 2000
			}
			c := core.CalibrateRTT(trials, phy.DefaultJitter(), cfg.Seed^0xCA11B8)
			calMemo = &c
		}
		return *calMemo
	}
	threshold := cfg.RTTThreshold
	if threshold == 0 {
		threshold = calibration().Threshold()
	}
	coreCfg := core.Config{
		MaxDistError: cfg.MaxDistError,
		MaxRTT:       threshold,
		Range:        cfg.Deploy.Range,
	}
	if cfg.DisableRTTFilter {
		coreCfg.MaxRTT = math.MaxFloat64
	}
	det, err := core.NewDetector(cfg.Detector, core.DetectorEnv{
		MaxDistError: coreCfg.MaxDistError,
		MaxRTT:       coreCfg.MaxRTT,
		Range:        coreCfg.Range,
		RTT: func() core.RTTStats {
			if cfg.RTTStats != nil {
				return *cfg.RTTStats
			}
			return calibration().Stats()
		},
	})
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	// The default paper detector runs through the Core config directly
	// (Env.Detector nil), keeping the hot path and its output bit-for-bit
	// identical to the pre-registry pipeline.
	var envDetector core.Detector
	if det.Spec().Canonical() != core.DefaultDetectorName {
		envDetector = det
	}

	bs := revoke.NewBaseStation(cfg.Revoke)
	uplink := revoke.NewUplink(sched, bs, src.Split("uplink"))
	uplink.LossRate = cfg.UplinkLoss

	env := &node.Env{
		Sched:              sched,
		Medium:             medium,
		Master:             master,
		Dep:                dep,
		Core:               coreCfg,
		Detector:           envDetector,
		Uplink:             uplink,
		Src:                src.Split("nodes"),
		WormholeRate:       cfg.WormholeRate,
		RequestRetries:     1,
		RobustLocalization: cfg.RobustLocalization,
		UseGeoLeash:        cfg.UseGeoLeash,
	}
	if cfg.DisableWormholeFilter {
		env.WormholeRate = 0
		// A disabled wormhole filter also ignores attacker marks; the
		// env's detector factory cannot express that, so nodes fall
		// back to rate 0 and marks still fire. True ablation of marks
		// is attacker-friendly anyway; rate 0 is the honest half.
	}

	// Build nodes: beacons (benign and malicious) then sensors.
	res := &Result{RTTThreshold: coreCfg.MaxRTT, Detector: det.Spec().Canonical(), bs: bs}
	maliciousByID := make(map[ident.NodeID]*node.Malicious)
	hello := src.Split("hello")
	for _, i := range dep.Beacons() {
		switch dep.Nodes[i].Kind {
		case deploy.KindBeacon:
			b := node.NewBeacon(env, i)
			if cfg.Distributed {
				b.Local = revoke.NewBaseStation(cfg.Revoke)
				b.GossipAlerts = true
				b.UplinkAlerts = false
			}
			b.AnnounceAt(helloAt1 + sim.Time(hello.Uint64()%uint64(sim.Seconds(2))))
			b.AnnounceAt(helloAt2 + sim.Time(hello.Uint64()%uint64(sim.Seconds(2))))
			b.StartDetection(detectFrom, detectLen)
			res.beacons = append(res.beacons, b)
		case deploy.KindMalicious:
			m := node.NewMalicious(env, i, node.MaliciousConfig{
				Strategy:  cfg.Strategy,
				RangeBias: cfg.AttackBias,
			})
			m.AnnounceAt(helloAt1 + sim.Time(hello.Uint64()%uint64(sim.Seconds(2))))
			m.AnnounceAt(helloAt2 + sim.Time(hello.Uint64()%uint64(sim.Seconds(2))))
			res.malicious = append(res.malicious, m)
			maliciousByID[m.ID()] = m
		}
	}
	if cfg.Collude && !cfg.Distributed {
		scheduleCollusion(cfg, dep, res.malicious, src.Split("collude"))
	}
	if cfg.Collude && cfg.Distributed {
		// Distributed colluders gossip their full fabricated budget to
		// whatever neighborhood hears them.
		colludeSrc := src.Split("collude")
		benign := dep.BenignBeacons()
		for _, m := range res.malicious {
			for r := 0; r <= cfg.Revoke.ReportCap && len(benign) > 0; r++ {
				victim := dep.Nodes[benign[colludeSrc.Intn(len(benign))]].ID
				m.GossipFakeAlertAt(colludeAt+sim.Time(colludeSrc.Intn(int(sim.Seconds(1)))), victim)
			}
		}
	}
	for _, i := range dep.Sensors() {
		s := node.NewSensor(env, i)
		s.StartRequests(requestAt, requestLen)
		res.sensors = append(res.sensors, s)
	}

	// Wormhole tunnels and local replay attackers.
	for _, w := range cfg.Wormholes {
		wormhole.Install(sched, medium, w.A, w.B, w.Latency)
	}
	for _, p := range cfg.ReplayAttackers {
		node.NewReplayAttacker(sched, medium, p, 0)
	}

	res.Medium = medium.Stats() // placeholder; refreshed after the run

	// Revocation distribution: the base station floods a revoke message;
	// we model the flood as a direct, slightly delayed notification to
	// every sensor (paper: "the revocation message from the base station
	// can reach most of sensor nodes" via standard fault tolerance).
	bs.OnRevoke(func(target ident.NodeID) {
		sched.After(sim.Millis(100), func() {
			for _, s := range res.sensors {
				s.MarkRevoked(target)
			}
		})
	})

	// Run the lifecycle phase by phase, snapshotting counters at each
	// boundary. The successive RunUntil calls execute exactly the event
	// sequence a single RunUntil(endAt) would (no RNG is consumed at
	// boundaries), so phase accounting is free of behavioral side effects.
	cuts := []struct {
		name  string
		until sim.Time
	}{
		{"announce", colludeAt},
		{"collude", detectFrom},
		{"detect", requestAt},
		{"localize", endAt},
	}
	spans := make([]metrics.Span, 0, len(cuts)+1)
	var prevFired, prevTx uint64
	prevAt := sched.Now()
	for _, cut := range cuts {
		sched.RunUntil(cut.until)
		fired, tx := sched.Fired(), medium.Stats().Transmissions
		spans = append(spans, metrics.Span{
			Name:          cut.name,
			StartCycles:   uint64(prevAt),
			EndCycles:     uint64(cut.until),
			Events:        fired - prevFired,
			Transmissions: tx - prevTx,
		})
		prevFired, prevTx, prevAt = fired, tx, cut.until
	}
	if sched.Pending() > 0 {
		// Drain stragglers (retries, uplink deliveries) to quiescence.
		if err := sched.Run(); err != nil {
			return nil, fmt.Errorf("scenario: scheduler stopped: %w", err)
		}
	}
	spans = append(spans, metrics.Span{
		Name:          "drain",
		StartCycles:   uint64(endAt),
		EndCycles:     uint64(sched.Now()),
		Events:        sched.Fired() - prevFired,
		Transmissions: medium.Stats().Transmissions - prevTx,
	})

	res.Medium = medium.Stats()
	res.collectInstrumentation(sched, medium, uplink, spans, depth)
	res.collectMetrics(cfg, dep, maliciousByID)
	return res, nil
}

// scheduleCollusion implements the paper's §4 colluding attacker: "we
// assume malicious beacon nodes collude together to report alerts against
// benign beacon nodes. Thus, they can always make the base station revoke
// about N_a(τ+1)/(τ′+1) benign beacon nodes". The colluders pool their
// report budgets (τ+1 each) and concentrate τ′+1 alerts from distinct
// reporters on each chosen victim.
func scheduleCollusion(cfg Config, dep *deploy.Deployment, colluders []*node.Malicious, src *rng.Source) {
	if len(colluders) == 0 {
		return
	}
	benign := dep.BenignBeacons()
	if len(benign) == 0 {
		return
	}
	perVictim := cfg.Revoke.AlertThreshold + 1
	if perVictim > len(colluders) {
		// Alerts from the same reporter against one target are
		// deduplicated by the base station, so fewer colluders than
		// τ′+1 cannot finish any victim; they abstain rather than
		// waste budget.
		return
	}
	budgets := make([]int, len(colluders))
	for i := range budgets {
		budgets[i] = cfg.Revoke.ReportCap + 1
	}
	order := src.Perm(len(benign))
	reporter := 0
	for _, vi := range order {
		victim := dep.Nodes[benign[vi]].ID
		// Check enough distinct colluders still have budget.
		withBudget := 0
		for _, b := range budgets {
			if b > 0 {
				withBudget++
			}
		}
		if withBudget < perVictim {
			return
		}
		assigned := 0
		for assigned < perVictim {
			if budgets[reporter] > 0 {
				colluders[reporter].SendAlertAt(colludeAt, victim)
				budgets[reporter]--
				assigned++
			}
			reporter = (reporter + 1) % len(colluders)
		}
	}
}

func (r *Result) collectMetrics(cfg Config, dep *deploy.Deployment, malicious map[ident.NodeID]*node.Malicious) {
	pop := analysis.Population{N: cfg.Deploy.N, Nb: cfg.Deploy.Nb, Na: cfg.Deploy.Na}
	r.Population = pop

	for id := range malicious {
		if r.bs.Revoked(id) {
			r.RevokedMalicious++
		}
	}
	for _, b := range r.beacons {
		if r.bs.Revoked(b.ID()) {
			r.RevokedBenign++
		}
	}
	if pop.Na > 0 {
		r.DetectionRate = float64(r.RevokedMalicious) / float64(pop.Na)
	}
	if pop.BenignBeacons() > 0 {
		r.FalsePositiveRate = float64(r.RevokedBenign) / float64(pop.BenignBeacons())
	}

	// Affected sensors per malicious beacon: accepted attack signals
	// from nodes that survived revocation.
	affected := 0
	for _, s := range r.sensors {
		for id, m := range malicious {
			if r.bs.Revoked(id) {
				continue
			}
			if s.AcceptedFrom[id] && m.AttackedIDs[s.ID()] {
				affected++
			}
		}
	}
	if pop.Na > 0 {
		r.AffectedPerMalicious = float64(affected) / float64(pop.Na)
	}

	// N_c: potential requesters per malicious beacon — every node within
	// radio range (the paper's "a malicious beacon node only contacts
	// the nodes within its communication range"). Realized requesters
	// can be fewer when the node is revoked before the sensor phase.
	if len(malicious) > 0 {
		total := 0
		buf := make([]int, 0, 128)
		for _, i := range dep.MaliciousBeacons() {
			buf = dep.Neighbors(i, buf[:0])
			total += len(buf)
		}
		r.AvgNc = float64(total) / float64(len(malicious))
	}

	// Alert ground truth.
	for _, b := range r.beacons {
		for _, target := range b.AlertsSent {
			if _, isMal := malicious[target]; isMal {
				r.TrueAlerts++
			} else {
				r.BenignAlerts++
			}
		}
	}

	// Distributed-variant metrics.
	if len(r.beacons) > 0 && r.beacons[0].Local != nil {
		beaconByID := make(map[ident.NodeID]*node.Beacon, len(r.beacons))
		for _, b := range r.beacons {
			beaconByID[b.ID()] = b
		}
		var coverage float64
		counted := 0
		buf := make([]int, 0, 128)
		for _, mi := range dep.MaliciousBeacons() {
			malID := dep.Nodes[mi].ID
			buf = dep.Neighbors(mi, buf[:0])
			revokers, benignNbrs := 0, 0
			for _, ni := range buf {
				b, ok := beaconByID[dep.Nodes[ni].ID]
				if !ok {
					continue
				}
				benignNbrs++
				if b.Local.Revoked(malID) {
					revokers++
				}
			}
			if benignNbrs > 0 {
				coverage += float64(revokers) / float64(benignNbrs)
				counted++
			}
		}
		if counted > 0 {
			r.LocalCoverage = coverage / float64(counted)
		}
		falseRevs := 0
		for _, b := range r.beacons {
			for _, id := range b.Local.RevokedSet() {
				if _, isMal := malicious[id]; !isMal {
					falseRevs++
				}
			}
		}
		r.LocalFalseRevocations = float64(falseRevs) / float64(len(r.beacons))
	}

	// Localization outcomes.
	var errSum, errMax float64
	for _, s := range r.sensors {
		r.Timeouts += s.Timeouts()
		if e, ok := s.LocalizationError(); ok {
			r.Localized++
			errSum += e
			if e > errMax {
				errMax = e
			}
		}
	}
	for _, b := range r.beacons {
		r.Timeouts += b.Timeouts()
	}
	if r.Localized > 0 {
		r.LocErrMean = errSum / float64(r.Localized)
	}
	r.LocErrMax = errMax
}

// physicalRequesters maps the requester identities a malicious node saw
// back to distinct physical nodes (each beacon's m detecting IDs collapse
// onto the beacon).
func physicalRequesters(dep *deploy.Deployment, m *node.Malicious) int {
	space := dep.Space
	seen := make(map[int]bool)
	for id := range m.RequestersSeen {
		seen[physicalIndex(space, id)] = true
	}
	return len(seen)
}

func physicalIndex(space ident.Space, id ident.NodeID) int {
	n := int(id) - 1
	switch {
	case n < space.NumBeacons:
		return n
	case n < space.NumBeacons+space.NumSensors:
		return n
	default:
		// Detecting pseudonym: recover the owning beacon index.
		det := n - space.NumBeacons - space.NumSensors
		return det / space.DetectingIDs
	}
}
