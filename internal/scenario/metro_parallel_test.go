package scenario

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"beaconsec/internal/sim"
)

// TestRunMetroWorkerInvariance is the tentpole property test: every
// identity-pinned field of MetroResult (the MetroIdentity projection) is
// byte-identical across worker counts, for both queue implementations.
// CI runs this under -race, so it doubles as the data-race check on the
// sharded kernel.
func TestRunMetroWorkerInvariance(t *testing.T) {
	workerCounts := []int{1, 2, 3, runtime.NumCPU()}
	for _, kind := range []sim.QueueKind{sim.QueueHeap, sim.QueueWheel} {
		t.Run(kind.String(), func(t *testing.T) {
			cfg := MetroPaper(metroN(t), 11)
			cfg.Queue = kind
			serial, err := RunMetro(context.Background(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			want, _ := json.Marshal(serial.Identity())
			for _, w := range workerCounts {
				par, err := RunMetroParallel(context.Background(), cfg, w)
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				got, _ := json.Marshal(par.Identity())
				if string(got) != string(want) {
					t.Errorf("workers=%d diverged from serial in identity-pinned fields:\nserial:   %s\nparallel: %s",
						w, want, got)
				}
				// The per-shard instrumentation still has to account for
				// the same workload: shard-local high-water marks can
				// only shrink, never exceed the serial standing
				// population, and the depth histogram must record every
				// schedule exactly once across shards.
				if par.Sim.MaxPending > serial.Sim.MaxPending {
					t.Errorf("workers=%d: MaxPending %d exceeds serial %d",
						w, par.Sim.MaxPending, serial.Sim.MaxPending)
				}
				if par.QueueDepth.Count != serial.QueueDepth.Count {
					t.Errorf("workers=%d: depth observations %d, serial %d",
						w, par.QueueDepth.Count, serial.QueueDepth.Count)
				}
			}
		})
	}
}

// TestRunMetroWorkersConfigKnob pins that cfg.Workers and the
// RunMetroParallel argument are the same knob: setting one or the other
// produces identical results (the argument overrides the field).
func TestRunMetroWorkersConfigKnob(t *testing.T) {
	cfg := MetroPaper(2_000, 5)
	cfg.Workers = 3
	viaField, err := RunMetro(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 0
	viaArg, err := RunMetroParallel(context.Background(), cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	fb, _ := json.Marshal(viaField)
	ab, _ := json.Marshal(viaArg)
	if string(fb) != string(ab) {
		t.Fatalf("cfg.Workers=3 and RunMetroParallel(..., 3) diverged:\n%s\n%s", fb, ab)
	}
}

// TestRunMetroCanceledContext pins the cancellation contract at the
// stream boundary: a context canceled before the run starts aborts both
// kernels during ingest with the context's error and no result.
func TestRunMetroCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		cfg := MetroPaper(2_000, 1)
		cfg.Workers = workers
		res, err := RunMetro(ctx, cfg)
		if res != nil {
			t.Errorf("workers=%d: canceled run returned a result", workers)
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
}

// TestRunMetroCancelMidRun cancels a large run from another goroutine
// shortly after it starts, so cancellation lands mid-stream or mid-drain
// rather than at the entry check. The population is sized to take far
// longer than the cancel delay on any machine.
func TestRunMetroCancelMidRun(t *testing.T) {
	if testing.Short() {
		t.Skip("large-population cancellation test; run without -short")
	}
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(2 * time.Millisecond)
			cancel()
		}()
		cfg := MetroPaper(300_000, 1)
		cfg.Workers = workers
		start := time.Now()
		res, err := RunMetro(ctx, cfg)
		wall := time.Since(start)
		cancel()
		if res != nil {
			t.Errorf("workers=%d: canceled run returned a result", workers)
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		// A full 300k run takes seconds; a prompt abort takes
		// milliseconds. The generous bound only catches "cancellation
		// ignored, ran to completion".
		if wall > 10*time.Second {
			t.Errorf("workers=%d: canceled run still took %v", workers, wall)
		}
	}
}

// BenchmarkRunMetroParallel measures the sharded kernel's scaling curve.
// Under -short (the CI bench-smoke leg) it runs a 2k-node population
// once per worker count — a compilation-and-liveness check; the real
// curve comes from the full run at 100k nodes and from
// results/BENCH_*_parallel.json at 1M.
func BenchmarkRunMetroParallel(b *testing.B) {
	nodes := int64(100_000)
	if testing.Short() {
		nodes = 2_000
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			cfg := MetroPaper(nodes, 1)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := RunMetroParallel(context.Background(), cfg, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
