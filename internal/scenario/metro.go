package scenario

import (
	"fmt"
	"math"

	"beaconsec/internal/deploy"
	"beaconsec/internal/metrics"
	"beaconsec/internal/rng"
	"beaconsec/internal/sim"
)

// The metro family scales the paper's detection workload to 100k–1M-node
// fields. Run cannot go there: it materializes a Deployment, builds every
// node's state machine, and retains per-node verdicts for the whole run —
// and the ident space caps out at ~65k IDs anyway. RunMetro instead keeps
// the workload memory-bounded end to end:
//
//   - The deployment is never materialized: deploy.MetroConfig streams
//     nodes chunk by chunk, and the field survives only as the
//     deploy.MetroGrid per-cell count summary.
//   - Per-node outcomes are never retained: every probe exchange folds
//     into constant-size accumulators (counters + fixed-bucket
//     histograms) the moment it resolves.
//   - Per-node randomness is index-split (rng.SplitIndex), so results are
//     independent of chunk size and of everything but the seed.
//
// The probe model is the timer skeleton of the paper's §2 detection
// round: each node runs Rounds probe exchanges against its local beacon
// neighborhood; a probe schedules a reply (which cancels the timeout) or
// is lost (the timeout fires); replies carry a declared-distance error
// that the ε_max consistency check flags. That is exactly the
// schedule/cancel/fire mix the event queue serves in a full run, at a
// pending-event population proportional to the node count.

// MetroConfig parameterizes one metro-scale run. Start from MetroPaper()
// and adjust.
type MetroConfig struct {
	// Deploy is the streamed deployment.
	Deploy deploy.MetroConfig
	// Queue selects the scheduler's event-queue implementation. As in
	// Config, the choice is a pure performance knob: results are pinned
	// byte-identical across queues (TestRunMetroQueueIdentity), so it is
	// excluded from any cache-key material.
	Queue sim.QueueKind `json:"-"`
	// Rounds is the number of probe exchanges each node runs.
	Rounds int
	// Spacing is the base virtual-time gap between a node's rounds (each
	// node jitters around it).
	Spacing sim.Time
	// Timeout is the reply deadline of one probe.
	Timeout sim.Time
	// LossRate is the probability a probe gets no reply.
	LossRate float64
	// AttackBias is the distance enlargement of malicious replies in
	// feet.
	AttackBias float64
	// MaxDistError is ε_max in feet (the consistency-check bound and the
	// benign ranging-error envelope).
	MaxDistError float64
	// Seed drives the probe randomness (placement comes from
	// Deploy.Seed).
	Seed uint64
}

// MetroPaper returns the metro-scale configuration at the paper's
// densities: n nodes at §4's deployment mix, three detection rounds, 2%
// probe loss, ε = 10 ft, and a 1.5·ε attack bias (a subtle attacker, not
// the unmistakable 5·ε default of the full scenario).
func MetroPaper(n int64, seed uint64) MetroConfig {
	return MetroConfig{
		Deploy:       deploy.Metro(n, seed),
		Rounds:       3,
		Spacing:      sim.Millis(200),
		Timeout:      sim.Millis(20),
		LossRate:     0.02,
		AttackBias:   15,
		MaxDistError: 10,
		Seed:         seed,
	}
}

// Validate returns an error for inconsistent configurations.
func (c MetroConfig) Validate() error {
	if err := c.Deploy.Validate(); err != nil {
		return err
	}
	if c.Rounds <= 0 {
		return fmt.Errorf("scenario: metro Rounds = %d must be positive", c.Rounds)
	}
	if c.Spacing <= 0 {
		return fmt.Errorf("scenario: metro Spacing = %d must be positive", c.Spacing)
	}
	if c.Timeout < 4 {
		return fmt.Errorf("scenario: metro Timeout = %d must be >= 4 cycles", c.Timeout)
	}
	if c.LossRate < 0 || c.LossRate >= 1 {
		return fmt.Errorf("scenario: metro LossRate %v outside [0,1)", c.LossRate)
	}
	if c.AttackBias < 0 {
		return fmt.Errorf("scenario: metro AttackBias %v must be non-negative", c.AttackBias)
	}
	if c.MaxDistError <= 0 {
		return fmt.Errorf("scenario: metro MaxDistError %v must be positive", c.MaxDistError)
	}
	return nil
}

// MetroResult is a metro run's full accounting: population totals from
// the count grid, probe outcomes, flag counts by responder ground truth,
// and the scheduler's instrumentation. Everything here is deterministic
// in (Deploy.Seed, Seed) and identical across queue implementations.
type MetroResult struct {
	// Population (from the deployment grid).
	Nodes     int64 `json:"nodes"`
	Beacons   int64 `json:"beacons"`
	Malicious int64 `json:"malicious"`

	// Probe outcomes.
	Probes          int64 `json:"probes"`
	Replies         int64 `json:"replies"`
	Timeouts        int64 `json:"timeouts"`
	MaliciousProbes int64 `json:"malicious_probes"`

	// FlaggedMalicious / FlaggedBenign count ε_max consistency-check hits
	// by responder ground truth; FlagRate = FlaggedMalicious /
	// MaliciousProbes.
	FlaggedMalicious int64   `json:"flagged_malicious"`
	FlaggedBenign    int64   `json:"flagged_benign"`
	FlagRate         float64 `json:"flag_rate"`

	// Sim is the scheduler snapshot (MaxPending is the standing event
	// population's high-water mark).
	Sim sim.Stats `json:"sim"`
	// QueueDepth is the queue size observed after every schedule.
	QueueDepth *metrics.Histogram `json:"queue_depth"`
	// RTT is the reply round-trip distribution in cycles.
	RTT *metrics.Histogram `json:"rtt"`
}

// metroChain is one node's probe-round state machine; everything else a
// probe needs is drawn from src when the event fires.
type metroChain struct {
	src   *rng.Source
	pMal  float64 // local malicious fraction of beacons, from the grid
	round int
}

// RunMetro executes one metro-scale run. Peak memory is O(nodes) only in
// the pending-event population and the per-node chain state (a rng state
// plus two words), never in retained results: accumulators are
// constant-size and the deployment exists only as its count grid.
func RunMetro(cfg MetroConfig) (*MetroResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	grid, err := cfg.Deploy.BuildGrid()
	if err != nil {
		return nil, err
	}
	depth := sim.DepthHistogram()
	sched := sim.NewWithConfig(sim.Config{
		Queue:       cfg.Queue,
		PendingHint: cfg.Deploy.NumNodes,
		Depth:       depth,
	})
	res := &MetroResult{
		Nodes:      grid.TotalNodes,
		Beacons:    grid.TotalBeacons,
		Malicious:  grid.TotalMalicious,
		QueueDepth: depth,
		RTT:        metrics.NewHistogram(metrics.ExpBounds(64, 2, 16)...),
	}
	root := rng.New(cfg.Seed).Split("metro-probes")
	rttSpan := int(cfg.Timeout) / 2 // replies always beat the timeout

	err = cfg.Deploy.Stream(func(chunk []deploy.MetroNode) error {
		for _, n := range chunk {
			ch := &metroChain{src: root.SplitIndex(uint64(n.Index))}
			if _, b, m := grid.CountsNear(n.Loc, cfg.Deploy.Range); b > 0 {
				ch.pMal = m / b
			}
			var probe func()
			done := func() {
				ch.round++
				if ch.round < cfg.Rounds {
					gap := cfg.Spacing + sim.Time(ch.src.Uint64()%uint64(cfg.Spacing/4+1))
					sched.After(gap, probe)
				}
			}
			probe = func() {
				res.Probes++
				isMal := ch.src.Bool(ch.pMal)
				lost := ch.src.Bool(cfg.LossRate)
				declaredErr := ch.src.Uniform(-cfg.MaxDistError, cfg.MaxDistError)
				if isMal {
					res.MaliciousProbes++
					declaredErr += cfg.AttackBias
				}
				rtt := sim.Time(1 + ch.src.Intn(rttSpan))
				timeout := sched.After(cfg.Timeout, func() {
					res.Timeouts++
					done()
				})
				if lost {
					return
				}
				sched.After(rtt, func() {
					res.Replies++
					res.RTT.Observe(float64(rtt))
					if math.Abs(declaredErr) > cfg.MaxDistError {
						if isMal {
							res.FlaggedMalicious++
						} else {
							res.FlaggedBenign++
						}
					}
					timeout.Cancel()
					done()
				})
			}
			// Stagger the first round across one spacing window so the
			// field does not probe in lockstep.
			start := sim.Time(1 + ch.src.Uint64()%uint64(cfg.Spacing))
			sched.At(start, probe)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if err := sched.Run(); err != nil {
		return nil, fmt.Errorf("scenario: metro scheduler stopped: %w", err)
	}
	if res.MaliciousProbes > 0 {
		res.FlagRate = float64(res.FlaggedMalicious) / float64(res.MaliciousProbes)
	}
	res.Sim = sched.Stats()
	return res, nil
}
