package scenario

import (
	"context"
	"fmt"
	"math"
	"sync"

	"beaconsec/internal/deploy"
	"beaconsec/internal/metrics"
	"beaconsec/internal/rng"
	"beaconsec/internal/sim"
)

// The metro family scales the paper's detection workload to 100k–1M-node
// fields. Run cannot go there: it materializes a Deployment, builds every
// node's state machine, and retains per-node verdicts for the whole run —
// and the ident space caps out at ~65k IDs anyway. RunMetro instead keeps
// the workload memory-bounded end to end:
//
//   - The deployment is never materialized: deploy.MetroConfig streams
//     nodes chunk by chunk, and the field survives only as the
//     deploy.MetroGrid per-cell count summary.
//   - Per-node outcomes are never retained: every probe exchange folds
//     into constant-size accumulators (counters + fixed-bucket
//     histograms) the moment it resolves.
//   - Per-node randomness is index-split (rng.SplitIndex), so results are
//     independent of chunk size and of everything but the seed.
//
// The probe model is the timer skeleton of the paper's §2 detection
// round: each node runs Rounds probe exchanges against its local beacon
// neighborhood; a probe schedules a reply (which cancels the timeout) or
// is lost (the timeout fires); replies carry a declared-distance error
// that the ε_max consistency check flags. That is exactly the
// schedule/cancel/fire mix the event queue serves in a full run, at a
// pending-event population proportional to the node count.
//
// Workers > 1 runs the same workload on a space-partitioned parallel
// kernel (DESIGN.md §14): the streamed deployment is split into
// contiguous index-range shards (deploy.ShardRanges), each shard owns a
// private sim.Scheduler with its own queue, depth histogram, and
// accumulators, and the shards advance in conservative lockstep windows
// of one probe Timeout (the lookahead) separated by barriers. Because
// probe chains are node-local and per-node rng is index-split, the
// partition cannot change any probe outcome: every identity-pinned field
// of MetroResult is byte-identical to the serial run at any worker count
// (see MetroResult.Identity and TestRunMetroWorkerInvariance).

// MetroConfig parameterizes one metro-scale run. Start from MetroPaper()
// and adjust.
type MetroConfig struct {
	// Deploy is the streamed deployment.
	Deploy deploy.MetroConfig
	// Queue selects the scheduler's event-queue implementation. As in
	// Config, the choice is a pure performance knob: results are pinned
	// byte-identical across queues (TestRunMetroQueueIdentity), so it is
	// excluded from any cache-key material.
	Queue sim.QueueKind `json:"-"`
	// Workers selects the parallel shard count: 0 or 1 runs the serial
	// kernel, K ≥ 2 runs K space-partitioned shards on their own
	// goroutines. Like Queue it is a pure performance knob excluded from
	// cache-key material — the identity-pinned fields of MetroResult
	// (everything MetroResult.Identity covers) are byte-identical at any
	// worker count; only the scheduler instrumentation (Sim.MaxPending,
	// Sim.VirtualCycles, QueueDepth's distribution) becomes per-shard,
	// with the merge semantics documented on MetroResult.
	Workers int `json:"-"`
	// Rounds is the number of probe exchanges each node runs.
	Rounds int
	// Spacing is the base virtual-time gap between a node's rounds (each
	// node jitters around it).
	Spacing sim.Time
	// Timeout is the reply deadline of one probe. It doubles as the
	// parallel kernel's conservative lookahead: no probe chain can affect
	// virtual times more than one Timeout past its current event.
	Timeout sim.Time
	// LossRate is the probability a probe gets no reply.
	LossRate float64
	// AttackBias is the distance enlargement of malicious replies in
	// feet.
	AttackBias float64
	// MaxDistError is ε_max in feet (the consistency-check bound and the
	// benign ranging-error envelope).
	MaxDistError float64
	// Seed drives the probe randomness (placement comes from
	// Deploy.Seed).
	Seed uint64
}

// MetroPaper returns the metro-scale configuration at the paper's
// densities: n nodes at §4's deployment mix, three detection rounds, 2%
// probe loss, ε = 10 ft, and a 1.5·ε attack bias (a subtle attacker, not
// the unmistakable 5·ε default of the full scenario).
func MetroPaper(n int64, seed uint64) MetroConfig {
	return MetroConfig{
		Deploy:       deploy.Metro(n, seed),
		Rounds:       3,
		Spacing:      sim.Millis(200),
		Timeout:      sim.Millis(20),
		LossRate:     0.02,
		AttackBias:   15,
		MaxDistError: 10,
		Seed:         seed,
	}
}

// maxMetroVirtual bounds the virtual-time arithmetic a metro run can
// reach: the last event of any chain lands no later than the first-round
// stagger (≤ Spacing) plus Rounds inter-round gaps (each ≤ Spacing +
// Spacing/4 jitter) plus one Timeout. Validate keeps that total under
// 2^62 cycles so sim.Time additions (and the parallel kernel's
// epoch·lookahead products) can never wrap the uint64 clock — an absurd
// Spacing used to overflow the Spacing/4+1 jitter path into a
// scheduling-in-the-past panic instead of a config error.
const maxMetroVirtual = uint64(1) << 62

// Validate returns an error for inconsistent configurations.
func (c MetroConfig) Validate() error {
	if err := c.Deploy.Validate(); err != nil {
		return err
	}
	if c.Workers < 0 {
		return fmt.Errorf("scenario: metro Workers = %d must be non-negative", c.Workers)
	}
	if c.Rounds <= 0 {
		return fmt.Errorf("scenario: metro Rounds = %d must be positive", c.Rounds)
	}
	if c.Spacing <= 0 {
		return fmt.Errorf("scenario: metro Spacing = %d must be positive", c.Spacing)
	}
	// Spacing·(2·Rounds+2) over-covers the stagger + jittered-gap total,
	// division keeps the check itself overflow-free.
	if uint64(c.Spacing) > maxMetroVirtual/(2*uint64(c.Rounds)+2) {
		return fmt.Errorf("scenario: metro Spacing = %d cycles overflows the virtual clock over %d rounds", c.Spacing, c.Rounds)
	}
	if c.Timeout < 4 {
		return fmt.Errorf("scenario: metro Timeout = %d must be >= 4 cycles", c.Timeout)
	}
	if uint64(c.Timeout) > maxMetroVirtual {
		return fmt.Errorf("scenario: metro Timeout = %d cycles overflows the virtual clock", c.Timeout)
	}
	if c.LossRate < 0 || c.LossRate >= 1 {
		return fmt.Errorf("scenario: metro LossRate %v outside [0,1)", c.LossRate)
	}
	if c.AttackBias < 0 {
		return fmt.Errorf("scenario: metro AttackBias %v must be non-negative", c.AttackBias)
	}
	if c.MaxDistError <= 0 {
		return fmt.Errorf("scenario: metro MaxDistError %v must be positive", c.MaxDistError)
	}
	return nil
}

// MetroResult is a metro run's full accounting: population totals from
// the count grid, probe outcomes, flag counts by responder ground truth,
// and the scheduler's instrumentation. Everything here is deterministic
// in (Deploy.Seed, Seed) and identical across queue implementations.
//
// Worker-count semantics: every field MetroResult.Identity covers —
// population, probe/flag counters, FlagRate, the RTT histogram, and the
// Sim event/schedule/cancel totals — is additionally byte-identical at
// any Workers value. The remaining instrumentation merges per-shard with
// these documented semantics: Sim counters are summed across shards,
// Sim.MaxPending is the max over shards (each shard's private queue
// high-water mark, so it shrinks roughly by 1/K vs serial),
// Sim.VirtualCycles is the max over shards and is rounded up to the last
// conservative epoch boundary, and QueueDepth merges the per-shard depth
// histograms (total Count still equals the number of schedules, but the
// distribution reflects shard-local depths).
type MetroResult struct {
	// Population (from the deployment grid).
	Nodes     int64 `json:"nodes"`
	Beacons   int64 `json:"beacons"`
	Malicious int64 `json:"malicious"`

	// Probe outcomes.
	Probes          int64 `json:"probes"`
	Replies         int64 `json:"replies"`
	Timeouts        int64 `json:"timeouts"`
	MaliciousProbes int64 `json:"malicious_probes"`

	// FlaggedMalicious / FlaggedBenign count ε_max consistency-check hits
	// by responder ground truth; FlagRate = FlaggedMalicious /
	// MaliciousProbes.
	FlaggedMalicious int64   `json:"flagged_malicious"`
	FlaggedBenign    int64   `json:"flagged_benign"`
	FlagRate         float64 `json:"flag_rate"`

	// Sim is the scheduler snapshot (MaxPending is the standing event
	// population's high-water mark; per-shard at Workers > 1, see above).
	Sim sim.Stats `json:"sim"`
	// QueueDepth is the queue size observed after every schedule
	// (shard-local sizes at Workers > 1).
	QueueDepth *metrics.Histogram `json:"queue_depth"`
	// RTT is the reply round-trip distribution in cycles.
	RTT *metrics.Histogram `json:"rtt"`
}

// MetroIdentity is the projection of a MetroResult that is pinned
// byte-identical across every performance knob — queue implementation
// and worker count alike. Tests, the extra-metro runner, and the CI
// parallel-identity leg all compare runs through this projection; the
// fields it omits (MaxPending, VirtualCycles, the depth distribution)
// are the per-shard instrumentation documented on MetroResult.
type MetroIdentity struct {
	Nodes     int64 `json:"nodes"`
	Beacons   int64 `json:"beacons"`
	Malicious int64 `json:"malicious"`

	Probes          int64 `json:"probes"`
	Replies         int64 `json:"replies"`
	Timeouts        int64 `json:"timeouts"`
	MaliciousProbes int64 `json:"malicious_probes"`

	FlaggedMalicious int64   `json:"flagged_malicious"`
	FlaggedBenign    int64   `json:"flagged_benign"`
	FlagRate         float64 `json:"flag_rate"`

	// Events/Scheduled/Cancelled are shard-summed scheduler totals; the
	// sums equal the serial counts exactly (the partition moves events
	// between schedulers, it never creates or destroys them).
	Events    uint64 `json:"events"`
	Scheduled uint64 `json:"scheduled"`
	Cancelled uint64 `json:"cancelled"`

	RTT *metrics.Histogram `json:"rtt"`
}

// Identity returns the worker- and queue-invariant projection of r.
func (r *MetroResult) Identity() MetroIdentity {
	return MetroIdentity{
		Nodes:            r.Nodes,
		Beacons:          r.Beacons,
		Malicious:        r.Malicious,
		Probes:           r.Probes,
		Replies:          r.Replies,
		Timeouts:         r.Timeouts,
		MaliciousProbes:  r.MaliciousProbes,
		FlaggedMalicious: r.FlaggedMalicious,
		FlaggedBenign:    r.FlaggedBenign,
		FlagRate:         r.FlagRate,
		Events:           r.Sim.Events,
		Scheduled:        r.Sim.Scheduled,
		Cancelled:        r.Sim.Cancelled,
		RTT:              r.RTT,
	}
}

// metroAccum is the constant-size accumulator one scheduler's probe
// chains fold into. The serial kernel owns one; the parallel kernel owns
// one per shard and merges them in ascending shard order. All sums are
// exact (counters are integers and RTT observations are integral cycle
// counts far below 2^53), so the merge is associative and the merged
// totals equal the serial ones bit for bit.
type metroAccum struct {
	probes          int64
	replies         int64
	timeouts        int64
	maliciousProbes int64

	flaggedMalicious int64
	flaggedBenign    int64

	rtt *metrics.Histogram
}

func newMetroAccum() *metroAccum {
	return &metroAccum{rtt: metrics.NewHistogram(metrics.ExpBounds(64, 2, 16)...)}
}

// metroChain is one node's probe-round state machine; everything else a
// probe needs is drawn from src when the event fires.
type metroChain struct {
	src   *rng.Source
	pMal  float64 // local malicious fraction of beacons, from the grid
	round int
}

// addMetroNode wires one node's probe chain onto sched, folding outcomes
// into acc. This is the whole per-node protocol, shared verbatim by the
// serial and parallel kernels: the chain touches nothing but its own
// rng stream (index-split from root), the read-only grid, its scheduler,
// and its accumulator — which is exactly why a node lands in a shard
// without changing any outcome.
func addMetroNode(cfg *MetroConfig, grid *deploy.MetroGrid, sched *sim.Scheduler, root *rng.Source, acc *metroAccum, n deploy.MetroNode) {
	rttSpan := int(cfg.Timeout) / 2 // replies always beat the timeout
	ch := &metroChain{src: root.SplitIndex(uint64(n.Index))}
	if _, b, m := grid.CountsNear(n.Loc, cfg.Deploy.Range); b > 0 {
		ch.pMal = m / b
	}
	var probe func()
	done := func() {
		ch.round++
		if ch.round < cfg.Rounds {
			gap := cfg.Spacing + sim.Time(ch.src.Uint64()%uint64(cfg.Spacing/4+1))
			sched.After(gap, probe)
		}
	}
	probe = func() {
		acc.probes++
		isMal := ch.src.Bool(ch.pMal)
		lost := ch.src.Bool(cfg.LossRate)
		declaredErr := ch.src.Uniform(-cfg.MaxDistError, cfg.MaxDistError)
		if isMal {
			acc.maliciousProbes++
			declaredErr += cfg.AttackBias
		}
		rtt := sim.Time(1 + ch.src.Intn(rttSpan))
		timeout := sched.After(cfg.Timeout, func() {
			acc.timeouts++
			done()
		})
		if lost {
			return
		}
		sched.After(rtt, func() {
			acc.replies++
			acc.rtt.Observe(float64(rtt))
			if math.Abs(declaredErr) > cfg.MaxDistError {
				if isMal {
					acc.flaggedMalicious++
				} else {
					acc.flaggedBenign++
				}
			}
			timeout.Cancel()
			done()
		})
	}
	// Stagger the first round across one spacing window so the
	// field does not probe in lockstep.
	start := sim.Time(1 + ch.src.Uint64()%uint64(cfg.Spacing))
	sched.At(start, probe)
}

// ctxPollEvents is how many events a draining scheduler fires between
// context checks: frequent enough that a 1M-node run cancels in
// milliseconds, rare enough to be invisible next to the events.
const ctxPollEvents = 8192

// drainScheduler runs sched until its queue is empty, polling ctx every
// ctxPollEvents events so metro-scale runs stay interruptible (a bare
// sched.Run would not be).
func drainScheduler(ctx context.Context, sched *sim.Scheduler) error {
	for {
		for i := 0; i < ctxPollEvents; i++ {
			if !sched.Step() {
				return nil
			}
		}
		if err := ctx.Err(); err != nil {
			return err
		}
	}
}

// RunMetro executes one metro-scale run, serial or parallel per
// cfg.Workers. Peak memory is O(nodes) only in the pending-event
// population and the per-node chain state (a rng state plus two words),
// never in retained results: accumulators are constant-size and the
// deployment exists only as its count grid. Cancelling ctx aborts the
// run — mid-stream or mid-drain — and returns the context's error.
func RunMetro(ctx context.Context, cfg MetroConfig) (*MetroResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Workers > 1 {
		return runMetroParallel(ctx, cfg, cfg.Workers)
	}
	return runMetroSerial(ctx, cfg)
}

// RunMetroParallel executes one metro-scale run on the space-partitioned
// parallel kernel with the given worker count, overriding cfg.Workers.
// workers ≤ 1 (or a population with a single shard) runs the serial
// kernel — which is also the definition the parallel identity contract
// is pinned against.
func RunMetroParallel(ctx context.Context, cfg MetroConfig, workers int) (*MetroResult, error) {
	cfg.Workers = workers
	return RunMetro(ctx, cfg)
}

func runMetroSerial(ctx context.Context, cfg MetroConfig) (*MetroResult, error) {
	grid, err := cfg.Deploy.BuildGrid()
	if err != nil {
		return nil, err
	}
	depth := sim.DepthHistogram()
	sched := sim.NewWithConfig(sim.Config{
		Queue:       cfg.Queue,
		PendingHint: cfg.Deploy.NumNodes,
		Depth:       depth,
	})
	acc := newMetroAccum()
	root := rng.New(cfg.Seed).Split("metro-probes")
	err = cfg.Deploy.Stream(func(chunk []deploy.MetroNode) error {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		for i := range chunk {
			addMetroNode(&cfg, grid, sched, root, acc, chunk[i])
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("scenario: metro stream: %w", err)
	}
	if err := drainScheduler(ctx, sched); err != nil {
		return nil, fmt.Errorf("scenario: metro run: %w", err)
	}
	return assembleMetroResult(grid, []*metroAccum{acc}, []sim.Stats{sched.Stats()}, []*metrics.Histogram{depth}), nil
}

// metroShard is one worker of the parallel kernel: a contiguous
// index-range slice of the population on a private scheduler. Nothing in
// it is shared — queue, depth histogram, accumulator, and the rng root
// (re-derived per shard from the seed) are all shard-local; the count
// grid is shared read-only.
type metroShard struct {
	sched *sim.Scheduler
	depth *metrics.Histogram
	acc   *metroAccum
	root  *rng.Source
	in    chan []deploy.MetroNode
	err   error
}

// epochBarrier synchronizes the shards' conservative time windows: no
// shard enters window w until every shard has retired window w-1. Each
// arrival carries the shard's pending-event count and its vote to quit
// (a cancelled context); the barrier resolves one collective verdict per
// generation, so every shard takes the same exit decision and nobody is
// left waiting — the classic conservative-parallel-DES lockstep
// (Chandy–Misra with a global lookahead instead of per-link null
// messages, which one probe-Timeout horizon makes sufficient).
type epochBarrier struct {
	mu      sync.Mutex
	cond    sync.Cond
	parties int
	waiting int
	gen     uint64

	pending int64
	quit    bool
	// verdict of the generation that last completed
	lastCont bool
	lastQuit bool
}

func newEpochBarrier(parties int) *epochBarrier {
	b := &epochBarrier{parties: parties}
	b.cond.L = &b.mu
	return b
}

// arrive blocks until all parties have arrived, then reports the
// collective verdict: cont is true iff some shard still has pending
// events and nobody voted to quit; aborted is true when a quit vote (a
// cancelled context) ended the run, distinguishing abort from a normal
// drain.
func (b *epochBarrier) arrive(pending int64, quit bool) (cont, aborted bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.pending += pending
	b.quit = b.quit || quit
	b.waiting++
	if b.waiting == b.parties {
		b.lastCont = b.pending > 0 && !b.quit
		b.lastQuit = b.quit
		b.pending = 0
		b.quit = false
		b.waiting = 0
		b.gen++
		b.cond.Broadcast()
		return b.lastCont, b.lastQuit
	}
	gen := b.gen
	for gen == b.gen {
		b.cond.Wait()
	}
	return b.lastCont, b.lastQuit
}

func runMetroParallel(ctx context.Context, cfg MetroConfig, workers int) (*MetroResult, error) {
	ranges := cfg.Deploy.ShardRanges(workers)
	if len(ranges) <= 1 {
		return runMetroSerial(ctx, cfg)
	}
	grid, err := cfg.Deploy.BuildGrid()
	if err != nil {
		return nil, err
	}
	k := len(ranges)
	shards := make([]*metroShard, k)
	for i, r := range ranges {
		depth := sim.DepthHistogram()
		shards[i] = &metroShard{
			sched: sim.NewWithConfig(sim.Config{
				Queue:       cfg.Queue,
				PendingHint: r.Len(),
				Depth:       depth,
			}),
			depth: depth,
			acc:   newMetroAccum(),
			root:  rng.New(cfg.Seed).Split("metro-probes"),
			in:    make(chan []deploy.MetroNode, 2),
		}
	}

	// Producer: one pass over the stream in index order, routing a copy
	// of each chunk to its owning shard (Stream reuses the chunk slice).
	// Chunk-aligned shard ranges mean a chunk never splits.
	var streamErr error
	go func() {
		defer func() {
			for _, s := range shards {
				close(s.in)
			}
		}()
		streamErr = cfg.Deploy.StreamShards(k, func(shard int, chunk []deploy.MetroNode) error {
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
			buf := make([]deploy.MetroNode, len(chunk))
			copy(buf, chunk)
			select {
			case shards[shard].in <- buf:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		})
	}()

	// Shard workers: ingest the shard's nodes (scheduling each chain in
	// index order, exactly as the serial kernel would), then advance in
	// conservative lockstep windows of one lookahead until the global
	// pending population drains. Today no event crosses shards — probe
	// chains are node-local — so the barrier never changes an outcome;
	// it is the interface that stays correct when a future protocol
	// stack injects cross-shard events with horizon ≥ lookahead.
	lookahead := cfg.Timeout
	barrier := newEpochBarrier(k)
	var wg sync.WaitGroup
	for _, s := range shards {
		wg.Add(1)
		go func(s *metroShard) {
			defer wg.Done()
			for chunk := range s.in {
				for i := range chunk {
					addMetroNode(&cfg, grid, s.sched, s.root, s.acc, chunk[i])
				}
			}
			for epoch := uint64(1); ; epoch++ {
				cont, aborted := barrier.arrive(s.sched.Pending(), ctx.Err() != nil)
				if !cont {
					if aborted {
						if s.err = ctx.Err(); s.err == nil {
							s.err = context.Canceled
						}
					}
					break
				}
				s.sched.RunUntil(sim.Time(epoch) * lookahead)
			}
		}(s)
	}
	wg.Wait()

	if streamErr != nil {
		return nil, fmt.Errorf("scenario: metro stream: %w", streamErr)
	}
	for _, s := range shards {
		if s.err != nil {
			return nil, fmt.Errorf("scenario: metro run: %w", s.err)
		}
	}

	accs := make([]*metroAccum, k)
	stats := make([]sim.Stats, k)
	depths := make([]*metrics.Histogram, k)
	for i, s := range shards {
		accs[i] = s.acc
		stats[i] = s.sched.Stats()
		depths[i] = s.depth
	}
	return assembleMetroResult(grid, accs, stats, depths), nil
}

// assembleMetroResult merges per-shard accumulators into the final
// result in ascending shard order. With one shard this is the serial
// result verbatim; with many, the identity-pinned fields merge exactly
// (integer sums and integral histogram observations) and the scheduler
// instrumentation merges per the semantics documented on MetroResult
// (counter sums, max of MaxPending and VirtualCycles, depth-histogram
// bucket sums).
func assembleMetroResult(grid *deploy.MetroGrid, accs []*metroAccum, stats []sim.Stats, depths []*metrics.Histogram) *MetroResult {
	res := &MetroResult{
		Nodes:      grid.TotalNodes,
		Beacons:    grid.TotalBeacons,
		Malicious:  grid.TotalMalicious,
		QueueDepth: depths[0].Clone(),
		RTT:        accs[0].rtt.Clone(),
	}
	res.Sim = stats[0]
	for i := 1; i < len(accs); i++ {
		res.QueueDepth.Merge(depths[i])
		res.RTT.Merge(accs[i].rtt)
		res.Sim.Merge(stats[i])
	}
	for _, a := range accs {
		res.Probes += a.probes
		res.Replies += a.replies
		res.Timeouts += a.timeouts
		res.MaliciousProbes += a.maliciousProbes
		res.FlaggedMalicious += a.flaggedMalicious
		res.FlaggedBenign += a.flaggedBenign
	}
	if res.MaliciousProbes > 0 {
		res.FlagRate = float64(res.FlaggedMalicious) / float64(res.MaliciousProbes)
	}
	return res
}
