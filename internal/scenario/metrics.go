package scenario

import (
	"beaconsec/internal/core"
	"beaconsec/internal/mac"
	"beaconsec/internal/metrics"
	"beaconsec/internal/node"
	"beaconsec/internal/phy"
	"beaconsec/internal/revoke"
	"beaconsec/internal/sim"
)

// FilterMetrics counts detector-pipeline outcomes across the deployment,
// split by role: detecting beacon nodes run the full §2.1–2.2 pipeline,
// sensors only the replay filters. LocalReplay counts are RTT-filter
// hits, WormholeReplay counts are wormhole-filter hits.
type FilterMetrics struct {
	DetectorBenign         uint64 `json:"detector_benign"`
	DetectorMalicious      uint64 `json:"detector_malicious"`
	DetectorWormholeReplay uint64 `json:"detector_wormhole_replay"`
	DetectorLocalReplay    uint64 `json:"detector_local_replay"`
	SensorAccepted         uint64 `json:"sensor_accepted"`
	SensorWormholeReplay   uint64 `json:"sensor_wormhole_replay"`
	SensorLocalReplay      uint64 `json:"sensor_local_replay"`
}

// Merge adds another run's counters field-wise.
func (f *FilterMetrics) Merge(o FilterMetrics) {
	f.DetectorBenign += o.DetectorBenign
	f.DetectorMalicious += o.DetectorMalicious
	f.DetectorWormholeReplay += o.DetectorWormholeReplay
	f.DetectorLocalReplay += o.DetectorLocalReplay
	f.SensorAccepted += o.SensorAccepted
	f.SensorWormholeReplay += o.SensorWormholeReplay
	f.SensorLocalReplay += o.SensorLocalReplay
}

// RevocationMetrics groups the base station's outcome counters with the
// uplink's delivery counters.
type RevocationMetrics struct {
	Base   revoke.Stats       `json:"base_station"`
	Uplink revoke.UplinkStats `json:"uplink"`
}

// Merge adds another run's counters field-wise.
func (r *RevocationMetrics) Merge(o RevocationMetrics) {
	r.Base.Merge(o.Base)
	r.Uplink.Merge(o.Uplink)
}

// Metrics is one run's deterministic instrumentation snapshot: every
// field derives from the seeded simulation alone (no wall-clock time), so
// aggregates merged in grid order are identical for any worker count.
type Metrics struct {
	// Runs is the number of simulation runs folded into this snapshot.
	Runs int `json:"runs"`
	// Sim is the event-scheduler snapshot.
	Sim sim.Stats `json:"sim"`
	// Radio is the shared medium's counters.
	Radio phy.Stats `json:"radio"`
	// Link sums the link-layer counters over every node.
	Link mac.Stats `json:"link"`
	// Probes sums the request/reply exchange counters over every
	// requester (detecting beacons and sensors).
	Probes node.ProbeStats `json:"probes"`
	// Filters counts detector-pipeline outcomes.
	Filters FilterMetrics `json:"filters"`
	// Detectors splits the filter counters by detector identity
	// (Result.Detector's canonical string). A single run contributes one
	// key; merged bake-off aggregates carry one entry per detector, so
	// verdict-mix comparisons across detectors need no re-runs.
	Detectors map[string]FilterMetrics `json:"detectors,omitempty"`
	// Revocation counts base-station and uplink activity.
	Revocation RevocationMetrics `json:"revocation"`
	// QueueDepth is the scheduler's standing event population: the queue
	// size observed after every schedule. Identical for the wheel and
	// heap queues (both fire the same event sequence), so it merges
	// across queue choices.
	QueueDepth *metrics.Histogram `json:"queue_depth,omitempty"`
	// Phases is the per-phase breakdown (announce/collude/detect/
	// localize/drain) in virtual time.
	Phases []metrics.Span `json:"phases,omitempty"`
}

// Merge folds another run's metrics into m. Counters add; phase spans
// merge positionally (panicking on mismatched phase structure, which
// would mean the runs used different lifecycles).
func (m *Metrics) Merge(o Metrics) {
	m.Runs += o.Runs
	m.Sim.Merge(o.Sim)
	m.Radio.Merge(o.Radio)
	m.Link.Merge(o.Link)
	m.Probes.Merge(o.Probes)
	m.Filters.Merge(o.Filters)
	for det, f := range o.Detectors {
		if m.Detectors == nil {
			m.Detectors = make(map[string]FilterMetrics)
		}
		acc := m.Detectors[det]
		acc.Merge(f)
		m.Detectors[det] = acc
	}
	m.Revocation.Merge(o.Revocation)
	if m.QueueDepth == nil {
		m.QueueDepth = o.QueueDepth.Clone()
	} else {
		m.QueueDepth.Merge(o.QueueDepth)
	}
	m.Phases = metrics.MergeSpans(m.Phases, o.Phases)
}

// addVerdicts folds a node's verdict map into the detector- or
// sensor-side filter counters. Map iteration order does not matter: each
// verdict feeds exactly one counter.
func (f *FilterMetrics) addVerdicts(verdicts map[core.Verdict]int, sensorSide bool) {
	for v, n := range verdicts {
		c := uint64(n)
		switch {
		case !sensorSide && v == core.VerdictBenign:
			f.DetectorBenign += c
		case !sensorSide && v == core.VerdictMalicious:
			f.DetectorMalicious += c
		case !sensorSide && v == core.VerdictWormholeReplay:
			f.DetectorWormholeReplay += c
		case !sensorSide && v == core.VerdictLocalReplay:
			f.DetectorLocalReplay += c
		case sensorSide && v == core.VerdictBenign:
			f.SensorAccepted += c
		case sensorSide && v == core.VerdictWormholeReplay:
			f.SensorWormholeReplay += c
		case sensorSide && v == core.VerdictLocalReplay:
			f.SensorLocalReplay += c
		}
	}
}

// collectInstrumentation assembles the run's Metrics snapshot after the
// scheduler has drained.
func (r *Result) collectInstrumentation(sched *sim.Scheduler, medium *phy.Medium,
	uplink *revoke.Uplink, spans []metrics.Span, depth *metrics.Histogram) {
	m := Metrics{
		Runs:       1,
		Sim:        sched.Stats(),
		Radio:      medium.Stats(),
		QueueDepth: depth,
		Phases:     spans,
		Revocation: RevocationMetrics{
			Base:   r.bs.Stats(),
			Uplink: uplink.Stats(),
		},
	}
	for _, b := range r.beacons {
		m.Link.Merge(b.LinkStats())
		m.Probes.Merge(b.ProbeStats())
		m.Filters.addVerdicts(b.Verdicts, false)
	}
	for _, mal := range r.malicious {
		m.Link.Merge(mal.LinkStats())
	}
	for _, s := range r.sensors {
		m.Link.Merge(s.LinkStats())
		m.Probes.Merge(s.ProbeStats())
		m.Filters.addVerdicts(s.Verdicts, true)
	}
	m.Detectors = map[string]FilterMetrics{r.Detector: m.Filters}
	r.Metrics = m
}
