package scenario

import (
	"bytes"
	"encoding/json"
	"testing"

	"beaconsec/internal/geo"
)

// TestGridVsBruteForceByteIdentical pins the central promise of the
// spatial-grid optimisation: swapping the radio medium's O(N) receiver
// scan for the grid changes no output byte of a full scenario run. The
// config deliberately exercises every delivery path — CSMA contention,
// a wormhole tunnel (Inject from arbitrary origins), a local replay
// attacker, collusion traffic — so a divergence anywhere in receiver
// order or rng draw order would surface.
func TestGridVsBruteForceByteIdentical(t *testing.T) {
	cfg := smallConfig(0.3, 21)
	cfg.Wormholes = []WormholeSpec{{
		A: geo.Point{X: 100, Y: 100},
		B: geo.Point{X: 450, Y: 450},
	}}
	cfg.ReplayAttackers = []geo.Point{{X: 275, Y: 275}}
	cfg.Collude = true

	marshal := func(brute bool) []byte {
		c := cfg
		c.bruteForceMedium = brute
		res, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	grid := marshal(false)
	brute := marshal(true)
	if !bytes.Equal(grid, brute) {
		// Locate the first divergence for the failure message.
		i := 0
		for i < len(grid) && i < len(brute) && grid[i] == brute[i] {
			i++
		}
		lo := i - 60
		if lo < 0 {
			lo = 0
		}
		hiG, hiB := i+60, i+60
		if hiG > len(grid) {
			hiG = len(grid)
		}
		if hiB > len(brute) {
			hiB = len(brute)
		}
		t.Fatalf("grid and brute-force runs diverge at byte %d:\n  grid:  …%s…\n  brute: …%s…",
			i, grid[lo:hiG], brute[lo:hiB])
	}
}
