package scenario

import (
	"testing"

	"beaconsec/internal/core"
)

// TestValidateDetector: a config naming an unregistered or malformed
// detector must fail validation before any simulation runs.
func TestValidateDetector(t *testing.T) {
	cfg := smallConfig(0.3, 1)
	cfg.Detector = core.DetectorSpec{Name: "nope"}
	if err := cfg.Validate(); err == nil {
		t.Error("unregistered detector accepted")
	}
	cfg.Detector = core.DetectorSpec{Name: "Paper"}
	if err := cfg.Validate(); err == nil {
		t.Error("malformed detector name accepted")
	}
	cfg.Detector = core.DetectorSpec{}
	cfg.AttackBias = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative attack bias accepted")
	}
}

// TestRunThreadsDetectorIdentity: the resolved canonical detector name
// must surface in the result and key the per-detector verdict counters
// in the metrics, for the default and a named alternative alike.
func TestRunThreadsDetectorIdentity(t *testing.T) {
	for _, spec := range []core.DetectorSpec{
		{},
		{Name: "ml"},
		{Name: "mahalanobis", Params: map[string]float64{"threshold": 2.5}},
	} {
		cfg := smallConfig(0.3, 1)
		cfg.Detector = spec
		res := run(t, cfg)
		want := spec.Canonical()
		if res.Detector != want {
			t.Errorf("Result.Detector = %q, want %q", res.Detector, want)
		}
		fm, ok := res.Metrics.Detectors[want]
		if !ok {
			t.Fatalf("%s: metrics missing per-detector counters (have %v)",
				want, res.Metrics.Detectors)
		}
		if fm != res.Metrics.Filters {
			t.Errorf("%s: per-detector counters %+v diverge from filter totals %+v",
				want, fm, res.Metrics.Filters)
		}
	}
}

// TestDefaultDetectorByteIdentical: naming the paper detector explicitly
// must reproduce the implicit default run exactly — the refactor's
// byte-identity contract at the scenario level.
func TestDefaultDetectorByteIdentical(t *testing.T) {
	implicit := run(t, smallConfig(0.3, 7))
	cfg := smallConfig(0.3, 7)
	cfg.Detector = core.DetectorSpec{Name: core.DefaultDetectorName}
	explicit := run(t, cfg)
	if implicit.DetectionRate != explicit.DetectionRate ||
		implicit.RevokedMalicious != explicit.RevokedMalicious ||
		implicit.RevokedBenign != explicit.RevokedBenign ||
		implicit.TrueAlerts != explicit.TrueAlerts ||
		implicit.Localized != explicit.Localized ||
		implicit.LocErrMean != explicit.LocErrMean {
		t.Errorf("explicit paper detector diverged from default:\n%+v\nvs\n%+v",
			implicit, explicit)
	}
}

// TestSubtleAttackSeparatesDetectors: a 1.5ε enlargement sits inside the
// paper's per-exchange always-catch region but outside the Mahalanobis
// ellipse often enough to matter; with a generous exchange budget the
// paper pipeline must catch at least as many attackers as under the
// blatant default, and the mahalanobis run must record strictly fewer
// malicious verdicts per exchange than the paper run on identical
// deployments (catch 0.437 vs 0.75 per flagged exchange).
func TestSubtleAttackSeparatesDetectors(t *testing.T) {
	mal := func(spec core.DetectorSpec) uint64 {
		cfg := smallConfig(0.5, 3)
		cfg.AttackBias = 15 // 1.5 ε_max
		cfg.Detector = spec
		res := run(t, cfg)
		return res.Metrics.Filters.DetectorMalicious
	}
	paper := mal(core.DetectorSpec{})
	maha := mal(core.DetectorSpec{Name: "mahalanobis"})
	if paper == 0 {
		t.Fatal("paper pipeline flagged no exchanges under a 1.5-epsilon attack")
	}
	if maha >= paper {
		t.Errorf("mahalanobis flagged %d exchanges vs paper's %d; expected fewer (catch 0.437 vs 0.75)",
			maha, paper)
	}
}

// TestRTTStatsPinSkipsCalibration: with both the threshold and the
// calibration statistics pinned (as the bake-off pins them), a run with
// a moments-hungry detector must not calibrate at all — pin an
// impossible trial count so any calibration attempt fails loudly.
func TestRTTStatsPinSkipsCalibration(t *testing.T) {
	cfg := smallConfig(0.3, 1)
	cfg.Detector = core.DetectorSpec{Name: "mahalanobis"}
	pinned := core.RTTStats{Mean: 50000, Std: 250, Min: 49200, Max: 50870, Threshold: 50900}
	cfg.RTTStats = &pinned
	cfg.RTTThreshold = pinned.Threshold
	cfg.CalibrationTrials = -1 // any calibration attempt errors out
	res := run(t, cfg)
	if res.RTTThreshold != pinned.Threshold {
		t.Errorf("RTT threshold %v, want pinned %v", res.RTTThreshold, pinned.Threshold)
	}
}
