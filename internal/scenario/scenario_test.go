package scenario

import (
	"math"
	"testing"

	"beaconsec/internal/analysis"
	"beaconsec/internal/geo"
	"beaconsec/internal/revoke"
)

// smallConfig is a ~3x-reduced network that keeps runs fast while
// preserving the paper's densities (10% benign beacons, ~same neighbor
// counts).
func smallConfig(p float64, seed uint64) Config {
	cfg := Paper()
	cfg.Deploy.N = 300
	cfg.Deploy.Nb = 33
	cfg.Deploy.Na = 3
	cfg.Deploy.Field = geo.Square(550) // keeps ~node density of the paper
	cfg.Deploy.Seed = seed
	cfg.Strategy = analysis.StrategyForP(p)
	cfg.Wormholes = nil
	cfg.Collude = false
	cfg.CalibrationTrials = 500
	cfg.Seed = seed
	return cfg
}

func run(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestValidate(t *testing.T) {
	if err := Paper().Validate(); err != nil {
		t.Fatalf("paper config invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Deploy.N = 0 },
		func(c *Config) { c.Revoke.ReportCap = -1 },
		func(c *Config) { c.Strategy.PN = 2 },
		func(c *Config) { c.MaxDistError = 0 },
		func(c *Config) { c.WormholeRate = 1.5 },
		func(c *Config) { c.UplinkLoss = 1 },
	}
	for i, mut := range bad {
		cfg := Paper()
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestCleanNetworkNoRevocations(t *testing.T) {
	cfg := smallConfig(0.3, 1)
	cfg.Deploy.Na = 0
	res := run(t, cfg)
	if res.RevokedBenign != 0 || res.RevokedMalicious != 0 {
		t.Errorf("clean network revoked %d benign, %d malicious",
			res.RevokedBenign, res.RevokedMalicious)
	}
	if res.TrueAlerts != 0 || res.BenignAlerts != 0 {
		t.Errorf("clean network produced alerts: true=%d benign=%d",
			res.TrueAlerts, res.BenignAlerts)
	}
	if res.Localized == 0 {
		t.Error("no sensors localized in a clean network")
	}
	// Mean localization error should be within a small multiple of the
	// ranging error.
	if res.LocErrMean > 3*cfg.MaxDistError {
		t.Errorf("clean-network mean localization error %v ft", res.LocErrMean)
	}
}

func TestAggressiveAttackerRevoked(t *testing.T) {
	cfg := smallConfig(1.0, 2)
	res := run(t, cfg)
	if res.DetectionRate != 1 {
		t.Errorf("always-attacking nodes: detection rate %v, want 1", res.DetectionRate)
	}
	if res.RevokedBenign != 0 {
		t.Errorf("revoked %d benign nodes without wormholes or collusion", res.RevokedBenign)
	}
	if res.AffectedPerMalicious != 0 {
		t.Errorf("affected %v sensors per revoked-before-request malicious node",
			res.AffectedPerMalicious)
	}
}

func TestStealthyAttackerSurvivesButHarmless(t *testing.T) {
	cfg := smallConfig(0, 3) // p_n = 1: never attacks
	res := run(t, cfg)
	if res.RevokedMalicious != 0 {
		t.Errorf("never-attacking nodes revoked: %d", res.RevokedMalicious)
	}
	if res.AffectedPerMalicious != 0 {
		t.Errorf("never-attacking nodes affected %v sensors", res.AffectedPerMalicious)
	}
}

func TestDetectionRateTracksTheory(t *testing.T) {
	// The Figure 12 property at reduced scale: simulated detection rate
	// within a loose band of the closed form at the measured N_c.
	for _, p := range []float64{0.1, 0.4} {
		var det, nc float64
		const trials = 3
		for s := uint64(0); s < trials; s++ {
			res := run(t, smallConfig(p, 10+s))
			det += res.DetectionRate
			nc += res.AvgNc
		}
		det /= trials
		nc /= trials
		pop := analysis.Population{N: 300, Nb: 33, Na: 3}
		want := analysis.RevocationRate(p, 8, 2, int(nc), pop)
		if math.Abs(det-want) > 0.3 {
			t.Errorf("P=%v: detection %v vs theory %v (Nc=%v)", p, det, want, nc)
		}
	}
}

func TestColludersRevokeBoundedBenign(t *testing.T) {
	cfg := smallConfig(0.2, 4)
	cfg.Collude = true
	res := run(t, cfg)
	bound := cfg.Deploy.Na * (cfg.Revoke.ReportCap + 1) / (cfg.Revoke.AlertThreshold + 1)
	if res.RevokedBenign == 0 {
		t.Error("colluders revoked nobody (coordination broken)")
	}
	if res.RevokedBenign > bound {
		t.Errorf("colluders revoked %d benign, bound %d", res.RevokedBenign, bound)
	}
}

func TestCollusionNeedsEnoughColluders(t *testing.T) {
	// With τ' + 1 > Na and alert dedup, colluders cannot revoke anyone.
	cfg := smallConfig(0.2, 5)
	cfg.Collude = true
	cfg.Deploy.Na = 2
	cfg.Revoke = revoke.Config{ReportCap: 10, AlertThreshold: 2}
	res := run(t, cfg)
	if res.RevokedBenign != 0 {
		t.Errorf("2 colluders revoked %d benign despite τ'+1=3", res.RevokedBenign)
	}
}

func TestWormholeCausesBoundedFalseAlerts(t *testing.T) {
	// One analog wormhole, perfect strategy camouflage irrelevant: false
	// alerts between benign beacons appear at rate ≈ (1 - p_d) per
	// cross-tunnel probe, and with τ' = 2 a few benign revocations can
	// occur near the tunnel — but far fewer than with no detector.
	cfg := smallConfig(0, 6)
	cfg.Wormholes = []WormholeSpec{{A: geo.Point{X: 100, Y: 100}, B: geo.Point{X: 450, Y: 400}, Latency: 2}}
	cfg.WormholeRate = 0.9
	res09 := run(t, cfg)

	cfg.Seed = 6 // same seeds, weaker detector
	cfg.WormholeRate = 0
	res00 := run(t, cfg)

	if res09.BenignAlerts >= res00.BenignAlerts && res00.BenignAlerts > 0 {
		t.Errorf("p_d=0.9 produced %d false alerts vs %d at p_d=0",
			res09.BenignAlerts, res00.BenignAlerts)
	}
	if res00.BenignAlerts == 0 {
		t.Error("wormhole with no detector produced no false alerts (tunnel inactive?)")
	}
}

func TestAblationRTTFilterPreventsFalsePositives(t *testing.T) {
	// The RTT filter exists to avoid false positives: when a local
	// attacker replays benign beacon signals, a detecting node that
	// missed the original (collision) but hears the replay measures the
	// wrong distance and would accuse the benign source. With the filter
	// the replay is discarded; without it, false alerts appear.
	base := smallConfig(0, 7)
	base.Strategy = analysis.Strategy{PN: 1} // compromised nodes stay quiet
	// Blanket the field with replay attackers so collisions plus
	// replays are common.
	for x := 100.0; x < 550; x += 150 {
		for y := 100.0; y < 550; y += 150 {
			base.ReplayAttackers = append(base.ReplayAttackers, geo.Point{X: x, Y: y})
		}
	}
	resOn := run(t, base)

	off := base
	off.DisableRTTFilter = true
	resOff := run(t, off)

	if resOn.BenignAlerts != 0 {
		t.Errorf("with RTT filter: %d false alerts between benign beacons", resOn.BenignAlerts)
	}
	if resOff.BenignAlerts == 0 {
		t.Error("without RTT filter: replay attackers induced no false alerts " +
			"(ablation shows nothing)")
	}
}

func TestUplinkLossStillDelivers(t *testing.T) {
	cfg := smallConfig(1.0, 8)
	cfg.UplinkLoss = 0.3
	res := run(t, cfg)
	if res.DetectionRate != 1 {
		t.Errorf("detection %v under 30%% uplink loss (retransmission should recover)",
			res.DetectionRate)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	a := run(t, smallConfig(0.3, 9))
	b := run(t, smallConfig(0.3, 9))
	if a.RevokedMalicious != b.RevokedMalicious ||
		a.RevokedBenign != b.RevokedBenign ||
		a.TrueAlerts != b.TrueAlerts ||
		a.Localized != b.Localized ||
		a.LocErrMean != b.LocErrMean {
		t.Errorf("same-seed runs diverged: %+v vs %+v", a, b)
	}
}

func TestMetricsPlausibility(t *testing.T) {
	res := run(t, smallConfig(0.3, 10))
	if res.AvgNc <= 0 {
		t.Errorf("AvgNc = %v", res.AvgNc)
	}
	if res.Medium.Transmissions == 0 || res.Medium.Deliveries == 0 {
		t.Errorf("medium stats empty: %+v", res.Medium)
	}
	if res.RTTThreshold <= 0 {
		t.Errorf("RTTThreshold = %v", res.RTTThreshold)
	}
	if res.Localized == 0 {
		t.Error("nothing localized")
	}
	if got := len(res.Sensors()); got != 300-33 {
		t.Errorf("Sensors() = %d", got)
	}
	if got := len(res.Beacons()); got != 30 {
		t.Errorf("Beacons() = %d", got)
	}
	if got := len(res.MaliciousNodes()); got != 3 {
		t.Errorf("MaliciousNodes() = %d", got)
	}
	if res.BaseStation() == nil {
		t.Error("BaseStation() nil")
	}

	// Instrumentation aggregate: every layer's counters must be live and
	// mutually consistent for a single run.
	m := res.Metrics
	if m.Runs != 1 {
		t.Errorf("Metrics.Runs = %d", m.Runs)
	}
	if m.Sim.Events == 0 || m.Sim.Scheduled < m.Sim.Events {
		t.Errorf("sim stats implausible: %+v", m.Sim)
	}
	if m.Radio.Transmissions != res.Medium.Transmissions {
		t.Errorf("radio stats diverge from Result.Medium: %d vs %d",
			m.Radio.Transmissions, res.Medium.Transmissions)
	}
	if m.Radio.BytesOnAir == 0 {
		t.Error("no bytes on air")
	}
	if m.Link.Sent == 0 || m.Link.Delivered == 0 {
		t.Errorf("link stats empty: %+v", m.Link)
	}
	if m.Probes.Probes == 0 || m.Probes.Replies == 0 {
		t.Errorf("probe stats empty: %+v", m.Probes)
	}
	if m.Probes.Replies > m.Probes.Probes+m.Probes.Retries {
		t.Errorf("more replies than attempts: %+v", m.Probes)
	}
	if m.Filters.DetectorBenign == 0 {
		t.Errorf("filter verdicts empty: %+v", m.Filters)
	}
	if m.Revocation.Base.Handled == 0 || m.Revocation.Uplink.Attempts < m.Revocation.Uplink.Delivered {
		t.Errorf("revocation stats implausible: %+v", m.Revocation)
	}
	names := make([]string, len(m.Phases))
	var phaseEvents uint64
	for i, s := range m.Phases {
		names[i] = s.Name
		phaseEvents += s.Events
	}
	want := []string{"announce", "collude", "detect", "localize", "drain"}
	if len(names) != len(want) {
		t.Fatalf("phases = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("phases = %v, want %v", names, want)
		}
	}
	if phaseEvents != m.Sim.Events {
		t.Errorf("phase events %d do not cover sim events %d", phaseEvents, m.Sim.Events)
	}
}

func TestPaperScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale run in -short mode")
	}
	res := run(t, Paper())
	if res.DetectionRate < 0.5 {
		t.Errorf("paper-scale detection rate %v at P=0.2", res.DetectionRate)
	}
	// Colluders force benign revocations near the N_a(τ+1)/(τ'+1) bound.
	bound := 10 * 11 / 3
	if res.RevokedBenign > bound {
		t.Errorf("benign revocations %d above bound %d", res.RevokedBenign, bound)
	}
	if res.Localized < 500 {
		t.Errorf("only %d sensors localized", res.Localized)
	}
}

func TestDistributedRevocationCoverage(t *testing.T) {
	// The future-work variant: no base station; each beacon's local
	// ledger should still revoke an aggressive attacker for most of its
	// neighbors.
	cfg := smallConfig(1.0, 20)
	cfg.Distributed = true
	res := run(t, cfg)
	if res.LocalCoverage < 0.5 {
		t.Errorf("local revocation coverage %v at P=1, want most neighbors", res.LocalCoverage)
	}
	if res.RevokedMalicious != 0 {
		t.Errorf("base station revoked %d nodes in the distributed variant", res.RevokedMalicious)
	}
}

func TestDistributedCollusionFramesLocally(t *testing.T) {
	// Without the base station's global report caps, colluders frame
	// neighborhoods: local false revocations appear — the reason the
	// paper keeps the base station.
	cfg := smallConfig(0, 21)
	cfg.Distributed = true
	cfg.Collude = true
	res := run(t, cfg)
	if res.LocalFalseRevocations == 0 {
		t.Skip("colluders had too few beacon neighbors this seed")
	}
	clean := smallConfig(0, 21)
	clean.Distributed = true
	cleanRes := run(t, clean)
	if cleanRes.LocalFalseRevocations > res.LocalFalseRevocations {
		t.Errorf("collusion reduced local false revocations: %v vs %v",
			res.LocalFalseRevocations, cleanRes.LocalFalseRevocations)
	}
}

func TestDistributedBenignNoFalseLocalRevocations(t *testing.T) {
	cfg := smallConfig(0, 22) // quiet attackers, no wormholes, no collusion
	cfg.Distributed = true
	res := run(t, cfg)
	if res.LocalFalseRevocations != 0 {
		t.Errorf("benign network produced %v local false revocations", res.LocalFalseRevocations)
	}
}

func TestRobustLocalizationReducesWormholeDamage(t *testing.T) {
	// Wormhole references that slip past the detector (1-p_d) corrupt
	// plain multilateration; LMS trimming at the sensor recovers.
	base := smallConfig(0, 30)
	base.Wormholes = []WormholeSpec{{A: geo.Point{X: 100, Y: 100}, B: geo.Point{X: 450, Y: 400}, Latency: 2}}
	base.WormholeRate = 0                // detector blind: tunneled references get through
	base.Revoke.AlertThreshold = 1 << 20 // and nobody revokes the framed far beacons first
	plain := run(t, base)

	robust := base
	robust.RobustLocalization = true
	robustRes := run(t, robust)

	if robustRes.LocErrMean >= plain.LocErrMean {
		t.Errorf("robust localization did not help: %v vs %v ft",
			robustRes.LocErrMean, plain.LocErrMean)
	}
}

func TestGeoLeashEndToEnd(t *testing.T) {
	// The concrete leash detector realizes p_d = 1 against benign-beacon
	// wormhole replays (honest far claims): no false alerts at all.
	cfg := smallConfig(0, 31)
	cfg.Wormholes = []WormholeSpec{{A: geo.Point{X: 100, Y: 100}, B: geo.Point{X: 450, Y: 400}, Latency: 2}}
	cfg.UseGeoLeash = true
	res := run(t, cfg)
	if res.BenignAlerts != 0 {
		t.Errorf("geo leash allowed %d false alerts", res.BenignAlerts)
	}
	if res.RevokedBenign != 0 {
		t.Errorf("geo leash allowed %d benign revocations", res.RevokedBenign)
	}
}
