package scenario

import (
	"context"
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"beaconsec/internal/sim"
)

func metroN(t *testing.T) int64 {
	t.Helper()
	if testing.Short() {
		return 2_000
	}
	return 10_000
}

func TestRunMetroBasics(t *testing.T) {
	cfg := MetroPaper(metroN(t), 1)
	res, err := RunMetro(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes != cfg.Deploy.NumNodes {
		t.Fatalf("Nodes = %d, want %d", res.Nodes, cfg.Deploy.NumNodes)
	}
	if res.Beacons == 0 || res.Malicious == 0 {
		t.Fatalf("degenerate population: %d beacons, %d malicious", res.Beacons, res.Malicious)
	}
	wantProbes := res.Nodes * int64(cfg.Rounds)
	if res.Probes != wantProbes {
		t.Errorf("Probes = %d, want %d (every node runs every round)", res.Probes, wantProbes)
	}
	if res.Replies+res.Timeouts != res.Probes {
		t.Errorf("replies %d + timeouts %d != probes %d", res.Replies, res.Timeouts, res.Probes)
	}
	lossRate := float64(res.Timeouts) / float64(res.Probes)
	if lossRate < cfg.LossRate/2 || lossRate > cfg.LossRate*2 {
		t.Errorf("timeout rate = %v, configured loss %v", lossRate, cfg.LossRate)
	}
	// A 1.5·ε bias shifts the declared error to [0.5ε, 2.5ε]: 3/4 of
	// malicious replies exceed ε_max.
	if res.FlagRate < 0.6 || res.FlagRate > 0.9 {
		t.Errorf("FlagRate = %v, want ≈ 0.75 for bias 1.5·ε", res.FlagRate)
	}
	if res.FlaggedBenign != 0 {
		t.Errorf("FlaggedBenign = %d: benign error is bounded by ε_max", res.FlaggedBenign)
	}
	if res.Sim.MaxPending < res.Nodes/2 {
		t.Errorf("MaxPending = %d, want a standing population near %d", res.Sim.MaxPending, res.Nodes)
	}
	if res.QueueDepth.Count == 0 || res.RTT.Count != uint64(res.Replies) {
		t.Errorf("histograms unfilled: depth %d, rtt %d (replies %d)",
			res.QueueDepth.Count, res.RTT.Count, res.Replies)
	}
}

// TestRunMetroQueueIdentity pins the tentpole contract at the scenario
// level: the wheel and the heap produce byte-identical metro results —
// every counter, both histograms, and the scheduler stats.
func TestRunMetroQueueIdentity(t *testing.T) {
	cfg := MetroPaper(metroN(t), 7)
	cfg.Queue = sim.QueueHeap
	heap, err := RunMetro(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Queue = sim.QueueWheel
	wheel, err := RunMetro(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	hb, _ := json.Marshal(heap)
	wb, _ := json.Marshal(wheel)
	if string(hb) != string(wb) {
		t.Fatalf("wheel diverged from heap:\n--- heap\n%s\n--- wheel\n%s", hb, wb)
	}
}

// TestRunQueueIdentity pins the same contract on the full figure
// pipeline: scenario.Run under the wheel is byte-identical to the heap,
// including the instrumentation snapshot.
func TestRunQueueIdentity(t *testing.T) {
	cfg := Paper()
	cfg.CalibrationTrials = 200
	cfg.Queue = sim.QueueHeap
	heap, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Queue = sim.QueueWheel
	wheel, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if heap.DetectionRate != wheel.DetectionRate ||
		heap.FalsePositiveRate != wheel.FalsePositiveRate ||
		heap.LocErrMean != wheel.LocErrMean ||
		heap.Localized != wheel.Localized ||
		heap.Timeouts != wheel.Timeouts ||
		heap.Medium != wheel.Medium {
		t.Fatalf("headline results diverged:\nheap  %+v\nwheel %+v", heap, wheel)
	}
	hb, _ := json.Marshal(heap.Metrics)
	wb, _ := json.Marshal(wheel.Metrics)
	if string(hb) != string(wb) {
		t.Fatalf("instrumentation diverged:\n--- heap\n%s\n--- wheel\n%s", hb, wb)
	}
}

func TestRunMetroDeterministic(t *testing.T) {
	cfg := MetroPaper(metroN(t), 3)
	a, err := RunMetro(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMetro(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same config, different results:\n%+v\n%+v", a, b)
	}
	cfg.Seed = 99
	c, err := RunMetro(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Replies == c.Replies && a.FlaggedMalicious == c.FlaggedMalicious {
		t.Error("different seeds produced identical probe outcomes (suspicious)")
	}
}

func TestRunMetroValidates(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*MetroConfig)
		wantErr bool
	}{
		{"baseline accepted", func(c *MetroConfig) {}, false},
		{"zero rounds", func(c *MetroConfig) { c.Rounds = 0 }, true},
		{"invalid deployment", func(c *MetroConfig) { c.Deploy.Range = 0 }, true},
		{"sub-cycle timeout", func(c *MetroConfig) { c.Timeout = 2 }, true},
		// The boundary of the Timeout >= 4 rule: the rtt span is
		// Timeout/2, so 3 would collapse replies onto the probe tick.
		{"timeout 3 rejected", func(c *MetroConfig) { c.Timeout = 3 }, true},
		{"timeout 4 accepted", func(c *MetroConfig) { c.Timeout = 4 }, false},
		{"timeout overflows clock", func(c *MetroConfig) { c.Timeout = sim.Time(math.MaxUint64 / 2) }, true},
		// An absurd Spacing used to overflow the Spacing/4+1 jitter
		// arithmetic into a scheduling-in-the-past panic; Validate must
		// reject it as a config error instead.
		{"spacing overflows clock", func(c *MetroConfig) { c.Spacing = sim.Time(math.MaxUint64 / 4) }, true},
		{"certain loss", func(c *MetroConfig) { c.LossRate = 1 }, true},
		{"negative workers", func(c *MetroConfig) { c.Workers = -1 }, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := MetroPaper(1000, 1)
			tc.mutate(&cfg)
			err := cfg.Validate()
			if tc.wantErr && err == nil {
				t.Errorf("%s: Validate accepted the config", tc.name)
			}
			if !tc.wantErr && err != nil {
				t.Errorf("%s: Validate rejected the config: %v", tc.name, err)
			}
			if tc.wantErr {
				if _, rerr := RunMetro(context.Background(), cfg); rerr == nil {
					t.Errorf("%s: RunMetro accepted the config", tc.name)
				}
			}
		})
	}
}

func BenchmarkRunMetro10k(b *testing.B) {
	if testing.Short() {
		b.Skip("metro-scale macro benchmark; run without -short")
	}
	for _, kind := range []sim.QueueKind{sim.QueueHeap, sim.QueueWheel} {
		b.Run(kind.String(), func(b *testing.B) {
			cfg := MetroPaper(10_000, 1)
			cfg.Queue = kind
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := RunMetro(context.Background(), cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
