// Package deploy builds randomized network deployments: node populations,
// uniform placement in the sensing field, the beacon/sensor/malicious
// split, identity-space allocation, and neighbor queries. Every downstream
// experiment starts from a Deployment.
package deploy

import (
	"fmt"

	"beaconsec/internal/geo"
	"beaconsec/internal/ident"
	"beaconsec/internal/rng"
)

// Kind classifies a deployed node. Values start at one so the zero value
// is invalid.
type Kind int

// Node kinds.
const (
	KindSensor Kind = iota + 1
	KindBeacon
	KindMalicious // a compromised beacon node
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindSensor:
		return "sensor"
	case KindBeacon:
		return "beacon"
	case KindMalicious:
		return "malicious-beacon"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// IsBeacon reports whether the node serves beacon signals (benign or
// malicious).
func (k Kind) IsBeacon() bool { return k == KindBeacon || k == KindMalicious }

// Config parameterizes a deployment. The zero value is not valid; start
// from Paper() and adjust.
type Config struct {
	// N is the total number of sensor nodes (beacons included).
	N int
	// Nb is the number of beacon nodes, of which Na are compromised.
	Nb int
	// Na is the number of compromised (malicious) beacon nodes.
	Na int
	// Field is the sensing field.
	Field geo.Rect
	// Range is the maximum radio communication range in feet.
	Range float64
	// DetectingIDs is the number of detecting pseudonyms per beacon
	// node (the paper's m).
	DetectingIDs int
	// Seed drives placement and the choice of which beacons are
	// compromised.
	Seed uint64
}

// Paper returns the reconstructed configuration of the paper's §4
// simulation: 1,000 nodes in a 1000×1000 ft field, 110 beacons with 10
// compromised, 150 ft range, m = 8.
func Paper() Config {
	return Config{
		N:            1000,
		Nb:           110,
		Na:           10,
		Field:        geo.Square(1000),
		Range:        150,
		DetectingIDs: 8,
		Seed:         1,
	}
}

// Validate returns an error for inconsistent configurations.
func (c Config) Validate() error {
	if c.N <= 0 {
		return fmt.Errorf("deploy: N = %d must be positive", c.N)
	}
	if c.Nb < 0 || c.Nb > c.N {
		return fmt.Errorf("deploy: Nb = %d outside [0, %d]", c.Nb, c.N)
	}
	if c.Na < 0 || c.Na > c.Nb {
		return fmt.Errorf("deploy: Na = %d outside [0, %d]", c.Na, c.Nb)
	}
	if c.Field.Width() <= 0 || c.Field.Height() <= 0 {
		return fmt.Errorf("deploy: empty field %+v", c.Field)
	}
	if c.Range <= 0 {
		return fmt.Errorf("deploy: range %v must be positive", c.Range)
	}
	if c.DetectingIDs < 0 {
		return fmt.Errorf("deploy: DetectingIDs = %d must be >= 0", c.DetectingIDs)
	}
	space := ident.Space{NumBeacons: c.Nb, NumSensors: c.N - c.Nb, DetectingIDs: c.DetectingIDs}
	if !space.Valid() {
		return fmt.Errorf("deploy: identity space overflows NodeID range (%d ids)", space.Total())
	}
	return checkGridSize(int64(c.N), c.Field, c.Range)
}

// Node is one deployed node.
type Node struct {
	// Index is the node's position in Deployment.Nodes.
	Index int
	// ID is the node's primary identity. Beacons come first in both the
	// index and identity orders.
	ID ident.NodeID
	// Kind classifies the node.
	Kind Kind
	// Loc is the node's true location.
	Loc geo.Point
}

// Deployment is a concrete placement of a node population.
type Deployment struct {
	Cfg   Config
	Space ident.Space
	// Nodes lists all nodes: beacons at indices [0, Nb), sensors after.
	Nodes []Node
	index *geo.Index
	byID  map[ident.NodeID]int
}

// New builds a deployment from cfg with uniform random placement. It
// panics on invalid configuration (deployments are constructed from code,
// not user input, in every supported path — the CLIs validate first).
func New(cfg Config) *Deployment {
	if err := cfg.Validate(); err != nil {
		panic(err.Error())
	}
	src := rng.New(cfg.Seed)
	place := src.Split("placement")
	points := make([]geo.Point, cfg.N)
	for i := range points {
		points[i] = geo.Point{
			X: place.Uniform(cfg.Field.Min.X, cfg.Field.Max.X),
			Y: place.Uniform(cfg.Field.Min.Y, cfg.Field.Max.Y),
		}
	}
	// Which of the Nb beacons are compromised: a uniform subset.
	malicious := make(map[int]bool, cfg.Na)
	for _, idx := range src.Split("compromise").Perm(cfg.Nb)[:cfg.Na] {
		malicious[idx] = true
	}
	return build(cfg, points, malicious)
}

// NewManual builds a deployment with caller-chosen placement: locs[i] is
// node i's location (beacons occupy indices [0, Nb), sensors follow) and
// malicious selects which beacon indices are compromised. len(locs) must
// equal cfg.N and len(malicious) must equal cfg.Na. Experiments and tests
// use it for hand-crafted topologies.
func NewManual(cfg Config, locs []geo.Point, malicious []int) *Deployment {
	if err := cfg.Validate(); err != nil {
		panic(err.Error())
	}
	if len(locs) != cfg.N {
		panic(fmt.Sprintf("deploy: %d locations for N = %d", len(locs), cfg.N))
	}
	if len(malicious) != cfg.Na {
		panic(fmt.Sprintf("deploy: %d malicious indices for Na = %d", len(malicious), cfg.Na))
	}
	malSet := make(map[int]bool, len(malicious))
	for _, i := range malicious {
		if i < 0 || i >= cfg.Nb {
			panic(fmt.Sprintf("deploy: malicious index %d outside beacon range [0,%d)", i, cfg.Nb))
		}
		if malSet[i] {
			panic(fmt.Sprintf("deploy: duplicate malicious index %d", i))
		}
		malSet[i] = true
	}
	points := append([]geo.Point(nil), locs...)
	return build(cfg, points, malSet)
}

func build(cfg Config, points []geo.Point, malicious map[int]bool) *Deployment {
	space := ident.Space{
		NumBeacons:   cfg.Nb,
		NumSensors:   cfg.N - cfg.Nb,
		DetectingIDs: cfg.DetectingIDs,
	}
	d := &Deployment{
		Cfg:   cfg,
		Space: space,
		Nodes: make([]Node, cfg.N),
		byID:  make(map[ident.NodeID]int, cfg.N),
	}
	for i := 0; i < cfg.N; i++ {
		n := Node{Index: i, Loc: points[i]}
		if i < cfg.Nb {
			n.ID = space.BeaconID(i)
			if malicious[i] {
				n.Kind = KindMalicious
			} else {
				n.Kind = KindBeacon
			}
		} else {
			n.ID = space.SensorID(i - cfg.Nb)
			n.Kind = KindSensor
		}
		d.Nodes[i] = n
		d.byID[n.ID] = i
	}
	d.index = geo.NewIndex(cfg.Field, points, cfg.Range)
	return d
}

// ByID returns the node with primary identity id.
func (d *Deployment) ByID(id ident.NodeID) (Node, bool) {
	i, ok := d.byID[id]
	if !ok {
		return Node{}, false
	}
	return d.Nodes[i], true
}

// Neighbors appends to dst the indices of all nodes within radio range of
// node i (excluding i itself), in ascending index order.
func (d *Deployment) Neighbors(i int, dst []int) []int {
	return d.index.Within(d.Nodes[i].Loc, d.Cfg.Range, i, dst)
}

// NeighborsOf returns the indices of all nodes within range of an
// arbitrary point.
func (d *Deployment) NeighborsOf(p geo.Point, dst []int) []int {
	return d.index.Within(p, d.Cfg.Range, -1, dst)
}

// Beacons returns the indices of all beacon nodes (benign and malicious).
func (d *Deployment) Beacons() []int {
	out := make([]int, 0, d.Cfg.Nb)
	for i := 0; i < d.Cfg.Nb; i++ {
		out = append(out, i)
	}
	return out
}

// MaliciousBeacons returns the indices of compromised beacon nodes.
func (d *Deployment) MaliciousBeacons() []int {
	var out []int
	for i := 0; i < d.Cfg.Nb; i++ {
		if d.Nodes[i].Kind == KindMalicious {
			out = append(out, i)
		}
	}
	return out
}

// BenignBeacons returns the indices of uncompromised beacon nodes.
func (d *Deployment) BenignBeacons() []int {
	var out []int
	for i := 0; i < d.Cfg.Nb; i++ {
		if d.Nodes[i].Kind == KindBeacon {
			out = append(out, i)
		}
	}
	return out
}

// Sensors returns the indices of non-beacon nodes.
func (d *Deployment) Sensors() []int {
	out := make([]int, 0, d.Cfg.N-d.Cfg.Nb)
	for i := d.Cfg.Nb; i < d.Cfg.N; i++ {
		out = append(out, i)
	}
	return out
}

// AvgBeaconNeighbors returns the mean number of beacon nodes within range
// of a node — the emergent N_c scale of this deployment.
func (d *Deployment) AvgBeaconNeighbors() float64 {
	if len(d.Nodes) == 0 {
		return 0
	}
	var total int
	buf := make([]int, 0, 128)
	for i := range d.Nodes {
		buf = d.Neighbors(i, buf[:0])
		for _, j := range buf {
			if d.Nodes[j].Kind.IsBeacon() {
				total++
			}
		}
	}
	return float64(total) / float64(len(d.Nodes))
}
