package deploy

import (
	"math"
	"testing"

	"beaconsec/internal/geo"
)

func TestPaperConfig(t *testing.T) {
	cfg := Paper()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("paper config invalid: %v", err)
	}
	if cfg.N != 1000 || cfg.Nb != 110 || cfg.Na != 10 {
		t.Errorf("paper population = %d/%d/%d", cfg.N, cfg.Nb, cfg.Na)
	}
	if cfg.Range != 150 || cfg.DetectingIDs != 8 {
		t.Errorf("paper range/m = %v/%d", cfg.Range, cfg.DetectingIDs)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	tests := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero N", func(c *Config) { c.N = 0 }},
		{"Nb > N", func(c *Config) { c.Nb = c.N + 1 }},
		{"Na > Nb", func(c *Config) { c.Na = c.Nb + 1 }},
		{"empty field", func(c *Config) { c.Field = geo.Rect{} }},
		{"zero range", func(c *Config) { c.Range = 0 }},
		{"negative m", func(c *Config) { c.DetectingIDs = -1 }},
		{"id overflow", func(c *Config) { c.N = 60000; c.Nb = 7000; c.DetectingIDs = 8 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := Paper()
			tt.mut(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestNewCounts(t *testing.T) {
	d := New(Paper())
	if len(d.Nodes) != 1000 {
		t.Fatalf("nodes = %d", len(d.Nodes))
	}
	if got := len(d.Beacons()); got != 110 {
		t.Errorf("beacons = %d", got)
	}
	if got := len(d.MaliciousBeacons()); got != 10 {
		t.Errorf("malicious = %d", got)
	}
	if got := len(d.BenignBeacons()); got != 100 {
		t.Errorf("benign = %d", got)
	}
	if got := len(d.Sensors()); got != 890 {
		t.Errorf("sensors = %d", got)
	}
}

func TestNodesInsideField(t *testing.T) {
	d := New(Paper())
	for _, n := range d.Nodes {
		if !d.Cfg.Field.Contains(n.Loc) {
			t.Fatalf("node %v at %v outside field", n.ID, n.Loc)
		}
	}
}

func TestKindsAndIDsConsistent(t *testing.T) {
	d := New(Paper())
	for i, n := range d.Nodes {
		if n.Index != i {
			t.Fatalf("node %d has Index %d", i, n.Index)
		}
		if i < d.Cfg.Nb {
			if !n.Kind.IsBeacon() {
				t.Fatalf("node %d in beacon range is %v", i, n.Kind)
			}
			if !d.Space.IsBeaconID(n.ID) {
				t.Fatalf("beacon node %d has non-beacon ID %v", i, n.ID)
			}
		} else {
			if n.Kind != KindSensor {
				t.Fatalf("node %d in sensor range is %v", i, n.Kind)
			}
			if d.Space.IsBeaconID(n.ID) {
				t.Fatalf("sensor node %d has beacon ID %v", i, n.ID)
			}
		}
		got, ok := d.ByID(n.ID)
		if !ok || got.Index != i {
			t.Fatalf("ByID(%v) = %+v, %v", n.ID, got, ok)
		}
	}
	if _, ok := d.ByID(0xF000); ok {
		t.Error("ByID(unknown) returned ok")
	}
}

func TestDeterministicBySeed(t *testing.T) {
	a := New(Paper())
	b := New(Paper())
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			t.Fatalf("same seed, different node %d", i)
		}
	}
	cfg := Paper()
	cfg.Seed = 2
	c := New(cfg)
	same := 0
	for i := range a.Nodes {
		if a.Nodes[i].Loc == c.Nodes[i].Loc {
			same++
		}
	}
	if same == len(a.Nodes) {
		t.Error("different seeds produced identical placement")
	}
}

func TestNeighborsSymmetricAndInRange(t *testing.T) {
	d := New(Paper())
	var buf []int
	nbrs := make([][]int, len(d.Nodes))
	for i := range d.Nodes {
		buf = d.Neighbors(i, nil)
		nbrs[i] = append([]int(nil), buf...)
		for _, j := range buf {
			if j == i {
				t.Fatalf("node %d is its own neighbor", i)
			}
			if dist := d.Nodes[i].Loc.Dist(d.Nodes[j].Loc); dist > d.Cfg.Range {
				t.Fatalf("neighbor pair (%d,%d) at distance %v > range", i, j, dist)
			}
		}
	}
	// Symmetry ("if node A can reach node B, then node B can reach A").
	for i, ns := range nbrs {
		for _, j := range ns {
			found := false
			for _, k := range nbrs[j] {
				if k == i {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("neighborhood asymmetric: %d has %d but not vice versa", i, j)
			}
		}
	}
}

func TestNeighborsOfPoint(t *testing.T) {
	d := New(Paper())
	center := geo.Point{X: 500, Y: 500}
	got := d.NeighborsOf(center, nil)
	for _, i := range got {
		if d.Nodes[i].Loc.Dist(center) > d.Cfg.Range {
			t.Fatalf("NeighborsOf returned out-of-range node %d", i)
		}
	}
	if len(got) == 0 {
		t.Error("no nodes within range of field center (density ~70 expected)")
	}
}

func TestAvgBeaconNeighborsScale(t *testing.T) {
	d := New(Paper())
	got := d.AvgBeaconNeighbors()
	// Density: 110 beacons over 10^6 ft², disc of πR² ≈ 70,686 ft² ⇒
	// ≈ 7.8 expected, lower with edge effects.
	want := float64(110) / 1e6 * math.Pi * 150 * 150
	if got < want*0.6 || got > want*1.1 {
		t.Errorf("AvgBeaconNeighbors = %v, want ≈ %v (edge-corrected)", got, want)
	}
}

func TestMaliciousSubsetVariesWithSeed(t *testing.T) {
	cfg := Paper()
	a := New(cfg)
	cfg.Seed = 99
	b := New(cfg)
	sameSet := true
	am := a.MaliciousBeacons()
	bm := b.MaliciousBeacons()
	if len(am) != len(bm) {
		t.Fatalf("malicious counts differ: %d vs %d", len(am), len(bm))
	}
	for i := range am {
		if am[i] != bm[i] {
			sameSet = false
			break
		}
	}
	if sameSet {
		t.Error("different seeds chose the identical compromised subset (suspicious)")
	}
}

func TestKindString(t *testing.T) {
	for _, k := range []Kind{KindSensor, KindBeacon, KindMalicious} {
		if k.String() == "" {
			t.Errorf("empty String for kind %d", k)
		}
	}
	if Kind(0).String() != "kind(0)" {
		t.Errorf("zero kind = %q", Kind(0).String())
	}
	if KindSensor.IsBeacon() || !KindBeacon.IsBeacon() || !KindMalicious.IsBeacon() {
		t.Error("IsBeacon wrong")
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	cfg := Paper()
	cfg.N = -1
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	New(cfg)
}

func BenchmarkNewPaperDeployment(b *testing.B) {
	cfg := Paper()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		New(cfg)
	}
}
