package deploy

import (
	"fmt"
	"math"

	"beaconsec/internal/geo"
	"beaconsec/internal/rng"
)

// Metro-scale deployments (100k–1M nodes) cannot be materialized the way
// Paper-scale ones are: a Deployment holds every Node plus a spatial
// index with per-cell candidate slices, and the ident space caps out at
// ~65k IDs anyway. The metro family instead generates nodes as a stream
// of fixed-size chunks in index order (construction memory is
// O(ChunkSize), independent of NumNodes) and summarizes the field as a
// per-cell count grid (O(cells) memory, no per-node retention).

// MetroNode is one generated node in a metro-scale deployment stream.
// Indices are int64 — metro populations exceed both the ident.NodeID
// space and 32-bit counters.
type MetroNode struct {
	Index int64
	Kind  Kind
	Loc   geo.Point
}

// MetroConfig parameterizes a metro-scale heterogeneous deployment:
// a uniform background population plus Gaussian density clusters (the
// "downtown cores" of a metro field).
type MetroConfig struct {
	// NumNodes is the total population.
	NumNodes int64
	// Field is the sensing field.
	Field geo.Rect
	// Range is the radio communication range in feet (also the count
	// grid's cell size).
	Range float64
	// BeaconFrac is the fraction of nodes that are beacon nodes.
	BeaconFrac float64
	// MaliciousFrac is the fraction of beacon nodes that are compromised.
	MaliciousFrac float64
	// Clusters is the number of Gaussian density clusters; 0 means a
	// purely uniform field.
	Clusters int
	// ClusterWeight is the probability a node is drawn from a cluster
	// rather than the uniform background.
	ClusterWeight float64
	// ClusterSigma is the cluster standard deviation in feet.
	ClusterSigma float64
	// ChunkSize is the number of nodes per generated chunk; 0 selects
	// metroChunkSize. Chunking never changes the generated nodes — the
	// stream is one rng sequence consumed in index order.
	ChunkSize int
	// Seed drives placement, clustering, and the kind assignment.
	Seed uint64
}

// metroChunkSize is the default streaming chunk: big enough to amortize
// per-chunk overhead, small enough that a chunk is cache- and
// allocation-trivial next to the count grid.
const metroChunkSize = 8192

// maxMetroNodes bounds NumNodes: beyond a billion nodes the int64 cell
// counters and float64 index arithmetic here are no longer the
// bottleneck worth reasoning about.
const maxMetroNodes = 1 << 30

// Metro returns a metro-scale configuration at the paper's §4 deployment
// density (10⁻³ nodes/ft²) and population mix (11% beacons, of which
// ~9% compromised — the paper's 110/1000 and 10/110), with four density
// clusters holding half the population.
func Metro(n int64, seed uint64) MetroConfig {
	side := math.Sqrt(float64(n) * 1e3) // n / (1000 nodes per 1000×1000 ft)
	return MetroConfig{
		NumNodes:      n,
		Field:         geo.Square(side),
		Range:         150,
		BeaconFrac:    0.11,
		MaliciousFrac: 1.0 / 11,
		Clusters:      4,
		ClusterWeight: 0.5,
		ClusterSigma:  side / 20,
		Seed:          seed,
	}
}

// Validate returns an error for inconsistent configurations, including a
// *SizeError when the field/range geometry implies a count grid far
// larger than the population it summarizes.
func (c MetroConfig) Validate() error {
	if c.NumNodes <= 0 || c.NumNodes > maxMetroNodes {
		return fmt.Errorf("deploy: metro NumNodes = %d outside [1, %d]", c.NumNodes, int64(maxMetroNodes))
	}
	if c.Field.Width() <= 0 || c.Field.Height() <= 0 {
		return fmt.Errorf("deploy: empty metro field %+v", c.Field)
	}
	if c.Range <= 0 {
		return fmt.Errorf("deploy: metro range %v must be positive", c.Range)
	}
	if c.BeaconFrac < 0 || c.BeaconFrac > 1 {
		return fmt.Errorf("deploy: BeaconFrac %v outside [0,1]", c.BeaconFrac)
	}
	if c.MaliciousFrac < 0 || c.MaliciousFrac > 1 {
		return fmt.Errorf("deploy: MaliciousFrac %v outside [0,1]", c.MaliciousFrac)
	}
	if c.Clusters < 0 {
		return fmt.Errorf("deploy: Clusters = %d must be >= 0", c.Clusters)
	}
	if c.ClusterWeight < 0 || c.ClusterWeight > 1 {
		return fmt.Errorf("deploy: ClusterWeight %v outside [0,1]", c.ClusterWeight)
	}
	if c.Clusters > 0 && c.ClusterWeight > 0 && c.ClusterSigma <= 0 {
		return fmt.Errorf("deploy: ClusterSigma %v must be positive with clusters enabled", c.ClusterSigma)
	}
	if c.ChunkSize < 0 {
		return fmt.Errorf("deploy: ChunkSize = %d must be >= 0", c.ChunkSize)
	}
	return checkGridSize(c.NumNodes, c.Field, c.Range)
}

func (c MetroConfig) chunkSize() int {
	if c.ChunkSize > 0 {
		return c.ChunkSize
	}
	return metroChunkSize
}

// Stream generates the deployment chunk by chunk in index order. The
// chunk slice passed to visit is reused between calls — callers must
// fold it into their accumulators, not retain it. A non-nil error from
// visit aborts the stream and is returned.
func (c MetroConfig) Stream(visit func(chunk []MetroNode) error) error {
	if err := c.Validate(); err != nil {
		return err
	}
	src := rng.New(c.Seed)
	centers := make([]geo.Point, c.Clusters)
	clusterSrc := src.Split("metro-clusters")
	for i := range centers {
		centers[i] = geo.Point{
			X: clusterSrc.Uniform(c.Field.Min.X, c.Field.Max.X),
			Y: clusterSrc.Uniform(c.Field.Min.Y, c.Field.Max.Y),
		}
	}
	place := src.Split("metro-placement")
	chunk := make([]MetroNode, 0, c.chunkSize())
	for i := int64(0); i < c.NumNodes; i++ {
		var loc geo.Point
		if c.Clusters > 0 && place.Bool(c.ClusterWeight) {
			ctr := centers[place.Intn(c.Clusters)]
			loc = c.Field.Clamp(geo.Point{
				X: ctr.X + place.NormFloat64()*c.ClusterSigma,
				Y: ctr.Y + place.NormFloat64()*c.ClusterSigma,
			})
		} else {
			loc = geo.Point{
				X: place.Uniform(c.Field.Min.X, c.Field.Max.X),
				Y: place.Uniform(c.Field.Min.Y, c.Field.Max.Y),
			}
		}
		kind := KindSensor
		if place.Bool(c.BeaconFrac) {
			if place.Bool(c.MaliciousFrac) {
				kind = KindMalicious
			} else {
				kind = KindBeacon
			}
		}
		chunk = append(chunk, MetroNode{Index: i, Kind: kind, Loc: loc})
		if len(chunk) == cap(chunk) {
			if err := visit(chunk); err != nil {
				return err
			}
			chunk = chunk[:0]
		}
	}
	if len(chunk) > 0 {
		return visit(chunk)
	}
	return nil
}

// IndexRange is a half-open [Lo, Hi) range of node indices — one shard of
// a partitioned metro deployment.
type IndexRange struct {
	Lo, Hi int64
}

// Len returns the number of indices in the range.
func (r IndexRange) Len() int64 { return r.Hi - r.Lo }

// ShardRanges partitions [0, NumNodes) into at most k contiguous,
// ascending index ranges whose union is the whole population. Boundaries
// are aligned to the streaming chunk size, so every chunk Stream emits
// lands wholly inside one shard — StreamShards routes chunks without ever
// splitting one. Fewer than k ranges come back when the population has
// fewer chunks than shards; k < 1 is treated as 1.
//
// The ranges are index-aligned, not space-aligned: the generator places
// nodes independently per index, so any contiguous index range is an
// unbiased spatial sample of the field. Consumers that need spatial
// affinity (cross-shard radio in a future parallel protocol stack) query
// the MetroGrid, which is global and shard-blind.
func (c MetroConfig) ShardRanges(k int) []IndexRange {
	if k < 1 {
		k = 1
	}
	cs := int64(c.chunkSize())
	chunks := (c.NumNodes + cs - 1) / cs
	if int64(k) > chunks {
		k = int(chunks)
	}
	ranges := make([]IndexRange, 0, k)
	lo := int64(0)
	for i := 1; i <= k; i++ {
		hi := min(int64(i)*chunks/int64(k)*cs, c.NumNodes)
		ranges = append(ranges, IndexRange{Lo: lo, Hi: hi})
		lo = hi
	}
	return ranges
}

// StreamShards streams the deployment exactly like Stream — one rng
// sequence, index order, reused chunk slices — additionally tagging each
// chunk with the shard that owns it under ShardRanges(k). Because shard
// boundaries are chunk-aligned, a chunk always belongs to exactly one
// shard, and shard indices are non-decreasing over the stream.
func (c MetroConfig) StreamShards(k int, visit func(shard int, chunk []MetroNode) error) error {
	ranges := c.ShardRanges(k)
	shard := 0
	return c.Stream(func(chunk []MetroNode) error {
		for shard < len(ranges)-1 && chunk[0].Index >= ranges[shard].Hi {
			shard++
		}
		return visit(shard, chunk)
	})
}

// MetroGrid is the memory-bounded spatial summary of a metro deployment:
// per-cell population counts by kind. It answers density queries in time
// proportional to the query disc's cell footprint and costs O(cells)
// memory regardless of NumNodes — the grid never holds a candidate slice
// per node.
type MetroGrid struct {
	Field geo.Rect
	Cell  float64
	Cols  int
	Rows  int

	TotalNodes     int64
	TotalBeacons   int64
	TotalMalicious int64

	nodes     []int32
	beacons   []int32
	malicious []int32
}

// BuildGrid streams the deployment once and folds it into a fresh count
// grid, chunk by chunk in index order (so the result is deterministic
// and independent of ChunkSize).
func (c MetroConfig) BuildGrid() (*MetroGrid, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	g := &MetroGrid{
		Field: c.Field,
		Cell:  c.Range,
		Cols:  max(1, int(math.Ceil(c.Field.Width()/c.Range))),
		Rows:  max(1, int(math.Ceil(c.Field.Height()/c.Range))),
	}
	g.nodes = make([]int32, g.Cols*g.Rows)
	g.beacons = make([]int32, g.Cols*g.Rows)
	g.malicious = make([]int32, g.Cols*g.Rows)
	err := c.Stream(func(chunk []MetroNode) error {
		for _, n := range chunk {
			g.Add(n)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return g, nil
}

// Add folds one node into the grid.
func (g *MetroGrid) Add(n MetroNode) {
	i := g.cellIndex(n.Loc)
	g.nodes[i]++
	g.TotalNodes++
	switch n.Kind {
	case KindBeacon:
		g.beacons[i]++
		g.TotalBeacons++
	case KindMalicious:
		g.beacons[i]++
		g.malicious[i]++
		g.TotalBeacons++
		g.TotalMalicious++
	}
}

func (g *MetroGrid) cellIndex(p geo.Point) int {
	cx := int((p.X - g.Field.Min.X) / g.Cell)
	cy := int((p.Y - g.Field.Min.Y) / g.Cell)
	cx = min(max(cx, 0), g.Cols-1)
	cy = min(max(cy, 0), g.Rows-1)
	return cy*g.Cols + cx
}

// CountsNear estimates the population within radius r of p, by kind
// (nodes, beacons — benign and malicious — and malicious alone). Each
// cell overlapping the disc's bounding box contributes its counts scaled
// by the fraction of a 2×2 subsample of the cell that falls inside the
// disc — a deterministic O(r²/cell²) density estimate, not an exact
// census (the grid deliberately does not know where nodes are within a
// cell).
func (g *MetroGrid) CountsNear(p geo.Point, r float64) (nodes, beacons, malicious float64) {
	if r <= 0 {
		return 0, 0, 0
	}
	cx0 := int((p.X - r - g.Field.Min.X) / g.Cell)
	cx1 := int((p.X + r - g.Field.Min.X) / g.Cell)
	cy0 := int((p.Y - r - g.Field.Min.Y) / g.Cell)
	cy1 := int((p.Y + r - g.Field.Min.Y) / g.Cell)
	cx0, cx1 = max(cx0, 0), min(cx1, g.Cols-1)
	cy0, cy1 = max(cy0, 0), min(cy1, g.Rows-1)
	r2 := r * r
	for cy := cy0; cy <= cy1; cy++ {
		for cx := cx0; cx <= cx1; cx++ {
			// 2×2 subsample at the cell's quarter points.
			baseX := g.Field.Min.X + float64(cx)*g.Cell
			baseY := g.Field.Min.Y + float64(cy)*g.Cell
			in := 0
			for _, fx := range [2]float64{0.25, 0.75} {
				for _, fy := range [2]float64{0.25, 0.75} {
					q := geo.Point{X: baseX + fx*g.Cell, Y: baseY + fy*g.Cell}
					if q.Dist2(p) <= r2 {
						in++
					}
				}
			}
			if in == 0 {
				continue
			}
			w := float64(in) / 4
			i := cy*g.Cols + cx
			nodes += w * float64(g.nodes[i])
			beacons += w * float64(g.beacons[i])
			malicious += w * float64(g.malicious[i])
		}
	}
	return nodes, beacons, malicious
}

// SizeError reports a configuration whose spatial grid would dwarf the
// population it serves — the silent-OOM shape (huge field, small range)
// that used to allocate unchecked.
type SizeError struct {
	// Nodes is the configured population.
	Nodes int64
	// Cells is the number of grid cells the field/range geometry implies.
	Cells int64
	// Limit is the maximum allowed for this population.
	Limit int64
}

func (e *SizeError) Error() string {
	return fmt.Sprintf("deploy: field/range imply %d grid cells for %d nodes (limit %d): shrink the field or widen the range",
		e.Cells, e.Nodes, e.Limit)
}

// Grid-size budget: a spatial index may allocate a fixed base plus a
// bounded number of cells per node. Beyond that the grid is empty space
// bookkeeping — a misconfiguration, not a deployment.
const (
	maxCellsBase    = 1 << 16
	maxCellsPerNode = 64
)

// checkGridSize bounds the cell count a field/range geometry implies
// against the population, returning a *SizeError when it is out of
// proportion.
func checkGridSize(nodes int64, field geo.Rect, rng float64) error {
	cols := math.Ceil(field.Width()/rng) + 1
	rows := math.Ceil(field.Height()/rng) + 1
	cells := cols * rows
	limit := float64(maxCellsBase) + float64(maxCellsPerNode)*float64(nodes)
	if cells > limit {
		return &SizeError{
			Nodes: nodes,
			Cells: int64(math.Min(cells, math.MaxInt64)),
			Limit: int64(limit),
		}
	}
	return nil
}
