package deploy

import (
	"errors"
	"math"
	"testing"

	"beaconsec/internal/geo"
)

func collectMetro(t *testing.T, cfg MetroConfig) []MetroNode {
	t.Helper()
	var all []MetroNode
	err := cfg.Stream(func(chunk []MetroNode) error {
		all = append(all, chunk...)
		return nil
	})
	if err != nil {
		t.Fatalf("Stream: %v", err)
	}
	return all
}

func TestMetroStreamChunkSizeInvariant(t *testing.T) {
	base := Metro(20_000, 7)
	want := collectMetro(t, base)
	if int64(len(want)) != base.NumNodes {
		t.Fatalf("generated %d nodes, want %d", len(want), base.NumNodes)
	}
	for _, size := range []int{1, 97, 1000, 1 << 15} {
		cfg := base
		cfg.ChunkSize = size
		got := collectMetro(t, cfg)
		if len(got) != len(want) {
			t.Fatalf("chunk %d: %d nodes, want %d", size, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("chunk %d: node %d = %+v, want %+v", size, i, got[i], want[i])
			}
		}
	}
}

func TestMetroStreamIndexOrderAndBounds(t *testing.T) {
	cfg := Metro(10_000, 3)
	next := int64(0)
	err := cfg.Stream(func(chunk []MetroNode) error {
		if len(chunk) > cfg.chunkSize() {
			t.Fatalf("chunk of %d exceeds chunk size %d", len(chunk), cfg.chunkSize())
		}
		for _, n := range chunk {
			if n.Index != next {
				t.Fatalf("index %d out of order, want %d", n.Index, next)
			}
			next++
			if !cfg.Field.Contains(n.Loc) {
				t.Fatalf("node %d at %v outside field %+v", n.Index, n.Loc, cfg.Field)
			}
			if n.Kind != KindSensor && n.Kind != KindBeacon && n.Kind != KindMalicious {
				t.Fatalf("node %d has kind %v", n.Index, n.Kind)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Stream: %v", err)
	}
	if next != cfg.NumNodes {
		t.Fatalf("streamed %d nodes, want %d", next, cfg.NumNodes)
	}
}

func TestMetroPopulationMix(t *testing.T) {
	cfg := Metro(50_000, 11)
	g, err := cfg.BuildGrid()
	if err != nil {
		t.Fatalf("BuildGrid: %v", err)
	}
	if g.TotalNodes != cfg.NumNodes {
		t.Fatalf("TotalNodes = %d, want %d", g.TotalNodes, cfg.NumNodes)
	}
	beaconFrac := float64(g.TotalBeacons) / float64(g.TotalNodes)
	if math.Abs(beaconFrac-cfg.BeaconFrac) > 0.01 {
		t.Errorf("beacon fraction = %v, want ≈ %v", beaconFrac, cfg.BeaconFrac)
	}
	malFrac := float64(g.TotalMalicious) / float64(g.TotalBeacons)
	if math.Abs(malFrac-cfg.MaliciousFrac) > 0.02 {
		t.Errorf("malicious fraction = %v, want ≈ %v", malFrac, cfg.MaliciousFrac)
	}
}

func TestMetroClustersSkewDensity(t *testing.T) {
	// With half the population in four tight clusters, the densest grid
	// cell must hold far more than the uniform expectation.
	cfg := Metro(50_000, 5)
	g, err := cfg.BuildGrid()
	if err != nil {
		t.Fatalf("BuildGrid: %v", err)
	}
	var peak int32
	for _, c := range g.nodes {
		if c > peak {
			peak = c
		}
	}
	uniform := float64(cfg.NumNodes) / float64(g.Cols*g.Rows)
	if float64(peak) < 3*uniform {
		t.Errorf("peak cell = %d, uniform expectation ≈ %.0f: clusters missing?", peak, uniform)
	}
}

func TestMetroCountsNearApproximatesCensus(t *testing.T) {
	cfg := Metro(20_000, 9)
	g, err := cfg.BuildGrid()
	if err != nil {
		t.Fatalf("BuildGrid: %v", err)
	}
	center := geo.Point{
		X: (cfg.Field.Min.X + cfg.Field.Max.X) / 2,
		Y: (cfg.Field.Min.Y + cfg.Field.Max.Y) / 2,
	}
	r := 3 * cfg.Range
	var exactNodes, exactBeacons float64
	err = cfg.Stream(func(chunk []MetroNode) error {
		for _, n := range chunk {
			if n.Loc.Dist(center) <= r {
				exactNodes++
				if n.Kind.IsBeacon() {
					exactBeacons++
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Stream: %v", err)
	}
	estNodes, estBeacons, _ := g.CountsNear(center, r)
	if exactNodes < 100 {
		t.Fatalf("census too small to compare (%v nodes)", exactNodes)
	}
	if rel := math.Abs(estNodes-exactNodes) / exactNodes; rel > 0.35 {
		t.Errorf("CountsNear nodes = %v vs census %v (rel err %.2f)", estNodes, exactNodes, rel)
	}
	if rel := math.Abs(estBeacons-exactBeacons) / exactBeacons; rel > 0.45 {
		t.Errorf("CountsNear beacons = %v vs census %v (rel err %.2f)", estBeacons, exactBeacons, rel)
	}
	if n, _, _ := g.CountsNear(center, 0); n != 0 {
		t.Errorf("CountsNear(r=0) = %v, want 0", n)
	}
}

func TestMetroValidate(t *testing.T) {
	tests := []struct {
		name     string
		mut      func(*MetroConfig)
		wantSize bool
	}{
		{"zero nodes", func(c *MetroConfig) { c.NumNodes = 0 }, false},
		{"too many nodes", func(c *MetroConfig) { c.NumNodes = maxMetroNodes + 1 }, false},
		{"empty field", func(c *MetroConfig) { c.Field = geo.Rect{} }, false},
		{"zero range", func(c *MetroConfig) { c.Range = 0 }, false},
		{"beacon frac > 1", func(c *MetroConfig) { c.BeaconFrac = 1.5 }, false},
		{"malicious frac < 0", func(c *MetroConfig) { c.MaliciousFrac = -0.1 }, false},
		{"negative clusters", func(c *MetroConfig) { c.Clusters = -1 }, false},
		{"cluster weight > 1", func(c *MetroConfig) { c.ClusterWeight = 2 }, false},
		{"zero sigma with clusters", func(c *MetroConfig) { c.ClusterSigma = 0 }, false},
		{"negative chunk", func(c *MetroConfig) { c.ChunkSize = -1 }, false},
		{"grid dwarfs population", func(c *MetroConfig) {
			c.NumNodes = 100
			c.Field = geo.Square(1e7)
			c.Range = 150
		}, true},
		{"tiny range blows cell count", func(c *MetroConfig) {
			c.NumNodes = 1000
			c.Range = 0.05
		}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := Metro(10_000, 1)
			tt.mut(&cfg)
			err := cfg.Validate()
			if err == nil {
				t.Fatal("invalid config accepted")
			}
			var se *SizeError
			if got := errors.As(err, &se); got != tt.wantSize {
				t.Fatalf("SizeError = %v (err %v), want %v", got, err, tt.wantSize)
			}
			if tt.wantSize {
				if se.Cells <= se.Limit || se.Nodes <= 0 || se.Error() == "" {
					t.Errorf("malformed SizeError %+v", se)
				}
			}
		})
	}
	if err := Metro(100_000, 1).Validate(); err != nil {
		t.Errorf("Metro(100k) invalid: %v", err)
	}
}

func TestConfigValidateGridBounds(t *testing.T) {
	// The paper-scale Config shares the grid budget: a huge field with a
	// small range must be rejected with the typed error instead of letting
	// geo.NewIndex allocate the cell grid.
	cfg := Paper()
	cfg.Field = geo.Square(1e6)
	cfg.Range = 10
	err := cfg.Validate()
	var se *SizeError
	if !errors.As(err, &se) {
		t.Fatalf("Validate = %v, want *SizeError", err)
	}
	if se.Nodes != int64(cfg.N) {
		t.Errorf("SizeError.Nodes = %d, want %d", se.Nodes, cfg.N)
	}
	if err := Paper().Validate(); err != nil {
		t.Errorf("paper config rejected: %v", err)
	}
}

func TestMetroStreamAbortsOnVisitError(t *testing.T) {
	cfg := Metro(10_000, 1)
	cfg.ChunkSize = 100
	sentinel := errors.New("stop")
	calls := 0
	err := cfg.Stream(func([]MetroNode) error {
		calls++
		if calls == 3 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if calls != 3 {
		t.Fatalf("visit called %d times after abort, want 3", calls)
	}
}

func TestMetroShardRanges(t *testing.T) {
	cfg := Metro(100_000, 1)
	cs := int64(cfg.chunkSize())
	for _, k := range []int{-1, 0, 1, 2, 3, 4, 7, 13, 64} {
		ranges := cfg.ShardRanges(k)
		wantK := k
		if wantK < 1 {
			wantK = 1
		}
		chunks := (cfg.NumNodes + cs - 1) / cs
		if int64(wantK) > chunks {
			wantK = int(chunks)
		}
		if len(ranges) != wantK {
			t.Fatalf("k=%d: %d ranges, want %d", k, len(ranges), wantK)
		}
		next := int64(0)
		for i, r := range ranges {
			if r.Lo != next {
				t.Fatalf("k=%d shard %d: Lo = %d, want %d (contiguous ascending)", k, i, r.Lo, next)
			}
			if r.Len() <= 0 {
				t.Fatalf("k=%d shard %d: empty range %+v", k, i, r)
			}
			if r.Lo%cs != 0 {
				t.Fatalf("k=%d shard %d: Lo = %d not chunk-aligned (chunk %d)", k, i, r.Lo, cs)
			}
			next = r.Hi
		}
		if next != cfg.NumNodes {
			t.Fatalf("k=%d: ranges end at %d, want %d", k, next, cfg.NumNodes)
		}
	}
}

func TestMetroShardRangesMoreShardsThanChunks(t *testing.T) {
	cfg := Metro(10_000, 1)
	cfg.ChunkSize = 4_000 // 3 chunks
	ranges := cfg.ShardRanges(8)
	if len(ranges) != 3 {
		t.Fatalf("%d ranges for 3 chunks, want 3: %+v", len(ranges), ranges)
	}
	if ranges[2].Hi != cfg.NumNodes {
		t.Fatalf("last range ends at %d, want %d", ranges[2].Hi, cfg.NumNodes)
	}
}

// TestMetroStreamShardsPartition pins the routing contract: the
// concatenation of each shard's chunks in shard-then-stream order is
// exactly the serial stream, every chunk lies wholly inside its shard's
// range, and shard indices never decrease.
func TestMetroStreamShardsPartition(t *testing.T) {
	cfg := Metro(30_000, 5)
	cfg.ChunkSize = 1_000
	want := collectMetro(t, cfg)
	const k = 4
	ranges := cfg.ShardRanges(k)
	perShard := make([][]MetroNode, len(ranges))
	last := 0
	err := cfg.StreamShards(k, func(shard int, chunk []MetroNode) error {
		if shard < last {
			t.Fatalf("shard index went backwards: %d after %d", shard, last)
		}
		last = shard
		r := ranges[shard]
		if chunk[0].Index < r.Lo || chunk[len(chunk)-1].Index >= r.Hi {
			t.Fatalf("chunk [%d,%d] escapes shard %d range %+v",
				chunk[0].Index, chunk[len(chunk)-1].Index, shard, r)
		}
		perShard[shard] = append(perShard[shard], chunk...)
		return nil
	})
	if err != nil {
		t.Fatalf("StreamShards: %v", err)
	}
	var got []MetroNode
	for _, s := range perShard {
		got = append(got, s...)
	}
	if len(got) != len(want) {
		t.Fatalf("sharded stream yielded %d nodes, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("node %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func BenchmarkDeployMetroStream100k(b *testing.B) {
	if testing.Short() {
		b.Skip("metro-scale macro benchmark; run without -short")
	}
	cfg := Metro(100_000, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var count int64
		err := cfg.Stream(func(chunk []MetroNode) error {
			count += int64(len(chunk))
			return nil
		})
		if err != nil || count != cfg.NumNodes {
			b.Fatalf("count=%d err=%v", count, err)
		}
	}
}

func BenchmarkDeployMetroGrid100k(b *testing.B) {
	if testing.Short() {
		b.Skip("metro-scale macro benchmark; run without -short")
	}
	cfg := Metro(100_000, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g, err := cfg.BuildGrid()
		if err != nil || g.TotalNodes != cfg.NumNodes {
			b.Fatalf("total=%d err=%v", g.TotalNodes, err)
		}
	}
}
