package experiment

import (
	"encoding/json"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"beaconsec/internal/harness"
)

func quick() Options { return Options{Quick: true, Seed: 1} }

// mustRun executes a runner and fails the test on error.
func mustRun(t *testing.T, f func(Options) (Result, error), o Options) Result {
	t.Helper()
	r, err := f(o)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func checkResult(t *testing.T, r Result) {
	t.Helper()
	if r.ID == "" || r.Title == "" {
		t.Errorf("result missing identity: %+v", r)
	}
	if len(r.Series) == 0 {
		t.Fatalf("%s: no series", r.ID)
	}
	for _, s := range r.Series {
		if s.Label == "" {
			t.Errorf("%s: unlabelled series", r.ID)
		}
		if len(s.X) == 0 || len(s.X) != len(s.Y) {
			t.Errorf("%s/%s: series lengths x=%d y=%d", r.ID, s.Label, len(s.X), len(s.Y))
		}
	}
	if out := r.Plot().Render(60, 16); out == "" {
		t.Errorf("%s: empty render", r.ID)
	}
	if csv := r.Plot().CSV(); !strings.HasPrefix(csv, "series,x,y\n") {
		t.Errorf("%s: bad CSV header", r.ID)
	}
}

func TestAllRunnersProduceWellFormedResults(t *testing.T) {
	for _, runner := range All() {
		runner := runner
		t.Run(runner.ID, func(t *testing.T) {
			r := mustRun(t, runner.Run, quick())
			if r.ID != runner.ID {
				t.Errorf("runner %s returned result ID %s", runner.ID, r.ID)
			}
			checkResult(t, r)
		})
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("fig05"); !ok {
		t.Error("fig05 not found")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("unknown ID found")
	}
}

func TestFig4Headlines(t *testing.T) {
	r := mustRun(t, Fig4, quick())
	if len(r.Notes) < 2 {
		t.Fatalf("fig4 notes: %v", r.Notes)
	}
	// The CDF must start at ~0 and end at 1.
	s := r.Series[0]
	if s.Y[0] > 0.05 {
		t.Errorf("CDF starts at %v", s.Y[0])
	}
	if s.Y[len(s.Y)-1] != 1 {
		t.Errorf("CDF ends at %v", s.Y[len(s.Y)-1])
	}
	for i := 1; i < len(s.Y); i++ {
		if s.Y[i] < s.Y[i-1] {
			t.Fatalf("CDF not monotone at %d", i)
		}
	}
}

func TestFig5Shape(t *testing.T) {
	r := mustRun(t, Fig5, quick())
	if len(r.Series) != 4 {
		t.Fatalf("fig5 has %d series", len(r.Series))
	}
	// m=8 dominates m=1 pointwise.
	m1, m8 := r.Series[0], r.Series[3]
	for i := range m1.Y {
		if m8.Y[i] < m1.Y[i]-1e-12 {
			t.Fatalf("m=8 below m=1 at index %d", i)
		}
	}
}

func TestFig6aShape(t *testing.T) {
	r := mustRun(t, Fig6a, quick())
	// tau'=1 dominates tau'=4 (easier revocation).
	t1, t4 := r.Series[0], r.Series[3]
	for i := range t1.Y {
		if t1.Y[i] < t4.Y[i]-1e-12 {
			t.Fatalf("tau'=1 below tau'=4 at index %d", i)
		}
	}
}

func TestFig7Monotone(t *testing.T) {
	r := mustRun(t, Fig7, quick())
	for _, s := range r.Series {
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] < s.Y[i-1]-1e-9 {
				t.Fatalf("%s not monotone in Nc at %d", s.Label, i)
			}
		}
	}
}

func TestFig9InteriorPeak(t *testing.T) {
	r := mustRun(t, Fig9, Options{Seed: 1}) // full grid: quick is too coarse for peak detection
	s := r.Series[0]                        // m=8, tau'=2
	peak, peakIdx := 0.0, 0
	for i, v := range s.Y {
		if v > peak {
			peak, peakIdx = v, i
		}
	}
	if peakIdx == 0 || peakIdx == len(s.Y)-1 {
		t.Errorf("fig9 peak at boundary index %d", peakIdx)
	}
	if last := s.Y[len(s.Y)-1]; last >= peak {
		t.Errorf("fig9 no post-peak decline: peak %v, last %v", peak, last)
	}
}

func TestFig10Decreasing(t *testing.T) {
	r := mustRun(t, Fig10, quick())
	for _, s := range r.Series {
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] > s.Y[i-1]+1e-12 {
				t.Fatalf("%s: P_o increasing at tau=%d", s.Label, i)
			}
		}
	}
}

func TestFig11Counts(t *testing.T) {
	r := mustRun(t, Fig11, quick())
	if len(r.Series) != 2 {
		t.Fatalf("fig11 series: %d", len(r.Series))
	}
	if got := len(r.Series[0].X); got != 100 {
		t.Errorf("benign beacons plotted: %d", got)
	}
	if got := len(r.Series[1].X); got != 10 {
		t.Errorf("malicious beacons plotted: %d", got)
	}
	if !r.Series[0].Scatter {
		t.Error("fig11 series not marked scatter")
	}
}

func TestFig12SimTracksTheory(t *testing.T) {
	r := mustRun(t, Fig12, quick())
	sim, th := r.Series[0], r.Series[1]
	for i := range sim.Y {
		if d := sim.Y[i] - th.Y[i]; d > 0.45 || d < -0.45 {
			t.Errorf("fig12: sim %v vs theory %v at P=%v", sim.Y[i], th.Y[i], sim.X[i])
		}
	}
}

func TestFig14ROCRange(t *testing.T) {
	r := mustRun(t, Fig14, quick())
	for _, s := range r.Series {
		for i := range s.X {
			if s.X[i] < 0 || s.X[i] > 1 || s.Y[i] < 0 || s.Y[i] > 1 {
				t.Errorf("%s: ROC point (%v, %v) out of range", s.Label, s.X[i], s.Y[i])
			}
		}
	}
}

func TestExtraLocalizationDefenseHelps(t *testing.T) {
	r := mustRun(t, ExtraLocalization, quick())
	defended, undefended := r.Series[0], r.Series[1]
	last := len(defended.Y) - 1
	if defended.Y[last] >= undefended.Y[last] {
		t.Errorf("defense did not reduce localization error: %v vs %v",
			defended.Y[last], undefended.Y[last])
	}
}

func TestExtraAblationOrdering(t *testing.T) {
	r := mustRun(t, ExtraAblation, quick())
	full := r.Series[0].Y[0]
	noRTT := r.Series[1].Y[0]
	if noRTT < full {
		t.Errorf("disabling the RTT filter reduced false alerts: %v -> %v", full, noRTT)
	}
}

func TestExtraPromotionShape(t *testing.T) {
	r := mustRun(t, ExtraPromotion, Options{Seed: 1}) // full size: quick topologies can be too sparse
	if len(r.Series) != 3 {
		t.Fatalf("promotion variants: %d", len(r.Series))
	}
	// Compare each variant's mean error over promoted tiers (tier 0 is
	// exact for everyone).
	meanOver := func(ys []float64) float64 {
		if len(ys) < 2 {
			return 0
		}
		sum := 0.0
		for _, v := range ys[1:] {
			sum += v
		}
		return sum / float64(len(ys)-1)
	}
	honest := meanOver(r.Series[0].Y)
	liars := meanOver(r.Series[1].Y)
	detected := meanOver(r.Series[2].Y)
	if honest <= 0 {
		t.Fatal("no promoted tiers formed")
	}
	if liars <= honest {
		t.Errorf("liars did not raise mean error: %v vs honest %v", liars, honest)
	}
	if detected >= liars {
		t.Errorf("detector did not reduce mean error: %v vs %v", detected, liars)
	}
	// The paper's §2.3 accumulation claim: later honest tiers are worse
	// than tier 1.
	hy := r.Series[0].Y
	if len(hy) >= 3 && hy[len(hy)-1] <= hy[1] {
		t.Errorf("no accumulation across honest tiers: %v", hy)
	}
}

func TestExtraDistributedShape(t *testing.T) {
	r := mustRun(t, ExtraDistributed, quick())
	if len(r.Series) != 2 {
		t.Fatalf("series: %d", len(r.Series))
	}
	central, local := r.Series[0], r.Series[1]
	lastC := central.Y[len(central.Y)-1]
	lastL := local.Y[len(local.Y)-1]
	if lastC < 0.5 {
		t.Errorf("centralized detection at P=1: %v", lastC)
	}
	if lastL <= 0 {
		t.Errorf("distributed coverage at P=1: %v", lastL)
	}
	if len(r.Notes) == 0 {
		t.Error("no collusion-cost note")
	}
}

func TestExtraRoutingDefenseHelps(t *testing.T) {
	// Full fidelity: the quick-mode network is small and dense enough
	// that greedy routing shrugs off corrupted positions (2-3 hop
	// paths); the effect needs paper-scale path lengths.
	if testing.Short() {
		t.Skip("paper-scale routing experiment in -short mode")
	}
	r := mustRun(t, ExtraRouting, Options{Seed: 1})
	defended, undefended := r.Series[0], r.Series[1]
	last := len(defended.Y) - 1
	if defended.Y[last] <= undefended.Y[last] {
		t.Errorf("defense did not improve delivery: %v vs %v",
			defended.Y[last], undefended.Y[last])
	}
	if defended.Y[last] < 0.6 {
		t.Errorf("defended delivery rate %v suspiciously low", defended.Y[last])
	}
}

// stripTiming zeroes the wall-clock half of a result's metrics. Wall
// time is non-deterministic by nature; everything else must be
// byte-identical across worker counts.
func stripTiming(r *Result) {
	if r.Metrics != nil {
		r.Metrics.Timing = harness.Timing{}
	}
}

// TestFig12DeterministicAcrossWorkerCounts proves the parallel refactor
// preserves reproducibility: the same seed must give byte-identical
// figure output whether the sweep runs on one worker or eight.
func TestFig12DeterministicAcrossWorkerCounts(t *testing.T) {
	runAt := func(workers int) Result {
		t.Helper()
		r := mustRun(t, Fig12, Options{Quick: true, Seed: 1, Workers: workers})
		stripTiming(&r)
		return r
	}
	base := runAt(1)
	for _, workers := range []int{0, 8} {
		got := runAt(workers)
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("Workers=%d changed the result:\nWorkers=1: %+v\nWorkers=%d: %+v",
				workers, base, workers, got)
		}
		if base.Plot().CSV() != got.Plot().CSV() {
			t.Fatalf("Workers=%d changed the CSV rendering", workers)
		}
	}
}

// TestFig12MetricsIdenticalAcrossWorkerCounts pins the aggregation order:
// the deterministic half of the metrics must serialize to identical JSON
// bytes for any worker count (counters merge in grid order, not
// completion order).
func TestFig12MetricsIdenticalAcrossWorkerCounts(t *testing.T) {
	jsonAt := func(workers int) string {
		t.Helper()
		r := mustRun(t, Fig12, Options{Quick: true, Seed: 1, Workers: workers})
		if r.Metrics == nil {
			t.Fatal("fig12 produced no metrics")
		}
		b, err := json.Marshal(r.Metrics.Scenario)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	base := jsonAt(1)
	for _, workers := range []int{2, 8} {
		if got := jsonAt(workers); got != base {
			t.Fatalf("Workers=%d changed the metrics JSON:\n%s\nvs\n%s", workers, base, got)
		}
	}
}

// TestFig12MetricsContent sanity-checks the aggregate counters: a quick
// fig12 sweep runs 2 points x 1 trial, so Runs = 2, and every layer must
// have seen traffic.
func TestFig12MetricsContent(t *testing.T) {
	r := mustRun(t, Fig12, quick())
	if r.Metrics == nil {
		t.Fatal("fig12 produced no metrics")
	}
	m := r.Metrics.Scenario
	if m.Runs != 2 {
		t.Errorf("Runs = %d, want 2", m.Runs)
	}
	if m.Sim.Events == 0 || m.Sim.Scheduled < m.Sim.Events {
		t.Errorf("implausible scheduler counters: %+v", m.Sim)
	}
	if m.Radio.Transmissions == 0 || m.Radio.BytesOnAir == 0 {
		t.Errorf("no radio traffic: %+v", m.Radio)
	}
	if m.Link.Sent == 0 || m.Link.Delivered == 0 {
		t.Errorf("no link traffic: %+v", m.Link)
	}
	if m.Probes.Probes == 0 || m.Probes.Replies == 0 {
		t.Errorf("no probe exchanges: %+v", m.Probes)
	}
	if m.Filters.SensorAccepted == 0 {
		t.Errorf("sensors accepted nothing: %+v", m.Filters)
	}
	if m.Revocation.Uplink.Attempts < m.Revocation.Uplink.Delivered {
		t.Errorf("uplink delivered more than attempted: %+v", m.Revocation.Uplink)
	}
	wantPhases := []string{"announce", "collude", "detect", "localize", "drain"}
	if len(m.Phases) != len(wantPhases) {
		t.Fatalf("phases: %+v", m.Phases)
	}
	var phaseEvents uint64
	for i, ph := range m.Phases {
		if ph.Name != wantPhases[i] {
			t.Errorf("phase %d = %q, want %q", i, ph.Name, wantPhases[i])
		}
		phaseEvents += ph.Events
	}
	if phaseEvents != m.Sim.Events {
		t.Errorf("phase events sum %d != scheduler events %d", phaseEvents, m.Sim.Events)
	}
	tm := r.Metrics.Timing
	if tm.Jobs != 2 || tm.WallSeconds <= 0 || tm.JobsPerSec <= 0 {
		t.Errorf("implausible timing: %+v", tm)
	}
}

// TestResultJSONRoundTrip proves the machine-readable export is lossless:
// a figure result (series, notes, metrics including histograms and phase
// spans) survives encoding/json unchanged.
func TestResultJSONRoundTrip(t *testing.T) {
	r := mustRun(t, Fig12, quick())
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r, back) {
		t.Errorf("JSON round trip changed the result:\n%+v\nvs\n%+v", r, back)
	}
}

// TestProgressReportsAllJobs checks the Options.Progress callback sees
// every job of a simulation-backed sweep and ends at done == total.
func TestProgressReportsAllJobs(t *testing.T) {
	var mu sync.Mutex
	var calls, last, total int
	o := Options{Quick: true, Seed: 1, Workers: 2}
	o.Progress = func(done, tot int, elapsed time.Duration) {
		mu.Lock()
		defer mu.Unlock()
		calls++
		last, total = done, tot
		if elapsed < 0 {
			t.Errorf("negative elapsed %v", elapsed)
		}
	}
	mustRun(t, Fig12, o)
	if calls == 0 {
		t.Fatal("progress callback never invoked")
	}
	if last != total || total == 0 {
		t.Errorf("final progress %d/%d, want done == total > 0", last, total)
	}
}
