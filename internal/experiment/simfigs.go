package experiment

import (
	"context"
	"encoding/json"
	"fmt"

	"beaconsec/internal/analysis"
	"beaconsec/internal/cache"
	"beaconsec/internal/core"
	"beaconsec/internal/geo"
	"beaconsec/internal/harness"
	"beaconsec/internal/phy"
	"beaconsec/internal/revoke"
	"beaconsec/internal/scenario"
	"beaconsec/internal/textplot"
)

// Fig4 regenerates Figure 4: the empirical CDF of the no-attack RTT,
// measured over 10,000 request/reply exchanges (500 in quick mode), with
// the x_min / x_max / spread headline values.
func Fig4(o Options) (Result, error) {
	trials := 10000
	if o.Quick {
		trials = 500
	}
	cal, err := core.CalibrateRTTWorkers(trials, phy.DefaultJitter(), o.Seed, o.Workers)
	if err != nil {
		return Result{}, err
	}
	var xs, ys []float64
	const points = 120
	span := cal.XMax() - cal.XMin()
	for i := 0; i <= points; i++ {
		x := cal.XMin() + span*float64(i)/points
		xs = append(xs, x)
		ys = append(ys, cal.CDF(x))
	}
	return Result{
		ID:     "fig04",
		Title:  "Cumulative distribution of round-trip time (no attack)",
		XLabel: "RTT (CPU cycles)",
		YLabel: "F(x)",
		Series: []textplot.Series{{Label: fmt.Sprintf("empirical CDF (%d trials)", trials), X: xs, Y: ys}},
		Notes: []string{
			fmt.Sprintf("x_min = %.0f cycles, x_max = %.0f cycles", cal.XMin(), cal.XMax()),
			fmt.Sprintf("spread = %.2f bit-times (paper: ~4.5); replay threshold = %.0f cycles",
				cal.SpreadBits(), cal.Threshold()),
			fmt.Sprintf("one 16-byte packet = %d cycles: any store-and-forward replay is caught",
				phy.FrameAirTime(16)),
		},
	}, nil
}

// quickDeploy shrinks the deployment for smoke tests and benchmarks.
func quickDeploy(c *scenario.Config) {
	c.Deploy.N = 300
	c.Deploy.Nb = 33
	c.Deploy.Na = 3
	c.Deploy.Field = geo.Square(550)
}

// calStats runs the shared RTT calibration and returns its full
// statistics: the threshold is a deployment constant, not per-run state,
// so it is measured once per figure and pinned into every scenario, and
// the moments ride along for detectors that calibrate on them (the
// Mahalanobis detector's mean/σ). With a cache, the measurement is
// memoized by (trials, seed) — and single-flighted, so the concurrently
// regenerating figures that all calibrate with the same parameters pay
// for one calibration between them. The calibration is
// detector-independent, so its key carries an empty detector field.
func calStats(o Options) (core.RTTStats, error) {
	calTrials := 2000
	if o.Quick {
		calTrials = 500
	}
	seed := o.Seed ^ 0xC0FFEE
	compute := func() (core.RTTStats, error) {
		cal, err := core.CalibrateRTTWorkers(calTrials, phy.DefaultJitter(), seed, o.Workers)
		if err != nil {
			return core.RTTStats{}, err
		}
		return cal.Stats(), nil
	}
	if o.Cache == nil {
		return compute()
	}
	key := cache.Fingerprint(cache.CodeSalt, EncodeKey("rtt-calibration", "", struct {
		Trials int
		Seed   uint64
	}{calTrials, seed}))
	data, _, err := o.Cache.GetOrCompute(key, func() ([]byte, error) {
		st, err := compute()
		if err != nil {
			return nil, err
		}
		return json.Marshal(st)
	})
	if err != nil {
		return core.RTTStats{}, err
	}
	var st core.RTTStats
	if err := json.Unmarshal(data, &st); err != nil || st.Threshold == 0 {
		return compute() // schema drift without a salt bump: recompute
	}
	return st, nil
}

// calThreshold is the local-replay threshold from the shared calibration.
func calThreshold(o Options) (float64, error) {
	st, err := calStats(o)
	if err != nil {
		return 0, err
	}
	return st.Threshold, nil
}

// sweepKey builds the canonical cache key for a scenario sweep from its
// fully resolved per-point configs. Seeds are zeroed in the encoding —
// the harness's job fingerprint addresses them — so the key captures
// exactly the configuration half of a trial's identity. The sweep's
// detector identity is lifted into the key's dedicated detector field;
// a sweep must be detector-uniform (the bake-off runs one sweep per
// detector), so mixed-detector protos panic.
func sweepKey(kind string, trials int, protos []scenario.Config) []byte {
	detector := core.DetectorSpec{}.Canonical()
	for i := range protos {
		if d := protos[i].Detector.Canonical(); i == 0 {
			detector = d
		} else if d != detector {
			panic(fmt.Sprintf("experiment: sweepKey(%s): mixed detectors %q and %q in one sweep",
				kind, detector, d))
		}
		protos[i].Seed = 0
		protos[i].Deploy.Seed = 0
	}
	return EncodeKey(kind, detector, struct {
		Trials  int
		Configs []scenario.Config
	}{trials, protos})
}

// simSweep runs the paper-scale scenario across a P grid on the trial
// harness and returns the per-P averaged results plus the sweep's
// aggregate instrumentation. The sweep label keys the seed streams, so
// two figures with the same root seed never replay each other's trials
// — and conversely, figures that deliberately share a label (fig12 and
// fig13 both consume the "detect" sweep) address the same cached
// trials.
func simSweep(o Options, label string, ps []float64, trials int, mutate func(*scenario.Config)) ([]*scenario.Result, *RunMetrics, error) {
	threshold, err := calThreshold(o)
	if err != nil {
		return nil, nil, err
	}
	// cfgAt resolves the full per-point configuration; Run stamps only
	// the job seeds on top. Keeping key construction and execution on
	// one config builder means anything mutate can express is in the
	// cache key.
	cfgAt := func(point int) scenario.Config {
		cfg := scenario.Paper()
		cfg.Queue = o.Queue
		cfg.Strategy = analysis.StrategyForP(ps[point])
		cfg.RTTThreshold = threshold
		if o.Quick {
			quickDeploy(&cfg)
		}
		if mutate != nil {
			mutate(&cfg)
		}
		return cfg
	}
	protos := make([]scenario.Config, len(ps))
	for p := range ps {
		protos[p] = cfgAt(p)
	}
	timing := harness.NewTiming()
	sims, err := harness.SweepReduce(context.Background(), harness.Spec[*scenario.Result]{
		Label:    label,
		Points:   harness.FloatLabels("P", ps),
		Trials:   trials,
		Seed:     o.Seed,
		Workers:  o.Workers,
		Progress: o.progress(),
		Timing:   timing,
		Cache:    o.Cache,
		Key:      sweepKey("simSweep", trials, protos),
		Codec:    harness.JSONCodec[*scenario.Result](),
		Run: func(_ context.Context, job harness.Job) (*scenario.Result, error) {
			cfg := cfgAt(job.Point)
			cfg.Seed = job.Seed
			// The deployment is shared across sweep points (common
			// random numbers): only the trial index seeds placement, so
			// curves differ in the swept parameter, not the topology.
			cfg.Deploy.Seed = job.TrialSeed
			return scenario.Run(cfg)
		},
	}, meanScenario)
	if err != nil {
		return nil, nil, err
	}
	rm := &RunMetrics{Timing: *timing}
	// Point-then-trial order: the reducer already merged each point's
	// trials in trial order, so folding points in grid order keeps the
	// aggregate identical for any worker count.
	for _, s := range sims {
		rm.Scenario.Merge(s.Metrics)
	}
	return sims, rm, nil
}

// meanScenario averages the metric fields the figures consume; the
// population is constant across trials of a point. Instrumentation
// counters are summed (not averaged): Metrics.Runs records how many runs
// fed them.
func meanScenario(_ int, runs []*scenario.Result) *scenario.Result {
	agg := &scenario.Result{}
	for _, r := range runs {
		agg.DetectionRate += r.DetectionRate
		agg.AffectedPerMalicious += r.AffectedPerMalicious
		agg.AvgNc += r.AvgNc
		agg.FalsePositiveRate += r.FalsePositiveRate
		agg.BenignAlerts += r.BenignAlerts
		agg.TrueAlerts += r.TrueAlerts
		agg.Population = r.Population
		agg.Detector = r.Detector
		agg.Metrics.Merge(r.Metrics)
	}
	f := float64(len(runs))
	agg.DetectionRate /= f
	agg.AffectedPerMalicious /= f
	agg.AvgNc /= f
	agg.FalsePositiveRate /= f
	agg.BenignAlerts /= len(runs)
	agg.TrueAlerts /= len(runs)
	return agg
}

func sweepGrid(o Options) ([]float64, int) {
	if o.Quick {
		return []float64{0.1, 0.3}, 1
	}
	return []float64{0.02, 0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5}, 3
}

// detectionSweep is the simulation sweep behind Figures 12 and 13: the
// paper-scale scenario across the P grid with colluding reports off.
// Both figures read different columns of the same runs, so they share
// one sweep label ("detect"): their trial fingerprints coincide, and
// with a cache the two concurrently regenerating figures single-flight
// to one set of simulations instead of two.
func detectionSweep(o Options) ([]float64, []*scenario.Result, *RunMetrics, error) {
	ps, trials := sweepGrid(o)
	sims, rm, err := simSweep(o, "detect", ps, trials, func(c *scenario.Config) { c.Collude = false })
	return ps, sims, rm, err
}

// Fig12 regenerates Figure 12: revocation detection rate vs P, simulation
// against theory, at (τ=10, τ′=2), m=8, p_d=0.9, one analog wormhole.
func Fig12(o Options) (Result, error) {
	ps, sims, rm, err := detectionSweep(o)
	if err != nil {
		return Result{}, err
	}
	var simY, thY []float64
	for i, p := range ps {
		simY = append(simY, sims[i].DetectionRate)
		thY = append(thY, analysis.RevocationRate(p, 8, 2, int(sims[i].AvgNc), sims[i].Population))
	}
	res := Result{
		ID:     "fig12",
		Title:  "Detection rate vs P: simulation against theory (tau=10, tau'=2)",
		XLabel: "P",
		YLabel: "detection rate",
		Series: []textplot.Series{
			{Label: "simulation", X: ps, Y: simY},
			{Label: "theory", X: ps, Y: thY},
		},
		Metrics: rm,
	}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"measured Nc = %.0f; simulation tracks theory (paper: 'the result conforms to the theoretical analysis')",
		sims[len(sims)-1].AvgNc))
	return res, nil
}

// Fig13 regenerates Figure 13: N′ (affected non-beacon nodes per
// malicious beacon) vs P, simulation against theory.
func Fig13(o Options) (Result, error) {
	ps, sims, rm, err := detectionSweep(o)
	if err != nil {
		return Result{}, err
	}
	var simY, thY []float64
	for i, p := range ps {
		simY = append(simY, sims[i].AffectedPerMalicious)
		// The theoretical N' uses the *sensor* fraction of the measured
		// neighbor count as its requester pool, like the formula's
		// (N - N_b)/N factor does.
		thY = append(thY, analysis.AffectedNodes(p, 8, 2, int(sims[i].AvgNc), sims[i].Population))
	}
	return Result{
		ID:     "fig13",
		Title:  "Affected non-beacon nodes N' vs P: simulation against theory",
		XLabel: "P",
		YLabel: "N' per malicious beacon",
		Series: []textplot.Series{
			{Label: "simulation", X: ps, Y: simY},
			{Label: "theory", X: ps, Y: thY},
		},
		Metrics: rm,
		Notes: []string{
			"observable but small sim-theory gap, as in the paper ('in general close to each other')",
		},
	}, nil
}

// Fig14 regenerates Figure 14: ROC curves — detection rate vs
// false-positive rate for N_a ∈ {5, 10} and τ′ ∈ {2, 3, 4}, each point a
// different report cap τ, with colluding malicious reporters and P chosen
// to maximize N′.
func Fig14(o Options) (Result, error) {
	taus := []int{1, 2, 4, 6, 8, 10}
	nas := []int{5, 10}
	tauPs := []int{2, 3, 4}
	trials := 2
	if o.Quick {
		taus = []int{2, 10}
		nas = []int{5}
		tauPs = []int{2}
		trials = 1
	}
	threshold, err := calThreshold(o)
	if err != nil {
		return Result{}, err
	}

	// The sweep's points are the full (N_a, τ′, τ) grid; each curve of
	// the figure groups the τ points of one (N_a, τ′) pair.
	type combo struct{ na, tauP, tau int }
	var combos []combo
	var labels []string
	for _, na := range nas {
		for _, tauP := range tauPs {
			for _, tau := range taus {
				combos = append(combos, combo{na, tauP, tau})
				labels = append(labels, fmt.Sprintf("Na=%d,tau'=%d,tau=%d", na, tauP, tau))
			}
		}
	}

	// rocSample's fields are exported so the sweep's results serialize
	// through the cache codec.
	type rocSample struct {
		Det, FPR float64
		Metrics  scenario.Metrics
	}
	cfgAt := func(point int) scenario.Config {
		c := combos[point]
		cfg := scenario.Paper()
		cfg.Queue = o.Queue
		cfg.Deploy.Na = c.na
		cfg.Revoke = revoke.Config{ReportCap: c.tau, AlertThreshold: c.tauP}
		cfg.RTTThreshold = threshold
		if o.Quick {
			quickDeploy(&cfg)
			cfg.Deploy.Na = min(c.na, 5)
		}
		// Attacker picks P maximizing N' for these thresholds
		// (paper's assumption).
		pop := analysis.Population{N: cfg.Deploy.N, Nb: cfg.Deploy.Nb, Na: cfg.Deploy.Na}
		_, pStar := analysis.MaxAffected(cfg.Deploy.DetectingIDs, c.tauP, 68, pop)
		cfg.Strategy = analysis.StrategyForP(pStar)
		return cfg
	}
	protos := make([]scenario.Config, len(combos))
	for p := range combos {
		protos[p] = cfgAt(p)
	}
	timing := harness.NewTiming()
	points, err := harness.SweepReduce(context.Background(), harness.Spec[rocSample]{
		Label:    "fig14",
		Points:   labels,
		Trials:   trials,
		Seed:     o.Seed,
		Workers:  o.Workers,
		Progress: o.progress(),
		Timing:   timing,
		Cache:    o.Cache,
		Key:      sweepKey("fig14-roc", trials, protos),
		Codec:    harness.JSONCodec[rocSample](),
		Run: func(_ context.Context, job harness.Job) (rocSample, error) {
			cfg := cfgAt(job.Point)
			cfg.Seed = job.Seed
			cfg.Deploy.Seed = job.TrialSeed
			r, err := scenario.Run(cfg)
			if err != nil {
				return rocSample{}, err
			}
			return rocSample{Det: r.DetectionRate, FPR: r.FalsePositiveRate, Metrics: r.Metrics}, nil
		},
	}, func(_ int, trials []rocSample) rocSample {
		var mean rocSample
		for _, s := range trials {
			mean.Det += s.Det
			mean.FPR += s.FPR
			mean.Metrics.Merge(s.Metrics)
		}
		mean.Det /= float64(len(trials))
		mean.FPR /= float64(len(trials))
		return mean
	})
	if err != nil {
		return Result{}, err
	}
	rm := &RunMetrics{Timing: *timing}
	for _, pt := range points {
		rm.Scenario.Merge(pt.Metrics)
	}

	res := Result{
		ID:      "fig14",
		Title:   "ROC: detection rate vs false-positive rate (colluding reporters)",
		XLabel:  "false positive rate",
		YLabel:  "detection rate",
		Metrics: rm,
	}
	for i := 0; i < len(combos); i += len(taus) {
		var xs, ys []float64
		for j := i; j < i+len(taus); j++ {
			xs = append(xs, points[j].FPR)
			ys = append(ys, points[j].Det)
		}
		res.Series = append(res.Series, textplot.Series{
			Label:   fmt.Sprintf("Na=%d,tau'=%d", combos[i].na, combos[i].tauP),
			X:       xs,
			Y:       ys,
			Scatter: true,
		})
	}
	res.Notes = append(res.Notes,
		"most malicious beacons revoked at ~5% FPR when Na=5; FPR grows with Na (colluders force ~Na(tau+1)/(tau'+1) revocations)")
	return res, nil
}

// ExtraLocalization is extension experiment E1: the motivating claim that
// malicious beacons corrupt localization, and that detection+revocation
// restores it. Compares mean localization error with the full defense
// against a defenseless baseline (no filters, no revocation).
func ExtraLocalization(o Options) (Result, error) {
	ps := []float64{0.1, 0.3, 0.5}
	trials := 2
	if o.Quick {
		ps = []float64{0.3}
		trials = 1
	}
	// One job runs the defended and undefended variants on identical
	// seeds — a paired design, so the comparison is not smeared by
	// topology variance between the two curves. Exported fields: the
	// samples serialize through the cache codec.
	type locSample struct{ Defended, Undefended float64 }
	cfgAt := func(point int, defended bool) scenario.Config {
		cfg := scenario.Paper()
		cfg.Queue = o.Queue
		cfg.Strategy = analysis.StrategyForP(ps[point])
		cfg.Collude = false
		cfg.CalibrationTrials = 500
		if o.Quick {
			quickDeploy(&cfg)
		}
		if !defended {
			cfg.DisableRTTFilter = true
			cfg.DisableWormholeFilter = true
			// An absurd alert threshold disables revocation.
			cfg.Revoke.AlertThreshold = 1 << 20
		}
		return cfg
	}
	protos := make([]scenario.Config, 0, 2*len(ps))
	for p := range ps {
		protos = append(protos, cfgAt(p, true), cfgAt(p, false))
	}
	points, err := harness.SweepReduce(context.Background(), harness.Spec[locSample]{
		Label:    "extra-localization",
		Points:   harness.FloatLabels("P", ps),
		Trials:   trials,
		Seed:     o.Seed,
		Workers:  o.Workers,
		Progress: o.progress(),
		Cache:    o.Cache,
		Key:      sweepKey("extra-localization", trials, protos),
		Codec:    harness.JSONCodec[locSample](),
		Run: func(_ context.Context, job harness.Job) (locSample, error) {
			runVariant := func(defended bool) (float64, error) {
				cfg := cfgAt(job.Point, defended)
				cfg.Seed = job.Seed
				cfg.Deploy.Seed = job.TrialSeed
				r, err := scenario.Run(cfg)
				if err != nil {
					return 0, err
				}
				return r.LocErrMean, nil
			}
			var s locSample
			var err error
			if s.Defended, err = runVariant(true); err != nil {
				return s, err
			}
			if s.Undefended, err = runVariant(false); err != nil {
				return s, err
			}
			return s, nil
		},
	}, func(_ int, trials []locSample) locSample {
		var mean locSample
		for _, s := range trials {
			mean.Defended += s.Defended
			mean.Undefended += s.Undefended
		}
		mean.Defended /= float64(len(trials))
		mean.Undefended /= float64(len(trials))
		return mean
	})
	if err != nil {
		return Result{}, err
	}

	defended := make([]float64, len(ps))
	undefended := make([]float64, len(ps))
	for i, s := range points {
		defended[i], undefended[i] = s.Defended, s.Undefended
	}
	res := Result{
		ID:     "extra-localization",
		Title:  "E1: mean localization error with vs without the defense",
		XLabel: "P",
		YLabel: "mean error (ft)",
		Series: []textplot.Series{
			{Label: "defended (detect+revoke)", X: ps, Y: defended},
			{Label: "undefended", X: ps, Y: undefended},
		},
	}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"at P=%.1f: defended %.1f ft vs undefended %.1f ft (ranging error bound 10 ft)",
		ps[len(ps)-1], defended[len(defended)-1], undefended[len(undefended)-1]))
	return res, nil
}

// ExtraAblation is extension experiment E2: what each replay filter buys.
// Three configurations under a wormhole plus local replay attackers:
// full defense, RTT filter off, wormhole detector off — reporting false
// alerts between benign beacons.
func ExtraAblation(o Options) (Result, error) {
	trials := 3
	if o.Quick {
		trials = 1
	}
	type variant struct {
		label string
		mut   func(*scenario.Config)
	}
	variants := []variant{
		{"full defense", func(c *scenario.Config) {}},
		{"RTT filter off", func(c *scenario.Config) { c.DisableRTTFilter = true }},
		{"wormhole detector off", func(c *scenario.Config) { c.DisableWormholeFilter = true }},
	}
	cfgFor := func(vi int) scenario.Config {
		cfg := scenario.Paper()
		cfg.Queue = o.Queue
		cfg.Strategy = analysis.StrategyForP(0) // benign-behaving compromised nodes
		cfg.Collude = false
		cfg.CalibrationTrials = 500
		if o.Quick {
			quickDeploy(&cfg)
			cfg.Wormholes = []scenario.WormholeSpec{{
				A: geo.Point{X: 100, Y: 100}, B: geo.Point{X: 450, Y: 400}, Latency: 2,
			}}
		}
		// Blanket replay attackers to stress the RTT filter.
		w := cfg.Deploy.Field.Width()
		for x := w / 6; x < w; x += w / 3 {
			for y := w / 6; y < w; y += w / 3 {
				cfg.ReplayAttackers = append(cfg.ReplayAttackers, geo.Point{X: x, Y: y})
			}
		}
		variants[vi].mut(&cfg)
		return cfg
	}
	protos := make([]scenario.Config, len(variants))
	for vi := range variants {
		protos[vi] = cfgFor(vi)
	}
	// Each job runs all three variants on identical seeds (paired), so
	// the ablation differences come from the disabled filter alone.
	rows, err := harness.Sweep(context.Background(), harness.Spec[[3]float64]{
		Label:    "extra-ablation",
		Points:   []string{"benign-alerts"},
		Trials:   trials,
		Seed:     o.Seed,
		Workers:  o.Workers,
		Progress: o.progress(),
		Cache:    o.Cache,
		Key:      sweepKey("extra-ablation", trials, protos),
		Codec:    harness.JSONCodec[[3]float64](),
		Run: func(_ context.Context, job harness.Job) ([3]float64, error) {
			var alerts [3]float64
			for vi := range variants {
				cfg := cfgFor(vi)
				cfg.Seed = job.Seed
				cfg.Deploy.Seed = job.TrialSeed
				r, err := scenario.Run(cfg)
				if err != nil {
					return alerts, err
				}
				alerts[vi] = float64(r.BenignAlerts)
			}
			return alerts, nil
		},
	})
	if err != nil {
		return Result{}, err
	}

	res := Result{
		ID:     "extra-ablation",
		Title:  "E2: false alerts between benign beacons, by disabled filter",
		XLabel: "variant (0=full, 1=no RTT, 2=no wormhole detector)",
		YLabel: "false alerts",
	}
	for vi, v := range variants {
		var acc float64
		for _, alerts := range rows[0] {
			acc += alerts[vi]
		}
		res.Series = append(res.Series, textplot.Series{
			Label:   v.label,
			X:       []float64{float64(vi)},
			Y:       []float64{acc / float64(trials)},
			Scatter: true,
		})
	}
	res.Notes = append(res.Notes,
		"the full defense keeps benign-vs-benign alerts near the (1-p_d) wormhole floor; each disabled filter opens a false-positive channel")
	return res, nil
}
