package experiment

import (
	"fmt"

	"beaconsec/internal/analysis"
	"beaconsec/internal/core"
	"beaconsec/internal/geo"
	"beaconsec/internal/phy"
	"beaconsec/internal/revoke"
	"beaconsec/internal/scenario"
	"beaconsec/internal/textplot"
)

// Fig4 regenerates Figure 4: the empirical CDF of the no-attack RTT,
// measured over 10,000 request/reply exchanges (500 in quick mode), with
// the x_min / x_max / spread headline values.
func Fig4(o Options) Result {
	trials := 10000
	if o.Quick {
		trials = 500
	}
	cal := core.CalibrateRTT(trials, phy.DefaultJitter(), o.Seed)
	var xs, ys []float64
	const points = 120
	span := cal.XMax() - cal.XMin()
	for i := 0; i <= points; i++ {
		x := cal.XMin() + span*float64(i)/points
		xs = append(xs, x)
		ys = append(ys, cal.CDF(x))
	}
	return Result{
		ID:     "fig04",
		Title:  "Cumulative distribution of round-trip time (no attack)",
		XLabel: "RTT (CPU cycles)",
		YLabel: "F(x)",
		Series: []textplot.Series{{Label: fmt.Sprintf("empirical CDF (%d trials)", trials), X: xs, Y: ys}},
		Notes: []string{
			fmt.Sprintf("x_min = %.0f cycles, x_max = %.0f cycles", cal.XMin(), cal.XMax()),
			fmt.Sprintf("spread = %.2f bit-times (paper: ~4.5); replay threshold = %.0f cycles",
				cal.SpreadBits(), cal.Threshold()),
			fmt.Sprintf("one 16-byte packet = %d cycles: any store-and-forward replay is caught",
				phy.FrameAirTime(16)),
		},
	}
}

// simSweep runs the paper-scale scenario across a P grid and returns the
// per-P averaged results.
func simSweep(o Options, ps []float64, trials int, mutate func(*scenario.Config)) []*scenario.Result {
	out := make([]*scenario.Result, 0, len(ps))
	// One calibration shared across runs: the threshold is a deployment
	// constant, not per-run state.
	calTrials := 2000
	if o.Quick {
		calTrials = 500
	}
	threshold := core.CalibrateRTT(calTrials, phy.DefaultJitter(), o.Seed^0xC0FFEE).Threshold()
	for _, p := range ps {
		agg := &scenario.Result{}
		var accDet, accAff, accNc, accFPR float64
		var accBenign, accTrue int
		for tr := 0; tr < trials; tr++ {
			cfg := scenario.Paper()
			cfg.Strategy = analysis.StrategyForP(p)
			cfg.Seed = o.Seed + uint64(tr)*1000 + uint64(p*1e6)
			cfg.Deploy.Seed = o.Seed + uint64(tr)
			cfg.RTTThreshold = threshold
			if o.Quick {
				cfg.Deploy.N = 300
				cfg.Deploy.Nb = 33
				cfg.Deploy.Na = 3
				cfg.Deploy.Field = geo.Square(550)
			}
			if mutate != nil {
				mutate(&cfg)
			}
			res, err := scenario.Run(cfg)
			if err != nil {
				panic("experiment: " + err.Error())
			}
			accDet += res.DetectionRate
			accAff += res.AffectedPerMalicious
			accNc += res.AvgNc
			accFPR += res.FalsePositiveRate
			accBenign += res.BenignAlerts
			accTrue += res.TrueAlerts
			agg.Population = res.Population
		}
		f := float64(trials)
		agg.DetectionRate = accDet / f
		agg.AffectedPerMalicious = accAff / f
		agg.AvgNc = accNc / f
		agg.FalsePositiveRate = accFPR / f
		agg.BenignAlerts = accBenign / trials
		agg.TrueAlerts = accTrue / trials
		out = append(out, agg)
	}
	return out
}

func sweepGrid(o Options) ([]float64, int) {
	if o.Quick {
		return []float64{0.1, 0.3}, 1
	}
	return []float64{0.02, 0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5}, 3
}

// Fig12 regenerates Figure 12: revocation detection rate vs P, simulation
// against theory, at (τ=10, τ′=2), m=8, p_d=0.9, one analog wormhole.
func Fig12(o Options) Result {
	ps, trials := sweepGrid(o)
	sims := simSweep(o, ps, trials, func(c *scenario.Config) { c.Collude = false })
	var simY, thY []float64
	for i, p := range ps {
		simY = append(simY, sims[i].DetectionRate)
		thY = append(thY, analysis.RevocationRate(p, 8, 2, int(sims[i].AvgNc), sims[i].Population))
	}
	res := Result{
		ID:     "fig12",
		Title:  "Detection rate vs P: simulation against theory (tau=10, tau'=2)",
		XLabel: "P",
		YLabel: "detection rate",
		Series: []textplot.Series{
			{Label: "simulation", X: ps, Y: simY},
			{Label: "theory", X: ps, Y: thY},
		},
	}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"measured Nc = %.0f; simulation tracks theory (paper: 'the result conforms to the theoretical analysis')",
		sims[len(sims)-1].AvgNc))
	return res
}

// Fig13 regenerates Figure 13: N′ (affected non-beacon nodes per
// malicious beacon) vs P, simulation against theory.
func Fig13(o Options) Result {
	ps, trials := sweepGrid(o)
	sims := simSweep(o, ps, trials, func(c *scenario.Config) { c.Collude = false })
	var simY, thY []float64
	for i, p := range ps {
		simY = append(simY, sims[i].AffectedPerMalicious)
		// The theoretical N' uses the *sensor* fraction of the measured
		// neighbor count as its requester pool, like the formula's
		// (N - N_b)/N factor does.
		thY = append(thY, analysis.AffectedNodes(p, 8, 2, int(sims[i].AvgNc), sims[i].Population))
	}
	res := Result{
		ID:     "fig13",
		Title:  "Affected non-beacon nodes N' vs P: simulation against theory",
		XLabel: "P",
		YLabel: "N' per malicious beacon",
		Series: []textplot.Series{
			{Label: "simulation", X: ps, Y: simY},
			{Label: "theory", X: ps, Y: thY},
		},
		Notes: []string{
			"observable but small sim-theory gap, as in the paper ('in general close to each other')",
		},
	}
	return res
}

// Fig14 regenerates Figure 14: ROC curves — detection rate vs
// false-positive rate for N_a ∈ {5, 10} and τ′ ∈ {2, 3, 4}, each point a
// different report cap τ, with colluding malicious reporters and P chosen
// to maximize N′.
func Fig14(o Options) Result {
	taus := []int{1, 2, 4, 6, 8, 10}
	nas := []int{5, 10}
	tauPs := []int{2, 3, 4}
	trials := 2
	if o.Quick {
		taus = []int{2, 10}
		nas = []int{5}
		tauPs = []int{2}
		trials = 1
	}
	calTrials := 2000
	if o.Quick {
		calTrials = 500
	}
	threshold := core.CalibrateRTT(calTrials, phy.DefaultJitter(), o.Seed^0xC0FFEE).Threshold()

	res := Result{
		ID:     "fig14",
		Title:  "ROC: detection rate vs false-positive rate (colluding reporters)",
		XLabel: "false positive rate",
		YLabel: "detection rate",
	}
	for _, na := range nas {
		for _, tauP := range tauPs {
			var xs, ys []float64
			for _, tau := range taus {
				var det, fpr float64
				for tr := 0; tr < trials; tr++ {
					cfg := scenario.Paper()
					cfg.Deploy.Na = na
					cfg.Revoke = revoke.Config{ReportCap: tau, AlertThreshold: tauP}
					cfg.RTTThreshold = threshold
					cfg.Seed = o.Seed + uint64(tr)*999 + uint64(tau*31+tauP*7+na)
					cfg.Deploy.Seed = o.Seed + uint64(tr)
					if o.Quick {
						cfg.Deploy.N = 300
						cfg.Deploy.Nb = 33
						cfg.Deploy.Na = min(na, 5)
						cfg.Deploy.Field = geo.Square(550)
					}
					// Attacker picks P maximizing N' for these
					// thresholds (paper's assumption).
					pop := analysis.Population{N: cfg.Deploy.N, Nb: cfg.Deploy.Nb, Na: cfg.Deploy.Na}
					_, pStar := analysis.MaxAffected(cfg.Deploy.DetectingIDs, tauP, 68, pop)
					cfg.Strategy = analysis.StrategyForP(pStar)
					r, err := scenario.Run(cfg)
					if err != nil {
						panic("experiment: " + err.Error())
					}
					det += r.DetectionRate
					fpr += r.FalsePositiveRate
				}
				xs = append(xs, fpr/float64(trials))
				ys = append(ys, det/float64(trials))
			}
			res.Series = append(res.Series, textplot.Series{
				Label:   fmt.Sprintf("Na=%d,tau'=%d", na, tauP),
				X:       xs,
				Y:       ys,
				Scatter: true,
			})
		}
	}
	res.Notes = append(res.Notes,
		"most malicious beacons revoked at ~5% FPR when Na=5; FPR grows with Na (colluders force ~Na(tau+1)/(tau'+1) revocations)")
	return res
}

// ExtraLocalization is extension experiment E1: the motivating claim that
// malicious beacons corrupt localization, and that detection+revocation
// restores it. Compares mean localization error with the full defense
// against a defenseless baseline (no filters, no revocation).
func ExtraLocalization(o Options) Result {
	ps := []float64{0.1, 0.3, 0.5}
	trials := 2
	if o.Quick {
		ps = []float64{0.3}
		trials = 1
	}
	run := func(defended bool) []float64 {
		var ys []float64
		for _, p := range ps {
			var acc float64
			for tr := 0; tr < trials; tr++ {
				cfg := scenario.Paper()
				cfg.Strategy = analysis.StrategyForP(p)
				cfg.Collude = false
				cfg.Seed = o.Seed + uint64(tr)*77
				cfg.Deploy.Seed = o.Seed + uint64(tr)
				cfg.CalibrationTrials = 500
				if o.Quick {
					cfg.Deploy.N = 300
					cfg.Deploy.Nb = 33
					cfg.Deploy.Na = 3
					cfg.Deploy.Field = geo.Square(550)
				}
				if !defended {
					cfg.DisableRTTFilter = true
					cfg.DisableWormholeFilter = true
					// An absurd alert threshold disables revocation.
					cfg.Revoke.AlertThreshold = 1 << 20
				}
				r, err := scenario.Run(cfg)
				if err != nil {
					panic("experiment: " + err.Error())
				}
				acc += r.LocErrMean
			}
			ys = append(ys, acc/float64(trials))
		}
		return ys
	}
	defended := run(true)
	undefended := run(false)
	res := Result{
		ID:     "extra-localization",
		Title:  "E1: mean localization error with vs without the defense",
		XLabel: "P",
		YLabel: "mean error (ft)",
		Series: []textplot.Series{
			{Label: "defended (detect+revoke)", X: ps, Y: defended},
			{Label: "undefended", X: ps, Y: undefended},
		},
	}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"at P=%.1f: defended %.1f ft vs undefended %.1f ft (ranging error bound 10 ft)",
		ps[len(ps)-1], defended[len(defended)-1], undefended[len(undefended)-1]))
	return res
}

// ExtraAblation is extension experiment E2: what each replay filter buys.
// Three configurations under a wormhole plus local replay attackers:
// full defense, RTT filter off, wormhole detector off — reporting false
// alerts between benign beacons.
func ExtraAblation(o Options) Result {
	trials := 3
	if o.Quick {
		trials = 1
	}
	type variant struct {
		label string
		mut   func(*scenario.Config)
	}
	variants := []variant{
		{"full defense", func(c *scenario.Config) {}},
		{"RTT filter off", func(c *scenario.Config) { c.DisableRTTFilter = true }},
		{"wormhole detector off", func(c *scenario.Config) { c.DisableWormholeFilter = true }},
	}
	res := Result{
		ID:     "extra-ablation",
		Title:  "E2: false alerts between benign beacons, by disabled filter",
		XLabel: "variant (0=full, 1=no RTT, 2=no wormhole detector)",
		YLabel: "false alerts",
	}
	for vi, v := range variants {
		var acc float64
		for tr := 0; tr < trials; tr++ {
			cfg := scenario.Paper()
			cfg.Strategy = analysis.StrategyForP(0) // benign-behaving compromised nodes
			cfg.Collude = false
			cfg.Seed = o.Seed + uint64(tr)*13
			cfg.Deploy.Seed = o.Seed + uint64(tr)
			cfg.CalibrationTrials = 500
			if o.Quick {
				cfg.Deploy.N = 300
				cfg.Deploy.Nb = 33
				cfg.Deploy.Na = 3
				cfg.Deploy.Field = geo.Square(550)
				cfg.Wormholes = []scenario.WormholeSpec{{
					A: geo.Point{X: 100, Y: 100}, B: geo.Point{X: 450, Y: 400}, Latency: 2,
				}}
			}
			// Blanket replay attackers to stress the RTT filter.
			w := cfg.Deploy.Field.Width()
			for x := w / 6; x < w; x += w / 3 {
				for y := w / 6; y < w; y += w / 3 {
					cfg.ReplayAttackers = append(cfg.ReplayAttackers, geo.Point{X: x, Y: y})
				}
			}
			v.mut(&cfg)
			r, err := scenario.Run(cfg)
			if err != nil {
				panic("experiment: " + err.Error())
			}
			acc += float64(r.BenignAlerts)
		}
		res.Series = append(res.Series, textplot.Series{
			Label:   v.label,
			X:       []float64{float64(vi)},
			Y:       []float64{acc / float64(trials)},
			Scatter: true,
		})
	}
	res.Notes = append(res.Notes,
		"the full defense keeps benign-vs-benign alerts near the (1-p_d) wormhole floor; each disabled filter opens a false-positive channel")
	return res
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
