package experiment

import (
	"fmt"

	"beaconsec/internal/analysis"
	"beaconsec/internal/geo"
	"beaconsec/internal/georoute"
	"beaconsec/internal/node"
	"beaconsec/internal/rng"
	"beaconsec/internal/scenario"
	"beaconsec/internal/textplot"
)

// ExtraRouting is extension experiment E5: the paper's opening motivation
// measured end to end. Geographic routing (GPSR-style greedy forwarding)
// runs on the positions sensors *believe*; a malicious-beacon attack
// poisons those positions, and the detect-and-revoke defense restores
// them. The metric is end-to-end delivery rate over random node pairs.
func ExtraRouting(o Options) Result {
	ps := []float64{0.2, 0.5}
	trials := 2
	if o.Quick {
		ps = []float64{0.5}
		trials = 1
	}

	variant := func(p float64, defended bool) float64 {
		var acc float64
		for tr := 0; tr < trials; tr++ {
			cfg := scenario.Paper()
			cfg.Strategy = analysis.StrategyForP(p)
			cfg.Collude = false
			cfg.CalibrationTrials = 500
			cfg.Seed = o.Seed + uint64(tr)*19
			cfg.Deploy.Seed = o.Seed + uint64(tr)
			if o.Quick {
				cfg.Deploy.N = 300
				cfg.Deploy.Nb = 33
				cfg.Deploy.Na = 3
				cfg.Deploy.Field = geo.Square(550)
			}
			if !defended {
				cfg.DisableRTTFilter = true
				cfg.DisableWormholeFilter = true
				cfg.Revoke.AlertThreshold = 1 << 20
			}
			res, err := scenario.Run(cfg)
			if err != nil {
				panic("experiment: " + err.Error())
			}
			acc += routeOnEstimates(res, cfg, o.Seed+uint64(tr))
		}
		return acc / float64(trials)
	}

	res := Result{
		ID:     "extra-routing",
		Title:  "E5: geographic-routing delivery rate on believed positions",
		XLabel: "P",
		YLabel: "delivery rate",
	}
	var defY, undefY []float64
	for _, p := range ps {
		defY = append(defY, variant(p, true))
		undefY = append(undefY, variant(p, false))
	}
	res.Series = []textplot.Series{
		{Label: "defended (detect+revoke)", X: ps, Y: defY},
		{Label: "undefended", X: ps, Y: undefY},
	}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"at P=%.1f: delivery %.2f defended vs %.2f undefended — corrupted positions break greedy forwarding",
		ps[len(ps)-1], defY[len(defY)-1], undefY[len(undefY)-1]))
	return res
}

// routeOnEstimates builds the routing substrate from a finished
// simulation: true positions from the deployment, believed positions from
// each sensor's localization outcome. Sensors that failed to localize do
// not participate — a node without a position cannot make or appear in
// geographic forwarding decisions (GPSR's requirement).
func routeOnEstimates(res *scenario.Result, cfg scenario.Config, seed uint64) float64 {
	var truth, believed []geo.Point
	add := func(tru, bel geo.Point) {
		truth = append(truth, tru)
		believed = append(believed, bel)
	}
	for _, s := range res.Sensors() {
		est, err := s.Localize()
		if err != nil {
			continue
		}
		add(s.TrueLoc(), est)
	}
	// Beacons participate in forwarding with their true (known)
	// positions.
	for _, b := range res.Beacons() {
		loc := beaconLoc(res, b)
		add(loc, loc)
	}
	net := georoute.New(truth, believed, cfg.Deploy.Range)
	src := rng.New(seed ^ 0x9047E)
	pairs := make([][2]int, 300)
	for i := range pairs {
		pairs[i] = [2]int{src.Intn(len(truth)), src.Intn(len(truth))}
	}
	rate, _ := net.DeliveryRate(pairs)
	return rate
}

func beaconLoc(res *scenario.Result, b *node.Beacon) geo.Point {
	return b.TrueLoc()
}
