package experiment

import (
	"context"
	"fmt"

	"beaconsec/internal/analysis"
	"beaconsec/internal/geo"
	"beaconsec/internal/georoute"
	"beaconsec/internal/harness"
	"beaconsec/internal/node"
	"beaconsec/internal/rng"
	"beaconsec/internal/scenario"
	"beaconsec/internal/textplot"
)

// ExtraRouting is extension experiment E5: the paper's opening motivation
// measured end to end. Geographic routing (GPSR-style greedy forwarding)
// runs on the positions sensors *believe*; a malicious-beacon attack
// poisons those positions, and the detect-and-revoke defense restores
// them. The metric is end-to-end delivery rate over random node pairs.
func ExtraRouting(o Options) (Result, error) {
	ps := []float64{0.2, 0.5}
	trials := 2
	if o.Quick {
		ps = []float64{0.5}
		trials = 1
	}

	// One job routes the defended and undefended variants on identical
	// seeds and source/destination pairs (paired comparison). Exported
	// fields: the samples serialize through the cache codec.
	type deliverySample struct{ Defended, Undefended float64 }
	cfgAt := func(point int, defended bool) scenario.Config {
		cfg := scenario.Paper()
		cfg.Queue = o.Queue
		cfg.Strategy = analysis.StrategyForP(ps[point])
		cfg.Collude = false
		cfg.CalibrationTrials = 500
		if o.Quick {
			quickDeploy(&cfg)
		}
		if !defended {
			cfg.DisableRTTFilter = true
			cfg.DisableWormholeFilter = true
			cfg.Revoke.AlertThreshold = 1 << 20
		}
		return cfg
	}
	protos := make([]scenario.Config, 0, 2*len(ps))
	for p := range ps {
		protos = append(protos, cfgAt(p, true), cfgAt(p, false))
	}
	points, err := harness.SweepReduce(context.Background(), harness.Spec[deliverySample]{
		Label:    "extra-routing",
		Points:   harness.FloatLabels("P", ps),
		Trials:   trials,
		Seed:     o.Seed,
		Workers:  o.Workers,
		Progress: o.progress(),
		Cache:    o.Cache,
		Key:      sweepKey("extra-routing", trials, protos),
		Codec:    harness.JSONCodec[deliverySample](),
		Run: func(_ context.Context, job harness.Job) (deliverySample, error) {
			runVariant := func(defended bool) (float64, error) {
				cfg := cfgAt(job.Point, defended)
				cfg.Seed = job.Seed
				cfg.Deploy.Seed = job.TrialSeed
				res, err := scenario.Run(cfg)
				if err != nil {
					return 0, err
				}
				return routeOnEstimates(res, cfg, job.TrialSeed), nil
			}
			var s deliverySample
			var err error
			if s.Defended, err = runVariant(true); err != nil {
				return s, err
			}
			if s.Undefended, err = runVariant(false); err != nil {
				return s, err
			}
			return s, nil
		},
	}, func(_ int, trials []deliverySample) deliverySample {
		var mean deliverySample
		for _, s := range trials {
			mean.Defended += s.Defended
			mean.Undefended += s.Undefended
		}
		mean.Defended /= float64(len(trials))
		mean.Undefended /= float64(len(trials))
		return mean
	})
	if err != nil {
		return Result{}, err
	}

	defY := make([]float64, len(ps))
	undefY := make([]float64, len(ps))
	for i, s := range points {
		defY[i], undefY[i] = s.Defended, s.Undefended
	}
	res := Result{
		ID:     "extra-routing",
		Title:  "E5: geographic-routing delivery rate on believed positions",
		XLabel: "P",
		YLabel: "delivery rate",
		Series: []textplot.Series{
			{Label: "defended (detect+revoke)", X: ps, Y: defY},
			{Label: "undefended", X: ps, Y: undefY},
		},
	}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"at P=%.1f: delivery %.2f defended vs %.2f undefended — corrupted positions break greedy forwarding",
		ps[len(ps)-1], defY[len(defY)-1], undefY[len(undefY)-1]))
	return res, nil
}

// routeOnEstimates builds the routing substrate from a finished
// simulation: true positions from the deployment, believed positions from
// each sensor's localization outcome. Sensors that failed to localize do
// not participate — a node without a position cannot make or appear in
// geographic forwarding decisions (GPSR's requirement).
func routeOnEstimates(res *scenario.Result, cfg scenario.Config, seed uint64) float64 {
	var truth, believed []geo.Point
	add := func(tru, bel geo.Point) {
		truth = append(truth, tru)
		believed = append(believed, bel)
	}
	for _, s := range res.Sensors() {
		est, err := s.Localize()
		if err != nil {
			continue
		}
		add(s.TrueLoc(), est)
	}
	// Beacons participate in forwarding with their true (known)
	// positions.
	for _, b := range res.Beacons() {
		loc := beaconLoc(res, b)
		add(loc, loc)
	}
	net := georoute.New(truth, believed, cfg.Deploy.Range)
	src := rng.New(seed ^ 0x9047E)
	pairs := make([][2]int, 300)
	for i := range pairs {
		pairs[i] = [2]int{src.Intn(len(truth)), src.Intn(len(truth))}
	}
	rate, _ := net.DeliveryRate(pairs)
	return rate
}

func beaconLoc(res *scenario.Result, b *node.Beacon) geo.Point {
	return b.TrueLoc()
}
