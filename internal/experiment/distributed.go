package experiment

import (
	"fmt"

	"beaconsec/internal/analysis"
	"beaconsec/internal/geo"
	"beaconsec/internal/scenario"
	"beaconsec/internal/textplot"
)

// ExtraDistributed is extension experiment E4, the paper's §6 future-work
// item made concrete: revocation without a base station. Beacons gossip
// alerts to their beacon neighbors and each runs the §3 counting
// algorithm on a local ledger. The experiment sweeps P and compares the
// centralized detection rate against the distributed variant's local
// revocation coverage, and reports the collusion cost (local framing) the
// base station's global report caps normally prevent.
func ExtraDistributed(o Options) Result {
	ps := []float64{0.1, 0.2, 0.4, 0.7, 1.0}
	trials := 2
	if o.Quick {
		ps = []float64{0.3, 1.0}
		trials = 1
	}

	runVariant := func(distributed bool) ([]float64, float64) {
		var ys []float64
		var frame float64
		for _, p := range ps {
			var acc float64
			for tr := 0; tr < trials; tr++ {
				cfg := scenario.Paper()
				cfg.Strategy = analysis.StrategyForP(p)
				cfg.Collude = true
				cfg.Distributed = distributed
				cfg.Wormholes = nil
				cfg.Seed = o.Seed + uint64(tr)*31
				cfg.Deploy.Seed = o.Seed + uint64(tr)
				cfg.CalibrationTrials = 500
				if o.Quick {
					cfg.Deploy.N = 300
					cfg.Deploy.Nb = 33
					cfg.Deploy.Na = 3
					cfg.Deploy.Field = geo.Square(550)
				}
				res, err := scenario.Run(cfg)
				if err != nil {
					panic("experiment: " + err.Error())
				}
				if distributed {
					acc += res.LocalCoverage
					frame += res.LocalFalseRevocations
				} else {
					acc += res.DetectionRate
					frame += res.FalsePositiveRate
				}
			}
			ys = append(ys, acc/float64(trials))
		}
		return ys, frame / float64(len(ps)*trials)
	}

	central, centralFP := runVariant(false)
	local, localFrame := runVariant(true)

	res := Result{
		ID:     "extra-distributed",
		Title:  "E4: centralized revocation vs base-station-free gossip (§6 future work)",
		XLabel: "P",
		YLabel: "detection (centralized) / neighbor coverage (distributed)",
		Series: []textplot.Series{
			{Label: "centralized detection rate", X: ps, Y: central},
			{Label: "distributed local coverage", X: ps, Y: local},
		},
	}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"collusion cost: centralized FPR %.3f (bounded by report caps) vs %.2f local false revocations per benign ledger",
		centralFP, localFrame))
	res.Notes = append(res.Notes,
		"without the global view, coverage is per-neighborhood and colluders frame locally — why the paper keeps the base station")
	return res
}
