package experiment

import (
	"context"
	"fmt"

	"beaconsec/internal/analysis"
	"beaconsec/internal/harness"
	"beaconsec/internal/scenario"
	"beaconsec/internal/textplot"
)

// ExtraDistributed is extension experiment E4, the paper's §6 future-work
// item made concrete: revocation without a base station. Beacons gossip
// alerts to their beacon neighbors and each runs the §3 counting
// algorithm on a local ledger. The experiment sweeps P and compares the
// centralized detection rate against the distributed variant's local
// revocation coverage, and reports the collusion cost (local framing) the
// base station's global report caps normally prevent.
func ExtraDistributed(o Options) (Result, error) {
	ps := []float64{0.1, 0.2, 0.4, 0.7, 1.0}
	trials := 2
	if o.Quick {
		ps = []float64{0.3, 1.0}
		trials = 1
	}

	// One job runs the centralized and distributed variants on
	// identical seeds (paired), so the curves differ in the revocation
	// architecture, not the topology draw. Exported fields: the samples
	// serialize through the cache codec.
	type distSample struct {
		Central, CentralFP, Local, LocalFrame float64
	}
	cfgAt := func(point int, distributed bool) scenario.Config {
		cfg := scenario.Paper()
		cfg.Queue = o.Queue
		cfg.Strategy = analysis.StrategyForP(ps[point])
		cfg.Collude = true
		cfg.Distributed = distributed
		cfg.Wormholes = nil
		cfg.CalibrationTrials = 500
		if o.Quick {
			quickDeploy(&cfg)
		}
		return cfg
	}
	protos := make([]scenario.Config, 0, 2*len(ps))
	for p := range ps {
		protos = append(protos, cfgAt(p, false), cfgAt(p, true))
	}
	rows, err := harness.Sweep(context.Background(), harness.Spec[distSample]{
		Label:    "extra-distributed",
		Points:   harness.FloatLabels("P", ps),
		Trials:   trials,
		Seed:     o.Seed,
		Workers:  o.Workers,
		Progress: o.progress(),
		Cache:    o.Cache,
		Key:      sweepKey("extra-distributed", trials, protos),
		Codec:    harness.JSONCodec[distSample](),
		Run: func(_ context.Context, job harness.Job) (distSample, error) {
			var s distSample
			for _, distributed := range []bool{false, true} {
				cfg := cfgAt(job.Point, distributed)
				cfg.Seed = job.Seed
				cfg.Deploy.Seed = job.TrialSeed
				res, err := scenario.Run(cfg)
				if err != nil {
					return s, err
				}
				if distributed {
					s.Local = res.LocalCoverage
					s.LocalFrame = res.LocalFalseRevocations
				} else {
					s.Central = res.DetectionRate
					s.CentralFP = res.FalsePositiveRate
				}
			}
			return s, nil
		},
	})
	if err != nil {
		return Result{}, err
	}

	central := make([]float64, len(ps))
	local := make([]float64, len(ps))
	var centralFP, localFrame float64
	for i, row := range rows {
		for _, s := range row {
			central[i] += s.Central
			local[i] += s.Local
			centralFP += s.CentralFP
			localFrame += s.LocalFrame
		}
		central[i] /= float64(trials)
		local[i] /= float64(trials)
	}
	centralFP /= float64(len(ps) * trials)
	localFrame /= float64(len(ps) * trials)

	res := Result{
		ID:     "extra-distributed",
		Title:  "E4: centralized revocation vs base-station-free gossip (§6 future work)",
		XLabel: "P",
		YLabel: "detection (centralized) / neighbor coverage (distributed)",
		Series: []textplot.Series{
			{Label: "centralized detection rate", X: ps, Y: central},
			{Label: "distributed local coverage", X: ps, Y: local},
		},
	}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"collusion cost: centralized FPR %.3f (bounded by report caps) vs %.2f local false revocations per benign ledger",
		centralFP, localFrame))
	res.Notes = append(res.Notes,
		"without the global view, coverage is per-neighborhood and colluders frame locally — why the paper keeps the base station")
	return res, nil
}
