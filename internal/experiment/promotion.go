package experiment

import (
	"context"
	"fmt"

	"beaconsec/internal/geo"
	"beaconsec/internal/harness"
	"beaconsec/internal/localization"
	"beaconsec/internal/rng"
	"beaconsec/internal/textplot"
)

// promotionVariants are E3's three configurations. The two liar variants
// consume the topology stream identically, so for a given trial they see
// the same node placement and the same liar set — the detector's effect
// is isolated.
var promotionVariants = []struct {
	label  string
	liars  bool
	detect bool
}{
	{"honest promotions", false, false},
	{"15% liars, no detector", true, false},
	{"15% liars, consistency detector", true, true},
}

// ExtraPromotion is extension experiment E3, the paper's §2.3 discussion
// made concrete: when localized non-beacon nodes are promoted to serve as
// beacons (n-hop multilateration), localization error accumulates tier by
// tier; lying promoted nodes amplify it; and the consistency constraints
// — applied as robust residual trimming — pull the error back down.
func ExtraPromotion(o Options) (Result, error) {
	nodes := 400
	trials := 3
	if o.Quick {
		nodes = 200
		trials = 1
	}
	// Sparse seed beacons scattered across the whole field: nodes near
	// several beacons localize in tier 1 with sound geometry; coverage
	// gaps fill through promoted tiers. Four rounds keep honest
	// geometric error well under the lie magnitude.
	field := geo.Square(900)
	cfg := localization.IterativeConfig{
		Range:        130,
		MaxDistError: 5,
		MaxRounds:    4,
		Field:        field,
	}

	// The cache key captures the full experiment surface: the iterative
	// localization config plus the variant matrix (which otherwise
	// lives only in code).
	variantKey := make([]struct {
		Label         string
		Liars, Detect bool
	}, len(promotionVariants))
	for i, v := range promotionVariants {
		variantKey[i] = struct {
			Label         string
			Liars, Detect bool
		}{v.label, v.liars, v.detect}
	}
	// The promotion experiment exercises the localization layer only —
	// no scenario detector runs — so its detector field is empty.
	key := EncodeKey("extra-promotion", "", struct {
		Nodes, Trials int
		Field         geo.Rect
		Cfg           localization.IterativeConfig
		Variants      any
	}{nodes, trials, field, cfg, variantKey})

	// One job runs all three variants of one trial from the same
	// per-trial seed (paired comparison, as promotionVariants notes).
	rows, err := harness.Sweep(context.Background(), harness.Spec[[3][]float64]{
		Label:    "extra-promotion",
		Points:   []string{"tier-error"},
		Trials:   trials,
		Seed:     o.Seed,
		Workers:  o.Workers,
		Progress: o.progress(),
		Cache:    o.Cache,
		Key:      key,
		Codec:    harness.JSONCodec[[3][]float64](),
		Run: func(_ context.Context, job harness.Job) ([3][]float64, error) {
			var tiers [3][]float64
			for vi, v := range promotionVariants {
				src := rng.New(job.TrialSeed)
				truth := make([]geo.Point, nodes)
				isBeacon := make([]bool, nodes)
				liars := make([]bool, nodes)
				for i := range truth {
					truth[i] = geo.Point{X: src.Uniform(0, field.Width()), Y: src.Uniform(0, field.Height())}
					if src.Bool(0.08) {
						isBeacon[i] = true
					} else if v.liars && src.Bool(0.15) {
						liars[i] = true
					}
				}
				c := cfg
				c.DetectMalicious = v.detect
				res := localization.IterativeLocalize(truth, isBeacon, liars,
					geo.Point{X: 120, Y: -90}, c, src.Split("measure"))
				tiers[vi] = res.MeanErrorByTier(truth)
			}
			return tiers, nil
		},
	})
	if err != nil {
		return Result{}, err
	}

	res := Result{
		ID:     "extra-promotion",
		Title:  "E3: error accumulation across promotion tiers (§2.3)",
		XLabel: "tier",
		YLabel: "mean localization error (ft)",
	}
	var finals []float64
	for vi, v := range promotionVariants {
		// Average each tier over the trials that formed it (deep trials
		// can grow more tiers than shallow ones).
		var sums []float64
		var counts []int
		for _, tiers := range rows[0] {
			for tier, e := range tiers[vi] {
				if tier >= len(sums) {
					sums = append(sums, 0)
					counts = append(counts, 0)
				}
				sums[tier] += e
				counts[tier]++
			}
		}
		errs := make([]float64, len(sums))
		xs := make([]float64, len(sums))
		for tier := range sums {
			errs[tier] = sums[tier] / float64(counts[tier])
			xs[tier] = float64(tier)
		}
		res.Series = append(res.Series, textplot.Series{Label: v.label, X: xs, Y: errs})
		if len(errs) > 0 {
			finals = append(finals, errs[len(errs)-1])
		} else {
			finals = append(finals, 0)
		}
	}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"final-tier mean error: honest %.1f ft, liars undetected %.1f ft, with detector %.1f ft",
		finals[0], finals[1], finals[2]))
	return res, nil
}
