package experiment

import (
	"fmt"

	"beaconsec/internal/geo"
	"beaconsec/internal/localization"
	"beaconsec/internal/rng"
	"beaconsec/internal/textplot"
)

// ExtraPromotion is extension experiment E3, the paper's §2.3 discussion
// made concrete: when localized non-beacon nodes are promoted to serve as
// beacons (n-hop multilateration), localization error accumulates tier by
// tier; lying promoted nodes amplify it; and the consistency constraints
// — applied as robust residual trimming — pull the error back down.
func ExtraPromotion(o Options) Result {
	nodes := 400
	trials := 3
	if o.Quick {
		nodes = 200
		trials = 1
	}
	// Sparse seed beacons scattered across the whole field: nodes near
	// several beacons localize in tier 1 with sound geometry; coverage
	// gaps fill through promoted tiers. Four rounds keep honest
	// geometric error well under the lie magnitude.
	field := geo.Square(900)
	cfg := localization.IterativeConfig{
		Range:        130,
		MaxDistError: 5,
		MaxRounds:    4,
		Field:        field,
	}

	type variantResult struct {
		label string
		errs  []float64
	}
	variants := []struct {
		label  string
		liars  bool
		detect bool
	}{
		{"honest promotions", false, false},
		{"15% liars, no detector", true, false},
		{"15% liars, consistency detector", true, true},
	}

	var out []variantResult
	maxTiers := 0
	for _, v := range variants {
		accum := map[int][]float64{}
		for tr := 0; tr < trials; tr++ {
			src := rng.New(o.Seed + uint64(tr)*101)
			truth := make([]geo.Point, nodes)
			isBeacon := make([]bool, nodes)
			liars := make([]bool, nodes)
			for i := range truth {
				truth[i] = geo.Point{X: src.Uniform(0, field.Width()), Y: src.Uniform(0, field.Height())}
				if src.Bool(0.08) {
					isBeacon[i] = true
				} else if v.liars && src.Bool(0.15) {
					liars[i] = true
				}
			}
			c := cfg
			c.DetectMalicious = v.detect
			res := localization.IterativeLocalize(truth, isBeacon, liars,
				geo.Point{X: 120, Y: -90}, c, src.Split("measure"))
			for tier, e := range res.MeanErrorByTier(truth) {
				accum[tier] = append(accum[tier], e)
			}
		}
		var errs []float64
		for tier := 0; ; tier++ {
			vals, ok := accum[tier]
			if !ok {
				break
			}
			sum := 0.0
			for _, e := range vals {
				sum += e
			}
			errs = append(errs, sum/float64(len(vals)))
		}
		if len(errs) > maxTiers {
			maxTiers = len(errs)
		}
		out = append(out, variantResult{label: v.label, errs: errs})
	}

	res := Result{
		ID:     "extra-promotion",
		Title:  "E3: error accumulation across promotion tiers (§2.3)",
		XLabel: "tier",
		YLabel: "mean localization error (ft)",
	}
	for _, v := range out {
		xs := make([]float64, len(v.errs))
		for i := range xs {
			xs[i] = float64(i)
		}
		res.Series = append(res.Series, textplot.Series{Label: v.label, X: xs, Y: v.errs})
	}
	if len(out) == 3 {
		lastOf := func(v variantResult) float64 {
			if len(v.errs) == 0 {
				return 0
			}
			return v.errs[len(v.errs)-1]
		}
		res.Notes = append(res.Notes, fmt.Sprintf(
			"final-tier mean error: honest %.1f ft, liars undetected %.1f ft, with detector %.1f ft",
			lastOf(out[0]), lastOf(out[1]), lastOf(out[2])))
	}
	return res
}
