package experiment

import (
	"math"
	"strings"
	"testing"

	"beaconsec/internal/analysis"
	"beaconsec/internal/core"
	"beaconsec/internal/scenario"
)

// TestBakeoffQuickShape checks the quick bake-off produces one series
// per detector × attacker profile, labeled canonically, with the
// per-detector verdict counters split out in the merged metrics.
func TestBakeoffQuickShape(t *testing.T) {
	res := mustRun(t, ExtraBakeoff, Options{Quick: true, Seed: 1,
		Detectors: []core.DetectorSpec{{}, {Name: "ml"}}})
	if len(res.Series) != 4 {
		t.Fatalf("got %d series, want 4 (2 detectors x 2 attacks)", len(res.Series))
	}
	wantLabels := map[string]bool{
		"paper/blatant": true, "paper/subtle": true,
		"ml/blatant": true, "ml/subtle": true,
	}
	for _, s := range res.Series {
		if !wantLabels[s.Label] {
			t.Errorf("unexpected series label %q", s.Label)
		}
	}
	if res.Metrics == nil {
		t.Fatal("bake-off carried no metrics")
	}
	for _, det := range []string{"paper", "ml"} {
		if _, ok := res.Metrics.Scenario.Detectors[det]; !ok {
			t.Errorf("merged metrics missing per-detector counters for %q (have %v)",
				det, res.Metrics.Scenario.Detectors)
		}
	}
}

// TestBakeoffCacheIsolationAcrossDetectors is the stale-key test for the
// versioned cache key: trials memoized under one detector's key must
// never be served to a sweep running a different detector, even though
// the two sweeps share labels (and therefore seeds) for common random
// numbers.
func TestBakeoffCacheIsolationAcrossDetectors(t *testing.T) {
	c := testCache(t)
	opts := func(spec core.DetectorSpec) Options {
		return Options{Quick: true, Seed: 1, Cache: c,
			Detectors: []core.DetectorSpec{spec}}
	}

	cold := mustRun(t, ExtraBakeoff, opts(core.DetectorSpec{Name: "paper"}))
	tm := cold.Metrics.Timing
	if tm.CacheMisses != uint64(tm.Jobs) || tm.CacheHits != 0 {
		t.Fatalf("cold paper run: hits %d misses %d over %d jobs",
			tm.CacheHits, tm.CacheMisses, tm.Jobs)
	}

	// Same seeds, same labels, different detector: every trial must
	// recompute.
	other := mustRun(t, ExtraBakeoff, opts(core.DetectorSpec{Name: "ml"}))
	tm = other.Metrics.Timing
	if tm.CacheHits != 0 {
		t.Fatalf("ml sweep replayed %d of the paper detector's trials", tm.CacheHits)
	}

	// And the paper entries are still intact: a re-run replays fully.
	warm := mustRun(t, ExtraBakeoff, opts(core.DetectorSpec{Name: "paper"}))
	tm = warm.Metrics.Timing
	if tm.CacheMisses != 0 || tm.CacheHits != uint64(tm.Jobs) {
		t.Fatalf("warm paper run: hits %d misses %d over %d jobs",
			tm.CacheHits, tm.CacheMisses, tm.Jobs)
	}
}

// TestBakeoffCommonRandomNumbers pins the CRN mechanism: two sweeps
// sharing a label see identical deployments and exchange schedules
// regardless of the detector, so the deployment-side measurements agree
// exactly and curve differences are pure detector effects.
func TestBakeoffCommonRandomNumbers(t *testing.T) {
	o := Options{Quick: true, Seed: 5}
	sweep := func(spec core.DetectorSpec) *scenario.Result {
		sims, _, err := simSweep(o, "crn-evidence", []float64{0.3}, 2,
			func(c *scenario.Config) {
				c.Collude = false
				c.Detector = spec
			})
		if err != nil {
			t.Fatal(err)
		}
		return sims[0]
	}
	paper := sweep(core.DetectorSpec{})
	ml := sweep(core.DetectorSpec{Name: "ml"})
	if paper.Population != ml.Population {
		t.Errorf("populations diverged: %+v vs %+v", paper.Population, ml.Population)
	}
	if paper.AvgNc != ml.AvgNc {
		t.Errorf("AvgNc diverged across detectors on a shared label: %v vs %v — seeds are not common",
			paper.AvgNc, ml.AvgNc)
	}
}

// TestBakeoffMixedDetectorSweepPanics pins sweepKey's uniformity guard:
// one sweep must not mix detector identities, or the cache key would
// misattribute trials.
func TestBakeoffMixedDetectorSweepPanics(t *testing.T) {
	protos := []scenario.Config{scenario.Paper(), scenario.Paper()}
	protos[1].Detector = core.DetectorSpec{Name: "ml"}
	defer func() {
		if r := recover(); r == nil {
			t.Error("mixed-detector sweep did not panic")
		} else if !strings.Contains(r.(string), "mixed detectors") {
			t.Errorf("unexpected panic: %v", r)
		}
	}()
	sweepKey("test", 1, protos)
}

// TestRegressionBakeoffSubtleAttackTracksTheory pins each detector's
// measured revocation rate under the subtle 1.5ε attack to
// analysis.RevocationRate evaluated at the effective per-exchange
// probability P·catch, with catch from the detector's closed form —
// the bake-off's analog of the fig12 sim-vs-theory contract.
func TestRegressionBakeoffSubtleAttackTracksTheory(t *testing.T) {
	const p, bias = 0.5, 15.0
	eps := scenario.Paper().MaxDistError
	trials := regTrials()
	o := Options{Quick: true, Seed: 7}
	st, err := calStats(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range []core.DetectorSpec{{}, {Name: "ml"}, {Name: "mahalanobis"}} {
		spec := spec
		sims, _, err := simSweep(o, "regression-bakeoff", []float64{p}, trials,
			func(c *scenario.Config) {
				c.Collude = false
				c.Detector = spec
				c.AttackBias = bias
				stc := st
				c.RTTStats = &stc
			})
		if err != nil {
			t.Fatal(err)
		}
		s := sims[0]
		catch, ok := bakeoffCatchProb(spec, bias, eps)
		if !ok {
			t.Fatalf("%s: no closed form", spec.Canonical())
		}
		th := analysis.RevocationRate(p*catch, 8, 2, int(math.Round(s.AvgNc)), s.Population)
		tol := detTolerance(th, s.Population.Na*trials)
		t.Logf("%s: catch %.3f sim %.3f theory %.3f (tol %.3f)",
			spec.Canonical(), catch, s.DetectionRate, th, tol)
		if math.Abs(s.DetectionRate-th) > tol {
			t.Errorf("%s: detection rate %.3f vs theory %.3f exceeds tolerance %.3f",
				spec.Canonical(), s.DetectionRate, th, tol)
		}
	}
}
