// Package experiment regenerates every data figure of the paper's
// evaluation (Figures 4–14) plus two extension experiments, as labelled
// series suitable for ASCII plotting, CSV export, and benchmark
// assertions. DESIGN.md's per-experiment index maps each runner to its
// figure; EXPERIMENTS.md records paper-vs-measured outcomes.
package experiment

import (
	"fmt"
	"time"

	"beaconsec/internal/analysis"
	"beaconsec/internal/cache"
	"beaconsec/internal/core"
	"beaconsec/internal/deploy"
	"beaconsec/internal/harness"
	"beaconsec/internal/scenario"
	"beaconsec/internal/sim"
	"beaconsec/internal/textplot"
)

// Options tune experiment cost.
type Options struct {
	// Quick reduces trials and network size for smoke tests and
	// benchmarks; the shapes survive, the error bars grow.
	Quick bool
	// Seed drives all randomness.
	Seed uint64
	// Workers bounds the trial harness's worker pool for
	// simulation-backed runners; <= 0 means one worker per available
	// CPU. Results are identical for any value.
	Workers int
	// Progress, when non-nil, observes trial completion within
	// simulation-backed runners (done jobs, total jobs, elapsed time).
	// Invocations are serialized per runner.
	Progress func(done, total int, elapsed time.Duration)
	// Cache, when non-nil, memoizes simulation trial results across
	// runs and processes, content-addressed by canonical config
	// encoding plus derived seeds; identical concurrent trials (figures
	// sharing a sweep, like fig12/fig13) compute once. Figure results
	// are byte-identical with or without it.
	Cache *cache.Cache
	// Detectors selects the detector grid the bake-off runner
	// (extra-bakeoff) compares; empty selects every registered
	// detector with default parameters. The paper-figure runners ignore
	// it: they reproduce the paper and always run its pipeline.
	Detectors []core.DetectorSpec
	// Queue selects the simulation event-queue implementation for every
	// scenario the runners execute (sim.QueueAuto picks by population).
	// Results are byte-identical for every choice — scenario.Config
	// excludes it from cache keys — so this is purely a performance knob.
	Queue sim.QueueKind
	// MetroWorkers is the shard count of the metro runner's parallel
	// identity leg (extra-metro); 0 picks a default that exercises the
	// sharded kernel even on one CPU. Identity-pinned metro fields are
	// byte-identical at any value, so like Queue it is a performance
	// knob, never a result knob.
	MetroWorkers int
}

// DefaultOptions is the full-fidelity configuration.
func DefaultOptions() Options { return Options{Seed: 1} }

// progress adapts the caller's callback to the harness's Progress type.
func (o Options) progress() func(harness.Progress) {
	if o.Progress == nil {
		return nil
	}
	return func(p harness.Progress) { o.Progress(p.Done, p.Total, p.Elapsed) }
}

// RunMetrics aggregates the instrumentation of every simulation run a
// figure executed. The Scenario half is deterministic (merged in grid
// order, identical for any worker count); the Timing half is wall-clock
// and varies run to run, so determinism comparisons must zero it.
type RunMetrics struct {
	// Scenario sums the per-run deterministic counters (scheduler, radio,
	// link, probes, filters, revocation) over all runs.
	Scenario scenario.Metrics `json:"scenario"`
	// Timing is the sweep's wall-clock profile.
	Timing harness.Timing `json:"timing"`
}

// Result is one regenerated figure.
type Result struct {
	// ID is the figure identifier ("fig04" ... "fig14", "extra-*").
	ID string
	// Title summarizes what the paper's figure shows.
	Title  string
	XLabel string
	YLabel string
	Series []textplot.Series
	// Notes carry headline numbers (x_min/x_max, detection at the
	// operating point, ...) for EXPERIMENTS.md.
	Notes []string
	// Metrics is the aggregate instrumentation of the figure's simulation
	// runs; nil for closed-form figures, which run no simulation.
	Metrics *RunMetrics `json:"Metrics,omitempty"`
}

// Plot converts the result for rendering.
func (r Result) Plot() *textplot.Plot {
	return &textplot.Plot{
		Title:  fmt.Sprintf("%s — %s", r.ID, r.Title),
		XLabel: r.XLabel,
		YLabel: r.YLabel,
		Series: r.Series,
	}
}

// Runner is a figure regenerator. Run reports simulation failures as
// errors; closed-form runners never fail.
type Runner struct {
	ID  string
	Run func(Options) (Result, error)
}

// All lists every figure runner in paper order.
func All() []Runner {
	return []Runner{
		{"fig04", Fig4},
		{"fig05", Fig5},
		{"fig06a", Fig6a},
		{"fig06b", Fig6b},
		{"fig07", Fig7},
		{"fig08", Fig8},
		{"fig09", Fig9},
		{"fig10", Fig10},
		{"fig11", Fig11},
		{"fig12", Fig12},
		{"fig13", Fig13},
		{"fig14", Fig14},
		{"extra-localization", ExtraLocalization},
		{"extra-ablation", ExtraAblation},
		{"extra-bakeoff", ExtraBakeoff},
		{"extra-promotion", ExtraPromotion},
		{"extra-distributed", ExtraDistributed},
		{"extra-routing", ExtraRouting},
		{"extra-metro", ExtraMetro},
	}
}

// ByID returns the runner with the given ID.
func ByID(id string) (Runner, bool) {
	for _, r := range All() {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}

// paperPop is the reconstructed analysis population.
func paperPop() analysis.Population { return analysis.PaperPopulation() }

// pGrid returns an x-axis of P values in (0, 1].
func pGrid(steps int) []float64 {
	xs := make([]float64, 0, steps)
	for i := 1; i <= steps; i++ {
		xs = append(xs, float64(i)/float64(steps))
	}
	return xs
}

// Fig5 regenerates Figure 5: P_r = 1 - (1-P)^m for m ∈ {1, 2, 4, 8}.
func Fig5(o Options) (Result, error) {
	steps := 100
	if o.Quick {
		steps = 20
	}
	xs := pGrid(steps)
	res := Result{
		ID:     "fig05",
		Title:  "Detector catch rate P_r vs attacker exposure P",
		XLabel: "P",
		YLabel: "P_r",
	}
	for _, m := range []int{1, 2, 4, 8} {
		ys := make([]float64, len(xs))
		for i, p := range xs {
			ys[i] = analysis.DetectionRate(p, m)
		}
		res.Series = append(res.Series, textplot.Series{
			Label: fmt.Sprintf("m=%d", m), X: xs, Y: ys,
		})
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("P_r at P=0.2: m=1 %.2f, m=8 %.2f — attacker cannot raise P without raising detection",
			analysis.DetectionRate(0.2, 1), analysis.DetectionRate(0.2, 8)))
	return res, nil
}

// Fig6a regenerates Figure 6(a): revocation rate P_d vs P for
// τ′ ∈ {1,2,3,4} at m=8, N_c=100.
func Fig6a(o Options) (Result, error) {
	steps := 50
	if o.Quick {
		steps = 15
	}
	xs := pGrid(steps)
	res := Result{
		ID:     "fig06a",
		Title:  "Revocation rate P_d vs P (m=8, Nc=100)",
		XLabel: "P",
		YLabel: "P_d",
	}
	for _, tauP := range []int{1, 2, 3, 4} {
		ys := make([]float64, len(xs))
		for i, p := range xs {
			ys[i] = analysis.RevocationRate(p, 8, tauP, 100, paperPop())
		}
		res.Series = append(res.Series, textplot.Series{
			Label: fmt.Sprintf("tau'=%d", tauP), X: xs, Y: ys,
		})
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("P_d at P=0.2, tau'=2: %.2f; larger tau' needs more alerts and lowers P_d",
			analysis.RevocationRate(0.2, 8, 2, 100, paperPop())))
	return res, nil
}

// Fig6b regenerates Figure 6(b): P_d vs P for m ∈ {1,2,4,8,16} at τ′=4.
func Fig6b(o Options) (Result, error) {
	steps := 50
	if o.Quick {
		steps = 15
	}
	xs := pGrid(steps)
	res := Result{
		ID:     "fig06b",
		Title:  "Revocation rate P_d vs P (tau'=4, Nc=100)",
		XLabel: "P",
		YLabel: "P_d",
	}
	for _, m := range []int{1, 2, 4, 8, 16} {
		ys := make([]float64, len(xs))
		for i, p := range xs {
			ys[i] = analysis.RevocationRate(p, m, 4, 100, paperPop())
		}
		res.Series = append(res.Series, textplot.Series{
			Label: fmt.Sprintf("m=%d", m), X: xs, Y: ys,
		})
	}
	return res, nil
}

// Fig7 regenerates Figure 7: P_d vs N_c for P ∈ {0.1,...,0.4} at m=8,
// τ′=2.
func Fig7(o Options) (Result, error) {
	maxNc := 250
	step := 5
	if o.Quick {
		maxNc, step = 100, 10
	}
	res := Result{
		ID:     "fig07",
		Title:  "Revocation rate P_d vs requesting nodes Nc (m=8, tau'=2)",
		XLabel: "Nc",
		YLabel: "P_d",
	}
	for _, p := range []float64{0.1, 0.2, 0.3, 0.4} {
		var xs, ys []float64
		for nc := step; nc <= maxNc; nc += step {
			xs = append(xs, float64(nc))
			ys = append(ys, analysis.RevocationRate(p, 8, 2, nc, paperPop()))
		}
		res.Series = append(res.Series, textplot.Series{
			Label: fmt.Sprintf("P=%.1f", p), X: xs, Y: ys,
		})
	}
	res.Notes = append(res.Notes,
		"more requesters mean more alert opportunities: P_d rises with Nc at every P")
	return res, nil
}

// Fig8 regenerates Figure 8: N′ vs P for τ′ ∈ {2,3,4} × m ∈ {8,4},
// N_c=100.
func Fig8(o Options) (Result, error) {
	steps := 50
	if o.Quick {
		steps = 15
	}
	xs := pGrid(steps)
	res := Result{
		ID:     "fig08",
		Title:  "Affected non-beacon nodes N' vs P (Nc=100)",
		XLabel: "P",
		YLabel: "N'",
	}
	for _, tauP := range []int{2, 3, 4} {
		for _, m := range []int{8, 4} {
			ys := make([]float64, len(xs))
			for i, p := range xs {
				ys[i] = analysis.AffectedNodes(p, m, tauP, 100, paperPop())
			}
			res.Series = append(res.Series, textplot.Series{
				Label: fmt.Sprintf("tau'=%d,m=%d", tauP, m), X: xs, Y: ys,
			})
		}
	}
	maxN, argP := analysis.MaxAffected(8, 2, 100, paperPop())
	res.Notes = append(res.Notes,
		fmt.Sprintf("attacker optimum at tau'=2,m=8: N' = %.2f at P = %.2f — single digits in practice", maxN, argP))
	return res, nil
}

// Fig9 regenerates Figure 9: max_P N′ vs N_c for m ∈ {2,4,8} × τ′ ∈
// {2,4}.
func Fig9(o Options) (Result, error) {
	maxNc := 250
	step := 5
	if o.Quick {
		maxNc, step = 100, 20
	}
	res := Result{
		ID:     "fig09",
		Title:  "Attacker-optimal N' vs Nc",
		XLabel: "Nc",
		YLabel: "max_P N'",
	}
	for _, m := range []int{8, 4, 2} {
		for _, tauP := range []int{2, 4} {
			var xs, ys []float64
			for nc := step; nc <= maxNc; nc += step {
				v, _ := analysis.MaxAffected(m, tauP, nc, paperPop())
				xs = append(xs, float64(nc))
				ys = append(ys, v)
			}
			res.Series = append(res.Series, textplot.Series{
				Label: fmt.Sprintf("m=%d,tau'=%d", m, tauP), X: xs, Y: ys,
			})
		}
	}
	res.Notes = append(res.Notes,
		"N' rises, peaks at an interior Nc, then falls as more requesters revoke the attacker faster")
	return res, nil
}

// Fig10 regenerates Figure 10: P_o vs τ for N_c ∈ {1,50,100,150,200}
// (τ′=2, m=8, P=0.2, N_w=10, p_d=0.9).
func Fig10(o Options) (Result, error) {
	maxTau := 15
	if o.Quick {
		maxTau = 10
	}
	res := Result{
		ID:     "fig10",
		Title:  "Report-counter overflow probability P_o vs tau (tau'=2, m=8, P=0.2)",
		XLabel: "tau",
		YLabel: "P_o",
	}
	for _, nc := range []int{1, 50, 100, 150, 200} {
		var xs, ys []float64
		for tau := 0; tau <= maxTau; tau++ {
			prm := analysis.ReportCounterParams{
				Pop: paperPop(), Nc: nc, Nw: 10, Pd: 0.9,
				M: 8, P: 0.2, TauPrime: 2, Tau: tau,
			}
			xs = append(xs, float64(tau))
			ys = append(ys, analysis.ReportCounterExceedProb(tau, prm))
		}
		res.Series = append(res.Series, textplot.Series{
			Label: fmt.Sprintf("Nc=%d", nc), X: xs, Y: ys,
		})
	}
	prm := analysis.ReportCounterParams{Pop: paperPop(), Nc: 100, Nw: 10, Pd: 0.9, M: 8, P: 0.2, TauPrime: 2, Tau: 10}
	res.Notes = append(res.Notes,
		fmt.Sprintf("P_o(tau=10, Nc=100) = %.2g — close to zero, so (tau=10, tau'=2) is a sound pair",
			analysis.ReportCounterExceedProb(10, prm)))
	return res, nil
}

// Fig11 regenerates Figure 11: the beacon deployment scatter.
func Fig11(o Options) (Result, error) {
	cfg := deploy.Paper()
	cfg.Seed = o.Seed
	d := deploy.New(cfg)
	res := Result{
		ID:     "fig11",
		Title:  "Beacon deployment in the sensing field (o benign, x malicious)",
		XLabel: "x (ft)",
		YLabel: "y (ft)",
	}
	var bx, by, mx, my []float64
	for _, i := range d.BenignBeacons() {
		bx = append(bx, d.Nodes[i].Loc.X)
		by = append(by, d.Nodes[i].Loc.Y)
	}
	for _, i := range d.MaliciousBeacons() {
		mx = append(mx, d.Nodes[i].Loc.X)
		my = append(my, d.Nodes[i].Loc.Y)
	}
	res.Series = []textplot.Series{
		{Label: "benign beacon", X: bx, Y: by, Scatter: true},
		{Label: "malicious beacon", X: mx, Y: my, Scatter: true},
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("%d benign + %d malicious beacons in a %g x %g ft field; avg beacon neighbors %.1f",
			len(bx), len(mx), cfg.Field.Width(), cfg.Field.Height(), d.AvgBeaconNeighbors()))
	return res, nil
}
