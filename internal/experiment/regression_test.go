package experiment

// Statistical regression suite: seeded simulation sweeps are pinned to
// the closed forms in internal/analysis within tolerance bands sized
// from the binomial noise of the sample. The suite guards the
// end-to-end stack (phy timing, MAC, detectors, revocation) against
// regressions that shift the measured rates away from theory — the
// paper's own validation ("the result conforms to the theoretical
// analysis", Figures 12–13).
//
// All tests are named TestRegression* so CI can run exactly this tier
// with `go test -run TestRegression ./internal/experiment/`. Seeds are
// fixed: a failure is a code change, not bad luck.

import (
	"math"
	"testing"

	"beaconsec/internal/analysis"
	"beaconsec/internal/scenario"
)

// regTrials picks the per-point trial count: enough for a ~4σ band at
// full fidelity, fewer under -short where the band widens accordingly.
func regTrials() int {
	if testing.Short() {
		return 3
	}
	return 8
}

// regSweep runs a quick-scale no-collusion sweep over the given P grid.
func regSweep(t *testing.T, label string, ps []float64, trials int) []*scenario.Result {
	t.Helper()
	o := Options{Quick: true, Seed: 7}
	sims, _, err := simSweep(o, label, ps, trials, func(c *scenario.Config) { c.Collude = false })
	if err != nil {
		t.Fatal(err)
	}
	return sims
}

// detTolerance is a 4σ binomial band plus a model-mismatch margin: the
// measured detection rate averages n = Na × trials Bernoulli
// revocations with variance th(1-th), and theory itself is evaluated at
// the measured Nc rather than the closed-form average.
func detTolerance(th float64, nSamples int) float64 {
	v := th * (1 - th)
	if v < 0.05 { // keep a sane floor when theory saturates near 0 or 1
		v = 0.05
	}
	return 0.12 + 4*math.Sqrt(v/float64(nSamples))
}

// TestRegressionDetectionRateTracksTheory pins the fig12 relationship:
// the simulated revocation detection rate at each P must land within a
// noise-sized band of analysis.RevocationRate evaluated at the measured
// requester count.
func TestRegressionDetectionRateTracksTheory(t *testing.T) {
	ps := []float64{0.1, 0.2, 0.4}
	trials := regTrials()
	sims := regSweep(t, "regression-detection", ps, trials)
	for i, p := range ps {
		s := sims[i]
		th := analysis.RevocationRate(p, 8, 2, int(math.Round(s.AvgNc)), s.Population)
		tol := detTolerance(th, s.Population.Na*trials)
		d := s.DetectionRate - th
		t.Logf("P=%.2f: sim %.3f theory %.3f (Nc=%.1f, tol %.3f)", p, s.DetectionRate, th, s.AvgNc, tol)
		if math.Abs(d) > tol {
			t.Errorf("P=%.2f: detection rate %.3f vs theory %.3f exceeds tolerance %.3f",
				p, s.DetectionRate, th, tol)
		}
	}
}

// TestRegressionFalsePositiveRateBounded pins the defense's false-
// positive behavior: without colluding reporters, benign beacons are
// revoked only through wormhole-induced false alerts that slip past the
// p_d = 0.9 wormhole filter and the report cap, so the measured FPR
// must stay small at every P.
func TestRegressionFalsePositiveRateBounded(t *testing.T) {
	ps := []float64{0.1, 0.4}
	trials := regTrials()
	sims := regSweep(t, "regression-fpr", ps, trials)
	for i, p := range ps {
		s := sims[i]
		t.Logf("P=%.2f: FPR %.4f (benign alerts %d, true alerts %d)",
			p, s.FalsePositiveRate, s.BenignAlerts, s.TrueAlerts)
		if s.FalsePositiveRate > 0.15 {
			t.Errorf("P=%.2f: false-positive rate %.3f above bound 0.15", p, s.FalsePositiveRate)
		}
	}
}

// TestRegressionAffectedNodesTracksTheory pins the fig13 relationship:
// the measured N' (sensors misled per surviving malicious beacon) must
// track analysis.AffectedNodes within a band scaled to the prediction.
func TestRegressionAffectedNodesTracksTheory(t *testing.T) {
	ps := []float64{0.1, 0.2, 0.4}
	trials := regTrials()
	sims := regSweep(t, "regression-affected", ps, trials)
	for i, p := range ps {
		s := sims[i]
		th := analysis.AffectedNodes(p, 8, 2, int(math.Round(s.AvgNc)), s.Population)
		// N' is a small count with trial variance of the same order as
		// its mean; bound the gap by half the prediction plus a floor.
		tol := 2.0 + 0.5*th
		d := s.AffectedPerMalicious - th
		t.Logf("P=%.2f: sim N'=%.2f theory %.2f (tol %.2f)", p, s.AffectedPerMalicious, th, tol)
		if math.Abs(d) > tol {
			t.Errorf("P=%.2f: affected nodes %.2f vs theory %.2f exceeds tolerance %.2f",
				p, s.AffectedPerMalicious, th, tol)
		}
	}
}

// TestRegressionDetectionMonotoneInP pins the qualitative fig5/fig12
// shape: a larger attack probability P exposes the attacker more, so
// the closed-form detection rate is non-decreasing in P, and the
// simulation must not invert the trend beyond noise between the grid's
// endpoints.
func TestRegressionDetectionMonotoneInP(t *testing.T) {
	ps := []float64{0.1, 0.5}
	trials := regTrials()
	sims := regSweep(t, "regression-monotone", ps, trials)
	lo, hi := sims[0], sims[len(sims)-1]
	tol := detTolerance(lo.DetectionRate, lo.Population.Na*trials)
	t.Logf("P=%.2f: %.3f, P=%.2f: %.3f", ps[0], lo.DetectionRate, ps[1], hi.DetectionRate)
	if lo.DetectionRate > hi.DetectionRate+tol {
		t.Errorf("detection rate fell from %.3f to %.3f as P rose %v -> %v",
			lo.DetectionRate, hi.DetectionRate, ps[0], ps[1])
	}
}
