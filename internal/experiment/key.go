package experiment

import (
	"encoding/json"
	"fmt"
)

// keyVersion versions EncodeKey's layout. v2 added the detector identity
// field: bumping the version retires every v1 entry wholesale, so a
// cache populated before the detector field existed can never satisfy a
// lookup made after (stale v1 entries for what is now a non-default
// detector simply never match a v2 key).
const keyVersion = "beaconsec-key/v2"

// EncodeKey builds the canonical cache-key material for a sweep: the key
// layout version, a kind tag (name the sweep shape and bump a /vN suffix
// on incompatible per-kind layout changes), the canonical identity of
// the detector the sweep runs (core.DetectorSpec.Canonical; empty for
// detector-independent computations like the RTT calibration), plus the
// deterministic JSON encoding of cfg — struct fields in declaration
// order, map keys sorted, floats in shortest exact form. cfg must be the
// fully resolved configuration the sweep's Run closure derives its
// per-job configs from, with per-job seeds zeroed (the harness's job
// fingerprint addresses those): any semantic config change then changes
// the key and misses the cache. The detector field is deliberately
// explicit even when cfg embeds the spec: cached trials must never cross
// detector choices, whatever shape cfg takes.
//
// Behavior changes that live in code rather than config values — a
// different formula behind the same Config — are invisible to EncodeKey
// by construction; those must bump cache.CodeSalt.
func EncodeKey(kind, detector string, cfg any) []byte {
	b, err := json.Marshal(cfg)
	if err != nil {
		// Config types are plain exported data; a marshal failure is a
		// programming error, not a runtime condition.
		panic(fmt.Sprintf("experiment: EncodeKey(%s): %v", kind, err))
	}
	key := make([]byte, 0, len(keyVersion)+1+len(kind)+1+len(detector)+1+len(b))
	key = append(key, keyVersion...)
	key = append(key, 0)
	key = append(key, kind...)
	key = append(key, 0)
	key = append(key, detector...)
	key = append(key, 0)
	return append(key, b...)
}
