package experiment

import (
	"encoding/json"
	"fmt"
)

// EncodeKey builds the canonical cache-key material for a sweep: a kind
// tag (name the sweep shape and bump a /vN suffix on incompatible key
// layout changes) plus the deterministic JSON encoding of cfg — struct
// fields in declaration order, map keys sorted, floats in shortest
// exact form. cfg must be the fully resolved configuration the sweep's
// Run closure derives its per-job configs from, with per-job seeds
// zeroed (the harness's job fingerprint addresses those): any semantic
// config change then changes the key and misses the cache.
//
// Behavior changes that live in code rather than config values — a
// different formula behind the same Config — are invisible to EncodeKey
// by construction; those must bump cache.CodeSalt.
func EncodeKey(kind string, cfg any) []byte {
	b, err := json.Marshal(cfg)
	if err != nil {
		// Config types are plain exported data; a marshal failure is a
		// programming error, not a runtime condition.
		panic(fmt.Sprintf("experiment: EncodeKey(%s): %v", kind, err))
	}
	key := make([]byte, 0, len(kind)+1+len(b))
	key = append(key, kind...)
	key = append(key, 0)
	return append(key, b...)
}
