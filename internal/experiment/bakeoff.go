package experiment

import (
	"fmt"
	"math"

	"beaconsec/internal/analysis"
	"beaconsec/internal/core"
	"beaconsec/internal/scenario"
	"beaconsec/internal/textplot"
)

// bakeoffAttack is one attacker profile of the bake-off grid.
type bakeoffAttack struct {
	label string
	// bias is the attack signal's distance enlargement in feet; zero
	// selects the node-layer default (5·ε_max).
	bias float64
}

// bakeoffAttacks is the attacker axis: the paper's blatant 5ε
// enlargement, which every detector catches with certainty, and a subtle
// 1.5ε enlargement that stays inside the per-requester always-catch
// region and separates the detectors' decision boundaries.
func bakeoffAttacks() []bakeoffAttack {
	return []bakeoffAttack{
		{label: "blatant", bias: 0},
		{label: "subtle", bias: 15},
	}
}

// bakeoffDetectors resolves the detector grid: the caller's choice, or
// every registered detector with default parameters.
func bakeoffDetectors(o Options) []core.DetectorSpec {
	if len(o.Detectors) > 0 {
		return o.Detectors
	}
	names := core.DetectorNames()
	specs := make([]core.DetectorSpec, len(names))
	for i, name := range names {
		specs[i] = core.DetectorSpec{Name: name}
	}
	return specs
}

// bakeoffCatchProb is the closed-form per-exchange catch probability of
// a detector against an attack signal with the given enlargement, where
// tractable (all three built-in detectors are, at any parameters); ok
// reports whether a form exists for the spec.
func bakeoffCatchProb(spec core.DetectorSpec, bias, eps float64) (float64, bool) {
	name := spec.Name
	if name == "" {
		name = core.DefaultDetectorName
	}
	param := func(key string, def float64) float64 {
		if v, ok := spec.Params[key]; ok {
			return v
		}
		return def
	}
	switch name {
	case "paper":
		return analysis.PaperCatchProb(bias, eps), true
	case "ml":
		cut := analysis.MLCut(param("bias", 2*eps), param("lambda", 0), eps)
		return analysis.MLCatchProb(bias, eps, cut), true
	case "mahalanobis":
		return analysis.MahalanobisFlagProb(bias, eps, param("threshold", 3)), true
	}
	return 0, false
}

// ExtraBakeoff is extension experiment E3: the detector bake-off. Every
// detector of the grid runs the no-collusion revocation scenario over
// the same P grid under two attacker profiles, with common random
// numbers: the sweeps share one label per attacker profile, so the
// harness derives identical job seeds — identical deployments, attacker
// choices, and noise draws — for every detector, and curve differences
// are pure detector effects. Detector identity still enters every cache
// key (sweepKey), so memoized trials never cross detectors.
func ExtraBakeoff(o Options) (Result, error) {
	dets := bakeoffDetectors(o)
	ps := []float64{0.05, 0.1, 0.2, 0.3, 0.5}
	trials := 2
	if o.Quick {
		ps = []float64{0.1, 0.3}
		trials = 1
	}
	// One shared calibration pins both the RTT threshold (via simSweep)
	// and the moments detectors calibrate on, so no per-run calibration
	// runs inside the sweep.
	stats, err := calStats(o)
	if err != nil {
		return Result{}, err
	}

	res := Result{
		ID:     "extra-bakeoff",
		Title:  "E3: detector bake-off — revocation detection rate vs P (common random numbers)",
		XLabel: "P",
		YLabel: "detection rate",
	}
	rm := &RunMetrics{}
	eps := scenario.Paper().MaxDistError
	for _, attack := range bakeoffAttacks() {
		attack := attack
		for _, det := range dets {
			det := det
			sims, sweepRM, err := simSweep(o, "bakeoff-"+attack.label, ps, trials,
				func(c *scenario.Config) {
					c.Collude = false
					c.Detector = det
					c.AttackBias = attack.bias
					st := stats
					c.RTTStats = &st
				})
			if err != nil {
				return Result{}, fmt.Errorf("bakeoff %s/%s: %w", det.Canonical(), attack.label, err)
			}
			rm.Scenario.Merge(sweepRM.Scenario)
			rm.Timing.Merge(sweepRM.Timing)

			simY := make([]float64, len(ps))
			var fpr, benignAlerts float64
			for i, s := range sims {
				simY[i] = s.DetectionRate
				fpr += s.FalsePositiveRate
				benignAlerts += float64(s.BenignAlerts)
			}
			fpr /= float64(len(sims))
			benignAlerts /= float64(len(sims))
			res.Series = append(res.Series, textplot.Series{
				Label: fmt.Sprintf("%s/%s", det.Canonical(), attack.label),
				X:     ps, Y: simY,
			})

			bias := attack.bias
			if bias == 0 {
				bias = 5 * eps // the node-layer default enlargement
			}
			if catch, ok := bakeoffCatchProb(det, bias, eps); ok {
				last := len(ps) - 1
				th := analysis.RevocationRate(ps[last]*catch, 8, 2,
					int(math.Round(sims[last].AvgNc)), sims[last].Population)
				res.Notes = append(res.Notes, fmt.Sprintf(
					"%s/%s: catch/exchange %.3f; at P=%.2f sim %.3f vs theory %.3f; mean FPR %.4f (benign alerts %.1f/run)",
					det.Canonical(), attack.label, catch, ps[last], simY[last], th, fpr, benignAlerts))
			} else {
				res.Notes = append(res.Notes, fmt.Sprintf(
					"%s/%s: no closed form; at P=%.2f sim %.3f; mean FPR %.4f",
					det.Canonical(), attack.label, ps[len(ps)-1], simY[len(simY)-1], fpr))
			}
		}
	}
	res.Metrics = rm
	res.Notes = append(res.Notes,
		"all detectors see identical deployments and attacker behavior per point (shared sweep labels => common random numbers)",
		"the paper's 5-epsilon attack is caught by every detector; the subtle 1.5-epsilon attack separates the decision boundaries")
	return res, nil
}
