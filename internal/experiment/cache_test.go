package experiment

import (
	"bytes"
	"encoding/json"
	"runtime"
	"testing"

	"beaconsec/internal/cache"
)

func testCache(t *testing.T) *cache.Cache {
	t.Helper()
	c, err := cache.New(cache.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// resultJSON marshals a figure result with its wall-clock half zeroed,
// the form the byte-identity contract is stated in.
func resultJSON(t *testing.T, r Result) []byte {
	t.Helper()
	stripTiming(&r)
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestFig12CacheByteIdentity pins the tentpole contract: a figure's
// marshaled result is byte-identical whether it ran with no cache, a
// cold cache, or a warm cache, at one worker or a full pool.
func TestFig12CacheByteIdentity(t *testing.T) {
	base := resultJSON(t, mustRun(t, Fig12, Options{Quick: true, Seed: 1, Workers: 1}))

	c := testCache(t)
	for _, run := range []struct {
		name    string
		workers int
	}{
		{"cold/1", 1},
		{"warm/1", 1},
		{"warm/ncpu", runtime.NumCPU()},
	} {
		o := Options{Quick: true, Seed: 1, Workers: run.workers, Cache: c}
		got := resultJSON(t, mustRun(t, Fig12, o))
		if !bytes.Equal(base, got) {
			t.Fatalf("%s diverged from the uncached run:\n%s\nvs\n%s", run.name, base, got)
		}
	}
}

// TestFig12WarmCacheReplays checks the hit/miss counters surface through
// the figure's Timing: a cold run misses every sweep job, a warm run of
// the same figure hits every one.
func TestFig12WarmCacheReplays(t *testing.T) {
	c := testCache(t)
	o := Options{Quick: true, Seed: 1, Cache: c}

	cold := mustRun(t, Fig12, o)
	tm := cold.Metrics.Timing
	if tm.CacheMisses != uint64(tm.Jobs) || tm.CacheHits != 0 {
		t.Fatalf("cold run: hits %d misses %d over %d jobs",
			tm.CacheHits, tm.CacheMisses, tm.Jobs)
	}

	warm := mustRun(t, Fig12, o)
	tm = warm.Metrics.Timing
	if tm.CacheHits != uint64(tm.Jobs) || tm.CacheMisses != 0 {
		t.Fatalf("warm run: hits %d misses %d over %d jobs",
			tm.CacheHits, tm.CacheMisses, tm.Jobs)
	}
}

// TestFig13ReusesFig12Sweep pins the dedup win the shared "detect" sweep
// buys: fig12 and fig13 render different figures from the same detection
// sweep, so after fig12 runs cold, fig13 computes nothing.
func TestFig13ReusesFig12Sweep(t *testing.T) {
	c := testCache(t)
	o := Options{Quick: true, Seed: 1, Cache: c}
	mustRun(t, Fig12, o)

	r13 := mustRun(t, Fig13, o)
	tm := r13.Metrics.Timing
	if tm.CacheMisses != 0 || tm.CacheHits != uint64(tm.Jobs) {
		t.Fatalf("fig13 after fig12: hits %d misses %d over %d jobs — sweep not shared",
			tm.CacheHits, tm.CacheMisses, tm.Jobs)
	}
}

// TestCacheSurvivesProcessRestart simulates a new process on the same
// cache directory: a fresh Cache handle over fig12's entries must serve
// the warm run entirely from disk.
func TestCacheSurvivesProcessRestart(t *testing.T) {
	dir := t.TempDir()
	c1, err := cache.New(cache.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	base := resultJSON(t, mustRun(t, Fig12, Options{Quick: true, Seed: 1, Cache: c1}))

	c2, err := cache.New(cache.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	warm := mustRun(t, Fig12, Options{Quick: true, Seed: 1, Cache: c2})
	tm := warm.Metrics.Timing
	if tm.CacheMisses != 0 {
		t.Fatalf("fresh handle over a populated dir missed %d jobs", tm.CacheMisses)
	}
	if got := resultJSON(t, warm); !bytes.Equal(base, got) {
		t.Fatalf("disk replay diverged:\n%s\nvs\n%s", base, got)
	}
}

// TestEncodeKeySensitivity: the key material must separate sweeps by
// kind, by detector, and by any config field, and be stable for equal
// inputs.
func TestEncodeKeySensitivity(t *testing.T) {
	type cfg struct{ Trials int }
	a := EncodeKey("sweep", "paper", cfg{3})
	if !bytes.Equal(a, EncodeKey("sweep", "paper", cfg{3})) {
		t.Error("equal inputs produced different keys")
	}
	if bytes.Equal(a, EncodeKey("sweep", "paper", cfg{4})) {
		t.Error("config change did not change the key")
	}
	if bytes.Equal(a, EncodeKey("other", "paper", cfg{3})) {
		t.Error("kind change did not change the key")
	}
	if bytes.Equal(a, EncodeKey("sweep", "ml", cfg{3})) {
		t.Error("detector change did not change the key")
	}
	// The version prefix is what retires every pre-detector (v1) entry:
	// losing it would let stale v1 trials alias v2 keys.
	if !bytes.HasPrefix(a, []byte("beaconsec-key/v2\x00")) {
		t.Errorf("key material lost its version prefix: %q", a[:20])
	}
	// The field boundaries are unambiguous: a kind or detector that
	// "absorbs" part of a neighboring field cannot collide.
	if bytes.Equal(EncodeKey("ab", "c", "d"), EncodeKey("a", "bc", "d")) {
		t.Error("kind/detector boundary ambiguous")
	}
	if bytes.Equal(EncodeKey("a", "bc", "d"), EncodeKey("a", "b", "cd")) {
		t.Error("detector/payload boundary ambiguous")
	}
}

// TestSeedChangesMissCache: a different experiment seed must address
// different entries (derived trial seeds differ), not replay old ones.
func TestSeedChangesMissCache(t *testing.T) {
	c := testCache(t)
	mustRun(t, Fig12, Options{Quick: true, Seed: 1, Cache: c})

	r := mustRun(t, Fig12, Options{Quick: true, Seed: 2, Cache: c})
	if hits := r.Metrics.Timing.CacheHits; hits != 0 {
		t.Fatalf("seed change replayed %d stale trials", hits)
	}
}
