package experiment

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"beaconsec/internal/metrics"
	"beaconsec/internal/scenario"
	"beaconsec/internal/sim"
	"beaconsec/internal/textplot"
)

// metroSizes are the population points the metro runner sweeps. The full
// set tops out at 50k nodes — large enough that the wheel is the
// auto-selected queue and the standing event population is tens of
// thousands, small enough for a figure run; the 100k–1M regime lives in
// the benchmarks (BenchmarkSchedulerWheelFireMillion,
// BenchmarkDeployMetro*, BenchmarkRunMetroParallel) and
// results/BENCH_*_metro.json / BENCH_*_parallel.json.
func metroSizes(o Options) []int64 {
	if o.Quick {
		return []int64{2_000, 5_000}
	}
	return []int64{5_000, 20_000, 50_000}
}

// metroWorkers is the shard count of the parallel identity leg: the
// caller's -metro-workers if set, else 4 — deliberately more shards than
// a small CI box has cores, so the sharded kernel is exercised (and its
// identity contract enforced) even on one CPU.
func metroWorkers(o Options) int {
	if o.MetroWorkers > 0 {
		return o.MetroWorkers
	}
	return 4
}

// ExtraMetro regenerates the metro-scale extension experiment: for each
// population it runs the streamed probe scenario under BOTH event queues
// plus the space-partitioned parallel kernel, errors if the queues
// diverge in any way or the parallel run diverges in any identity-pinned
// field (the tentpole contracts, enforced on every figure regeneration,
// not just in tests), and reports the deterministic outcome curves.
// Wall-clock throughput and the execution environment are recorded in
// the notes only — they vary by machine, so they must never enter the
// series a golden file might pin.
func ExtraMetro(o Options) (Result, error) {
	ctx := context.Background()
	sizes := metroSizes(o)
	workers := metroWorkers(o)
	res := Result{
		ID:     "extra-metro",
		Title:  "E6: metro scale — streamed scenarios at 2k-50k nodes, wheel vs heap",
		XLabel: "nodes",
		YLabel: "rate / normalized count",
	}
	xs := make([]float64, len(sizes))
	flagRate := make([]float64, len(sizes))
	timeoutRate := make([]float64, len(sizes))
	pendingPerNode := make([]float64, len(sizes))
	depthP99 := make([]float64, len(sizes))
	start := time.Now()
	for i, n := range sizes {
		cfg := scenario.MetroPaper(n, o.Seed)

		cfg.Queue = sim.QueueHeap
		heapStart := time.Now()
		heap, err := scenario.RunMetro(ctx, cfg)
		if err != nil {
			return Result{}, fmt.Errorf("metro %d nodes (heap): %w", n, err)
		}
		heapWall := time.Since(heapStart)

		cfg.Queue = sim.QueueWheel
		wheelStart := time.Now()
		wheel, err := scenario.RunMetro(ctx, cfg)
		if err != nil {
			return Result{}, fmt.Errorf("metro %d nodes (wheel): %w", n, err)
		}
		wheelWall := time.Since(wheelStart)

		hb, _ := json.Marshal(heap)
		wb, _ := json.Marshal(wheel)
		if string(hb) != string(wb) {
			return Result{}, fmt.Errorf(
				"metro %d nodes: wheel diverged from heap queue\nheap:  %s\nwheel: %s", n, hb, wb)
		}

		parStart := time.Now()
		par, err := scenario.RunMetroParallel(ctx, cfg, workers)
		if err != nil {
			return Result{}, fmt.Errorf("metro %d nodes (parallel x%d): %w", n, workers, err)
		}
		parWall := time.Since(parStart)
		pb, _ := json.Marshal(par.Identity())
		sb, _ := json.Marshal(wheel.Identity())
		if string(pb) != string(sb) {
			return Result{}, fmt.Errorf(
				"metro %d nodes: parallel x%d diverged from serial in identity-pinned fields\nserial:   %s\nparallel: %s",
				n, workers, sb, pb)
		}

		xs[i] = float64(n)
		flagRate[i] = wheel.FlagRate
		timeoutRate[i] = float64(wheel.Timeouts) / float64(wheel.Probes)
		pendingPerNode[i] = float64(wheel.Sim.MaxPending) / float64(n)
		depthP99[i] = wheel.QueueDepth.Quantile(0.99) / float64(n)

		events := float64(wheel.Sim.Events)
		res.Notes = append(res.Notes, fmt.Sprintf(
			"%d nodes: %d events, max pending %d; wall-clock %.0fms heap vs %.0fms wheel (%.2fx, machine-dependent); parallel x%d %.0fms (%.2fx vs wheel), identity-pinned fields byte-identical",
			n, wheel.Sim.Events, wheel.Sim.MaxPending,
			float64(heapWall.Milliseconds()), float64(wheelWall.Milliseconds()),
			events/wheelWall.Seconds()/(events/heapWall.Seconds()),
			workers, float64(parWall.Milliseconds()),
			wheelWall.Seconds()/parWall.Seconds()))

		if o.Progress != nil {
			o.Progress(i+1, len(sizes), time.Since(start))
		}
	}
	res.Series = []textplot.Series{
		{Label: "malicious flag rate", X: xs, Y: flagRate},
		{Label: "timeout rate", X: xs, Y: timeoutRate},
		{Label: "max pending / nodes", X: xs, Y: pendingPerNode},
		{Label: "p99 queue depth / nodes", X: xs, Y: depthP99},
	}
	env := metrics.CaptureEnv()
	res.Notes = append(res.Notes,
		"wheel and heap queues byte-identical at every size (checked this run)",
		fmt.Sprintf("parallel kernel (x%d shards) identity-pinned fields byte-identical at every size (checked this run)", workers),
		"memory-bounded: deployment streamed, per-node results never retained",
		fmt.Sprintf("env: %s %s/%s, GOMAXPROCS=%d of %d CPUs (scaling numbers are meaningless without this)",
			env.GoVersion, env.GOOS, env.GOARCH, env.GOMAXPROCS, env.NumCPU))
	return res, nil
}
