package wormhole

import (
	"testing"

	"beaconsec/internal/phy"
	"beaconsec/internal/rng"
	"beaconsec/internal/sim"
)

func TestTemporalLeashSingleHopPasses(t *testing.T) {
	l := TemporalLeash{SyncError: 100, Slack: 10}
	src := rng.New(1)
	for i := 0; i < 5000; i++ {
		// A legitimate single hop: flight ≈ 0-2 cycles, clocks off by
		// up to ±SyncError.
		skew := src.Uniform(-100, 100)
		sent := sim.Time(1_000_000 + i*1000)
		received := sim.Time(float64(sent) + src.Uniform(0, 2) + skew + 100) // +100 keeps Time unsigned-safe
		// Normalize: pass the receiver's reading minus the constant.
		if l.Check(sent+100, received, 150) {
			t.Fatalf("trial %d: legitimate packet flagged (skew %v)", i, skew)
		}
	}
}

func TestTemporalLeashCatchesSlowWormhole(t *testing.T) {
	l := TemporalLeash{SyncError: 100, Slack: 10}
	// A store-and-forward wormhole adds at least one frame time.
	sent := sim.Time(1_000_000)
	received := sent + phy.FrameAirTime(16)
	if !l.Check(sent, received, 150) {
		t.Error("frame-time delay not caught by temporal leash")
	}
}

func TestTemporalLeashMissesAnalogWormhole(t *testing.T) {
	// The known blind spot: an analog relay adding less than the slack
	// evades the leash — the reason the paper's analysis keeps p_d < 1.
	l := TemporalLeash{SyncError: 100, Slack: 10}
	sent := sim.Time(1_000_000)
	received := sent + 50 // under 2*SyncError + Slack
	if l.Check(sent, received, 150) {
		t.Error("analog wormhole within slack was flagged; leash tighter than its own sync budget")
	}
}

func TestTemporalLeashNegativeFlight(t *testing.T) {
	l := TemporalLeash{SyncError: 100, Slack: 10}
	sent := sim.Time(1_000_000)
	if l.Check(sent, sent-150, 150) {
		t.Error("negative flight within clock-skew budget flagged")
	}
	if !l.Check(sent, sent-500, 150) {
		t.Error("impossibly negative flight not flagged")
	}
}

func TestTemporalLeashBoundaryExact(t *testing.T) {
	l := TemporalLeash{SyncError: 0, Slack: 0}
	maxFlight := l.MaxFlight(150)
	sent := sim.Time(1_000_000)
	atBound := sent + sim.Time(maxFlight)
	if l.Check(sent, atBound, 150) {
		t.Error("flight exactly at bound flagged")
	}
	if !l.Check(sent, atBound+5, 150) {
		t.Error("flight past bound not flagged")
	}
}

func TestTemporalLeashNegativeRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for negative range")
		}
	}()
	TemporalLeash{}.MaxFlight(-1)
}
