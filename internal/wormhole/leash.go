package wormhole

import (
	"fmt"

	"beaconsec/internal/sim"
)

// TemporalLeash implements Hu–Perrig–Johnson temporal packet leashes, the
// other wormhole defense the paper cites ([13]): the sender embeds an
// authenticated timestamp; the receiver bounds the packet's flight time
// by the radio range over the speed of light plus the network's worst
// clock synchronization error. A wormhole that adds more delay than the
// leash slack is detected.
//
// It requires packets to carry authenticated send timestamps and the
// network to maintain time synchronization within SyncError — the costs
// the paper's §2.2.2 notes ("requires a secure and tight time
// synchronization, and large memory space to store authentication keys")
// as motivation for the cheaper RTT detector. It is provided as a
// standalone verifier; the scenario engine uses the Probabilistic
// detector whose rate p_d abstracts over implementations like this one.
type TemporalLeash struct {
	// SyncError is the worst-case clock offset between any two nodes,
	// in cycles.
	SyncError float64
	// Slack absorbs processing variation, in cycles.
	Slack float64
}

// speedOfLightCyclesPerFt converts distance to light flight time at the
// simulated CPU frequency.
const speedOfLightCyclesPerFt = float64(sim.CPUHz) / 983_571_056.0

// MaxFlight returns the largest legitimate apparent flight time for a
// single hop of up to rangeFt.
func (l TemporalLeash) MaxFlight(rangeFt float64) float64 {
	if rangeFt < 0 {
		panic(fmt.Sprintf("wormhole: negative range %v", rangeFt))
	}
	return rangeFt*speedOfLightCyclesPerFt + 2*l.SyncError + l.Slack
}

// Check verifies one packet: sentAt is the sender's authenticated local
// timestamp, receivedAt the receiver's local arrival time, rangeFt the
// radio range. It reports true when the apparent flight time exceeds the
// leash — i.e. the packet traversed a wormhole (or the clocks are worse
// than SyncError, the scheme's known false-positive source).
func (l TemporalLeash) Check(sentAt, receivedAt sim.Time, rangeFt float64) bool {
	if receivedAt < sentAt {
		// Apparent negative flight: possible under clock skew up to
		// SyncError; beyond that it is as anomalous as a late packet.
		return float64(sentAt-receivedAt) > 2*l.SyncError+l.Slack
	}
	return float64(receivedAt-sentAt) > l.MaxFlight(rangeFt)
}
