package wormhole

import (
	"testing"

	"beaconsec/internal/geo"
	"beaconsec/internal/phy"
	"beaconsec/internal/rng"
	"beaconsec/internal/sim"
)

func setup() (*sim.Scheduler, *phy.Medium) {
	sched := sim.New()
	m := phy.NewMedium(sched, rng.New(3), phy.Config{Range: 150})
	return sched, m
}

func TestTunnelForwardsBothDirections(t *testing.T) {
	sched, m := setup()
	a := geo.Point{X: 100, Y: 100}
	b := geo.Point{X: 800, Y: 700}
	tun := Install(sched, m, a, b, 2)

	nearA := m.NewRadio(geo.Point{X: 120, Y: 100})
	nearB := m.NewRadio(geo.Point{X: 780, Y: 700})
	var atA, atB []phy.Reception
	nearA.SetHandler(func(r phy.Reception) { atA = append(atA, r) })
	nearB.SetHandler(func(r phy.Reception) { atB = append(atB, r) })

	// Transmit near A; must appear near B as a replayed frame.
	sched.At(0, func() { m.Transmit(nearA, phy.Frame{Data: make([]byte, 16)}) })
	// And the reverse direction, later.
	sched.At(sim.Seconds(1), func() { m.Transmit(nearB, phy.Frame{Data: make([]byte, 16)}) })
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if len(atB) != 1 {
		t.Fatalf("near-B radio received %d frames, want 1 (tunneled)", len(atB))
	}
	if !atB[0].Frame.Replayed {
		t.Error("tunneled frame not marked Replayed")
	}
	if len(atA) != 1 {
		t.Fatalf("near-A radio received %d frames, want 1 (reverse tunneled)", len(atA))
	}
	if tun.Forwarded != 2 {
		t.Errorf("Forwarded = %d, want 2", tun.Forwarded)
	}
}

func TestTunnelMeasuredDistanceIsToExit(t *testing.T) {
	sched, m := setup()
	a := geo.Point{X: 100, Y: 100}
	b := geo.Point{X: 800, Y: 700}
	Install(sched, m, a, b, 2)
	nearA := m.NewRadio(geo.Point{X: 100, Y: 100})
	nearB := m.NewRadio(geo.Point{X: 830, Y: 740})
	var got []float64
	nearB.SetHandler(func(r phy.Reception) { got = append(got, r.MeasuredDist) })
	sched.At(0, func() { m.Transmit(nearA, phy.Frame{Data: make([]byte, 16)}) })
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("received %d frames", len(got))
	}
	want := geo.Point{X: 830, Y: 740}.Dist(b) // 50
	if got[0] != want {
		t.Errorf("MeasuredDist = %v, want %v (distance to tunnel exit)", got[0], want)
	}
}

func TestTunnelDoesNotLoop(t *testing.T) {
	// Two tunnels sharing an endpoint region must not amplify traffic
	// forever.
	sched, m := setup()
	Install(sched, m, geo.Point{X: 0, Y: 0}, geo.Point{X: 500, Y: 0}, 2)
	Install(sched, m, geo.Point{X: 500, Y: 0}, geo.Point{X: 900, Y: 0}, 2)
	tx := m.NewRadio(geo.Point{X: 10, Y: 0})
	sched.At(0, func() { m.Transmit(tx, phy.Frame{Data: make([]byte, 16)}) })
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	// One original + at most one injection per tunnel; termination is
	// the real assertion.
	if got := m.Stats().Transmissions; got > 3 {
		t.Errorf("transmissions = %d, tunnel loop suspected", got)
	}
}

func TestTunnelIgnoresFarTraffic(t *testing.T) {
	sched, m := setup()
	tun := Install(sched, m, geo.Point{X: 0, Y: 0}, geo.Point{X: 900, Y: 900}, 2)
	tx := m.NewRadio(geo.Point{X: 450, Y: 450}) // far from both endpoints
	sched.At(0, func() { m.Transmit(tx, phy.Frame{Data: make([]byte, 16)}) })
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if tun.Forwarded != 0 {
		t.Errorf("tunnel forwarded %d far frames", tun.Forwarded)
	}
}

func TestTunnelLatency(t *testing.T) {
	sched, m := setup()
	const latency = sim.Time(12345)
	Install(sched, m, geo.Point{X: 0, Y: 0}, geo.Point{X: 800, Y: 0}, latency)
	tx := m.NewRadio(geo.Point{X: 10, Y: 0})
	rx := m.NewRadio(geo.Point{X: 790, Y: 0})
	var end sim.Time
	rx.SetHandler(func(r phy.Reception) { end = r.End })
	sched.At(0, func() { m.Transmit(tx, phy.Frame{Data: make([]byte, 16)}) })
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	air := phy.FrameAirTime(16)
	// Bit-level relay: injection starts at latency, ends latency+air.
	want := latency + air
	if end < want || end > want+10 {
		t.Errorf("replayed frame ended at %v, want ≈ %v", end, want)
	}
}

func TestProbabilisticDetector(t *testing.T) {
	src := rng.New(9)
	d := NewProbabilistic(0.9, src)

	if !d.Detect(Context{WormholeMark: true}) {
		t.Error("marked signal not detected (attacker must always convince)")
	}
	if d.Detect(Context{}) {
		t.Error("clean signal flagged (detector must have zero false positives)")
	}
	hits := 0
	const trials = 10000
	for i := 0; i < trials; i++ {
		if d.Detect(Context{Replayed: true}) {
			hits++
		}
	}
	rate := float64(hits) / trials
	if rate < 0.88 || rate > 0.92 {
		t.Errorf("replay detection rate = %v, want ≈ 0.9", rate)
	}
}

func TestProbabilisticRateBounds(t *testing.T) {
	for _, bad := range []float64{-0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("rate %v did not panic", bad)
				}
			}()
			NewProbabilistic(bad, rng.New(1))
		}()
	}
}

func TestGeoLeash(t *testing.T) {
	g := GeoLeash{Slack: 10}
	tests := []struct {
		name string
		ctx  Context
		want bool
	}{
		{"claimed within range", Context{ClaimedDist: 100, Range: 150}, false},
		{"claimed at slack boundary", Context{ClaimedDist: 160, Range: 150}, false},
		{"claimed beyond range+slack", Context{ClaimedDist: 161, Range: 150}, true},
		{"location unknown", Context{ClaimedDist: -1, Range: 150}, false},
		{"marked overrides", Context{WormholeMark: true, ClaimedDist: 10, Range: 150}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := g.Detect(tt.ctx); got != tt.want {
				t.Errorf("Detect(%+v) = %v, want %v", tt.ctx, got, tt.want)
			}
		})
	}
}

func tunnelRTT(t *testing.T, latency sim.Time) float64 {
	t.Helper()
	sched, m := setup()
	Install(sched, m, geo.Point{X: 0, Y: 0}, geo.Point{X: 800, Y: 0}, latency)
	u := m.NewRadio(geo.Point{X: 20, Y: 0})  // requester near A
	v := m.NewRadio(geo.Point{X: 820, Y: 0}) // responder near B

	var t1, t2, t3, t4 sim.Time
	rtt := -1.0
	v.SetHandler(func(r phy.Reception) {
		t2 = r.FirstByteSPDR
		sched.After(5000, func() {
			info := m.Transmit(v, phy.Frame{Data: make([]byte, 16)})
			t3 = info.FirstByteSPDR
		})
	})
	u.SetHandler(func(r phy.Reception) {
		t4 = r.FirstByteSPDR
		rtt = float64(t4-t1) - float64(t3-t2)
	})
	sched.At(sim.Millis(5), func() {
		info := m.Transmit(u, phy.Frame{Data: make([]byte, 16)})
		t1 = info.FirstByteSPDR
	})
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if rtt < 0 {
		t.Fatal("exchange did not complete through tunnel")
	}
	return rtt
}

func TestAnalogTunnelEvadesRTTFilter(t *testing.T) {
	// The paper's false-positive path requires the wormhole replay's
	// added delay to stay under ~4.5 bit-times: a near-zero-latency
	// analog relay produces an RTT inside the benign spread.
	rtt := tunnelRTT(t, 2)
	j := phy.DefaultJitter()
	if max := 4*j.Max + 2*2 + 4; rtt > max {
		t.Errorf("analog tunnel RTT = %v, exceeds benign bound %v", rtt, max)
	}
	if min := 4 * j.Min; rtt < min {
		t.Errorf("analog tunnel RTT = %v below %v", rtt, min)
	}
}

func TestSlowTunnelInflatesRTT(t *testing.T) {
	// A store-and-forward wormhole (latency ≈ one frame time) inflates
	// the RTT by 2×latency — which is what the RTT filter catches.
	latency := phy.FrameAirTime(16)
	rtt := tunnelRTT(t, latency)
	j := phy.DefaultJitter()
	wantMin := 4*j.Min + 2*float64(latency) - 1
	if rtt < wantMin {
		t.Errorf("slow tunnel RTT = %v, want >= %v", rtt, wantMin)
	}
}
