// Package wormhole implements the wormhole attack (a low-latency tunnel
// that records radio traffic at one point of the field and replays it at
// another, per Hu–Perrig–Johnson) and the wormhole detectors the paper
// assumes are "installed on every beacon and non-beacon node".
//
// The paper's analysis treats the detector abstractly: it catches a real
// wormhole replay with probability p_d and never accuses clean traffic;
// additionally a malicious sender "can always manipulate its beacon
// signals to convince the detecting node that there is a wormhole attack".
// Probabilistic implements exactly that contract. GeoLeash is a concrete
// instantiation (geographic packet leashes) provided to show the contract
// is realizable.
package wormhole

import (
	"fmt"

	"beaconsec/internal/geo"
	"beaconsec/internal/phy"
	"beaconsec/internal/rng"
	"beaconsec/internal/sim"
)

// Tunnel is a wormhole between two points of the sensing field. Every
// frame transmitted within capture range of one endpoint is re-injected at
// the other endpoint, bit-by-bit as it arrives (an analog physical-layer
// relay): the replayed frame starts Latency cycles after the original
// starts. A near-zero Latency is what lets the wormhole slip past the RTT
// detector — the paper's false-positive analysis hinges on replays whose
// added delay is "less than the transmission time of 4.5 bits". A
// store-and-forward wormhole would add two full frame times and be caught
// by the RTT filter; the ablation experiments exercise that case via a
// large Latency.
type Tunnel struct {
	A, B geo.Point
	// Latency is the tunnel's one-way relay delay in cycles.
	Latency sim.Time

	medium   *phy.Medium
	sched    *sim.Scheduler
	captureR float64
	// Forwarded counts frames relayed (both directions).
	Forwarded uint64
}

// Install attaches the tunnel to a medium. captureRange is how close to an
// endpoint a transmission must originate to be captured; the paper's
// tunnel "forwards every message received at one side", i.e. everything
// within radio range of the endpoint.
func Install(sched *sim.Scheduler, medium *phy.Medium, a, b geo.Point, latency sim.Time) *Tunnel {
	t := &Tunnel{
		A:        a,
		B:        b,
		medium:   medium,
		sched:    sched,
		captureR: medium.Range(),
		Latency:  latency,
	}
	medium.AddTap(t.tap)
	return t
}

func (t *Tunnel) tap(origin geo.Point, f phy.Frame, info phy.TxInfo) {
	// Never re-capture replayed traffic: a tunnel that forwards its own
	// (or another tunnel's) output loops forever.
	if f.Replayed {
		return
	}
	var exit geo.Point
	switch {
	case origin.Dist(t.A) <= t.captureR:
		exit = t.B
	case origin.Dist(t.B) <= t.captureR:
		exit = t.A
	default:
		return
	}
	replay := f
	replay.Replayed = true
	replay.Finalize = nil // capture what was actually on air
	data := make([]byte, len(f.Data))
	copy(data, f.Data)
	replay.Data = data
	t.Forwarded++
	// Bit-level relay: the replay starts Latency after the original
	// started (the tap runs at AirStart, so this never schedules into
	// the past).
	t.sched.At(info.AirStart+t.Latency, func() {
		t.medium.Inject(exit, replay)
	})
}

// Context is what a node's wormhole detector can examine about one
// received beacon exchange.
type Context struct {
	// Truth flags from the physical layer: Replayed is ground truth the
	// concrete detector machinery keys its error rate on; WormholeMark
	// is the attacker's signal manipulation.
	Replayed     bool
	WormholeMark bool
	// ClaimedDist is the distance between the receiver's location and
	// the location claimed in the packet, when the receiver knows its
	// own location (beacon nodes); negative when unknown (non-beacon
	// nodes before localization).
	ClaimedDist float64
	// Range is the radio communication range.
	Range float64
}

// Detector decides whether an exchange traversed a wormhole.
type Detector interface {
	Detect(ctx Context) bool
}

// Probabilistic is the paper's abstract detector: detection rate p_d on
// real wormhole replays, zero false positives on clean traffic, and
// guaranteed detection when the sender manipulates its signal to look
// wormholed.
type Probabilistic struct {
	// Rate is p_d in [0, 1].
	Rate float64
	src  *rng.Source
}

// NewProbabilistic builds the abstract detector with detection rate pd.
func NewProbabilistic(pd float64, src *rng.Source) *Probabilistic {
	if pd < 0 || pd > 1 {
		panic(fmt.Sprintf("wormhole: detection rate %v outside [0,1]", pd))
	}
	return &Probabilistic{Rate: pd, src: src}
}

// Detect implements Detector.
func (p *Probabilistic) Detect(ctx Context) bool {
	if ctx.WormholeMark {
		return true
	}
	if ctx.Replayed {
		return p.src.Bool(p.Rate)
	}
	return false
}

// GeoLeash is a geographic-leash detector: the receiver compares the
// claimed sender location against its own and flags a wormhole when the
// packet claims to have crossed more than a radio range plus slack. It is
// only usable by nodes that know their own location. In this simulator's
// geometry it detects benign-beacon wormhole replays deterministically
// (the claimed location is honest and far), i.e. it realizes p_d = 1; the
// Probabilistic detector exists to study p_d < 1.
type GeoLeash struct {
	// Slack absorbs location error in the leash comparison.
	Slack float64
}

// Detect implements Detector.
func (g GeoLeash) Detect(ctx Context) bool {
	if ctx.WormholeMark {
		return true
	}
	if ctx.ClaimedDist < 0 {
		return false // receiver location unknown; leash unusable
	}
	return ctx.ClaimedDist > ctx.Range+g.Slack
}

// Interface compliance.
var (
	_ Detector = (*Probabilistic)(nil)
	_ Detector = GeoLeash{}
)
