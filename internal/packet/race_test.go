//go:build race

package packet

// The race detector makes sync.Pool randomly drop Puts (by design, to
// flush out pool misuse), so allocation-count pins are meaningless under
// -race and are skipped.
func init() { raceEnabled = true }
