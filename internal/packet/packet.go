// Package packet defines the over-the-air message formats and their binary
// codec. Every packet is authenticated with a truncated HMAC tag under the
// pairwise key of the two communicating identities (paper §2: "every
// beacon packet is authenticated ... with the pairwise key shared between
// two communicating nodes"), so externally forged packets are rejected at
// decode time.
//
// Wire format (big endian):
//
//	byte 0      Type
//	bytes 1-2   Src NodeID
//	bytes 3-4   Dst NodeID
//	bytes 5-6   Seq
//	byte 7      payload length
//	...         payload (type-specific)
//	last 8      HMAC-SHA256 tag, truncated
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"beaconsec/internal/crypto"
	"beaconsec/internal/geo"
	"beaconsec/internal/ident"
)

// Type enumerates packet types. Values start at 1 so the zero value is
// invalid.
type Type uint8

// Packet types.
const (
	// TypeHello is a beacon node's presence announcement used for
	// neighbor discovery. Broadcast, unauthenticated payload (discovery
	// only; all location-bearing traffic is unicast and authenticated).
	TypeHello Type = iota + 1
	// TypeBeaconRequest asks a beacon node for a beacon signal.
	TypeBeaconRequest
	// TypeBeaconReply is the beacon signal: the beacon's declared
	// location plus the receiver-side turnaround time t3-t2 used by the
	// requester's RTT computation.
	TypeBeaconReply
	// TypeAlert reports a suspected malicious beacon node to the base
	// station.
	TypeAlert
	// TypeRevoke announces a revoked beacon node from the base station.
	TypeRevoke
	// TypeAlertUplink carries an alert from a detecting node to the
	// networked base station (the revnet service): Src is the
	// authenticated reporter, the payload names the accused target. The
	// server answers with a TypeRevocationStatus echoing the request Seq.
	TypeAlertUplink
	// TypeRevocationQuery asks the networked base station whether a node
	// has been revoked.
	TypeRevocationQuery
	// TypeRevocationStatus is the base station's reply to an alert uplink
	// or a revocation query: the target's revocation state plus, for
	// alerts, how the alert was handled.
	TypeRevocationStatus
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case TypeHello:
		return "hello"
	case TypeBeaconRequest:
		return "request"
	case TypeBeaconReply:
		return "reply"
	case TypeAlert:
		return "alert"
	case TypeRevoke:
		return "revoke"
	case TypeAlertUplink:
		return "alert-uplink"
	case TypeRevocationQuery:
		return "revocation-query"
	case TypeRevocationStatus:
		return "revocation-status"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Header is common to all packets.
type Header struct {
	Type Type
	Src  ident.NodeID
	Dst  ident.NodeID
	Seq  uint16
}

// Hello is the payload of TypeHello.
type Hello struct{}

// BeaconRequest is the payload of TypeBeaconRequest.
type BeaconRequest struct{}

// BeaconReply is the payload of TypeBeaconReply: the beacon packet.
type BeaconReply struct {
	// Loc is the location the beacon node declares for itself. A
	// compromised beacon may declare anything.
	Loc geo.Point
	// Turnaround is the receiver-side t3 - t2 in CPU cycles, reported so
	// the requester can compute RTT = (t4 - t1) - Turnaround (paper
	// Figure 3).
	Turnaround uint32
	// Echo is the Seq of the request being answered, binding the reply
	// to a specific outstanding request.
	Echo uint16
}

// Alert is the payload of TypeAlert: "every alert from a detecting node
// includes the ID of the detecting node and the ID of the target node".
// The detecting node is the authenticated Src of the packet; Target is the
// accused beacon node.
type Alert struct {
	Target ident.NodeID
}

// Revoke is the payload of TypeRevoke.
type Revoke struct {
	Target ident.NodeID
}

// AlertUplink is the payload of TypeAlertUplink. The reporter is the
// authenticated Src of the packet (signed under its base-station key), so
// a compromised node cannot uplink alerts in another node's name.
type AlertUplink struct {
	Target ident.NodeID
}

// RevocationQuery is the payload of TypeRevocationQuery.
type RevocationQuery struct {
	Target ident.NodeID
}

// RevocationStatus is the payload of TypeRevocationStatus. Outcome is the
// base station's revoke.Outcome for the alert being answered, or 0 (the
// invalid outcome) when the status answers a plain query.
type RevocationStatus struct {
	Target  ident.NodeID
	Outcome uint8
	Revoked bool
}

// Packet is a decoded packet.
type Packet struct {
	Header  Header
	Payload any // one of Hello, BeaconRequest, BeaconReply, Alert, Revoke, AlertUplink, RevocationQuery, RevocationStatus
}

// Codec errors.
var (
	ErrTruncated   = errors.New("packet: truncated")
	ErrBadType     = errors.New("packet: unknown type")
	ErrBadLength   = errors.New("packet: payload length mismatch")
	ErrBadTag      = errors.New("packet: authentication failed")
	ErrBadValue    = errors.New("packet: non-canonical field value")
	ErrUnencodable = errors.New("packet: payload type not encodable")
)

const (
	headerSize = 8
	// HeaderSize is the fixed encoded header length — the prefix a stream
	// transport must read before FrameLen can size the rest of the frame.
	HeaderSize = headerSize
	// MaxSize bounds encoded packets, mote-style.
	MaxSize = 64
)

// FrameLen returns the total encoded length (header + payload + tag) of
// the frame whose first HeaderSize bytes are in prefix. Stream transports
// (the revnet TCP protocol) use it to delimit packets: read HeaderSize
// bytes, then FrameLen-HeaderSize more. It validates the type and bounds
// the declared payload so a malformed length byte cannot request an
// oversized read.
func FrameLen(prefix []byte) (int, error) {
	if _, err := PeekHeader(prefix); err != nil {
		return 0, err
	}
	n := int(prefix[7])
	if headerSize+n+crypto.TagSize > MaxSize {
		return 0, fmt.Errorf("%w: payload length %d exceeds MaxSize", ErrBadLength, n)
	}
	return headerSize + n + crypto.TagSize, nil
}

func payloadSize(p any) (int, error) {
	switch p.(type) {
	case Hello, BeaconRequest:
		return 0, nil
	case BeaconReply:
		return 8 + 8 + 4 + 2, nil
	case Alert, Revoke, AlertUplink, RevocationQuery:
		return 2, nil
	case RevocationStatus:
		return 2 + 1 + 1, nil
	default:
		return 0, fmt.Errorf("%w: %T", ErrUnencodable, p)
	}
}

func typeOf(p any) (Type, error) {
	switch p.(type) {
	case Hello:
		return TypeHello, nil
	case BeaconRequest:
		return TypeBeaconRequest, nil
	case BeaconReply:
		return TypeBeaconReply, nil
	case Alert:
		return TypeAlert, nil
	case Revoke:
		return TypeRevoke, nil
	case AlertUplink:
		return TypeAlertUplink, nil
	case RevocationQuery:
		return TypeRevocationQuery, nil
	case RevocationStatus:
		return TypeRevocationStatus, nil
	default:
		return 0, fmt.Errorf("%w: %T", ErrUnencodable, p)
	}
}

// Encode serializes a packet and appends its authentication tag under key.
func Encode(src, dst ident.NodeID, seq uint16, payload any, key crypto.Key) ([]byte, error) {
	n, err := payloadSize(payload)
	if err != nil {
		return nil, err
	}
	return EncodeTo(make([]byte, 0, headerSize+n+crypto.TagSize), src, dst, seq, payload, key)
}

// EncodeTo is Encode in append style: it serializes the packet into
// dst's spare capacity (growing it only if needed) and returns the
// extended slice. Hot paths that own a reusable buffer — the MAC
// layer's send-time payload composition, benchmarks, batch encoders —
// use it to keep the sign→encode path allocation-free; dst may be nil.
func EncodeTo(dst []byte, src, dstID ident.NodeID, seq uint16, payload any, key crypto.Key) ([]byte, error) {
	typ, err := typeOf(payload)
	if err != nil {
		return nil, err
	}
	n, err := payloadSize(payload)
	if err != nil {
		return nil, err
	}
	start := len(dst)
	buf := dst
	buf = append(buf, byte(typ))
	buf = binary.BigEndian.AppendUint16(buf, uint16(src))
	buf = binary.BigEndian.AppendUint16(buf, uint16(dstID))
	buf = binary.BigEndian.AppendUint16(buf, seq)
	buf = append(buf, byte(n))

	switch p := payload.(type) {
	case Hello, BeaconRequest:
		// empty payload
	case BeaconReply:
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(p.Loc.X))
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(p.Loc.Y))
		buf = binary.BigEndian.AppendUint32(buf, p.Turnaround)
		buf = binary.BigEndian.AppendUint16(buf, p.Echo)
	case Alert:
		buf = binary.BigEndian.AppendUint16(buf, uint16(p.Target))
	case Revoke:
		buf = binary.BigEndian.AppendUint16(buf, uint16(p.Target))
	case AlertUplink:
		buf = binary.BigEndian.AppendUint16(buf, uint16(p.Target))
	case RevocationQuery:
		buf = binary.BigEndian.AppendUint16(buf, uint16(p.Target))
	case RevocationStatus:
		buf = binary.BigEndian.AppendUint16(buf, uint16(p.Target))
		buf = append(buf, p.Outcome)
		var revoked byte
		if p.Revoked {
			revoked = 1
		}
		buf = append(buf, revoked)
	}

	tag := crypto.Sign(key, buf[start:])
	buf = append(buf, tag[:]...)
	return buf, nil
}

// PeekHeader decodes only the header, without authenticating. Radios use
// it to decide whether a frame is addressed to them before spending a MAC
// verification.
func PeekHeader(data []byte) (Header, error) {
	if len(data) < headerSize {
		return Header{}, ErrTruncated
	}
	h := Header{
		Type: Type(data[0]),
		Src:  ident.NodeID(binary.BigEndian.Uint16(data[1:3])),
		Dst:  ident.NodeID(binary.BigEndian.Uint16(data[3:5])),
		Seq:  binary.BigEndian.Uint16(data[5:7]),
	}
	if h.Type < TypeHello || h.Type > TypeRevocationStatus {
		return Header{}, fmt.Errorf("%w: %d", ErrBadType, data[0])
	}
	return h, nil
}

// Decode parses and authenticates a packet under key.
func Decode(data []byte, key crypto.Key) (Packet, error) {
	h, err := PeekHeader(data)
	if err != nil {
		return Packet{}, err
	}
	if len(data) < headerSize+crypto.TagSize {
		return Packet{}, ErrTruncated
	}
	body := data[:len(data)-crypto.TagSize]
	var tag crypto.Tag
	copy(tag[:], data[len(data)-crypto.TagSize:])
	if !crypto.Verify(key, body, tag) {
		return Packet{}, ErrBadTag
	}
	n := int(data[7])
	payload := body[headerSize:]
	if len(payload) != n {
		return Packet{}, fmt.Errorf("%w: header says %d, have %d", ErrBadLength, n, len(payload))
	}

	pkt := Packet{Header: h}
	switch h.Type {
	case TypeHello:
		if n != 0 {
			return Packet{}, fmt.Errorf("%w: hello with payload", ErrBadLength)
		}
		pkt.Payload = Hello{}
	case TypeBeaconRequest:
		if n != 0 {
			return Packet{}, fmt.Errorf("%w: request with payload", ErrBadLength)
		}
		pkt.Payload = BeaconRequest{}
	case TypeBeaconReply:
		if n != 22 {
			return Packet{}, fmt.Errorf("%w: reply payload %d", ErrBadLength, n)
		}
		pkt.Payload = BeaconReply{
			Loc: geo.Point{
				X: math.Float64frombits(binary.BigEndian.Uint64(payload[0:8])),
				Y: math.Float64frombits(binary.BigEndian.Uint64(payload[8:16])),
			},
			Turnaround: binary.BigEndian.Uint32(payload[16:20]),
			Echo:       binary.BigEndian.Uint16(payload[20:22]),
		}
	case TypeAlert:
		if n != 2 {
			return Packet{}, fmt.Errorf("%w: alert payload %d", ErrBadLength, n)
		}
		pkt.Payload = Alert{Target: ident.NodeID(binary.BigEndian.Uint16(payload))}
	case TypeRevoke:
		if n != 2 {
			return Packet{}, fmt.Errorf("%w: revoke payload %d", ErrBadLength, n)
		}
		pkt.Payload = Revoke{Target: ident.NodeID(binary.BigEndian.Uint16(payload))}
	case TypeAlertUplink:
		if n != 2 {
			return Packet{}, fmt.Errorf("%w: alert-uplink payload %d", ErrBadLength, n)
		}
		pkt.Payload = AlertUplink{Target: ident.NodeID(binary.BigEndian.Uint16(payload))}
	case TypeRevocationQuery:
		if n != 2 {
			return Packet{}, fmt.Errorf("%w: revocation-query payload %d", ErrBadLength, n)
		}
		pkt.Payload = RevocationQuery{Target: ident.NodeID(binary.BigEndian.Uint16(payload))}
	case TypeRevocationStatus:
		if n != 4 {
			return Packet{}, fmt.Errorf("%w: revocation-status payload %d", ErrBadLength, n)
		}
		if payload[3] > 1 {
			// Revoked is a bool on the wire: only 0/1 keep Decode∘Encode
			// the identity (one canonical wire form per packet).
			return Packet{}, fmt.Errorf("%w: revoked byte %d", ErrBadValue, payload[3])
		}
		pkt.Payload = RevocationStatus{
			Target:  ident.NodeID(binary.BigEndian.Uint16(payload[0:2])),
			Outcome: payload[2],
			Revoked: payload[3] == 1,
		}
	}
	return pkt, nil
}
