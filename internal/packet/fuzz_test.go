package packet

import (
	"testing"
	"testing/quick"

	"beaconsec/internal/crypto"
	"beaconsec/internal/rng"
)

// TestDecodeNeverPanicsOnRandomBytes feeds the decoder arbitrary byte
// strings: it must reject them with an error, never panic, never accept.
// Accepting would require forging an HMAC tag, which random bytes do with
// probability 2^-64 per attempt.
func TestDecodeNeverPanicsOnRandomBytes(t *testing.T) {
	var k crypto.Key
	k[9] = 0x77
	f := func(data []byte) bool {
		pkt, err := Decode(data, k)
		if err == nil {
			t.Logf("random bytes decoded as %+v", pkt)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestDecodeNeverPanicsOnMutatedPackets mutates valid packets at random
// positions and checks the decoder's composure.
func TestDecodeNeverPanicsOnMutatedPackets(t *testing.T) {
	var k crypto.Key
	k[1] = 0x31
	src := rng.New(41)
	base, err := Encode(3, 7, 11, BeaconReply{Turnaround: 5, Echo: 2}, k)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 5000; trial++ {
		mut := append([]byte(nil), base...)
		// 1-4 random byte mutations.
		for n := 0; n <= src.Intn(4); n++ {
			mut[src.Intn(len(mut))] = byte(src.Uint64())
		}
		// Random truncation or extension occasionally.
		switch src.Intn(4) {
		case 0:
			mut = mut[:src.Intn(len(mut)+1)]
		case 1:
			mut = append(mut, byte(src.Uint64()))
		}
		if pkt, err := Decode(mut, k); err == nil {
			// Only acceptable if the mutation left the bytes identical.
			if string(mut) != string(base) {
				t.Fatalf("trial %d: mutated packet accepted: %+v", trial, pkt)
			}
		}
	}
}

// TestPeekHeaderNeverPanics exercises the unauthenticated fast path.
func TestPeekHeaderNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = PeekHeader(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
