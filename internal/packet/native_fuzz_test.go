package packet

// Native Go fuzz targets complementing the testing/quick checks in
// fuzz_test.go. The corpus seeds every wire frame the protocol
// exchanges — hello, detector request/reply, alert, revocation — plus
// truncations and flips, so coverage-guided mutation starts from the
// decoder's real input space rather than random bytes.
//
// Run with: go test -fuzz FuzzDecode ./internal/packet/

import (
	"bytes"
	"testing"

	"beaconsec/internal/crypto"
	"beaconsec/internal/geo"
)

// fuzzKey is the fixed key fuzz inputs are decoded under. The fuzzer
// cannot forge tags for it, so any accepted input must be a (possibly
// seed-derived) correctly signed frame.
func fuzzKey() crypto.Key {
	var k crypto.Key
	for i := range k {
		k[i] = byte(i*7 + 3)
	}
	return k
}

// seedFrames encodes one valid frame of every packet type under key.
func seedFrames(tb testing.TB, key crypto.Key) [][]byte {
	tb.Helper()
	payloads := []any{
		Hello{},
		BeaconRequest{},
		BeaconReply{Loc: geo.Point{X: 512.25, Y: 87.5}, Turnaround: 7_372, Echo: 3},
		Alert{Target: 1009},
		Revoke{Target: 42},
		AlertUplink{Target: 77},
		RevocationQuery{Target: 909},
		RevocationStatus{Target: 77, Outcome: 2, Revoked: true},
		RevocationStatus{Target: 12, Outcome: 0, Revoked: false},
	}
	frames := make([][]byte, 0, len(payloads))
	for i, p := range payloads {
		b, err := Encode(5, 1001, uint16(i), p, key)
		if err != nil {
			tb.Fatalf("seed encode %T: %v", p, err)
		}
		frames = append(frames, b)
	}
	return frames
}

// FuzzDecode checks the decoder's core guarantees on arbitrary input:
// it never panics, and anything it accepts round-trips byte-identically
// through Encode (so there is exactly one wire form per packet).
func FuzzDecode(f *testing.F) {
	key := fuzzKey()
	for _, frame := range seedFrames(f, key) {
		f.Add(frame)
		f.Add(frame[:len(frame)-crypto.TagSize]) // tagless
		f.Add(frame[:headerSize-1])              // truncated header
		flipped := append([]byte(nil), frame...)
		flipped[0] ^= 0x80 // invalid type, same tag length
		f.Add(flipped)
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		pkt, err := Decode(data, key)
		if err != nil {
			return
		}
		re, err := Encode(pkt.Header.Src, pkt.Header.Dst, pkt.Header.Seq, pkt.Payload, key)
		if err != nil {
			t.Fatalf("accepted packet does not re-encode: %+v: %v", pkt, err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted wire form is not canonical:\n in: %x\nout: %x", data, re)
		}
	})
}

// FuzzPeekHeader checks the unauthenticated fast path never panics and
// stays consistent with full decode: a frame Decode accepts must yield
// the same header from PeekHeader.
func FuzzPeekHeader(f *testing.F) {
	key := fuzzKey()
	for _, frame := range seedFrames(f, key) {
		f.Add(frame)
		for cut := 0; cut < headerSize; cut += 3 {
			f.Add(frame[:cut])
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := PeekHeader(data)
		pkt, derr := Decode(data, key)
		if derr == nil {
			if err != nil {
				t.Fatalf("Decode accepted what PeekHeader rejected: %v", err)
			}
			if h != pkt.Header {
				t.Fatalf("header mismatch: peek %+v decode %+v", h, pkt.Header)
			}
		}
	})
}
