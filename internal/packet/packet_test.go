package packet

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"beaconsec/internal/crypto"
	"beaconsec/internal/geo"
	"beaconsec/internal/ident"
)

func testKey() crypto.Key {
	var k crypto.Key
	k[0] = 0xAB
	return k
}

func roundTrip(t *testing.T, payload any) Packet {
	t.Helper()
	k := testKey()
	data, err := Encode(3, 7, 42, payload, k)
	if err != nil {
		t.Fatalf("Encode(%T): %v", payload, err)
	}
	if len(data) > MaxSize {
		t.Fatalf("encoded %T is %d bytes, exceeds MaxSize %d", payload, len(data), MaxSize)
	}
	pkt, err := Decode(data, k)
	if err != nil {
		t.Fatalf("Decode(%T): %v", payload, err)
	}
	if pkt.Header.Src != 3 || pkt.Header.Dst != 7 || pkt.Header.Seq != 42 {
		t.Fatalf("header mangled: %+v", pkt.Header)
	}
	return pkt
}

func TestRoundTripAllTypes(t *testing.T) {
	tests := []struct {
		name    string
		payload any
	}{
		{"hello", Hello{}},
		{"request", BeaconRequest{}},
		{"reply", BeaconReply{Loc: geo.Point{X: 123.5, Y: -7.25}, Turnaround: 9999, Echo: 17}},
		{"alert", Alert{Target: 55}},
		{"revoke", Revoke{Target: 56}},
		{"alert-uplink", AlertUplink{Target: 57}},
		{"revocation-query", RevocationQuery{Target: 58}},
		{"revocation-status", RevocationStatus{Target: 58, Outcome: 2, Revoked: true}},
		{"revocation-status-clear", RevocationStatus{Target: 59}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			pkt := roundTrip(t, tt.payload)
			if pkt.Payload != tt.payload {
				t.Errorf("payload = %#v, want %#v", pkt.Payload, tt.payload)
			}
		})
	}
}

func TestRoundTripReplyProperty(t *testing.T) {
	k := testKey()
	f := func(x, y float64, turn uint32, echo, seq uint16, src, dst uint16) bool {
		if math.IsNaN(x) || math.IsNaN(y) {
			return true // NaN != NaN; locations are never NaN in practice
		}
		in := BeaconReply{Loc: geo.Point{X: x, Y: y}, Turnaround: turn, Echo: echo}
		data, err := Encode(ident.NodeID(src), ident.NodeID(dst), seq, in, k)
		if err != nil {
			return false
		}
		pkt, err := Decode(data, k)
		if err != nil {
			return false
		}
		out, ok := pkt.Payload.(BeaconReply)
		return ok && out == in &&
			pkt.Header.Src == ident.NodeID(src) &&
			pkt.Header.Dst == ident.NodeID(dst) &&
			pkt.Header.Seq == seq
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeRejectsWrongKey(t *testing.T) {
	k := testKey()
	data, err := Encode(1, 2, 3, Alert{Target: 9}, k)
	if err != nil {
		t.Fatal(err)
	}
	var wrong crypto.Key
	wrong[0] = 0xCD
	if _, err := Decode(data, wrong); !errors.Is(err, ErrBadTag) {
		t.Errorf("Decode with wrong key = %v, want ErrBadTag", err)
	}
}

func TestDecodeRejectsTamperedBit(t *testing.T) {
	k := testKey()
	data, err := Encode(1, 2, 3, BeaconReply{Loc: geo.Point{X: 10, Y: 20}, Echo: 1}, k)
	if err != nil {
		t.Fatal(err)
	}
	// Flip every byte position in turn: any modification must fail
	// authentication (or header validation), never decode successfully.
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x01
		if _, err := Decode(mut, k); err == nil {
			t.Fatalf("bit flip at byte %d decoded successfully", i)
		}
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	k := testKey()
	data, err := Encode(1, 2, 3, BeaconReply{Loc: geo.Point{X: 1, Y: 2}}, k)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(data); n++ {
		if _, err := Decode(data[:n], k); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", n)
		}
	}
}

func TestDecodeRejectsUnknownType(t *testing.T) {
	k := testKey()
	data, err := Encode(1, 2, 3, Hello{}, k)
	if err != nil {
		t.Fatal(err)
	}
	data[0] = 200
	if _, err := Decode(data, k); !errors.Is(err, ErrBadType) {
		t.Errorf("unknown type error = %v, want ErrBadType", err)
	}
}

func TestEncodeRejectsUnknownPayload(t *testing.T) {
	if _, err := Encode(1, 2, 3, struct{ X int }{1}, testKey()); !errors.Is(err, ErrUnencodable) {
		t.Errorf("Encode(unknown) = %v, want ErrUnencodable", err)
	}
}

func TestPeekHeader(t *testing.T) {
	k := testKey()
	data, err := Encode(9, ident.Broadcast, 77, Hello{}, k)
	if err != nil {
		t.Fatal(err)
	}
	h, err := PeekHeader(data)
	if err != nil {
		t.Fatal(err)
	}
	if h.Type != TypeHello || h.Src != 9 || h.Dst != ident.Broadcast || h.Seq != 77 {
		t.Errorf("PeekHeader = %+v", h)
	}
	if _, err := PeekHeader(data[:4]); !errors.Is(err, ErrTruncated) {
		t.Errorf("short PeekHeader = %v, want ErrTruncated", err)
	}
}

func TestReplayedBytesDecodeUnderSameKey(t *testing.T) {
	// A verbatim replay of an authentic packet still authenticates — the
	// codec cannot stop replays; that is exactly why the paper needs the
	// RTT and wormhole filters above this layer.
	k := testKey()
	data, err := Encode(1, 2, 3, BeaconReply{Loc: geo.Point{X: 5, Y: 5}}, k)
	if err != nil {
		t.Fatal(err)
	}
	replay := append([]byte(nil), data...)
	if _, err := Decode(replay, k); err != nil {
		t.Errorf("replayed packet failed to decode: %v", err)
	}
}

func TestTypeString(t *testing.T) {
	for _, typ := range []Type{TypeHello, TypeBeaconRequest, TypeBeaconReply, TypeAlert, TypeRevoke, TypeAlertUplink, TypeRevocationQuery, TypeRevocationStatus} {
		if typ.String() == "" {
			t.Errorf("empty String for type %d", typ)
		}
	}
	if Type(99).String() != "type(99)" {
		t.Errorf("unknown type String = %q", Type(99).String())
	}
}

func BenchmarkEncodeReply(b *testing.B) {
	k := testKey()
	payload := BeaconReply{Loc: geo.Point{X: 100, Y: 200}, Turnaround: 13000, Echo: 3}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(1, 2, uint16(i), payload, k); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeReply(b *testing.B) {
	k := testKey()
	data, err := Encode(1, 2, 3, BeaconReply{Loc: geo.Point{X: 100, Y: 200}}, k)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(data, k); err != nil {
			b.Fatal(err)
		}
	}
}
