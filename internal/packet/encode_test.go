package packet

import (
	"bytes"
	"testing"

	"beaconsec/internal/geo"
	"beaconsec/internal/ident"
)

var allPayloads = []any{
	Hello{},
	BeaconRequest{},
	BeaconReply{Loc: geo.Point{X: 123.5, Y: -6.25}, Turnaround: 13000, Echo: 42},
	Alert{Target: 9},
	Revoke{Target: 17},
	AlertUplink{Target: 21},
	RevocationQuery{Target: 33},
	RevocationStatus{Target: 21, Outcome: 1, Revoked: true},
}

// TestEncodeToMatchesEncode pins that the append-style path produces
// byte-identical wire output for every payload type.
func TestEncodeToMatchesEncode(t *testing.T) {
	k := testKey()
	for _, payload := range allPayloads {
		want, err := Encode(3, 4, 77, payload, k)
		if err != nil {
			t.Fatalf("%T: Encode: %v", payload, err)
		}
		got, err := EncodeTo(nil, 3, 4, 77, payload, k)
		if err != nil {
			t.Fatalf("%T: EncodeTo: %v", payload, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%T: EncodeTo = %x, Encode = %x", payload, got, want)
		}
	}
}

// TestEncodeToAppends pins the append contract: existing bytes in dst
// are preserved and the packet (including its tag, computed over only
// the new bytes) lands after them.
func TestEncodeToAppends(t *testing.T) {
	k := testKey()
	prefix := []byte{0xde, 0xad}
	buf, err := EncodeTo(append([]byte(nil), prefix...), 1, 2, 3, Alert{Target: 5}, k)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf[:2], prefix) {
		t.Fatalf("prefix clobbered: %x", buf[:2])
	}
	solo, err := Encode(1, 2, 3, Alert{Target: 5}, k)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf[2:], solo) {
		t.Fatalf("appended packet %x differs from standalone %x", buf[2:], solo)
	}
	if _, err := Decode(buf[2:], k); err != nil {
		t.Fatalf("appended packet does not decode: %v", err)
	}
}

func TestEncodeToRejectsUnknownPayload(t *testing.T) {
	if _, err := EncodeTo(nil, 1, 2, 3, struct{}{}, testKey()); err == nil {
		t.Fatal("EncodeTo accepted an unencodable payload")
	}
}

// raceEnabled is set by race_test.go under -race builds.
var raceEnabled bool

// TestEncodeToReusedBufferZeroAlloc pins the hot-path contract: with a
// caller-owned buffer of sufficient capacity, encode+sign allocates
// nothing.
func TestEncodeToReusedBufferZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector drops sync.Pool puts; allocation pin not meaningful")
	}
	k := testKey()
	// Boxed once: passing a concrete BeaconReply at each call site would
	// charge the interface-conversion allocation to the caller.
	var payload any = BeaconReply{Loc: geo.Point{X: 1, Y: 2}, Turnaround: 3, Echo: 4}
	buf := make([]byte, 0, MaxSize)
	var err error
	buf, err = EncodeTo(buf[:0], 1, 2, 3, payload, k) // warm crypto state
	if err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(100, func() {
		buf, err = EncodeTo(buf[:0], ident.NodeID(1), ident.NodeID(2), 3, payload, k)
		if err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("EncodeTo into reused buffer allocates %.1f times per op, want 0", avg)
	}
}

func BenchmarkEncodeToReply(b *testing.B) {
	k := testKey()
	// Boxed once, as the mac layer's hot path holds it: a concrete
	// struct at the call site would re-box every iteration.
	var payload any = BeaconReply{Loc: geo.Point{X: 100, Y: 200}, Turnaround: 13000, Echo: 3}
	buf := make([]byte, 0, MaxSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = EncodeTo(buf[:0], 1, 2, uint16(i), payload, k)
		if err != nil {
			b.Fatal(err)
		}
	}
}
