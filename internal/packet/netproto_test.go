package packet

// Tests for the revnet wire types (TypeAlertUplink, TypeRevocationQuery,
// TypeRevocationStatus) and the stream-framing helper FrameLen. The
// round-trip/truncation/bad-tag structure mirrors packet_test.go; the
// extra canonicality cases pin the one-wire-form-per-packet invariant the
// fuzz targets rely on.

import (
	"bytes"
	"errors"
	"testing"

	"beaconsec/internal/crypto"
	"beaconsec/internal/ident"
)

var netPayloads = []struct {
	name    string
	payload any
	size    int // encoded payload bytes
}{
	{"alert-uplink", AlertUplink{Target: 1009}, 2},
	{"revocation-query", RevocationQuery{Target: 42}, 2},
	{"status-clear", RevocationStatus{Target: 7}, 4},
	{"status-revoked", RevocationStatus{Target: 7, Outcome: 2, Revoked: true}, 4},
	{"status-outcome-only", RevocationStatus{Target: 65535, Outcome: 255}, 4},
}

func TestNetTypesRoundTrip(t *testing.T) {
	k := testKey()
	for _, tt := range netPayloads {
		t.Run(tt.name, func(t *testing.T) {
			data, err := Encode(3, ident.BaseStation, 42, tt.payload, k)
			if err != nil {
				t.Fatalf("Encode: %v", err)
			}
			if want := headerSize + tt.size + crypto.TagSize; len(data) != want {
				t.Errorf("encoded length %d, want %d", len(data), want)
			}
			pkt, err := Decode(data, k)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if pkt.Payload != tt.payload {
				t.Errorf("payload = %#v, want %#v", pkt.Payload, tt.payload)
			}
			if pkt.Header.Src != 3 || pkt.Header.Dst != ident.BaseStation || pkt.Header.Seq != 42 {
				t.Errorf("header mangled: %+v", pkt.Header)
			}
		})
	}
}

func TestNetTypesRejectTruncation(t *testing.T) {
	k := testKey()
	for _, tt := range netPayloads {
		t.Run(tt.name, func(t *testing.T) {
			data, err := Encode(3, ident.BaseStation, 42, tt.payload, k)
			if err != nil {
				t.Fatal(err)
			}
			for n := 0; n < len(data); n++ {
				if _, err := Decode(data[:n], k); err == nil {
					t.Fatalf("truncation to %d bytes decoded successfully", n)
				}
			}
		})
	}
}

func TestNetTypesRejectBadTag(t *testing.T) {
	k := testKey()
	var wrong crypto.Key
	wrong[3] = 0x99
	for _, tt := range netPayloads {
		t.Run(tt.name, func(t *testing.T) {
			data, err := Encode(3, ident.BaseStation, 42, tt.payload, k)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := Decode(data, wrong); !errors.Is(err, ErrBadTag) {
				t.Errorf("wrong key = %v, want ErrBadTag", err)
			}
			flipped := append([]byte(nil), data...)
			flipped[len(flipped)-1] ^= 0x01
			if _, err := Decode(flipped, k); !errors.Is(err, ErrBadTag) {
				t.Errorf("flipped tag = %v, want ErrBadTag", err)
			}
		})
	}
}

// TestStatusRejectsNonCanonicalBool pins that a RevocationStatus whose
// revoked byte is neither 0 nor 1 is rejected even when correctly signed:
// accepting it would give one decoded packet two wire forms.
func TestStatusRejectsNonCanonicalBool(t *testing.T) {
	k := testKey()
	data, err := Encode(3, 4, 5, RevocationStatus{Target: 9, Outcome: 1, Revoked: true}, k)
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite the revoked byte to 2 and re-sign, simulating a buggy or
	// hostile peer that holds the key.
	body := append([]byte(nil), data[:len(data)-crypto.TagSize]...)
	body[headerSize+3] = 2
	tag := crypto.Sign(k, body)
	forged := append(body, tag[:]...)
	if _, err := Decode(forged, k); !errors.Is(err, ErrBadValue) {
		t.Errorf("revoked byte 2 = %v, want ErrBadValue", err)
	}
}

func TestFrameLen(t *testing.T) {
	k := testKey()
	for _, tt := range netPayloads {
		data, err := Encode(3, ident.BaseStation, 42, tt.payload, k)
		if err != nil {
			t.Fatal(err)
		}
		n, err := FrameLen(data[:HeaderSize])
		if err != nil {
			t.Fatalf("%s: FrameLen: %v", tt.name, err)
		}
		if n != len(data) {
			t.Errorf("%s: FrameLen = %d, want %d", tt.name, n, len(data))
		}
	}
}

func TestFrameLenRejects(t *testing.T) {
	k := testKey()
	data, err := Encode(3, 4, 5, AlertUplink{Target: 9}, k)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FrameLen(data[:HeaderSize-1]); !errors.Is(err, ErrTruncated) {
		t.Errorf("short prefix = %v, want ErrTruncated", err)
	}
	badType := append([]byte(nil), data...)
	badType[0] = 200
	if _, err := FrameLen(badType); !errors.Is(err, ErrBadType) {
		t.Errorf("bad type = %v, want ErrBadType", err)
	}
	oversize := append([]byte(nil), data...)
	oversize[7] = MaxSize // payload alone would exceed MaxSize
	if _, err := FrameLen(oversize); !errors.Is(err, ErrBadLength) {
		t.Errorf("oversize length = %v, want ErrBadLength", err)
	}
}

// TestNetTypesCanonicalReEncode pins the fuzz invariant for the new types
// directly: Decode then Encode reproduces the input bytes.
func TestNetTypesCanonicalReEncode(t *testing.T) {
	k := testKey()
	for _, tt := range netPayloads {
		data, err := Encode(9, 10, 11, tt.payload, k)
		if err != nil {
			t.Fatal(err)
		}
		pkt, err := Decode(data, k)
		if err != nil {
			t.Fatal(err)
		}
		re, err := Encode(pkt.Header.Src, pkt.Header.Dst, pkt.Header.Seq, pkt.Payload, k)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(re, data) {
			t.Errorf("%s: re-encode differs:\n in: %x\nout: %x", tt.name, data, re)
		}
	}
}
