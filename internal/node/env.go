// Package node implements the protocol state machines that run on each
// deployed mote: benign beacon nodes (which also act as detecting nodes
// under their detecting pseudonyms), malicious beacon nodes driven by the
// paper's (p_n, p_w, p_l) strategy, non-beacon sensor nodes that collect
// location references through the replay filters and localize, and a
// standalone replay attacker for false-positive experiments.
package node

import (
	"fmt"

	"beaconsec/internal/core"
	"beaconsec/internal/crypto"
	"beaconsec/internal/deploy"
	"beaconsec/internal/geo"
	"beaconsec/internal/ident"
	"beaconsec/internal/mac"
	"beaconsec/internal/packet"
	"beaconsec/internal/phy"
	"beaconsec/internal/revoke"
	"beaconsec/internal/rng"
	"beaconsec/internal/sim"
	"beaconsec/internal/wormhole"
)

// Env is the shared substrate one simulated network's nodes run on.
type Env struct {
	Sched  *sim.Scheduler
	Medium *phy.Medium
	Master *crypto.Master
	Dep    *deploy.Deployment
	// Core is the detector configuration (ε_max, RTT threshold, range).
	Core core.Config
	// Detector, when non-nil, replaces the paper pipeline Core encodes
	// with a pluggable implementation from core's detector registry;
	// nil keeps the paper pipeline (evaluated directly through Core, so
	// the default path is byte-identical to the pre-registry code).
	Detector core.Detector
	// Uplink carries alerts to the base station.
	Uplink *revoke.Uplink
	// Src is the environment's root random stream; nodes split
	// per-purpose child streams from it.
	Src *rng.Source
	// WormholeRate is p_d for the per-node probabilistic wormhole
	// detectors.
	WormholeRate float64
	// RequestRetries is how many times requesters re-send an unanswered
	// beacon request (loss recovery).
	RequestRetries int
	// RequestTimeout is how long a requester waits for a reply; zero
	// selects one second.
	RequestTimeout sim.Time
	// RobustLocalization makes sensors solve with the LMS-robust
	// multilaterator, trimming references inconsistent with the honest
	// majority.
	RobustLocalization bool
	// UseGeoLeash replaces the probabilistic wormhole detector with the
	// concrete geographic-leash implementation on nodes that know their
	// location (beacons); sensors keep the probabilistic detector (a
	// leash needs an own location).
	UseGeoLeash bool
}

// evalDetector routes a detecting node's completed exchange through the
// environment's detector.
func (e *Env) evalDetector(o core.Observation) core.Verdict {
	if e.Detector != nil {
		return e.Detector.EvaluateDetector(o)
	}
	return e.Core.EvaluateDetector(o)
}

// evalSensor routes a sensor's completed exchange through the
// environment's detector.
func (e *Env) evalSensor(o core.Observation) core.Verdict {
	if e.Detector != nil {
		return e.Detector.EvaluateSensor(o)
	}
	return e.Core.EvaluateSensor(o)
}

// detectorFor builds node i's wormhole detector.
func (e *Env) detectorFor(i int) wormhole.Detector {
	if e.UseGeoLeash && e.Dep.Nodes[i].Kind.IsBeacon() {
		return wormhole.GeoLeash{Slack: 2 * e.Core.MaxDistError}
	}
	return wormhole.NewProbabilistic(e.WormholeRate, e.Src.Split(fmt.Sprintf("whdet/%d", i)))
}

// endpointFor builds node i's link endpoint with the given identities.
func (e *Env) endpointFor(i int, ids ...ident.NodeID) *mac.Endpoint {
	store := crypto.NewStore(e.Master, ids...)
	radio := e.Medium.NewRadio(e.Dep.Nodes[i].Loc)
	return mac.NewEndpoint(e.Sched, radio, store, e.Src.Split(fmt.Sprintf("mac/%d", i)))
}

// timeout returns the effective request timeout.
func (e *Env) timeout() sim.Time {
	if e.RequestTimeout == 0 {
		return sim.Seconds(1)
	}
	return e.RequestTimeout
}

// probe tracks one outstanding beacon request.
type probe struct {
	target ident.NodeID
	local  ident.NodeID // identity the request was sent under
	t1     sim.Time
	tries  int
	timer  sim.Handle
}

// replyInfo is the decoded beacon-signal content a requester evaluates.
type replyInfo struct {
	claimed    geo.Point
	turnaround uint32
}

// ProbeStats counts one requester's beacon request/reply exchanges.
type ProbeStats struct {
	// Probes is the number of request transmissions started, including
	// retries.
	Probes uint64 `json:"probes"`
	// Retries is the number of re-sends after a loss or CSMA drop.
	Retries uint64 `json:"retries"`
	// Replies is the number of matched beacon replies (completed
	// exchanges).
	Replies uint64 `json:"replies"`
	// Timeouts is the number of probes abandoned after all retries.
	Timeouts uint64 `json:"timeouts"`
}

// Merge adds another requester's counters field-wise.
func (s *ProbeStats) Merge(o ProbeStats) {
	s.Probes += o.Probes
	s.Retries += o.Retries
	s.Replies += o.Replies
	s.Timeouts += o.Timeouts
}

// requester is the shared request/reply machinery used by both detecting
// beacon nodes and sensors: it sends beacon requests, matches replies by
// echo sequence number and local identity, retries on loss, and captures
// the t1 timestamp the RTT computation needs.
type requester struct {
	env     *Env
	ep      *mac.Endpoint
	pending map[uint16]*probe
	// onObservation is invoked once per completed exchange.
	onObservation func(p *probe, d mac.Delivery, reply replyInfo)
	// Timeouts counts requests that were never answered after retries.
	Timeouts int
	stats    ProbeStats
}

func newRequester(env *Env, ep *mac.Endpoint) *requester {
	return &requester{env: env, ep: ep, pending: make(map[uint16]*probe)}
}

// request sends a beacon request to target under the given local identity.
func (r *requester) request(local, target ident.NodeID) {
	r.start(&probe{target: target, local: local})
}

func (r *requester) start(p *probe) {
	p.tries++
	r.stats.Probes++
	if p.tries > 1 {
		r.stats.Retries++
	}
	seq := r.ep.NextSeq()
	r.pending[seq] = p
	p.timer = r.env.Sched.After(r.env.timeout(), func() {
		if r.pending[seq] == p {
			r.retryOrFail(p, seq)
		}
	})
	r.ep.SendSeq(p.target, seq, packet.BeaconRequest{}, mac.SendOptions{
		Identity: p.local,
		OnSent: func(info phy.TxInfo, ok bool) {
			if !ok {
				if r.pending[seq] == p {
					r.retryOrFail(p, seq)
				}
				return
			}
			p.t1 = info.FirstByteSPDR
		},
	})
}

func (r *requester) retryOrFail(p *probe, seq uint16) {
	delete(r.pending, seq)
	p.timer.Cancel()
	if p.tries <= r.env.RequestRetries {
		r.start(p)
		return
	}
	r.Timeouts++
	r.stats.Timeouts++
}

// handleReply matches a beacon reply to its outstanding probe; it returns
// false for unsolicited or duplicate replies.
func (r *requester) handleReply(d mac.Delivery, reply packet.BeaconReply) bool {
	p, ok := r.pending[reply.Echo]
	if !ok || p.local != d.Local || p.target != d.Pkt.Header.Src {
		return false
	}
	delete(r.pending, reply.Echo)
	p.timer.Cancel()
	r.stats.Replies++
	if r.onObservation != nil {
		r.onObservation(p, d, replyInfo{claimed: reply.Loc, turnaround: reply.Turnaround})
	}
	return true
}

// rtt computes RTT = (t4 - t1) - (t3 - t2) in cycles from the probe's
// request timestamp, the reply delivery, and the reported turnaround.
func rtt(p *probe, d mac.Delivery, turnaround uint32) float64 {
	return float64(d.FirstByteSPDR) - float64(p.t1) - float64(turnaround)
}

// observationFrom assembles the core.Observation for one exchange,
// running the node's wormhole detector.
func observationFrom(env *Env, det wormhole.Detector, ownLoc geo.Point, ownKnown bool,
	p *probe, d mac.Delivery, reply replyInfo) core.Observation {
	o := core.Observation{
		OwnLoc:       ownLoc,
		OwnKnown:     ownKnown,
		Claimed:      reply.claimed,
		MeasuredDist: d.MeasuredDist,
		RTT:          rtt(p, d, reply.turnaround),
	}
	ctx := env.Core.WormholeContext(o, d.Truth.Replayed, d.Truth.WormholeMark)
	o.WormholeDetected = det.Detect(ctx)
	return o
}
