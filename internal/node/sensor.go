package node

import (
	"fmt"

	"beaconsec/internal/core"
	"beaconsec/internal/deploy"
	"beaconsec/internal/geo"
	"beaconsec/internal/ident"
	"beaconsec/internal/localization"
	"beaconsec/internal/mac"
	"beaconsec/internal/packet"
	"beaconsec/internal/sim"
	"beaconsec/internal/wormhole"
)

// Reference is a location reference a sensor accepted, tagged with its
// source for revocation and ground-truth accounting.
type Reference struct {
	Source ident.NodeID
	Ref    localization.Reference
}

// Sensor is a non-beacon node: it discovers beacon neighbors, requests
// beacon signals, filters replays (it cannot run the distance-consistency
// check — it does not know its own location yet), honors revocations, and
// finally estimates its position.
type Sensor struct {
	env  *Env
	self deploy.Node
	ep   *mac.Endpoint
	det  wormhole.Detector
	req  *requester

	neighbors map[ident.NodeID]bool
	revoked   map[ident.NodeID]bool

	// References are the accepted location references.
	References []Reference
	// Verdicts counts filter outcomes.
	Verdicts map[core.Verdict]int
	// AcceptedFrom records which beacon IDs contributed accepted
	// references.
	AcceptedFrom map[ident.NodeID]bool
}

// NewSensor builds the sensor at deployment index i.
func NewSensor(env *Env, i int) *Sensor {
	n := env.Dep.Nodes[i]
	if n.Kind != deploy.KindSensor {
		panic(fmt.Sprintf("node: index %d is %v, not a sensor", i, n.Kind))
	}
	s := &Sensor{
		env:          env,
		self:         n,
		ep:           env.endpointFor(i, n.ID),
		det:          env.detectorFor(i),
		neighbors:    make(map[ident.NodeID]bool),
		revoked:      make(map[ident.NodeID]bool),
		Verdicts:     make(map[core.Verdict]int),
		AcceptedFrom: make(map[ident.NodeID]bool),
	}
	s.req = newRequester(env, s.ep)
	s.req.onObservation = s.observe
	s.ep.SetHandler(s.handle)
	return s
}

// ID returns the sensor's identity.
func (s *Sensor) ID() ident.NodeID { return s.self.ID }

// TrueLoc returns the ground-truth location (for experiment metrics; the
// protocol code never reads it).
func (s *Sensor) TrueLoc() geo.Point { return s.self.Loc }

// NeighborBeacons returns the discovered beacon neighbors in ID order.
func (s *Sensor) NeighborBeacons() []ident.NodeID {
	out := make([]ident.NodeID, 0, len(s.neighbors))
	for id := range s.neighbors {
		out = append(out, id)
	}
	sortIDs(out)
	return out
}

// Timeouts returns the count of unanswered requests.
func (s *Sensor) Timeouts() int { return s.req.Timeouts }

// ProbeStats returns the node's request/reply exchange counters.
func (s *Sensor) ProbeStats() ProbeStats { return s.req.stats }

// LinkStats returns the node's link-layer counters.
func (s *Sensor) LinkStats() mac.Stats { return s.ep.Stats() }

// StartRequests schedules one beacon request per discovered neighbor,
// spread uniformly over [from, from+window).
func (s *Sensor) StartRequests(from, window sim.Time) {
	s.env.Sched.At(from, func() {
		src := s.env.Src.Split(fmt.Sprintf("reqsched/%d", s.self.ID))
		for _, target := range s.NeighborBeacons() {
			target := target
			offset := sim.Time(src.Uint64() % uint64(window))
			s.env.Sched.After(offset, func() {
				if s.revoked[target] {
					return
				}
				s.req.request(s.self.ID, target)
			})
		}
	})
}

// MarkRevoked applies a base-station revocation: drop existing references
// from the node and never use it again.
func (s *Sensor) MarkRevoked(id ident.NodeID) {
	if s.revoked[id] {
		return
	}
	s.revoked[id] = true
	kept := s.References[:0]
	for _, r := range s.References {
		if r.Source != id {
			kept = append(kept, r)
		}
	}
	s.References = kept
	delete(s.AcceptedFrom, id)
}

// Revoked reports whether the sensor has seen a revocation for id.
func (s *Sensor) Revoked(id ident.NodeID) bool { return s.revoked[id] }

func (s *Sensor) handle(d mac.Delivery) {
	switch p := d.Pkt.Payload.(type) {
	case packet.Hello:
		if s.env.Dep.Space.IsBeaconID(d.Pkt.Header.Src) {
			s.neighbors[d.Pkt.Header.Src] = true
		}
	case packet.BeaconReply:
		s.req.handleReply(d, p)
	case packet.Revoke:
		if d.Pkt.Header.Src == ident.BaseStation {
			s.MarkRevoked(p.Target)
		}
	}
}

func (s *Sensor) observe(p *probe, d mac.Delivery, reply replyInfo) {
	if s.revoked[p.target] {
		return
	}
	o := observationFrom(s.env, s.det, geo.Point{}, false, p, d, reply)
	v := s.env.evalSensor(o)
	s.Verdicts[v]++
	if !v.Accepted() {
		return
	}
	s.References = append(s.References, Reference{
		Source: p.target,
		Ref:    localization.Reference{Loc: reply.claimed, Dist: d.MeasuredDist},
	})
	s.AcceptedFrom[p.target] = true
}

// Localize estimates the sensor's position from its accepted,
// non-revoked references. With Env.RobustLocalization the LMS-robust
// solver additionally trims references inconsistent with the honest
// majority (defense in depth against the wormhole references that slip
// past the detector with probability 1-p_d). The estimate is clamped to
// the sensing field: a node knows it was deployed inside the field, so
// any solution outside it is truncated to the boundary.
func (s *Sensor) Localize() (geo.Point, error) {
	refs := make([]localization.Reference, 0, len(s.References))
	for _, r := range s.References {
		refs = append(refs, r.Ref)
	}
	var est geo.Point
	var err error
	if s.env.RobustLocalization {
		est, _, err = localization.RobustMultilaterate(refs, 3*s.env.Core.MaxDistError)
	} else {
		est, err = localization.Multilaterate(refs)
	}
	if err != nil {
		return geo.Point{}, err
	}
	return s.env.Dep.Cfg.Field.Clamp(est), nil
}

// LocalizationError returns the distance between the estimate and the
// true location; the second return is false when localization failed.
func (s *Sensor) LocalizationError() (float64, bool) {
	est, err := s.Localize()
	if err != nil {
		return 0, false
	}
	return est.Dist(s.self.Loc), true
}
