package node

import (
	"fmt"

	"beaconsec/internal/core"
	"beaconsec/internal/deploy"
	"beaconsec/internal/geo"
	"beaconsec/internal/ident"
	"beaconsec/internal/mac"
	"beaconsec/internal/packet"
	"beaconsec/internal/revoke"
	"beaconsec/internal/sim"
	"beaconsec/internal/wormhole"
)

// Beacon is a benign beacon node: it announces itself, serves beacon
// signals (its true location plus the RTT turnaround), and acts as a
// detecting node by probing neighbor beacons under its m detecting
// pseudonyms, reporting confirmed malicious targets to the base station.
type Beacon struct {
	env  *Env
	self deploy.Node
	ep   *mac.Endpoint
	det  wormhole.Detector
	req  *requester

	detectingIDs []ident.NodeID
	neighbors    map[ident.NodeID]bool // beacon IDs heard in hellos
	alerted      map[ident.NodeID]bool // targets already reported

	// Local, when non-nil, is this node's own revocation ledger for the
	// distributed (base-station-free) variant: alerts are gossiped to
	// beacon neighbors and every beacon applies the §3 counting
	// algorithm locally. The paper lists this as future work; the
	// experiment suite quantifies what the missing global view costs.
	Local *revoke.BaseStation
	// GossipAlerts sends each alert to every beacon neighbor
	// (pairwise-authenticated) in addition to any uplink.
	GossipAlerts bool
	// UplinkAlerts sends alerts to the base station (the paper's §3
	// design); disabled in the purely distributed variant.
	UplinkAlerts bool

	// Verdicts counts detector-pipeline outcomes by verdict.
	Verdicts map[core.Verdict]int
	// AlertsSent lists the targets this node reported.
	AlertsSent []ident.NodeID
	// RepliesServed counts beacon signals sent.
	RepliesServed int
}

// NewBeacon builds the benign beacon at deployment index i and wires it
// to the environment.
func NewBeacon(env *Env, i int) *Beacon {
	n := env.Dep.Nodes[i]
	if n.Kind != deploy.KindBeacon {
		panic(fmt.Sprintf("node: index %d is %v, not a benign beacon", i, n.Kind))
	}
	ids := []ident.NodeID{n.ID}
	for j := 0; j < env.Dep.Cfg.DetectingIDs; j++ {
		ids = append(ids, env.Dep.Space.DetectingID(i, j))
	}
	b := &Beacon{
		env:          env,
		self:         n,
		ep:           env.endpointFor(i, ids...),
		det:          env.detectorFor(i),
		detectingIDs: ids[1:],
		neighbors:    make(map[ident.NodeID]bool),
		alerted:      make(map[ident.NodeID]bool),
		UplinkAlerts: true,
		Verdicts:     make(map[core.Verdict]int),
	}
	b.req = newRequester(env, b.ep)
	b.req.onObservation = b.observe
	b.ep.SetHandler(b.handle)
	return b
}

// ID returns the beacon's primary identity.
func (b *Beacon) ID() ident.NodeID { return b.self.ID }

// TrueLoc returns the beacon's (known) location.
func (b *Beacon) TrueLoc() geo.Point { return b.self.Loc }

// NeighborBeacons returns the sorted-by-ID list of beacon neighbors
// discovered so far.
func (b *Beacon) NeighborBeacons() []ident.NodeID {
	out := make([]ident.NodeID, 0, len(b.neighbors))
	for id := range b.neighbors {
		out = append(out, id)
	}
	sortIDs(out)
	return out
}

// Timeouts returns the count of unanswered probes.
func (b *Beacon) Timeouts() int { return b.req.Timeouts }

// ProbeStats returns the node's request/reply exchange counters.
func (b *Beacon) ProbeStats() ProbeStats { return b.req.stats }

// LinkStats returns the node's link-layer counters.
func (b *Beacon) LinkStats() mac.Stats { return b.ep.Stats() }

// AnnounceAt schedules the beacon's hello broadcast.
func (b *Beacon) AnnounceAt(at sim.Time) {
	b.env.Sched.At(at, func() {
		b.ep.Send(ident.Broadcast, packet.Hello{}, mac.SendOptions{})
	})
}

// StartDetection schedules one probe per (detecting ID, neighbor beacon)
// pair, spread uniformly over [from, from+window). The per-pseudonym
// probes are what give the node its m independent detection chances
// (paper §2.3).
func (b *Beacon) StartDetection(from sim.Time, window sim.Time) {
	b.env.Sched.At(from, func() {
		src := b.env.Src.Split(fmt.Sprintf("detsched/%d", b.self.ID))
		for _, target := range b.NeighborBeacons() {
			for _, detID := range b.detectingIDs {
				target, detID := target, detID
				offset := sim.Time(src.Uint64() % uint64(window))
				b.env.Sched.After(offset, func() {
					b.req.request(detID, target)
				})
			}
		}
	})
}

func (b *Beacon) handle(d mac.Delivery) {
	switch p := d.Pkt.Payload.(type) {
	case packet.Hello:
		if b.env.Dep.Space.IsBeaconID(d.Pkt.Header.Src) && d.Pkt.Header.Src != b.self.ID {
			b.neighbors[d.Pkt.Header.Src] = true
		}
	case packet.BeaconRequest:
		// Serve a beacon signal under the primary identity only; the
		// detecting pseudonyms are requesters, not beacons.
		if d.Local != b.self.ID {
			return
		}
		b.serveReply(d)
	case packet.BeaconReply:
		b.req.handleReply(d, p)
	case packet.Alert:
		// Distributed variant: a gossiped alert from a peer beacon
		// feeds the local ledger under the same §3 counting rules.
		if b.Local != nil && d.Local == b.self.ID {
			b.Local.HandleAlert(d.Pkt.Header.Src, p.Target)
		}
	}
}

// serveReply answers a beacon request with this node's true location and
// the honestly measured turnaround (t3 - t2), composed at transmit time.
func (b *Beacon) serveReply(d mac.Delivery) {
	t2 := d.FirstByteSPDR
	b.RepliesServed++
	b.ep.Send(d.Pkt.Header.Src, packet.BeaconReply{
		Loc:  b.self.Loc,
		Echo: d.Pkt.Header.Seq,
	}, mac.SendOptions{
		Compose: func(t3 sim.Time) any {
			return packet.BeaconReply{
				Loc:        b.self.Loc,
				Turnaround: uint32(t3 - t2),
				Echo:       d.Pkt.Header.Seq,
			}
		},
	})
}

// observe runs the detector pipeline on a completed probe.
func (b *Beacon) observe(p *probe, d mac.Delivery, reply replyInfo) {
	o := observationFrom(b.env, b.det, b.self.Loc, true, p, d, reply)
	v := b.env.evalDetector(o)
	b.Verdicts[v]++
	// One determination per target: further malicious verdicts from the
	// node's other detecting pseudonyms add no information.
	if v.Alertable() && !b.alerted[p.target] {
		b.alerted[p.target] = true
		b.AlertsSent = append(b.AlertsSent, p.target)
		if b.UplinkAlerts {
			b.env.Uplink.SendAlert(b.self.ID, p.target, nil)
		}
		b.broadcastAlert(p.target)
	}
}

// broadcastAlert gossips an alert to every beacon neighbor
// (pairwise-authenticated unicasts) and feeds the node's own ledger.
func (b *Beacon) broadcastAlert(target ident.NodeID) {
	if b.Local != nil {
		b.Local.HandleAlert(b.self.ID, target)
	}
	if !b.GossipAlerts {
		return
	}
	for _, peer := range b.NeighborBeacons() {
		if peer == target {
			continue
		}
		b.ep.Send(peer, packet.Alert{Target: target}, mac.SendOptions{})
	}
}

func sortIDs(ids []ident.NodeID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j-1] > ids[j]; j-- {
			ids[j-1], ids[j] = ids[j], ids[j-1]
		}
	}
}
