package node

import (
	"fmt"

	"beaconsec/internal/analysis"
	"beaconsec/internal/deploy"
	"beaconsec/internal/geo"
	"beaconsec/internal/ident"
	"beaconsec/internal/mac"
	"beaconsec/internal/packet"
	"beaconsec/internal/phy"
	"beaconsec/internal/sim"
)

// Action is what a malicious beacon does for one requester. Values start
// at one so the zero value is invalid.
type Action int

// Actions (paper §2.3's strategy outcomes).
const (
	// ActNormal: behave like a benign beacon for this requester.
	ActNormal Action = iota + 1
	// ActFakeWormhole: manipulate the signal so it is discarded as a
	// wormhole replay (far claimed location + detector-convincing
	// signal).
	ActFakeWormhole
	// ActFakeReplay: manipulate timing so the signal is discarded as a
	// local replay (under-reported turnaround inflates the computed
	// RTT).
	ActFakeReplay
	// ActAttack: send the misleading signal — an enlarged distance that
	// corrupts localization and is exactly what the consistency check
	// catches.
	ActAttack
)

// String implements fmt.Stringer.
func (a Action) String() string {
	switch a {
	case ActNormal:
		return "normal"
	case ActFakeWormhole:
		return "fake-wormhole"
	case ActFakeReplay:
		return "fake-replay"
	case ActAttack:
		return "attack"
	default:
		return fmt.Sprintf("action(%d)", int(a))
	}
}

// MaliciousConfig tunes the attacker.
type MaliciousConfig struct {
	// Strategy is the paper's (p_n, p_w, p_l) triple.
	Strategy analysis.Strategy
	// RangeBias is the distance enlargement of attack signals, in feet.
	// It must exceed 2·ε_max so the consistency check fires for every
	// requester position; the default (0 selects 5·ε_max) also makes
	// the corruption of localization unmistakable.
	RangeBias float64
	// TurnaroundSkew is how much ActFakeReplay under-reports t3-t2, in
	// cycles; zero selects a full packet time beyond the threshold.
	TurnaroundSkew uint32
}

// Malicious is a compromised beacon node. It serves beacon signals like a
// benign beacon but chooses, deterministically per requester identity
// ("the malicious beacon node behaves in the same way for the same
// requesting node, which is the best strategy"), between normal service,
// replay camouflage, and outright attack. It cannot tell detecting
// pseudonyms from real sensor IDs — the property the paper's detecting-ID
// design creates.
type Malicious struct {
	env  *Env
	self deploy.Node
	ep   *mac.Endpoint
	cfg  MaliciousConfig

	farClaim  geo.Point
	neighbors map[ident.NodeID]bool // beacon IDs heard in hellos

	// ActionsTaken counts responses by action.
	ActionsTaken map[Action]int
	// AttackedIDs lists requester identities that were sent an attack
	// signal (ground truth for experiment metrics).
	AttackedIDs map[ident.NodeID]bool
	// RequestersSeen lists every identity that requested a beacon
	// signal from this node.
	RequestersSeen map[ident.NodeID]bool
}

// NewMalicious builds the compromised beacon at deployment index i.
func NewMalicious(env *Env, i int, cfg MaliciousConfig) *Malicious {
	n := env.Dep.Nodes[i]
	if n.Kind != deploy.KindMalicious {
		panic(fmt.Sprintf("node: index %d is %v, not a malicious beacon", i, n.Kind))
	}
	if err := cfg.Strategy.Validate(); err != nil {
		panic(err.Error())
	}
	if cfg.RangeBias == 0 {
		cfg.RangeBias = 5 * env.Core.MaxDistError
	}
	if cfg.TurnaroundSkew == 0 {
		cfg.TurnaroundSkew = uint32(env.Core.MaxRTT) + uint32(phy.FrameAirTime(38))
	}
	m := &Malicious{
		env:            env,
		self:           n,
		ep:             env.endpointFor(i, n.ID),
		cfg:            cfg,
		farClaim:       farClaimFor(n.Loc, env.Dep.Cfg),
		neighbors:      make(map[ident.NodeID]bool),
		ActionsTaken:   make(map[Action]int),
		AttackedIDs:    make(map[ident.NodeID]bool),
		RequestersSeen: make(map[ident.NodeID]bool),
	}
	m.ep.SetHandler(m.handle)
	return m
}

// farClaimFor picks a declared location guaranteed to be more than one
// radio range from every possible requester of this node: offset the true
// location by 2.5R, flipping direction to stay loosely near the field.
func farClaimFor(loc geo.Point, cfg deploy.Config) geo.Point {
	off := 2.5 * cfg.Range
	dx, dy := off, off
	if loc.X > cfg.Field.Min.X+cfg.Field.Width()/2 {
		dx = -dx
	}
	if loc.Y > cfg.Field.Min.Y+cfg.Field.Height()/2 {
		dy = -dy
	}
	return geo.Point{X: loc.X + dx, Y: loc.Y + dy}
}

// ID returns the node's identity.
func (m *Malicious) ID() ident.NodeID { return m.self.ID }

// LinkStats returns the node's link-layer counters.
func (m *Malicious) LinkStats() mac.Stats { return m.ep.Stats() }

// AnnounceAt schedules the hello broadcast (a malicious beacon wants to
// be found).
func (m *Malicious) AnnounceAt(at sim.Time) {
	m.env.Sched.At(at, func() {
		m.ep.Send(ident.Broadcast, packet.Hello{}, mac.SendOptions{})
	})
}

// ActionFor returns the (deterministic) action for a requester identity.
func (m *Malicious) ActionFor(req ident.NodeID) Action {
	src := m.env.Src.Split(fmt.Sprintf("strategy/%d/%d", m.self.ID, req))
	if src.Bool(m.cfg.Strategy.PN) {
		return ActNormal
	}
	if src.Bool(m.cfg.Strategy.PW) {
		return ActFakeWormhole
	}
	if src.Bool(m.cfg.Strategy.PL) {
		return ActFakeReplay
	}
	return ActAttack
}

func (m *Malicious) handle(d mac.Delivery) {
	if _, isHello := d.Pkt.Payload.(packet.Hello); isHello {
		if m.env.Dep.Space.IsBeaconID(d.Pkt.Header.Src) && d.Pkt.Header.Src != m.self.ID {
			m.neighbors[d.Pkt.Header.Src] = true
		}
		return
	}
	if _, ok := d.Pkt.Payload.(packet.BeaconRequest); !ok {
		return
	}
	if d.Local != m.self.ID {
		return
	}
	req := d.Pkt.Header.Src
	m.RequestersSeen[req] = true
	action := m.ActionFor(req)
	m.ActionsTaken[action]++

	t2 := d.FirstByteSPDR
	loc := m.self.Loc
	var bias float64
	var mark bool
	var skew uint32
	switch action {
	case ActNormal:
	case ActFakeWormhole:
		loc = m.farClaim
		mark = true
	case ActFakeReplay:
		skew = m.cfg.TurnaroundSkew
	case ActAttack:
		bias = m.cfg.RangeBias
		m.AttackedIDs[req] = true
	}

	m.ep.Send(req, packet.BeaconReply{
		Loc:  loc,
		Echo: d.Pkt.Header.Seq,
	}, mac.SendOptions{
		RangeBias:    bias,
		WormholeMark: mark,
		Compose: func(t3 sim.Time) any {
			turn := uint32(t3 - t2)
			if skew >= turn {
				turn = 0
			} else {
				turn -= skew
			}
			return packet.BeaconReply{
				Loc:        loc,
				Turnaround: turn,
				Echo:       d.Pkt.Header.Seq,
			}
		},
	})
}

// SendAlertAt schedules one fabricated alert against target.
func (m *Malicious) SendAlertAt(at sim.Time, target ident.NodeID) {
	m.env.Sched.At(at, func() {
		m.env.Uplink.SendAlert(m.self.ID, target, nil)
	})
}

// GossipFakeAlertAt schedules one fabricated alert against target,
// gossiped over the radio to every beacon neighbor — the colluding
// behavior in the distributed (base-station-free) revocation variant.
func (m *Malicious) GossipFakeAlertAt(at sim.Time, target ident.NodeID) {
	m.env.Sched.At(at, func() {
		for peer := range m.neighbors {
			if peer == target {
				continue
			}
			m.ep.Send(peer, packet.Alert{Target: target}, mac.SendOptions{})
		}
	})
}

// FloodAlertsAt schedules the uncoordinated colluding-reporter behavior:
// the malicious node spends its entire report budget (τ+1 alerts)
// accusing randomly chosen benign beacons. The scenario layer implements
// the stronger coordinated variant on top of SendAlertAt.
func (m *Malicious) FloodAlertsAt(at sim.Time, reportBudget int) {
	m.env.Sched.At(at, func() {
		src := m.env.Src.Split(fmt.Sprintf("flood/%d", m.self.ID))
		benign := m.env.Dep.BenignBeacons()
		if len(benign) == 0 {
			return
		}
		for r := 0; r < reportBudget; r++ {
			target := m.env.Dep.Nodes[benign[src.Intn(len(benign))]].ID
			m.env.Uplink.SendAlert(m.self.ID, target, nil)
		}
	})
}
