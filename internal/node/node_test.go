package node

import (
	"testing"

	"beaconsec/internal/analysis"
	"beaconsec/internal/core"
	"beaconsec/internal/crypto"
	"beaconsec/internal/deploy"
	"beaconsec/internal/geo"
	"beaconsec/internal/ident"
	"beaconsec/internal/mac"
	"beaconsec/internal/packet"
	"beaconsec/internal/phy"
	"beaconsec/internal/revoke"
	"beaconsec/internal/rng"
	"beaconsec/internal/sim"
)

// fixture is a hand-placed micro-network:
//
//	index 0: benign beacon   at (0, 0)
//	index 1: benign beacon   at (100, 0)
//	index 2: malicious beacon at (50, 80)
//	index 3: sensor          at (50, 30)
//	index 4: sensor          at (40, 60)
//
// Everyone is within the 150 ft range of everyone else.
type fixture struct {
	sched  *sim.Scheduler
	env    *Env
	bs     *revoke.BaseStation
	dep    *deploy.Deployment
	uplink *revoke.Uplink
}

func newFixture(t *testing.T, seed uint64, strategy analysis.Strategy) (*fixture, []*Beacon, *Malicious, []*Sensor) {
	t.Helper()
	cfg := deploy.Config{
		N:            5,
		Nb:           3,
		Na:           1,
		Field:        geo.Square(200),
		Range:        150,
		DetectingIDs: 4,
		Seed:         seed,
	}
	locs := []geo.Point{
		{X: 0, Y: 0}, {X: 100, Y: 0}, {X: 50, Y: 80}, {X: 50, Y: 30}, {X: 40, Y: 60},
	}
	dep := deploy.NewManual(cfg, locs, []int{2})

	src := rng.New(seed)
	sched := sim.New()
	medium := phy.NewMedium(sched, src.Split("medium"), phy.Config{
		Range:   cfg.Range,
		Ranging: phy.BoundedUniform{MaxError: 10},
	})
	bs := revoke.NewBaseStation(revoke.Config{ReportCap: 10, AlertThreshold: 0})
	uplink := revoke.NewUplink(sched, bs, src.Split("uplink"))
	threshold := core.CalibrateRTT(1000, phy.DefaultJitter(), seed).Threshold()
	env := &Env{
		Sched:  sched,
		Medium: medium,
		Master: crypto.NewMaster([]byte("node-test")),
		Dep:    dep,
		Core: core.Config{
			MaxDistError: 10,
			MaxRTT:       threshold,
			Range:        cfg.Range,
		},
		Uplink:         uplink,
		Src:            src.Split("nodes"),
		WormholeRate:   0.9,
		RequestRetries: 1,
	}
	f := &fixture{sched: sched, env: env, bs: bs, dep: dep, uplink: uplink}

	b0 := NewBeacon(env, 0)
	b1 := NewBeacon(env, 1)
	mal := NewMalicious(env, 2, MaliciousConfig{Strategy: strategy})
	s0 := NewSensor(env, 3)
	s1 := NewSensor(env, 4)

	b0.AnnounceAt(sim.Millis(10))
	b1.AnnounceAt(sim.Millis(120))
	mal.AnnounceAt(sim.Millis(240))

	return f, []*Beacon{b0, b1}, mal, []*Sensor{s0, s1}
}

func (f *fixture) run(t *testing.T) {
	t.Helper()
	f.sched.RunUntil(sim.Seconds(30))
	if err := f.sched.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDiscoveryViaHello(t *testing.T) {
	f, beacons, mal, sensors := newFixture(t, 1, analysis.Strategy{PN: 1})
	f.run(t)
	if got := beacons[0].NeighborBeacons(); len(got) != 2 {
		t.Errorf("beacon 0 discovered %v, want 2 beacon neighbors", got)
	}
	for _, s := range sensors {
		nbrs := s.NeighborBeacons()
		if len(nbrs) != 3 {
			t.Errorf("sensor %v discovered %v, want all 3 beacons", s.ID(), nbrs)
		}
	}
	_ = mal
}

func TestAlwaysNormalMaliciousNotDetected(t *testing.T) {
	// Strategy p_n = 1: the compromised node behaves benignly — it must
	// never be accused (P = 0 ⇒ P_r = 0).
	f, beacons, mal, _ := newFixture(t, 2, analysis.Strategy{PN: 1})
	for _, b := range beacons {
		b.StartDetection(sim.Seconds(1), sim.Seconds(10))
	}
	f.run(t)
	if f.bs.Revoked(mal.ID()) {
		t.Error("benign-behaving compromised node was revoked")
	}
	for _, b := range beacons {
		if len(b.AlertsSent) != 0 {
			t.Errorf("beacon %v alerted on %v", b.ID(), b.AlertsSent)
		}
		if b.Verdicts[core.VerdictMalicious] != 0 {
			t.Errorf("beacon %v verdicts: %v", b.ID(), b.Verdicts)
		}
	}
}

func TestAlwaysAttackMaliciousDetectedAndRevoked(t *testing.T) {
	// Strategy P = 1: every signal is an attack; every detecting beacon
	// catches it; τ' = 0 revokes on the first alert.
	f, beacons, mal, _ := newFixture(t, 3, analysis.Strategy{})
	for _, b := range beacons {
		b.StartDetection(sim.Seconds(1), sim.Seconds(10))
	}
	f.run(t)
	if !f.bs.Revoked(mal.ID()) {
		t.Fatal("always-attacking malicious beacon not revoked")
	}
	// Benign beacons must not accuse each other.
	for _, b := range beacons {
		for _, target := range b.AlertsSent {
			if target != mal.ID() {
				t.Errorf("beacon %v accused benign node %v", b.ID(), target)
			}
		}
	}
}

func TestBenignBeaconsNeverAccuseEachOther(t *testing.T) {
	for seed := uint64(10); seed < 15; seed++ {
		f, beacons, _, _ := newFixture(t, seed, analysis.Strategy{})
		for _, b := range beacons {
			b.StartDetection(sim.Seconds(1), sim.Seconds(10))
		}
		f.run(t)
		for _, b := range beacons {
			for _, other := range beacons {
				if b != other && f.bs.AlertCount(other.ID()) > 0 && b.alerted[other.ID()] {
					t.Fatalf("seed %d: benign beacon %v accused benign %v", seed, b.ID(), other.ID())
				}
			}
		}
	}
}

func TestFakeWormholeStrategyAvoidsDetectionAndSensors(t *testing.T) {
	// Strategy p_w = 1: every signal is camouflaged as a wormhole
	// replay; detecting nodes discard it (no alert) and sensors discard
	// it too (no references from the malicious node).
	f, beacons, mal, sensors := newFixture(t, 4, analysis.Strategy{PW: 1})
	for _, b := range beacons {
		b.StartDetection(sim.Seconds(1), sim.Seconds(10))
	}
	for _, s := range sensors {
		s.StartRequests(sim.Seconds(12), sim.Seconds(10))
	}
	f.run(t)
	if f.bs.Revoked(mal.ID()) {
		t.Error("wormhole-camouflaged node was revoked")
	}
	wormholeVerdicts := 0
	for _, b := range beacons {
		wormholeVerdicts += b.Verdicts[core.VerdictWormholeReplay]
		if len(b.AlertsSent) != 0 {
			t.Errorf("beacon %v alerted: %v", b.ID(), b.AlertsSent)
		}
	}
	if wormholeVerdicts == 0 {
		t.Error("no wormhole-replay verdicts recorded")
	}
	for _, s := range sensors {
		if s.AcceptedFrom[mal.ID()] {
			t.Errorf("sensor %v accepted camouflaged signal", s.ID())
		}
	}
}

func TestFakeReplayStrategyAvoidsDetectionAndSensors(t *testing.T) {
	f, beacons, mal, sensors := newFixture(t, 5, analysis.Strategy{PL: 1})
	for _, b := range beacons {
		b.StartDetection(sim.Seconds(1), sim.Seconds(10))
	}
	for _, s := range sensors {
		s.StartRequests(sim.Seconds(12), sim.Seconds(10))
	}
	f.run(t)
	if f.bs.Revoked(mal.ID()) {
		t.Error("replay-camouflaged node was revoked")
	}
	replayVerdicts := 0
	for _, b := range beacons {
		replayVerdicts += b.Verdicts[core.VerdictLocalReplay]
	}
	for _, s := range sensors {
		replayVerdicts += s.Verdicts[core.VerdictLocalReplay]
		if s.AcceptedFrom[mal.ID()] {
			t.Errorf("sensor %v accepted replay-camouflaged signal", s.ID())
		}
	}
	if replayVerdicts == 0 {
		t.Error("no local-replay verdicts recorded")
	}
}

func TestSensorAcceptsAttackWithoutOwnLocation(t *testing.T) {
	// The asymmetry the revocation scheme exists for: sensors cannot run
	// the consistency check, so an attack signal (enlarged distance)
	// passes their filters and corrupts their references.
	f, _, mal, sensors := newFixture(t, 6, analysis.Strategy{})
	for _, s := range sensors {
		s.StartRequests(sim.Seconds(1), sim.Seconds(10))
	}
	f.run(t)
	accepted := 0
	for _, s := range sensors {
		if s.AcceptedFrom[mal.ID()] {
			accepted++
			if !mal.AttackedIDs[s.ID()] {
				t.Errorf("sensor %v accepted but not in AttackedIDs", s.ID())
			}
		}
	}
	if accepted == 0 {
		t.Error("no sensor accepted the attack signal (filters are over-aggressive)")
	}
}

func TestSensorLocalizationCleanNetwork(t *testing.T) {
	f, _, _, sensors := newFixture(t, 7, analysis.Strategy{PN: 1})
	for _, s := range sensors {
		s.StartRequests(sim.Seconds(1), sim.Seconds(10))
	}
	f.run(t)
	for _, s := range sensors {
		e, ok := s.LocalizationError()
		if !ok {
			t.Fatalf("sensor %v failed to localize (refs: %d)", s.ID(), len(s.References))
		}
		// 3 references with ±10 ft ranging error; the estimate should
		// land within a small multiple.
		if e > 30 {
			t.Errorf("sensor %v localization error %v ft", s.ID(), e)
		}
	}
}

func TestSensorRevocationDropsReferences(t *testing.T) {
	f, _, mal, sensors := newFixture(t, 8, analysis.Strategy{})
	s := sensors[0]
	for _, x := range sensors {
		x.StartRequests(sim.Seconds(1), sim.Seconds(10))
	}
	f.run(t)
	if !s.AcceptedFrom[mal.ID()] {
		t.Skip("sensor did not accept from malicious node this seed")
	}
	before := len(s.References)
	s.MarkRevoked(mal.ID())
	if len(s.References) != before-1 {
		t.Errorf("references after revocation: %d, want %d", len(s.References), before-1)
	}
	if s.AcceptedFrom[mal.ID()] {
		t.Error("AcceptedFrom survived revocation")
	}
	if !s.Revoked(mal.ID()) {
		t.Error("Revoked() false after MarkRevoked")
	}
}

func TestMaliciousDeterministicPerRequester(t *testing.T) {
	f, _, mal, _ := newFixture(t, 9, analysis.Strategy{PN: 0.5})
	_ = f
	for req := ident.NodeID(500); req < 540; req++ {
		a := mal.ActionFor(req)
		for i := 0; i < 5; i++ {
			if got := mal.ActionFor(req); got != a {
				t.Fatalf("ActionFor(%v) flapped: %v then %v", req, a, got)
			}
		}
	}
}

func TestMaliciousStrategyFrequencies(t *testing.T) {
	f, _, mal, _ := newFixture(t, 10, analysis.Strategy{PN: 0.3, PW: 0.4, PL: 0.5})
	_ = f
	counts := make(map[Action]int)
	const n = 4000
	for i := 0; i < n; i++ {
		counts[mal.ActionFor(ident.NodeID(1000+i))]++
	}
	check := func(a Action, want float64) {
		got := float64(counts[a]) / n
		if got < want-0.05 || got > want+0.05 {
			t.Errorf("action %v frequency %v, want ≈ %v", a, got, want)
		}
	}
	check(ActNormal, 0.3)
	check(ActFakeWormhole, 0.7*0.4)
	check(ActFakeReplay, 0.7*0.6*0.5)
	check(ActAttack, 0.7*0.6*0.5) // P = (1-.3)(1-.4)(1-.5) = 0.21
}

func TestReplayAttackerCaughtByRTTFilter(t *testing.T) {
	// A locally replayed beacon signal must be discarded by the RTT
	// filter and must NOT trigger an alert against the benign source
	// (the paper's false-positive-avoidance claim).
	f, beacons, _, sensors := newFixture(t, 11, analysis.Strategy{PN: 1})
	attacker := NewReplayAttacker(f.sched, f.env.Medium, geo.Point{X: 60, Y: 40}, 0)
	for _, b := range beacons {
		b.StartDetection(sim.Seconds(1), sim.Seconds(10))
	}
	for _, s := range sensors {
		s.StartRequests(sim.Seconds(12), sim.Seconds(10))
	}
	f.run(t)
	if attacker.Replayed == 0 {
		t.Fatal("attacker replayed nothing")
	}
	for _, b := range beacons {
		if len(b.AlertsSent) != 0 {
			t.Errorf("replay attacker induced alerts: %v", b.AlertsSent)
		}
	}
	for _, id := range f.bs.RevokedSet() {
		t.Errorf("node %v revoked under replay attack", id)
	}
}

func TestActionStrings(t *testing.T) {
	for _, a := range []Action{ActNormal, ActFakeWormhole, ActFakeReplay, ActAttack} {
		if a.String() == "" {
			t.Errorf("empty String for action %d", a)
		}
	}
	if Action(0).String() != "action(0)" {
		t.Errorf("zero action = %q", Action(0).String())
	}
}

func TestNewBeaconWrongKindPanics(t *testing.T) {
	f, _, _, _ := newFixture(t, 12, analysis.Strategy{PN: 1})
	defer func() {
		if recover() == nil {
			t.Error("NewBeacon on malicious index did not panic")
		}
	}()
	NewBeacon(f.env, 2)
}

func TestNewMaliciousWrongKindPanics(t *testing.T) {
	f, _, _, _ := newFixture(t, 13, analysis.Strategy{PN: 1})
	defer func() {
		if recover() == nil {
			t.Error("NewMalicious on benign index did not panic")
		}
	}()
	NewMalicious(f.env, 0, MaliciousConfig{})
}

func TestNewSensorWrongKindPanics(t *testing.T) {
	f, _, _, _ := newFixture(t, 14, analysis.Strategy{PN: 1})
	defer func() {
		if recover() == nil {
			t.Error("NewSensor on beacon index did not panic")
		}
	}()
	NewSensor(f.env, 0)
}

func TestBeaconServesOnlyPrimaryIdentity(t *testing.T) {
	// Requests addressed to a detecting pseudonym must not be served: the
	// pseudonyms are requesters, not beacons — answering would expose
	// them.
	f, beacons, _, _ := newFixture(t, 15, analysis.Strategy{PN: 1})
	b0 := beacons[0]
	detID := f.env.Dep.Space.DetectingID(0, 0)

	// A sensor-grade endpoint requests a beacon signal from the pseudonym.
	probeStore := crypto.NewStore(f.env.Master, 4999)
	probeRadio := f.env.Medium.NewRadio(geo.Point{X: 10, Y: 10})
	probe := mac.NewEndpoint(f.env.Sched, probeRadio, probeStore, rng.New(99))
	replies := 0
	probe.SetHandler(func(d mac.Delivery) {
		if _, ok := d.Pkt.Payload.(packet.BeaconReply); ok {
			replies++
		}
	})
	f.env.Sched.At(sim.Seconds(1), func() {
		probe.Send(detID, packet.BeaconRequest{}, mac.SendOptions{})
	})
	f.run(t)
	if replies != 0 {
		t.Errorf("detecting pseudonym served %d beacon replies", replies)
	}
	if b0.RepliesServed != 0 {
		t.Errorf("RepliesServed = %d for pseudonym-addressed request", b0.RepliesServed)
	}
}

func TestSensorIgnoresForgedRevocation(t *testing.T) {
	// Only the base station may revoke: a revoke packet from a regular
	// node must be ignored.
	f, _, mal, sensors := newFixture(t, 16, analysis.Strategy{PN: 1})
	s := sensors[0]
	forger := crypto.NewStore(f.env.Master, 4998)
	forgerRadio := f.env.Medium.NewRadio(geo.Point{X: 45, Y: 25})
	forgerEp := mac.NewEndpoint(f.env.Sched, forgerRadio, forger, rng.New(98))
	f.env.Sched.At(sim.Seconds(1), func() {
		forgerEp.Send(s.ID(), packet.Revoke{Target: mal.ID()}, mac.SendOptions{})
	})
	f.run(t)
	if s.Revoked(mal.ID()) {
		t.Error("sensor honored a revocation not from the base station")
	}
}
