package node

import (
	"beaconsec/internal/geo"
	"beaconsec/internal/packet"
	"beaconsec/internal/phy"
	"beaconsec/internal/sim"
)

// ReplayAttacker is a store-and-forward local replay attacker: it records
// every beacon reply transmitted within its radio range and re-injects it
// from its own position after the original finishes plus ExtraDelay.
//
// This is the attack §2.2.2's RTT filter defeats: a local replay costs at
// least one full packet time ("the delay of replaying a signal between
// two neighbor nodes is at least the transmission time of one entire
// packet"), which dwarfs the ≈4.5-bit benign RTT spread.
type ReplayAttacker struct {
	// Pos is the attacker's position.
	Pos geo.Point
	// ExtraDelay is added beyond the unavoidable one-packet
	// store-and-forward delay.
	ExtraDelay sim.Time
	// Replayed counts re-injected frames.
	Replayed uint64

	sched  *sim.Scheduler
	medium *phy.Medium
}

// NewReplayAttacker installs a replay attacker on the medium.
func NewReplayAttacker(sched *sim.Scheduler, medium *phy.Medium, pos geo.Point, extraDelay sim.Time) *ReplayAttacker {
	a := &ReplayAttacker{Pos: pos, ExtraDelay: extraDelay, sched: sched, medium: medium}
	medium.AddTap(a.tap)
	return a
}

func (a *ReplayAttacker) tap(origin geo.Point, f phy.Frame, info phy.TxInfo) {
	if f.Replayed {
		return
	}
	if origin.Dist(a.Pos) > a.medium.Range() {
		return
	}
	h, err := packet.PeekHeader(f.Data)
	if err != nil || h.Type != packet.TypeBeaconReply {
		return
	}
	replay := f
	replay.Replayed = true
	replay.Finalize = nil
	data := make([]byte, len(f.Data))
	copy(data, f.Data)
	replay.Data = data
	a.Replayed++
	// Store-and-forward: cannot start before hearing the whole frame.
	a.sched.At(info.AirEnd+a.ExtraDelay, func() {
		a.medium.Inject(a.Pos, replay)
	})
}
