package core

import (
	"reflect"
	"testing"

	"beaconsec/internal/phy"
)

func calibrate(t *testing.T, trials int, seed uint64) Calibration {
	t.Helper()
	return CalibrateRTT(trials, phy.DefaultJitter(), seed)
}

func TestCalibrateRTTBasic(t *testing.T) {
	c := calibrate(t, 2000, 1)
	if c.Len() != 2000 {
		t.Fatalf("Len = %d", c.Len())
	}
	j := phy.DefaultJitter()
	if c.XMin() < 4*j.Min-1 {
		t.Errorf("XMin = %v below theoretical floor %v", c.XMin(), 4*j.Min)
	}
	if c.XMax() > 4*j.Max+4 {
		t.Errorf("XMax = %v above theoretical ceiling %v", c.XMax(), 4*j.Max)
	}
	if c.XMin() >= c.XMax() {
		t.Errorf("XMin %v >= XMax %v", c.XMin(), c.XMax())
	}
}

func TestCalibrationSpreadNear4Point5Bits(t *testing.T) {
	// The paper's Figure 4 finding: the no-attack RTT spread is about
	// 4.5 bit-times. With 10,000 trials the empirical spread approaches
	// the jitter model's designed 4.5-bit range from below.
	c := calibrate(t, 10000, 2)
	spread := c.SpreadBits()
	if spread < 3.5 || spread > 4.6 {
		t.Errorf("RTT spread = %.2f bit-times, want ≈ 4.5", spread)
	}
}

func TestCalibrationCDFMonotone(t *testing.T) {
	c := calibrate(t, 3000, 3)
	if got := c.CDF(c.XMin() - 1); got != 0 {
		t.Errorf("CDF below x_min = %v, want 0", got)
	}
	if got := c.CDF(c.XMax()); got != 1 {
		t.Errorf("CDF at x_max = %v, want 1 (x_max is 'minimum x with F(x)=1')", got)
	}
	prev := -1.0
	for x := c.XMin() - 100; x <= c.XMax()+100; x += 50 {
		f := c.CDF(x)
		if f < prev {
			t.Fatalf("CDF not monotone at %v: %v < %v", x, f, prev)
		}
		if f < 0 || f > 1 {
			t.Fatalf("CDF out of [0,1] at %v: %v", x, f)
		}
		prev = f
	}
}

func TestCalibrationQuantile(t *testing.T) {
	c := calibrate(t, 1000, 4)
	if q := c.Quantile(0); q != c.XMin() {
		t.Errorf("Quantile(0) = %v, want XMin %v", q, c.XMin())
	}
	if q := c.Quantile(1); q != c.XMax() {
		t.Errorf("Quantile(1) = %v, want XMax %v", q, c.XMax())
	}
	med := c.Quantile(0.5)
	if med < c.XMin() || med > c.XMax() {
		t.Errorf("median %v outside [%v, %v]", med, c.XMin(), c.XMax())
	}
}

func TestCalibrationDeterministicPerSeed(t *testing.T) {
	a := calibrate(t, 500, 7)
	b := calibrate(t, 500, 7)
	if a.XMin() != b.XMin() || a.XMax() != b.XMax() {
		t.Error("same-seed calibrations differ")
	}
	c := calibrate(t, 500, 8)
	if a.XMax() == c.XMax() && a.XMin() == c.XMin() {
		t.Error("different-seed calibrations identical (suspicious)")
	}
}

func TestThresholdSeparatesBenignFromReplay(t *testing.T) {
	// The paper's two claims, as one property:
	// (1) benign exchanges from fresh seeds stay under the threshold
	//     calibrated on a different seed (no false positives);
	// (2) a replayed signal, delayed by at least one full packet time,
	//     always exceeds it.
	cal := calibrate(t, 10000, 10)
	thr := cal.Threshold()
	for seed := uint64(20); seed < 30; seed++ {
		probe := calibrate(t, 500, seed)
		if probe.XMax() > thr {
			t.Errorf("seed %d: benign RTT %v exceeds threshold %v", seed, probe.XMax(), thr)
		}
		// Minimum replay delay: one 16-byte packet.
		replayed := probe.XMin() + float64(phy.FrameAirTime(16))
		if replayed <= thr {
			t.Errorf("seed %d: replayed RTT %v under threshold %v", seed, replayed, thr)
		}
	}
}

func TestThresholdDetectsDelayOver4Point5Bits(t *testing.T) {
	// "we can detect any replayed signal if the delay introduced by this
	// replay is longer than the transmission time of ~4.5+1 bits":
	// any delay beyond spread+guard is always caught.
	cal := calibrate(t, 10000, 11)
	thr := cal.Threshold()
	alwaysCaught := cal.XMax() - cal.XMin() + GuardBand // delay that lifts even x_min past thr
	if bits := alwaysCaught / float64(phy.CyclesPerBit); bits > 6 {
		t.Errorf("guaranteed-detection delay = %.2f bits, want <= ~5.5", bits)
	}
	if cal.XMin()+alwaysCaught+1 <= thr {
		t.Error("internal inconsistency: computed delay does not clear threshold")
	}
	_ = thr
}

func TestCalibrationFromSamples(t *testing.T) {
	c := CalibrationFromSamples([]float64{5, 1, 3})
	if c.XMin() != 1 || c.XMax() != 5 || c.Len() != 3 {
		t.Errorf("from samples: min %v max %v len %d", c.XMin(), c.XMax(), c.Len())
	}
	if got := c.CDF(3); got < 0.66 || got > 0.67 {
		t.Errorf("CDF(3) = %v, want 2/3", got)
	}
}

func TestEmptyCalibration(t *testing.T) {
	var c Calibration
	if c.XMin() != 0 || c.XMax() != 0 || c.CDF(10) != 0 || c.Quantile(0.5) != 0 {
		t.Error("empty calibration accessors not zero")
	}
}

func TestCalibrateRTTWorkersDeterministic(t *testing.T) {
	// 1,200 trials span three batches; the merged sample set must be
	// identical whatever the worker count.
	base, err := CalibrateRTTWorkers(1200, phy.DefaultJitter(), 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if base.Len() != 1200 {
		t.Fatalf("Len = %d", base.Len())
	}
	for _, workers := range []int{0, 2, 8} {
		c, err := CalibrateRTTWorkers(1200, phy.DefaultJitter(), 5, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base.samples, c.samples) {
			t.Fatalf("workers=%d changed the calibration samples", workers)
		}
	}
}

func TestCalibrateRTTWorkersInvalidTrials(t *testing.T) {
	if _, err := CalibrateRTTWorkers(0, phy.DefaultJitter(), 1, 1); err == nil {
		t.Error("CalibrateRTTWorkers(0) did not error")
	}
}

func TestCalibrateRTTInvalidTrialsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("CalibrateRTT(0) did not panic")
		}
	}()
	CalibrateRTT(0, phy.DefaultJitter(), 1)
}

func BenchmarkCalibrateRTT1k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		CalibrateRTT(1000, phy.DefaultJitter(), uint64(i))
	}
}
