// Package core implements the paper's primary contribution: the detector
// suite for malicious beacon signals and malicious beacon nodes.
//
//   - The distance-consistency check (§2.1): a detecting beacon node
//     compares the distance measured from a beacon signal against the
//     distance calculated from its own location and the location declared
//     in the beacon packet; a mismatch above the maximum measurement error
//     marks the signal malicious.
//   - The wormhole-replay filter (§2.2.1): a malicious signal whose claimed
//     origin lies beyond radio range, for which the node's wormhole
//     detector fires, is a replay through a wormhole — discarded without
//     accusing the (possibly benign) claimed sender.
//   - The local-replay filter (§2.2.2): a signal whose round-trip time
//     exceeds the calibrated no-attack maximum was replayed by a nearby
//     attacker — likewise discarded.
//
// Signals that survive the replay filters and still fail the consistency
// check come directly from the target node, which is therefore malicious:
// the detecting node reports an alert (package revoke).
package core

import (
	"fmt"

	"beaconsec/internal/geo"
	"beaconsec/internal/localization"
	"beaconsec/internal/wormhole"
)

// Verdict classifies one observed beacon exchange. Values start at one so
// the zero value is never a valid verdict.
type Verdict int

// Verdicts.
const (
	// VerdictBenign: signal consistent; use it (and do not alert —
	// even a compromised node sending consistent signals "is equivalent
	// to a benign beacon node located at the declared position").
	VerdictBenign Verdict = iota + 1
	// VerdictMalicious: inconsistent signal that came directly from the
	// target — report the target to the base station.
	VerdictMalicious
	// VerdictWormholeReplay: inconsistent signal explained by a wormhole
	// replay — discard, no alert.
	VerdictWormholeReplay
	// VerdictLocalReplay: signal replayed by a local attacker — discard,
	// no alert.
	VerdictLocalReplay
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case VerdictBenign:
		return "benign"
	case VerdictMalicious:
		return "malicious"
	case VerdictWormholeReplay:
		return "wormhole-replay"
	case VerdictLocalReplay:
		return "local-replay"
	default:
		return fmt.Sprintf("verdict(%d)", int(v))
	}
}

// Accepted reports whether the signal should be used as a location
// reference.
func (v Verdict) Accepted() bool { return v == VerdictBenign }

// Alertable reports whether the detecting node should report the target.
func (v Verdict) Alertable() bool { return v == VerdictMalicious }

// Observation is everything a requesting node knows about one completed
// beacon exchange.
type Observation struct {
	// OwnLoc is the requester's own location; valid only when OwnKnown
	// (beacon nodes acting as detectors know theirs, non-beacon nodes do
	// not yet).
	OwnLoc   geo.Point
	OwnKnown bool
	// Claimed is the location declared in the beacon packet.
	Claimed geo.Point
	// MeasuredDist is the distance derived from the beacon signal
	// (RSSI).
	MeasuredDist float64
	// RTT is (t4-t1) - (t3-t2) in cycles.
	RTT float64
	// WormholeDetected is the node's wormhole-detector output for this
	// exchange.
	WormholeDetected bool
}

// Config parameterizes the detector suite.
type Config struct {
	// MaxDistError is the maximum distance-measurement error ε_max; a
	// measured-vs-calculated mismatch beyond it marks a signal
	// malicious.
	MaxDistError float64
	// MaxRTT is the local-replay threshold: the calibrated no-attack
	// x_max (Calibration.Threshold). RTTs above it mark replays.
	MaxRTT float64
	// Range is the radio communication range, used by the wormhole
	// filter's distance condition.
	Range float64
}

// Validate returns an error when the configuration is unusable.
func (c Config) Validate() error {
	if c.MaxDistError <= 0 {
		return fmt.Errorf("core: MaxDistError %v must be positive", c.MaxDistError)
	}
	if c.MaxRTT <= 0 {
		return fmt.Errorf("core: MaxRTT %v must be positive", c.MaxRTT)
	}
	if c.Range <= 0 {
		return fmt.Errorf("core: Range %v must be positive", c.Range)
	}
	return nil
}

// SignalMalicious is the §2.1 consistency check: it reports whether the
// measured distance disagrees with the distance calculated from the
// requester's own location and the claimed location by more than the
// maximum measurement error. It requires the requester to know its own
// location.
func (c Config) SignalMalicious(o Observation) bool {
	if !o.OwnKnown {
		return false
	}
	calc := o.OwnLoc.Dist(o.Claimed)
	diff := o.MeasuredDist - calc
	if diff < 0 {
		diff = -diff
	}
	return diff > c.MaxDistError
}

// AoAObservation is the angle-of-arrival variant of an exchange: the
// requester measured the bearing toward the signal's apparent origin
// instead of (or in addition to) a distance.
type AoAObservation struct {
	// OwnLoc / OwnKnown as in Observation.
	OwnLoc   geo.Point
	OwnKnown bool
	// Claimed is the location declared in the beacon packet.
	Claimed geo.Point
	// MeasuredBearing is the AoA measurement (radians in (-π, π]).
	MeasuredBearing float64
}

// AoAConfig parameterizes the AoA consistency check.
type AoAConfig struct {
	// MaxAngleError is the bearing measurement error bound, radians.
	MaxAngleError float64
}

// SignalMaliciousAoA is the §2.3 "other measurements" variant of the
// consistency check: the measured bearing toward the signal must agree
// with the bearing calculated from the requester's own location to the
// claimed location, within the measurement error bound. A compromised
// beacon that lies about its position (or whose signal arrives from a
// tunnel exit) fails the check.
func (a AoAConfig) SignalMaliciousAoA(o AoAObservation) bool {
	if !o.OwnKnown {
		return false
	}
	calc := localization.BearingTo(o.OwnLoc, o.Claimed)
	return localization.AngleDiff(o.MeasuredBearing, calc) > a.MaxAngleError
}

// LocallyReplayed is the §2.2.2 RTT filter.
func (c Config) LocallyReplayed(o Observation) bool {
	return o.RTT > c.MaxRTT
}

// EvaluateDetector runs the full detecting-node pipeline (§2.1–2.2) and
// returns the verdict for the target node.
//
// Order per the paper: the local-replay filter guards every exchange; a
// consistent, timely signal is benign; an inconsistent one is checked
// against the wormhole filter, then against the RTT filter, and only if
// both pass is the target itself accused.
func (c Config) EvaluateDetector(o Observation) Verdict {
	if !c.SignalMalicious(o) {
		// Consistent signal — but a replayed consistent signal is
		// still discarded (it proves nothing about the claimed
		// sender's presence); the RTT filter applies to all signals.
		if c.LocallyReplayed(o) {
			return VerdictLocalReplay
		}
		return VerdictBenign
	}
	if o.OwnKnown && o.OwnLoc.Dist(o.Claimed) > c.Range && o.WormholeDetected {
		return VerdictWormholeReplay
	}
	if c.LocallyReplayed(o) {
		return VerdictLocalReplay
	}
	return VerdictMalicious
}

// EvaluateSensor runs the non-beacon-node filter: a sensor does not know
// its own location, so it cannot run the consistency check; it discards
// wormhole-detected and locally-replayed signals and accepts the rest as
// location references (§2.2: both detectors are "installed on every
// beacon and non-beacon node").
func (c Config) EvaluateSensor(o Observation) Verdict {
	if o.WormholeDetected {
		return VerdictWormholeReplay
	}
	if c.LocallyReplayed(o) {
		return VerdictLocalReplay
	}
	return VerdictBenign
}

// WormholeContext assembles the wormhole-detector context for an
// exchange; claimedDist is negative when the receiver does not know its
// own location.
func (c Config) WormholeContext(o Observation, replayed, marked bool) wormhole.Context {
	claimed := -1.0
	if o.OwnKnown {
		claimed = o.OwnLoc.Dist(o.Claimed)
	}
	return wormhole.Context{
		Replayed:     replayed,
		WormholeMark: marked,
		ClaimedDist:  claimed,
		Range:        c.Range,
	}
}
