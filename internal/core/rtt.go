package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"beaconsec/internal/geo"
	"beaconsec/internal/harness"
	"beaconsec/internal/phy"
	"beaconsec/internal/rng"
	"beaconsec/internal/sim"
)

// GuardBand is added to the observed no-attack maximum RTT to form the
// local-replay threshold. One bit-time of slack covers the gap between an
// empirical maximum over finitely many trials and the distribution's true
// upper bound; a replay costs at least one full packet time (dozens of
// byte-times), so the band cannot mask a real replay.
const GuardBand = float64(phy.CyclesPerBit)

// Calibration is the empirical no-attack RTT distribution (the paper's
// Figure 4), measured by exchanging request/reply pairs between two
// benign neighbor nodes and computing RTT = (t4-t1) - (t3-t2).
type Calibration struct {
	samples []float64 // sorted ascending
}

// calBatchSize is the number of exchanges each independent calibration
// network measures. The batch structure depends only on the trial count,
// never on the worker count, so CalibrateRTT is deterministic for any
// parallelism.
const calBatchSize = 500

// CalibrateRTT measures trials request/reply exchanges with the given
// jitter model and returns the empirical distribution. The paper
// performs 10,000 trials on MICA2 motes; this is the simulated
// equivalent. It panics on a non-positive trial count; use
// CalibrateRTTWorkers for an error return and an explicit worker bound.
func CalibrateRTT(trials int, jitter phy.Jitter, seed uint64) Calibration {
	cal, err := CalibrateRTTWorkers(trials, jitter, seed, 0)
	if err != nil {
		panic("core: " + err.Error())
	}
	return cal
}

// CalibrateRTTWorkers is CalibrateRTT on a bounded worker pool: the
// exchanges are measured in fixed-size batches, each on its own
// dedicated two-node network seeded from the batch index, and the
// batches run concurrently on the trial harness. The merged distribution
// is identical for any worker count (0 means one worker per CPU).
func CalibrateRTTWorkers(trials int, jitter phy.Jitter, seed uint64, workers int) (Calibration, error) {
	if trials <= 0 {
		return Calibration{}, fmt.Errorf("core: non-positive calibration trials %d", trials)
	}
	batches := (trials + calBatchSize - 1) / calBatchSize
	labels := make([]string, batches)
	for i := range labels {
		labels[i] = fmt.Sprintf("batch=%d", i)
	}
	rows, err := harness.Sweep(context.Background(), harness.Spec[[]float64]{
		Label:   "rtt-calibration",
		Points:  labels,
		Trials:  1,
		Seed:    seed,
		Workers: workers,
		Run: func(_ context.Context, job harness.Job) ([]float64, error) {
			count := calBatchSize
			if job.Point == batches-1 {
				count = trials - calBatchSize*(batches-1)
			}
			return measureRTTBatch(count, calPairDist, jitter, job.Seed)
		},
	})
	if err != nil {
		return Calibration{}, err
	}
	samples := make([]float64, 0, trials)
	for _, row := range rows {
		samples = append(samples, row[0]...)
	}
	sort.Float64s(samples)
	return Calibration{samples: samples}, nil
}

// calPairDist is the distance in feet between the calibration pair.
const calPairDist = 100

// measureRTTBatch runs one batch of request/reply exchanges on a
// dedicated two-node network and returns the raw RTT samples.
func measureRTTBatch(trials int, pairDist float64, jitter phy.Jitter, seed uint64) ([]float64, error) {
	src := rng.New(seed)
	sched := sim.New()
	medium := phy.NewMedium(sched, src.Split("medium"), phy.Config{
		Range:  150,
		Jitter: jitter,
	})
	a := medium.NewRadio(geo.Point{X: 0, Y: 0})
	b := medium.NewRadio(geo.Point{X: pairDist, Y: 0})

	samples := make([]float64, 0, trials)
	var t1, t2, t3 sim.Time
	frame := func() phy.Frame { return phy.Frame{Data: make([]byte, 16)} }

	b.SetHandler(func(rec phy.Reception) {
		t2 = rec.FirstByteSPDR
		// Modest randomized turnaround, standing in for MAC/processing
		// delay; it cancels out of the RTT by construction.
		delay := sim.Time(1000 + src.Intn(20000))
		sched.After(delay, func() {
			info := medium.Transmit(b, frame())
			t3 = info.FirstByteSPDR
		})
	})
	var kick func()
	a.SetHandler(func(rec phy.Reception) {
		t4 := rec.FirstByteSPDR
		samples = append(samples, float64(t4-t1)-float64(t3-t2))
		kick()
	})
	kick = func() {
		if len(samples) >= trials {
			return
		}
		// Leave air gaps between exchanges so they never overlap.
		sched.After(sim.Millis(1), func() {
			info := medium.Transmit(a, frame())
			t1 = info.FirstByteSPDR
		})
	}
	// Skip the first few thousand cycles so register-preload clamping at
	// time zero cannot bias the first sample.
	sched.At(sim.Millis(5), kick)
	if err := sched.Run(); err != nil {
		return nil, fmt.Errorf("core: calibration scheduler stopped: %w", err)
	}
	return samples, nil
}

// CalibrationFromSamples builds a Calibration from externally measured
// RTTs (e.g. hardware traces).
func CalibrationFromSamples(samples []float64) Calibration {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return Calibration{samples: s}
}

// Len returns the number of samples.
func (c Calibration) Len() int { return len(c.samples) }

// XMin returns the paper's x_min: the maximum x with F(x) = 0, i.e. the
// smallest observed RTT.
func (c Calibration) XMin() float64 {
	if len(c.samples) == 0 {
		return 0
	}
	return c.samples[0]
}

// XMax returns the paper's x_max: the minimum x with F(x) = 1, i.e. the
// largest observed RTT.
func (c Calibration) XMax() float64 {
	if len(c.samples) == 0 {
		return 0
	}
	return c.samples[len(c.samples)-1]
}

// CDF returns the empirical cumulative distribution F(x): the fraction of
// observed RTTs ≤ x.
func (c Calibration) CDF(x float64) float64 {
	if len(c.samples) == 0 {
		return 0
	}
	return float64(sort.SearchFloat64s(c.samples, x+1e-12)) / float64(len(c.samples))
}

// Quantile returns the q-th empirical quantile, q in [0, 1].
func (c Calibration) Quantile(q float64) float64 {
	if len(c.samples) == 0 {
		return 0
	}
	if q <= 0 {
		return c.samples[0]
	}
	if q >= 1 {
		return c.samples[len(c.samples)-1]
	}
	i := int(q * float64(len(c.samples)))
	return c.samples[i]
}

// SpreadBits returns the observed RTT spread in bit-times; the paper
// reports ≈ 4.5 bits.
func (c Calibration) SpreadBits() float64 {
	return (c.XMax() - c.XMin()) / float64(phy.CyclesPerBit)
}

// Threshold returns the local-replay detection threshold: x_max plus the
// guard band.
func (c Calibration) Threshold() float64 { return c.XMax() + GuardBand }

// Stats summarizes the calibration for detectors that need distribution
// moments (DetectorEnv.RTT): sample mean and standard deviation plus the
// x_min / x_max / threshold headline values.
func (c Calibration) Stats() RTTStats {
	n := len(c.samples)
	if n == 0 {
		return RTTStats{}
	}
	var sum float64
	for _, x := range c.samples {
		sum += x
	}
	mean := sum / float64(n)
	var ss float64
	for _, x := range c.samples {
		d := x - mean
		ss += d * d
	}
	return RTTStats{
		Mean:      mean,
		Std:       math.Sqrt(ss / float64(n)),
		Min:       c.XMin(),
		Max:       c.XMax(),
		Threshold: c.Threshold(),
	}
}
