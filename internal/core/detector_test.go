package core

import (
	"testing"

	"beaconsec/internal/geo"
	"beaconsec/internal/localization"
	"beaconsec/internal/rng"
)

func testConfig() Config {
	return Config{MaxDistError: 10, MaxRTT: 15000, Range: 150}
}

func obs(ownKnown bool, own, claimed geo.Point, measured, rtt float64, wh bool) Observation {
	return Observation{
		OwnLoc:           own,
		OwnKnown:         ownKnown,
		Claimed:          claimed,
		MeasuredDist:     measured,
		RTT:              rtt,
		WormholeDetected: wh,
	}
}

func TestConfigValidate(t *testing.T) {
	if err := testConfig().Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []Config{
		{MaxDistError: 0, MaxRTT: 1, Range: 1},
		{MaxDistError: 1, MaxRTT: 0, Range: 1},
		{MaxDistError: 1, MaxRTT: 1, Range: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestSignalMalicious(t *testing.T) {
	c := testConfig()
	own := geo.Point{X: 0, Y: 0}
	tests := []struct {
		name     string
		claimed  geo.Point
		measured float64
		want     bool
	}{
		{"consistent exact", geo.Point{X: 100, Y: 0}, 100, false},
		{"consistent within error", geo.Point{X: 100, Y: 0}, 109, false},
		{"boundary not malicious", geo.Point{X: 100, Y: 0}, 110, false},
		{"just past boundary", geo.Point{X: 100, Y: 0}, 110.5, true},
		{"under-reported distance", geo.Point{X: 100, Y: 0}, 80, true},
		{"false location", geo.Point{X: 300, Y: 0}, 100, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			o := obs(true, own, tt.claimed, tt.measured, 14000, false)
			if got := c.SignalMalicious(o); got != tt.want {
				t.Errorf("SignalMalicious = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestSignalMaliciousNeedsOwnLocation(t *testing.T) {
	c := testConfig()
	o := obs(false, geo.Point{}, geo.Point{X: 500, Y: 0}, 10, 14000, false)
	if c.SignalMalicious(o) {
		t.Error("consistency check ran without own location")
	}
}

func TestEvaluateDetector(t *testing.T) {
	c := testConfig()
	own := geo.Point{X: 0, Y: 0}
	tests := []struct {
		name string
		o    Observation
		want Verdict
	}{
		{
			"benign consistent signal",
			obs(true, own, geo.Point{X: 100, Y: 0}, 102, 14000, false),
			VerdictBenign,
		},
		{
			"malicious signal, no excuse",
			obs(true, own, geo.Point{X: 100, Y: 0}, 60, 14000, false),
			VerdictMalicious,
		},
		{
			"wormhole replay: far claim + detector fired",
			obs(true, own, geo.Point{X: 700, Y: 600}, 90, 14000, true),
			VerdictWormholeReplay,
		},
		{
			"far claim but detector silent -> local replay check passes -> malicious",
			obs(true, own, geo.Point{X: 700, Y: 600}, 90, 14000, false),
			VerdictMalicious,
		},
		{
			"near claim + detector fired is NOT a wormhole excuse",
			obs(true, own, geo.Point{X: 100, Y: 0}, 60, 14000, true),
			VerdictMalicious,
		},
		{
			"inconsistent and slow -> local replay",
			obs(true, own, geo.Point{X: 100, Y: 0}, 60, 99999, false),
			VerdictLocalReplay,
		},
		{
			"consistent but slow -> local replay (discarded, no alert)",
			obs(true, own, geo.Point{X: 100, Y: 0}, 100, 99999, false),
			VerdictLocalReplay,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := c.EvaluateDetector(tt.o); got != tt.want {
				t.Errorf("EvaluateDetector = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestEvaluateDetectorWormholeFilterNeedsBothConditions(t *testing.T) {
	// The §2.2.1 filter requires calculated distance > range AND the
	// wormhole detector firing; a malicious neighbor cannot excuse an
	// inconsistent signal by triggering the detector alone (that case
	// stays malicious), and a far claim alone is not an excuse either.
	c := testConfig()
	own := geo.Point{X: 0, Y: 0}
	inRangeClaim := obs(true, own, geo.Point{X: 140, Y: 0}, 60, 14000, true)
	if got := c.EvaluateDetector(inRangeClaim); got != VerdictMalicious {
		t.Errorf("in-range claim with detector fired = %v, want malicious", got)
	}
}

func TestEvaluateSensor(t *testing.T) {
	c := testConfig()
	tests := []struct {
		name string
		o    Observation
		want Verdict
	}{
		{"clean signal accepted", obs(false, geo.Point{}, geo.Point{X: 1, Y: 1}, 50, 14000, false), VerdictBenign},
		{"wormhole detected", obs(false, geo.Point{}, geo.Point{X: 1, Y: 1}, 50, 14000, true), VerdictWormholeReplay},
		{"slow signal", obs(false, geo.Point{}, geo.Point{X: 1, Y: 1}, 50, 99999, false), VerdictLocalReplay},
		{"wormhole wins over slow", obs(false, geo.Point{}, geo.Point{X: 1, Y: 1}, 50, 99999, true), VerdictWormholeReplay},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := c.EvaluateSensor(tt.o); got != tt.want {
				t.Errorf("EvaluateSensor = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestVerdictHelpers(t *testing.T) {
	if !VerdictBenign.Accepted() || VerdictMalicious.Accepted() ||
		VerdictWormholeReplay.Accepted() || VerdictLocalReplay.Accepted() {
		t.Error("Accepted() wrong")
	}
	if !VerdictMalicious.Alertable() || VerdictBenign.Alertable() ||
		VerdictWormholeReplay.Alertable() || VerdictLocalReplay.Alertable() {
		t.Error("Alertable() wrong")
	}
	for _, v := range []Verdict{VerdictBenign, VerdictMalicious, VerdictWormholeReplay, VerdictLocalReplay} {
		if v.String() == "" {
			t.Errorf("empty String for %d", v)
		}
	}
	if Verdict(0).String() != "verdict(0)" {
		t.Errorf("zero verdict String = %q", Verdict(0).String())
	}
}

func TestWormholeContext(t *testing.T) {
	c := testConfig()
	o := obs(true, geo.Point{X: 0, Y: 0}, geo.Point{X: 300, Y: 400}, 90, 14000, false)
	ctx := c.WormholeContext(o, true, false)
	if ctx.ClaimedDist != 500 {
		t.Errorf("ClaimedDist = %v, want 500", ctx.ClaimedDist)
	}
	if !ctx.Replayed || ctx.WormholeMark {
		t.Errorf("flags = %+v", ctx)
	}
	if ctx.Range != 150 {
		t.Errorf("Range = %v", ctx.Range)
	}
	unknown := c.WormholeContext(obs(false, geo.Point{}, geo.Point{X: 1, Y: 1}, 0, 0, false), false, true)
	if unknown.ClaimedDist >= 0 {
		t.Errorf("unknown own location ClaimedDist = %v, want negative", unknown.ClaimedDist)
	}
	if !unknown.WormholeMark {
		t.Error("WormholeMark lost")
	}
}

// TestDetectorNeverAccusesConsistentAttacker encodes the paper's §2.1
// argument: a compromised beacon whose signals stay consistent is
// "equivalent to a benign beacon node located at the declared position" —
// it must never be flagged, for any requester position.
func TestDetectorNeverAccusesConsistentAttacker(t *testing.T) {
	c := testConfig()
	src := rng.New(7)
	for i := 0; i < 2000; i++ {
		own := geo.Point{X: src.Uniform(0, 1000), Y: src.Uniform(0, 1000)}
		claimed := geo.Point{X: src.Uniform(0, 1000), Y: src.Uniform(0, 1000)}
		measured := own.Dist(claimed) + src.Uniform(-c.MaxDistError, c.MaxDistError)
		o := obs(true, own, claimed, measured, 14000, false)
		if v := c.EvaluateDetector(o); v != VerdictBenign {
			t.Fatalf("consistent signal flagged %v (own %v claimed %v measured %v)",
				v, own, claimed, measured)
		}
	}
}

func TestSignalMaliciousAoA(t *testing.T) {
	a := AoAConfig{MaxAngleError: 0.05}
	own := geo.Point{X: 0, Y: 0}
	tests := []struct {
		name     string
		claimed  geo.Point
		measured float64 // bearing
		want     bool
	}{
		{"honest bearing", geo.Point{X: 100, Y: 0}, 0.0, false},
		{"within error", geo.Point{X: 100, Y: 0}, 0.04, false},
		{"beyond error", geo.Point{X: 100, Y: 0}, 0.06, true},
		{"claims north, signal from east", geo.Point{X: 0, Y: 100}, 0.0, true},
		{"wrap-around consistent", geo.Point{X: -100, Y: 0.001}, -3.14159, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			o := AoAObservation{OwnLoc: own, OwnKnown: true, Claimed: tt.claimed, MeasuredBearing: tt.measured}
			if got := a.SignalMaliciousAoA(o); got != tt.want {
				t.Errorf("SignalMaliciousAoA = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestSignalMaliciousAoANeedsOwnLocation(t *testing.T) {
	a := AoAConfig{MaxAngleError: 0.05}
	o := AoAObservation{OwnKnown: false, Claimed: geo.Point{X: 100, Y: 0}, MeasuredBearing: 3}
	if a.SignalMaliciousAoA(o) {
		t.Error("AoA check ran without own location")
	}
}

func TestAoACatchesWormholeExitGeometry(t *testing.T) {
	// A tunneled signal arrives from the tunnel exit's direction while
	// claiming a far location in a different direction: the AoA check
	// catches it exactly as the distance check does.
	a := AoAConfig{MaxAngleError: 0.05}
	own := geo.Point{X: 0, Y: 0}
	exit := geo.Point{X: 50, Y: -50}     // apparent origin
	claimed := geo.Point{X: 700, Y: 600} // the real (far) beacon's honest claim
	o := AoAObservation{
		OwnLoc: own, OwnKnown: true,
		Claimed:         claimed,
		MeasuredBearing: localization.BearingTo(own, exit),
	}
	if !a.SignalMaliciousAoA(o) {
		t.Error("wormhole-exit geometry not flagged by AoA check")
	}
}
