package core

import (
	"math"
	"strings"
	"testing"

	"beaconsec/internal/geo"
	"beaconsec/internal/rng"
)

// TestVerdictString pins the string form of every verdict plus the
// out-of-range fallback (metrics maps and log lines key on these).
func TestVerdictString(t *testing.T) {
	cases := []struct {
		v    Verdict
		want string
	}{
		{VerdictBenign, "benign"},
		{VerdictMalicious, "malicious"},
		{VerdictWormholeReplay, "wormhole-replay"},
		{VerdictLocalReplay, "local-replay"},
		{Verdict(0), "verdict(0)"},
		{Verdict(99), "verdict(99)"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("Verdict(%d).String() = %q, want %q", int(c.v), got, c.want)
		}
	}
}

func TestDetectorSpecCanonical(t *testing.T) {
	cases := []struct {
		spec DetectorSpec
		want string
	}{
		{DetectorSpec{}, "paper"},
		{DetectorSpec{Name: "paper"}, "paper"},
		{DetectorSpec{Name: "ml", Params: map[string]float64{"lambda": 0.5, "bias": 20}},
			"ml{bias=20,lambda=0.5}"},
		{DetectorSpec{Name: "mahalanobis", Params: map[string]float64{"threshold": 2.5}},
			"mahalanobis{threshold=2.5}"},
	}
	for _, c := range cases {
		if got := c.spec.Canonical(); got != c.want {
			t.Errorf("Canonical(%+v) = %q, want %q", c.spec, got, c.want)
		}
	}
}

func TestParseDetectorSpec(t *testing.T) {
	valid := []struct {
		text, canonical string
	}{
		{"paper", "paper"},
		{" ml ", "ml"},
		{"ml{}", "ml"},
		{"ml{bias=20}", "ml{bias=20}"},
		{"mahalanobis{threshold=2.5}", "mahalanobis{threshold=2.5}"},
		{"ml{lambda=0.5, bias=20}", "ml{bias=20,lambda=0.5}"},
	}
	for _, c := range valid {
		spec, err := ParseDetectorSpec(c.text)
		if err != nil {
			t.Errorf("ParseDetectorSpec(%q): %v", c.text, err)
			continue
		}
		if got := spec.Canonical(); got != c.canonical {
			t.Errorf("ParseDetectorSpec(%q).Canonical() = %q, want %q", c.text, got, c.canonical)
		}
	}
	invalid := []string{
		"",                  // empty name
		"Paper",             // uppercase
		"ml{bias=20",        // unterminated brace
		"ml{bias}",          // not k=v
		"ml{bias=x}",        // non-numeric value
		"ml{bias=1,bias=2}", // duplicate parameter
		"ml{Bias=1}",        // malformed parameter name
	}
	for _, text := range invalid {
		if _, err := ParseDetectorSpec(text); err == nil {
			t.Errorf("ParseDetectorSpec(%q): want error, got nil", text)
		}
	}
}

func TestParseDetectorList(t *testing.T) {
	specs, err := ParseDetectorList("paper,mahalanobis{threshold=2.5},ml{bias=20,lambda=0.5}")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"paper", "mahalanobis{threshold=2.5}", "ml{bias=20,lambda=0.5}"}
	if len(specs) != len(want) {
		t.Fatalf("got %d specs, want %d", len(specs), len(want))
	}
	for i, w := range want {
		if got := specs[i].Canonical(); got != w {
			t.Errorf("specs[%d] = %q, want %q", i, got, w)
		}
	}
	for _, text := range []string{"", "a,,b", "ml{bias=1", "ml}", "paper,"} {
		if _, err := ParseDetectorList(text); err == nil {
			t.Errorf("ParseDetectorList(%q): want error, got nil", text)
		}
	}
}

// FuzzDetectorSpecCanonical checks the canonical encoding is a fixed
// point of the parser: any input the parser accepts re-parses from its
// canonical form to the same canonical form, and validates. This is the
// property the cache keys on — two equal-Canonical specs must be the
// same detector.
func FuzzDetectorSpecCanonical(f *testing.F) {
	f.Add("paper")
	f.Add("mahalanobis{threshold=2.5}")
	f.Add("ml{bias=20,lambda=0.5}")
	f.Add("a{b=1e-9,c=-3.25}")
	f.Add("x{y=0,z=-0}")
	f.Fuzz(func(t *testing.T, text string) {
		spec, err := ParseDetectorSpec(text)
		if err != nil {
			return
		}
		if verr := spec.Validate(); verr != nil {
			t.Fatalf("parsed spec %q fails Validate: %v", text, verr)
		}
		c := spec.Canonical()
		spec2, err := ParseDetectorSpec(c)
		if err != nil {
			t.Fatalf("canonical %q of %q does not re-parse: %v", c, text, err)
		}
		if c2 := spec2.Canonical(); c2 != c {
			t.Fatalf("canonical is not a fixed point: %q -> %q", c, c2)
		}
	})
}

func TestDetectorRegistry(t *testing.T) {
	names := DetectorNames()
	for _, want := range []string{"mahalanobis", "ml", "paper"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("DetectorNames() = %v: missing %q", names, want)
		}
	}
	if !DetectorRegistered("") {
		t.Error("empty name must resolve to the default detector")
	}
	if DetectorRegistered("nope") {
		t.Error("unregistered name reported as registered")
	}
	_, err := NewDetector(DetectorSpec{Name: "nope"}, DetectorEnv{})
	if err == nil || !strings.Contains(err.Error(), "paper") {
		t.Errorf("unknown-detector error should list registered names, got %v", err)
	}
}

// testRTTStats is a plausible calibration for detector construction in
// unit tests: mean/std of the order the simulated radio produces.
func testRTTStats() RTTStats {
	return RTTStats{Mean: 50000, Std: 250, Min: 49200, Max: 50870, Threshold: 50900}
}

func testDetectorEnv() DetectorEnv {
	st := testRTTStats()
	return DetectorEnv{
		MaxDistError: 10,
		MaxRTT:       st.Threshold,
		Range:        150,
		RTT:          func() RTTStats { return st },
	}
}

func TestDetectorBuilderErrors(t *testing.T) {
	env := testDetectorEnv()
	cases := []struct {
		name string
		spec DetectorSpec
		env  DetectorEnv
	}{
		{"paper rejects params", DetectorSpec{Name: "paper", Params: map[string]float64{"x": 1}}, env},
		{"mahalanobis unknown param", DetectorSpec{Name: "mahalanobis", Params: map[string]float64{"cutoff": 3}}, env},
		{"mahalanobis non-positive threshold", DetectorSpec{Name: "mahalanobis", Params: map[string]float64{"threshold": 0}}, env},
		{"mahalanobis missing calibration", DetectorSpec{Name: "mahalanobis"},
			DetectorEnv{MaxDistError: 10, MaxRTT: 50900, Range: 150}},
		{"mahalanobis degenerate calibration", DetectorSpec{Name: "mahalanobis"},
			DetectorEnv{MaxDistError: 10, MaxRTT: 50900, Range: 150, RTT: func() RTTStats { return RTTStats{Mean: 50000} }}},
		{"ml non-positive bias", DetectorSpec{Name: "ml", Params: map[string]float64{"bias": -1}}, env},
		{"ml unknown param", DetectorSpec{Name: "ml", Params: map[string]float64{"mu": 1}}, env},
	}
	for _, c := range cases {
		if _, err := NewDetector(c.spec, c.env); err == nil {
			t.Errorf("%s: want error, got nil", c.name)
		}
	}
}

// TestPaperDetectorMatchesConfig is the byte-identity contract at the
// verdict level: the registered "paper" detector must agree with the
// reference Config pipeline on every observation, detecting-node and
// sensor path alike.
func TestPaperDetectorMatchesConfig(t *testing.T) {
	cfg := Config{MaxDistError: 10, MaxRTT: 50900, Range: 150}
	det, err := NewDetector(DetectorSpec{}, DetectorEnv{
		MaxDistError: cfg.MaxDistError, MaxRTT: cfg.MaxRTT, Range: cfg.Range,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := det.Spec().Canonical(); got != DefaultDetectorName {
		t.Fatalf("zero spec resolved to %q, want %q", got, DefaultDetectorName)
	}
	src := rng.New(42)
	for i := 0; i < 20000; i++ {
		o := Observation{
			OwnLoc:           geo.Point{X: src.Uniform(0, 500), Y: src.Uniform(0, 500)},
			OwnKnown:         src.Bool(0.8),
			Claimed:          geo.Point{X: src.Uniform(0, 500), Y: src.Uniform(0, 500)},
			MeasuredDist:     src.Uniform(0, 400),
			RTT:              src.Uniform(49000, 52000), // straddles MaxRTT
			WormholeDetected: src.Bool(0.3),
		}
		if got, want := det.EvaluateDetector(o), cfg.EvaluateDetector(o); got != want {
			t.Fatalf("observation %d: detector path %v, reference %v (o=%+v)", i, got, want, o)
		}
		if got, want := det.EvaluateSensor(o), cfg.EvaluateSensor(o); got != want {
			t.Fatalf("observation %d: sensor path %v, reference %v (o=%+v)", i, got, want, o)
		}
	}
}

func TestMahalanobisVerdicts(t *testing.T) {
	det, err := NewDetector(DetectorSpec{Name: "mahalanobis"}, testDetectorEnv())
	if err != nil {
		t.Fatal(err)
	}
	st := testRTTStats()
	base := Observation{
		OwnLoc:       geo.Point{},
		OwnKnown:     true,
		Claimed:      geo.Point{X: 100},
		MeasuredDist: 100,
		RTT:          st.Mean,
	}
	cases := []struct {
		name   string
		mutate func(o *Observation)
		want   Verdict
	}{
		{"on-model exchange", func(o *Observation) {}, VerdictBenign},
		{"enlarged distance", func(o *Observation) { o.MeasuredDist = 130 }, VerdictMalicious},
		{"shrunk distance", func(o *Observation) { o.MeasuredDist = 70 }, VerdictMalicious},
		{"far claim with wormhole evidence", func(o *Observation) {
			o.Claimed = geo.Point{X: 200}
			o.WormholeDetected = true
		}, VerdictWormholeReplay},
		{"far claim without evidence", func(o *Observation) {
			o.Claimed = geo.Point{X: 200}
		}, VerdictMalicious},
		{"late RTT alone", func(o *Observation) { o.RTT = st.Mean + 3.2*st.Std }, VerdictLocalReplay},
		{"sensor path wormhole", func(o *Observation) {
			o.OwnKnown = false
			o.WormholeDetected = true
		}, VerdictWormholeReplay},
		{"sensor path late RTT", func(o *Observation) {
			o.OwnKnown = false
			o.RTT = st.Mean + 3.2*st.Std
		}, VerdictLocalReplay},
		{"sensor path on-model", func(o *Observation) { o.OwnKnown = false }, VerdictBenign},
	}
	for _, c := range cases {
		o := base
		c.mutate(&o)
		if got := det.EvaluateDetector(o); got != c.want {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
	}
}

func TestMLVerdicts(t *testing.T) {
	env := testDetectorEnv()
	det, err := NewDetector(DetectorSpec{Name: "ml"}, env) // cut = bias/2 = ε = 10
	if err != nil {
		t.Fatal(err)
	}
	base := Observation{
		OwnLoc:       geo.Point{},
		OwnKnown:     true,
		Claimed:      geo.Point{X: 100},
		MeasuredDist: 100,
		RTT:          50000,
	}
	cases := []struct {
		name   string
		mutate func(o *Observation)
		want   Verdict
	}{
		{"below cut", func(o *Observation) { o.MeasuredDist = 109 }, VerdictBenign},
		{"shrinkage spends no power", func(o *Observation) { o.MeasuredDist = 60 }, VerdictBenign},
		{"above cut", func(o *Observation) { o.MeasuredDist = 111 }, VerdictMalicious},
		{"consistent but replayed", func(o *Observation) {
			o.MeasuredDist = 109
			o.RTT = env.MaxRTT + 1
		}, VerdictLocalReplay},
		{"above cut, far claim, wormhole evidence", func(o *Observation) {
			o.Claimed = geo.Point{X: 200}
			o.MeasuredDist = 211
			o.WormholeDetected = true
		}, VerdictWormholeReplay},
		{"above cut and replayed", func(o *Observation) {
			o.MeasuredDist = 111
			o.RTT = env.MaxRTT + 1
		}, VerdictLocalReplay},
	}
	for _, c := range cases {
		o := base
		c.mutate(&o)
		if got := det.EvaluateDetector(o); got != c.want {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
	}

	// λ shifts the cut: with λ=3, cut = 10 + 3·(100/3)/20 = 15, so a
	// residual of 11 is now accepted.
	shifted, err := NewDetector(DetectorSpec{Name: "ml",
		Params: map[string]float64{"bias": 20, "lambda": 3}}, env)
	if err != nil {
		t.Fatal(err)
	}
	o := base
	o.MeasuredDist = 111
	if got := shifted.EvaluateDetector(o); got != VerdictBenign {
		t.Errorf("lambda-shifted cut: got %v, want benign", got)
	}
}

// TestCalibrationStats checks the moment summary against hand-computed
// values on a tiny known sample set.
func TestCalibrationStats(t *testing.T) {
	cal := CalibrationFromSamples([]float64{1, 2, 3, 4})
	st := cal.Stats()
	if st.Mean != 2.5 {
		t.Errorf("Mean = %v, want 2.5", st.Mean)
	}
	if want := math.Sqrt(1.25); math.Abs(st.Std-want) > 1e-12 {
		t.Errorf("Std = %v, want %v", st.Std, want)
	}
	if st.Min != 1 || st.Max != 4 {
		t.Errorf("Min/Max = %v/%v, want 1/4", st.Min, st.Max)
	}
	if want := 4 + GuardBand; st.Threshold != want {
		t.Errorf("Threshold = %v, want %v", st.Threshold, want)
	}
	if got := (Calibration{}).Stats(); got != (RTTStats{}) {
		t.Errorf("empty calibration: got %+v, want zero", got)
	}
}
