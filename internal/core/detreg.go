package core

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Detector classifies completed beacon exchanges. Implementations must be
// pure functions of the observation and their construction-time
// parameters: no internal state, no randomness, no wall clock — the same
// observation always yields the same verdict, so simulation results stay
// byte-identical for any worker count.
//
// EvaluateDetector is the detecting-node pipeline (the requester knows
// its own location); EvaluateSensor is the non-beacon-node filter (it
// does not). See Config.EvaluateDetector / EvaluateSensor for the
// paper's reference semantics.
type Detector interface {
	// Spec returns the fully resolved specification that built this
	// detector (defaults filled in), whose Canonical form is the
	// detector's cache identity.
	Spec() DetectorSpec
	EvaluateDetector(o Observation) Verdict
	EvaluateSensor(o Observation) Verdict
}

// DetectorSpec selects a registered detector implementation by name plus
// its numeric parameters. The zero value selects the paper's
// consistency/replay pipeline with default parameters.
type DetectorSpec struct {
	Name   string             `json:"name"`
	Params map[string]float64 `json:"params,omitempty"`
}

// DefaultDetectorName is the registry name of the paper's pipeline, the
// meaning of a zero DetectorSpec.
const DefaultDetectorName = "paper"

// withDefault resolves the zero value to the paper detector.
func (s DetectorSpec) withDefault() DetectorSpec {
	if s.Name == "" {
		s.Name = DefaultDetectorName
	}
	return s
}

// Validate checks the spec's shape (names well-formed, parameter values
// finite). Registry membership is checked by NewDetector, not here, so
// configs can be validated without importing every implementation.
func (s DetectorSpec) Validate() error {
	s = s.withDefault()
	if !wellFormedName(s.Name) {
		return fmt.Errorf("core: detector name %q: must be non-empty [a-z0-9._-]", s.Name)
	}
	for k, v := range s.Params {
		if !wellFormedName(k) {
			return fmt.Errorf("core: detector %s: parameter name %q: must be non-empty [a-z0-9._-]", s.Name, k)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("core: detector %s: parameter %s=%v must be finite", s.Name, k, v)
		}
	}
	return nil
}

func wellFormedName(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
		default:
			return false
		}
	}
	return true
}

// Canonical renders the spec in its canonical text form — `name` or
// `name{k1=v1,k2=v2}` with parameter keys sorted and values in Go's
// shortest exact float encoding. Two specs with equal Canonical strings
// configure identical detectors, so the string is safe cache-key and
// metrics-map material. The zero spec canonicalizes to "paper".
func (s DetectorSpec) Canonical() string {
	s = s.withDefault()
	if len(s.Params) == 0 {
		return s.Name
	}
	keys := make([]string, 0, len(s.Params))
	for k := range s.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(strconv.FormatFloat(s.Params[k], 'g', -1, 64))
	}
	b.WriteByte('}')
	return b.String()
}

// param returns a parameter value or its default.
func (s DetectorSpec) param(name string, def float64) float64 {
	if v, ok := s.Params[name]; ok {
		return v
	}
	return def
}

// checkParams rejects parameters no builder reads — a misspelled
// parameter must fail loudly, not silently fall back to a default.
func (s DetectorSpec) checkParams(known ...string) error {
	for k := range s.Params {
		found := false
		for _, name := range known {
			if k == name {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("core: detector %s: unknown parameter %q (known: %s)",
				s.Name, k, strings.Join(known, ", "))
		}
	}
	return nil
}

// ParseDetectorSpec parses the canonical text form: `name` or
// `name{k=v,...}`.
func ParseDetectorSpec(text string) (DetectorSpec, error) {
	text = strings.TrimSpace(text)
	spec := DetectorSpec{}
	if text == "" {
		return spec, fmt.Errorf("core: empty detector spec")
	}
	body := ""
	if i := strings.IndexByte(text, '{'); i >= 0 {
		if !strings.HasSuffix(text, "}") {
			return spec, fmt.Errorf("core: detector spec %q: unterminated '{'", text)
		}
		spec.Name, body = text[:i], text[i+1:len(text)-1]
	} else {
		spec.Name = text
	}
	if body != "" {
		spec.Params = make(map[string]float64)
		for _, kv := range strings.Split(body, ",") {
			k, vs, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				return spec, fmt.Errorf("core: detector spec %q: parameter %q is not k=v", text, kv)
			}
			v, err := strconv.ParseFloat(strings.TrimSpace(vs), 64)
			if err != nil {
				return spec, fmt.Errorf("core: detector spec %q: parameter %s: %v", text, k, err)
			}
			if _, dup := spec.Params[strings.TrimSpace(k)]; dup {
				return spec, fmt.Errorf("core: detector spec %q: duplicate parameter %s", text, k)
			}
			spec.Params[strings.TrimSpace(k)] = v
		}
	}
	if err := spec.Validate(); err != nil {
		return spec, err
	}
	return spec, nil
}

// ParseDetectorList parses a comma-separated list of detector specs,
// splitting only at commas outside `{...}` parameter blocks (the commas
// inside a spec's parameter list do not separate specs).
func ParseDetectorList(text string) ([]DetectorSpec, error) {
	var specs []DetectorSpec
	depth, start := 0, 0
	flush := func(end int) error {
		part := strings.TrimSpace(text[start:end])
		if part == "" {
			return fmt.Errorf("core: detector list %q: empty entry", text)
		}
		spec, err := ParseDetectorSpec(part)
		if err != nil {
			return err
		}
		specs = append(specs, spec)
		return nil
	}
	for i := 0; i < len(text); i++ {
		switch text[i] {
		case '{':
			depth++
		case '}':
			depth--
			if depth < 0 {
				return nil, fmt.Errorf("core: detector list %q: unbalanced '}'", text)
			}
		case ',':
			if depth == 0 {
				if err := flush(i); err != nil {
					return nil, err
				}
				start = i + 1
			}
		}
	}
	if depth != 0 {
		return nil, fmt.Errorf("core: detector list %q: unbalanced '{'", text)
	}
	if err := flush(len(text)); err != nil {
		return nil, err
	}
	return specs, nil
}

// RTTStats summarizes a no-attack RTT calibration for detectors that
// need distribution moments rather than just the x_max threshold.
type RTTStats struct {
	// Mean and Std are the sample moments in cycles.
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
	// Min and Max are the paper's x_min / x_max.
	Min float64 `json:"min"`
	Max float64 `json:"max"`
	// Threshold is the local-replay threshold (x_max + guard band).
	Threshold float64 `json:"threshold"`
}

// DetectorEnv is everything a detector builder may calibrate against.
type DetectorEnv struct {
	// MaxDistError is ε_max (also the ranging-error bound), feet.
	MaxDistError float64
	// MaxRTT is the calibrated local-replay threshold, cycles.
	MaxRTT float64
	// Range is the radio communication range, feet.
	Range float64
	// RTT returns the no-attack RTT calibration statistics. It is a
	// closure because the measurement is expensive: builders that do not
	// need moments (the paper pipeline) must not call it, and callers
	// that have the statistics pinned supply them without re-measuring.
	RTT func() RTTStats
}

// DetectorBuilder constructs a detector from its spec (defaults already
// applied to the name, not the parameters) and the environment.
type DetectorBuilder func(spec DetectorSpec, env DetectorEnv) (Detector, error)

// detectorRegistry maps detector names to builders. Registration happens
// in package init functions; the map is read-only afterwards, so
// concurrent NewDetector calls need no locking.
var detectorRegistry = map[string]DetectorBuilder{}

// RegisterDetector adds a builder under a name. It panics on duplicate or
// malformed names: registration is an init-time programming act.
func RegisterDetector(name string, b DetectorBuilder) {
	if !wellFormedName(name) {
		panic(fmt.Sprintf("core: RegisterDetector: malformed name %q", name))
	}
	if _, dup := detectorRegistry[name]; dup {
		panic(fmt.Sprintf("core: RegisterDetector: duplicate name %q", name))
	}
	detectorRegistry[name] = b
}

// DetectorNames returns the registered detector names, sorted.
func DetectorNames() []string {
	names := make([]string, 0, len(detectorRegistry))
	for name := range detectorRegistry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// DetectorRegistered reports whether name resolves to a builder (the
// empty name resolves to the default).
func DetectorRegistered(name string) bool {
	if name == "" {
		name = DefaultDetectorName
	}
	_, ok := detectorRegistry[name]
	return ok
}

// NewDetector builds the detector a spec selects. The zero spec builds
// the paper pipeline.
func NewDetector(spec DetectorSpec, env DetectorEnv) (Detector, error) {
	spec = spec.withDefault()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	b, ok := detectorRegistry[spec.Name]
	if !ok {
		return nil, fmt.Errorf("core: unknown detector %q (registered: %s)",
			spec.Name, strings.Join(DetectorNames(), ", "))
	}
	return b(spec, env)
}
