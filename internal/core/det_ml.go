package core

import (
	"fmt"
	"math"
)

func init() {
	RegisterDetector("ml", newMLDetector)
}

// mlDetector is a maximum-likelihood test for distance enlargement under
// the noisy-channel model, after the position-verification framing of
// arXiv:1105.0668: the distance residual x = measured − calculated is
// noise N under H0 and N + bias under H1 (an attacker enlarging the
// measured distance to displace the location estimate). With symmetric
// noise of variance σ², the likelihood-ratio test accepts H1 when
//
//	x > bias/2 + λ·σ²/bias
//
// where λ = ln(P(H0)/P(H1)) weighs the priors (λ = 0 — equal priors —
// by default, which puts the cut midway between the hypothesis means).
// The test is one-sided: enlargement is the paper's attack of interest
// (shrinkage runs into the same cut mirrored, which the paper's |·|
// test covers but an ML test tuned for enlargement deliberately spends
// no power on).
//
// Replay attribution is the paper's: the wormhole filter, then the
// calibrated x_max RTT threshold, both unchanged — only the consistency
// decision is replaced.
type mlDetector struct {
	spec   DetectorSpec
	cut    float64
	maxRTT float64
	rng    float64
}

func newMLDetector(spec DetectorSpec, env DetectorEnv) (Detector, error) {
	if err := spec.checkParams("bias", "lambda"); err != nil {
		return nil, err
	}
	if env.MaxDistError <= 0 {
		return nil, fmt.Errorf("core: detector ml: MaxDistError %v must be positive", env.MaxDistError)
	}
	if env.MaxRTT <= 0 {
		return nil, fmt.Errorf("core: detector ml: MaxRTT %v must be positive", env.MaxRTT)
	}
	// The assumed enlargement: 2ε by default, the smallest bias the
	// paper's own test catches with certainty.
	bias := spec.param("bias", 2*env.MaxDistError)
	if bias <= 0 {
		return nil, fmt.Errorf("core: detector ml: bias %v must be positive", bias)
	}
	lambda := spec.param("lambda", 0)
	sigma := env.MaxDistError / math.Sqrt(3)
	return mlDetector{
		spec:   spec,
		cut:    bias/2 + lambda*sigma*sigma/bias,
		maxRTT: env.MaxRTT,
		rng:    env.Range,
	}, nil
}

func (d mlDetector) Spec() DetectorSpec { return d.spec }

func (d mlDetector) EvaluateDetector(o Observation) Verdict {
	if !o.OwnKnown {
		return d.EvaluateSensor(o)
	}
	x := o.MeasuredDist - o.OwnLoc.Dist(o.Claimed)
	if x <= d.cut {
		// Accepted by the likelihood test — but a replayed consistent
		// signal is still discarded, exactly as in the paper pipeline.
		if o.RTT > d.maxRTT {
			return VerdictLocalReplay
		}
		return VerdictBenign
	}
	if o.OwnLoc.Dist(o.Claimed) > d.rng && o.WormholeDetected {
		return VerdictWormholeReplay
	}
	if o.RTT > d.maxRTT {
		return VerdictLocalReplay
	}
	return VerdictMalicious
}

func (d mlDetector) EvaluateSensor(o Observation) Verdict {
	if o.WormholeDetected {
		return VerdictWormholeReplay
	}
	if o.RTT > d.maxRTT {
		return VerdictLocalReplay
	}
	return VerdictBenign
}
