package core

import (
	"fmt"
	"math"
)

func init() {
	RegisterDetector("mahalanobis", newMahalanobisDetector)
}

// mahalanobisDetector scores each exchange by the Mahalanobis distance of
// its (distance residual, RTT residual) pair under the no-attack noise
// model, in the spirit of the cheating-anchor identification of
// arXiv:1412.2857: both channels are standardized and combined into
// D² = (Δd/σ_d)² + ((RTT-μ)/σ_rtt)², and the exchange is flagged when
// D > threshold.
//
// The distance residual Δd = measured − calculated is Uniform(−ε, ε)
// under no attack, so σ_d = ε/√3. The RTT moments come from the same
// no-attack calibration the paper's x_max threshold does (DetectorEnv.RTT).
//
// Attribution of a flagged exchange mirrors the paper's order: the
// wormhole filter first (far claimed origin + wormhole detector), then a
// standardized RTT above the threshold on its own is a local replay
// (replays only ever lengthen the RTT), and what remains accuses the
// target. Unlike the paper's hard ε / x_max cuts, the elliptical boundary
// trades a small, tunable false-alert rate for sensitivity to subtle
// attacks that stay inside the per-channel bounds.
type mahalanobisDetector struct {
	spec    DetectorSpec
	t, t2   float64 // threshold and its square
	sigmaD  float64
	rttMean float64
	rttStd  float64
	rng     float64 // radio range, for the wormhole filter
}

// mahalanobisDefaultThreshold is the default flag boundary in standard
// deviations. Both residuals are bounded (uniform and Irwin-Hall), so 3σ
// leaves only the far Irwin-Hall shoulder as a false-alert channel
// (≈1.5e-3 per exchange; see analysis.MahalanobisFlagProb).
const mahalanobisDefaultThreshold = 3.0

func newMahalanobisDetector(spec DetectorSpec, env DetectorEnv) (Detector, error) {
	if err := spec.checkParams("threshold"); err != nil {
		return nil, err
	}
	t := spec.param("threshold", mahalanobisDefaultThreshold)
	if t <= 0 {
		return nil, fmt.Errorf("core: detector mahalanobis: threshold %v must be positive", t)
	}
	if env.MaxDistError <= 0 {
		return nil, fmt.Errorf("core: detector mahalanobis: MaxDistError %v must be positive", env.MaxDistError)
	}
	if env.RTT == nil {
		return nil, fmt.Errorf("core: detector mahalanobis: needs an RTT calibration")
	}
	stats := env.RTT()
	if stats.Std <= 0 {
		return nil, fmt.Errorf("core: detector mahalanobis: degenerate RTT calibration (std %v)", stats.Std)
	}
	// Pin the resolved threshold into the spec so the canonical identity
	// distinguishes explicit parameter choices from the default.
	return mahalanobisDetector{
		spec:    spec,
		t:       t,
		t2:      t * t,
		sigmaD:  env.MaxDistError / math.Sqrt(3),
		rttMean: stats.Mean,
		rttStd:  stats.Std,
		rng:     env.Range,
	}, nil
}

func (d mahalanobisDetector) Spec() DetectorSpec { return d.spec }

// rttScore is the standardized RTT residual.
func (d mahalanobisDetector) rttScore(o Observation) float64 {
	return (o.RTT - d.rttMean) / d.rttStd
}

func (d mahalanobisDetector) EvaluateDetector(o Observation) Verdict {
	if !o.OwnKnown {
		return d.EvaluateSensor(o)
	}
	calc := o.OwnLoc.Dist(o.Claimed)
	du := (o.MeasuredDist - calc) / d.sigmaD
	q := d.rttScore(o)
	if du*du+q*q <= d.t2 {
		return VerdictBenign
	}
	if calc > d.rng && o.WormholeDetected {
		return VerdictWormholeReplay
	}
	if q > d.t {
		return VerdictLocalReplay
	}
	return VerdictMalicious
}

func (d mahalanobisDetector) EvaluateSensor(o Observation) Verdict {
	if o.WormholeDetected {
		return VerdictWormholeReplay
	}
	if d.rttScore(o) > d.t {
		return VerdictLocalReplay
	}
	return VerdictBenign
}
