package core

func init() {
	RegisterDetector(DefaultDetectorName, newPaperDetector)
}

// paperDetector is the paper's §2.1–2.2 pipeline behind the Detector
// interface. It delegates verbatim to Config.EvaluateDetector /
// EvaluateSensor, so the registry's default is byte-identical to the
// pre-registry pipeline by construction.
type paperDetector struct {
	spec DetectorSpec
	cfg  Config
}

func newPaperDetector(spec DetectorSpec, env DetectorEnv) (Detector, error) {
	if err := spec.checkParams(); err != nil {
		return nil, err
	}
	cfg := Config{MaxDistError: env.MaxDistError, MaxRTT: env.MaxRTT, Range: env.Range}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return paperDetector{spec: spec, cfg: cfg}, nil
}

func (d paperDetector) Spec() DetectorSpec { return d.spec }

func (d paperDetector) EvaluateDetector(o Observation) Verdict {
	return d.cfg.EvaluateDetector(o)
}

func (d paperDetector) EvaluateSensor(o Observation) Verdict {
	return d.cfg.EvaluateSensor(o)
}
