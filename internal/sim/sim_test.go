package sim

import (
	"errors"
	"testing"

	"beaconsec/internal/rng"
)

func TestTimeConversions(t *testing.T) {
	tests := []struct {
		name string
		got  Time
		want Time
	}{
		{"one second", Seconds(1), CPUHz},
		{"one millisecond", Millis(1), CPUHz / 1000},
		{"one microsecond", Micros(1), Time(7)}, // 7.3728 truncates to 7
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.got != tt.want {
				t.Errorf("got %d cycles, want %d", tt.got, tt.want)
			}
		})
	}
}

func TestTimeSecondsRoundTrip(t *testing.T) {
	if got := Seconds(2.5).Seconds(); got < 2.4999 || got > 2.5001 {
		t.Errorf("Seconds round trip = %v", got)
	}
}

func TestTimeString(t *testing.T) {
	s := Time(CPUHz).String()
	if s == "" {
		t.Error("empty String()")
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	s := New()
	var order []int
	s.At(30, func() { order = append(order, 3) })
	s.At(10, func() { order = append(order, 1) })
	s.At(20, func() { order = append(order, 2) })
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("events fired in order %v", order)
	}
	if s.Now() != 30 {
		t.Errorf("clock at %v after run, want 30", s.Now())
	}
}

func TestFIFOAtEqualTimes(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { order = append(order, i) })
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-time events fired out of scheduling order: %v", order)
		}
	}
}

func TestRandomOrderIsSorted(t *testing.T) {
	// Property: regardless of insertion order, execution times are
	// non-decreasing.
	src := rng.New(77)
	s := New()
	var times []Time
	for i := 0; i < 1000; i++ {
		at := Time(src.Intn(10000))
		s.At(at, func() { times = append(times, s.Now()) })
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(times); i++ {
		if times[i] < times[i-1] {
			t.Fatalf("time went backwards at event %d: %v < %v", i, times[i], times[i-1])
		}
	}
	if len(times) != 1000 {
		t.Errorf("fired %d events, want 1000", len(times))
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	s := New()
	var at Time
	s.At(100, func() {
		s.After(50, func() { at = s.Now() })
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 150 {
		t.Errorf("After fired at %v, want 150", at)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New()
	s.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.At(50, func() {})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	h := s.At(10, func() { fired = true })
	if !h.Cancel() {
		t.Error("Cancel returned false for pending event")
	}
	if h.Cancel() {
		t.Error("second Cancel returned true")
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("cancelled event fired")
	}
	if s.Now() != 0 {
		// Cancelled events do not advance the clock when skipped from
		// the head of the queue via Step's drain loop, but the clock may
		// legitimately stay at 0 since nothing executed.
		t.Logf("clock = %v after cancelled-only run", s.Now())
	}
}

func TestCancelZeroHandle(t *testing.T) {
	var h Handle
	if h.Cancel() {
		t.Error("zero Handle Cancel returned true")
	}
}

func TestStop(t *testing.T) {
	s := New()
	count := 0
	for i := 0; i < 10; i++ {
		s.At(Time(i), func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	err := s.Run()
	if !errors.Is(err, ErrStopped) {
		t.Errorf("Run = %v, want ErrStopped", err)
	}
	if count != 3 {
		t.Errorf("executed %d events before stop, want 3", count)
	}
	if s.Pending() != 7 {
		t.Errorf("Pending = %d, want 7", s.Pending())
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	var fired []Time
	for _, at := range []Time{5, 10, 15, 20} {
		at := at
		s.At(at, func() { fired = append(fired, at) })
	}
	s.RunUntil(12)
	if len(fired) != 2 {
		t.Fatalf("RunUntil(12) fired %v", fired)
	}
	if s.Now() != 12 {
		t.Errorf("clock = %v after RunUntil(12)", s.Now())
	}
	s.RunUntil(100)
	if len(fired) != 4 {
		t.Errorf("second RunUntil fired total %v", fired)
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	s := New()
	s.RunUntil(500)
	if s.Now() != 500 {
		t.Errorf("idle RunUntil left clock at %v", s.Now())
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	s := New()
	if s.Step() {
		t.Error("Step on empty queue returned true")
	}
}

func TestFiredCounter(t *testing.T) {
	s := New()
	for i := 0; i < 5; i++ {
		s.At(Time(i), func() {})
	}
	h := s.At(9, func() {})
	h.Cancel()
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Fired() != 5 {
		t.Errorf("Fired = %d, want 5 (cancelled events don't count)", s.Fired())
	}
}

func TestReentrantScheduling(t *testing.T) {
	// An event chain where each event schedules the next models protocol
	// timers; 1000 links must run to completion.
	s := New()
	count := 0
	var step func()
	step = func() {
		count++
		if count < 1000 {
			s.After(3, step)
		}
	}
	s.At(0, step)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 1000 {
		t.Errorf("chain executed %d links", count)
	}
	if s.Now() != Time(999*3) {
		t.Errorf("clock = %v, want %v", s.Now(), Time(999*3))
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := New()
		for j := 0; j < 1000; j++ {
			s.At(Time(j%97), func() {})
		}
		if err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
