package sim

import "testing"

// TestStaleHandleAfterRecycle pins the generation-counter contract: a
// Handle to an event that already fired must become inert once the
// event struct is recycled for a later At — cancelling through it must
// neither report success nor kill the struct's new occupant.
func TestStaleHandleAfterRecycle(t *testing.T) {
	s := New()
	firstFired := false
	h1 := s.At(10, func() { firstFired = true })
	if !s.Step() {
		t.Fatal("Step fired nothing")
	}
	if !firstFired {
		t.Fatal("first event did not fire")
	}

	// The freshly recycled struct is reused by the next At.
	secondFired := false
	h2 := s.At(20, func() { secondFired = true })
	if h2.ev != h1.ev {
		t.Fatalf("event struct was not recycled (free list broken?)")
	}
	if h1.Cancel() {
		t.Fatal("stale Handle cancelled its successor's event")
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !secondFired {
		t.Fatal("second event did not fire after stale Cancel attempt")
	}

	// And the successor's own Handle is now stale too.
	if h2.Cancel() {
		t.Fatal("Handle to a fired event reported a successful Cancel")
	}
}

// TestCancelledEventRecycles pins that cancel-then-pop also returns the
// struct to the free list with a bumped generation.
func TestCancelledEventRecycles(t *testing.T) {
	s := New()
	h := s.At(5, func() { t.Fatal("cancelled event fired") })
	if !h.Cancel() {
		t.Fatal("Cancel failed on pending event")
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	fired := false
	h2 := s.At(6, func() { fired = true })
	if h2.ev != h.ev {
		t.Fatal("cancelled event struct was not recycled")
	}
	if h.Cancel() {
		t.Fatal("stale Handle to a cancelled event cancelled its successor")
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("successor of a cancelled event did not fire")
	}
}

// TestScheduleFireZeroAlloc pins the free-list payoff: once the queue
// and free list are warm, a schedule→fire cycle performs zero heap
// allocations.
func TestScheduleFireZeroAlloc(t *testing.T) {
	s := New()
	count := 0
	fn := func() { count++ }
	cycle := func() {
		s.At(s.Now()+1, fn)
		s.Step()
	}
	for i := 0; i < 10; i++ { // warm the free list
		cycle()
	}
	if avg := testing.AllocsPerRun(100, cycle); avg != 0 {
		t.Fatalf("steady-state schedule+fire allocates %.1f times per op, want 0", avg)
	}
	if count == 0 {
		t.Fatal("events did not fire")
	}
}

// BenchmarkScheduleFire measures the steady-state kernel hot path: one
// At plus the Step that fires it, on a warm scheduler.
func BenchmarkScheduleFire(b *testing.B) {
	s := New()
	fn := func() {}
	for i := 0; i < 10; i++ {
		s.At(s.Now()+1, fn)
		s.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.At(s.Now()+1, fn)
		s.Step()
	}
}

// BenchmarkScheduleFireDepth measures the same cycle with a standing
// queue of 1000 pending events, so the heap sift cost is realistic for
// a mid-run protocol simulation.
func BenchmarkScheduleFireDepth(b *testing.B) {
	s := New()
	fn := func() {}
	for i := 0; i < 1000; i++ {
		s.At(s.Now()+Time(1000+i), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.At(s.Now()+1, fn)
		s.Step()
	}
}
