package sim

import (
	"math/bits"
	"slices"
)

// wheelQueue is a hierarchical timing wheel: 6 levels of 4096 slots each,
// covering the full 64-bit cycle range (level l spans 2^(12l) cycles per
// slot). An event at absolute time `at` is filed at the level of the
// highest bit in which `at` differs from the wheel's serving cursor `cur`
// — so near-future events land in the bottom rung (level 0, one exact
// cycle per slot) and far-future events in coarse overflow rungs that are
// re-filed ("cascaded") to finer levels as the cursor approaches them.
// The 12-bit rung width is a cascade trade: most MAC/phy timer horizons
// fit in one or two rungs, so an event is usually filed once and served,
// never touched cold in between; the price is a 64-word occupancy bitmap
// per level, whose next-slot scan is a handful of TrailingZeros64 because
// pending events cluster in few words.
//
// Schedule and cancel are O(1); pop is amortized O(1) for short-horizon
// timer distributions (an event cascades once per nonzero base-4096 digit
// of its remaining delay, at most 5 times). Slot membership is an
// intrusive singly-linked list through event.next, so a pending event
// costs zero additional allocations.
//
// Determinism contract (DESIGN.md §13): pops are in ascending (at, seq)
// order, byte-identical to the eventQueue min-heap oracle. Two mechanisms
// make that hold:
//
//   - Level-0 slots are single-time: an event is at level 0 iff its time
//     differs from cur only in the low 12 bits, and its slot index IS
//     those bits, so every event in one level-0 slot shares one exact
//     `at`. Serving a slot therefore only needs to order by seq.
//   - Cascading prepends to slot lists in arbitrary order, so the served
//     slot is sorted by seq into the ready buffer before popping
//     (the "sorted bottom rung" of a ladder queue). Events pushed at the
//     currently-serving time while the buffer drains have seqs larger
//     than everything in flight and are served in a later sorted batch.
type wheelQueue struct {
	// cur is the serving cursor: every queued event has at ≥ cur, except
	// transiently inside rewind. Slot placement is relative to cur.
	cur uint64
	// ready holds the current level-0 slot's events in ascending seq;
	// ready[head:] are unserved. The backing array is reused across slots
	// so steady-state serving does not allocate.
	ready []*event
	head  int
	n     int64 // queued events, including cancelled-but-unpopped
	// occupied[l] has bit s (word s/64, bit s%64) set iff slot[l][s] is
	// non-empty, so finding the next occupied slot is a few
	// TrailingZeros64 per level.
	occupied [wheelLevels][wheelWords]uint64
	slot     [wheelLevels][wheelSlots]*event
}

const (
	wheelBits   = 12
	wheelSlots  = 1 << wheelBits // 4096
	wheelMask   = wheelSlots - 1
	wheelWords  = wheelSlots / 64                  // occupancy words per level
	wheelLevels = (64 + wheelBits - 1) / wheelBits // 6, covers all 64 bits
)

func newWheelQueue() *wheelQueue {
	return &wheelQueue{ready: make([]*event, 0, initialQueueCap)}
}

// levelOf returns the wheel level for a nonzero at⊕cur difference: the
// level containing the highest differing bit.
func levelOf(x uint64) int {
	return (bits.Len64(x) - 1) / wheelBits
}

func (w *wheelQueue) push(ev *event) {
	ev.index = 0 // queued marker for Handle.Cancel
	w.n++
	if uint64(ev.at) < w.cur {
		// The cursor overshot this time: nextAt advances cur to the
		// minimum pending event, which can exceed the clock after
		// RunUntil stops at an earlier deadline. Re-file the affected
		// rungs with the cursor moved back (rare; see rewind).
		w.rewind(uint64(ev.at))
	}
	w.place(ev)
}

// place files ev into the slot its time selects relative to cur. It must
// only be called with at ≥ cur.
func (w *wheelQueue) place(ev *event) {
	at := uint64(ev.at)
	l, s := 0, w.cur&wheelMask
	if x := at ^ w.cur; x != 0 {
		l = levelOf(x)
		s = (at >> (uint(l) * wheelBits)) & wheelMask
	}
	ev.next = w.slot[l][s]
	w.slot[l][s] = ev
	w.occupied[l][s>>6] |= 1 << (s & 63)
}

// nextOccupied returns the first occupied slot ≥ from at level l, or -1
// when the rest of the level is empty.
func (w *wheelQueue) nextOccupied(l int, from uint64) int {
	word := from >> 6
	m := w.occupied[l][word] &^ (1<<(from&63) - 1)
	for {
		if m != 0 {
			return int(word<<6) + bits.TrailingZeros64(m)
		}
		word++
		if word >= wheelWords {
			return -1
		}
		m = w.occupied[l][word]
	}
}

// ensureReady makes ready[head] the minimum queued event, advancing the
// cursor and cascading overflow rungs as needed. It reports false when
// the queue is empty.
func (w *wheelQueue) ensureReady() bool {
	for w.head >= len(w.ready) {
		if w.n == 0 {
			return false
		}
		w.advance()
	}
	return true
}

// advance finds the first occupied slot at or after the cursor, scanning
// levels bottom-up. A level-0 hit becomes the next ready batch; a coarser
// hit moves the cursor to the slot's start and cascades its events down
// (each strictly decreases its level, so this terminates).
func (w *wheelQueue) advance() {
	for l := 0; l < wheelLevels; l++ {
		shift := uint(l) * wheelBits
		curSlot := (w.cur >> shift) & wheelMask
		sl := w.nextOccupied(l, curSlot)
		if sl < 0 {
			continue
		}
		s := uint64(sl)
		head := w.slot[l][s]
		w.slot[l][s] = nil
		w.occupied[l][s>>6] &^= 1 << (s & 63)
		if l == 0 {
			// Bottom rung: a single-time slot. cur keeps its high bits;
			// the slot index is exactly the served time's low bits.
			w.cur = w.cur&^wheelMask | s
			w.ready = w.ready[:0]
			w.head = 0
			for ev := head; ev != nil; {
				next := ev.next
				ev.next = nil
				w.ready = append(w.ready, ev)
				ev = next
			}
			if len(w.ready) > 1 {
				slices.SortFunc(w.ready, func(a, b *event) int {
					switch {
					case a.seq < b.seq:
						return -1
					case a.seq > b.seq:
						return 1
					default:
						return 0
					}
				})
			}
			return
		}
		if s != curSlot {
			// Jump the cursor to the slot's start: every event in the
			// slot has these high bits and arbitrary lower bits, so all
			// remain ≥ cur after the jump.
			span := uint64(1) << (shift + wheelBits)
			w.cur = w.cur&^(span-1) | s<<shift
		}
		// Cascade: re-filing relative to the new cursor strictly lowers
		// each event's level (its bits at this level now match cur's).
		for ev := head; ev != nil; {
			next := ev.next
			ev.next = nil
			w.place(ev)
			ev = next
		}
		return
	}
	panic("sim: wheel invariant broken: n > 0 but no occupied slot")
}

// rewind moves the cursor back to at < cur. Levels at or above the level
// where at and cur diverge keep valid placements (their slot bits are
// relative to high cursor bits that do not change); everything below —
// plus any unserved ready events — is re-filed relative to the new
// cursor. This is the rare path: it only runs when a push lands between
// the clock and an overshot cursor, never in steady-state serving.
func (w *wheelQueue) rewind(at uint64) {
	div := levelOf(at ^ w.cur)
	var batch []*event
	for l := 0; l < div; l++ {
		for word := 0; word < wheelWords; word++ {
			for m := w.occupied[l][word]; m != 0; m &= m - 1 {
				s := word<<6 + bits.TrailingZeros64(m)
				for ev := w.slot[l][s]; ev != nil; {
					next := ev.next
					ev.next = nil
					batch = append(batch, ev)
					ev = next
				}
				w.slot[l][s] = nil
			}
			w.occupied[l][word] = 0
		}
	}
	batch = append(batch, w.ready[w.head:]...)
	clear(w.ready) // drop stale refs so recycled events stay collectable
	w.ready = w.ready[:0]
	w.head = 0
	w.cur = at
	for _, ev := range batch {
		w.place(ev)
	}
}

func (w *wheelQueue) pop() *event {
	if !w.ensureReady() {
		panic("sim: pop from empty wheel queue")
	}
	ev := w.ready[w.head]
	w.ready[w.head] = nil
	w.head++
	w.n--
	ev.index = -1
	return ev
}

func (w *wheelQueue) size() int64 { return w.n }

func (w *wheelQueue) nextAt() (Time, bool) {
	if !w.ensureReady() {
		return 0, false
	}
	return w.ready[w.head].at, true
}
