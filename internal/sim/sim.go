// Package sim is a deterministic discrete-event simulation kernel with a
// cycle-resolution virtual clock.
//
// It replaces the TinyOS Nido simulator the paper used: every protocol
// action in this repository — radio byte shifts, MAC backoffs, timer
// expirations, base-station processing — is an event on one Scheduler.
// Time is measured in CPU clock cycles of a 7.3728 MHz MICA2-class mote,
// because the paper's round-trip-time detector (Figure 4) is calibrated in
// CPU cycles.
//
// Determinism: events at equal times fire in scheduling order (FIFO),
// which combined with the seeded rng package makes every run reproducible.
// The scheduler offers two event-queue implementations behind one
// interface — a binary min-heap and a hierarchical timing wheel — pinned
// to the identical (at, seq) total order (see DESIGN.md §13), so queue
// choice is a performance knob, never a behavioral one.
package sim

import (
	"errors"
	"fmt"

	"beaconsec/internal/metrics"
)

// Time is a point in virtual time, in CPU clock cycles.
type Time uint64

// CPUHz is the simulated mote CPU frequency (MICA2 ATmega128L).
const CPUHz = 7_372_800

// Duration helpers.

// Millis converts milliseconds of wall time to cycles.
func Millis(ms float64) Time { return Time(ms * CPUHz / 1e3) }

// Micros converts microseconds of wall time to cycles.
func Micros(us float64) Time { return Time(us * CPUHz / 1e6) }

// Seconds converts seconds of wall time to cycles.
func Seconds(s float64) Time { return Time(s * CPUHz) }

// Float returns t as a float64 cycle count.
func (t Time) Float() float64 { return float64(t) }

// Seconds returns t in seconds of simulated wall time.
func (t Time) Seconds() float64 { return float64(t) / CPUHz }

// String implements fmt.Stringer with both cycles and milliseconds.
func (t Time) String() string {
	return fmt.Sprintf("%dcy (%.3fms)", uint64(t), float64(t)/CPUHz*1e3)
}

// ErrStopped is returned by Run when the scheduler was stopped explicitly
// before the event queue drained.
var ErrStopped = errors.New("sim: scheduler stopped")

// event is a scheduled callback. Events are pooled: after firing (or
// after a cancelled event is popped) the struct returns to the
// scheduler's free list with its generation bumped, so a Handle held
// across the recycle can never cancel the event's next occupant.
type event struct {
	at  Time
	seq uint64 // tie-break: FIFO among equal times
	gen uint64 // recycle generation, checked by Handle.Cancel
	fn  func()
	// index is ≥ 0 while queued and -1 once popped. The heap stores its
	// slot here; the wheel only distinguishes queued from popped.
	index int
	// next chains events in a timing-wheel slot (intrusive list, so the
	// wheel never allocates per pending event). Unused by the heap.
	next *event
}

// Handle identifies a scheduled event so it can be cancelled. A Handle
// is pinned to the event's generation: once the event fires and its
// struct is recycled for a later At, the stale Handle becomes inert.
type Handle struct {
	ev  *event
	s   *Scheduler
	gen uint64
}

// Cancel removes the event from the queue if it has not fired yet and
// reports whether it was cancelled.
func (h Handle) Cancel() bool {
	if h.ev == nil || h.ev.gen != h.gen || h.ev.index < 0 || h.ev.fn == nil {
		return false
	}
	h.ev.fn = nil
	if h.s != nil {
		h.s.cancelled++
	}
	return true
}

// queue is the event-queue contract the Scheduler drives. Both
// implementations deliver events in ascending (at, seq) order — the
// determinism contract — and keep cancelled events enqueued until popped
// (lazy cancellation), so size() and pop sequences are identical across
// implementations.
type queue interface {
	// push enqueues ev (setting ev.index ≥ 0). ev.at may lie before a
	// previously popped event's time only if the scheduler allows it
	// (RunUntil advances the clock past pending events' times, never the
	// reverse), but implementations must accept any at ≥ the last pop.
	push(ev *event)
	// pop removes and returns the minimum event by (at, seq), setting its
	// index to -1. Call only when size() > 0.
	pop() *event
	// size returns the number of queued events, including cancelled ones
	// not yet popped.
	size() int64
	// nextAt returns the time of the minimum queued event. ok is false
	// when the queue is empty.
	nextAt() (t Time, ok bool)
}

// eventQueue is a binary min-heap ordered by (at, seq). It is typed
// (not container/heap) so sift operations avoid interface dispatch on
// the kernel's hottest path. It is the oracle implementation the timing
// wheel is pinned against.
type eventQueue []*event

func (q eventQueue) less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) push(ev *event) {
	ev.index = len(*q)
	*q = append(*q, ev)
	// Sift up.
	h := *q
	i := ev.index
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (q *eventQueue) pop() *event {
	h := *q
	n := len(h) - 1
	h.swap(0, n)
	ev := h[n]
	h[n] = nil
	ev.index = -1
	h = h[:n]
	*q = h
	// Sift down from the root.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.swap(i, smallest)
		i = smallest
	}
	return ev
}

func (q *eventQueue) size() int64 { return int64(len(*q)) }

func (q *eventQueue) nextAt() (Time, bool) {
	if len(*q) == 0 {
		return 0, false
	}
	return (*q)[0].at, true
}

// QueueKind selects the Scheduler's event-queue implementation.
type QueueKind uint8

const (
	// QueueAuto picks the heap for small schedules and the timing wheel
	// when Config.PendingHint predicts a large standing event population
	// (≥ autoWheelThreshold pending events).
	QueueAuto QueueKind = iota
	// QueueHeap forces the binary min-heap (the oracle).
	QueueHeap
	// QueueWheel forces the hierarchical timing wheel.
	QueueWheel
)

// autoWheelThreshold is the PendingHint at which QueueAuto switches from
// the heap to the wheel: around a few thousand standing events the heap's
// O(log n) sifts lose to the wheel's O(1) slot filing.
const autoWheelThreshold = 4096

// String implements fmt.Stringer.
func (k QueueKind) String() string {
	switch k {
	case QueueAuto:
		return "auto"
	case QueueHeap:
		return "heap"
	case QueueWheel:
		return "wheel"
	default:
		return fmt.Sprintf("QueueKind(%d)", uint8(k))
	}
}

// ParseQueueKind converts a flag value ("auto", "heap", "wheel") to a
// QueueKind.
func ParseQueueKind(s string) (QueueKind, error) {
	switch s {
	case "auto", "":
		return QueueAuto, nil
	case "heap":
		return QueueHeap, nil
	case "wheel":
		return QueueWheel, nil
	default:
		return QueueAuto, fmt.Errorf("sim: unknown queue kind %q (want auto, heap or wheel)", s)
	}
}

// Config parameterizes a Scheduler. The zero value reproduces New():
// auto queue selection with no hint, which is the heap.
type Config struct {
	// Queue selects the event-queue implementation.
	Queue QueueKind
	// PendingHint is the expected steady-state number of pending events;
	// QueueAuto selects the wheel at or above autoWheelThreshold. Zero
	// means unknown.
	PendingHint int64
	// Depth, when non-nil, observes the queue depth after every schedule
	// — the standing event population histogram. Nil disables (no cost
	// beyond one predictable branch).
	Depth *metrics.Histogram
}

// DepthHistogram returns a histogram sized for Config.Depth observations:
// geometric buckets from 1 to ~8M pending events, covering everything
// from paper-scale runs to metro-scale standing populations.
func DepthHistogram() *metrics.Histogram {
	return metrics.NewHistogram(metrics.ExpBounds(1, 2, 24)...)
}

// Scheduler owns the virtual clock and the event queue. The zero value is
// ready to use (heap queue). Scheduler is not safe for concurrent use: the
// simulation is single-threaded by design (determinism), and experiments
// parallelize across independent Scheduler instances instead.
type Scheduler struct {
	now        Time
	seq        uint64
	q          queue
	free       []*event // recycled event structs, see event.gen
	stopped    bool
	fired      uint64
	cancelled  uint64
	maxPending int64
	depth      *metrics.Histogram
}

// initialQueueCap pre-sizes the event queue and free list so a typical
// protocol run reaches its steady state without growing either slice.
const initialQueueCap = 256

// New returns a Scheduler starting at time zero, using the min-heap queue.
func New() *Scheduler {
	return NewWithConfig(Config{Queue: QueueHeap})
}

// NewWithConfig returns a Scheduler starting at time zero with the given
// queue selection and instrumentation.
func NewWithConfig(cfg Config) *Scheduler {
	kind := cfg.Queue
	if kind == QueueAuto {
		if cfg.PendingHint >= autoWheelThreshold {
			kind = QueueWheel
		} else {
			kind = QueueHeap
		}
	}
	// PendingHint also presizes the free list (and the heap's slice) so a
	// metro-scale run reaches steady state without reallocation churn.
	capHint := int64(initialQueueCap)
	if cfg.PendingHint > capHint {
		capHint = min(cfg.PendingHint, 1<<22)
	}
	var q queue
	if kind == QueueWheel {
		q = newWheelQueue()
	} else {
		eq := make(eventQueue, 0, capHint)
		q = &eq
	}
	return &Scheduler{
		q:     q,
		free:  make([]*event, 0, capHint),
		depth: cfg.Depth,
	}
}

// lazyQueue returns the scheduler's queue, initializing a heap for a
// zero-value Scheduler.
func (s *Scheduler) lazyQueue() queue {
	if s.q == nil {
		eq := make(eventQueue, 0, initialQueueCap)
		s.q = &eq
	}
	return s.q
}

// recycle returns a popped event to the free list. Bumping the
// generation first invalidates every outstanding Handle to it.
func (s *Scheduler) recycle(ev *event) {
	ev.gen++
	ev.fn = nil
	s.free = append(s.free, ev)
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Fired returns the number of events executed so far, a cheap progress and
// test metric.
func (s *Scheduler) Fired() uint64 { return s.fired }

// Pending returns the number of events still queued. It is an int64 so
// million-event schedules cannot truncate on 32-bit builds.
func (s *Scheduler) Pending() int64 {
	if s.q == nil {
		return 0
	}
	return s.q.size()
}

// Stats is the scheduler's counter snapshot, for run telemetry.
type Stats struct {
	// Events is the number of events executed (same as Fired).
	Events uint64 `json:"events"`
	// Scheduled is the number of events ever enqueued (seq allocations).
	Scheduled uint64 `json:"scheduled"`
	// Cancelled is the number of events removed via Handle.Cancel before
	// firing.
	Cancelled uint64 `json:"cancelled"`
	// MaxPending is the high-water mark of the event queue. int64 for the
	// same 32-bit-safety reason as Pending.
	MaxPending int64 `json:"max_pending"`
	// VirtualCycles is the current virtual clock, in CPU cycles.
	VirtualCycles uint64 `json:"virtual_cycles"`
}

// Stats returns the scheduler's counter snapshot.
func (s *Scheduler) Stats() Stats {
	return Stats{
		Events:        s.fired,
		Scheduled:     s.seq,
		Cancelled:     s.cancelled,
		MaxPending:    s.maxPending,
		VirtualCycles: uint64(s.now),
	}
}

// Merge adds another scheduler's counters field-wise; the virtual clock
// and queue high-water mark keep the maximum (merged runs are parallel
// universes, not one longer run).
func (st *Stats) Merge(o Stats) {
	st.Events += o.Events
	st.Scheduled += o.Scheduled
	st.Cancelled += o.Cancelled
	if o.MaxPending > st.MaxPending {
		st.MaxPending = o.MaxPending
	}
	if o.VirtualCycles > st.VirtualCycles {
		st.VirtualCycles = o.VirtualCycles
	}
}

// At schedules fn to run at absolute time at. Scheduling in the past
// (at < Now) panics: it is always a protocol bug.
func (s *Scheduler) At(at Time, fn func()) Handle {
	if at < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, s.now))
	}
	var ev *event
	if n := len(s.free); n > 0 {
		ev = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		ev.at = at
		ev.seq = s.seq
		ev.fn = fn
	} else {
		ev = &event{at: at, seq: s.seq, fn: fn}
	}
	s.seq++
	q := s.lazyQueue()
	q.push(ev)
	n := q.size()
	if n > s.maxPending {
		s.maxPending = n
	}
	s.depth.Observe(float64(n))
	return Handle{ev: ev, s: s, gen: ev.gen}
}

// After schedules fn to run delay cycles from now.
func (s *Scheduler) After(delay Time, fn func()) Handle {
	return s.At(s.now+delay, fn)
}

// Step fires the next event, advancing the clock to its time. It reports
// whether an event was executed.
func (s *Scheduler) Step() bool {
	if s.q == nil {
		return false
	}
	for s.q.size() > 0 {
		ev := s.q.pop()
		if ev.fn == nil { // cancelled
			s.recycle(ev)
			continue
		}
		s.now = ev.at
		fn := ev.fn
		// Recycle before running fn: all fields are copied out, and fn
		// itself may schedule new events that reuse this struct.
		s.recycle(ev)
		s.fired++
		fn()
		return true
	}
	return false
}

// Run executes events until the queue drains or Stop is called. It returns
// ErrStopped if stopped early, nil if drained.
func (s *Scheduler) Run() error {
	s.stopped = false
	for !s.stopped {
		if !s.Step() {
			return nil
		}
	}
	return ErrStopped
}

// RunUntil executes events with time ≤ deadline, then advances the clock
// to deadline. Events scheduled beyond deadline remain queued.
func (s *Scheduler) RunUntil(deadline Time) {
	s.stopped = false
	for !s.stopped && s.q != nil {
		at, ok := s.q.nextAt()
		if !ok || at > deadline {
			break
		}
		s.Step()
	}
	if !s.stopped && s.now < deadline {
		s.now = deadline
	}
}

// Stop makes Run/RunUntil return after the current event completes.
func (s *Scheduler) Stop() { s.stopped = true }
