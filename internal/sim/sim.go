// Package sim is a deterministic discrete-event simulation kernel with a
// cycle-resolution virtual clock.
//
// It replaces the TinyOS Nido simulator the paper used: every protocol
// action in this repository — radio byte shifts, MAC backoffs, timer
// expirations, base-station processing — is an event on one Scheduler.
// Time is measured in CPU clock cycles of a 7.3728 MHz MICA2-class mote,
// because the paper's round-trip-time detector (Figure 4) is calibrated in
// CPU cycles.
//
// Determinism: events at equal times fire in scheduling order (FIFO),
// which combined with the seeded rng package makes every run reproducible.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
)

// Time is a point in virtual time, in CPU clock cycles.
type Time uint64

// CPUHz is the simulated mote CPU frequency (MICA2 ATmega128L).
const CPUHz = 7_372_800

// Duration helpers.

// Millis converts milliseconds of wall time to cycles.
func Millis(ms float64) Time { return Time(ms * CPUHz / 1e3) }

// Micros converts microseconds of wall time to cycles.
func Micros(us float64) Time { return Time(us * CPUHz / 1e6) }

// Seconds converts seconds of wall time to cycles.
func Seconds(s float64) Time { return Time(s * CPUHz) }

// Float returns t as a float64 cycle count.
func (t Time) Float() float64 { return float64(t) }

// Seconds returns t in seconds of simulated wall time.
func (t Time) Seconds() float64 { return float64(t) / CPUHz }

// String implements fmt.Stringer with both cycles and milliseconds.
func (t Time) String() string {
	return fmt.Sprintf("%dcy (%.3fms)", uint64(t), float64(t)/CPUHz*1e3)
}

// ErrStopped is returned by Run when the scheduler was stopped explicitly
// before the event queue drained.
var ErrStopped = errors.New("sim: scheduler stopped")

// event is a scheduled callback.
type event struct {
	at  Time
	seq uint64 // tie-break: FIFO among equal times
	fn  func()
	// index in the heap, maintained by the heap interface; -1 once popped
	// or cancelled.
	index int
}

// Handle identifies a scheduled event so it can be cancelled.
type Handle struct {
	ev *event
	s  *Scheduler
}

// Cancel removes the event from the queue if it has not fired yet and
// reports whether it was cancelled.
func (h Handle) Cancel() bool {
	if h.ev == nil || h.ev.index < 0 || h.ev.fn == nil {
		return false
	}
	h.ev.fn = nil
	if h.s != nil {
		h.s.cancelled++
	}
	return true
}

// eventQueue implements heap.Interface ordered by (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Scheduler owns the virtual clock and the event queue. The zero value is
// ready to use. Scheduler is not safe for concurrent use: the simulation
// is single-threaded by design (determinism), and experiments parallelize
// across independent Scheduler instances instead.
type Scheduler struct {
	now        Time
	seq        uint64
	queue      eventQueue
	stopped    bool
	fired      uint64
	cancelled  uint64
	maxPending int
}

// New returns a Scheduler starting at time zero.
func New() *Scheduler { return &Scheduler{} }

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Fired returns the number of events executed so far, a cheap progress and
// test metric.
func (s *Scheduler) Fired() uint64 { return s.fired }

// Pending returns the number of events still queued.
func (s *Scheduler) Pending() int { return len(s.queue) }

// Stats is the scheduler's counter snapshot, for run telemetry.
type Stats struct {
	// Events is the number of events executed (same as Fired).
	Events uint64 `json:"events"`
	// Scheduled is the number of events ever enqueued (seq allocations).
	Scheduled uint64 `json:"scheduled"`
	// Cancelled is the number of events removed via Handle.Cancel before
	// firing.
	Cancelled uint64 `json:"cancelled"`
	// MaxPending is the high-water mark of the event queue.
	MaxPending int `json:"max_pending"`
	// VirtualCycles is the current virtual clock, in CPU cycles.
	VirtualCycles uint64 `json:"virtual_cycles"`
}

// Stats returns the scheduler's counter snapshot.
func (s *Scheduler) Stats() Stats {
	return Stats{
		Events:        s.fired,
		Scheduled:     s.seq,
		Cancelled:     s.cancelled,
		MaxPending:    s.maxPending,
		VirtualCycles: uint64(s.now),
	}
}

// Merge adds another scheduler's counters field-wise; the virtual clock
// and queue high-water mark keep the maximum (merged runs are parallel
// universes, not one longer run).
func (st *Stats) Merge(o Stats) {
	st.Events += o.Events
	st.Scheduled += o.Scheduled
	st.Cancelled += o.Cancelled
	if o.MaxPending > st.MaxPending {
		st.MaxPending = o.MaxPending
	}
	if o.VirtualCycles > st.VirtualCycles {
		st.VirtualCycles = o.VirtualCycles
	}
}

// At schedules fn to run at absolute time at. Scheduling in the past
// (at < Now) panics: it is always a protocol bug.
func (s *Scheduler) At(at Time, fn func()) Handle {
	if at < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, s.now))
	}
	ev := &event{at: at, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, ev)
	if len(s.queue) > s.maxPending {
		s.maxPending = len(s.queue)
	}
	return Handle{ev: ev, s: s}
}

// After schedules fn to run delay cycles from now.
func (s *Scheduler) After(delay Time, fn func()) Handle {
	return s.At(s.now+delay, fn)
}

// Step fires the next event, advancing the clock to its time. It reports
// whether an event was executed.
func (s *Scheduler) Step() bool {
	for len(s.queue) > 0 {
		ev := heap.Pop(&s.queue).(*event)
		if ev.fn == nil { // cancelled
			continue
		}
		s.now = ev.at
		fn := ev.fn
		ev.fn = nil
		s.fired++
		fn()
		return true
	}
	return false
}

// Run executes events until the queue drains or Stop is called. It returns
// ErrStopped if stopped early, nil if drained.
func (s *Scheduler) Run() error {
	s.stopped = false
	for !s.stopped {
		if !s.Step() {
			return nil
		}
	}
	return ErrStopped
}

// RunUntil executes events with time ≤ deadline, then advances the clock
// to deadline. Events scheduled beyond deadline remain queued.
func (s *Scheduler) RunUntil(deadline Time) {
	s.stopped = false
	for !s.stopped && len(s.queue) > 0 && s.queue[0].at <= deadline {
		s.Step()
	}
	if !s.stopped && s.now < deadline {
		s.now = deadline
	}
}

// Stop makes Run/RunUntil return after the current event completes.
func (s *Scheduler) Stop() { s.stopped = true }
