package sim

import (
	"math/rand"
	"testing"
)

// fire records one executed event for order comparison.
type fire struct {
	id int
	at Time
}

// decodeDelta turns three script bytes into a schedule delay spanning the
// horizons the wheel files differently: same-tick ties, bottom-rung
// near-future, mid-rung, and far-future overflow rungs.
func decodeDelta(class, a, b byte) Time {
	v := Time(a)<<8 | Time(b)
	switch class % 5 {
	case 0:
		return 0 // same-tick tie
	case 1:
		return v % 64 // bottom rung
	case 2:
		return v % 4096
	case 3:
		return v << 10 // mid rungs
	default:
		return v << 28 // far-future overflow rungs
	}
}

// diffQueues drives a heap scheduler and a wheel scheduler through the
// same schedule/cancel/step/run-until script and fails on the first
// divergence in fire order, clock, pending count, cancel outcome, or
// final stats. This is the wheel's oracle harness (the geo.Grid
// brute-force pattern): the heap's (at, seq) order is the contract.
func diffQueues(t *testing.T, script []byte) {
	t.Helper()
	heap := New()
	wheel := NewWithConfig(Config{Queue: QueueWheel})
	if _, ok := wheel.q.(*wheelQueue); !ok {
		t.Fatal("QueueWheel did not select the wheel queue")
	}

	var hLog, wLog []fire
	type handlePair struct{ h, w Handle }
	var handles []handlePair
	tag := 0

	i := 0
	next := func() byte {
		if i >= len(script) {
			return 0
		}
		b := script[i]
		i++
		return b
	}
	checkClocks := func(op string) {
		t.Helper()
		if heap.Now() != wheel.Now() {
			t.Fatalf("%s: clock diverged: heap %v wheel %v", op, heap.Now(), wheel.Now())
		}
		if heap.Pending() != wheel.Pending() {
			t.Fatalf("%s: pending diverged: heap %d wheel %d", op, heap.Pending(), wheel.Pending())
		}
	}

	for i < len(script) {
		switch op := next(); op % 6 {
		case 0, 1: // schedule
			d := decodeDelta(next(), next(), next())
			id := tag
			tag++
			at := heap.Now() + d
			hh := heap.At(at, func() { hLog = append(hLog, fire{id, heap.Now()}) })
			wh := wheel.At(at, func() { wLog = append(wLog, fire{id, wheel.Now()}) })
			handles = append(handles, handlePair{hh, wh})
		case 2: // cancel a (possibly stale) handle
			if len(handles) > 0 {
				k := int(next()) % len(handles)
				ch, cw := handles[k].h.Cancel(), handles[k].w.Cancel()
				if ch != cw {
					t.Fatalf("cancel outcome diverged: heap %v wheel %v", ch, cw)
				}
			}
		case 3: // single step
			sh, sw := heap.Step(), wheel.Step()
			if sh != sw {
				t.Fatalf("step outcome diverged: heap %v wheel %v", sh, sw)
			}
		case 4: // run until a deadline (exercises cursor overshoot + rewind)
			d := decodeDelta(next(), next(), next())
			heap.RunUntil(heap.Now() + d)
			wheel.RunUntil(wheel.Now() + d)
		case 5: // burst of steps
			n := int(next()) % 16
			for j := 0; j < n; j++ {
				heap.Step()
				wheel.Step()
			}
		}
		checkClocks("op")
	}
	if err := heap.Run(); err != nil {
		t.Fatal(err)
	}
	if err := wheel.Run(); err != nil {
		t.Fatal(err)
	}
	checkClocks("drain")

	if len(hLog) != len(wLog) {
		t.Fatalf("fired %d events on heap, %d on wheel", len(hLog), len(wLog))
	}
	for k := range hLog {
		if hLog[k] != wLog[k] {
			t.Fatalf("fire %d diverged: heap %+v wheel %+v", k, hLog[k], wLog[k])
		}
	}
	if hs, ws := heap.Stats(), wheel.Stats(); hs != ws {
		t.Fatalf("stats diverged:\nheap  %+v\nwheel %+v", hs, ws)
	}
}

// TestWheelVsHeapProperty is the randomized differential property test:
// many independent scripts of mixed schedule/cancel/fire/run-until ops,
// every one required to produce the identical (at, seq) pop order on
// both queue implementations.
func TestWheelVsHeapProperty(t *testing.T) {
	scripts := 300
	if testing.Short() {
		scripts = 60
	}
	for seed := 0; seed < scripts; seed++ {
		rnd := rand.New(rand.NewSource(int64(seed)))
		script := make([]byte, 100+rnd.Intn(500))
		rnd.Read(script)
		diffQueues(t, script)
	}
}

// FuzzQueueOrder lets the fuzzer hunt for schedule/cancel interleavings
// where the wheel's pop order deviates from the heap oracle — including
// same-tick ties and cancels popped lazily.
func FuzzQueueOrder(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0}) // same-tick ties
	f.Add([]byte{1, 4, 255, 255, 3, 3, 3, 3})
	f.Add([]byte{0, 3, 200, 10, 4, 1, 0, 40, 0, 1, 0, 3, 2, 0, 3})
	f.Add([]byte{1, 2, 9, 9, 1, 4, 200, 200, 4, 2, 0, 1, 0, 0, 0, 1, 3})
	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 4096 {
			script = script[:4096]
		}
		diffQueues(t, script)
	})
}

// TestWheelRewindAfterRunUntil pins the rewind path directly: RunUntil
// stops the clock short of the minimum pending event, which has already
// pulled the wheel's cursor forward; the next At lands between the clock
// and the cursor and must still fire in (at, seq) order.
func TestWheelRewindAfterRunUntil(t *testing.T) {
	s := NewWithConfig(Config{Queue: QueueWheel})
	var order []int
	s.At(1_000_000, func() { order = append(order, 2) })
	s.RunUntil(10) // cursor has advanced to 1_000_000; now == 10
	if s.Now() != 10 {
		t.Fatalf("Now = %v, want 10", s.Now())
	}
	s.At(11, func() { order = append(order, 0) })   // before the cursor: rewind
	s.At(5000, func() { order = append(order, 1) }) // bottom rung after rewind
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("fire order = %v, want [0 1 2]", order)
	}
}

// TestWheelSameTickFIFO pins FIFO order among equal times across rungs:
// events scheduled for one instant from different distances (direct
// bottom-rung filing vs. cascaded overflow filing) still fire in
// scheduling order.
func TestWheelSameTickFIFO(t *testing.T) {
	s := NewWithConfig(Config{Queue: QueueWheel})
	const target = Time(1 << 20)
	var order []int
	// Scheduled far in advance: files in an overflow rung, cascades later.
	s.At(target, func() { order = append(order, 0) })
	// Burn the clock forward so the next schedule for the same instant
	// files directly in a bottom rung.
	s.At(target-3, func() {
		s.At(target, func() { order = append(order, 1) })
		s.At(target, func() { order = append(order, 2) })
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("fire order = %v, want [0 1 2] (seq FIFO at equal times)", order)
	}
}

// TestWheelScheduleFireZeroAlloc pins the wheel's steady-state hot path
// to zero heap allocations, mirroring the heap's pin: intrusive slot
// lists plus the pooled free list mean a warm schedule→fire cycle never
// touches the allocator.
func TestWheelScheduleFireZeroAlloc(t *testing.T) {
	s := NewWithConfig(Config{Queue: QueueWheel})
	count := 0
	fn := func() { count++ }
	cycle := func() {
		s.At(s.Now()+1, fn)
		s.Step()
	}
	for i := 0; i < 10; i++ { // warm the free list and ready buffer
		cycle()
	}
	if avg := testing.AllocsPerRun(100, cycle); avg != 0 {
		t.Fatalf("steady-state wheel schedule+fire allocates %.1f times per op, want 0", avg)
	}
	if count == 0 {
		t.Fatal("events did not fire")
	}
}

// TestWheelDeepScheduleFireZeroAlloc pins the same property with a
// standing population across many rungs, so cascades are exercised too.
func TestWheelDeepScheduleFireZeroAlloc(t *testing.T) {
	s := NewWithConfig(Config{Queue: QueueWheel})
	fn := func() {}
	for i := 0; i < 4096; i++ {
		s.At(s.Now()+Time(1000+i*37), fn)
	}
	cycle := func() {
		s.At(s.Now()+1, fn)
		s.Step()
	}
	for i := 0; i < 64; i++ {
		cycle()
	}
	if avg := testing.AllocsPerRun(200, cycle); avg != 0 {
		t.Fatalf("deep-queue wheel schedule+fire allocates %.1f times per op, want 0", avg)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestQueueDepthHistogram pins the Config.Depth hook: every At observes
// the post-push queue depth.
func TestQueueDepthHistogram(t *testing.T) {
	for _, kind := range []QueueKind{QueueHeap, QueueWheel} {
		h := DepthHistogram()
		s := NewWithConfig(Config{Queue: kind, Depth: h})
		fn := func() {}
		for i := 0; i < 10; i++ {
			s.At(Time(100+i), fn)
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		if h.Count != 10 {
			t.Fatalf("%v: depth histogram has %d observations, want 10", kind, h.Count)
		}
		if h.Max != 10 {
			t.Fatalf("%v: depth histogram Max = %v, want 10", kind, h.Max)
		}
	}
}

// TestQueueAutoSelection pins the auto heuristic: small hints stay on
// the heap oracle, metro-scale hints move to the wheel.
func TestQueueAutoSelection(t *testing.T) {
	small := NewWithConfig(Config{Queue: QueueAuto, PendingHint: 100})
	if _, ok := small.q.(*eventQueue); !ok {
		t.Fatalf("auto with hint 100 selected %T, want heap", small.q)
	}
	big := NewWithConfig(Config{Queue: QueueAuto, PendingHint: 100_000})
	if _, ok := big.q.(*wheelQueue); !ok {
		t.Fatalf("auto with hint 100000 selected %T, want wheel", big.q)
	}
}

// TestParseQueueKind covers the flag parser round trip.
func TestParseQueueKind(t *testing.T) {
	for _, want := range []QueueKind{QueueAuto, QueueHeap, QueueWheel} {
		got, err := ParseQueueKind(want.String())
		if err != nil || got != want {
			t.Fatalf("ParseQueueKind(%q) = %v, %v", want.String(), got, err)
		}
	}
	if _, err := ParseQueueKind("calendar"); err == nil {
		t.Fatal("ParseQueueKind accepted an unknown kind")
	}
}

// benchScheduleFire measures the steady-state schedule→fire cycle on a
// scheduler with a standing population of `standing` pending events and
// randomized short-horizon timer delays — the MAC/phy timer distribution
// the wheel is built for. The delay sequence is a fixed xorshift stream,
// identical for every queue kind.
func benchScheduleFire(b *testing.B, kind QueueKind, standing int) {
	s := NewWithConfig(Config{Queue: kind, PendingHint: int64(standing)})
	fn := func() {}
	rnd := uint64(0x9E3779B97F4A7C15)
	horizon := func() Time {
		rnd ^= rnd << 13
		rnd ^= rnd >> 7
		rnd ^= rnd << 17
		return Time(rnd%(1<<22)) + 1
	}
	for i := 0; i < standing; i++ {
		s.At(s.Now()+horizon(), fn)
	}
	for i := 0; i < 1024; i++ { // warm free list and ready buffer
		s.At(s.Now()+horizon(), fn)
		s.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.At(s.Now()+horizon(), fn)
		s.Step()
	}
}

// BenchmarkSchedulerWheelFire is the wheel counterpart of
// BenchmarkScheduleFire: warm steady state, no standing queue.
func BenchmarkSchedulerWheelFire(b *testing.B) { benchScheduleFire(b, QueueWheel, 0) }

// BenchmarkSchedulerWheelFireDepth / BenchmarkSchedulerHeapFireDepth
// measure the mixed-horizon cycle with 1000 standing events (the
// paper-scale regime).
func BenchmarkSchedulerWheelFireDepth(b *testing.B) { benchScheduleFire(b, QueueWheel, 1000) }
func BenchmarkSchedulerHeapFireDepth(b *testing.B)  { benchScheduleFire(b, QueueHeap, 1000) }

// skipInShort gates the metro-scale macro benchmarks out of -short bench
// smokes (CI runs every benchmark at -benchtime 1x -short): building a
// million-event backlog takes seconds even for a single iteration.
func skipInShort(b *testing.B) {
	b.Helper()
	if testing.Short() {
		b.Skip("metro-scale macro benchmark; run without -short")
	}
}

// BenchmarkSchedulerHeapFireMillion and BenchmarkSchedulerWheelFireMillion
// are the metro-scale acceptance pair: schedule+fire throughput with one
// million standing pending events, where the heap pays divergent
// ~20-level sift paths per operation and the wheel files in O(1).
func BenchmarkSchedulerHeapFireMillion(b *testing.B) {
	skipInShort(b)
	benchScheduleFire(b, QueueHeap, 1_000_000)
}

func BenchmarkSchedulerWheelFireMillion(b *testing.B) {
	skipInShort(b)
	benchScheduleFire(b, QueueWheel, 1_000_000)
}

// BenchmarkSchedulerWheelMillion and BenchmarkSchedulerHeapMillion are
// the end-to-end metro measurement: schedule a one-million-event backlog
// spread across rungs, then drain it — total schedule+fire throughput at
// up to 1M pending events.
func BenchmarkSchedulerWheelMillion(b *testing.B) { benchMillion(b, QueueWheel) }
func BenchmarkSchedulerHeapMillion(b *testing.B)  { benchMillion(b, QueueHeap) }

func benchMillion(b *testing.B, kind QueueKind) {
	skipInShort(b)
	const backlog = 1_000_000
	fn := func() {}
	s := NewWithConfig(Config{Queue: kind, PendingHint: backlog})
	cycle := func() {
		base := s.Now()
		for j := 0; j < backlog; j++ {
			s.At(base+Time(j%97)*8191+Time(j), fn)
		}
		if err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
	cycle() // warm the free list so iterations measure queue work, not allocation
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cycle()
	}
	b.ReportMetric(float64(backlog)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}
