// Package georoute implements greedy geographic forwarding (the core of
// GPSR, the paper's motivating application: "in geographical routing
// (e.g., GPSR), sensor nodes make routing decisions at least partially
// based on their own and their neighbors' locations").
//
// Forwarding decisions use the positions nodes *believe* (their
// localization estimates); packets propagate over the *true* radio
// connectivity. The gap between the two is exactly what a malicious
// beacon attack poisons — and what the paper's defense restores. The
// extra-routing experiment quantifies it as end-to-end delivery rate.
package georoute

import (
	"fmt"

	"beaconsec/internal/geo"
)

// Network is a static routing substrate: true positions fix connectivity;
// believed positions drive forwarding.
type Network struct {
	truth    []geo.Point
	believed []geo.Point
	adj      [][]int32
	rangeFt  float64
}

// New builds a network. believed[i] is node i's own position estimate;
// nodes advertise it to neighbors (GPSR's beaconing), so forwarding at
// node u compares believed positions of u's neighbors. A node with no
// estimate should carry its best guess — routing has nothing else.
func New(truth, believed []geo.Point, rangeFt float64) *Network {
	if len(truth) != len(believed) {
		panic(fmt.Sprintf("georoute: %d true vs %d believed positions", len(truth), len(believed)))
	}
	if rangeFt <= 0 {
		panic(fmt.Sprintf("georoute: non-positive range %v", rangeFt))
	}
	n := &Network{
		truth:    append([]geo.Point(nil), truth...),
		believed: append([]geo.Point(nil), believed...),
		adj:      make([][]int32, len(truth)),
		rangeFt:  rangeFt,
	}
	idx := geo.NewIndex(boundsOf(truth), n.truth, rangeFt)
	buf := make([]int, 0, 64)
	for i := range n.truth {
		buf = idx.Within(n.truth[i], rangeFt, i, buf[:0])
		for _, j := range buf {
			n.adj[i] = append(n.adj[i], int32(j))
		}
	}
	return n
}

func boundsOf(pts []geo.Point) geo.Rect {
	r := geo.Rect{}
	if len(pts) == 0 {
		return geo.Square(1)
	}
	r.Min, r.Max = pts[0], pts[0]
	for _, p := range pts {
		if p.X < r.Min.X {
			r.Min.X = p.X
		}
		if p.Y < r.Min.Y {
			r.Min.Y = p.Y
		}
		if p.X > r.Max.X {
			r.Max.X = p.X
		}
		if p.Y > r.Max.Y {
			r.Max.Y = p.Y
		}
	}
	r.Max.X++
	r.Max.Y++
	return r
}

// Neighbors returns node i's true radio neighbors.
func (n *Network) Neighbors(i int) []int32 { return n.adj[i] }

// Route is the outcome of one greedy forwarding attempt.
type Route struct {
	// Delivered reports whether the packet reached dst.
	Delivered bool
	// Hops is the path length taken (delivered or not).
	Hops int
	// Path lists the node indices visited, starting at src.
	Path []int
	// Reason explains a failure ("local-minimum", "ttl", "").
	Reason string
}

// Deliver greedily forwards a packet from src toward dst: each hop picks
// the neighbor whose *believed* position is closest to dst's believed
// position, advancing only if that improves on the current node (greedy
// mode of GPSR; perimeter mode is out of scope — a greedy failure counts
// as undelivered, which is the metric of interest). Delivery is declared
// when the packet reaches dst itself, regardless of coordinates: radios,
// not coordinates, receive packets.
func (n *Network) Deliver(src, dst int) Route {
	if src == dst {
		return Route{Delivered: true, Path: []int{src}}
	}
	ttl := 4 * len(n.truth)
	target := n.believed[dst]
	r := Route{Path: []int{src}}
	cur := src
	for r.Hops < ttl {
		if cur == dst {
			r.Delivered = true
			return r
		}
		best := -1
		bestDist := n.believed[cur].Dist2(target)
		for _, nb := range n.adj[cur] {
			if int(nb) == dst {
				// The destination itself is in radio range: done next hop.
				best = dst
				break
			}
			if d := n.believed[nb].Dist2(target); d < bestDist {
				bestDist = d
				best = int(nb)
			}
		}
		if best < 0 {
			r.Reason = "local-minimum"
			return r
		}
		cur = best
		r.Hops++
		r.Path = append(r.Path, cur)
	}
	r.Reason = "ttl"
	return r
}

// DeliveryRate attempts the given (src, dst) pairs and returns the
// fraction delivered plus the mean hop count of successful routes.
func (n *Network) DeliveryRate(pairs [][2]int) (rate, meanHops float64) {
	if len(pairs) == 0 {
		return 0, 0
	}
	delivered, hops := 0, 0
	for _, p := range pairs {
		r := n.Deliver(p[0], p[1])
		if r.Delivered {
			delivered++
			hops += r.Hops
		}
	}
	rate = float64(delivered) / float64(len(pairs))
	if delivered > 0 {
		meanHops = float64(hops) / float64(delivered)
	}
	return rate, meanHops
}
