package georoute

import (
	"testing"

	"beaconsec/internal/geo"
	"beaconsec/internal/rng"
)

func densePoints(seed uint64, n int, side float64) []geo.Point {
	src := rng.New(seed)
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Point{X: src.Uniform(0, side), Y: src.Uniform(0, side)}
	}
	return pts
}

func randomPairs(seed uint64, n, count int) [][2]int {
	src := rng.New(seed)
	pairs := make([][2]int, count)
	for i := range pairs {
		pairs[i] = [2]int{src.Intn(n), src.Intn(n)}
	}
	return pairs
}

func TestDeliverTruePositions(t *testing.T) {
	// Dense network, perfect positions: greedy forwarding delivers
	// nearly always.
	truth := densePoints(1, 400, 600)
	net := New(truth, truth, 120)
	rate, hops := net.DeliveryRate(randomPairs(2, len(truth), 200))
	if rate < 0.9 {
		t.Errorf("greedy delivery rate %v on perfect positions", rate)
	}
	if hops <= 0 {
		t.Errorf("mean hops %v", hops)
	}
}

func TestDeliverSameNode(t *testing.T) {
	truth := densePoints(3, 10, 100)
	net := New(truth, truth, 200)
	r := net.Deliver(4, 4)
	if !r.Delivered || r.Hops != 0 {
		t.Errorf("self delivery: %+v", r)
	}
}

func TestDeliverDisconnected(t *testing.T) {
	truth := []geo.Point{{X: 0, Y: 0}, {X: 50, Y: 0}, {X: 500, Y: 500}}
	net := New(truth, truth, 100)
	r := net.Deliver(0, 2)
	if r.Delivered {
		t.Error("delivered across a partition")
	}
	if r.Reason == "" {
		t.Error("failure without reason")
	}
}

func TestNoisyPositionsStillRoute(t *testing.T) {
	// Small estimation error (≈ ranging noise) barely hurts greedy
	// forwarding.
	truth := densePoints(4, 400, 600)
	src := rng.New(5)
	believed := make([]geo.Point, len(truth))
	for i, p := range truth {
		believed[i] = geo.Point{X: p.X + src.Uniform(-10, 10), Y: p.Y + src.Uniform(-10, 10)}
	}
	net := New(truth, believed, 120)
	rate, _ := net.DeliveryRate(randomPairs(6, len(truth), 200))
	if rate < 0.85 {
		t.Errorf("delivery rate %v under 10 ft position noise", rate)
	}
}

func TestPoisonedPositionsBreakRouting(t *testing.T) {
	// The paper's motivation, end to end: corrupt a fraction of nodes'
	// believed positions (what an undefended malicious-beacon attack
	// does) and greedy forwarding degrades clearly.
	truth := densePoints(7, 400, 600)
	src := rng.New(8)
	poisoned := make([]geo.Point, len(truth))
	copy(poisoned, truth)
	for i := range poisoned {
		if src.Bool(0.3) {
			// Estimates dragged hundreds of feet, as measured in the
			// undefended E1 runs.
			poisoned[i] = geo.Point{X: src.Uniform(0, 600), Y: src.Uniform(0, 600)}
		}
	}
	clean := New(truth, truth, 120)
	dirty := New(truth, poisoned, 120)
	pairs := randomPairs(9, len(truth), 300)
	cleanRate, _ := clean.DeliveryRate(pairs)
	dirtyRate, _ := dirty.DeliveryRate(pairs)
	if dirtyRate >= cleanRate-0.1 {
		t.Errorf("poisoning did not hurt: clean %v vs poisoned %v", cleanRate, dirtyRate)
	}
}

func TestDeliverTerminates(t *testing.T) {
	// Adversarial believed positions must not loop forever: TTL bounds
	// every attempt.
	truth := densePoints(10, 100, 300)
	src := rng.New(11)
	adversarial := make([]geo.Point, len(truth))
	for i := range adversarial {
		adversarial[i] = geo.Point{X: src.Uniform(0, 300), Y: src.Uniform(0, 300)}
	}
	net := New(truth, adversarial, 100)
	for _, p := range randomPairs(12, len(truth), 100) {
		r := net.Deliver(p[0], p[1])
		if r.Hops > 4*len(truth) {
			t.Fatalf("route exceeded TTL: %+v", r)
		}
	}
}

func TestPathConsistency(t *testing.T) {
	truth := densePoints(13, 200, 500)
	net := New(truth, truth, 120)
	r := net.Deliver(0, 100)
	if !r.Delivered {
		t.Skip("pair disconnected this seed")
	}
	if r.Path[0] != 0 || r.Path[len(r.Path)-1] != 100 {
		t.Errorf("path endpoints: %v", r.Path)
	}
	if len(r.Path) != r.Hops+1 {
		t.Errorf("path length %d vs hops %d", len(r.Path), r.Hops)
	}
	// Every hop is a true radio neighbor.
	for i := 1; i < len(r.Path); i++ {
		if truth[r.Path[i-1]].Dist(truth[r.Path[i]]) > 120 {
			t.Fatalf("hop %d-%d exceeds radio range", r.Path[i-1], r.Path[i])
		}
	}
}

func TestConstructorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"length mismatch": func() { New(make([]geo.Point, 2), make([]geo.Point, 3), 10) },
		"zero range":      func() { New(make([]geo.Point, 2), make([]geo.Point, 2), 0) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			fn()
		})
	}
}

func BenchmarkDeliver(b *testing.B) {
	truth := densePoints(14, 500, 700)
	net := New(truth, truth, 120)
	pairs := randomPairs(15, len(truth), 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		net.Deliver(p[0], p[1])
	}
}
