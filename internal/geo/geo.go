// Package geo provides the planar geometry primitives used by the
// simulator: points, rectangles, and a uniform-grid spatial index for
// neighbor queries over node deployments.
//
// The paper deploys nodes in a square sensing field measured in feet; all
// coordinates here are float64 feet.
package geo

import (
	"fmt"
	"math"
	"slices"
)

// Point is a location in the sensing field, in feet.
type Point struct {
	X, Y float64
}

// String implements fmt.Stringer.
func (p Point) String() string {
	return fmt.Sprintf("(%.1f, %.1f)", p.X, p.Y)
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Dist2 returns the squared Euclidean distance between p and q. It avoids
// the square root for comparisons on hot paths.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by k.
func (p Point) Scale(k float64) Point { return Point{p.X * k, p.Y * k} }

// Rect is an axis-aligned rectangle. Min is inclusive, Max exclusive for
// containment purposes, matching half-open interval convention.
type Rect struct {
	Min, Max Point
}

// Square returns a side × side field anchored at the origin.
func Square(side float64) Rect {
	return Rect{Min: Point{0, 0}, Max: Point{side, side}}
}

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Contains reports whether p lies inside r.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X < r.Max.X && p.Y >= r.Min.Y && p.Y < r.Max.Y
}

// Clamp returns p moved to the nearest point inside r (on the boundary if
// p is outside).
func (r Rect) Clamp(p Point) Point {
	return Point{
		X: math.Min(math.Max(p.X, r.Min.X), math.Nextafter(r.Max.X, r.Min.X)),
		Y: math.Min(math.Max(p.Y, r.Min.Y), math.Nextafter(r.Max.Y, r.Min.Y)),
	}
}

// Index is a uniform-grid spatial index over a fixed set of points. It
// answers "which points are within radius r of p" in expected O(k) for k
// results, assuming roughly uniform deployments, which is what the paper's
// random deployments produce.
//
// Build one with NewIndex; the index does not support mutation because
// deployments in this system are static for the lifetime of a run.
type Index struct {
	bounds   Rect
	cellSize float64
	cols     int
	rows     int
	cells    [][]int32
	points   []Point
}

// NewIndex builds an index over points within bounds, with grid cells sized
// for queries of roughly queryRadius. A zero or negative queryRadius
// defaults the cell size to bounds-width/16.
func NewIndex(bounds Rect, points []Point, queryRadius float64) *Index {
	cell := queryRadius
	if cell <= 0 {
		cell = bounds.Width() / 16
	}
	if cell <= 0 {
		cell = 1
	}
	cols := int(math.Ceil(bounds.Width()/cell)) + 1
	rows := int(math.Ceil(bounds.Height()/cell)) + 1
	if cols < 1 {
		cols = 1
	}
	if rows < 1 {
		rows = 1
	}
	idx := &Index{
		bounds:   bounds,
		cellSize: cell,
		cols:     cols,
		rows:     rows,
		cells:    make([][]int32, cols*rows),
		points:   points,
	}
	for i, p := range points {
		c := idx.cellOf(p)
		idx.cells[c] = append(idx.cells[c], int32(i))
	}
	return idx
}

func (idx *Index) cellOf(p Point) int {
	cx := int((p.X - idx.bounds.Min.X) / idx.cellSize)
	cy := int((p.Y - idx.bounds.Min.Y) / idx.cellSize)
	if cx < 0 {
		cx = 0
	}
	if cx >= idx.cols {
		cx = idx.cols - 1
	}
	if cy < 0 {
		cy = 0
	}
	if cy >= idx.rows {
		cy = idx.rows - 1
	}
	return cy*idx.cols + cx
}

// Within appends to dst the indices (into the points slice given to
// NewIndex) of all points within radius r of p, excluding any index equal
// to exclude (pass a negative exclude to keep all). The returned order is
// deterministic: ascending point index.
func (idx *Index) Within(p Point, r float64, exclude int, dst []int) []int {
	if r < 0 {
		return dst
	}
	r2 := r * r
	minCX := int((p.X - r - idx.bounds.Min.X) / idx.cellSize)
	maxCX := int((p.X + r - idx.bounds.Min.X) / idx.cellSize)
	minCY := int((p.Y - r - idx.bounds.Min.Y) / idx.cellSize)
	maxCY := int((p.Y + r - idx.bounds.Min.Y) / idx.cellSize)
	if minCX < 0 {
		minCX = 0
	}
	if minCY < 0 {
		minCY = 0
	}
	if maxCX >= idx.cols {
		maxCX = idx.cols - 1
	}
	if maxCY >= idx.rows {
		maxCY = idx.rows - 1
	}
	start := len(dst)
	for cy := minCY; cy <= maxCY; cy++ {
		for cx := minCX; cx <= maxCX; cx++ {
			for _, pi := range idx.cells[cy*idx.cols+cx] {
				i := int(pi)
				if i == exclude {
					continue
				}
				if idx.points[i].Dist2(p) <= r2 {
					dst = append(dst, i)
				}
			}
		}
	}
	sortInts(dst[start:])
	return dst
}

// Len returns the number of indexed points.
func (idx *Index) Len() int { return len(idx.points) }

// Point returns the i-th indexed point.
func (idx *Index) Point(i int) Point { return idx.points[i] }

// sortInts is an insertion sort; Within result sets are small (node
// neighborhoods), where insertion sort beats sort.Ints and avoids the
// interface allocation.
func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j-1] > a[j]; j-- {
			a[j-1], a[j] = a[j], a[j-1]
		}
	}
}

// Grid is an incremental uniform hash grid over points in unbounded
// space: unlike Index it needs no bounds up front, accepts points
// anywhere (including outside any nominal field, e.g. wormhole
// endpoints), and supports Add after construction. The radio medium
// uses it to resolve transmissions in O(neighbors) instead of O(N).
//
// Determinism contract: Candidates visits grid cells in a fixed order
// (row-major over the query box) and then sorts the gathered indices
// ascending, so for any query the result order equals the order a
// brute-force scan over all points in insertion order would produce
// (filtered to the candidate superset). Callers that must preserve a
// historical visit order — and therefore rng draw order — apply their
// own exact distance predicate to the candidates.
type Grid struct {
	cell  float64
	cells map[gridKey][]int32
	n     int
}

type gridKey struct{ cx, cy int32 }

// NewGrid builds an empty grid with the given cell size, which should
// be about the query radius passed to Candidates (one cell ring then
// covers the query box). It panics on a non-positive cell size.
func NewGrid(cell float64) *Grid {
	if cell <= 0 {
		panic(fmt.Sprintf("geo: non-positive grid cell size %v", cell))
	}
	return &Grid{cell: cell, cells: make(map[gridKey][]int32)}
}

func (g *Grid) keyOf(p Point) gridKey {
	return gridKey{cx: cellCoord(p.X, g.cell), cy: cellCoord(p.Y, g.cell)}
}

// cellCoord maps a coordinate to its cell index, clamped into int32
// range so far-out points (degenerate but legal) land in edge cells
// rather than overflowing.
func cellCoord(v, cell float64) int32 {
	c := math.Floor(v / cell)
	if c < math.MinInt32 {
		return math.MinInt32
	}
	if c > math.MaxInt32 {
		return math.MaxInt32
	}
	return int32(c)
}

// Add inserts a point and returns its index (insertion order).
func (g *Grid) Add(p Point) int {
	i := g.n
	g.n++
	k := g.keyOf(p)
	g.cells[k] = append(g.cells[k], int32(i))
	return i
}

// Len returns the number of points added.
func (g *Grid) Len() int { return g.n }

// Candidates appends to dst the indices of every point whose cell
// intersects the box p ± r — a superset of the points within distance
// r of p — in ascending index order. It does no exact distance
// filtering: the caller applies its own predicate, keeping whatever
// float semantics it had before the grid existed.
func (g *Grid) Candidates(p Point, r float64, dst []int32) []int32 {
	if r < 0 {
		return dst
	}
	minCX := cellCoord(p.X-r, g.cell)
	maxCX := cellCoord(p.X+r, g.cell)
	minCY := cellCoord(p.Y-r, g.cell)
	maxCY := cellCoord(p.Y+r, g.cell)
	start := len(dst)
	for cy := minCY; ; cy++ {
		for cx := minCX; ; cx++ {
			dst = append(dst, g.cells[gridKey{cx, cy}]...)
			if cx == maxCX {
				break
			}
		}
		if cy == maxCY {
			break
		}
	}
	// The gathered set is a concatenation of per-cell ascending runs;
	// pdqsort exploits those runs and allocates nothing.
	slices.Sort(dst[start:])
	return dst
}
