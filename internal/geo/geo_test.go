package geo

import (
	"math"
	"testing"
	"testing/quick"

	"beaconsec/internal/rng"
)

func TestDistKnown(t *testing.T) {
	tests := []struct {
		name string
		p, q Point
		want float64
	}{
		{"same point", Point{1, 1}, Point{1, 1}, 0},
		{"unit x", Point{0, 0}, Point{1, 0}, 1},
		{"unit y", Point{0, 0}, Point{0, 1}, 1},
		{"3-4-5", Point{0, 0}, Point{3, 4}, 5},
		{"negative coords", Point{-3, -4}, Point{0, 0}, 5},
		{"paper wormhole span", Point{100, 100}, Point{800, 700}, math.Hypot(700, 600)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.Dist(tt.q); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("Dist(%v, %v) = %v, want %v", tt.p, tt.q, got, tt.want)
			}
		})
	}
}

func TestDistSymmetry(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		if anyAbnormal(ax, ay, bx, by) {
			return true
		}
		a, b := Point{ax, ay}, Point{bx, by}
		return a.Dist(b) == b.Dist(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTriangleInequality(t *testing.T) {
	src := rng.New(5)
	for i := 0; i < 5000; i++ {
		a := Point{src.Uniform(-100, 100), src.Uniform(-100, 100)}
		b := Point{src.Uniform(-100, 100), src.Uniform(-100, 100)}
		c := Point{src.Uniform(-100, 100), src.Uniform(-100, 100)}
		if a.Dist(c) > a.Dist(b)+b.Dist(c)+1e-9 {
			t.Fatalf("triangle inequality violated for %v %v %v", a, b, c)
		}
	}
}

func TestDist2ConsistentWithDist(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		if anyAbnormal(ax, ay, bx, by) {
			return true
		}
		a, b := Point{ax, ay}, Point{bx, by}
		d := a.Dist(b)
		return math.Abs(a.Dist2(b)-d*d) <= 1e-6*(1+d*d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func anyAbnormal(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
			return true
		}
	}
	return false
}

func TestVectorOps(t *testing.T) {
	p := Point{1, 2}
	q := Point{3, -4}
	if got := p.Add(q); got != (Point{4, -2}) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != (Point{-2, 6}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{2, 4}) {
		t.Errorf("Scale = %v", got)
	}
}

func TestRect(t *testing.T) {
	r := Square(1000)
	if r.Width() != 1000 || r.Height() != 1000 {
		t.Fatalf("Square(1000) has extent %v x %v", r.Width(), r.Height())
	}
	if !r.Contains(Point{0, 0}) {
		t.Error("Contains(min corner) = false")
	}
	if r.Contains(Point{1000, 500}) {
		t.Error("Contains(max edge) = true, want half-open")
	}
	if r.Contains(Point{-1, 5}) {
		t.Error("Contains(outside) = true")
	}
}

func TestRectClamp(t *testing.T) {
	r := Square(10)
	c := r.Clamp(Point{-5, 20})
	if !r.Contains(c) {
		t.Errorf("Clamp result %v not contained in rect", c)
	}
	inside := Point{3, 4}
	if got := r.Clamp(inside); got != inside {
		t.Errorf("Clamp moved interior point: %v", got)
	}
}

// bruteWithin is the reference implementation the index must agree with.
func bruteWithin(points []Point, p Point, r float64, exclude int) []int {
	var out []int
	for i, q := range points {
		if i == exclude {
			continue
		}
		if q.Dist(p) <= r {
			out = append(out, i)
		}
	}
	return out
}

func randomPoints(seed uint64, n int, side float64) []Point {
	src := rng.New(seed)
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{src.Uniform(0, side), src.Uniform(0, side)}
	}
	return pts
}

func TestIndexMatchesBruteForce(t *testing.T) {
	pts := randomPoints(99, 500, 1000)
	idx := NewIndex(Square(1000), pts, 150)
	src := rng.New(7)
	for trial := 0; trial < 200; trial++ {
		q := Point{src.Uniform(-50, 1050), src.Uniform(-50, 1050)}
		r := src.Uniform(0, 300)
		exclude := src.Intn(len(pts))
		got := idx.Within(q, r, exclude, nil)
		want := bruteWithin(pts, q, r, exclude)
		if !equalInts(got, want) {
			t.Fatalf("trial %d: Within(%v, %.1f) = %v, want %v", trial, q, r, got, want)
		}
	}
}

func TestIndexZeroRadius(t *testing.T) {
	pts := []Point{{5, 5}, {6, 6}}
	idx := NewIndex(Square(10), pts, 1)
	got := idx.Within(Point{5, 5}, 0, -1, nil)
	if !equalInts(got, []int{0}) {
		t.Errorf("zero-radius query = %v, want [0]", got)
	}
	if got := idx.Within(Point{5, 5}, -1, -1, nil); len(got) != 0 {
		t.Errorf("negative-radius query = %v, want empty", got)
	}
}

func TestIndexAppendsToDst(t *testing.T) {
	pts := []Point{{1, 1}}
	idx := NewIndex(Square(10), pts, 5)
	dst := []int{42}
	got := idx.Within(Point{1, 1}, 5, -1, dst)
	if len(got) != 2 || got[0] != 42 || got[1] != 0 {
		t.Errorf("Within did not append: %v", got)
	}
}

func TestIndexAccessors(t *testing.T) {
	pts := []Point{{1, 2}, {3, 4}}
	idx := NewIndex(Square(10), pts, 5)
	if idx.Len() != 2 {
		t.Errorf("Len = %d", idx.Len())
	}
	if idx.Point(1) != (Point{3, 4}) {
		t.Errorf("Point(1) = %v", idx.Point(1))
	}
}

func TestIndexEmpty(t *testing.T) {
	idx := NewIndex(Square(10), nil, 5)
	if got := idx.Within(Point{5, 5}, 100, -1, nil); len(got) != 0 {
		t.Errorf("empty index returned %v", got)
	}
}

func TestIndexDefaultCellSize(t *testing.T) {
	pts := randomPoints(3, 50, 100)
	idx := NewIndex(Square(100), pts, 0)
	got := idx.Within(Point{50, 50}, 30, -1, nil)
	want := bruteWithin(pts, Point{50, 50}, 30, -1)
	if !equalInts(got, want) {
		t.Errorf("default cell size query = %v, want %v", got, want)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func BenchmarkIndexWithin(b *testing.B) {
	pts := randomPoints(1, 1000, 1000)
	idx := NewIndex(Square(1000), pts, 150)
	buf := make([]int, 0, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = idx.Within(pts[i%len(pts)], 150, i%len(pts), buf[:0])
	}
}
