package geo

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// gridWithin filters grid candidates with the same exact predicate the
// brute-force scan (bruteWithin, shared with the Index tests) uses.
func gridWithin(g *Grid, points []Point, p Point, r float64) []int {
	var out []int
	for _, ci := range g.Candidates(p, r, nil) {
		if p.Dist(points[int(ci)]) <= r {
			out = append(out, int(ci))
		}
	}
	return out
}

func TestGridMatchesBruteForce(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		cell := 10 + 140*rnd.Float64()
		n := 1 + rnd.Intn(400)
		points := make([]Point, 0, n+8)
		for i := 0; i < n; i++ {
			// Include out-of-field (negative) coordinates: the grid must
			// not assume a bounded field.
			points = append(points, Point{
				X: -200 + 1400*rnd.Float64(),
				Y: -200 + 1400*rnd.Float64(),
			})
		}
		// Points exactly on cell boundaries, corners, and duplicates.
		points = append(points,
			Point{X: 0, Y: 0},
			Point{X: cell, Y: 0},
			Point{X: cell, Y: cell},
			Point{X: 2 * cell, Y: -cell},
			Point{X: -cell, Y: 3 * cell},
			Point{X: cell, Y: cell}, // duplicate
			Point{X: math.Nextafter(cell, 0), Y: cell},
			Point{X: math.Nextafter(cell, 2*cell), Y: cell},
		)
		g := NewGrid(cell)
		for _, p := range points {
			g.Add(p)
		}
		if g.Len() != len(points) {
			t.Fatalf("grid Len = %d, want %d", g.Len(), len(points))
		}
		for q := 0; q < 30; q++ {
			origin := Point{X: -300 + 1600*rnd.Float64(), Y: -300 + 1600*rnd.Float64()}
			if q%5 == 0 {
				// Query from an indexed point, including boundary ones.
				origin = points[rnd.Intn(len(points))]
			}
			r := rnd.Float64() * 2 * cell
			want := bruteWithin(points, origin, r, -1)
			got := gridWithin(g, points, origin, r)
			if len(got) != len(want) {
				t.Fatalf("trial %d: grid found %d, brute force %d (cell=%v r=%v origin=%v)",
					trial, len(got), len(want), cell, r, origin)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trial %d: order/content mismatch at %d: grid %v vs brute %v",
						trial, i, got, want)
				}
			}
		}
	}
}

func TestGridCandidatesSortedSuperset(t *testing.T) {
	rnd := rand.New(rand.NewSource(11))
	g := NewGrid(50)
	points := make([]Point, 300)
	for i := range points {
		points[i] = Point{X: 1000 * rnd.Float64(), Y: 1000 * rnd.Float64()}
		g.Add(points[i])
	}
	for q := 0; q < 50; q++ {
		origin := Point{X: 1000 * rnd.Float64(), Y: 1000 * rnd.Float64()}
		r := 100 * rnd.Float64()
		cand := g.Candidates(origin, r, nil)
		if !sort.SliceIsSorted(cand, func(i, j int) bool { return cand[i] < cand[j] }) {
			t.Fatalf("candidates not ascending: %v", cand)
		}
		inCand := make(map[int32]bool, len(cand))
		for _, c := range cand {
			if inCand[c] {
				t.Fatalf("duplicate candidate %d", c)
			}
			inCand[c] = true
		}
		for _, i := range bruteWithin(points, origin, r, -1) {
			if !inCand[int32(i)] {
				t.Fatalf("point %d within r=%v of %v missing from candidates", i, r, origin)
			}
		}
	}
}

func TestGridCandidatesAppendsToDst(t *testing.T) {
	g := NewGrid(10)
	g.Add(Point{X: 1, Y: 1})
	dst := []int32{99}
	dst = g.Candidates(Point{X: 0, Y: 0}, 5, dst)
	if len(dst) != 2 || dst[0] != 99 || dst[1] != 0 {
		t.Fatalf("Candidates did not append: %v", dst)
	}
}

func TestGridNegativeRadius(t *testing.T) {
	g := NewGrid(10)
	g.Add(Point{})
	if got := g.Candidates(Point{}, -1, nil); len(got) != 0 {
		t.Fatalf("negative radius returned %v", got)
	}
}

func TestGridBadCellPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewGrid(0) did not panic")
		}
	}()
	NewGrid(0)
}

func TestGridFarOutPointsClamp(t *testing.T) {
	// Degenerate but legal: coordinates so large the cell coordinate
	// saturates int32. The point must still be indexed and findable by a
	// query from the same spot.
	g := NewGrid(10)
	far := Point{X: 1e38, Y: -1e38}
	g.Add(far)
	cand := g.Candidates(far, 1, nil)
	if len(cand) != 1 || cand[0] != 0 {
		t.Fatalf("far-out point not found: %v", cand)
	}
}

func BenchmarkGridCandidates(b *testing.B) {
	rnd := rand.New(rand.NewSource(3))
	g := NewGrid(150)
	for i := 0; i < 1000; i++ {
		g.Add(Point{X: 1000 * rnd.Float64(), Y: 1000 * rnd.Float64()})
	}
	origin := Point{X: 500, Y: 500}
	var dst []int32
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = g.Candidates(origin, 150, dst[:0])
	}
	_ = dst
}
