// Package rng provides a deterministic, splittable pseudo-random number
// generator used throughout the simulator.
//
// Determinism matters: every experiment in this repository is reproducible
// from a single seed. The standard library's math/rand is avoided for two
// reasons: its global functions share hidden state, and rand.Source cannot
// be split into independent named streams. Source here is based on
// SplitMix64 (Steele, Lea & Flood, OOPSLA 2014) for seeding and
// xoshiro256** (Blackman & Vigna, 2018) for generation, both implemented
// from the published algorithms.
package rng

import (
	"hash/fnv"
	"math"
)

// Source is a deterministic random number generator. The zero value is not
// usable; construct with New or Split. Source is not safe for concurrent
// use; split one stream per goroutine instead.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from seed via SplitMix64, which guarantees
// the internal xoshiro state is well distributed even for small seeds.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		src.s[i] = z ^ (z >> 31)
	}
	// xoshiro must not start from the all-zero state.
	if src.s[0]|src.s[1]|src.s[2]|src.s[3] == 0 {
		src.s[0] = 0x9e3779b97f4a7c15
	}
	return &src
}

// Split derives an independent stream identified by label. Streams derived
// with distinct labels from the same parent are statistically independent,
// and the derivation is stable across runs: Split does not consume or
// mutate the parent's state.
func (s *Source) Split(label string) *Source {
	h := fnv.New64a()
	_, _ = h.Write([]byte(label))
	return New(s.s[0] ^ h.Sum64())
}

// SplitIndex derives an independent stream identified by an integer index,
// for per-node streams.
func (s *Source) SplitIndex(index uint64) *Source {
	// Mix the index through SplitMix64 so consecutive indices do not
	// produce correlated seeds.
	z := index + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return New(s.s[1] ^ (z ^ (z >> 31)))
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits (xoshiro256**).
func (s *Source) Uint64() uint64 {
	result := rotl(s.s[1]*5, 7) * 9
	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = rotl(s.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation would be faster,
	// but modulo with rejection keeps the implementation obviously
	// correct; the bias-free threshold rejects at most one value in 2^64/n.
	bound := uint64(n)
	threshold := -bound % bound
	for {
		v := s.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// Uniform returns a uniform value in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	return s.Float64() < p
}

// NormFloat64 returns a standard normal variate via the Marsaglia polar
// method.
func (s *Source) NormFloat64() float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q > 0 && q < 1 {
			return u * math.Sqrt(-2*math.Log(q)/q)
		}
	}
}

// Perm returns a random permutation of [0, n) (Fisher–Yates).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the n elements addressed by swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}
