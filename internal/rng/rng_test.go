package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 100; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("draw %d: sources diverged: %d != %d", i, got, want)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("seeds 1 and 2 produced %d identical draws out of 64", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	s := New(0)
	seen := make(map[uint64]bool)
	for i := 0; i < 32; i++ {
		seen[s.Uint64()] = true
	}
	if len(seen) < 32 {
		t.Errorf("seed 0 produced repeats in first 32 draws: %d unique", len(seen))
	}
}

func TestSplitIndependentAndStable(t *testing.T) {
	parent := New(7)
	a1 := parent.Split("radio")
	b := parent.Split("mac")
	a2 := parent.Split("radio")
	for i := 0; i < 50; i++ {
		x := a1.Uint64()
		if x != a2.Uint64() {
			t.Fatalf("same-label splits diverged at draw %d", i)
		}
		if x == b.Uint64() {
			t.Fatalf("different-label splits collided at draw %d", i)
		}
	}
}

func TestSplitDoesNotConsumeParent(t *testing.T) {
	a := New(9)
	b := New(9)
	_ = a.Split("x")
	_ = a.SplitIndex(3)
	for i := 0; i < 20; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split consumed parent state")
		}
	}
}

func TestSplitIndexDistinct(t *testing.T) {
	parent := New(11)
	s0 := parent.SplitIndex(0)
	s1 := parent.SplitIndex(1)
	if s0.Uint64() == s1.Uint64() {
		t.Error("adjacent SplitIndex streams collided on first draw")
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(13)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(17)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(19)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := s.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniform(t *testing.T) {
	s := New(23)
	const buckets, n = 10, 100000
	var counts [buckets]int
	for i := 0; i < n; i++ {
		counts[s.Intn(buckets)]++
	}
	want := float64(n) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: count %d deviates from %v by more than 5 sigma", b, c, want)
		}
	}
}

func TestUniformRange(t *testing.T) {
	s := New(29)
	for i := 0; i < 1000; i++ {
		v := s.Uniform(-3, 8)
		if v < -3 || v >= 8 {
			t.Fatalf("Uniform(-3,8) out of range: %v", v)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(31)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bool(0.3) hit rate = %v", p)
	}
}

func TestBoolEdges(t *testing.T) {
	s := New(33)
	for i := 0; i < 100; i++ {
		if s.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !s.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(37)
	const n = 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(41)
	f := func(n uint8) bool {
		m := int(n % 64)
		p := s.Perm(m)
		if len(p) != m {
			return false
		}
		seen := make([]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	s := New(43)
	a := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range a {
		sum += v
	}
	s.Shuffle(len(a), func(i, j int) { a[i], a[j] = a[j], a[i] })
	got := 0
	for _, v := range a {
		got += v
	}
	if got != sum {
		t.Errorf("shuffle changed element sum: %d != %d", got, sum)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= s.Uint64()
	}
	_ = sink
}

func BenchmarkNormFloat64(b *testing.B) {
	s := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += s.NormFloat64()
	}
	_ = sink
}
