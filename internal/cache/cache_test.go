package cache

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
)

func mustNew(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestFingerprintDistinguishesInputs(t *testing.T) {
	base := Fingerprint("salt", []byte("config"), []byte("seed"))
	for name, other := range map[string]Key{
		"same inputs":       Fingerprint("salt", []byte("config"), []byte("seed")),
		"changed salt":      Fingerprint("salt2", []byte("config"), []byte("seed")),
		"changed config":    Fingerprint("salt", []byte("confih"), []byte("seed")),
		"changed seed":      Fingerprint("salt", []byte("config"), []byte("seee")),
		"shifted boundary":  Fingerprint("salt", []byte("configs"), []byte("eed")),
		"merged parts":      Fingerprint("salt", []byte("configseed")),
		"extra empty part":  Fingerprint("salt", []byte("config"), []byte("seed"), nil),
		"salt/part swapped": Fingerprint("config", []byte("salt"), []byte("seed")),
	} {
		if name == "same inputs" {
			if other != base {
				t.Errorf("%s: fingerprint not deterministic", name)
			}
			continue
		}
		if other == base {
			t.Errorf("%s: collided with base fingerprint", name)
		}
	}
}

func TestGetOrComputeRoundTripsDisk(t *testing.T) {
	dir := t.TempDir()
	payload := []byte(`{"detection_rate":0.9}`)
	key := Fingerprint(CodeSalt, []byte("cfg"))

	c := mustNew(t, Config{Dir: dir})
	got, hit, err := c.GetOrCompute(key, func() ([]byte, error) { return payload, nil })
	if err != nil || hit || !bytes.Equal(got, payload) {
		t.Fatalf("cold lookup: hit=%v err=%v data=%q", hit, err, got)
	}

	// A fresh Cache over the same dir (new process) must hit from disk
	// with the exact bytes.
	c2 := mustNew(t, Config{Dir: dir})
	got, hit, err = c2.GetOrCompute(key, func() ([]byte, error) {
		t.Fatal("warm lookup recomputed")
		return nil, nil
	})
	if err != nil || !hit || !bytes.Equal(got, payload) {
		t.Fatalf("warm lookup: hit=%v err=%v data=%q", hit, err, got)
	}
	s := c2.Stats()
	if s.DiskHits != 1 || s.Hits != 1 || s.Misses != 0 {
		t.Errorf("warm stats wrong: %+v", s)
	}
}

// corruptions maps each on-disk failure mode to a mutation of the entry
// file. Every mutated entry must read as a miss and recompute — never an
// error, never wrong bytes.
func corruptions() map[string]func([]byte) []byte {
	return map[string]func([]byte) []byte{
		"truncated header":  func(raw []byte) []byte { return raw[:diskHeaderLen/2] },
		"truncated payload": func(raw []byte) []byte { return raw[:len(raw)-1] },
		"empty file":        func([]byte) []byte { return nil },
		"flipped payload bit": func(raw []byte) []byte {
			raw[len(raw)-1] ^= 0x01
			return raw
		},
		"flipped checksum bit": func(raw []byte) []byte {
			raw[48] ^= 0x80
			return raw
		},
		"alien format version": func(raw []byte) []byte {
			raw[7] = '9'
			return raw
		},
		"wrong key in header": func(raw []byte) []byte {
			raw[8] ^= 0xFF
			return raw
		},
		"trailing garbage": func(raw []byte) []byte { return append(raw, 0xAA) },
	}
}

func TestCorruptEntriesFallBackToRecompute(t *testing.T) {
	for name, corrupt := range corruptions() {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			payload := []byte("trial result bytes")
			key := Fingerprint(CodeSalt, []byte(name))

			c := mustNew(t, Config{Dir: dir})
			if _, _, err := c.GetOrCompute(key, func() ([]byte, error) { return payload, nil }); err != nil {
				t.Fatal(err)
			}
			path := c.entryPath(key)
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, corrupt(raw), 0o644); err != nil {
				t.Fatal(err)
			}

			// Fresh cache (no memory copy): the corrupt entry must be
			// rejected and the computation re-run.
			c2 := mustNew(t, Config{Dir: dir})
			recomputed := false
			got, hit, err := c2.GetOrCompute(key, func() ([]byte, error) {
				recomputed = true
				return payload, nil
			})
			if err != nil {
				t.Fatalf("corrupt entry surfaced an error: %v", err)
			}
			if hit || !recomputed {
				t.Errorf("corrupt entry served as a hit (hit=%v recomputed=%v)", hit, recomputed)
			}
			if !bytes.Equal(got, payload) {
				t.Errorf("wrong bytes after corruption: %q", got)
			}
			if s := c2.Stats(); s.CorruptEntries != 1 {
				t.Errorf("corruption not counted: %+v", s)
			}

			// The recompute must have replaced the entry with a valid one.
			c3 := mustNew(t, Config{Dir: dir})
			if _, hit, _ := c3.GetOrCompute(key, func() ([]byte, error) { return payload, nil }); !hit {
				t.Error("recomputed entry was not re-persisted")
			}
		})
	}
}

func TestStaleCodeSaltMisses(t *testing.T) {
	dir := t.TempDir()
	c := mustNew(t, Config{Dir: dir})
	cfg := []byte("config")

	old := Fingerprint("beaconsec-trials-v0", cfg)
	c.Put(old, []byte("old-version result"))

	recomputed := false
	got, hit, err := c.GetOrCompute(Fingerprint(CodeSalt, cfg), func() ([]byte, error) {
		recomputed = true
		return []byte("new-version result"), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if hit || !recomputed || string(got) != "new-version result" {
		t.Errorf("stale salt served old entry: hit=%v recomputed=%v data=%q", hit, recomputed, got)
	}
}

// TestSingleFlightSharesOneComputation races many goroutines on one
// fingerprint: exactly one may compute, the rest must wait and share the
// identical bytes. Run under -race.
func TestSingleFlightSharesOneComputation(t *testing.T) {
	c := mustNew(t, Config{})
	key := Fingerprint(CodeSalt, []byte("shared"))
	var computes atomic.Int64
	gate := make(chan struct{})

	const waiters = 16
	results := make([][]byte, waiters)
	hits := make([]bool, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-gate
			data, hit, err := c.GetOrCompute(key, func() ([]byte, error) {
				computes.Add(1)
				return []byte("the one result"), nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i], hits[i] = data, hit
		}(i)
	}
	close(gate)
	wg.Wait()

	if n := computes.Load(); n != 1 {
		t.Fatalf("computed %d times, want 1", n)
	}
	sharedHits := 0
	for i := range results {
		if string(results[i]) != "the one result" {
			t.Fatalf("goroutine %d got %q", i, results[i])
		}
		if hits[i] {
			sharedHits++
		}
	}
	if sharedHits != waiters-1 {
		t.Errorf("%d shared hits, want %d", sharedHits, waiters-1)
	}
	if s := c.Stats(); s.Misses != 1 || s.Hits != waiters-1 {
		t.Errorf("stats wrong after single-flight: %+v", s)
	}
}

// TestSingleFlightErrorReachesAllWaiters pins error semantics: a failed
// flight propagates its error to every waiter and stores nothing, so the
// next lookup recomputes.
func TestSingleFlightErrorReachesAllWaiters(t *testing.T) {
	c := mustNew(t, Config{})
	key := Fingerprint(CodeSalt, []byte("failing"))
	boom := errors.New("simulated trial failure")
	started := make(chan struct{})
	release := make(chan struct{})

	var leaderErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _, leaderErr = c.GetOrCompute(key, func() ([]byte, error) {
			close(started)
			<-release
			return nil, boom
		})
	}()
	<-started
	var wg sync.WaitGroup
	errsCh := make(chan error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, err := c.GetOrCompute(key, func() ([]byte, error) { return nil, boom })
			errsCh <- err
		}()
	}
	close(release)
	<-done
	wg.Wait()
	close(errsCh)
	if !errors.Is(leaderErr, boom) {
		t.Errorf("leader error %v", leaderErr)
	}
	for err := range errsCh {
		if !errors.Is(err, boom) {
			t.Errorf("waiter error %v, want %v", err, boom)
		}
	}

	// Nothing stored: the next lookup must recompute (and can succeed).
	got, hit, err := c.GetOrCompute(key, func() ([]byte, error) { return []byte("ok"), nil })
	if err != nil || hit || string(got) != "ok" {
		t.Errorf("post-failure lookup: %q hit=%v err=%v", got, hit, err)
	}
}

func TestConcurrentDistinctKeysUnderRace(t *testing.T) {
	c := mustNew(t, Config{Dir: t.TempDir(), MaxMemEntries: 8})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := Fingerprint(CodeSalt, []byte{byte(i % 16)})
				want := fmt.Sprintf("result-%d", i%16)
				got, _, err := c.GetOrCompute(key, func() ([]byte, error) {
					return []byte(want), nil
				})
				if err != nil {
					t.Error(err)
					return
				}
				if string(got) != want {
					t.Errorf("key %d served %q, want %q", i%16, got, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestLRUEvictsToDiskNotOblivion(t *testing.T) {
	dir := t.TempDir()
	c := mustNew(t, Config{Dir: dir, MaxMemEntries: 2})
	keys := make([]Key, 3)
	for i := range keys {
		keys[i] = Fingerprint(CodeSalt, []byte{byte(i)})
		c.Put(keys[i], []byte{byte(i)})
	}
	if s := c.Stats(); s.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", s.Evictions)
	}
	// The evicted entry (keys[0], oldest) is gone from memory but must
	// still be served — from disk.
	data, ok := c.Get(keys[0])
	if !ok || !bytes.Equal(data, []byte{0}) {
		t.Fatalf("evicted entry lost: ok=%v data=%v", ok, data)
	}
	if s := c.Stats(); s.DiskHits != 1 {
		t.Errorf("evicted entry not served from disk: %+v", s)
	}
}

func TestMemoryOnlyCacheSkipsDisk(t *testing.T) {
	c := mustNew(t, Config{})
	key := Fingerprint(CodeSalt, []byte("mem"))
	c.Put(key, []byte("data"))
	if data, ok := c.Get(key); !ok || string(data) != "data" {
		t.Fatalf("memory-only lookup failed: ok=%v data=%q", ok, data)
	}
	if s := c.Stats(); s.BytesWritten != 0 || s.WriteErrors != 0 {
		t.Errorf("memory-only cache touched disk: %+v", s)
	}
}

func TestNewRejectsUnwritableDir(t *testing.T) {
	// A path under a regular file can never be a directory.
	file := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Dir: filepath.Join(file, "cache")}); err == nil {
		t.Fatal("New accepted a directory path under a regular file")
	}
}

func TestDiskWriteFailureStillServes(t *testing.T) {
	dir := t.TempDir()
	c := mustNew(t, Config{Dir: dir})
	// Make the shard directory un-creatable by occupying its name with
	// a file.
	key := Fingerprint(CodeSalt, []byte("unwritable"))
	shard := filepath.Dir(c.entryPath(key))
	if err := os.WriteFile(shard, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, hit, err := c.GetOrCompute(key, func() ([]byte, error) { return []byte("r"), nil })
	if err != nil || hit || string(got) != "r" {
		t.Fatalf("write-failure lookup: %q hit=%v err=%v", got, hit, err)
	}
	if s := c.Stats(); s.WriteErrors != 1 {
		t.Errorf("write failure not counted: %+v", s)
	}
	// Served from memory on the next lookup despite the failed persist.
	if _, hit, _ := c.GetOrCompute(key, func() ([]byte, error) { return []byte("r"), nil }); !hit {
		t.Error("memory copy lost after disk write failure")
	}
}
