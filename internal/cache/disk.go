package cache

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"os"
	"path/filepath"
)

// On-disk entry layout (all integers little-endian):
//
//	offset  0  magic "BSECCH01" (8 bytes) — format version
//	offset  8  key (32 bytes) — must match the addressed key
//	offset 40  payload length (8 bytes)
//	offset 48  SHA-256 of payload (32 bytes)
//	offset 80  payload
//
// A file is valid only if every field checks out AND the file ends
// exactly at the declared payload length: truncation, trailing garbage,
// bit flips, and format-version changes all read as a miss.
var diskMagic = [8]byte{'B', 'S', 'E', 'C', 'C', 'H', '0', '1'}

const diskHeaderLen = 8 + 32 + 8 + 32

// entryPath shards entries by the first key byte so no single directory
// accumulates the whole store.
func (c *Cache) entryPath(key Key) string {
	hex := key.String()
	return filepath.Join(c.dir, hex[:2], hex+".bsc")
}

// diskGet reads and validates the entry for key. Invalid entries are
// counted, best-effort deleted, and reported as a miss — never an error.
func (c *Cache) diskGet(key Key) ([]byte, bool) {
	if c.dir == "" {
		return nil, false
	}
	path := c.entryPath(key)
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	payload, ok := decodeEntry(key, raw)
	if !ok {
		c.stats.CorruptEntries.Inc()
		os.Remove(path)
		return nil, false
	}
	c.stats.BytesRead.Add(uint64(len(raw)))
	return payload, true
}

// decodeEntry validates one raw entry file against the key it was
// addressed by, returning the payload.
func decodeEntry(key Key, raw []byte) ([]byte, bool) {
	if len(raw) < diskHeaderLen {
		return nil, false
	}
	if !bytes.Equal(raw[:8], diskMagic[:]) {
		return nil, false
	}
	if !bytes.Equal(raw[8:40], key[:]) {
		return nil, false
	}
	n := binary.LittleEndian.Uint64(raw[40:48])
	payload := raw[diskHeaderLen:]
	if uint64(len(payload)) != n {
		return nil, false
	}
	sum := sha256.Sum256(payload)
	if !bytes.Equal(raw[48:80], sum[:]) {
		return nil, false
	}
	return payload, true
}

// encodeEntry renders the entry file for key/payload.
func encodeEntry(key Key, payload []byte) []byte {
	raw := make([]byte, diskHeaderLen+len(payload))
	copy(raw[:8], diskMagic[:])
	copy(raw[8:40], key[:])
	binary.LittleEndian.PutUint64(raw[40:48], uint64(len(payload)))
	sum := sha256.Sum256(payload)
	copy(raw[48:80], sum[:])
	copy(raw[diskHeaderLen:], payload)
	return raw
}

// diskPut writes the entry atomically: temp file in the final directory,
// fsync, rename. A failure at any step counts a WriteError and leaves
// either the old entry or nothing — never a partial file under the final
// name.
func (c *Cache) diskPut(key Key, payload []byte) {
	if c.dir == "" {
		return
	}
	path := c.entryPath(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		c.stats.WriteErrors.Inc()
		return
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		c.stats.WriteErrors.Inc()
		return
	}
	raw := encodeEntry(key, payload)
	_, werr := tmp.Write(raw)
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), path)
	}
	if werr != nil {
		os.Remove(tmp.Name())
		c.stats.WriteErrors.Inc()
		return
	}
	c.stats.BytesWritten.Add(uint64(len(raw)))
}
