// Package cache is a content-addressed store for deterministic trial
// results: the memoization layer behind incremental figure sweeps. The
// harness guarantees a trial's output is fully determined by its inputs
// (experiment config + derived seeds + simulation code), so a result can
// be keyed by a fingerprint of those inputs and replayed instead of
// recomputed — warm figure runs only pay for what changed.
//
// Three layers, in lookup order:
//
//   - Single-flight. Identical in-flight fingerprints share one
//     computation: when two concurrently regenerating figures contain
//     the same sweep (fig12/fig13 share the detection sweep), each trial
//     runs once and every waiter receives the same bytes.
//   - Memory. A bounded LRU of recently used entries, so repeated
//     lookups within a process never touch the disk.
//   - Disk. One checksummed file per entry under Config.Dir, written
//     atomically (temp file + fsync + rename), so results survive across
//     processes and a crash can never leave a half-written entry that
//     parses.
//
// The correctness bar is absolute: the cache either serves the exact
// bytes that were stored or reports a miss. Truncated, bit-flipped, or
// alien-version entries fail validation and fall back to recompute —
// never an error, never wrong bytes. Any config change reaches the
// fingerprint through the caller's canonical key encoding; any
// simulation-semantics change must bump CodeSalt.
package cache

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"os"
	"sync"

	"beaconsec/internal/metrics"
)

// CodeSalt versions the simulation code in every fingerprint. Bump it
// whenever a change alters what any cached computation would produce —
// simulation semantics, experiment config interpretation, result
// serialization — so stale entries miss instead of being served. Entries
// under an old salt are simply never addressed again (and age out of the
// LRU; on disk they are inert files).
const CodeSalt = "beaconsec-trials-v1"

// Key is a 32-byte content address: the SHA-256 fingerprint of a
// computation's inputs.
type Key [32]byte

// String renders the key as lowercase hex.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// Fingerprint hashes a salt plus the given parts into a Key. Every part
// is length-prefixed, so distinct part lists can never collide by
// concatenation ("ab","c" vs "a","bc").
func Fingerprint(salt string, parts ...[]byte) Key {
	h := sha256.New()
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(salt)))
	h.Write(n[:])
	h.Write([]byte(salt))
	for _, p := range parts {
		binary.LittleEndian.PutUint64(n[:], uint64(len(p)))
		h.Write(n[:])
		h.Write(p)
	}
	var k Key
	h.Sum(k[:0])
	return k
}

// Stats counts cache activity. All fields are atomic counters, safe to
// read while the cache is in use; Snapshot copies them into plain
// integers for JSON export.
type Stats struct {
	// Hits counts lookups served without computing: memory, disk, or a
	// shared in-flight computation.
	Hits metrics.Counter
	// Misses counts lookups that ran the computation.
	Misses metrics.Counter
	// DiskHits counts the subset of Hits served from the on-disk store.
	DiskHits metrics.Counter
	// FlightShares counts the subset of Hits that joined another
	// caller's in-flight computation.
	FlightShares metrics.Counter
	// Stores counts successful entry writes (memory insert + disk write
	// attempt).
	Stores metrics.Counter
	// Evictions counts entries dropped from the memory LRU (they remain
	// on disk).
	Evictions metrics.Counter
	// CorruptEntries counts on-disk entries that failed validation
	// (truncated, checksum mismatch, alien format) and were discarded.
	CorruptEntries metrics.Counter
	// WriteErrors counts failed disk writes (the result is still served
	// from memory; the entry is just not persisted).
	WriteErrors metrics.Counter
	// BytesRead / BytesWritten count payload bytes moved to/from disk.
	BytesRead    metrics.Counter
	BytesWritten metrics.Counter
}

// StatsSnapshot is a plain-integer copy of Stats for JSON export.
type StatsSnapshot struct {
	Hits           uint64 `json:"hits"`
	Misses         uint64 `json:"misses"`
	DiskHits       uint64 `json:"disk_hits"`
	FlightShares   uint64 `json:"flight_shares"`
	Stores         uint64 `json:"stores"`
	Evictions      uint64 `json:"evictions"`
	CorruptEntries uint64 `json:"corrupt_entries"`
	WriteErrors    uint64 `json:"write_errors"`
	BytesRead      uint64 `json:"bytes_read"`
	BytesWritten   uint64 `json:"bytes_written"`
}

// HitRate returns Hits / (Hits + Misses), or 0 with no lookups.
func (s StatsSnapshot) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Config parameterizes a Cache.
type Config struct {
	// Dir is the on-disk store's directory, created on New. Empty
	// disables the disk layer: the cache is memory-only (single-flight
	// and LRU still apply).
	Dir string
	// MaxMemEntries bounds the memory LRU; <= 0 means DefaultMaxMemEntries.
	MaxMemEntries int
}

// DefaultMaxMemEntries is the memory LRU bound when Config leaves it
// zero: generous for any figure sweep (the full evaluation is a few
// thousand trials) while bounding worst-case memory.
const DefaultMaxMemEntries = 8192

// Cache is the store. Safe for concurrent use.
type Cache struct {
	dir        string
	maxEntries int

	mu  sync.Mutex // guards lru + index
	lru *list.List // front = most recent; values are *memEntry
	idx map[Key]*list.Element

	fmu     sync.Mutex // guards flights
	flights map[Key]*flight

	stats Stats
}

type memEntry struct {
	key  Key
	data []byte
}

// flight is one in-progress computation; waiters block on done and then
// read data/err.
type flight struct {
	done chan struct{}
	data []byte
	err  error
}

// New opens a cache. A non-empty Dir is created (MkdirAll) and probed
// for writability so an unusable location fails here, with a clear
// error, instead of mid-sweep.
func New(cfg Config) (*Cache, error) {
	if cfg.MaxMemEntries <= 0 {
		cfg.MaxMemEntries = DefaultMaxMemEntries
	}
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("cache: create %s: %w", cfg.Dir, err)
		}
		probe, err := os.CreateTemp(cfg.Dir, ".probe-*")
		if err != nil {
			return nil, fmt.Errorf("cache: %s is not writable: %w", cfg.Dir, err)
		}
		probe.Close()
		if err := os.Remove(probe.Name()); err != nil {
			return nil, fmt.Errorf("cache: %s is not writable: %w", cfg.Dir, err)
		}
	}
	return &Cache{
		dir:        cfg.Dir,
		maxEntries: cfg.MaxMemEntries,
		lru:        list.New(),
		idx:        make(map[Key]*list.Element),
		flights:    make(map[Key]*flight),
	}, nil
}

// Stats returns a point-in-time copy of the cache's counters.
func (c *Cache) Stats() StatsSnapshot {
	return StatsSnapshot{
		Hits:           c.stats.Hits.Load(),
		Misses:         c.stats.Misses.Load(),
		DiskHits:       c.stats.DiskHits.Load(),
		FlightShares:   c.stats.FlightShares.Load(),
		Stores:         c.stats.Stores.Load(),
		Evictions:      c.stats.Evictions.Load(),
		CorruptEntries: c.stats.CorruptEntries.Load(),
		WriteErrors:    c.stats.WriteErrors.Load(),
		BytesRead:      c.stats.BytesRead.Load(),
		BytesWritten:   c.stats.BytesWritten.Load(),
	}
}

// Get returns the stored bytes for key, consulting memory then disk.
// Callers must treat the returned slice as immutable.
func (c *Cache) Get(key Key) ([]byte, bool) {
	if data, ok := c.memGet(key); ok {
		c.stats.Hits.Inc()
		return data, true
	}
	if data, ok := c.diskGet(key); ok {
		c.memPut(key, data)
		c.stats.Hits.Inc()
		c.stats.DiskHits.Inc()
		return data, true
	}
	return nil, false
}

// Put stores data under key in memory and (when configured) on disk.
// Disk failures are counted, not returned: the entry still serves from
// memory, and the next cold process recomputes.
func (c *Cache) Put(key Key, data []byte) {
	c.memPut(key, data)
	c.diskPut(key, data)
	c.stats.Stores.Inc()
}

// GetOrCompute returns the bytes stored under key, computing and storing
// them on a miss. Identical concurrent keys are single-flighted: one
// caller computes, the rest wait and share the result (hit=true — they
// did not compute). A compute error is returned to every caller of the
// flight and nothing is stored.
func (c *Cache) GetOrCompute(key Key, compute func() ([]byte, error)) (data []byte, hit bool, err error) {
	if data, ok := c.memGet(key); ok {
		c.stats.Hits.Inc()
		return data, true, nil
	}

	c.fmu.Lock()
	if f, ok := c.flights[key]; ok {
		c.fmu.Unlock()
		<-f.done
		if f.err != nil {
			return nil, false, f.err
		}
		c.stats.Hits.Inc()
		c.stats.FlightShares.Inc()
		return f.data, true, nil
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.fmu.Unlock()
	defer func() {
		f.data, f.err = data, err
		c.fmu.Lock()
		delete(c.flights, key)
		c.fmu.Unlock()
		close(f.done)
	}()

	// Re-check memory: a racing flight may have completed between the
	// first memGet and this flight's registration.
	if cached, ok := c.memGet(key); ok {
		c.stats.Hits.Inc()
		return cached, true, nil
	}
	if cached, ok := c.diskGet(key); ok {
		c.memPut(key, cached)
		c.stats.Hits.Inc()
		c.stats.DiskHits.Inc()
		return cached, true, nil
	}

	c.stats.Misses.Inc()
	computed, cerr := compute()
	if cerr != nil {
		return nil, false, cerr
	}
	c.Put(key, computed)
	return computed, false, nil
}

// memGet looks key up in the LRU, refreshing its recency.
func (c *Cache) memGet(key Key) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.idx[key]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*memEntry).data, true
}

// memPut inserts (or refreshes) key in the LRU, evicting from the back
// past the entry bound.
func (c *Cache) memPut(key Key, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.idx[key]; ok {
		el.Value.(*memEntry).data = data
		c.lru.MoveToFront(el)
		return
	}
	c.idx[key] = c.lru.PushFront(&memEntry{key: key, data: data})
	for c.lru.Len() > c.maxEntries {
		last := c.lru.Back()
		c.lru.Remove(last)
		delete(c.idx, last.Value.(*memEntry).key)
		c.stats.Evictions.Inc()
	}
}
