package ident

import "testing"

func TestStringForms(t *testing.T) {
	tests := []struct {
		id   NodeID
		want string
	}{
		{BaseStation, "base"},
		{Broadcast, "bcast"},
		{Nobody, "none"},
		{NodeID(7), "n7"},
	}
	for _, tt := range tests {
		if got := tt.id.String(); got != tt.want {
			t.Errorf("String(%d) = %q, want %q", uint16(tt.id), got, tt.want)
		}
	}
}

func TestIsUnicast(t *testing.T) {
	if Broadcast.IsUnicast() {
		t.Error("Broadcast.IsUnicast() = true")
	}
	if Nobody.IsUnicast() {
		t.Error("Nobody.IsUnicast() = true")
	}
	if !NodeID(3).IsUnicast() {
		t.Error("n3.IsUnicast() = false")
	}
	if !BaseStation.IsUnicast() {
		t.Error("BaseStation.IsUnicast() = false (base station is a unicast target)")
	}
}

func paperSpace() Space {
	return Space{NumBeacons: 110, NumSensors: 890, DetectingIDs: 8}
}

func TestSpaceRangesDisjoint(t *testing.T) {
	s := paperSpace()
	seen := make(map[NodeID]string)
	record := func(id NodeID, what string) {
		if prev, dup := seen[id]; dup {
			t.Fatalf("ID %v allocated twice: %s and %s", id, prev, what)
		}
		seen[id] = what
	}
	for i := 0; i < s.NumBeacons; i++ {
		record(s.BeaconID(i), "beacon")
	}
	for i := 0; i < s.NumSensors; i++ {
		record(s.SensorID(i), "sensor")
	}
	for i := 0; i < s.NumBeacons; i++ {
		for j := 0; j < s.DetectingIDs; j++ {
			record(s.DetectingID(i, j), "detecting")
		}
	}
	if len(seen) != s.Total() {
		t.Errorf("allocated %d IDs, Total() = %d", len(seen), s.Total())
	}
}

func TestDetectingIDsLookLikeNonBeacons(t *testing.T) {
	s := paperSpace()
	for i := 0; i < s.NumBeacons; i++ {
		for j := 0; j < s.DetectingIDs; j++ {
			id := s.DetectingID(i, j)
			if s.IsBeaconID(id) {
				t.Fatalf("detecting ID %v classified as beacon ID", id)
			}
		}
	}
	for i := 0; i < s.NumSensors; i++ {
		if s.IsBeaconID(s.SensorID(i)) {
			t.Fatalf("sensor ID %v classified as beacon ID", s.SensorID(i))
		}
	}
	for i := 0; i < s.NumBeacons; i++ {
		if !s.IsBeaconID(s.BeaconID(i)) {
			t.Fatalf("beacon ID %v not classified as beacon ID", s.BeaconID(i))
		}
	}
}

func TestNobodyIsNotBeacon(t *testing.T) {
	if paperSpace().IsBeaconID(Nobody) {
		t.Error("Nobody classified as beacon")
	}
}

func TestSpaceValid(t *testing.T) {
	if !paperSpace().Valid() {
		t.Error("paper-scale space reported invalid")
	}
	huge := Space{NumBeacons: 10000, NumSensors: 60000, DetectingIDs: 8}
	if huge.Valid() {
		t.Error("space overflowing uint16 reported valid")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s := paperSpace()
	cases := []struct {
		name string
		fn   func()
	}{
		{"beacon -1", func() { s.BeaconID(-1) }},
		{"beacon max", func() { s.BeaconID(s.NumBeacons) }},
		{"sensor -1", func() { s.SensorID(-1) }},
		{"sensor max", func() { s.SensorID(s.NumSensors) }},
		{"detecting j", func() { s.DetectingID(0, s.DetectingIDs) }},
		{"detecting i", func() { s.DetectingID(s.NumBeacons, 0) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			tc.fn()
		})
	}
}
