// Package ident defines node identity types shared by every protocol layer.
//
// The paper distinguishes beacon-node IDs from non-beacon IDs: a detecting
// beacon node probes its peers under a "detecting ID" that must be
// recognized as a non-beacon ID, so a malicious beacon cannot tell probes
// from genuine location requests. This package owns that ID-space split.
package ident

import "fmt"

// NodeID identifies a node (or a detecting pseudonym) on the network.
type NodeID uint16

// Reserved IDs.
const (
	// BaseStation is the well-known address of the base station.
	BaseStation NodeID = 0xFFFF
	// Broadcast addresses every radio in range.
	Broadcast NodeID = 0xFFFE
	// Nobody is the zero "no node" sentinel; valid node IDs start at 1,
	// following the start-enums-at-one convention so the zero value is
	// never a real node.
	Nobody NodeID = 0
)

// String implements fmt.Stringer.
func (id NodeID) String() string {
	switch id {
	case BaseStation:
		return "base"
	case Broadcast:
		return "bcast"
	case Nobody:
		return "none"
	default:
		return fmt.Sprintf("n%d", uint16(id))
	}
}

// IsUnicast reports whether id addresses a single ordinary node.
func (id NodeID) IsUnicast() bool {
	return id != Broadcast && id != Nobody
}

// Space assigns ID ranges to node populations. Beacon IDs and non-beacon
// IDs come from disjoint ranges; detecting IDs are allocated from the
// non-beacon range *above* the real non-beacon nodes, so they are
// indistinguishable from non-beacon IDs by construction (the attacker only
// learns "this requester is not a beacon").
type Space struct {
	// NumBeacons is the number of beacon nodes; their IDs are
	// [1, NumBeacons].
	NumBeacons int
	// NumSensors is the number of non-beacon sensor nodes; their IDs are
	// [NumBeacons+1, NumBeacons+NumSensors].
	NumSensors int
	// DetectingIDs is the number of detecting pseudonyms per beacon node
	// (the paper's m).
	DetectingIDs int
}

// BeaconID returns the ID of the i-th beacon node, i in [0, NumBeacons).
func (s Space) BeaconID(i int) NodeID {
	if i < 0 || i >= s.NumBeacons {
		panic(fmt.Sprintf("ident: beacon index %d out of range [0,%d)", i, s.NumBeacons))
	}
	return NodeID(1 + i)
}

// SensorID returns the ID of the i-th non-beacon node.
func (s Space) SensorID(i int) NodeID {
	if i < 0 || i >= s.NumSensors {
		panic(fmt.Sprintf("ident: sensor index %d out of range [0,%d)", i, s.NumSensors))
	}
	return NodeID(1 + s.NumBeacons + i)
}

// DetectingID returns the j-th detecting pseudonym of the i-th beacon
// node. Detecting IDs live in the non-beacon range.
func (s Space) DetectingID(i, j int) NodeID {
	if j < 0 || j >= s.DetectingIDs {
		panic(fmt.Sprintf("ident: detecting index %d out of range [0,%d)", j, s.DetectingIDs))
	}
	if i < 0 || i >= s.NumBeacons {
		panic(fmt.Sprintf("ident: beacon index %d out of range [0,%d)", i, s.NumBeacons))
	}
	return NodeID(1 + s.NumBeacons + s.NumSensors + i*s.DetectingIDs + j)
}

// IsBeaconID reports whether id belongs to the beacon range. This is the
// public knowledge every node (including the attacker) has.
func (s Space) IsBeaconID(id NodeID) bool {
	return id >= 1 && int(id) <= s.NumBeacons
}

// Total returns the total number of allocated IDs, including pseudonyms.
func (s Space) Total() int {
	return s.NumBeacons + s.NumSensors + s.NumBeacons*s.DetectingIDs
}

// Valid reports whether the space fits in the NodeID range, keeping clear
// of the reserved top-of-range addresses.
func (s Space) Valid() bool {
	return s.NumBeacons >= 0 && s.NumSensors >= 0 && s.DetectingIDs >= 0 &&
		s.Total() < int(Broadcast)-1
}
