package analysis

import (
	"math"
	"testing"

	"beaconsec/internal/rng"
)

func close(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestStrategyP(t *testing.T) {
	tests := []struct {
		name string
		s    Strategy
		want float64
	}{
		{"all zero", Strategy{}, 1},
		{"always normal", Strategy{PN: 1}, 0},
		{"half normal", Strategy{PN: 0.5}, 0.5},
		{"mixed", Strategy{PN: 0.5, PW: 0.5, PL: 0.5}, 0.125},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.s.P(); !close(got, tt.want, 1e-12) {
				t.Errorf("P() = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestStrategyValidate(t *testing.T) {
	if err := (Strategy{PN: 0.2, PW: 0.3, PL: 0.4}).Validate(); err != nil {
		t.Errorf("valid strategy rejected: %v", err)
	}
	for _, s := range []Strategy{{PN: -0.1}, {PW: 1.1}, {PL: math.NaN()}} {
		if err := s.Validate(); err == nil {
			t.Errorf("invalid strategy %+v accepted", s)
		}
	}
}

func TestStrategyForP(t *testing.T) {
	for _, p := range []float64{0, 0.25, 0.5, 1} {
		s := StrategyForP(p)
		if !close(s.P(), p, 1e-12) {
			t.Errorf("StrategyForP(%v).P() = %v", p, s.P())
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("StrategyForP(2) did not panic")
		}
	}()
	StrategyForP(2)
}

func TestDetectionRate(t *testing.T) {
	tests := []struct {
		p    float64
		m    int
		want float64
	}{
		{0, 8, 0},
		{1, 1, 1},
		{0.5, 1, 0.5},
		{0.5, 2, 0.75},
		{0.2, 8, 1 - math.Pow(0.8, 8)},
		{0.3, 0, 0},
	}
	for _, tt := range tests {
		if got := DetectionRate(tt.p, tt.m); !close(got, tt.want, 1e-12) {
			t.Errorf("DetectionRate(%v, %d) = %v, want %v", tt.p, tt.m, got, tt.want)
		}
	}
}

func TestDetectionRateMonotone(t *testing.T) {
	// P_r grows with both P and m (paper: "a benign detecting node can
	// always increase m to have higher detection rate").
	for m := 1; m <= 16; m *= 2 {
		prev := -1.0
		for p := 0.0; p <= 1.0; p += 0.01 {
			pr := DetectionRate(p, m)
			if pr < prev-1e-12 {
				t.Fatalf("P_r not monotone in P at m=%d p=%v", m, p)
			}
			if pr < 0 || pr > 1 {
				t.Fatalf("P_r out of range at m=%d p=%v: %v", m, p, pr)
			}
			prev = pr
		}
	}
	for p := 0.05; p < 1; p += 0.1 {
		if DetectionRate(p, 8) <= DetectionRate(p, 4) {
			t.Fatalf("P_r not increasing in m at p=%v", p)
		}
	}
}

func TestPopulationValidate(t *testing.T) {
	if err := PaperPopulation().Validate(); err != nil {
		t.Errorf("paper population rejected: %v", err)
	}
	bad := []Population{
		{N: 0, Nb: 0, Na: 0},
		{N: 10, Nb: 20, Na: 0},
		{N: 100, Nb: 10, Na: 20},
	}
	for _, pop := range bad {
		if err := pop.Validate(); err == nil {
			t.Errorf("invalid population %+v accepted", pop)
		}
	}
	if got := PaperPopulation().BenignBeacons(); got != 100 {
		t.Errorf("paper benign beacons = %d, want 100", got)
	}
}

func TestPaperPopulationFraction(t *testing.T) {
	// "we always assume 10% of sensor nodes are benign beacon nodes".
	pop := PaperPopulation()
	frac := float64(pop.BenignBeacons()) / float64(pop.N)
	if !close(frac, 0.1, 1e-12) {
		t.Errorf("benign beacon fraction = %v, want 0.1", frac)
	}
}

func TestBinomPMFAgainstDirect(t *testing.T) {
	// Check log-space computation against direct evaluation for small n.
	choose := func(n, k int) float64 {
		c := 1.0
		for i := 0; i < k; i++ {
			c = c * float64(n-i) / float64(i+1)
		}
		return c
	}
	for n := 0; n <= 12; n++ {
		for k := 0; k <= n; k++ {
			p := 0.3
			want := choose(n, k) * math.Pow(p, float64(k)) * math.Pow(1-p, float64(n-k))
			if got := BinomPMF(n, p, k); !close(got, want, 1e-10) {
				t.Fatalf("BinomPMF(%d, %v, %d) = %v, want %v", n, p, k, got, want)
			}
		}
	}
}

func TestBinomPMFEdges(t *testing.T) {
	if got := BinomPMF(10, 0, 0); got != 1 {
		t.Errorf("PMF(10,0,0) = %v", got)
	}
	if got := BinomPMF(10, 0, 1); got != 0 {
		t.Errorf("PMF(10,0,1) = %v", got)
	}
	if got := BinomPMF(10, 1, 10); got != 1 {
		t.Errorf("PMF(10,1,10) = %v", got)
	}
	if got := BinomPMF(10, 0.5, -1); got != 0 {
		t.Errorf("PMF(k=-1) = %v", got)
	}
	if got := BinomPMF(10, 0.5, 11); got != 0 {
		t.Errorf("PMF(k>n) = %v", got)
	}
}

func TestBinomPMFSumsToOne(t *testing.T) {
	for _, n := range []int{1, 10, 100, 500} {
		for _, p := range []float64{0.01, 0.3, 0.9} {
			sum := 0.0
			for k := 0; k <= n; k++ {
				sum += BinomPMF(n, p, k)
			}
			if !close(sum, 1, 1e-9) {
				t.Errorf("PMF(n=%d, p=%v) sums to %v", n, p, sum)
			}
		}
	}
}

func TestBinomCDFMatchesSimulation(t *testing.T) {
	src := rng.New(3)
	const n, p, trials = 40, 0.25, 200000
	counts := make([]int, n+1)
	for i := 0; i < trials; i++ {
		k := 0
		for j := 0; j < n; j++ {
			if src.Bool(p) {
				k++
			}
		}
		counts[k]++
	}
	cum := 0
	for k := 0; k <= n; k += 4 {
		for j := max(0, k-3); j <= k; j++ {
			cum += counts[j]
		}
		got := BinomCDF(n, p, k)
		want := float64(cum) / trials
		if !close(got, want, 0.01) {
			t.Errorf("CDF(%d) = %v, simulated %v", k, got, want)
		}
	}
}

func TestRevocationRateShape(t *testing.T) {
	pop := PaperPopulation()
	// Monotone increasing in P and N_c, decreasing in τ′ (Figures 6, 7).
	prev := -1.0
	for p := 0.0; p <= 1.0; p += 0.05 {
		pd := RevocationRate(p, 8, 2, 10, pop)
		if pd < prev-1e-12 {
			t.Fatalf("P_d not monotone in P at %v", p)
		}
		if pd < 0 || pd > 1 {
			t.Fatalf("P_d out of range at %v: %v", p, pd)
		}
		prev = pd
	}
	if RevocationRate(0.3, 8, 1, 10, pop) <= RevocationRate(0.3, 8, 4, 10, pop) {
		t.Error("P_d should decrease with larger τ′")
	}
	if RevocationRate(0.3, 8, 2, 20, pop) <= RevocationRate(0.3, 8, 2, 5, pop) {
		t.Error("P_d should increase with more requesting nodes")
	}
	if RevocationRate(0.3, 8, 2, 10, pop) <= RevocationRate(0.3, 2, 2, 10, pop) {
		t.Error("P_d should increase with more detecting IDs")
	}
}

func TestRevocationRateZeroAttack(t *testing.T) {
	if got := RevocationRate(0, 8, 2, 10, PaperPopulation()); got != 0 {
		t.Errorf("P_d at P=0: %v", got)
	}
}

func TestAffectedNodesShape(t *testing.T) {
	pop := PaperPopulation()
	// N' at P=0 is 0; larger m lowers the attacker's best case; larger
	// τ' raises it (Figure 8, at the reconstructed N_c = 100).
	if got := AffectedNodes(0, 8, 2, 100, pop); got != 0 {
		t.Errorf("N'(0) = %v", got)
	}
	m8, _ := MaxAffected(8, 2, 100, pop)
	m4, _ := MaxAffected(4, 2, 100, pop)
	if m8 >= m4 {
		t.Errorf("max N' with m=8 (%v) should be below m=4 (%v)", m8, m4)
	}
	t2, _ := MaxAffected(8, 2, 100, pop)
	t4, _ := MaxAffected(8, 4, 100, pop)
	if t4 <= t2 {
		t.Errorf("max N' with τ'=4 (%v) should exceed τ'=2 (%v)", t4, t2)
	}
}

func TestAffectedNodesSmallInPractice(t *testing.T) {
	// Paper: "in practice, there are only a few non-beacon nodes
	// accepting the malicious beacon signals" — single digits at the
	// paper's parameters.
	pop := PaperPopulation()
	maxN, _ := MaxAffected(8, 2, 100, pop)
	if maxN <= 0 || maxN > 10 {
		t.Errorf("max N' = %v, expected a small positive number", maxN)
	}
}

func TestMaxAffectedRisesPeaksDeclines(t *testing.T) {
	// Figure 9's qualitative shape: N'(N_c) rises sharply, peaks, "then
	// begins to drop quickly and finally remains at certain level".
	pop := PaperPopulation()
	peakNc, peakVal := 0, 0.0
	var last float64
	const maxNc = 250
	for nc := 1; nc <= maxNc; nc += 3 {
		v, _ := MaxAffected(8, 2, nc, pop)
		if v > peakVal {
			peakVal, peakNc = v, nc
		}
		last = v
	}
	if peakNc <= 3 || peakNc >= maxNc-10 {
		t.Errorf("N' peak at boundary N_c = %d; want an interior peak", peakNc)
	}
	if last >= peakVal*0.95 {
		t.Errorf("N' does not decline after the peak: peak %v at %d, final %v", peakVal, peakNc, last)
	}
	if last <= 0 {
		t.Errorf("N' plateau should stay positive, got %v", last)
	}
}

func TestFalsePositiveBound(t *testing.T) {
	// N_f = ((1-p_d) N_w + N_a (τ+1)) / (τ'+1)
	got := FalsePositiveBound(10, 10, 10, 2, 0.9)
	want := (0.1*10 + 10*11) / 3
	if !close(got, want, 1e-9) {
		t.Errorf("N_f = %v, want %v", got, want)
	}
	// Decreasing in τ', increasing in τ (the paper's trade-off).
	if FalsePositiveBound(10, 10, 10, 3, 0.9) >= got {
		t.Error("N_f should fall with larger τ'")
	}
	if FalsePositiveBound(10, 10, 12, 2, 0.9) <= got {
		t.Error("N_f should rise with larger τ")
	}
	if FalsePositiveBound(10, 10, 10, 2, 0.99) >= got {
		t.Error("N_f should fall with better wormhole detector")
	}
}

func defaultReportParams() ReportCounterParams {
	return ReportCounterParams{
		Pop:      PaperPopulation(),
		Nc:       100,
		Nw:       10,
		Pd:       0.9,
		M:        8,
		P:        0.2,
		TauPrime: 2,
		Tau:      10,
	}
}

func TestReportCounterExceedProb(t *testing.T) {
	prm := defaultReportParams()
	// Figure 10: P_o ≈ 0 by τ = 10, and monotone decreasing in τ.
	prev := 2.0
	for tau := 0; tau <= 12; tau++ {
		po := ReportCounterExceedProb(tau, prm)
		if po < 0 || po > 1 {
			t.Fatalf("P_o(%d) = %v out of range", tau, po)
		}
		if po > prev+1e-12 {
			t.Fatalf("P_o not decreasing at τ=%d", tau)
		}
		prev = po
	}
	if po := ReportCounterExceedProb(10, prm); po > 1e-3 {
		t.Errorf("P_o(10) = %v, paper says close to zero", po)
	}
	if po := ReportCounterExceedProb(0, prm); po < 1e-4 {
		t.Errorf("P_o(0) = %v, should be clearly positive", po)
	}
}

func TestReportCounterMoreRequestersDoesNotExplode(t *testing.T) {
	// Paper: "malicious beacon nodes cannot increase this probability by
	// simply having more requesting nodes contact it, since this will
	// increase the chance of being revoked". P_o at N_c=200 stays small.
	prm := defaultReportParams()
	prm.Nc = 400
	if po := ReportCounterExceedProb(10, prm); po > 0.05 {
		t.Errorf("P_o(10) at N_c=200 = %v, want small", po)
	}
}

func TestROCPoint(t *testing.T) {
	pop := PaperPopulation()
	fpr, det := ROCPoint(10, 2, 10, 8, 10, 0.9, pop)
	if fpr < 0 || fpr > 1 || det < 0 || det > 1 {
		t.Fatalf("ROC point out of range: fpr=%v det=%v", fpr, det)
	}
	// Larger τ' trades detection for false positives.
	fpr4, det4 := ROCPoint(10, 4, 10, 8, 10, 0.9, pop)
	if fpr4 >= fpr {
		t.Errorf("fpr should fall with larger τ': %v vs %v", fpr4, fpr)
	}
	if det4 >= det {
		t.Errorf("detection should fall with larger τ': %v vs %v", det4, det)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
