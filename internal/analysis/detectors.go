package analysis

import "math"

// Closed-form per-exchange characteristics of the detector
// implementations in internal/core under the simulator's noise model:
//
//   - ranging error U ~ Uniform(-ε, ε) (phy's BoundedUniform), so the
//     distance residual of an attack signal with enlargement b is U + b;
//   - RTT jitter the sum of four independent per-hop uniform delays, so
//     the standardized RTT residual is q = √3·(W − 2) with W ~
//     Irwin-Hall(4) (propagation differences are ~2 cycles against a
//     ~250-cycle σ and are neglected).
//
// The bake-off runner and the regression suite compare measured
// detection rates against RevocationRate evaluated at the effective
// per-exchange probability P·catch, with catch from these forms.

// IrwinHall4CDF is the CDF of the sum of four independent Uniform(0,1)
// variables: F(x) = (1/4!) Σ_{k≤x} (-1)^k C(4,k) (x-k)^4.
func IrwinHall4CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 4 {
		return 1
	}
	binom := [5]float64{1, 4, 6, 4, 1}
	sum, sign := 0.0, 1.0
	for k := 0; float64(k) <= x && k < 5; k++ {
		d := x - float64(k)
		sum += sign * binom[k] * d * d * d * d
		sign = -sign
	}
	return sum / 24
}

// rttResidualCDF is P(q ≤ t) for the standardized RTT residual
// q = √3·(W − 2), W ~ Irwin-Hall(4).
func rttResidualCDF(t float64) float64 {
	return IrwinHall4CDF(2 + t/math.Sqrt(3))
}

// PaperCatchProb is the probability the paper's consistency check flags
// one attack signal with distance enlargement bias: P(|U + bias| > ε) =
// min(bias/2ε, 1) for bias ≥ 0. At the default 5ε enlargement the catch
// is certain; below 2ε the attacker starts slipping through.
func PaperCatchProb(bias, eps float64) float64 {
	p := math.Abs(bias) / (2 * eps)
	return math.Min(p, 1)
}

// MLCut is the maximum-likelihood detector's decision boundary on the
// distance residual for an assumed enlargement and prior log-ratio
// λ = ln(P(H0)/P(H1)): bias/2 + λσ²/bias with σ = ε/√3.
func MLCut(bias, lambda, eps float64) float64 {
	sigma := eps / math.Sqrt(3)
	return bias/2 + lambda*sigma*sigma/bias
}

// MLCatchProb is the probability the ML detector flags one attack signal
// with true enlargement bias, given its decision cut:
// P(U + bias > cut) with U ~ Uniform(-ε, ε).
func MLCatchProb(bias, eps, cut float64) float64 {
	p := (eps + bias - cut) / (2 * eps)
	return math.Min(math.Max(p, 0), 1)
}

// MLFalseFlagProb is the ML detector's per-exchange false-alert
// probability on benign signals: P(U > cut).
func MLFalseFlagProb(eps, cut float64) float64 {
	return MLCatchProb(0, eps, cut)
}

// MahalanobisFlagProb is the probability the Mahalanobis detector
// returns a malicious verdict for one direct (non-replayed) signal with
// distance enlargement bias: P(x² + q² > T² and q ≤ T) with
// x = (U + bias)/σ_d, σ_d = ε/√3 (exchanges with q > T are attributed
// to local replay instead of the target). The uniform distance residual
// is integrated by midpoint quadrature; the RTT direction uses the exact
// Irwin-Hall(4) CDF. With bias = 0 this is the detector's per-exchange
// false-alert probability on benign signals.
func MahalanobisFlagProb(bias, eps, threshold float64) float64 {
	const panels = 4000
	sigmaD := eps / math.Sqrt(3)
	qAtMost := func(t float64) float64 { return rttResidualCDF(t) }
	total := 0.0
	for i := 0; i < panels; i++ {
		u := -eps + (float64(i)+0.5)*(2*eps/panels)
		x := (u + bias) / sigmaD
		s2 := threshold*threshold - x*x
		s := 0.0
		if s2 > 0 {
			s = math.Sqrt(s2)
		}
		// P(q < -s) + P(s < q ≤ T): below the ellipse's lower RTT edge
		// or between its upper edge and the replay-attribution line.
		total += qAtMost(-s) + qAtMost(threshold) - qAtMost(s)
	}
	return total / panels
}
