// Package analysis implements the paper's closed-form models (§2.3 and
// §3.2): the per-detector detection rate, the base-station revocation
// rate, the expected number of affected non-beacon nodes, the
// report-counter overflow probability used to choose τ, and the
// false-positive bound. The experiment harness plots these as the
// "theoretical result" series of Figures 5–10 and checks the full
// simulation against them in Figures 12–13.
//
// Notation (paper's):
//
//	P    probability a requester both hears a malicious signal from a
//	     malicious beacon and fails to filter it:
//	     P = (1-p_n)(1-p_w)(1-p_l)
//	m    detecting IDs per beacon node
//	P_r  probability one benign detecting node catches a malicious
//	     beacon: P_r = 1 - (1-P)^m
//	N, N_b, N_a   sensor nodes, beacon nodes, malicious beacon nodes
//	N_c  requesting nodes contacting a given malicious beacon
//	τ    report-counter cap; τ′ alert threshold
//	P_d  probability a malicious beacon is revoked
//	N′   expected non-beacon nodes accepting a malicious signal from an
//	     unrevoked malicious beacon
//	p_d  wormhole-detector detection rate; N_w wormholes between benign
//	     beacon pairs
package analysis

import (
	"fmt"
	"math"
)

// Strategy is the malicious beacon's behavior triple: the fraction of
// requesters given a normal signal (PN), convinced of a wormhole replay
// (PW), and convinced of a local replay (PL), applied as sequential
// independent choices.
type Strategy struct {
	PN, PW, PL float64
}

// Validate returns an error if any component is outside [0, 1].
func (s Strategy) Validate() error {
	for _, v := range []float64{s.PN, s.PW, s.PL} {
		if v < 0 || v > 1 || math.IsNaN(v) {
			return fmt.Errorf("analysis: strategy component %v outside [0,1]", v)
		}
	}
	return nil
}

// P returns the undetected-attack probability P = (1-p_n)(1-p_w)(1-p_l).
func (s Strategy) P() float64 {
	return (1 - s.PN) * (1 - s.PW) * (1 - s.PL)
}

// StrategyForP returns the canonical strategy realizing a given P by
// adjusting only p_n (no replay camouflage): the attacker sends malicious
// signals to a fraction P of requesters and normal signals to the rest.
func StrategyForP(p float64) Strategy {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("analysis: P %v outside [0,1]", p))
	}
	return Strategy{PN: 1 - p}
}

// DetectionRate returns P_r = 1 - (1-P)^m, the probability that a benign
// detecting node with m detecting IDs catches a malicious beacon (§2.3,
// Figure 5).
func DetectionRate(p float64, m int) float64 {
	if m <= 0 {
		return 0
	}
	return 1 - math.Pow(1-p, float64(m))
}

// Population holds the network-size parameters shared by the §3 formulas.
type Population struct {
	N  int // total sensor nodes
	Nb int // beacon nodes
	Na int // malicious beacon nodes
}

// Validate returns an error for inconsistent populations.
func (pop Population) Validate() error {
	if pop.N <= 0 || pop.Nb < 0 || pop.Na < 0 {
		return fmt.Errorf("analysis: negative or empty population %+v", pop)
	}
	if pop.Nb > pop.N {
		return fmt.Errorf("analysis: more beacons (%d) than nodes (%d)", pop.Nb, pop.N)
	}
	if pop.Na > pop.Nb {
		return fmt.Errorf("analysis: more malicious beacons (%d) than beacons (%d)", pop.Na, pop.Nb)
	}
	return nil
}

// BenignBeacons returns N_b - N_a.
func (pop Population) BenignBeacons() int { return pop.Nb - pop.Na }

// PaperPopulation is the reconstructed simulation population: 1,000
// nodes, 110 beacons of which 10 are compromised, so benign beacons are
// 10% of the network ((N_b-N_a)/N = 0.1 as the paper assumes).
func PaperPopulation() Population { return Population{N: 1000, Nb: 110, Na: 10} }

// AlertProb returns P_a: the probability that one (uniformly random)
// requester of a malicious beacon is a benign beacon node that reports an
// alert: P_a = (N_b - N_a) · P_r / N.
func AlertProb(p float64, m int, pop Population) float64 {
	return float64(pop.BenignBeacons()) * DetectionRate(p, m) / float64(pop.N)
}

// logChoose returns log C(n, k) via log-gamma.
func logChoose(n, k int) float64 {
	ln, _ := math.Lgamma(float64(n + 1))
	lk, _ := math.Lgamma(float64(k + 1))
	lnk, _ := math.Lgamma(float64(n - k + 1))
	return ln - lk - lnk
}

// BinomPMF returns C(n,k) p^k (1-p)^(n-k), computed in log space so large
// n stays stable.
func BinomPMF(n int, p float64, k int) float64 {
	if k < 0 || k > n || n < 0 {
		return 0
	}
	if p <= 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p >= 1 {
		if k == n {
			return 1
		}
		return 0
	}
	logp := logChoose(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log(1-p)
	return math.Exp(logp)
}

// BinomCDF returns P[X <= k] for X ~ Binomial(n, p).
func BinomCDF(n int, p float64, k int) float64 {
	if k < 0 {
		return 0
	}
	if k >= n {
		return 1
	}
	sum := 0.0
	for i := 0; i <= k; i++ {
		sum += BinomPMF(n, p, i)
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

// RevocationRate returns P_d: the probability a malicious beacon
// contacted by nc requesting nodes is revoked, with alert threshold τ′
// (assuming τ is large enough that no alert is report-capped):
//
//	P_a = (N_b-N_a)·P_r/N,  P_d = 1 - Σ_{i=0}^{τ′} C(nc,i) P_a^i (1-P_a)^(nc-i)
//
// (§3.2, Figures 6 and 7.)
func RevocationRate(p float64, m, tauPrime, nc int, pop Population) float64 {
	pa := AlertProb(p, m, pop)
	return 1 - BinomCDF(nc, pa, tauPrime)
}

// AcceptAfterRevocation returns P″ = P (1 - P_d): the probability a
// non-beacon requester accepts a malicious signal from a malicious beacon
// that survives revocation.
func AcceptAfterRevocation(p float64, m, tauPrime, nc int, pop Population) float64 {
	return p * (1 - RevocationRate(p, m, tauPrime, nc, pop))
}

// AffectedNodes returns N′: the expected number of non-beacon nodes
// ultimately misled by one malicious beacon,
// N′ = P″ · N_c · (N - N_b)/N (§3.2, Figure 8).
func AffectedNodes(p float64, m, tauPrime, nc int, pop Population) float64 {
	return AcceptAfterRevocation(p, m, tauPrime, nc, pop) *
		float64(nc) * float64(pop.N-pop.Nb) / float64(pop.N)
}

// MaxAffected sweeps P over a fine grid and returns the attacker-optimal
// (max_P N′, argmax P) pair — "the attacker may adjust P to maximize N′"
// (Figure 9).
func MaxAffected(m, tauPrime, nc int, pop Population) (maxAffected, argP float64) {
	const steps = 400
	for i := 0; i <= steps; i++ {
		p := float64(i) / steps
		if n := AffectedNodes(p, m, tauPrime, nc, pop); n > maxAffected {
			maxAffected, argP = n, p
		}
	}
	return maxAffected, argP
}

// FalsePositiveBound returns N_f: the worst-case expected number of
// benign beacons revoked,
//
//	N_f = ((1-p_d)·N_w + N_a·(τ+1)) / (τ′+1)
//
// — undetected wormhole alerts plus colluding malicious reporters each
// spending their full report budget (§3.2).
func FalsePositiveBound(nw, na, tau, tauPrime int, pd float64) float64 {
	return ((1-pd)*float64(nw) + float64(na)*float64(tau+1)) / float64(tauPrime+1)
}

// ReportCounterParams collects the inputs of the report-counter overflow
// model (Figure 10): how likely a benign beacon's report counter is to
// exceed a candidate τ, which would silently discard its future alerts.
type ReportCounterParams struct {
	Pop      Population
	Nc       int     // requesting nodes per malicious beacon
	Nw       int     // wormholes between benign beacon pairs
	Pd       float64 // wormhole-detector rate p_d
	M        int     // detecting IDs
	P        float64 // attacker strategy P
	TauPrime int     // alert threshold τ′
	Tau      int     // report cap candidate τ (for N_f inside)
}

// ReportCounterExceedProb returns P_o: the probability that a benign
// beacon node's report counter exceeds tau. The counter increments once
// per malicious beacon it detects (still unrevoked) and once per
// wormhole-replay false alert it raises:
//
//	P_1 = (N_c/N)·P_r·(1-P_d)            per malicious beacon
//	P_2 = (2/(N_b-N_a))·(1-p_d)·(1 - N_f/(N_b-N_a))   per wormhole
//	P′(i) = Σ_{j+k=i} B(N_a,P_1;j)·B(N_w,P_2;k),  P_o = 1 - Σ_{i≤τ} P′(i)
func ReportCounterExceedProb(tau int, prm ReportCounterParams) float64 {
	pop := prm.Pop
	pr := DetectionRate(prm.P, prm.M)
	pd := RevocationRate(prm.P, prm.M, prm.TauPrime, prm.Nc, pop)
	p1 := float64(prm.Nc) / float64(pop.N) * pr * (1 - pd)

	benign := float64(pop.BenignBeacons())
	nf := FalsePositiveBound(prm.Nw, pop.Na, prm.Tau, prm.TauPrime, prm.Pd)
	frac := 1 - nf/benign
	if frac < 0 {
		frac = 0
	}
	p2 := 2 / benign * (1 - prm.Pd) * frac

	// P[total <= tau] by convolving the two independent binomials.
	total := 0.0
	for i := 0; i <= tau; i++ {
		for j := 0; j <= i && j <= pop.Na; j++ {
			k := i - j
			if k > prm.Nw {
				continue
			}
			total += BinomPMF(pop.Na, p1, j) * BinomPMF(prm.Nw, p2, k)
		}
	}
	if total > 1 {
		total = 1
	}
	return 1 - total
}

// ROCPoint returns the analytical (false-positive rate, detection rate)
// pair for thresholds (τ, τ′): detection from RevocationRate at the
// attacker-optimal P, false positives from the N_f bound normalized by
// the benign beacon count.
func ROCPoint(tau, tauPrime, nc, m, nw int, pd float64, pop Population) (fpr, det float64) {
	_, pStar := MaxAffected(m, tauPrime, nc, pop)
	det = RevocationRate(pStar, m, tauPrime, nc, pop)
	fpr = FalsePositiveBound(nw, pop.Na, tau, tauPrime, pd) / float64(pop.BenignBeacons())
	if fpr > 1 {
		fpr = 1
	}
	return fpr, det
}
