package analysis

import (
	"math"
	"testing"

	"beaconsec/internal/core"
	"beaconsec/internal/geo"
	"beaconsec/internal/rng"
)

func TestIrwinHall4CDF(t *testing.T) {
	if got := IrwinHall4CDF(-1); got != 0 {
		t.Errorf("F(-1) = %v, want 0", got)
	}
	if got := IrwinHall4CDF(5); got != 1 {
		t.Errorf("F(5) = %v, want 1", got)
	}
	if got, want := IrwinHall4CDF(1), 1.0/24; math.Abs(got-want) > 1e-12 {
		t.Errorf("F(1) = %v, want %v", got, want)
	}
	if got := IrwinHall4CDF(2); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("F(2) = %v, want 0.5 (symmetry)", got)
	}
	// Symmetry about 2 and monotonicity over the support.
	prev := 0.0
	for x := 0.0; x <= 4.0; x += 0.05 {
		f := IrwinHall4CDF(x)
		if f < prev-1e-12 {
			t.Fatalf("F not monotone at %v: %v < %v", x, f, prev)
		}
		prev = f
		if mirror := 1 - IrwinHall4CDF(4-x); math.Abs(f-mirror) > 1e-12 {
			t.Errorf("symmetry broken at %v: F(x)=%v, 1-F(4-x)=%v", x, f, mirror)
		}
	}
}

func TestPaperCatchProb(t *testing.T) {
	cases := []struct{ bias, eps, want float64 }{
		{0, 10, 0},
		{10, 10, 0.5},
		{15, 10, 0.75},
		{20, 10, 1},
		{50, 10, 1},
		{-15, 10, 0.75}, // shrinkage is caught symmetrically
	}
	for _, c := range cases {
		if got := PaperCatchProb(c.bias, c.eps); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("PaperCatchProb(%v, %v) = %v, want %v", c.bias, c.eps, got, c.want)
		}
	}
}

func TestMLClosedForms(t *testing.T) {
	if got := MLCut(20, 0, 10); got != 10 {
		t.Errorf("MLCut(20,0,10) = %v, want 10 (midway between hypothesis means)", got)
	}
	// λ=3 shifts the cut by λσ²/bias = 3·(100/3)/20 = 5.
	if got := MLCut(20, 3, 10); math.Abs(got-15) > 1e-12 {
		t.Errorf("MLCut(20,3,10) = %v, want 15", got)
	}
	if got := MLCatchProb(15, 10, 10); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("MLCatchProb(15,10,10) = %v, want 0.75", got)
	}
	if got := MLCatchProb(0, 10, 25); got != 0 {
		t.Errorf("catch probability must clamp at 0, got %v", got)
	}
	if got := MLCatchProb(100, 10, 10); got != 1 {
		t.Errorf("catch probability must clamp at 1, got %v", got)
	}
	if got := MLFalseFlagProb(10, 10); got != 0 {
		t.Errorf("default cut ε admits no benign false flags, got %v", got)
	}
	if got := MLFalseFlagProb(10, 5); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("MLFalseFlagProb(10,5) = %v, want 0.25", got)
	}
}

// TestDetectorRatesMatchClosedForms Monte-Carlo-validates the closed
// forms against the actual registered detector implementations under the
// simulator's noise model: ranging error Uniform(-ε, ε) and RTT jitter
// with a standardized Irwin-Hall(4) residual. The empirical
// malicious-verdict rate of each detector must sit inside a 6σ binomial
// band around its closed form.
func TestDetectorRatesMatchClosedForms(t *testing.T) {
	const (
		eps     = 10.0
		rttMean = 50000.0
		rttStd  = 250.0
		samples = 200000
	)
	// Threshold above the maximum possible jitter draw (q ≤ 2√3), so
	// the paper's and the ML detector's RTT filter never fires and the
	// measured rates isolate the consistency decision.
	st := core.RTTStats{Mean: rttMean, Std: rttStd,
		Min: rttMean - 2*math.Sqrt(3)*rttStd, Max: rttMean + 2*math.Sqrt(3)*rttStd,
		Threshold: rttMean + 2*math.Sqrt(3)*rttStd + 30}
	env := core.DetectorEnv{
		MaxDistError: eps,
		MaxRTT:       st.Threshold,
		Range:        150,
		RTT:          func() core.RTTStats { return st },
	}
	dets := make(map[string]core.Detector)
	for _, name := range []string{"paper", "ml", "mahalanobis"} {
		d, err := core.NewDetector(core.DetectorSpec{Name: name}, env)
		if err != nil {
			t.Fatal(err)
		}
		dets[name] = d
	}

	expect := func(name string, bias float64) float64 {
		switch name {
		case "paper":
			return PaperCatchProb(bias, eps)
		case "ml":
			return MLCatchProb(bias, eps, MLCut(2*eps, 0, eps))
		default:
			return MahalanobisFlagProb(bias, eps, 3)
		}
	}

	src := rng.New(7)
	for _, bias := range []float64{0, 15} {
		flagged := map[string]int{}
		for i := 0; i < samples; i++ {
			u := src.Uniform(-eps, eps)
			w := src.Float64() + src.Float64() + src.Float64() + src.Float64()
			o := core.Observation{
				OwnLoc:       geo.Point{},
				OwnKnown:     true,
				Claimed:      geo.Point{X: 100},
				MeasuredDist: 100 + u + bias,
				RTT:          rttMean + rttStd*math.Sqrt(3)*(w-2),
			}
			for name, d := range dets {
				if d.EvaluateDetector(o) == core.VerdictMalicious {
					flagged[name]++
				}
			}
		}
		for name := range dets {
			want := expect(name, bias)
			got := float64(flagged[name]) / samples
			band := 6*math.Sqrt(want*(1-want)/samples) + 1e-3
			if math.Abs(got-want) > band {
				t.Errorf("bias=%v %s: measured rate %.5f vs closed form %.5f (band %.5f)",
					bias, name, got, want, band)
			}
		}
	}
}
