package phy

import (
	"math"
	"math/rand"
	"testing"

	"beaconsec/internal/crypto"
	"beaconsec/internal/geo"
	"beaconsec/internal/ident"
	"beaconsec/internal/packet"
	"beaconsec/internal/rng"
	"beaconsec/internal/sim"
)

// raceEnabled is set by race_test.go under -race builds.
var raceEnabled bool

// receptionLog records everything a handler observes, for cross-medium
// comparison.
type receptionLog struct {
	radio     int
	data0     byte
	measured  float64
	firstByte sim.Time
	end       sim.Time
}

// buildLoggedMedium builds a medium over the given positions with a
// logging handler on every radio. All rng streams are seeded
// identically across calls so two mediums differing only in BruteForce
// must behave byte-identically.
func buildLoggedMedium(positions []geo.Point, brute bool) (*sim.Scheduler, *Medium, []*Radio, *[]receptionLog) {
	sched := sim.New()
	m := NewMedium(sched, rng.New(42), Config{
		Range:      150,
		Ranging:    BoundedUniform{MaxError: 10},
		BruteForce: brute,
	})
	log := &[]receptionLog{}
	radios := make([]*Radio, len(positions))
	for i, p := range positions {
		i := i
		r := m.NewRadio(p)
		r.SetHandler(func(rec Reception) {
			*log = append(*log, receptionLog{
				radio:     i,
				data0:     rec.Frame.Data[0],
				measured:  rec.MeasuredDist,
				firstByte: rec.FirstByteSPDR,
				end:       rec.End,
			})
		})
		radios[i] = r
	}
	return sched, m, radios, log
}

// TestGridDeliveryMatchesBruteForce pins the tentpole contract: the
// spatial grid resolves exactly the receivers the historical O(N) scan
// did, in the same order, consuming the medium's rng stream
// identically — so every downstream byte (measurements, timestamps,
// event order) is unchanged.
func TestGridDeliveryMatchesBruteForce(t *testing.T) {
	rnd := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		n := 20 + rnd.Intn(180)
		positions := make([]geo.Point, n)
		for i := range positions {
			// Include off-field positions (wormhole endpoints, replay
			// attackers can sit anywhere).
			positions[i] = geo.Point{
				X: -100 + 1200*rnd.Float64(),
				Y: -100 + 1200*rnd.Float64(),
			}
		}
		// A colocated pair and a pair exactly Range apart (boundary).
		positions[0] = geo.Point{X: 500, Y: 500}
		positions[1] = geo.Point{X: 500, Y: 500}
		if n > 2 {
			positions[2] = geo.Point{X: 650, Y: 500} // exactly 150 from [0]
		}

		type action struct {
			fromRadio int // -1: Inject from origin
			origin    geo.Point
			at        sim.Time
			size      int
		}
		actions := make([]action, 40)
		for i := range actions {
			a := action{fromRadio: -1, at: sim.Time(rnd.Intn(5_000_000)), size: 8 + rnd.Intn(24)}
			if rnd.Intn(4) > 0 {
				a.fromRadio = rnd.Intn(n)
			} else {
				a.origin = geo.Point{X: 1200 * rnd.Float64(), Y: 1200 * rnd.Float64()}
			}
			actions[i] = a
		}

		run := func(brute bool) ([]receptionLog, Stats) {
			sched, m, radios, log := buildLoggedMedium(positions, brute)
			for _, a := range actions {
				a := a
				sched.At(a.at, func() {
					f := Frame{Data: make([]byte, a.size)}
					f.Data[0] = byte(a.size)
					if a.fromRadio >= 0 {
						m.Transmit(radios[a.fromRadio], f)
					} else {
						m.Inject(a.origin, f)
					}
				})
			}
			if err := sched.Run(); err != nil {
				t.Fatal(err)
			}
			return *log, m.Stats()
		}

		gridLog, gridStats := run(false)
		bruteLog, bruteStats := run(true)
		if gridStats != bruteStats {
			t.Fatalf("trial %d: stats diverge: grid %+v vs brute %+v", trial, gridStats, bruteStats)
		}
		if len(gridLog) != len(bruteLog) {
			t.Fatalf("trial %d: %d receptions via grid, %d via brute force", trial, len(gridLog), len(bruteLog))
		}
		for i := range gridLog {
			if gridLog[i] != bruteLog[i] {
				t.Fatalf("trial %d: reception %d diverges: grid %+v vs brute %+v",
					trial, i, gridLog[i], bruteLog[i])
			}
		}
	}
}

// TestTransmitPrunesActives pins the satellite fix: a run that never
// carrier-senses (no Busy calls) must not accumulate active intervals
// forever.
func TestTransmitPrunesActives(t *testing.T) {
	sched, m := newTestMedium(Config{Range: 150})
	tx := m.NewRadio(geo.Point{X: 0, Y: 0})
	for i := 0; i < 200; i++ {
		m.Transmit(tx, frame(16))
		if err := sched.Run(); err != nil {
			t.Fatal(err)
		}
		// Move time well past the frame so the interval expires.
		sched.After(FrameAirTime(16)*4, func() {})
		sched.Run()
	}
	if len(m.actives) > 2 {
		t.Fatalf("actives grew to %d entries despite no carrier sensing", len(m.actives))
	}
}

// TestTransmitSteadyStateZeroAlloc pins the pooling work: once the
// event free list, delivery pool, and scratch buffers are warm, a
// transmit→deliver cycle performs zero heap allocations (the frame
// buffer itself is owned and reused by the caller here, as the
// benchmarks and batch paths do).
func TestTransmitSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector perturbs allocation behavior; pin not meaningful")
	}
	sched, m := newTestMedium(Config{Range: 150})
	tx := m.NewRadio(geo.Point{X: 0, Y: 0})
	for i := 0; i < 40; i++ {
		m.NewRadio(geo.Point{X: float64(i), Y: 10})
	}
	buf := make([]byte, 16)
	cycle := func() {
		m.Transmit(tx, Frame{Data: buf})
		sched.Run()
	}
	for i := 0; i < 50; i++ { // warm pools
		cycle()
	}
	if avg := testing.AllocsPerRun(100, cycle); avg != 0 {
		t.Fatalf("steady-state transmit+deliver allocates %.1f times per op, want 0", avg)
	}
}

// TestSignEncodeDeliverVerifyZeroAlloc pins the full hot path the issue
// targets: append-style encode (with HMAC sign) into a reused buffer,
// radio delivery through the pooled medium, and authenticated decode at
// the receiver — zero heap allocations per frame in steady state.
func TestSignEncodeDeliverVerifyZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector drops sync.Pool puts; allocation pin not meaningful")
	}
	sched, m := newTestMedium(Config{Range: 150})
	tx := m.NewRadio(geo.Point{X: 0, Y: 0})
	rx := m.NewRadio(geo.Point{X: 50, Y: 0})
	key := crypto.KDF(crypto.Key{}, []byte("grid-test"))
	delivered := 0
	rx.SetHandler(func(rec Reception) {
		pkt, err := packet.Decode(rec.Frame.Data, key)
		if err != nil {
			t.Errorf("decode: %v", err)
			return
		}
		if pkt.Header.Type != packet.TypeBeaconRequest {
			t.Errorf("type = %v", pkt.Header.Type)
		}
		delivered++
	})
	buf := make([]byte, 0, packet.MaxSize)
	seq := uint16(0)
	cycle := func() {
		seq++
		var err error
		buf, err = packet.EncodeTo(buf[:0], ident.NodeID(1), ident.NodeID(2), seq, packet.BeaconRequest{}, key)
		if err != nil {
			t.Fatal(err)
		}
		m.Transmit(tx, Frame{Data: buf})
		sched.Run()
	}
	for i := 0; i < 50; i++ {
		cycle()
	}
	before := delivered
	if avg := testing.AllocsPerRun(100, cycle); avg != 0 {
		t.Fatalf("sign→encode→deliver→verify allocates %.1f times per op, want 0", avg)
	}
	if delivered <= before {
		t.Fatal("handler stopped receiving frames during the alloc measurement")
	}
}

// benchTransmit measures one transmit (receiver resolution plus the
// scheduler drain of its deliveries) against nRadios radios deployed at
// the paper's density — the field grows with N, as the north-star
// scaling story demands. Neighbor counts therefore stay constant
// (~80), so the grid path is O(neighbors) per transmit while the
// brute-force path pays the O(N) scan. Pools are warmed before the
// timer starts so the reported allocs/op is the steady state.
func benchTransmit(b *testing.B, nRadios int, brute bool) {
	// Paper density: 1,110 nodes in a 1000×1000 ft field.
	side := math.Sqrt(float64(nRadios) * 1e6 / 1110)
	rnd := rand.New(rand.NewSource(5))
	sched := sim.New()
	m := NewMedium(sched, rng.New(7), Config{
		Range:      150,
		Ranging:    BoundedUniform{MaxError: 10},
		BruteForce: brute,
	})
	for i := 0; i < nRadios; i++ {
		r := m.NewRadio(geo.Point{X: side * rnd.Float64(), Y: side * rnd.Float64()})
		r.SetHandler(func(Reception) {})
	}
	tx := m.NewRadio(geo.Point{X: side / 2, Y: side / 2})
	buf := make([]byte, 24)
	for i := 0; i < 100; i++ { // warm the event/delivery pools
		m.Transmit(tx, Frame{Data: buf})
		sched.Run()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Transmit(tx, Frame{Data: buf})
		sched.Run()
	}
}

func BenchmarkTransmit(b *testing.B) {
	b.Run("radios=100", func(b *testing.B) { benchTransmit(b, 100, false) })
	b.Run("radios=1000", func(b *testing.B) { benchTransmit(b, 1000, false) })
	b.Run("radios=10000", func(b *testing.B) { benchTransmit(b, 10000, false) })
}

func BenchmarkTransmitBruteForce(b *testing.B) {
	b.Run("radios=100", func(b *testing.B) { benchTransmit(b, 100, true) })
	b.Run("radios=1000", func(b *testing.B) { benchTransmit(b, 1000, true) })
	b.Run("radios=10000", func(b *testing.B) { benchTransmit(b, 10000, true) })
}
