// Package phy simulates the physical radio layer of a MICA2-class mote
// network: log-distance/bounded-error RSSI ranging, bit-level transmission
// timing, half-duplex radios, collisions, and the SPDR-register byte
// timestamps the paper's round-trip-time detector depends on (Figure 3).
//
// The paper's RTT detector works because
//
//	RTT = (t4 - t1) - (t3 - t2) = d1 + d2 + d3 + d4 + 2 D/c
//
// where t1..t4 are register-level byte timestamps and d1..d4 are small
// hardware shift delays; MAC backoff and processing delay cancel. This
// package reproduces exactly that structure: every transmission reports
// the sender-side time the first byte left the SPDR register (t1/t3
// analog) and every reception reports the receiver-side time the first
// byte was available in the register (t2/t4 analog), with per-byte
// hardware jitter drawn from a bounded distribution.
package phy

import (
	"fmt"
	"math"

	"beaconsec/internal/geo"
	"beaconsec/internal/rng"
	"beaconsec/internal/sim"
)

// Radio timing constants for a MICA2-class mote.
const (
	// BitRate is the radio bit rate (19.2 kbps).
	BitRate = 19_200
	// CyclesPerBit is the CPU-cycle cost of one bit on air; the paper
	// states "the transmission time of one bit is about 384 clock
	// cycles".
	CyclesPerBit = sim.CPUHz / BitRate
	// CyclesPerByte is the CPU-cycle cost of one byte on air.
	CyclesPerByte = 8 * CyclesPerBit
	// speedOfLightFtPerSec converts propagation distance to time.
	speedOfLightFtPerSec = 983_571_056.0
)

// Jitter models the hardware delay between the SPDR shift register and the
// air, per byte (the paper's d1..d4). Draws are uniform in [Min, Max]
// cycles: a hard-bounded distribution, because the paper's claim that the
// detector "can always detect locally replayed beacon signals between two
// benign neighbor nodes" requires the benign RTT spread to be bounded.
//
// Defaults are calibrated so the no-attack RTT spread over 10,000 trials
// is ≈ 4.5 bit-times (1,728 cycles), the figure that survives in the
// paper's text.
type Jitter struct {
	Min, Max float64
}

// DefaultJitter is the calibrated MICA2-like jitter: 4 draws sum to
// [12996, 14724] cycles, a spread of 4.5 bit-times.
func DefaultJitter() Jitter { return Jitter{Min: 3249, Max: 3681} }

func (j Jitter) draw(src *rng.Source) sim.Time {
	return sim.Time(math.Round(src.Uniform(j.Min, j.Max)))
}

// Ranging converts a true transmitter-receiver distance into the distance
// the receiver's RSSI measurement yields.
type Ranging interface {
	Measure(trueDist float64, src *rng.Source) float64
}

// BoundedUniform adds a uniform error in [-MaxError, +MaxError]; the paper
// assumes "a technique (e.g. RSSI) used to estimate the distance ... that
// has the maximum error of [10] feet", which is exactly this model.
type BoundedUniform struct {
	MaxError float64
}

// Measure implements Ranging.
func (b BoundedUniform) Measure(trueDist float64, src *rng.Source) float64 {
	d := trueDist + src.Uniform(-b.MaxError, b.MaxError)
	if d < 0 {
		d = 0
	}
	return d
}

// TruncatedGaussian adds N(0, Sigma) error truncated to ±MaxError,
// modelling RSSI ranging with log-normal shadowing whose outliers are
// rejected by averaging multiple samples.
type TruncatedGaussian struct {
	Sigma    float64
	MaxError float64
}

// Measure implements Ranging.
func (g TruncatedGaussian) Measure(trueDist float64, src *rng.Source) float64 {
	e := g.Sigma * src.NormFloat64()
	if e > g.MaxError {
		e = g.MaxError
	}
	if e < -g.MaxError {
		e = -g.MaxError
	}
	d := trueDist + e
	if d < 0 {
		d = 0
	}
	return d
}

// Perfect is error-free ranging, for tests and theoretical baselines.
type Perfect struct{}

// Measure implements Ranging.
func (Perfect) Measure(trueDist float64, _ *rng.Source) float64 { return trueDist }

// Interface compliance.
var (
	_ Ranging = BoundedUniform{}
	_ Ranging = TruncatedGaussian{}
	_ Ranging = Perfect{}
)

// Frame is one unit of air traffic: raw bytes plus attacker-controlled
// physical metadata. Protocol logic never reads the metadata; it only
// influences what the receiver's instruments (ranging, wormhole detector)
// observe.
type Frame struct {
	// Data is the encoded packet.
	Data []byte
	// RangeBias shifts the distance the receiver's ranging measures,
	// modelling transmit-power manipulation by a malicious sender.
	// Benign senders use 0.
	RangeBias float64
	// WormholeMark models a sender manipulating its signal so the
	// receiver's wormhole detector fires ("a malicious target node can
	// always manipulate its beacon signals to convince the detecting
	// node that there is a wormhole attack").
	WormholeMark bool
	// Replayed marks frames re-injected by a wormhole tunnel or replay
	// attacker. It is ground truth for the probabilistic wormhole
	// detector, not a bit a protocol participant can read.
	Replayed bool
	// Finalize, if non-nil, rebuilds Data at transmit time given the
	// transmission's own first-byte register timestamp. It models a
	// timestamp field written into a later byte of the packet while the
	// first bytes are already on air (how the paper's reply carries
	// t3 - t2). The rebuilt data must have the same length as Data.
	Finalize func(firstByteSPDR sim.Time) []byte
}

// TxInfo reports the timing of a transmission to the sender.
type TxInfo struct {
	// AirStart/AirEnd bound the frame's time on air.
	AirStart, AirEnd sim.Time
	// FirstByteSPDR is the sender-side register timestamp of the first
	// byte (the paper's t1 for requests, t3 for replies).
	FirstByteSPDR sim.Time
}

// Reception is what a radio's handler receives for an uncorrupted frame.
type Reception struct {
	Frame Frame
	// MeasuredDist is the RSSI-derived distance to the actual transmit
	// origin, including any attacker bias and the ranging error.
	MeasuredDist float64
	// FirstByteSPDR is the receiver-side register timestamp of the first
	// byte (the paper's t2 for requests, t4 for replies).
	FirstByteSPDR sim.Time
	// End is when the frame finished arriving.
	End sim.Time
}

// Handler consumes receptions.
type Handler func(Reception)

// Tap observes every transmission on the medium (attack tooling: wormhole
// tunnels, replay attackers). origin is the true injection point.
type Tap func(origin geo.Point, f Frame, info TxInfo)

type interval struct {
	start, end sim.Time
}

func overlaps(a, b interval) bool { return a.start < b.end && b.start < a.end }

type arrival struct {
	span      interval
	corrupted bool
}

// Radio is one node's transceiver at a fixed position.
type Radio struct {
	pos     geo.Point
	medium  *Medium
	handler Handler
	// inflight arrivals, for collision marking.
	inflight []*arrival
	// tx intervals for half-duplex suppression, pruned lazily.
	tx []interval
}

// Pos returns the radio's true position.
func (r *Radio) Pos() geo.Point { return r.pos }

// Medium returns the medium the radio is attached to.
func (r *Radio) Medium() *Medium { return r.medium }

// SetHandler installs the reception callback. A nil handler drops frames.
func (r *Radio) SetHandler(h Handler) { r.handler = h }

func (r *Radio) pruneTx(now sim.Time) {
	keep := r.tx[:0]
	for _, iv := range r.tx {
		if iv.end > now {
			keep = append(keep, iv)
		}
	}
	r.tx = keep
}

func (r *Radio) transmittingDuring(span interval) bool {
	for _, iv := range r.tx {
		if overlaps(iv, span) {
			return true
		}
	}
	return false
}

// Stats counts medium-level events, for tests and experiment reporting.
type Stats struct {
	Transmissions uint64
	Deliveries    uint64
	Collisions    uint64
	HalfDuplex    uint64
	// Injections counts radio-less launches (wormhole tunnel exits and
	// replay attackers): attack traffic, a subset of Transmissions.
	Injections uint64
	// BytesOnAir is the total frame bytes transmitted.
	BytesOnAir uint64
}

// Merge adds another medium's counters field-wise (used by the scenario
// layer to aggregate metrics deterministically across runs).
func (s *Stats) Merge(o Stats) {
	s.Transmissions += o.Transmissions
	s.Deliveries += o.Deliveries
	s.Collisions += o.Collisions
	s.HalfDuplex += o.HalfDuplex
	s.Injections += o.Injections
	s.BytesOnAir += o.BytesOnAir
}

// Config parameterizes a Medium.
type Config struct {
	// Range is the maximum communication range in feet.
	Range float64
	// Ranging is the distance-measurement model; nil means Perfect.
	Ranging Ranging
	// Jitter is the SPDR hardware-delay model; the zero value selects
	// DefaultJitter.
	Jitter Jitter
	// BruteForce forces transmissions to resolve receivers with the
	// historical O(N) scan over all radios instead of the spatial grid.
	// The two paths are defined to be byte-identical (same receivers,
	// same visit order, same rng draws); this switch exists so tests and
	// benchmarks can pin that equivalence. Production callers leave it
	// false.
	BruteForce bool
}

// Medium is the shared radio channel. It is bound to one sim.Scheduler and
// is not safe for concurrent use (the simulation is single-threaded).
type Medium struct {
	sched   *sim.Scheduler
	src     *rng.Source
	cfg     Config
	radios  []*Radio
	grid    *geo.Grid // spatial index over radio positions; cell = Range
	scratch []int32   // reusable candidate buffer for grid queries
	taps    []Tap
	stats   Stats
	actives []interval // ongoing transmissions anywhere, for carrier sense
	// pendFree recycles pending-delivery records (and their pre-bound
	// fire closures) so steady-state delivery allocates nothing.
	pendFree []*pending
}

// NewMedium creates a medium over the given scheduler. src must be a
// dedicated stream (the medium consumes it for jitter and ranging error).
func NewMedium(sched *sim.Scheduler, src *rng.Source, cfg Config) *Medium {
	if cfg.Range <= 0 {
		panic(fmt.Sprintf("phy: non-positive range %v", cfg.Range))
	}
	if cfg.Ranging == nil {
		cfg.Ranging = Perfect{}
	}
	if cfg.Jitter == (Jitter{}) {
		cfg.Jitter = DefaultJitter()
	}
	return &Medium{sched: sched, src: src, cfg: cfg, grid: geo.NewGrid(cfg.Range)}
}

// Range returns the configured communication range.
func (m *Medium) Range() float64 { return m.cfg.Range }

// Stats returns a copy of the medium counters.
func (m *Medium) Stats() Stats { return m.stats }

// NewRadio registers a radio at pos.
func (m *Medium) NewRadio(pos geo.Point) *Radio {
	r := &Radio{pos: pos, medium: m}
	m.radios = append(m.radios, r)
	m.grid.Add(pos) // grid index == position in m.radios
	return r
}

// AddTap registers an attack-tooling tap invoked for every transmission.
func (m *Medium) AddTap(t Tap) { m.taps = append(m.taps, t) }

// FrameAirTime returns the on-air duration of n bytes.
func FrameAirTime(n int) sim.Time { return sim.Time(n) * CyclesPerByte }

func propagation(dist float64) sim.Time {
	return sim.Time(math.Round(dist / speedOfLightFtPerSec * sim.CPUHz))
}

// Busy reports whether r senses carrier: some transmission is on air
// within range of r right now. Used by the MAC for CSMA.
func (m *Medium) Busy(r *Radio) bool {
	now := m.sched.Now()
	m.pruneActives(now)
	// Carrier sense cannot tell where a transmission came from without
	// demodulating; conservatively, any active transmission in range
	// asserts carrier. Positions of active transmissions are not stored
	// (they have already been resolved into per-receiver arrivals), so
	// sense via the radio's own inflight arrivals plus its own tx state.
	for _, a := range r.inflight {
		if a.span.start <= now && now < a.span.end {
			return true
		}
	}
	r.pruneTx(now)
	return len(r.tx) > 0
}

func (m *Medium) pruneActives(now sim.Time) {
	keep := m.actives[:0]
	for _, iv := range m.actives {
		if iv.end > now {
			keep = append(keep, iv)
		}
	}
	m.actives = keep
}

// Transmit puts f on air from radio r, returning its timing. The sender
// becomes half-duplex busy for the duration.
func (m *Medium) Transmit(r *Radio, f Frame) TxInfo {
	now := m.sched.Now()
	r.pruneTx(now)
	info := m.launch(r.pos, r, f)
	r.tx = append(r.tx, interval{info.AirStart, info.AirEnd})
	// Transmitting corrupts anything the sender was receiving.
	for _, a := range r.inflight {
		if overlaps(a.span, interval{info.AirStart, info.AirEnd}) {
			if !a.corrupted {
				a.corrupted = true
				m.stats.HalfDuplex++
			}
		}
	}
	return info
}

// Inject puts f on air from an arbitrary point, with no sending radio:
// wormhole tunnel exits and replay attackers use this.
func (m *Medium) Inject(origin geo.Point, f Frame) TxInfo {
	return m.launch(origin, nil, f)
}

func (m *Medium) launch(origin geo.Point, sender *Radio, f Frame) TxInfo {
	if len(f.Data) == 0 {
		panic("phy: transmitting empty frame")
	}
	start := m.sched.Now()
	end := start + FrameAirTime(len(f.Data))
	// t1/t3: the first byte leaves the register d_out cycles before it
	// finishes on air (the register is loaded ahead of the air clock, so
	// this may precede AirStart). Clamped at time zero, which can only
	// matter for transmissions in the first few thousand cycles of a run.
	firstOut := start + CyclesPerByte
	if d := m.cfg.Jitter.draw(m.src); d < firstOut {
		firstOut -= d
	} else {
		firstOut = 0
	}
	info := TxInfo{
		AirStart:      start,
		AirEnd:        end,
		FirstByteSPDR: firstOut,
	}
	if f.Finalize != nil {
		final := f.Finalize(info.FirstByteSPDR)
		if len(final) != len(f.Data) {
			panic(fmt.Sprintf("phy: Finalize changed frame size %d -> %d", len(f.Data), len(final)))
		}
		f.Data = final
		f.Finalize = nil
	}
	m.stats.Transmissions++
	m.stats.BytesOnAir += uint64(len(f.Data))
	if sender == nil {
		m.stats.Injections++
	}
	// Prune here, not only in carrier sense: a run that never samples
	// Busy (no CSMA contention) must not grow actives for its lifetime.
	m.pruneActives(start)
	m.actives = append(m.actives, interval{start, end})

	if m.cfg.BruteForce {
		for _, rx := range m.radios {
			if rx == sender {
				continue
			}
			trueDist := origin.Dist(rx.pos)
			if trueDist > m.cfg.Range {
				continue
			}
			m.deliver(rx, origin, trueDist, f, info)
		}
	} else {
		// Candidates come back in ascending radio index — registration
		// order, i.e. exactly the order the brute-force scan visits —
		// and the in-range predicate below is the scan's own, so the
		// delivery sequence (and with it the medium's rng draw order)
		// is byte-identical to the O(N) path.
		m.scratch = m.grid.Candidates(origin, m.cfg.Range, m.scratch[:0])
		for _, ri := range m.scratch {
			rx := m.radios[ri]
			if rx == sender {
				continue
			}
			trueDist := origin.Dist(rx.pos)
			if trueDist > m.cfg.Range {
				continue
			}
			m.deliver(rx, origin, trueDist, f, info)
		}
	}
	for _, t := range m.taps {
		t(origin, f, info)
	}
	return info
}

// pending is one in-flight delivery: the arrival record plus everything
// the reception callback needs. Records are pooled on the medium, and
// fire is bound to deliverNow exactly once (at pool-entry creation), so
// a steady-state delivery schedules with zero heap allocations.
type pending struct {
	m         *Medium
	rx        *Radio
	arr       arrival
	frame     Frame
	measured  float64
	firstByte sim.Time
	end       sim.Time
	fire      func()
}

func (m *Medium) getPending() *pending {
	if n := len(m.pendFree); n > 0 {
		p := m.pendFree[n-1]
		m.pendFree[n-1] = nil
		m.pendFree = m.pendFree[:n-1]
		return p
	}
	p := &pending{m: m}
	p.fire = p.deliverNow
	return p
}

func (m *Medium) deliver(rx *Radio, origin geo.Point, trueDist float64, f Frame, info TxInfo) {
	prop := propagation(trueDist)
	span := interval{info.AirStart + prop, info.AirEnd + prop}
	p := m.getPending()
	p.rx = rx
	p.arr = arrival{span: span}
	a := &p.arr
	// Collision: overlapping arrivals corrupt each other ("node B either
	// receives the original signal or receives nothing in case of
	// collision").
	for _, other := range rx.inflight {
		if overlaps(other.span, span) {
			if !other.corrupted {
				other.corrupted = true
			}
			a.corrupted = true
			m.stats.Collisions++
		}
	}
	// Half-duplex: a receiver that is transmitting misses the frame.
	rx.pruneTx(m.sched.Now())
	if rx.transmittingDuring(span) {
		a.corrupted = true
		m.stats.HalfDuplex++
	}
	rx.inflight = append(rx.inflight, a)

	// t2/t4: first byte available in the receiving register one
	// byte-time plus propagation plus hardware delay after air start.
	p.frame = f
	p.firstByte = info.AirStart + CyclesPerByte + prop + m.cfg.Jitter.draw(m.src)
	p.measured = m.cfg.Ranging.Measure(trueDist+f.RangeBias, m.src)
	p.end = span.end

	m.sched.At(span.end, p.fire)
}

// deliverNow completes one arrival: it unhooks the arrival record,
// returns the pending record to the pool (the Reception is copied out
// first, so the handler may transmit and reuse it immediately), and
// hands uncorrupted frames to the receiver.
func (p *pending) deliverNow() {
	m, rx := p.m, p.rx
	rec := Reception{
		Frame:         p.frame,
		MeasuredDist:  p.measured,
		FirstByteSPDR: p.firstByte,
		End:           p.end,
	}
	corrupted := p.arr.corrupted
	rx.removeInflight(&p.arr)
	p.rx = nil
	p.frame = Frame{} // drop the Data reference while pooled
	m.pendFree = append(m.pendFree, p)
	if corrupted || rx.handler == nil {
		return
	}
	m.stats.Deliveries++
	rx.handler(rec)
}

func (r *Radio) removeInflight(target *arrival) {
	for i, a := range r.inflight {
		if a == target {
			last := len(r.inflight) - 1
			r.inflight[i] = r.inflight[last]
			r.inflight[last] = nil
			r.inflight = r.inflight[:last]
			return
		}
	}
}
