package phy

import (
	"math"
	"testing"

	"beaconsec/internal/geo"
	"beaconsec/internal/rng"
	"beaconsec/internal/sim"
)

func newTestMedium(cfg Config) (*sim.Scheduler, *Medium) {
	sched := sim.New()
	m := NewMedium(sched, rng.New(1), cfg)
	return sched, m
}

func frame(n int) Frame { return Frame{Data: make([]byte, n)} }

func TestTimingConstants(t *testing.T) {
	if CyclesPerBit != 384 {
		t.Errorf("CyclesPerBit = %d, paper says 384", CyclesPerBit)
	}
	if CyclesPerByte != 8*384 {
		t.Errorf("CyclesPerByte = %d", CyclesPerByte)
	}
	if FrameAirTime(20) != 20*CyclesPerByte {
		t.Errorf("FrameAirTime(20) = %v", FrameAirTime(20))
	}
}

func TestDeliveryInRangeOnly(t *testing.T) {
	sched, m := newTestMedium(Config{Range: 150})
	tx := m.NewRadio(geo.Point{X: 0, Y: 0})
	near := m.NewRadio(geo.Point{X: 100, Y: 0})
	far := m.NewRadio(geo.Point{X: 151, Y: 0})
	var nearGot, farGot int
	near.SetHandler(func(Reception) { nearGot++ })
	far.SetHandler(func(Reception) { farGot++ })
	m.Transmit(tx, frame(16))
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if nearGot != 1 {
		t.Errorf("near radio got %d frames, want 1", nearGot)
	}
	if farGot != 0 {
		t.Errorf("out-of-range radio got %d frames, want 0", farGot)
	}
	if got := m.Stats().Deliveries; got != 1 {
		t.Errorf("Deliveries = %d", got)
	}
}

func TestSenderDoesNotHearItself(t *testing.T) {
	sched, m := newTestMedium(Config{Range: 150})
	tx := m.NewRadio(geo.Point{X: 0, Y: 0})
	got := 0
	tx.SetHandler(func(Reception) { got++ })
	m.Transmit(tx, frame(16))
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("sender received its own frame %d times", got)
	}
}

func TestTransmitTiming(t *testing.T) {
	sched, m := newTestMedium(Config{Range: 150})
	tx := m.NewRadio(geo.Point{X: 0, Y: 0})
	rx := m.NewRadio(geo.Point{X: 10, Y: 0})
	var rec Reception
	rx.SetHandler(func(r Reception) { rec = r })
	sched.At(1000, func() {
		info := m.Transmit(tx, frame(20))
		if info.AirStart != 1000 {
			t.Errorf("AirStart = %v", info.AirStart)
		}
		if info.AirEnd != 1000+FrameAirTime(20) {
			t.Errorf("AirEnd = %v", info.AirEnd)
		}
		// t1 is before the first byte finishes on air, within the
		// jitter bounds.
		j := DefaultJitter()
		lo := 1000 + CyclesPerByte - sim.Time(j.Max)
		hi := 1000 + CyclesPerByte - sim.Time(j.Min)
		if info.FirstByteSPDR < lo || info.FirstByteSPDR > hi {
			t.Errorf("FirstByteSPDR = %v, want in [%v, %v]", info.FirstByteSPDR, lo, hi)
		}
	})
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if rec.End < 1000+FrameAirTime(20) {
		t.Errorf("reception End = %v before air end", rec.End)
	}
	// t2 is after the first byte arrives.
	if rec.FirstByteSPDR <= 1000+CyclesPerByte {
		t.Errorf("receiver FirstByteSPDR = %v, want after first byte air time", rec.FirstByteSPDR)
	}
}

func TestRTTStructure(t *testing.T) {
	// The core PHY property the paper's Figure 4 rests on: a full
	// request/reply exchange's RTT = (t4-t1)-(t3-t2) lands in
	// [4*Jitter.Min, 4*Jitter.Max] (+ tiny propagation), regardless of
	// MAC/processing delay between t2 and t3.
	const trials = 500
	sched, m := newTestMedium(Config{Range: 150})
	a := m.NewRadio(geo.Point{X: 0, Y: 0})
	b := m.NewRadio(geo.Point{X: 100, Y: 0})
	j := DefaultJitter()

	var rtts []float64
	var t1, t2, t3, t4 sim.Time
	bHandler := func(rec Reception) {
		t2 = rec.FirstByteSPDR
		// Arbitrary processing delay before replying: must cancel. Kept
		// below the inter-exchange gap so consecutive exchanges never
		// overlap on air.
		procDelay := sim.Time(1000 + (len(rtts)*777)%100000)
		sched.After(procDelay, func() {
			info := m.Transmit(b, frame(16))
			t3 = info.FirstByteSPDR
		})
	}
	aHandler := func(rec Reception) {
		t4 = rec.FirstByteSPDR
		rtts = append(rtts, float64(t4-t1)-float64(t3-t2))
	}
	b.SetHandler(bHandler)
	a.SetHandler(aHandler)

	var kick func()
	kicks := 0
	kick = func() {
		if len(rtts) >= trials || kicks > 2*trials {
			return
		}
		kicks++
		info := m.Transmit(a, frame(16))
		t1 = info.FirstByteSPDR
		// Next exchange well after this one completes.
		sched.After(sim.Millis(50), kick)
	}
	sched.At(0, kick)
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if len(rtts) != trials {
		t.Fatalf("completed %d exchanges, want %d", len(rtts), trials)
	}
	lo, hi := 4*j.Min-1, 4*j.Max+3 // +2 propagation cycles margin
	for i, r := range rtts {
		if r < lo || r > hi {
			t.Fatalf("exchange %d: RTT %v outside [%v, %v]", i, r, lo, hi)
		}
	}
	// Spread should be close to the paper's 4.5 bit-times.
	minR, maxR := rtts[0], rtts[0]
	for _, r := range rtts {
		minR = math.Min(minR, r)
		maxR = math.Max(maxR, r)
	}
	if spread := maxR - minR; spread > 4.5*CyclesPerBit+8 {
		t.Errorf("RTT spread %v exceeds 4.5 bit-times (%v)", spread, 4.5*CyclesPerBit)
	}
}

func TestCollisionCorruptsBoth(t *testing.T) {
	sched, m := newTestMedium(Config{Range: 1000})
	tx1 := m.NewRadio(geo.Point{X: 0, Y: 0})
	tx2 := m.NewRadio(geo.Point{X: 200, Y: 0})
	rx := m.NewRadio(geo.Point{X: 100, Y: 0})
	got := 0
	rx.SetHandler(func(Reception) { got++ })
	// Overlapping transmissions.
	sched.At(0, func() { m.Transmit(tx1, frame(20)) })
	sched.At(100, func() { m.Transmit(tx2, frame(20)) })
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("receiver decoded %d frames during collision, want 0", got)
	}
	if m.Stats().Collisions == 0 {
		t.Error("collision not counted")
	}
}

func TestNonOverlappingFramesBothDelivered(t *testing.T) {
	sched, m := newTestMedium(Config{Range: 1000})
	tx1 := m.NewRadio(geo.Point{X: 0, Y: 0})
	tx2 := m.NewRadio(geo.Point{X: 200, Y: 0})
	rx := m.NewRadio(geo.Point{X: 100, Y: 0})
	got := 0
	rx.SetHandler(func(Reception) { got++ })
	sched.At(0, func() { m.Transmit(tx1, frame(20)) })
	sched.At(FrameAirTime(20)+1000, func() { m.Transmit(tx2, frame(20)) })
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("delivered %d, want 2", got)
	}
}

func TestHalfDuplexReceiverTransmitting(t *testing.T) {
	sched, m := newTestMedium(Config{Range: 1000})
	tx := m.NewRadio(geo.Point{X: 0, Y: 0})
	busy := m.NewRadio(geo.Point{X: 100, Y: 0})
	got := 0
	busy.SetHandler(func(Reception) { got++ })
	// busy starts a long transmission, then tx transmits into it.
	sched.At(0, func() { m.Transmit(busy, frame(30)) })
	sched.At(100, func() { m.Transmit(tx, frame(16)) })
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("transmitting radio received %d frames, want 0", got)
	}
}

func TestInjectDeliversFromOrigin(t *testing.T) {
	sched, m := newTestMedium(Config{Range: 150, Ranging: Perfect{}})
	rx := m.NewRadio(geo.Point{X: 0, Y: 0})
	var rec Reception
	n := 0
	rx.SetHandler(func(r Reception) { rec = r; n++ })
	m.Inject(geo.Point{X: 30, Y: 40}, Frame{Data: make([]byte, 16), Replayed: true})
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("injected frame delivered %d times", n)
	}
	if rec.MeasuredDist != 50 {
		t.Errorf("MeasuredDist = %v, want 50 (distance to injection point)", rec.MeasuredDist)
	}
	if !rec.Frame.Replayed {
		t.Error("Replayed flag lost in delivery")
	}
}

func TestRangeBiasShiftsMeasurement(t *testing.T) {
	sched, m := newTestMedium(Config{Range: 150, Ranging: Perfect{}})
	tx := m.NewRadio(geo.Point{X: 0, Y: 0})
	rx := m.NewRadio(geo.Point{X: 50, Y: 0})
	var got float64
	rx.SetHandler(func(r Reception) { got = r.MeasuredDist })
	m.Transmit(tx, Frame{Data: make([]byte, 16), RangeBias: 40})
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 90 {
		t.Errorf("MeasuredDist = %v, want 90 with +40 bias", got)
	}
}

func TestBoundedUniformRanging(t *testing.T) {
	r := BoundedUniform{MaxError: 10}
	src := rng.New(5)
	for i := 0; i < 10000; i++ {
		d := r.Measure(100, src)
		if d < 90 || d > 110 {
			t.Fatalf("measurement %v outside ±10 of 100", d)
		}
	}
	// Never negative.
	for i := 0; i < 1000; i++ {
		if d := r.Measure(1, src); d < 0 {
			t.Fatalf("negative measurement %v", d)
		}
	}
}

func TestTruncatedGaussianRanging(t *testing.T) {
	r := TruncatedGaussian{Sigma: 4, MaxError: 10}
	src := rng.New(6)
	var sum float64
	for i := 0; i < 10000; i++ {
		d := r.Measure(100, src)
		if d < 90 || d > 110 {
			t.Fatalf("measurement %v outside truncation", d)
		}
		sum += d
	}
	if mean := sum / 10000; math.Abs(mean-100) > 0.5 {
		t.Errorf("gaussian ranging mean %v, want ~100", mean)
	}
}

func TestBusyCarrierSense(t *testing.T) {
	sched, m := newTestMedium(Config{Range: 1000})
	tx := m.NewRadio(geo.Point{X: 0, Y: 0})
	other := m.NewRadio(geo.Point{X: 100, Y: 0})
	if m.Busy(other) {
		t.Error("idle channel reported busy")
	}
	sched.At(0, func() {
		m.Transmit(tx, frame(30))
	})
	sched.At(100, func() {
		if !m.Busy(other) {
			t.Error("receiver in range of active transmission reports idle")
		}
		if !m.Busy(tx) {
			t.Error("transmitting radio reports idle")
		}
	})
	sched.At(FrameAirTime(30)+1000, func() {
		if m.Busy(other) {
			t.Error("channel still busy after air end")
		}
	})
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFinalizeRewritesData(t *testing.T) {
	sched, m := newTestMedium(Config{Range: 150})
	tx := m.NewRadio(geo.Point{X: 0, Y: 0})
	rx := m.NewRadio(geo.Point{X: 10, Y: 0})
	var got []byte
	rx.SetHandler(func(r Reception) { got = r.Frame.Data })
	var sawT3 sim.Time
	sched.At(10000, func() {
		m.Transmit(tx, Frame{
			Data: make([]byte, 16),
			Finalize: func(t3 sim.Time) []byte {
				sawT3 = t3
				out := make([]byte, 16)
				out[0] = 0xEE
				return out
			},
		})
	})
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if sawT3 == 0 {
		t.Error("Finalize not called with t3")
	}
	if len(got) != 16 || got[0] != 0xEE {
		t.Errorf("receiver got %v, want finalized data", got)
	}
}

func TestFinalizeSizeChangePanics(t *testing.T) {
	sched, m := newTestMedium(Config{Range: 150})
	tx := m.NewRadio(geo.Point{X: 0, Y: 0})
	sched.At(0, func() {
		defer func() {
			if recover() == nil {
				t.Error("size-changing Finalize did not panic")
			}
		}()
		m.Transmit(tx, Frame{
			Data:     make([]byte, 16),
			Finalize: func(sim.Time) []byte { return make([]byte, 17) },
		})
	})
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyFramePanics(t *testing.T) {
	_, m := newTestMedium(Config{Range: 150})
	tx := m.NewRadio(geo.Point{X: 0, Y: 0})
	defer func() {
		if recover() == nil {
			t.Error("empty frame did not panic")
		}
	}()
	m.Transmit(tx, Frame{})
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero range did not panic")
		}
	}()
	NewMedium(sim.New(), rng.New(1), Config{})
}

func TestTapSeesAllTransmissions(t *testing.T) {
	sched, m := newTestMedium(Config{Range: 150})
	tx := m.NewRadio(geo.Point{X: 5, Y: 6})
	var origins []geo.Point
	m.AddTap(func(origin geo.Point, f Frame, info TxInfo) {
		origins = append(origins, origin)
	})
	m.Transmit(tx, frame(16))
	m.Inject(geo.Point{X: 70, Y: 80}, frame(16))
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if len(origins) != 2 {
		t.Fatalf("tap saw %d transmissions, want 2", len(origins))
	}
	if origins[0] != (geo.Point{X: 5, Y: 6}) || origins[1] != (geo.Point{X: 70, Y: 80}) {
		t.Errorf("tap origins = %v", origins)
	}
}
