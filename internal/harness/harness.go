// Package harness is the shared Monte Carlo trial engine behind every
// simulation-backed experiment. A sweep is a points × trials grid of
// independent jobs (one x-axis point, one trial index each); Sweep runs
// the grid on a bounded worker pool and returns the per-job results in
// grid order, so callers aggregate however they like (or use SweepReduce
// for the common per-point fold).
//
// Three properties make the harness the single place where trial
// execution policy lives:
//
//   - Determinism. Each job's seeds derive from the root seed through
//     labeled rng.Split streams (sweep label → point label → trial
//     index), so results are identical for any worker count and no two
//     points of a sweep ever share a trial seed — unlike the ad-hoc
//     `seed + trial*1000 + uint64(p*1e6)` arithmetic this replaced,
//     which collided across grid cells and truncated fractional axes.
//   - Bounded parallelism. Workers defaults to one goroutine per
//     available CPU and is configurable down to 1; jobs are independent
//     full-fidelity simulations, so the sweep is embarrassingly
//     parallel.
//   - Error propagation. The first job error cancels the sweep's
//     context, stops job dispatch, and is returned to the caller —
//     experiments report failures instead of panicking.
package harness

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"beaconsec/internal/metrics"
	"beaconsec/internal/rng"
)

// Timing is a sweep's wall-clock profile: job count, total wall time,
// throughput, and a per-job latency histogram. Unlike simulation counters
// it is NOT deterministic — wall time varies run to run — so determinism
// comparisons must exclude it. A nil *Timing disables collection at zero
// cost (the methods are nil-receiver no-ops).
type Timing struct {
	// Jobs is the number of completed jobs recorded.
	Jobs uint64 `json:"jobs"`
	// WallSeconds is the sweep's total wall-clock duration.
	WallSeconds float64 `json:"wall_seconds"`
	// JobsPerSec is Jobs / WallSeconds.
	JobsPerSec float64 `json:"jobs_per_sec"`
	// JobSeconds is the per-job latency distribution, in seconds.
	JobSeconds *metrics.Histogram `json:"job_seconds,omitempty"`
}

// NewTiming returns a Timing with a latency histogram spanning 100µs to
// ~27min in geometric buckets.
func NewTiming() *Timing {
	return &Timing{JobSeconds: metrics.NewHistogram(metrics.ExpBounds(1e-4, 2, 24)...)}
}

// observe records one job's wall duration. Callers must serialize (Sweep
// records under its mutex).
func (t *Timing) observe(d time.Duration) {
	if t == nil {
		return
	}
	t.Jobs++
	t.JobSeconds.Observe(d.Seconds())
}

// finish stamps the sweep's total wall time and derives throughput.
func (t *Timing) finish(wall time.Duration) {
	if t == nil {
		return
	}
	t.WallSeconds = wall.Seconds()
	if t.WallSeconds > 0 {
		t.JobsPerSec = float64(t.Jobs) / t.WallSeconds
	}
}

// Job identifies one cell of a sweep grid and carries its
// deterministically derived seeds.
type Job struct {
	// Point and Trial are the grid coordinates: Point indexes
	// Spec.Points, Trial ranges over [0, Spec.Trials).
	Point int
	Trial int
	// Seed is unique to (sweep label, point label, trial index): the
	// per-job randomness.
	Seed uint64
	// TrialSeed is unique to (sweep label, trial index) and shared by
	// every point of the same trial — for common-random-number designs
	// where, e.g., the same node deployment should back every x-axis
	// point of a trial so curves differ only in the swept parameter.
	TrialSeed uint64
}

// Progress reports sweep advancement to Spec.Progress.
type Progress struct {
	// Done jobs out of Total.
	Done, Total int
	// Elapsed time since Sweep started.
	Elapsed time.Duration
}

// Spec describes one points × trials Monte Carlo sweep.
type Spec[R any] struct {
	// Label names the sweep. Distinct labels derive independent seed
	// streams from the same root seed, so two sweeps (e.g. two figures)
	// with the same root never replay each other's randomness.
	Label string
	// Points labels each x-axis point (e.g. "P=0.2"). Labels must be
	// distinct: the label is the point's seed-stream identity.
	Points []string
	// Trials is the number of trials per point.
	Trials int
	// Seed is the root seed all job seeds derive from.
	Seed uint64
	// Workers bounds the worker pool; <= 0 means one worker per
	// available CPU (runtime.GOMAXPROCS(0)).
	Workers int
	// Run executes one job. It must be safe for concurrent invocation
	// with distinct jobs; all randomness must come from the job's seeds
	// for the sweep to stay deterministic.
	Run func(ctx context.Context, job Job) (R, error)
	// Progress, when non-nil, observes each job completion.
	// Invocations are serialized.
	Progress func(Progress)
	// Timing, when non-nil, collects the sweep's wall-clock profile
	// (per-job latency, throughput). nil disables collection.
	Timing *Timing
}

// JobSeed returns the seed Sweep assigns to the given grid cell. It is
// exported so tests can pin the derivation independently of Sweep.
func JobSeed(rootSeed uint64, sweepLabel, pointLabel string, trial int) uint64 {
	return rng.New(rootSeed).
		Split("sweep:" + sweepLabel).
		Split("point:" + pointLabel).
		SplitIndex(uint64(trial)).
		Uint64()
}

// TrialSeed returns the point-independent seed Sweep assigns to a trial
// index: every point of a sweep sees the same TrialSeed at the same
// trial.
func TrialSeed(rootSeed uint64, sweepLabel string, trial int) uint64 {
	return rng.New(rootSeed).
		Split("sweep:" + sweepLabel).
		Split("trials").
		SplitIndex(uint64(trial)).
		Uint64()
}

// FloatLabels builds one point label per value of a float-valued axis:
// FloatLabels("P", []float64{0.1, 0.3}) → ["P=0.1", "P=0.3"]. The %g
// rendering is injective over distinct floats, so distinct values get
// distinct seed streams.
func FloatLabels(name string, xs []float64) []string {
	labels := make([]string, len(xs))
	for i, x := range xs {
		labels[i] = fmt.Sprintf("%s=%g", name, x)
	}
	return labels
}

// Sweep runs the spec's points × trials grid and returns results indexed
// [point][trial]. The result grid is identical for any worker count; the
// first job error cancels outstanding work and is returned.
func Sweep[R any](ctx context.Context, spec Spec[R]) ([][]R, error) {
	if spec.Run == nil {
		return nil, errors.New("harness: Spec.Run is nil")
	}
	if spec.Trials <= 0 {
		return nil, fmt.Errorf("harness: non-positive trials %d", spec.Trials)
	}
	seen := make(map[string]struct{}, len(spec.Points))
	for _, l := range spec.Points {
		if _, dup := seen[l]; dup {
			return nil, fmt.Errorf("harness: duplicate point label %q would share a seed stream", l)
		}
		seen[l] = struct{}{}
	}
	out := make([][]R, len(spec.Points))
	for i := range out {
		out[i] = make([]R, spec.Trials)
	}
	if len(spec.Points) == 0 {
		return out, nil
	}

	total := len(spec.Points) * spec.Trials
	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > total {
		workers = total
	}

	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	trialSeeds := make([]uint64, spec.Trials)
	for tr := range trialSeeds {
		trialSeeds[tr] = TrialSeed(spec.Seed, spec.Label, tr)
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		done     int
	)
	start := time.Now()
	jobs := make(chan Job)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range jobs {
				jobStart := time.Now()
				r, err := spec.Run(ctx, job)
				jobDur := time.Since(jobStart)
				mu.Lock()
				spec.Timing.observe(jobDur)
				if err != nil {
					if firstErr == nil {
						firstErr = fmt.Errorf("harness: %s, point %q, trial %d: %w",
							spec.Label, spec.Points[job.Point], job.Trial, err)
						cancel()
					}
					mu.Unlock()
					continue
				}
				out[job.Point][job.Trial] = r
				done++
				if spec.Progress != nil {
					// Under mu: callback invocations are serialized and
					// Done is monotone as observed by the callback.
					spec.Progress(Progress{Done: done, Total: total, Elapsed: time.Since(start)})
				}
				mu.Unlock()
			}
		}()
	}

dispatch:
	for p := range spec.Points {
		pointSrc := rng.New(spec.Seed).Split("sweep:" + spec.Label).Split("point:" + spec.Points[p])
		for tr := 0; tr < spec.Trials; tr++ {
			job := Job{
				Point:     p,
				Trial:     tr,
				Seed:      pointSrc.SplitIndex(uint64(tr)).Uint64(),
				TrialSeed: trialSeeds[tr],
			}
			select {
			case jobs <- job:
			case <-ctx.Done():
				break dispatch
			}
		}
	}
	close(jobs)
	wg.Wait()
	spec.Timing.finish(time.Since(start))

	if firstErr != nil {
		return nil, firstErr
	}
	if err := parent.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// SweepReduce runs Sweep and folds each point's trials through reduce,
// preserving point order — the common "average the trials" shape.
func SweepReduce[R, A any](ctx context.Context, spec Spec[R], reduce func(point int, trials []R) A) ([]A, error) {
	rows, err := Sweep(ctx, spec)
	if err != nil {
		return nil, err
	}
	folded := make([]A, len(rows))
	for i, row := range rows {
		folded[i] = reduce(i, row)
	}
	return folded, nil
}
