// Package harness is the shared Monte Carlo trial engine behind every
// simulation-backed experiment. A sweep is a points × trials grid of
// independent jobs (one x-axis point, one trial index each); Sweep runs
// the grid on a bounded worker pool and returns the per-job results in
// grid order, so callers aggregate however they like (or use SweepReduce
// for the common per-point fold).
//
// Three properties make the harness the single place where trial
// execution policy lives:
//
//   - Determinism. Each job's seeds derive from the root seed through
//     labeled rng.Split streams (sweep label → point label → trial
//     index), so results are identical for any worker count and no two
//     points of a sweep ever share a trial seed — unlike the ad-hoc
//     `seed + trial*1000 + uint64(p*1e6)` arithmetic this replaced,
//     which collided across grid cells and truncated fractional axes.
//   - Bounded parallelism. Workers defaults to one goroutine per
//     available CPU and is configurable down to 1; jobs are independent
//     full-fidelity simulations, so the sweep is embarrassingly
//     parallel.
//   - Error propagation. The first job error cancels the sweep's
//     context, stops job dispatch, and is returned to the caller —
//     experiments report failures instead of panicking.
//   - Memoization. With Spec.Cache set, each job's result is
//     content-addressed by its config key and derived seeds
//     (JobFingerprint) and replayed from the cache instead of
//     recomputed; identical concurrent jobs single-flight to one
//     computation. Determinism makes this sound: a fingerprint's
//     result never changes, so warm sweeps are byte-identical to
//     cold ones.
package harness

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"beaconsec/internal/cache"
	"beaconsec/internal/metrics"
	"beaconsec/internal/rng"
)

// Timing is a sweep's wall-clock profile: job count, total wall time,
// throughput, and a per-job latency histogram. Unlike simulation counters
// it is NOT deterministic — wall time varies run to run — so determinism
// comparisons must exclude it. A nil *Timing disables collection at zero
// cost (the methods are nil-receiver no-ops).
type Timing struct {
	// Jobs is the number of completed jobs recorded.
	Jobs uint64 `json:"jobs"`
	// WallSeconds is the sweep's total wall-clock duration.
	WallSeconds float64 `json:"wall_seconds"`
	// JobsPerSec is Jobs / WallSeconds.
	JobsPerSec float64 `json:"jobs_per_sec"`
	// CacheHits / CacheMisses split the jobs by how they were satisfied
	// when Spec.Cache is set: a hit replayed a stored result (memory,
	// disk, or a shared in-flight computation), a miss ran the
	// simulation. Both stay zero with caching disabled.
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	// Env is the execution environment the sweep ran in. Wall-clock
	// numbers are not comparable without it (a 1-vCPU container shows
	// serial ≈ parallel by construction).
	Env metrics.Env `json:"env"`
	// JobSeconds is the per-job latency distribution, in seconds.
	JobSeconds *metrics.Histogram `json:"job_seconds,omitempty"`
}

// NewTiming returns a Timing with a latency histogram spanning 100µs to
// ~27min in geometric buckets, stamped with the current environment.
func NewTiming() *Timing {
	return &Timing{
		Env:        metrics.CaptureEnv(),
		JobSeconds: metrics.NewHistogram(metrics.ExpBounds(1e-4, 2, 24)...),
	}
}

// observe records one job's wall duration. Callers must serialize (Sweep
// records under its mutex).
func (t *Timing) observe(d time.Duration) {
	if t == nil {
		return
	}
	t.Jobs++
	t.JobSeconds.Observe(d.Seconds())
}

// observeCache records one cached-sweep job's hit/miss outcome. Callers
// must serialize, like observe.
func (t *Timing) observeCache(hit bool) {
	if t == nil {
		return
	}
	if hit {
		t.CacheHits++
	} else {
		t.CacheMisses++
	}
}

// Merge folds another sweep's timing profile into t: job and cache
// counters add, wall time adds (for sweeps run back to back, as a
// multi-sweep figure does), throughput is re-derived, and the latency
// histograms merge. The environment is taken from whichever profile
// captured one first.
func (t *Timing) Merge(o Timing) {
	t.Jobs += o.Jobs
	t.WallSeconds += o.WallSeconds
	if t.WallSeconds > 0 {
		t.JobsPerSec = float64(t.Jobs) / t.WallSeconds
	}
	t.CacheHits += o.CacheHits
	t.CacheMisses += o.CacheMisses
	if (t.Env == metrics.Env{}) {
		t.Env = o.Env
	}
	if o.JobSeconds != nil {
		if t.JobSeconds == nil {
			t.JobSeconds = metrics.NewHistogram(o.JobSeconds.Bounds...)
		}
		t.JobSeconds.Merge(o.JobSeconds)
	}
}

// finish stamps the sweep's total wall time and derives throughput.
func (t *Timing) finish(wall time.Duration) {
	if t == nil {
		return
	}
	t.WallSeconds = wall.Seconds()
	if t.WallSeconds > 0 {
		t.JobsPerSec = float64(t.Jobs) / t.WallSeconds
	}
}

// Job identifies one cell of a sweep grid and carries its
// deterministically derived seeds.
type Job struct {
	// Point and Trial are the grid coordinates: Point indexes
	// Spec.Points, Trial ranges over [0, Spec.Trials).
	Point int
	Trial int
	// Seed is unique to (sweep label, point label, trial index): the
	// per-job randomness.
	Seed uint64
	// TrialSeed is unique to (sweep label, trial index) and shared by
	// every point of the same trial — for common-random-number designs
	// where, e.g., the same node deployment should back every x-axis
	// point of a trial so curves differ only in the swept parameter.
	TrialSeed uint64
}

// Progress reports sweep advancement to Spec.Progress.
type Progress struct {
	// Done jobs out of Total.
	Done, Total int
	// Elapsed time since Sweep started.
	Elapsed time.Duration
}

// Spec describes one points × trials Monte Carlo sweep.
type Spec[R any] struct {
	// Label names the sweep. Distinct labels derive independent seed
	// streams from the same root seed, so two sweeps (e.g. two figures)
	// with the same root never replay each other's randomness.
	Label string
	// Points labels each x-axis point (e.g. "P=0.2"). Labels must be
	// distinct: the label is the point's seed-stream identity.
	Points []string
	// Trials is the number of trials per point.
	Trials int
	// Seed is the root seed all job seeds derive from.
	Seed uint64
	// Workers bounds the worker pool; <= 0 means one worker per
	// available CPU (runtime.GOMAXPROCS(0)).
	Workers int
	// Run executes one job. It must be safe for concurrent invocation
	// with distinct jobs; all randomness must come from the job's seeds
	// for the sweep to stay deterministic.
	Run func(ctx context.Context, job Job) (R, error)
	// Progress, when non-nil, observes each job completion.
	// Invocations are serialized.
	Progress func(Progress)
	// Timing, when non-nil, collects the sweep's wall-clock profile
	// (per-job latency, throughput). nil disables collection.
	Timing *Timing

	// Cache, when non-nil, memoizes per-job results across sweeps and
	// processes, content-addressed by (cache.CodeSalt, Key, point label,
	// job seeds). Identical in-flight jobs — two concurrent sweeps over
	// the same grid — are single-flighted to one computation. Requires
	// Key and Codec; with Cache set, every result (hit or miss) passes
	// through Codec, so cold and warm sweeps are byte-identical by
	// construction.
	Cache *cache.Cache
	// Key is the canonical, versioned encoding of every Run input the
	// job seeds do not already capture — i.e. the experiment
	// configuration Run closes over. Any semantic config change must
	// change these bytes, or the cache serves stale results.
	Key []byte
	// Codec serializes R for cache storage. JSONCodec[R]() fits any R
	// whose meaningful state is exported fields of JSON-exact types.
	Codec Codec[R]
}

// Codec converts sweep results to and from cache entry bytes. Unmarshal
// ∘ Marshal must reproduce every field downstream aggregation reads —
// the cache serves decoded entries in place of fresh results.
type Codec[R any] interface {
	Marshal(r R) ([]byte, error)
	Unmarshal(data []byte) (R, error)
}

// JSONCodec returns the encoding/json-backed Codec. encoding/json
// round-trips exported fields of finite floats, integers, strings,
// slices, and structs exactly, which covers every experiment result
// type in this repository.
func JSONCodec[R any]() Codec[R] { return jsonCodec[R]{} }

type jsonCodec[R any] struct{}

func (jsonCodec[R]) Marshal(r R) ([]byte, error) { return json.Marshal(r) }

func (jsonCodec[R]) Unmarshal(data []byte) (R, error) {
	var r R
	err := json.Unmarshal(data, &r)
	return r, err
}

// JobFingerprint is the content address of one job's result: the
// code-version salt, the sweep's canonical config key, and the job's
// grid identity (point label, trial index, derived seeds). Exported so
// tests can pin the construction independently of Sweep.
func JobFingerprint(specKey []byte, pointLabel string, job Job) cache.Key {
	var grid [24]byte
	binary.LittleEndian.PutUint64(grid[0:8], job.Seed)
	binary.LittleEndian.PutUint64(grid[8:16], job.TrialSeed)
	binary.LittleEndian.PutUint64(grid[16:24], uint64(job.Trial))
	return cache.Fingerprint(cache.CodeSalt, specKey, []byte(pointLabel), grid[:])
}

// runJob executes one job, through the cache when configured. The
// returned hit reports whether a stored or shared result was replayed
// instead of running spec.Run.
func runJob[R any](ctx context.Context, spec *Spec[R], job Job) (R, bool, error) {
	var zero R
	if spec.Cache == nil {
		r, err := spec.Run(ctx, job)
		return r, false, err
	}
	key := JobFingerprint(spec.Key, spec.Points[job.Point], job)
	data, hit, err := spec.Cache.GetOrCompute(key, func() ([]byte, error) {
		r, err := spec.Run(ctx, job)
		if err != nil {
			return nil, err
		}
		return spec.Codec.Marshal(r)
	})
	if err != nil {
		return zero, false, err
	}
	r, err := spec.Codec.Unmarshal(data)
	if err != nil {
		// The entry's bytes are intact (checksummed) but no longer
		// decode: the result schema changed without a CodeSalt bump.
		// Recompute and overwrite rather than failing the sweep —
		// still through the codec, to keep cold/warm byte-identity.
		fresh, rerr := spec.Run(ctx, job)
		if rerr != nil {
			return zero, false, rerr
		}
		encoded, merr := spec.Codec.Marshal(fresh)
		if merr != nil {
			return zero, false, merr
		}
		spec.Cache.Put(key, encoded)
		r, err = spec.Codec.Unmarshal(encoded)
		if err != nil {
			return zero, false, fmt.Errorf("harness: result codec does not round-trip: %w", err)
		}
		return r, false, nil
	}
	return r, hit, nil
}

// JobSeed returns the seed Sweep assigns to the given grid cell. It is
// exported so tests can pin the derivation independently of Sweep.
func JobSeed(rootSeed uint64, sweepLabel, pointLabel string, trial int) uint64 {
	return rng.New(rootSeed).
		Split("sweep:" + sweepLabel).
		Split("point:" + pointLabel).
		SplitIndex(uint64(trial)).
		Uint64()
}

// TrialSeed returns the point-independent seed Sweep assigns to a trial
// index: every point of a sweep sees the same TrialSeed at the same
// trial.
func TrialSeed(rootSeed uint64, sweepLabel string, trial int) uint64 {
	return rng.New(rootSeed).
		Split("sweep:" + sweepLabel).
		Split("trials").
		SplitIndex(uint64(trial)).
		Uint64()
}

// FloatLabels builds one point label per value of a float-valued axis:
// FloatLabels("P", []float64{0.1, 0.3}) → ["P=0.1", "P=0.3"]. The %g
// rendering is injective over distinct floats, so distinct values get
// distinct seed streams.
func FloatLabels(name string, xs []float64) []string {
	labels := make([]string, len(xs))
	for i, x := range xs {
		labels[i] = fmt.Sprintf("%s=%g", name, x)
	}
	return labels
}

// Sweep runs the spec's points × trials grid and returns results indexed
// [point][trial]. The result grid is identical for any worker count; the
// first job error cancels outstanding work and is returned.
func Sweep[R any](ctx context.Context, spec Spec[R]) ([][]R, error) {
	if spec.Run == nil {
		return nil, errors.New("harness: Spec.Run is nil")
	}
	if spec.Trials <= 0 {
		return nil, fmt.Errorf("harness: non-positive trials %d", spec.Trials)
	}
	if spec.Cache != nil {
		if len(spec.Key) == 0 {
			return nil, errors.New("harness: Spec.Cache set without a canonical Spec.Key")
		}
		if spec.Codec == nil {
			return nil, errors.New("harness: Spec.Cache set without a Spec.Codec")
		}
	}
	seen := make(map[string]struct{}, len(spec.Points))
	for _, l := range spec.Points {
		if _, dup := seen[l]; dup {
			return nil, fmt.Errorf("harness: duplicate point label %q would share a seed stream", l)
		}
		seen[l] = struct{}{}
	}
	out := make([][]R, len(spec.Points))
	for i := range out {
		out[i] = make([]R, spec.Trials)
	}
	if len(spec.Points) == 0 {
		return out, nil
	}

	total := len(spec.Points) * spec.Trials
	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > total {
		workers = total
	}

	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	trialSeeds := make([]uint64, spec.Trials)
	for tr := range trialSeeds {
		trialSeeds[tr] = TrialSeed(spec.Seed, spec.Label, tr)
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		done     int
	)
	start := time.Now()
	jobs := make(chan Job)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range jobs {
				jobStart := time.Now()
				r, hit, err := runJob(ctx, &spec, job)
				jobDur := time.Since(jobStart)
				mu.Lock()
				spec.Timing.observe(jobDur)
				if spec.Cache != nil && err == nil {
					spec.Timing.observeCache(hit)
				}
				if err != nil {
					if firstErr == nil {
						firstErr = fmt.Errorf("harness: %s, point %q, trial %d: %w",
							spec.Label, spec.Points[job.Point], job.Trial, err)
						cancel()
					}
					mu.Unlock()
					continue
				}
				out[job.Point][job.Trial] = r
				done++
				if spec.Progress != nil {
					// Under mu: callback invocations are serialized and
					// Done is monotone as observed by the callback.
					spec.Progress(Progress{Done: done, Total: total, Elapsed: time.Since(start)})
				}
				mu.Unlock()
			}
		}()
	}

dispatch:
	for p := range spec.Points {
		pointSrc := rng.New(spec.Seed).Split("sweep:" + spec.Label).Split("point:" + spec.Points[p])
		for tr := 0; tr < spec.Trials; tr++ {
			job := Job{
				Point:     p,
				Trial:     tr,
				Seed:      pointSrc.SplitIndex(uint64(tr)).Uint64(),
				TrialSeed: trialSeeds[tr],
			}
			select {
			case jobs <- job:
			case <-ctx.Done():
				break dispatch
			}
		}
	}
	close(jobs)
	wg.Wait()
	spec.Timing.finish(time.Since(start))

	if firstErr != nil {
		return nil, firstErr
	}
	if err := parent.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// SweepReduce runs Sweep and folds each point's trials through reduce,
// preserving point order — the common "average the trials" shape.
func SweepReduce[R, A any](ctx context.Context, spec Spec[R], reduce func(point int, trials []R) A) ([]A, error) {
	rows, err := Sweep(ctx, spec)
	if err != nil {
		return nil, err
	}
	folded := make([]A, len(rows))
	for i, row := range rows {
		folded[i] = reduce(i, row)
	}
	return folded, nil
}
