package harness

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"

	"beaconsec/internal/cache"
	"beaconsec/internal/rng"
)

// cachedNoiseSpec is noiseSpec with caching wired in, counting real
// executions of Run.
func cachedNoiseSpec(workers int, store *cache.Cache, key []byte, runs *atomic.Int64) Spec[float64] {
	spec := noiseSpec(workers)
	spec.Cache = store
	spec.Key = key
	spec.Codec = JSONCodec[float64]()
	inner := spec.Run
	spec.Run = func(ctx context.Context, job Job) (float64, error) {
		runs.Add(1)
		return inner(ctx, job)
	}
	return spec
}

func newMemCache(t *testing.T) *cache.Cache {
	t.Helper()
	c, err := cache.New(cache.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func newDiskCache(t *testing.T) *cache.Cache {
	t.Helper()
	c, err := cache.New(cache.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestSweepCacheColdMatchesUncached pins that routing results through
// the codec loses nothing: a cold cached sweep equals the plain sweep
// exactly.
func TestSweepCacheColdMatchesUncached(t *testing.T) {
	plain, err := Sweep(context.Background(), noiseSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	var runs atomic.Int64
	cached, err := Sweep(context.Background(), cachedNoiseSpec(1, newMemCache(t), []byte("k1"), &runs))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, cached) {
		t.Fatalf("cached cold sweep diverged:\nplain:  %v\ncached: %v", plain, cached)
	}
}

// TestSweepWarmReplaysWithoutRunning pins the headline behavior: a warm
// sweep runs zero jobs, reports every job as a cache hit, and returns
// results identical to the cold sweep — at one worker and at NumCPU.
func TestSweepWarmReplaysWithoutRunning(t *testing.T) {
	for _, store := range map[string]*cache.Cache{"memory": newMemCache(t), "disk": newDiskCache(t)} {
		var runs atomic.Int64
		coldSpec := cachedNoiseSpec(1, store, []byte("k1"), &runs)
		coldSpec.Timing = NewTiming()
		cold, err := Sweep(context.Background(), coldSpec)
		if err != nil {
			t.Fatal(err)
		}
		jobs := int64(len(coldSpec.Points) * coldSpec.Trials)
		if runs.Load() != jobs {
			t.Fatalf("cold sweep ran %d jobs, want %d", runs.Load(), jobs)
		}
		if coldSpec.Timing.CacheMisses != uint64(jobs) || coldSpec.Timing.CacheHits != 0 {
			t.Errorf("cold timing counters: %d hits, %d misses", coldSpec.Timing.CacheHits, coldSpec.Timing.CacheMisses)
		}

		for _, workers := range []int{1, runtime.NumCPU()} {
			runs.Store(0)
			warmSpec := cachedNoiseSpec(workers, store, []byte("k1"), &runs)
			warmSpec.Timing = NewTiming()
			warm, err := Sweep(context.Background(), warmSpec)
			if err != nil {
				t.Fatal(err)
			}
			if runs.Load() != 0 {
				t.Errorf("workers=%d: warm sweep ran %d jobs", workers, runs.Load())
			}
			if warmSpec.Timing.CacheHits != uint64(jobs) || warmSpec.Timing.CacheMisses != 0 {
				t.Errorf("workers=%d: warm timing counters: %d hits, %d misses",
					workers, warmSpec.Timing.CacheHits, warmSpec.Timing.CacheMisses)
			}
			if !reflect.DeepEqual(cold, warm) {
				t.Errorf("workers=%d: warm results diverged from cold", workers)
			}
		}
	}
}

// TestSweepCacheKeyChangeMisses pins the invalidation contract: any
// change to the canonical config key must recompute every job.
func TestSweepCacheKeyChangeMisses(t *testing.T) {
	store := newMemCache(t)
	var runs atomic.Int64
	if _, err := Sweep(context.Background(), cachedNoiseSpec(1, store, []byte("config-v1"), &runs)); err != nil {
		t.Fatal(err)
	}
	runs.Store(0)
	if _, err := Sweep(context.Background(), cachedNoiseSpec(1, store, []byte("config-v2"), &runs)); err != nil {
		t.Fatal(err)
	}
	if runs.Load() == 0 {
		t.Fatal("changed key served stale entries")
	}
}

// TestSweepCacheSharedAcrossConcurrentSweeps pins cross-sweep
// single-flighting: two identical sweeps racing on one cache (the
// fig12/fig13 shape) execute each job once between them.
func TestSweepCacheSharedAcrossConcurrentSweeps(t *testing.T) {
	store := newMemCache(t)
	var runs atomic.Int64
	results := make([][][]float64, 2)
	errs := make([]error, 2)
	done := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			results[i], errs[i] = Sweep(context.Background(),
				cachedNoiseSpec(2, store, []byte("shared"), &runs))
			done <- i
		}(i)
	}
	<-done
	<-done
	for i, err := range errs {
		if err != nil {
			t.Fatalf("sweep %d: %v", i, err)
		}
	}
	spec := noiseSpec(1)
	jobs := int64(len(spec.Points) * spec.Trials)
	if got := runs.Load(); got != jobs {
		t.Errorf("two concurrent identical sweeps ran %d jobs, want %d (each job once)", got, jobs)
	}
	if !reflect.DeepEqual(results[0], results[1]) {
		t.Error("concurrent sweeps returned different results")
	}
}

// TestSweepCacheErrorNotStored pins that a failing job poisons nothing:
// the error propagates, and a subsequent sweep recomputes and succeeds.
func TestSweepCacheErrorNotStored(t *testing.T) {
	store := newMemCache(t)
	boom := errors.New("transient failure")
	fail := true
	spec := noiseSpec(1)
	spec.Cache = store
	spec.Key = []byte("flaky")
	spec.Codec = JSONCodec[float64]()
	inner := spec.Run
	spec.Run = func(ctx context.Context, job Job) (float64, error) {
		if fail && job.Point == 1 {
			return 0, boom
		}
		return inner(ctx, job)
	}
	if _, err := Sweep(context.Background(), spec); !errors.Is(err, boom) {
		t.Fatalf("sweep error = %v, want %v", err, boom)
	}
	fail = false
	got, err := Sweep(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Sweep(context.Background(), noiseSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("post-failure sweep results diverged from plain sweep")
	}
}

// TestSweepCacheRequiresKeyAndCodec pins the configuration contract.
func TestSweepCacheRequiresKeyAndCodec(t *testing.T) {
	spec := noiseSpec(1)
	spec.Cache = newMemCache(t)
	spec.Codec = JSONCodec[float64]()
	if _, err := Sweep(context.Background(), spec); err == nil {
		t.Error("Cache without Key accepted")
	}
	spec.Key = []byte("k")
	spec.Codec = nil
	if _, err := Sweep(context.Background(), spec); err == nil {
		t.Error("Cache without Codec accepted")
	}
}

// TestSweepCacheUndecodableEntryRecomputes pins the schema-drift
// fallback: an intact entry whose payload no longer decodes is
// recomputed and overwritten, not a crash and not a wrong result.
func TestSweepCacheUndecodableEntryRecomputes(t *testing.T) {
	store := newMemCache(t)
	spec := noiseSpec(1)
	// Pre-poison every job's entry with valid-checksum, non-float JSON.
	for p, label := range spec.Points {
		for tr := 0; tr < spec.Trials; tr++ {
			job := Job{
				Point: p, Trial: tr,
				Seed:      JobSeed(spec.Seed, spec.Label, label, tr),
				TrialSeed: TrialSeed(spec.Seed, spec.Label, tr),
			}
			store.Put(JobFingerprint([]byte("k"), label, job), []byte(`{"not":"a float"}`))
		}
	}
	spec.Cache = store
	spec.Key = []byte("k")
	spec.Codec = JSONCodec[float64]()
	got, err := Sweep(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Sweep(context.Background(), noiseSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("undecodable entries were not recomputed correctly")
	}
	// The overwritten entries must now decode: a warm sweep replays.
	runs := 0
	spec.Run = func(context.Context, Job) (float64, error) {
		runs++
		return 0, errors.New("should not run")
	}
	if _, err := Sweep(context.Background(), spec); err != nil || runs != 0 {
		t.Errorf("overwritten entries not served: runs=%d err=%v", runs, err)
	}
}

// TestJobFingerprintSensitivity pins what the content address covers:
// config key, point label, trial index, and both seeds.
func TestJobFingerprintSensitivity(t *testing.T) {
	job := Job{Point: 1, Trial: 2, Seed: 3, TrialSeed: 4}
	base := JobFingerprint([]byte("key"), "P=0.1", job)
	variants := map[string]cache.Key{
		"config key": JobFingerprint([]byte("other"), "P=0.1", job),
		"point":      JobFingerprint([]byte("key"), "P=0.2", job),
		"trial":      JobFingerprint([]byte("key"), "P=0.1", Job{Point: 1, Trial: 3, Seed: 3, TrialSeed: 4}),
		"seed":       JobFingerprint([]byte("key"), "P=0.1", Job{Point: 1, Trial: 2, Seed: 5, TrialSeed: 4}),
		"trial seed": JobFingerprint([]byte("key"), "P=0.1", Job{Point: 1, Trial: 2, Seed: 3, TrialSeed: 5}),
	}
	for name, v := range variants {
		if v == base {
			t.Errorf("changing %s did not change the fingerprint", name)
		}
	}
	if JobFingerprint([]byte("key"), "P=0.1", job) != base {
		t.Error("fingerprint not deterministic")
	}
}

// TestJSONCodecRoundTripsExactly spot-checks float64 exactness through
// the codec — the property the byte-identity contract rests on.
func TestJSONCodecRoundTripsExactly(t *testing.T) {
	codec := JSONCodec[float64]()
	src := rng.New(7)
	for i := 0; i < 1000; i++ {
		v := src.Float64() * 1e6
		b, err := codec.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		got, err := codec.Unmarshal(b)
		if err != nil {
			t.Fatal(err)
		}
		if got != v {
			t.Fatalf("float64 %v round-tripped to %v", v, got)
		}
	}
	// And a struct-shaped payload mirrors encoding/json semantics.
	type sample struct {
		A float64
		B []float64
		C uint64
	}
	sc := JSONCodec[sample]()
	in := sample{A: 0.1 + 0.2, B: []float64{1e-308, 9007199254740993}, C: 1<<63 + 1}
	b, err := sc.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := sc.Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	var ref sample
	if err := json.Unmarshal(b, &ref); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, in) || !reflect.DeepEqual(out, ref) {
		t.Fatalf("struct round-trip drifted: in=%+v out=%+v", in, out)
	}
}
