package harness

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"beaconsec/internal/rng"
)

// noiseSpec is a sweep whose job results depend only on the job seeds,
// like a real simulation does.
func noiseSpec(workers int) Spec[float64] {
	return Spec[float64]{
		Label:   "noise",
		Points:  FloatLabels("P", []float64{0.1, 0.2, 0.3, 0.4}),
		Trials:  5,
		Seed:    42,
		Workers: workers,
		Run: func(_ context.Context, job Job) (float64, error) {
			src := rng.New(job.Seed)
			sum := src.Float64()
			// Mix in the trial-shared stream so its determinism is
			// exercised too.
			sum += rng.New(job.TrialSeed).Float64()
			return sum, nil
		},
	}
}

func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	base, err := Sweep(context.Background(), noiseSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 3, 8, 16} {
		got, err := Sweep(context.Background(), noiseSpec(workers))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("workers=%d changed results:\n1: %v\n%d: %v", workers, base, workers, got)
		}
	}
}

func TestSweepGridShapeAndSeeds(t *testing.T) {
	var mu sync.Mutex
	jobs := map[[2]int]Job{}
	spec := noiseSpec(4)
	inner := spec.Run
	spec.Run = func(ctx context.Context, job Job) (float64, error) {
		mu.Lock()
		jobs[[2]int{job.Point, job.Trial}] = job
		mu.Unlock()
		return inner(ctx, job)
	}
	out, err := Sweep(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(spec.Points) {
		t.Fatalf("points: %d", len(out))
	}
	for p := range spec.Points {
		if len(out[p]) != spec.Trials {
			t.Fatalf("point %d trials: %d", p, len(out[p]))
		}
		for tr := 0; tr < spec.Trials; tr++ {
			job, ok := jobs[[2]int{p, tr}]
			if !ok {
				t.Fatalf("job (%d,%d) never ran", p, tr)
			}
			if want := JobSeed(spec.Seed, spec.Label, spec.Points[p], tr); job.Seed != want {
				t.Errorf("job (%d,%d) seed %d, want %d", p, tr, job.Seed, want)
			}
			if want := TrialSeed(spec.Seed, spec.Label, tr); job.TrialSeed != want {
				t.Errorf("job (%d,%d) trial seed %d, want %d", p, tr, job.TrialSeed, want)
			}
		}
	}
	// TrialSeed is shared across points at the same trial, distinct
	// across trials.
	for tr := 0; tr < spec.Trials; tr++ {
		first := jobs[[2]int{0, tr}].TrialSeed
		for p := 1; p < len(spec.Points); p++ {
			if jobs[[2]int{p, tr}].TrialSeed != first {
				t.Errorf("trial %d: TrialSeed differs across points", tr)
			}
		}
	}
	if jobs[[2]int{0, 0}].TrialSeed == jobs[[2]int{0, 1}].TrialSeed {
		t.Error("TrialSeed identical for trials 0 and 1")
	}
}

// TestJobSeedsDistinctAcrossPointsAndTrials is the regression test for
// the seed derivation the harness replaced: the old per-trial arithmetic
// `o.Seed + trial*1000 + uint64(p*1e6)` collided across grid cells (e.g.
// P=0.05 at trial 0 equals P=0.0 at trial 50) and truncated fractional
// or negative axis values. Labeled split streams must give every
// (point, trial) cell a distinct seed.
func TestJobSeedsDistinctAcrossPointsAndTrials(t *testing.T) {
	// Includes the quick-mode grid, close fractional values, and a
	// negative axis value — all cases the old arithmetic mishandled.
	ps := []float64{-0.1, 0.001, 0.0011, 0.02, 0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5, 1.0}
	seen := make(map[uint64]string)
	for _, p := range ps {
		label := fmt.Sprintf("P=%g", p)
		for tr := 0; tr < 200; tr++ {
			s := JobSeed(1, "fig12", label, tr)
			cell := fmt.Sprintf("%s/trial=%d", label, tr)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: %s and %s both derive %d", prev, cell, s)
			}
			seen[s] = cell
		}
	}
	// Distinct sweep labels must not replay each other's seeds either.
	if JobSeed(1, "fig12", "P=0.1", 0) == JobSeed(1, "fig13", "P=0.1", 0) {
		t.Error("distinct sweep labels share a job seed")
	}
}

func TestSweepPropagatesFirstErrorAndCancels(t *testing.T) {
	boom := errors.New("boom")
	spec := Spec[int]{
		Label:   "err",
		Points:  []string{"a", "b", "c", "d", "e", "f", "g", "h"},
		Trials:  4,
		Seed:    1,
		Workers: 4,
		Run: func(ctx context.Context, job Job) (int, error) {
			if job.Point == 1 && job.Trial == 0 {
				return 0, boom
			}
			select {
			case <-ctx.Done():
				return 0, ctx.Err()
			case <-time.After(10 * time.Millisecond):
				return 1, nil
			}
		},
	}
	_, err := Sweep(context.Background(), spec)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if !strings.Contains(err.Error(), `point "b"`) || !strings.Contains(err.Error(), "trial 0") {
		t.Errorf("error does not identify the failing cell: %v", err)
	}
}

func TestSweepHonorsParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 1)
	spec := Spec[int]{
		Label:   "cancel",
		Points:  []string{"a", "b"},
		Trials:  64,
		Seed:    1,
		Workers: 1,
		Run: func(ctx context.Context, job Job) (int, error) {
			select {
			case started <- struct{}{}:
			default:
			}
			<-ctx.Done()
			return 0, ctx.Err()
		},
	}
	go func() {
		<-started
		cancel()
	}()
	_, err := Sweep(ctx, spec)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestSweepProgress(t *testing.T) {
	var mu sync.Mutex
	var seen []Progress
	spec := noiseSpec(4)
	spec.Progress = func(p Progress) {
		mu.Lock()
		seen = append(seen, p)
		mu.Unlock()
	}
	if _, err := Sweep(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	total := len(spec.Points) * spec.Trials
	if len(seen) != total {
		t.Fatalf("progress calls: %d, want %d", len(seen), total)
	}
	for i, p := range seen {
		if p.Total != total {
			t.Errorf("call %d: total %d", i, p.Total)
		}
		if p.Done != i+1 {
			t.Errorf("call %d: done %d, want %d (serialized, monotone)", i, p.Done, i+1)
		}
		if p.Elapsed < 0 {
			t.Errorf("call %d: negative elapsed", i)
		}
	}
}

func TestSweepReduceAverages(t *testing.T) {
	spec := Spec[float64]{
		Label:   "reduce",
		Points:  []string{"x", "y"},
		Trials:  8,
		Seed:    7,
		Workers: 2,
		Run: func(_ context.Context, job Job) (float64, error) {
			return float64(job.Trial), nil
		},
	}
	means, err := SweepReduce(context.Background(), spec, func(_ int, trials []float64) float64 {
		sum := 0.0
		for _, v := range trials {
			sum += v
		}
		return sum / float64(len(trials))
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3.5, 3.5} // mean of 0..7
	if !reflect.DeepEqual(means, want) {
		t.Fatalf("means = %v, want %v", means, want)
	}
}

func TestSweepRejectsBadSpecs(t *testing.T) {
	runOne := func(_ context.Context, _ Job) (int, error) { return 0, nil }
	if _, err := Sweep(context.Background(), Spec[int]{Label: "l", Points: []string{"a"}, Trials: 1}); err == nil {
		t.Error("nil Run accepted")
	}
	if _, err := Sweep(context.Background(), Spec[int]{Label: "l", Points: []string{"a"}, Trials: 0, Run: runOne}); err == nil {
		t.Error("zero trials accepted")
	}
	if _, err := Sweep(context.Background(), Spec[int]{Label: "l", Points: []string{"a", "a"}, Trials: 1, Run: runOne}); err == nil {
		t.Error("duplicate point labels accepted")
	}
	out, err := Sweep(context.Background(), Spec[int]{Label: "l", Points: nil, Trials: 1, Run: runOne})
	if err != nil || len(out) != 0 {
		t.Errorf("empty points: out=%v err=%v", out, err)
	}
}

func TestFloatLabels(t *testing.T) {
	got := FloatLabels("P", []float64{0.1, 0.25, 1})
	want := []string{"P=0.1", "P=0.25", "P=1"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("FloatLabels = %v, want %v", got, want)
	}
}
