package textplot

import (
	"strings"
	"testing"
)

func samplePlot() *Plot {
	return &Plot{
		Title:  "Detection rate",
		XLabel: "P",
		YLabel: "P_r",
		Series: []Series{
			{Label: "m=1", X: []float64{0, 0.5, 1}, Y: []float64{0, 0.5, 1}},
			{Label: "m=8", X: []float64{0, 0.5, 1}, Y: []float64{0, 0.99, 1}},
		},
	}
}

func TestRenderContainsStructure(t *testing.T) {
	out := samplePlot().Render(40, 10)
	if !strings.Contains(out, "Detection rate") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "m=1") || !strings.Contains(out, "m=8") {
		t.Error("missing legend entries")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("missing series glyphs")
	}
	if !strings.Contains(out, "x: P   y: P_r") {
		t.Error("missing axis labels")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + 10 plot rows + axis + labels + legend lines.
	if len(lines) < 14 {
		t.Errorf("render has %d lines", len(lines))
	}
}

func TestRenderEmptyPlot(t *testing.T) {
	p := &Plot{Title: "empty"}
	out := p.Render(20, 5)
	if out == "" {
		t.Error("empty plot rendered nothing")
	}
}

func TestRenderSinglePoint(t *testing.T) {
	p := &Plot{Series: []Series{{Label: "pt", X: []float64{5}, Y: []float64{7}}}}
	out := p.Render(20, 5)
	if !strings.Contains(out, "*") {
		t.Error("single point not drawn")
	}
}

func TestRenderConstantSeries(t *testing.T) {
	p := &Plot{Series: []Series{{Label: "c", X: []float64{0, 1, 2}, Y: []float64{3, 3, 3}}}}
	out := p.Render(20, 5)
	if strings.Count(out, "*") < 3 {
		t.Errorf("constant series under-drawn:\n%s", out)
	}
}

func TestRenderTinyDimensionsClamped(t *testing.T) {
	out := samplePlot().Render(1, 1)
	if out == "" {
		t.Error("tiny render empty")
	}
}

func TestCSVLongFormat(t *testing.T) {
	got := samplePlot().CSV()
	want := "series,x,y\nm=1,0,0\nm=1,0.5,0.5\nm=1,1,1\nm=8,0,0\nm=8,0.5,0.99\nm=8,1,1\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestCSVEscaping(t *testing.T) {
	p := &Plot{Series: []Series{{Label: `a,"b"`, X: []float64{1}, Y: []float64{2}}}}
	got := p.CSV()
	if !strings.Contains(got, `"a,""b""",1,2`) {
		t.Errorf("CSV escaping wrong: %q", got)
	}
}

func TestMismatchedXYLengths(t *testing.T) {
	p := &Plot{Series: []Series{{Label: "bad", X: []float64{1, 2, 3}, Y: []float64{1}}}}
	if got := p.CSV(); strings.Count(got, "\n") != 2 {
		t.Errorf("mismatched series CSV: %q", got)
	}
	// Render must not panic either.
	_ = p.Render(20, 5)
}

func TestFmtAxis(t *testing.T) {
	tests := []struct {
		v    float64
		want string
	}{
		{0, "0"},
		{0.5, "0.50"},
		{150, "150"},
		{123456, "1.2e+05"},
	}
	for _, tt := range tests {
		if got := fmtAxis(tt.v); got != tt.want {
			t.Errorf("fmtAxis(%v) = %q, want %q", tt.v, got, tt.want)
		}
	}
}
