// Package textplot renders experiment series as ASCII line plots,
// scatter plots, and CSV — the terminal-native equivalent of the paper's
// figures, used by cmd/figures and the benchmark harness.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one labelled curve.
type Series struct {
	Label string
	X, Y  []float64
	// Scatter suppresses the connecting segments: points are drawn
	// individually (deployment maps, ROC point clouds).
	Scatter bool
}

// Plot is a set of curves over shared axes.
type Plot struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// glyphs mark successive series.
var glyphs = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Render draws the plot as ASCII art, width x height characters of plot
// area (axes and legend added around it).
func (p *Plot) Render(width, height int) string {
	if width < 8 {
		width = 8
	}
	if height < 4 {
		height = 4
	}
	xmin, xmax, ymin, ymax := p.bounds()

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	col := func(x float64) int {
		if xmax == xmin {
			return 0
		}
		c := int(math.Round((x - xmin) / (xmax - xmin) * float64(width-1)))
		return clamp(c, 0, width-1)
	}
	row := func(y float64) int {
		if ymax == ymin {
			return height - 1
		}
		r := int(math.Round((ymax - y) / (ymax - ymin) * float64(height-1)))
		return clamp(r, 0, height-1)
	}

	for si, s := range p.Series {
		g := glyphs[si%len(glyphs)]
		if !s.Scatter {
			// Connect consecutive points with interpolated marks so
			// curves read as lines.
			for i := 1; i < len(s.X) && i < len(s.Y); i++ {
				drawSegment(grid, col(s.X[i-1]), row(s.Y[i-1]), col(s.X[i]), row(s.Y[i]), g)
			}
		}
		for i := 0; i < len(s.X) && i < len(s.Y); i++ {
			grid[row(s.Y[i])][col(s.X[i])] = g
		}
	}

	var b strings.Builder
	if p.Title != "" {
		fmt.Fprintf(&b, "%s\n", p.Title)
	}
	yl, yr := fmtAxis(ymax), fmtAxis(ymin)
	pad := len(yl)
	if len(yr) > pad {
		pad = len(yr)
	}
	for r, line := range grid {
		label := strings.Repeat(" ", pad)
		switch r {
		case 0:
			label = fmt.Sprintf("%*s", pad, yl)
		case height - 1:
			label = fmt.Sprintf("%*s", pad, yr)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(line))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", pad), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%s  %-*s%s\n", strings.Repeat(" ", pad), width-len(fmtAxis(xmax)), fmtAxis(xmin), fmtAxis(xmax))
	if p.XLabel != "" || p.YLabel != "" {
		fmt.Fprintf(&b, "%s  x: %s   y: %s\n", strings.Repeat(" ", pad), p.XLabel, p.YLabel)
	}
	for si, s := range p.Series {
		fmt.Fprintf(&b, "%s  %c %s\n", strings.Repeat(" ", pad), glyphs[si%len(glyphs)], s.Label)
	}
	return b.String()
}

func (p *Plot) bounds() (xmin, xmax, ymin, ymax float64) {
	xmin, ymin = math.Inf(1), math.Inf(1)
	xmax, ymax = math.Inf(-1), math.Inf(-1)
	any := false
	for _, s := range p.Series {
		for i := 0; i < len(s.X) && i < len(s.Y); i++ {
			any = true
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if !any {
		return 0, 1, 0, 1
	}
	if xmin == xmax {
		xmax = xmin + 1
	}
	if ymin == ymax {
		ymax = ymin + 1
	}
	return xmin, xmax, ymin, ymax
}

func drawSegment(grid [][]byte, c0, r0, c1, r1 int, g byte) {
	steps := abs(c1-c0) + abs(r1-r0)
	if steps == 0 {
		return
	}
	for s := 0; s <= steps; s++ {
		c := c0 + (c1-c0)*s/steps
		r := r0 + (r1-r0)*s/steps
		if grid[r][c] == ' ' {
			grid[r][c] = g
		}
	}
}

// CSV emits the plot in long format: series,x,y — robust to series with
// different x grids.
func (p *Plot) CSV() string {
	var b strings.Builder
	b.WriteString("series,x,y\n")
	for _, s := range p.Series {
		for i := 0; i < len(s.X) && i < len(s.Y); i++ {
			fmt.Fprintf(&b, "%s,%g,%g\n", csvEscape(s.Label), s.X[i], s.Y[i])
		}
	}
	return b.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

func fmtAxis(v float64) string {
	av := math.Abs(v)
	switch {
	case v == 0:
		return "0"
	case av >= 10000 || av < 0.01:
		return fmt.Sprintf("%.2g", v)
	case av >= 100:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
