// Benchmarks regenerating every figure of the paper's evaluation, plus
// the substrate micro-benchmarks a performance-conscious user cares
// about. Each BenchmarkFigNN target runs the same code path as
// cmd/figures for that figure, in quick mode so a full -bench=. pass
// stays tractable; run cmd/figures (without -quick) for full-fidelity
// reproduction.
package beaconsec_test

import (
	"testing"

	"beaconsec"
)

func benchFigure(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := beaconsec.RunFigure(id, beaconsec.ExperimentOptions{Quick: true, Seed: uint64(i + 1)})
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if len(res.Series) == 0 {
			b.Fatalf("%s produced no series", id)
		}
	}
}

// benchSweepWorkers regenerates the Quick fig12 sweep — the repo's
// canonical simulation-backed Monte Carlo workload — at a fixed worker
// count, to measure what the trial harness's parallelism buys.
func benchSweepWorkers(b *testing.B, workers int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := beaconsec.RunFigure("fig12",
			beaconsec.ExperimentOptions{Quick: true, Seed: uint64(i + 1), Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Series) == 0 {
			b.Fatal("fig12 produced no series")
		}
	}
}

// BenchmarkSweepSerial runs the fig12 sweep on a single harness worker.
func BenchmarkSweepSerial(b *testing.B) { benchSweepWorkers(b, 1) }

// BenchmarkSweepParallel runs the same sweep with one worker per
// available CPU; the output is byte-identical to the serial run.
func BenchmarkSweepParallel(b *testing.B) { benchSweepWorkers(b, 0) }

// BenchmarkMetricsOverhead measures the instrumented fig12 sweep — the
// same workload BenchmarkSweepSerial timed before the metrics layer
// existed — so the delta against the recorded pre-metrics baseline in
// EXPERIMENTS.md is the full cost of counter increments, phase spans,
// and per-run aggregation. The histogram fast path (nil receiver) and
// plain uint64 counters are expected to keep that delta within run
// noise.
func BenchmarkMetricsOverhead(b *testing.B) {
	b.ReportAllocs()
	benchSweepWorkers(b, 1)
}

// BenchmarkFig04RTTCDF regenerates Figure 4: the empirical no-attack RTT
// distribution on the simulated MICA2 radio stack.
func BenchmarkFig04RTTCDF(b *testing.B) { benchFigure(b, "fig04") }

// BenchmarkFig05DetectionRate regenerates Figure 5: P_r vs P for
// m ∈ {1,2,4,8}.
func BenchmarkFig05DetectionRate(b *testing.B) { benchFigure(b, "fig05") }

// BenchmarkFig06aRevocationRate regenerates Figure 6(a): P_d vs P across
// alert thresholds.
func BenchmarkFig06aRevocationRate(b *testing.B) { benchFigure(b, "fig06a") }

// BenchmarkFig06bRevocationRate regenerates Figure 6(b): P_d vs P across
// detecting-ID counts.
func BenchmarkFig06bRevocationRate(b *testing.B) { benchFigure(b, "fig06b") }

// BenchmarkFig07RevocationVsNc regenerates Figure 7: P_d vs the number of
// requesting nodes.
func BenchmarkFig07RevocationVsNc(b *testing.B) { benchFigure(b, "fig07") }

// BenchmarkFig08Affected regenerates Figure 8: N′ vs P across (τ′, m).
func BenchmarkFig08Affected(b *testing.B) { benchFigure(b, "fig08") }

// BenchmarkFig09MaxAffected regenerates Figure 9: attacker-optimal N′ vs
// N_c.
func BenchmarkFig09MaxAffected(b *testing.B) { benchFigure(b, "fig09") }

// BenchmarkFig10ReportCounter regenerates Figure 10: report-counter
// overflow probability vs τ.
func BenchmarkFig10ReportCounter(b *testing.B) { benchFigure(b, "fig10") }

// BenchmarkFig11Deployment regenerates Figure 11: the beacon deployment
// scatter.
func BenchmarkFig11Deployment(b *testing.B) { benchFigure(b, "fig11") }

// BenchmarkFig12SimDetection regenerates Figure 12: full-simulation
// detection rate against theory across P.
func BenchmarkFig12SimDetection(b *testing.B) { benchFigure(b, "fig12") }

// BenchmarkFig13SimAffected regenerates Figure 13: full-simulation N′
// against theory across P.
func BenchmarkFig13SimAffected(b *testing.B) { benchFigure(b, "fig13") }

// BenchmarkFig14ROC regenerates Figure 14: ROC points over (τ, τ′, N_a)
// with colluding reporters.
func BenchmarkFig14ROC(b *testing.B) { benchFigure(b, "fig14") }

// BenchmarkExtraLocalizationImpact regenerates E1: localization error
// with vs without the defense.
func BenchmarkExtraLocalizationImpact(b *testing.B) { benchFigure(b, "extra-localization") }

// BenchmarkExtraAblation regenerates E2: false-alert counts with each
// replay filter disabled.
func BenchmarkExtraAblation(b *testing.B) { benchFigure(b, "extra-ablation") }

// BenchmarkScenarioPaperScale runs one full paper-scale simulation per
// iteration — the headline end-to-end cost.
func BenchmarkScenarioPaperScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := beaconsec.PaperScenario()
		cfg.Seed = uint64(i + 1)
		cfg.CalibrationTrials = 500
		if _, err := beaconsec.RunScenario(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCalibrateRTT10k is the Figure 4 measurement at full paper
// fidelity (10,000 exchanges).
func BenchmarkCalibrateRTT10k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cal := beaconsec.CalibrateRTT(10000, uint64(i+1))
		if cal.SpreadBits() <= 0 {
			b.Fatal("degenerate calibration")
		}
	}
}

// BenchmarkMultilaterate measures the sensor-side position solve.
func BenchmarkMultilaterate(b *testing.B) {
	truth := beaconsec.Point{X: 60, Y: 45}
	beacons := []beaconsec.Point{
		{X: 0, Y: 0}, {X: 150, Y: 0}, {X: 0, Y: 150},
		{X: 150, Y: 150}, {X: 75, Y: 75}, {X: 30, Y: 120},
	}
	refs := make([]beaconsec.Reference, len(beacons))
	for i, loc := range beacons {
		refs[i] = beaconsec.Reference{Loc: loc, Dist: truth.Dist(loc)}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := beaconsec.Multilaterate(refs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtraPromotion regenerates E3: multi-tier promotion error
// accumulation.
func BenchmarkExtraPromotion(b *testing.B) { benchFigure(b, "extra-promotion") }

// BenchmarkExtraDistributed regenerates E4: base-station-free revocation
// vs the centralized scheme.
func BenchmarkExtraDistributed(b *testing.B) { benchFigure(b, "extra-distributed") }

// BenchmarkExtraRouting regenerates E5: geographic-routing delivery rate
// on believed positions.
func BenchmarkExtraRouting(b *testing.B) { benchFigure(b, "extra-routing") }
