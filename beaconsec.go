// Package beaconsec is a from-scratch reproduction of "Detecting
// Malicious Beacon Nodes for Secure Location Discovery in Wireless Sensor
// Networks" (Liu, Ning & Du, ICDCS 2005): a complete simulated
// sensor-network stack (cycle-accurate radio timing, CSMA link layer,
// pairwise-key cryptography, wormhole attacks, multilateration) plus the
// paper's contribution — detectors for malicious beacon signals, replay
// filters, and base-station revocation.
//
// The package is a facade over the internal implementation; it exposes
// the four things a user needs:
//
//   - the detector primitives (DetectorConfig, Observation, Verdict,
//     CalibrateRTT) to embed the paper's checks in another system;
//   - the closed-form analysis (DetectionRate, RevocationRate,
//     AffectedNodes, ...) to size deployments;
//   - the end-to-end scenario engine (PaperScenario, RunScenario) to
//     simulate full networks under attack;
//   - the experiment harness (Figures, RunFigure) to regenerate every
//     figure of the paper's evaluation.
//
// Quickstart:
//
//	cfg := beaconsec.PaperScenario()
//	cfg.Strategy = beaconsec.StrategyForP(0.2)
//	res, err := beaconsec.RunScenario(cfg)
//	// res.DetectionRate, res.FalsePositiveRate, res.AffectedPerMalicious ...
package beaconsec

import (
	"errors"
	"fmt"

	"beaconsec/internal/analysis"
	"beaconsec/internal/core"
	"beaconsec/internal/crypto"
	"beaconsec/internal/deploy"
	"beaconsec/internal/experiment"
	"beaconsec/internal/geo"
	"beaconsec/internal/georoute"
	"beaconsec/internal/ident"
	"beaconsec/internal/localization"
	"beaconsec/internal/phy"
	"beaconsec/internal/revoke"
	"beaconsec/internal/rng"
	"beaconsec/internal/scenario"
	"beaconsec/internal/sim"
	"beaconsec/internal/textplot"
)

// Geometry and identity.
type (
	// Point is a location in the sensing field, in feet.
	Point = geo.Point
	// Rect is an axis-aligned region of the field.
	Rect = geo.Rect
	// NodeID identifies a node or detecting pseudonym.
	NodeID = ident.NodeID
)

// Square returns a side × side sensing field anchored at the origin.
func Square(side float64) Rect { return geo.Square(side) }

// Detector primitives (the paper's §2).
type (
	// DetectorConfig parameterizes the malicious-beacon-signal detector
	// suite: ε_max, the RTT threshold, and the radio range.
	DetectorConfig = core.Config
	// Observation is one completed beacon exchange as seen by a
	// requester.
	Observation = core.Observation
	// Verdict classifies an observation.
	Verdict = core.Verdict
	// Calibration is the empirical no-attack RTT distribution
	// (Figure 4); its Threshold feeds DetectorConfig.MaxRTT.
	Calibration = core.Calibration
)

// Verdicts.
const (
	VerdictBenign         = core.VerdictBenign
	VerdictMalicious      = core.VerdictMalicious
	VerdictWormholeReplay = core.VerdictWormholeReplay
	VerdictLocalReplay    = core.VerdictLocalReplay
)

// CalibrateRTT measures trials simulated request/reply exchanges on a
// MICA2-class radio stack and returns the empirical RTT distribution,
// reproducing the paper's Figure 4 methodology.
func CalibrateRTT(trials int, seed uint64) Calibration {
	return core.CalibrateRTT(trials, phy.DefaultJitter(), seed)
}

// Analysis (the paper's §2.3 and §3.2 closed forms).
type (
	// Strategy is the malicious beacon's (p_n, p_w, p_l) behavior
	// triple.
	Strategy = analysis.Strategy
	// Population holds (N, N_b, N_a).
	Population = analysis.Population
)

// StrategyForP returns the canonical strategy with undetected-attack
// probability P.
func StrategyForP(p float64) Strategy { return analysis.StrategyForP(p) }

// PaperPopulation returns the reconstructed evaluation population
// (N=1000, N_b=110, N_a=10).
func PaperPopulation() Population { return analysis.PaperPopulation() }

// DetectionRate returns P_r = 1 - (1-P)^m (Figure 5).
func DetectionRate(p float64, m int) float64 { return analysis.DetectionRate(p, m) }

// RevocationRate returns P_d, the probability a malicious beacon with nc
// requesters is revoked at alert threshold τ′ (Figures 6–7).
func RevocationRate(p float64, m, tauPrime, nc int, pop Population) float64 {
	return analysis.RevocationRate(p, m, tauPrime, nc, pop)
}

// AffectedNodes returns N′, the expected non-beacon nodes misled by one
// malicious beacon after revocation (Figure 8).
func AffectedNodes(p float64, m, tauPrime, nc int, pop Population) float64 {
	return analysis.AffectedNodes(p, m, tauPrime, nc, pop)
}

// MaxAffected returns the attacker-optimal N′ and the P achieving it
// (Figure 9).
func MaxAffected(m, tauPrime, nc int, pop Population) (maxAffected, argP float64) {
	return analysis.MaxAffected(m, tauPrime, nc, pop)
}

// FalsePositiveBound returns N_f, the worst-case benign revocations under
// collusion and undetected wormholes.
func FalsePositiveBound(nw, na, tau, tauPrime int, pd float64) float64 {
	return analysis.FalsePositiveBound(nw, na, tau, tauPrime, pd)
}

// Scenario engine (the paper's §4 simulation).
type (
	// ScenarioConfig parameterizes an end-to-end run.
	ScenarioConfig = scenario.Config
	// ScenarioResult carries a run's measurements.
	ScenarioResult = scenario.Result
	// WormholeSpec places one wormhole tunnel.
	WormholeSpec = scenario.WormholeSpec
	// DeployConfig parameterizes the network deployment.
	DeployConfig = deploy.Config
	// RevocationConfig holds the (τ, τ′) thresholds.
	RevocationConfig = revoke.Config
)

// PaperScenario returns the reconstructed §4 simulation configuration:
// 1,000 nodes (110 beacons, 10 compromised) in a 1000×1000 ft field,
// 150 ft range, m=8, p_d=0.9, (τ=10, τ′=2), one analog wormhole between
// (100,100) and (800,700), colluding malicious reporters.
func PaperScenario() ScenarioConfig { return scenario.Paper() }

// PaperDeployment returns just the deployment part of the paper setup.
func PaperDeployment() DeployConfig { return deploy.Paper() }

// PaperWormhole returns the paper's wormhole placement.
func PaperWormhole() WormholeSpec { return scenario.PaperWormhole() }

// RunScenario executes one full simulation.
func RunScenario(cfg ScenarioConfig) (*ScenarioResult, error) { return scenario.Run(cfg) }

// Localization substrate.
type (
	// Reference is one location reference (beacon location, measured
	// distance).
	Reference = localization.Reference
)

// Multilaterate estimates a position from distance references (linear
// least squares + Gauss–Newton).
func Multilaterate(refs []Reference) (Point, error) { return localization.Multilaterate(refs) }

// RobustMultilaterate estimates a position while excluding references
// inconsistent with the honest majority (least-median-of-squares subset
// search + residual trimming); it returns the kept reference indices.
func RobustMultilaterate(refs []Reference, maxResidual float64) (Point, []int, error) {
	return localization.RobustMultilaterate(refs, maxResidual)
}

// Iterative (multi-tier) localization with beacon promotion — the §2.3
// extension.
type (
	// IterativeConfig parameterizes multi-tier localization.
	IterativeConfig = localization.IterativeConfig
	// IterativeResult reports a multi-tier pass.
	IterativeResult = localization.IterativeResult
)

// IterativeLocalize runs multi-tier localization with beacon promotion
// over true positions; see localization.IterativeLocalize.
func IterativeLocalize(truth []Point, isBeacon, liars []bool, lieOffset Point,
	cfg IterativeConfig, seed uint64) IterativeResult {
	return localization.IterativeLocalize(truth, isBeacon, liars, lieOffset, cfg, rng.New(seed))
}

// Angle-of-arrival support — the §2.3 "other measurements" variant.
type (
	// BearingReference is one AoA reference (beacon location, measured
	// bearing).
	BearingReference = localization.BearingReference
	// AoAConfig parameterizes the AoA consistency check.
	AoAConfig = core.AoAConfig
	// AoAObservation is an exchange observed via bearing measurement.
	AoAObservation = core.AoAObservation
)

// Triangulate estimates a position from bearing references (least-squares
// line intersection).
func Triangulate(refs []BearingReference) (Point, error) {
	return localization.Triangulate(refs)
}

// DV-hop range-free baseline (Niculescu & Nath, cited).
type (
	// DVHopConfig parameterizes the range-free scheme.
	DVHopConfig = localization.DVHopConfig
	// DVHopResult reports one DV-hop pass.
	DVHopResult = localization.DVHopResult
)

// DVHop runs range-free hop-count localization over true positions.
func DVHop(truth []Point, isBeacon []bool, cfg DVHopConfig) DVHopResult {
	return localization.DVHop(truth, isBeacon, cfg)
}

// Broadcast authentication (µTESLA, the cited mechanism behind
// authenticated base-station revocation broadcasts).
type (
	// TeslaChain is the broadcaster's hash chain and schedule.
	TeslaChain = crypto.TeslaChain
	// TeslaReceiver verifies broadcasts under delayed key disclosure.
	TeslaReceiver = crypto.TeslaReceiver
)

// NewTeslaChain generates a broadcaster chain of n keys.
func NewTeslaChain(n int, interval sim.Time, delay int, start sim.Time, seed uint64) *TeslaChain {
	return crypto.NewTeslaChain(n, interval, delay, start, rng.New(seed))
}

// NewTeslaReceiver builds a verifier from the predistributed chain anchor.
func NewTeslaReceiver(anchor crypto.Key, interval sim.Time, delay int, start sim.Time) *TeslaReceiver {
	return crypto.NewTeslaReceiver(anchor, interval, delay, start)
}

// Geographic routing (GPSR-style greedy forwarding), the paper's
// motivating application.
type (
	// RoutingNetwork forwards packets greedily on believed positions
	// over true radio connectivity.
	RoutingNetwork = georoute.Network
	// Route is one forwarding attempt's outcome.
	Route = georoute.Route
)

// NewRoutingNetwork builds a forwarding substrate from true positions
// (connectivity) and believed positions (forwarding decisions).
func NewRoutingNetwork(truth, believed []Point, rangeFt float64) *RoutingNetwork {
	return georoute.New(truth, believed, rangeFt)
}

// SimTime is the simulator's cycle-resolution clock type, exposed for the
// µTESLA schedule parameters.
type SimTime = sim.Time

// Seconds converts wall-clock seconds to simulator cycles.
func Seconds(s float64) SimTime { return sim.Seconds(s) }

// MinMaxLocalize estimates a position with the bounding-box baseline.
func MinMaxLocalize(refs []Reference) (Point, error) { return localization.MinMax(refs) }

// CentroidLocalize estimates a position with the range-free centroid
// baseline.
func CentroidLocalize(refs []Reference) (Point, error) { return localization.Centroid(refs) }

// Experiments (the paper's figures).
type (
	// ExperimentOptions tune figure regeneration cost.
	ExperimentOptions = experiment.Options
	// ExperimentResult is one regenerated figure.
	ExperimentResult = experiment.Result
	// Plot renders series as ASCII or CSV.
	Plot = textplot.Plot
	// PlotSeries is one labelled curve.
	PlotSeries = textplot.Series
)

// Figures lists the IDs of every reproducible figure, in paper order.
func Figures() []string {
	runners := experiment.All()
	ids := make([]string, len(runners))
	for i, r := range runners {
		ids[i] = r.ID
	}
	return ids
}

// ErrUnknownFigure reports a RunFigure ID that matches no runner.
var ErrUnknownFigure = errors.New("beaconsec: unknown figure ID")

// RunFigure regenerates one figure by ID ("fig04" ... "fig14",
// "extra-localization", "extra-ablation"). Unknown IDs return an error
// wrapping ErrUnknownFigure; simulation failures are returned as-is.
// Simulation-backed figures run their trials on a worker pool sized by
// ExperimentOptions.Workers (0 = all CPUs) with results identical for
// any worker count.
func RunFigure(id string, o ExperimentOptions) (ExperimentResult, error) {
	r, ok := experiment.ByID(id)
	if !ok {
		return ExperimentResult{}, fmt.Errorf("%w: %q", ErrUnknownFigure, id)
	}
	return r.Run(o)
}
